#!/usr/bin/env bash
# ThreadSanitizer gate for the Opt7 concurrency code.
#
# Builds the -DPARSERHAWK_SANITIZE=thread preset and runs the concurrency
# tests (thread pool, parallel determinism, the batched differential
# simulation engine, the timeout-under-parallelism property) under TSan. Any data race fails the run (TSAN exits non-zero
# via halt_on_error-independent exit code mangling: abort_on_error keeps
# gtest's failure propagation intact).
#
# Usage: ci/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DPARSERHAWK_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_thread_pool test_parallel_determinism test_property_end2end test_obs test_batch test_verify_bisim

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$(pwd)/ci/tsan.supp"
# Sanitizer overhead stretches in-flight z3 queries well past the native
# promptness bound of the timeout property.
export PH_TIMEOUT_SLACK_SEC=30

echo "== test_obs (TSan) =="
# The tracer/metrics concurrent-recording tests (8 writer threads against
# per-thread buffers merged at flush) are exactly the shape TSan is for.
"$BUILD_DIR/tests/test_obs"

echo "== test_thread_pool (TSan) =="
"$BUILD_DIR/tests/test_thread_pool"

echo "== test_batch (TSan) =="
# The batched differential engine: chunked fan-out over the work-stealing
# pool, atomic first-mismatch CAS cancellation, per-chunk coverage merge.
# EightThreadStress runs the full difftest at 8 workers — the widest
# concurrent surface this suite has.
"$BUILD_DIR/tests/test_batch"

echo "== test_batch (TSan, PH_SIMD=off) =="
# The same races with the wide batch kernel dispatched away: the scalar
# fallback shares the chunk/CAS/coverage machinery but takes the per-key
# first_match path, so both sides of the dispatch run under TSan. The
# WideKernel identity properties re-check SWAR/AVX-vs-scalar equality in
# this environment too (dispatch is read per match_batch call).
PH_SIMD=off "$BUILD_DIR/tests/test_batch" --gtest_filter='BatchRunner.*:WideKernel.*'

echo "== test_batch (TSan, PH_SIMD=swar) =="
# Forced-SWAR pass: the portable 64-bit-lane kernel under the 8-thread
# stress, independent of what the host CPU supports.
PH_SIMD=swar "$BUILD_DIR/tests/test_batch" --gtest_filter='WideKernel.*'

echo "== test_parallel_determinism (TSan, subset) =="
# The full determinism sweep under TSan is slow (every seed compiles 3x
# with sanitizer overhead); the cheapest seeds plus the loop race already
# exercise every concurrent code path (per-state fan-out, per-budget shape
# race, whole-program loop race, cancellation, stat merging).
"$BUILD_DIR/tests/test_parallel_determinism" \
  --gtest_filter='Seeds/ParallelDeterminism.*/4:Seeds/ParallelDeterminism.*/11:Seeds/ParallelDeterminism.*/17:ParallelDeterminismLoops.*'

echo "== timeout-under-parallelism property (TSan) =="
"$BUILD_DIR/tests/test_property_end2end" --gtest_filter='End2EndTimeout.*'

echo "== test_verify_bisim (TSan, race verifier) =="
# The raced verify phase: Z3 and the bisimulation sweep run concurrently
# on the Opt7 pool (two solver contexts, shared finish-order atomic,
# metrics fan-in). The Race* suite compiles at 1/2/4 threads and asserts
# bit-identical output, so any unsynchronized sharing between the two
# checkers shows up here.
"$BUILD_DIR/tests/test_verify_bisim" --gtest_filter='RaceVerifier.*'

echo "TSan run clean."
