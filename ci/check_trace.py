#!/usr/bin/env python3
"""Validate the telemetry sidecars a traced hawk_compile run produces.

Usage: ci/check_trace.py TRACE.json [METRICS.json]
           [--require-cache-hits] [--require-sim-batch]
           [--require-corpus-cov=SPEC[,SPEC...]]
           [--report=REPORT.json] [--prom=METRICS.prom]
       ci/check_trace.py --metrics-only METRICS.json [flags]
       ci/check_trace.py --diff-metrics=OTHER.json METRICS.json
       ci/check_trace.py --report=REPORT.json
       ci/check_trace.py --prom=METRICS.prom

Checks (schema + monotonicity; see DESIGN.md §7 for the event schema):
  * the trace file is valid JSON with a top-level "traceEvents" list
  * every event carries name/ph/pid/tid; "X" events carry numeric ts/dur,
    "i" events carry ts (durations and timestamps non-negative)
  * per thread, events sorted by ts are monotonic and complete events do
    not end before they start
  * thread_name metadata ("M") records exist for every tid that logged
  * expected pipeline spans are present (compile, solve_state, z3_check)
  * the metrics file (optional arg) is valid JSON with counters/gauges/
    histograms; Z3 query counters exist and each phase's outcome counts
    (sat+unsat+unknown) sum to its query count; histogram bucket counts
    sum to the histogram's count
  * when the batched differential tester ran (sim.batch.* counters
    present): agree + mismatch == samples, and each side's outcome
    tallies (accept + reject + exhausted) sum to samples
  * every cov.*_hit gauge has a matching cov.*_total gauge with
    hit <= total (coverage can never exceed the universe it counts)
  * when the bisimulation checker ran (verify.bisim.* counters present):
    its per-verdict counters sum to verify.bisim.runs, and every
    verify.bisim.*_reachable gauge stays within its *_total partner
  * when the verifier race ran (verify.race.* counters present):
    conclusive_verdicts == bisim_wins + z3_wins, runs ==
    conclusive_verdicts + inconclusive, and — the differential-harness
    invariant — agreement_checks == agreements (the two checkers never
    disagreed on any verify phase of the run)
  * with --require-cache-hits, the metrics must show a warm synthesis
    cache: cache.hits > 0 and no more stores than misses (a hot state is
    never re-stored) — the assertion the warm-cache CI job runs on its
    second pass against the same PH_CACHE_DIR
  * with --require-sim-batch, the batched differential tester must have
    actually run (sim.batch.runs > 0 with samples > 0 and no
    mismatches, and spec rule coverage recorded) — the assertion the
    traced-compile CI step runs on
  * with --require-race, the metrics must show the raced verify phase
    actually ran and stayed in agreement: verify.race.runs > 0 with
    agreement_checks > 0 and verify.bisim.runs > 0 — the assertion the
    --verifier=race traced-compile CI step runs on
  * with --require-corpus-cov=SPEC,..., every named protocol-zoo spec
    must have published cov.corpus.<spec>.rules_{hit,total} gauges with
    total > 0 and hit == total (the 100%-coverage corpus gate) — the
    assertion the corpus CI step runs against
    BENCH_corpus_replay_metrics.json
  * with --metrics-only, the single positional argument is a metrics
    file and the trace checks are skipped (for producers like the bench
    binaries that emit no span trace)
  * with --diff-metrics=OTHER.json, every cov.* gauge and every
    sim.batch.* counter in either dump must be present and bit-identical
    in the other — the SIMD-invariance gate: CI replays the same corpus
    with PH_SIMD=off and with the widest kernel the runner supports, and
    the two metric dumps must not be distinguishable (DESIGN.md §12)
  * with --report=FILE, the attribution report (hawk_compile
    --report-out; obs/report.h, DESIGN.md §11) is schema-checked:
    report_version 1, required top-level fields, per-phase and per-state
    entries well-formed, every Z3 phase's sat+unsat+unknown summing to
    its query count, winner provenance present for solved states, and —
    on a successful single-threaded compile — the attribution bound:
    sum(phase seconds) within [0.9, 1.1] x total_sec
  * with --prom=FILE, the Prometheus text exposition (hawk_compile
    --prom-out; obs/expo.h) is parsed: every sample line is
    "name[{labels}] value", every family has a # TYPE line, histogram
    le-bucket samples are cumulative (monotone non-decreasing), and the
    +Inf bucket equals the family's _count

Exits non-zero with a message on the first violation.
"""
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' empty or not a list")

    named_tids = set()
    logged_tids = set()
    per_tid = defaultdict(list)
    span_names = set()
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i} missing '{key}': {e}")
        ph = e["ph"]
        if ph == "M":
            if e["name"] == "thread_name":
                named_tids.add(e["tid"])
            continue
        if ph not in ("X", "i"):
            fail(f"{path}: event {i} has unexpected ph {ph!r}")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{path}: event {i} has bad dur {dur!r}")
            span_names.add(e["name"])
        logged_tids.add(e["tid"])
        per_tid[e["tid"]].append(ts)

    unnamed = logged_tids - named_tids
    if unnamed:
        fail(f"{path}: tids {sorted(unnamed)} logged events but have no thread_name record")

    # The exporter sorts globally by timestamp, so each thread's sequence
    # must be monotonic too.
    for tid, stamps in per_tid.items():
        for a, b in zip(stamps, stamps[1:]):
            if b < a:
                fail(f"{path}: tid {tid} timestamps not monotonic ({a} then {b})")

    for expected in ("compile", "z3_check"):
        if not any(n == expected or n.startswith(expected + ":") for n in span_names):
            fail(f"{path}: expected a '{expected}' span; got {sorted(span_names)[:20]}")

    n_spans = sum(1 for e in events if e["ph"] == "X")
    print(f"check_trace: {path}: OK ({n_spans} spans, {len(per_tid)} thread(s))")


def check_sim_batch(path, counters, gauges, require_sim_batch=False):
    """Cross-check the batched-difftest counters and coverage gauges."""
    runs = counters.get("sim.batch.runs", 0)
    if runs:
        samples = counters.get("sim.batch.samples", 0)
        agree = counters.get("sim.batch.agree", 0)
        mismatch = counters.get("sim.batch.mismatch", 0)
        if agree + mismatch != samples:
            fail(f"{path}: sim.batch agree ({agree}) + mismatch ({mismatch}) "
                 f"!= samples ({samples})")
        for side in ("spec", "impl"):
            outcomes = sum(counters.get(f"sim.batch.{side}.{o}", 0)
                           for o in ("accept", "reject", "exhausted"))
            if outcomes != samples:
                fail(f"{path}: sim.batch.{side} outcome tallies sum to "
                     f"{outcomes}, expected samples ({samples})")
        if counters.get("sim.batch.skipped", 0) < 0:
            fail(f"{path}: sim.batch.skipped is negative")
        if runs and gauges.get("sim.batch.threads", 1) < 1:
            fail(f"{path}: sim.batch.threads gauge < 1 despite {runs} run(s)")

    for name, hit in gauges.items():
        if not (name.startswith("cov.") and name.endswith("_hit")):
            continue
        total_name = name[: -len("_hit")] + "_total"
        if total_name not in gauges:
            fail(f"{path}: gauge {name} has no matching {total_name}")
        if hit > gauges[total_name]:
            fail(f"{path}: {name} ({hit}) exceeds {total_name} ({gauges[total_name]})")

    if require_sim_batch:
        samples = counters.get("sim.batch.samples", 0)
        if runs <= 0 or samples <= 0:
            fail(f"{path}: expected a batched differential test; got "
                 f"sim.batch.runs={runs} samples={samples}")
        if counters.get("sim.batch.mismatch", 0) != 0:
            fail(f"{path}: batched differential test reported mismatches")
        if gauges.get("cov.spec.rules_total", 0) <= 0:
            fail(f"{path}: no spec rule coverage recorded "
                 f"(cov.spec.rules_total missing or 0)")
        print(f"check_trace: {path}: sim batch OK "
              f"(runs={runs} samples={samples} "
              f"rules {gauges.get('cov.spec.rules_hit', 0)}/{gauges['cov.spec.rules_total']})")


def check_verify_race(path, counters, gauges, require_race=False):
    """Cross-check the bisimulation / verifier-race counters (DESIGN.md §13)."""
    bisim_runs = counters.get("verify.bisim.runs", 0)
    if bisim_runs:
        verdicts = sum(counters.get(f"verify.bisim.verdict.{v}", 0)
                       for v in ("equivalent", "counterexample", "inconclusive"))
        if verdicts != bisim_runs:
            fail(f"{path}: verify.bisim verdict counters sum to {verdicts}, "
                 f"expected runs ({bisim_runs})")

    for name, reachable in gauges.items():
        if not (name.startswith("verify.bisim.") and name.endswith("_reachable")):
            continue
        total_name = name[: -len("_reachable")] + "_total"
        if total_name not in gauges:
            fail(f"{path}: gauge {name} has no matching {total_name}")
        if reachable > gauges[total_name]:
            fail(f"{path}: {name} ({reachable}) exceeds {total_name} "
                 f"({gauges[total_name]})")

    race_runs = counters.get("verify.race.runs", 0)
    if race_runs:
        conclusive = counters.get("verify.race.conclusive_verdicts", 0)
        bisim_wins = counters.get("verify.race.bisim_wins", 0)
        z3_wins = counters.get("verify.race.z3_wins", 0)
        inconclusive = counters.get("verify.race.inconclusive", 0)
        agreement_checks = counters.get("verify.race.agreement_checks", 0)
        agreements = counters.get("verify.race.agreements", 0)
        if conclusive != bisim_wins + z3_wins:
            fail(f"{path}: verify.race.conclusive_verdicts ({conclusive}) != "
                 f"bisim_wins ({bisim_wins}) + z3_wins ({z3_wins})")
        if conclusive + inconclusive != race_runs:
            fail(f"{path}: verify.race conclusive ({conclusive}) + inconclusive "
                 f"({inconclusive}) != runs ({race_runs})")
        if agreement_checks != agreements:
            fail(f"{path}: verifier race disagreed: agreement_checks "
                 f"({agreement_checks}) != agreements ({agreements})")

    if require_race:
        if race_runs <= 0:
            fail(f"{path}: expected a raced verify phase; verify.race.runs={race_runs}")
        if counters.get("verify.race.agreement_checks", 0) <= 0:
            fail(f"{path}: raced verify phase never had both checkers conclusive "
                 f"(verify.race.agreement_checks == 0)")
        if bisim_runs <= 0:
            fail(f"{path}: expected the bisimulation checker to run; "
                 f"verify.bisim.runs={bisim_runs}")
        print(f"check_trace: {path}: verifier race OK "
              f"(runs={race_runs} agreements="
              f"{counters.get('verify.race.agreements', 0)} "
              f"bisim_wins={counters.get('verify.race.bisim_wins', 0)} "
              f"z3_wins={counters.get('verify.race.z3_wins', 0)})")


def check_corpus_cov(path, gauges, specs):
    """Every named zoo spec published full-rule corpus coverage."""
    for spec in specs:
        total = gauges.get(f"cov.corpus.{spec}.rules_total", 0)
        hit = gauges.get(f"cov.corpus.{spec}.rules_hit", 0)
        if total <= 0:
            fail(f"{path}: no corpus coverage for spec '{spec}' "
                 f"(cov.corpus.{spec}.rules_total missing or 0)")
        if hit != total:
            fail(f"{path}: corpus coverage for '{spec}' incomplete "
                 f"({hit}/{total} rules)")
    print(f"check_trace: {path}: corpus coverage OK "
          f"({len(specs)} spec(s) at 100% rule coverage)")


def load_metrics(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")
    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            fail(f"{path}: missing '{key}' object")
    return doc


def diff_metrics(path_a, path_b):
    """The SIMD/thread-invariance gate: two metric dumps from replays of
    the same corpus must agree bit-for-bit on every cov.* gauge and every
    sim.batch.* counter. Timing histograms and z3.* counters are allowed
    to differ (the runs are separate processes)."""
    a, b = load_metrics(path_a), load_metrics(path_b)

    def invariant(doc):
        out = {}
        for name, v in doc["counters"].items():
            if name.startswith("sim.batch."):
                out[f"counter {name}"] = v
        for name, v in doc["gauges"].items():
            # sim.batch.threads is a config echo, not a result; everything
            # else under cov.* / sim.batch.* must be invariant.
            if name == "sim.batch.threads":
                continue
            if name.startswith("cov.") or name.startswith("sim.batch."):
                out[f"gauge {name}"] = v
        return out

    inv_a, inv_b = invariant(a), invariant(b)
    if not inv_a:
        fail(f"{path_a}: no cov.*/sim.batch.* metrics to diff")
    for key in sorted(set(inv_a) | set(inv_b)):
        if key not in inv_a:
            fail(f"{path_a}: missing {key} (present in {path_b})")
        if key not in inv_b:
            fail(f"{path_b}: missing {key} (present in {path_a})")
        if inv_a[key] != inv_b[key]:
            fail(f"metric divergence: {key}: "
                 f"{inv_a[key]} ({path_a}) != {inv_b[key]} ({path_b})")
    print(f"check_trace: {path_a} == {path_b}: OK "
          f"({len(inv_a)} invariant metric(s) identical)")


def check_metrics(path, require_cache_hits=False, require_sim_batch=False,
                  require_race=False, corpus_specs=None):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")

    for key in ("counters", "gauges", "histograms"):
        if key not in doc or not isinstance(doc[key], dict):
            fail(f"{path}: missing '{key}' object")
    counters = doc["counters"]

    z3_queries = {k: v for k, v in counters.items() if k.startswith("z3.") and k.endswith(".queries")}
    if not z3_queries:
        fail(f"{path}: no z3.<phase>.queries counters; got {sorted(counters)[:20]}")
    for name, total in z3_queries.items():
        phase = name[: -len(".queries")]
        outcomes = sum(counters.get(f"{phase}.{r}", 0) for r in ("sat", "unsat", "unknown"))
        if outcomes != total:
            fail(f"{path}: {phase} outcomes sum to {outcomes}, expected {total}")

    for name, h in doc["histograms"].items():
        buckets = h.get("bucket_counts")
        if not isinstance(buckets, list):
            fail(f"{path}: histogram {name} missing bucket_counts")
        if sum(buckets) != h.get("count"):
            fail(f"{path}: histogram {name} buckets sum {sum(buckets)} != count {h.get('count')}")
        if h.get("count", 0) < 0 or (h.get("count") and h.get("min", 0) > h.get("max", 0)):
            fail(f"{path}: histogram {name} has inconsistent count/min/max")

    check_sim_batch(path, counters, doc["gauges"], require_sim_batch=require_sim_batch)
    check_verify_race(path, counters, doc["gauges"], require_race=require_race)
    if corpus_specs:
        check_corpus_cov(path, doc["gauges"], corpus_specs)

    if require_cache_hits:
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        stores = counters.get("cache.stores", 0)
        if hits <= 0:
            fail(f"{path}: expected cache.hits > 0 on a warm run; "
                 f"got hits={hits} misses={misses} stores={stores}")
        if stores > misses:
            fail(f"{path}: warm run stored more entries ({stores}) than it missed "
                 f"({misses}) — hits are being re-stored")
        print(f"check_trace: {path}: warm cache OK "
              f"(hits={hits} misses={misses} stores={stores})")

    print(f"check_trace: {path}: OK ({len(counters)} counters, {len(doc['histograms'])} histograms)")


def check_z3_map(path, where, z3):
    if not isinstance(z3, dict):
        fail(f"{path}: {where}: 'z3' is not an object")
    for phase, z in z3.items():
        for key in ("queries", "sat", "unsat", "unknown", "seconds"):
            if not isinstance(z.get(key), (int, float)) or z[key] < 0:
                fail(f"{path}: {where}: z3.{phase}.{key} missing or negative")
        outcomes = z["sat"] + z["unsat"] + z["unknown"]
        if outcomes != z["queries"]:
            fail(f"{path}: {where}: z3.{phase} outcomes sum to {outcomes}, "
                 f"expected {z['queries']} queries")


def check_report(path):
    """Attribution-report schema + internal consistency (obs/report.h)."""
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: invalid JSON: {e}")

    if doc.get("report_version") != 1:
        fail(f"{path}: report_version != 1: {doc.get('report_version')!r}")
    for key in ("spec", "hw", "status"):
        if not isinstance(doc.get(key), str) or not doc[key]:
            fail(f"{path}: missing or empty '{key}'")
    for key in ("total_sec", "attributed_sec", "deadline_sec", "deadline_slack_sec"):
        if not isinstance(doc.get(key), (int, float)) or doc[key] < 0:
            fail(f"{path}: '{key}' missing or negative")
    threads = doc.get("threads")
    if not isinstance(threads, int) or threads < 1:
        fail(f"{path}: 'threads' missing or < 1")

    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(f"{path}: 'phases' empty or not a list")
    attributed = 0.0
    for p in phases:
        if not isinstance(p.get("name"), str) or not p["name"]:
            fail(f"{path}: phase missing 'name': {p}")
        if not isinstance(p.get("seconds"), (int, float)) or p["seconds"] < 0:
            fail(f"{path}: phase {p.get('name')!r} has bad 'seconds'")
        attributed += p["seconds"]
    if abs(attributed - doc["attributed_sec"]) > 1e-6 + 1e-3 * attributed:
        fail(f"{path}: attributed_sec {doc['attributed_sec']} != sum of phases {attributed}")

    states = doc.get("states")
    if not isinstance(states, list):
        fail(f"{path}: 'states' missing or not a list")
    names = []
    for s in states:
        name = s.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{path}: state missing 'name': {s}")
        names.append(name)
        where = f"state {name!r}"
        if s.get("source") not in ("solver", "cache", "trivial"):
            fail(f"{path}: {where}: bad source {s.get('source')!r}")
        for key in ("seconds", "winner_budget", "cache_lookup_sec"):
            if not isinstance(s.get(key), (int, float)) or s[key] < 0:
                fail(f"{path}: {where}: '{key}' missing or negative")
        for key in ("budget_attempts", "cegis_rounds", "cache_lookups"):
            if not isinstance(s.get(key), int) or s[key] < 0:
                fail(f"{path}: {where}: '{key}' missing or negative")
        if not isinstance(s.get("winner_variant"), int):
            fail(f"{path}: {where}: 'winner_variant' missing")
        if s["winner_variant"] < 0:
            fail(f"{path}: {where}: solved state has no winner provenance")
        if s["source"] == "cache" and s["cache_lookups"] < 1:
            fail(f"{path}: {where}: source 'cache' but no cache lookups recorded")
        check_z3_map(path, where, s.get("z3", {}))
        for v in s.get("variants", []):
            if not isinstance(v.get("variant"), int) or v["variant"] < 0:
                fail(f"{path}: {where}: variant entry missing index: {v}")
            check_z3_map(path, f"{where} variant {v['variant']}", v.get("z3", {}))
    if names != sorted(names):
        fail(f"{path}: states not sorted by name: {names}")

    # The acceptance bound: on a successful single-threaded compile the
    # phases explain >= 90% of the compile span (phase intervals are
    # contiguous coordinating-thread wall time) and never exceed it by
    # more than timer skew.
    if doc["status"] == "success" and threads == 1 and doc["total_sec"] > 0:
        ratio = attributed / doc["total_sec"]
        if not 0.9 <= ratio <= 1.1:
            fail(f"{path}: attribution ratio {ratio:.3f} outside [0.9, 1.1] "
                 f"(attributed {attributed:.6f}s of {doc['total_sec']:.6f}s)")

    print(f"check_trace: {path}: report OK ({doc['spec']} -> {doc['hw']}, "
          f"status={doc['status']}, {len(phases)} phases, {len(states)} states)")


def check_prom(path):
    """Prometheus text exposition 0.0.4 (obs/expo.h)."""
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    types = {}          # family -> type
    samples = []        # (name, labels, value)
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[2] in types:
                    fail(f"{path}:{i}: duplicate # TYPE for {parts[2]}")
                types[parts[2]] = parts[3]
            continue
        # name{label="v",...} value  |  name value
        rest = line
        labels = ""
        if "{" in line:
            brace = line.index("{")
            close = line.rindex("}")
            labels = line[brace + 1:close]
            rest = line[:brace] + line[close + 1:]
        fields = rest.split()
        if len(fields) != 2:
            fail(f"{path}:{i}: not 'name value': {line!r}")
        name, value = fields
        if not all(c.isalnum() or c in "_:" for c in name):
            fail(f"{path}:{i}: invalid metric name {name!r}")
        try:
            value = float(value)
        except ValueError:
            fail(f"{path}:{i}: non-numeric value in {line!r}")
        samples.append((name, labels, value))
    if not samples:
        fail(f"{path}: no samples")

    def family_of(name):
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    hist_buckets = {}
    counts = {}
    for name, labels, value in samples:
        family = family_of(name)
        if family not in types:
            fail(f"{path}: sample {name!r} has no # TYPE line")
        if types[family] == "histogram" and name.endswith("_bucket"):
            hist_buckets.setdefault(family, []).append((labels, value))
        if types[family] == "histogram" and name.endswith("_count"):
            counts[family] = value

    if not hist_buckets:
        fail(f"{path}: no histogram families (expected at least the z3 timings)")
    for family, buckets in hist_buckets.items():
        # Rendering order is bound order; cumulative values must be monotone
        # and close at +Inf == _count.
        values = [v for _, v in buckets]
        if any(values[i] > values[i + 1] for i in range(len(values) - 1)):
            fail(f"{path}: {family}: bucket samples not cumulative: {values}")
        if 'le="+Inf"' not in buckets[-1][0]:
            fail(f"{path}: {family}: last bucket is not +Inf ({buckets[-1][0]!r})")
        if family not in counts:
            fail(f"{path}: {family}: histogram has no _count sample")
        if values[-1] != counts[family]:
            fail(f"{path}: {family}: +Inf bucket {values[-1]} != _count {counts[family]}")

    print(f"check_trace: {path}: prom OK ({len(samples)} samples, "
          f"{len(types)} families, {len(hist_buckets)} histograms)")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = set(sys.argv[1:]) - set(args)
    corpus_specs = []
    report_path = ""
    prom_path = ""
    diff_path = ""
    simple_flags = set()
    for flag in flags:
        if flag.startswith("--require-corpus-cov="):
            corpus_specs = [s for s in flag.split("=", 1)[1].split(",") if s]
        elif flag.startswith("--report="):
            report_path = flag.split("=", 1)[1]
        elif flag.startswith("--prom="):
            prom_path = flag.split("=", 1)[1]
        elif flag.startswith("--diff-metrics="):
            diff_path = flag.split("=", 1)[1]
        else:
            simple_flags.add(flag)
    if simple_flags - {"--require-cache-hits", "--require-sim-batch",
                       "--require-race", "--metrics-only"}:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    require_cache_hits = "--require-cache-hits" in simple_flags
    require_sim_batch = "--require-sim-batch" in simple_flags
    require_race = "--require-race" in simple_flags
    metrics_only = "--metrics-only" in simple_flags
    if report_path:
        check_report(report_path)
    if prom_path:
        check_prom(prom_path)
    if (report_path or prom_path) and not args and not metrics_only:
        return  # report/prom-only invocation
    if metrics_only:
        if len(args) != 1:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_metrics(args[0], require_cache_hits=require_cache_hits,
                      require_sim_batch=require_sim_batch,
                      require_race=require_race, corpus_specs=corpus_specs)
        if diff_path:
            diff_metrics(args[0], diff_path)
        return
    if diff_path:
        # --diff-metrics pairs with a metrics file: positional arg 2 when a
        # trace is also given, else the sole positional arg.
        if len(args) == 1:
            diff_metrics(args[0], diff_path)
            return
    if len(args) < 1 or len(args) > 2 or (
            (require_cache_hits or require_sim_batch or require_race or corpus_specs)
            and len(args) < 2):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(args[0])
    if len(args) == 2:
        check_metrics(args[1], require_cache_hits=require_cache_hits,
                      require_sim_batch=require_sim_batch,
                      require_race=require_race, corpus_specs=corpus_specs)
        if diff_path:
            diff_metrics(args[1], diff_path)


if __name__ == "__main__":
    main()
