#!/usr/bin/env python3
"""Bench-regression sentinel: compare bench results against committed baselines.

Usage: ci/bench_compare.py CURRENT.json [CURRENT2.json ...]
           [--baselines bench/baselines] [--time-tolerance 1.5]
           [--count-tolerance 0.25] [--counts-only]
           [--inject-regression FACTOR] [--history FILE]
           [--update-baselines]

Understands both result formats this repo produces:
  * bench sidecars ({"bench", "rows": [...], "metrics": ...}) written by
    every bench binary via bench_util's JsonReport — rows are keyed by
    their "family"/"name"/"label" field;
  * google-benchmark JSON ({"context", "benchmarks": [...]}) written by
    bench_micro --benchmark_out — entries are keyed by benchmark name,
    and real_time/cpu_time are normalized to seconds.

Each current file is matched to <baselines>/<same basename>. Per-metric
classification decides what counts as a regression:
  * strings ("opt_status", ...) and booleans ("identical") must match the
    baseline exactly — a flipped status is a regression at any tolerance;
  * time-like metrics (keys ending in "seconds"/"_sec"/"time_sec", or
    real_time/cpu_time) regress when current > baseline * TIME_TOL.
    Wall-clock noise is real, so the default TIME_TOL is 1.5 and CI runs
    with a much larger one (shared runners) or --counts-only;
  * higher-is-better metrics (keys containing "speedup"/"throughput" or
    ending in "_per_sec") regress when current < baseline / TIME_TOL;
  * remaining numbers are counts (tcam_entries, stages, cegis_rounds,
    z3 queries ...) and regress when they drift more than COUNT_TOL
    relative — synthesis is deterministic, so these are nearly exact and
    catch algorithmic regressions that timing noise would hide;
  * a row or metric present in the baseline but missing from the current
    run is a regression (coverage must not silently shrink); new rows and
    new metrics are reported but never fail.

--counts-only skips both wall-clock classes entirely (the strictest
useful mode on noisy shared runners). --inject-regression F multiplies
every current time-like metric by F (and divides higher-is-better ones)
before comparing — the self-test CI uses to prove the sentinel actually
fails on a 2x slowdown. --history FILE appends one JSONL record per
compared file (timestamp, verdict, headline metrics) to keep a local
performance log across runs. --update-baselines copies the current files
over the baselines (refresh after an intentional change) and exits 0.

Exits 1 when any comparison regressed, 2 on usage/schema errors.
"""
import argparse
import json
import os
import shutil
import sys
import time

TIME_SUFFIXES = ("seconds", "_sec", "time_sec")
TIME_NAMES = {"real_time", "cpu_time"}
HIGHER_IS_BETTER = ("speedup", "throughput")

# google-benchmark time_unit -> seconds
TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def fail_usage(msg):
    print(f"bench_compare: ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def is_time_metric(key):
    return key in TIME_NAMES or any(key.endswith(s) for s in TIME_SUFFIXES)


def is_higher_better(key):
    return any(tag in key for tag in HIGHER_IS_BETTER) or key.endswith("_per_sec")


def load_rows(path):
    """Return (bench_name, {row_id: {metric: value}}) for either format."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"{path}: cannot load: {e}")
    if not isinstance(doc, dict):
        fail_usage(f"{path}: not a JSON object")

    rows = {}
    if "benchmarks" in doc:  # google-benchmark
        name = "google_benchmark"
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            scale = TIME_UNITS.get(b.get("time_unit", "ns"), 1e-9)
            rows[b["name"]] = {
                "real_time": b.get("real_time", 0) * scale,
                "cpu_time": b.get("cpu_time", 0) * scale,
            }
        return name, rows
    if "rows" in doc:  # bench_util sidecar
        name = doc.get("bench", os.path.basename(path))
        for i, row in enumerate(doc["rows"]):
            row_id = row.get("family") or row.get("name") or row.get("label") or f"row{i}"
            rows[str(row_id)] = {
                k: v for k, v in row.items()
                if k not in ("family", "name", "label") and not isinstance(v, (dict, list))
            }
        return name, rows
    fail_usage(f"{path}: neither a bench sidecar ('rows') nor google-benchmark "
               f"output ('benchmarks')")


def inject_regression(rows, factor):
    """Degrade every wall-clock metric by `factor` (sentinel self-test)."""
    for metrics in rows.values():
        for key, value in list(metrics.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if is_time_metric(key):
                metrics[key] = value * factor
            elif is_higher_better(key):
                metrics[key] = value / factor
    return rows


def compare_metric(row_id, key, base, cur, args, problems, notes):
    where = f"{row_id}/{key}"
    if isinstance(base, bool) or isinstance(cur, bool):
        if bool(base) != bool(cur):
            if bool(base) and not bool(cur):
                problems.append(f"{where}: flag flipped {base} -> {cur}")
            else:
                notes.append(f"{where}: flag improved {base} -> {cur}")
        return
    if isinstance(base, str) or isinstance(cur, str):
        if str(base) != str(cur):
            problems.append(f"{where}: {base!r} -> {cur!r}")
        return
    if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
        return

    if is_time_metric(key):
        if args.counts_only:
            return
        if base <= 0:
            return  # nothing meaningful to ratio against
        ratio = cur / base
        if ratio > args.time_tolerance:
            problems.append(f"{where}: {base:.6g}s -> {cur:.6g}s "
                            f"({ratio:.2f}x, tolerance {args.time_tolerance}x)")
        elif ratio < 1.0 / args.time_tolerance:
            notes.append(f"{where}: improved {base:.6g}s -> {cur:.6g}s ({ratio:.2f}x)")
        return
    if is_higher_better(key):
        if args.counts_only:
            return
        if base <= 0:
            return
        ratio = cur / base
        if ratio < 1.0 / args.time_tolerance:
            problems.append(f"{where}: {base:.6g} -> {cur:.6g} "
                            f"({ratio:.2f}x, tolerance {args.time_tolerance}x)")
        elif ratio > args.time_tolerance:
            notes.append(f"{where}: improved {base:.6g} -> {cur:.6g} ({ratio:.2f}x)")
        return

    # Counts: near-exact (deterministic synthesis), small relative slack.
    denom = max(abs(base), 1.0)
    drift = abs(cur - base) / denom
    if drift > args.count_tolerance:
        problems.append(f"{where}: count {base:.6g} -> {cur:.6g} "
                        f"(drift {drift:.0%}, tolerance {args.count_tolerance:.0%})")


def compare_file(cur_path, base_path, args):
    """Returns (bench_name, problems, notes, headline)."""
    cur_name, cur_rows = load_rows(cur_path)
    base_name, base_rows = load_rows(base_path)
    if args.inject_regression:
        cur_rows = inject_regression(cur_rows, args.inject_regression)

    problems, notes = [], []
    if cur_name != base_name:
        problems.append(f"bench name mismatch: baseline {base_name!r}, current {cur_name!r}")

    for row_id, base_metrics in base_rows.items():
        if row_id not in cur_rows:
            problems.append(f"{row_id}: row present in baseline but missing from current run")
            continue
        cur_metrics = cur_rows[row_id]
        for key, base_value in base_metrics.items():
            if key not in cur_metrics:
                problems.append(f"{row_id}/{key}: metric present in baseline but missing")
                continue
            compare_metric(row_id, key, base_value, cur_metrics[key], args, problems, notes)
        for key in cur_metrics:
            if key not in base_metrics:
                notes.append(f"{row_id}/{key}: new metric (not in baseline)")
    for row_id in cur_rows:
        if row_id not in base_rows:
            notes.append(f"{row_id}: new row (not in baseline)")

    # Headline metrics for the history log: every wall-clock or
    # higher-is-better number, flattened.
    headline = {}
    for row_id, metrics in cur_rows.items():
        for key, value in metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if is_time_metric(key) or is_higher_better(key):
                headline[f"{row_id}/{key}"] = value
    return cur_name, problems, notes, headline


def append_history(path, record):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")


def main():
    parser = argparse.ArgumentParser(add_help=True, description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="current bench result JSON file(s)")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline JSON files")
    parser.add_argument("--time-tolerance", type=float, default=1.5,
                        help="max slowdown ratio for wall-clock metrics (default 1.5)")
    parser.add_argument("--count-tolerance", type=float, default=0.25,
                        help="max relative drift for count metrics (default 0.25)")
    parser.add_argument("--counts-only", action="store_true",
                        help="skip wall-clock comparisons (noisy shared runners)")
    parser.add_argument("--inject-regression", type=float, default=0.0, metavar="FACTOR",
                        help="degrade current wall-clock metrics by FACTOR (self-test)")
    parser.add_argument("--history", default="",
                        help="append one JSONL record per file to this log")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy current files over the baselines and exit")
    args = parser.parse_args()

    if args.update_baselines:
        os.makedirs(args.baselines, exist_ok=True)
        for path in args.files:
            dst = os.path.join(args.baselines, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"bench_compare: baseline updated: {dst}")
        return

    any_regressed = False
    for path in args.files:
        base_path = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.exists(base_path):
            fail_usage(f"no baseline for {path} (expected {base_path}; "
                       f"run with --update-baselines to create it)")
        bench, problems, notes, headline = compare_file(path, base_path, args)
        verdict = "REGRESSED" if problems else "ok"
        print(f"bench_compare: {path} vs {base_path}: {verdict} "
              f"({len(problems)} regression(s), {len(notes)} note(s))")
        for p in problems:
            print(f"  REGRESSION {p}")
        for n in notes:
            print(f"  note       {n}")
        if problems:
            any_regressed = True
        if args.history:
            append_history(args.history, {
                "ts": int(time.time()),
                "bench": bench,
                "file": os.path.basename(path),
                "verdict": verdict,
                "regressions": len(problems),
                "injected": args.inject_regression or None,
                "metrics": headline,
            })
    sys.exit(1 if any_regressed else 0)


if __name__ == "__main__":
    main()
