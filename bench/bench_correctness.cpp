// §7.1 correctness validation: every synthesized implementation is checked
// by (a) the bounded formal verifier during compilation and (b) the
// Figure 22 differential simulator with path-directed and uniform random
// bitstreams here. The paper reports all benchmarks passing; so must we.
#include <cstdio>

#include "bench_util.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("correctness");
  std::printf("=== §7.1 correctness: differential validation of all compiled parsers ===\n\n");
  TextTable table({"Benchmark", "Target", "Compile", "Formally verified", "Diff samples",
                   "Result"});
  int total = 0, passed = 0;
  for (const auto& b : suite::base_suite()) {
    for (const HwProfile& hw : {tofino(), ipu()}) {
      SynthOptions opts;
      opts.timeout_sec = opt_timeout_sec();
      CompileResult r = compile(b.spec, hw, opts);
      report.begin_row();
      report.set("benchmark", b.name);
      report.set("target", hw.name);
      report.add_compile("ph", r);
      if (!r.ok()) {
        table.add_row({b.name, hw.name, failure_cell(r), "", "", ""});
        continue;
      }
      ++total;
      DiffTestOptions dt;
      dt.samples = 500;
      dt.seed = 0xC0FFEE;
      dt.max_iterations = r.program.max_iterations;
      auto mismatch = differential_test(r.reference, r.program, dt);
      bool ok = !mismatch.has_value();
      report.set("diff_pass", ok);
      if (ok) ++passed;
      table.add_row({b.name, hw.name, "ok", r.stats.formally_verified ? "yes" : "bounded-only",
                     "1000", ok ? "PASS" : "FAIL on " + mismatch->input.to_string()});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%d/%d compiled parsers pass differential validation.\n", passed, total);
  report.write();
  return passed == total ? 0 : 1;
}
