// Opt7 parallel-portfolio scaling: wall-clock speedup of the Table 3 suite
// at 1/2/4/8 synthesis threads.
//
//   ./build/bench/bench_parallel_scaling            # full Table 3 bases
//   PH_SCALING_REPS=3 ./build/bench/bench_parallel_scaling
//
// The compiled program is identical at every thread count (the
// deterministic-winner rule; see DESIGN.md §6) — the harness asserts that
// per row, so a scaling number never hides a semantic divergence. Times are
// best-of-PH_SCALING_REPS (default 1) per cell.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "support/table.h"
#include "support/timer.h"
#include "synth/compiler.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

int reps() {
  const char* v = std::getenv("PH_SCALING_REPS");
  int r = v != nullptr ? std::atoi(v) : 1;
  return r < 1 ? 1 : r;
}

bool same_program(const TcamProgram& a, const TcamProgram& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const TcamEntry& x = a.entries[i];
    const TcamEntry& y = b.entries[i];
    if (x.table != y.table || x.state != y.state || x.entry != y.entry || x.value != y.value ||
        x.mask != y.mask || x.next_table != y.next_table || x.next_state != y.next_state)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  JsonReport report("parallel_scaling");
  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const int r = reps();

  // The deterministic-winner rule means losing attempts below the winner
  // always run to completion, so speedup comes from physical parallelism,
  // not reduced work: on an N-core machine expect up to ~min(N, states x
  // shapes)x, and ~1x (pool overhead only) when only one core is available.
  unsigned hc = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u%s\n\n", hc,
              hc < 4 ? "  (speedup is bounded by physical parallelism; expect ~1x here)" : "");

  TextTable table({"Benchmark", "States", "t(1)", "t(2)", "t(4)", "t(8)", "speedup@4",
                   "speedup@8", "identical"});

  double geo_sum4 = 0;
  int geo_n4 = 0;
  for (const auto& family : table3_families()) {
    const ParserSpec& spec = family.variants.front().spec;
    std::vector<double> secs;
    CompileResult ref;
    bool identical = true;
    bool all_ok = true;
    for (int threads : thread_counts) {
      SynthOptions opts;
      opts.timeout_sec = opt_timeout_sec();
      opts.num_threads = threads;
      double best = 1e30;
      CompileResult result;
      for (int i = 0; i < r; ++i) {
        Stopwatch watch;
        result = compile(spec, tofino(), opts);
        best = std::min(best, watch.elapsed_sec());
      }
      secs.push_back(best);
      if (!result.ok()) all_ok = false;
      if (threads == 1) {
        ref = std::move(result);
      } else if (all_ok && !same_program(ref.program, result.program)) {
        identical = false;
      }
    }
    auto speedup = [&](double base, double t) {
      return fmt_double(t > 0 ? base / t : 0.0, 2) + "x";
    };
    report.begin_row();
    report.set("benchmark", family.name);
    report.set("states", static_cast<std::int64_t>(spec.states.size()));
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti)
      report.set("t" + std::to_string(thread_counts[ti]) + "_sec", secs[ti]);
    report.set("identical", identical);
    report.set("all_ok", all_ok);
    if (all_ok && secs[2] > 0) {
      geo_sum4 += std::log(secs[0] / secs[2]);
      ++geo_n4;
    }
    table.add_row({family.name, std::to_string(spec.states.size()), fmt_double(secs[0], 3),
                   fmt_double(secs[1], 3), fmt_double(secs[2], 3), fmt_double(secs[3], 3),
                   speedup(secs[0], secs[2]), speedup(secs[0], secs[3]),
                   all_ok ? (identical ? "yes" : "NO — BUG") : "(failed)"});
  }
  std::printf("%s\n", table.to_string().c_str());
  if (geo_n4 > 0)
    std::printf("geomean speedup @4 threads: %.2fx over %d benchmarks\n",
                std::exp(geo_sum4 / geo_n4), geo_n4);
  report.write();
  return 0;
}
