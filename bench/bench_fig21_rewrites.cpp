// Figure 21 robustness: ParserHawk's resource usage is invariant under the
// semantic-preserving rewrites ±R1..±R5, while the rule-per-entry baseline
// pays for every cosmetic artifact in the source.
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "rewrite/rewrite.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "support/table.h"
#include "synth/normalize.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("fig21_rewrites");
  std::printf("=== Figure 21: resource stability under semantic-preserving rewrites ===\n\n");
  Rng rng(0xF16);

  struct Base {
    std::string name;
    ParserSpec spec;
  };
  bool all_invariant = true;
  for (const Base& base : {Base{"figure3", suite::figure3_program()},
                           Base{"parse_ethernet", suite::parse_ethernet()}}) {
    std::vector<std::pair<std::string, ParserSpec>> variants = {
        {"base", base.spec},
        {"+R1 (redundant entries)", rewrite::add_redundant_entries(base.spec, rng, 3)},
        {"+R2 (unreachable entries)", rewrite::add_unreachable_entries(base.spec, rng, 2)},
        {"+R3 (split entries)", rewrite::split_entries(base.spec, rng, 2)},
        {"+R5 (split states)", rewrite::split_states(base.spec, rng, 1)},
        {"-R5 (merged states)", merge_extract_chains(base.spec)},
    };

    TextTable table({"Variant of " + base.name, "ParserHawk #TCAM", "Tofino proxy #TCAM"});
    int ph_base = -1;
    bool invariant = true;
    for (const auto& [label, spec] : variants) {
      SynthOptions opts;
      opts.timeout_sec = opt_timeout_sec();
      CompileResult ph = compile(spec, tofino(), opts);
      CompileResult proxy = baseline::compile_tofino_proxy(spec, tofino());
      report.begin_row();
      report.set("base", base.name);
      report.set("variant", label);
      report.add_compile("ph", ph);
      report.add_compile("proxy", proxy);
      table.add_row({label, tcam_cell(ph), tcam_cell(proxy)});
      if (ph.ok()) {
        if (ph_base < 0) ph_base = ph.usage.tcam_entries;
        if (ph.usage.tcam_entries != ph_base) invariant = false;
      } else {
        invariant = false;
      }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf("ParserHawk invariant across %s rewrites: %s\n\n", base.name.c_str(),
                invariant ? "yes" : "NO");
    all_invariant = all_invariant && invariant;
  }
  report.write();
  return all_invariant ? 0 : 1;
}
