// Warm-vs-cold synthesis-cache benchmark (DESIGN.md §8).
//
// Compiles every table3 family base for Tofino three times against one
// content-addressed cache:
//   cold       empty cache — every state is solved and stored;
//   warm-mem   same cache instance — every state hits the in-memory LRU;
//   warm-disk  fresh cache instance over the same directory — every state
//              hits the on-disk tier (simulates a new process / CI rerun).
// Each warm program is asserted row-for-row identical to its cold program
// (the cache's contract: hits are bit-identical to a cold solve), and the
// headline number is the aggregate cold/warm speedup — the acceptance bar
// is >= 3x on the warm-mem pass.
//
// The cache directory is PH_CACHE_DIR when set (and is then left in
// place), otherwise a scratch directory that is removed at exit.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "cache/cache.h"
#include "support/table.h"
#include "support/timer.h"
#include "tcam/tcam.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  HwProfile hw = tofino();
  JsonReport report("cache_warm");

  bool keep_dir = !cache_dir().empty();
  std::string dir = keep_dir
                        ? cache_dir()
                        : (std::filesystem::temp_directory_path() / "ph_bench_cache_warm").string();
  std::error_code ec;
  if (!keep_dir) std::filesystem::remove_all(dir, ec);  // stale state from an aborted run

  cache::CacheConfig cfg;
  cfg.disk_dir = dir;
  cache::SynthCache warm_cache(cfg);

  std::printf("=== Warm-cache recompile: table3 suite on Tofino (cache at %s) ===\n\n", dir.c_str());
  TextTable table({"Program Name", "cold (s)", "warm-mem (s)", "warm-disk (s)", "speedup",
                   "identical"});

  auto compile_with = [&](const ParserSpec& spec, cache::SynthCache* sc, double* seconds) {
    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    opts.num_threads = num_threads();
    opts.cache = sc;
    Stopwatch watch;
    CompileResult r = compile(spec, hw, opts);
    *seconds = watch.elapsed_sec();
    return r;
  };

  double total_cold = 0, total_warm = 0, total_disk = 0;
  int rows = 0, identical_rows = 0;
  for (const auto& family : table3_families()) {
    const ParserSpec& spec = family.variants.front().spec;

    double cold_sec = 0, warm_sec = 0, disk_sec = 0;
    CompileResult cold = compile_with(spec, &warm_cache, &cold_sec);
    CompileResult warm = compile_with(spec, &warm_cache, &warm_sec);

    // Fresh instance over the same directory: the memory tier starts empty,
    // so every hit exercises the disk entries (decode + validate).
    cache::SynthCache disk_cache(cfg);
    CompileResult disk = compile_with(spec, &disk_cache, &disk_sec);

    bool identical = cold.ok() && warm.ok() && disk.ok() &&
                     to_string(cold.program) == to_string(warm.program) &&
                     to_string(cold.program) == to_string(disk.program);
    ++rows;
    if (identical) ++identical_rows;
    total_cold += cold_sec;
    total_warm += warm_sec;
    total_disk += disk_sec;

    report.begin_row();
    report.set("family", family.name);
    report.set("cold_seconds", cold_sec);
    report.set("warm_seconds", warm_sec);
    report.set("disk_warm_seconds", disk_sec);
    report.set("speedup", warm_sec > 0 ? cold_sec / warm_sec : 0.0);
    report.set("identical", identical);
    report.add_compile("cold", cold);

    table.add_row({family.name, fmt_double(cold_sec, 3), fmt_double(warm_sec, 3),
                   fmt_double(disk_sec, 3),
                   warm_sec > 0 ? fmt_double(cold_sec / warm_sec, 1) + "x" : "",
                   identical ? "yes" : "NO"});
  }

  double speedup = total_warm > 0 ? total_cold / total_warm : 0.0;
  double disk_speedup = total_disk > 0 ? total_cold / total_disk : 0.0;
  std::printf("%s\n", table.to_string().c_str());
  auto counters = warm_cache.counters();
  std::printf("aggregate: cold %.2fs, warm-mem %.2fs (%.1fx), warm-disk %.2fs (%.1fx); "
              "%d/%d programs identical; cache: %lld hits / %lld misses / %lld bytes\n",
              total_cold, total_warm, speedup, total_disk, disk_speedup, identical_rows, rows,
              static_cast<long long>(counters.hits), static_cast<long long>(counters.misses),
              static_cast<long long>(counters.bytes));

  report.begin_row();
  report.set("family", "TOTAL");
  report.set("cold_seconds", total_cold);
  report.set("warm_seconds", total_warm);
  report.set("disk_warm_seconds", total_disk);
  report.set("speedup", speedup);
  report.set("disk_speedup", disk_speedup);
  report.set("identical", identical_rows == rows);
  report.set("cache_hits", counters.hits);
  report.set("cache_misses", counters.misses);
  report.set("cache_bytes", counters.bytes);
  report.write();

  if (!keep_dir) std::filesystem::remove_all(dir, ec);
  // The acceptance bar: warm recompiles must be >= 3x faster and
  // bit-identical.
  return identical_rows == rows && speedup >= 3.0 ? 0 : 1;
}
