// Abstract / §7.4 headline: geometric-mean OPT-vs-Orig speedup across the
// suite, and the fraction of benchmarks compiling within the "one minute"
// class (scaled: within 1/10 of the Orig timeout on this machine).
//
// The paper reports a geomean of 309.44x against a 24h timeout on a 28-core
// server; with the scaled timeout the geomean here is a *lower bound* —
// most Orig runs are cut off at PH_ORIG_TIMEOUT_SEC, exactly like the
// paper's ">86400" rows.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("speedup_summary");
  std::printf("=== Speedup summary (abstract / §7.4) ===\n\n");
  TextTable table({"Benchmark", "Target", "OPT (s)", "Orig (s)", "speedup"});
  double log_sum = 0;
  int n = 0, fast = 0, timed_out = 0;
  const double fast_threshold = 60.0;  // the paper's literal "one minute" class

  for (const auto& b : suite::base_suite()) {
    for (const HwProfile& hw : {tofino(), ipu()}) {
      PhRun run = run_parserhawk(b.spec, hw);
      report.begin_row();
      report.set("benchmark", b.name);
      report.set("target", hw.name);
      report.add_run(run);
      if (!run.opt.ok() || !run.orig_ran) continue;
      double orig_time = run.orig_timed_out ? orig_timeout_sec() : run.orig.stats.seconds;
      double speedup = orig_time / std::max(run.opt.stats.seconds, 1e-4);
      log_sum += std::log(speedup);
      ++n;
      if (run.opt.stats.seconds <= fast_threshold) ++fast;
      if (run.orig_timed_out) ++timed_out;
      table.add_row({b.name, hw.name, fmt_double(run.opt.stats.seconds, 2),
                     fmt_seconds(orig_time, run.orig_timed_out),
                     (run.orig_timed_out ? ">" : "") + fmt_double(speedup, 2)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  if (n > 0) {
    double geomean = std::exp(log_sum / n);
    std::printf("Geometric-mean speedup over %d runs: %s%.2fx "
                "(paper: 309.44x against a 24h budget)\n",
                n, timed_out > 0 ? ">" : "", geomean);
    std::printf("%d/%d OPT runs finished within %.0fs — the paper's 'under one minute' class "
                "(>80%% expected)\n",
                fast, n, fast_threshold);
  } else {
    std::printf("Orig runs skipped (PH_SKIP_ORIG set); no geomean to report.\n");
  }
  report.write();
  return 0;
}
