// Verifier shootout: Z3 vs bisimulation vs race (DESIGN.md §13).
//
// Compiles every table3 family base for Tofino three times — once per
// --verifier value — against one shared in-memory synthesis cache, so the
// CEGIS/synthesis work amortizes after the first pass and the measured
// deltas isolate the verify phase. Per family the harness asserts:
//   * all three compiles succeed and come back formally verified;
//   * the three compiled programs are row-for-row identical (the race
//     verifier's determinism contract: its payload is bit-identical to
//     --verifier=z3 at any thread count);
//   * the race pass is never slower than the slower single verifier
//     (with generous slack for shared-runner noise).
// The human table adds a race-winner column and an aggregate bisim
// win-rate; those are timing-dependent, so the sidecar carries them only
// inside the embedded metrics snapshot (verify.race.*) — the gated row
// fields are all deterministic.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_util.h"
#include "cache/cache.h"
#include "support/table.h"
#include "tcam/tcam.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  HwProfile hw = tofino();
  JsonReport report("verify");

  // Memory-only cache shared by all passes: pass 2 and 3 hit the LRU for
  // every synthesized state, but the verify phase always re-runs.
  cache::SynthCache shared_cache;

  auto compile_with = [&](const ParserSpec& spec, VerifierKind kind) {
    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    opts.num_threads =
        kind == VerifierKind::Race ? std::max(2, num_threads()) : num_threads();
    opts.cache = &shared_cache;
    opts.verifier = kind;
    return compile(spec, hw, opts);
  };

  std::printf("=== Verifier shootout: table3 suite on Tofino ===\n\n");
  TextTable table({"Program Name", "z3 (s)", "bisim (s)", "race (s)", "race winner",
                   "identical"});

  double total_z3 = 0, total_bisim = 0, total_race = 0;
  int rows = 0, clean_rows = 0, bisim_wins = 0, race_conclusive = 0;
  for (const auto& family : table3_families()) {
    const ParserSpec& spec = family.variants.front().spec;

    CompileResult rz3 = compile_with(spec, VerifierKind::Z3);
    CompileResult rbisim = compile_with(spec, VerifierKind::Bisim);
    CompileResult rrace = compile_with(spec, VerifierKind::Race);

    double z3_sec = rz3.stats.verify_seconds;
    double bisim_sec = rbisim.stats.verify_seconds;
    double race_sec = rrace.stats.verify_seconds;

    bool all_ok = rz3.ok() && rbisim.ok() && rrace.ok();
    bool verified = all_ok && rz3.stats.formally_verified &&
                    rbisim.stats.formally_verified && rrace.stats.formally_verified;
    bool identical = all_ok && to_string(rz3.program) == to_string(rbisim.program) &&
                     to_string(rz3.program) == to_string(rrace.program);
    // Race runs both checkers to completion; on >= 2 cores they overlap,
    // so the wall clock is ~max(z3, bisim) and the gate holds race to the
    // slower single verifier. A single-core host serializes the two jobs —
    // there the sound bound is their sum, and the gate only checks race
    // adds no further overhead. The 2x + 250ms slack absorbs scheduler
    // noise and, for loopy families, the Opt7 whole-program variant race
    // competing for the same cores (this bool is exact-matched by the
    // bench_compare counts-only gate, so it must be robust on shared
    // runners).
    double budget = std::thread::hardware_concurrency() >= 2
                        ? std::max(z3_sec, bisim_sec)
                        : z3_sec + bisim_sec;
    bool race_not_slower = race_sec <= budget * 2.0 + 0.25;

    std::string winner;
    if (rrace.verifier == "race:bisim" || rrace.verifier == "race:z3") {
      ++race_conclusive;
      winner = rrace.verifier.substr(5);
      if (winner == "bisim") ++bisim_wins;
    }

    ++rows;
    if (verified && identical && race_not_slower) ++clean_rows;
    total_z3 += z3_sec;
    total_bisim += bisim_sec;
    total_race += race_sec;

    report.begin_row();
    report.set("family", family.name);
    report.set("z3_status", rz3.ok() ? "ok" : rz3.reason);
    report.set("bisim_status", rbisim.ok() ? "ok" : rbisim.reason);
    report.set("race_status", rrace.ok() ? "ok" : rrace.reason);
    report.set("z3_verify_seconds", z3_sec);
    report.set("bisim_verify_seconds", bisim_sec);
    report.set("race_verify_seconds", race_sec);
    report.set("verified", verified);
    report.set("identical", identical);
    report.set("race_not_slower", race_not_slower);
    if (rbisim.reach_valid) {
      report.set("bisim_states_reachable", rbisim.reach.states_reachable());
      report.set("bisim_states_total", rbisim.reach.states_total());
      report.set("bisim_rules_reachable", rbisim.reach.rules_reachable());
      report.set("bisim_rules_total", rbisim.reach.rules_total());
      report.set("bisim_rows_reachable", rbisim.reach.rows_reachable());
      report.set("bisim_rows_total", rbisim.reach.rows_total());
      report.set("bisim_exact", rbisim.reach.exact);
    }

    table.add_row({family.name, fmt_double(z3_sec, 3), fmt_double(bisim_sec, 3),
                   fmt_double(race_sec, 3), winner,
                   identical && verified ? "yes" : "NO"});
  }

  double win_rate = race_conclusive > 0
                        ? static_cast<double>(bisim_wins) / race_conclusive
                        : 0.0;
  std::printf("%s\n", table.to_string().c_str());
  std::printf("aggregate: z3 %.2fs, bisim %.2fs, race %.2fs; "
              "bisim win-rate %d/%d (%.0f%%); %d/%d rows clean\n",
              total_z3, total_bisim, total_race, bisim_wins, race_conclusive,
              win_rate * 100.0, clean_rows, rows);

  report.begin_row();
  report.set("family", "TOTAL");
  report.set("families", rows);
  report.set("z3_verify_seconds", total_z3);
  report.set("bisim_verify_seconds", total_bisim);
  report.set("race_verify_seconds", total_race);
  report.set("all_clean", clean_rows == rows);
  report.write();

  // Gate: every family verified by all three checkers, bit-identical
  // programs, race never slower than the slower single verifier.
  return clean_rows == rows ? 0 : 1;
}
