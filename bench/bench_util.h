// Shared machinery for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §3).
//
// Wall-clock scaling: the paper's 24-hour compilation timeout is scaled to
// seconds on this machine. Knobs (environment variables):
//   PH_ORIG_TIMEOUT_SEC  budget for "Orig" (all-optimizations-off) runs
//                        (default 8; rows that hit it print ">8" like the
//                        paper's ">86400" cells)
//   PH_OPT_TIMEOUT_SEC   budget for OPT runs (default 60)
//   PH_SKIP_ORIG=1       skip Orig columns entirely (quick mode)
//   PH_THREADS           Opt7 portfolio threads for OPT runs (default 1;
//                        the output program is identical at every value)
//   PH_TRACE=PATH        write a Chrome trace (or JSONL when PATH ends in
//                        ".jsonl") of the whole bench run
//   PH_METRICS=PATH      write the metrics-registry JSON sidecar there too
//                        (a snapshot is always embedded in BENCH_<name>.json)
//   PH_CACHE_DIR=PATH    synthesis-cache directory for OPT runs (DESIGN.md
//                        §8; unset = cache off, every compile cold). The
//                        compiled programs are identical either way; a
//                        second run against the same dir skips Z3 on every
//                        unchanged state.
//   PH_DIFFTEST_BATCH    samples for the batched differential test /
//                        CEGIS pre-check (default: SynthOptions default)
//   PH_DIFFTEST_THREADS  difftest worker threads; 0 = reuse the Opt7
//                        pool. The verdict is identical at every value.
//   PH_VERIFIER          z3 | bisim | race — which equivalence checker the
//                        verify phase runs (DESIGN.md §13). The compiled
//                        program is identical for every value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/profile.h"
#include "ir/ir.h"
#include "obs/json.h"
#include "support/table.h"
#include "synth/compiler.h"

namespace parserhawk::bench {

double orig_timeout_sec();
double opt_timeout_sec();
bool skip_orig();
int num_threads();
/// PH_CACHE_DIR, or "" when unset (cache off).
std::string cache_dir();
/// PH_DIFFTEST_BATCH, or -1 when unset (SynthOptions default).
int difftest_batch();
/// PH_DIFFTEST_THREADS, or -1 when unset (reuse the Opt7 pool).
int difftest_threads();
/// PH_VERIFIER, or VerifierKind::Z3 when unset/unrecognized.
VerifierKind verifier();

/// One named mutation of a base benchmark (the ±R rows of Table 3).
struct Variant {
  std::string label;  ///< "", "+ R1", "- R3", ...
  ParserSpec spec;
};

/// A Table 3 row family: benchmark display name + its variants (first
/// variant is always the unmutated base).
struct RowFamily {
  std::string name;
  bool loopy = false;
  std::vector<Variant> variants;
};

/// The Table 3 benchmark x rewrite matrix.
std::vector<RowFamily> table3_families();

/// ParserHawk OPT + Orig measurements for one spec/target.
struct PhRun {
  CompileResult opt;
  CompileResult orig;
  bool orig_ran = false;
  bool orig_timed_out = false;
  double speedup = 0;  ///< orig_time / opt_time (lower bound when timed out)
};

PhRun run_parserhawk(const ParserSpec& spec, const HwProfile& hw);

/// Map a failed CompileResult to the paper's red-cell vocabulary
/// ("Wide tran key", "Parser loop rej", "Conflict transition",
/// "Too many TCAM", "Too many stages", ...).
std::string failure_cell(const CompileResult& result);

/// "<n>" on success, failure text otherwise.
std::string tcam_cell(const CompileResult& result);
std::string stages_cell(const CompileResult& result);

/// Machine-readable bench sidecar: every bench binary mirrors its printed
/// table into `BENCH_<name>.json` — one JSON object per row (wall time,
/// status, TCAM rows, ...) plus a final metrics-registry snapshot — so CI
/// and plotting scripts never scrape the human table.
///
/// Constructing a report turns the metrics registry on for the whole run
/// and honors PH_TRACE; `write()` emits the sidecar (and the PH_TRACE /
/// PH_METRICS files when those env knobs are set).
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  /// Start a new row; set() calls attach to the latest row.
  void begin_row();
  void set(const std::string& key, const std::string& v);
  void set(const std::string& key, const char* v);
  void set(const std::string& key, double v);
  void set(const std::string& key, std::int64_t v);
  void set(const std::string& key, int v) { set(key, static_cast<std::int64_t>(v)); }
  void set(const std::string& key, bool v);

  /// Standard per-compile fields under "<prefix>_": status, seconds,
  /// tcam_entries, stages, cegis_rounds, synth/verify queries.
  void add_compile(const std::string& prefix, const CompileResult& r);
  /// Both halves of a PhRun (opt always; orig when it ran) + speedup.
  void add_run(const PhRun& run);

  /// Write BENCH_<name>.json in the working directory. Returns false (and
  /// logs) when any file cannot be written.
  bool write() const;
  const std::string& path() const { return path_; }

 private:
  std::string name_;
  std::string path_;
  std::vector<obs::JsonObject> rows_;
};

}  // namespace parserhawk::bench
