// Table 3, IPU half: ParserHawk vs the IPU commercial proxy. The resource
// is pipeline stages; the proxy additionally exhibits the paper's
// documented failure modes ("Parser loop rej", "Conflict transition",
// "Too many stages").
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  HwProfile hw = ipu();
  JsonReport report("table3_ipu");
  std::printf("=== Table 3 (IPU): ParserHawk vs IPU compiler proxy ===\n");
  std::printf("Orig timeout: %.0fs\n\n", orig_timeout_sec());

  TextTable table({"Program Name", "PH #Stages", "Search Space (bits)", "OPT time (s)",
                   "Orig time (s)", "speedup", "Baseline #Stages"});
  int compiled = 0, rows = 0, baseline_failures = 0, ph_fewer = 0;
  for (const auto& family : table3_families()) {
    for (const auto& variant : family.variants) {
      std::string label = variant.label.empty() ? family.name : "  " + variant.label;
      PhRun run = run_parserhawk(variant.spec, hw);
      CompileResult base = baseline::compile_ipu_proxy(variant.spec, hw);

      report.begin_row();
      report.set("family", family.name);
      report.set("variant", variant.label);
      report.add_run(run);
      report.add_compile("baseline", base);

      ++rows;
      if (run.opt.ok()) ++compiled;
      if (!base.ok()) ++baseline_failures;
      if (run.opt.ok() && base.ok() && run.opt.usage.stages < base.usage.stages) ++ph_fewer;

      std::string speedup;
      if (run.orig_ran && run.opt.ok())
        speedup = (run.orig_timed_out ? ">" : "") + fmt_double(run.speedup, 2);
      table.add_row({label, stages_cell(run.opt),
                     run.opt.ok() ? fmt_double(run.opt.stats.search_space_bits, 0) : "",
                     run.opt.ok() ? fmt_double(run.opt.stats.seconds, 2) : "",
                     run.orig_ran ? fmt_seconds(run.orig_timed_out ? orig_timeout_sec()
                                                                   : run.orig.stats.seconds,
                                                run.orig_timed_out)
                                  : "(skipped)",
                     speedup, stages_cell(base)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ParserHawk compiled %d/%d rows; baseline failed %d rows; "
              "ParserHawk used strictly fewer stages on %d rows.\n",
              compiled, rows, baseline_failures, ph_fewer);
  report.write();
  return compiled == rows ? 0 : 1;
}
