// §7.3 retargetability: the same specifications compile for both targets by
// swapping the hardware profile; the synthesis core is shared. (The paper
// quantifies this as <100 LoC difference between the Tofino- and
// IPU-targeted compiler versions; here the difference is exactly the
// HwProfile struct contents plus the stage-assignment pass.)
#include <cstdio>

#include "bench_util.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("retarget");
  std::printf("=== §7.3 retargetability: one spec, many devices ===\n\n");
  std::vector<HwProfile> targets = {tofino(), ipu(),
                                    parametrized(/*key=*/16, /*lookahead=*/64, /*extract=*/96)};
  TextTable table({"Benchmark", "tofino", "ipu", "param(k=16)"});
  int families_on_all = 0, families = 0;
  for (const auto& b : suite::base_suite()) {
    std::vector<std::string> cells{b.name};
    int ok_count = 0;
    for (const auto& hw : targets) {
      SynthOptions opts;
      opts.timeout_sec = opt_timeout_sec();
      CompileResult r = compile(b.spec, hw, opts);
      report.begin_row();
      report.set("benchmark", b.name);
      report.set("target", hw.name);
      report.add_compile("ph", r);
      if (r.ok()) {
        ++ok_count;
        cells.push_back(hw.pipelined() ? std::to_string(r.usage.stages) + " stages"
                                       : std::to_string(r.usage.tcam_entries) + " entries");
      } else {
        cells.push_back(failure_cell(r));
      }
    }
    ++families;
    if (ok_count == static_cast<int>(targets.size())) ++families_on_all;
    table.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%d/%d benchmarks compile on every target with the shared synthesis core.\n",
              families_on_all, families);
  report.write();
  return 0;
}
