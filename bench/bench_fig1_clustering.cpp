// Figure 1: clustering two adjacent states saves one TCAM entry. We build
// the 3-state toy parser directly as TCAM rows and show the entry count
// before and after the post-synthesis clustering pass (§5.3) — and that
// behavior is unchanged.
#include <cstdio>

#include "bench_util.h"
#include "postopt/postopt.h"
#include "sim/interp.h"
#include "support/rng.h"
#include "support/table.h"

using namespace parserhawk;

int main() {
  bench::JsonReport report("fig1_clustering");
  std::printf("=== Figure 1: state clustering saves TCAM entries ===\n\n");

  // S0 --default--> S1 --default--> S2, each extracting one header.
  TcamProgram flat;
  flat.fields = {Field{"h0", 16, false}, Field{"h1", 16, false}, Field{"h2", 16, false}};
  flat.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  flat.entries.push_back(TcamEntry{0, 1, 0, 0, 0, {ExtractOp{1, -1, 0, 0}}, 0, 2});
  flat.entries.push_back(TcamEntry{0, 2, 0, 0, 0, {ExtractOp{2, -1, 0, 0}}, 0, kAccept});

  TcamProgram clustered = inline_terminal_extracts(flat, tofino());

  TextTable table({"Layout", "#TCAM entries"});
  table.add_row({"(a) one state per header", std::to_string(flat.entries.size())});
  table.add_row({"(b) clustered", std::to_string(clustered.entries.size())});
  std::printf("%s\n", table.to_string().c_str());

  // Behavior check over random packets.
  Rng rng(5);
  int agree = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    BitVec input = BitVec::random(rng.range(0, 64), [&rng] { return rng(); });
    if (equivalent(run_impl(flat, input), run_impl(clustered, input))) ++agree;
  }
  std::printf("Behavior preserved on %d/%d random packets; saved %zu entries (paper: 1 per "
              "merged transition).\n",
              agree, samples, flat.entries.size() - clustered.entries.size());
  report.begin_row();
  report.set("entries_before", static_cast<std::int64_t>(flat.entries.size()));
  report.set("entries_after", static_cast<std::int64_t>(clustered.entries.size()));
  report.set("agree", agree);
  report.set("samples", samples);
  report.write();
  return clustered.entries.size() < flat.entries.size() && agree == samples ? 0 : 1;
}
