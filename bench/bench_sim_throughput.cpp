// Line-rate simulation throughput: packets/sec through the spec and impl
// interpreters, single- vs multi-threaded, and the compiled bit-parallel
// TCAM matcher vs the scalar row-scan (DESIGN.md §9).
//
//   ./build/bench/bench_sim_throughput
//   PH_SIM_PACKETS=5000 PH_SIM_REPS=5 ./build/bench/bench_sim_throughput
//
// Two hard gates (non-zero exit on failure, so this binary is registered
// with ctest):
//   * verdicts: the compiled-matcher interpreter must produce results
//     bit-identical to the scalar row-scan interpreter on every packet,
//     and the batched runner must report the same verdict at every thread
//     count;
//   * speed: the compiled match kernel must resolve lookups at >= 5x the
//     scalar rows_of()-scan rate, aggregated across the compiled suite
//     specs (the end-to-end packet ratio is reported but not gated — it
//     includes extraction and dictionary costs common to both paths).
//
// Thread scaling is reported loosely: on a single-core container the
// multi-thread row measures pool overhead, not speedup.
//
// Knobs: PH_SIM_PACKETS (corpus size per spec, default 512), PH_SIM_REPS
// (best-of reps per measurement, default 3), PH_SIM_KERNEL_ITERS (match
// kernel iterations per group, default 20000).
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "sim/batch.h"
#include "sim/testgen.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"
#include "synth/compiler.h"
#include "tcam/matcher.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  int n = v != nullptr ? std::atoi(v) : 0;
  return n > 0 ? n : fallback;
}

bool identical(const ParseResult& a, const ParseResult& b) {
  return a.outcome == b.outcome && a.dict == b.dict && a.bits_consumed == b.bits_consumed &&
         a.iterations == b.iterations;
}

/// Best-of-reps wall time for `body()`.
template <typename F>
double best_of(int reps, F&& body) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    body();
    double t = watch.elapsed_sec();
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  JsonReport report("sim_throughput");
  const int packets = env_int("PH_SIM_PACKETS", 512);
  const int reps = env_int("PH_SIM_REPS", 3);
  const int kernel_iters = env_int("PH_SIM_KERNEL_ITERS", 20000);
  const int mt_threads =
      static_cast<int>(std::max(2u, std::min(4u, std::thread::hardware_concurrency())));

  std::printf("corpus: %d packets/spec, best of %d reps, %d kernel iters/group\n\n", packets, reps,
              kernel_iters);
  TextTable table({"Benchmark", "Rows", "pkts", "scalar pkt/s", "compiled pkt/s", "e2e",
                   "kernel", "batch(1) pkt/s", "batch(n) pkt/s"});

  // Aggregate match-kernel times across specs: the >= 5x gate.
  double kernel_scalar_sec = 0;
  double kernel_compiled_sec = 0;
  bool verdicts_ok = true;
  int compiled_specs = 0;

  for (const auto& family : table3_families()) {
    const ParserSpec& spec = family.variants.front().spec;
    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    opts.num_threads = num_threads();
    CompileResult cr = compile(spec, tofino(), opts);
    if (!cr.ok()) {
      std::printf("  (skipping %s: %s)\n", family.name.c_str(), failure_cell(cr).c_str());
      continue;
    }
    ++compiled_specs;
    const TcamProgram& prog = cr.program;
    CompiledMatcher matcher(prog);

    DiffTestOptions corpus_opts;
    corpus_opts.samples = packets;
    corpus_opts.seed = 0x51beef;
    std::vector<BitVec> corpus = difftest_corpus(spec, corpus_opts);
    const double n = static_cast<double>(corpus.size());

    // ---- Verdict gate: scalar scan vs compiled matcher, every packet. ----
    for (const BitVec& input : corpus) {
      ParseResult scalar = run_impl(prog, input);
      ParseResult fast = run_impl(matcher, input);
      if (!identical(scalar, fast)) {
        std::printf("VERDICT MISMATCH (%s) on %s\n", family.name.c_str(),
                    input.to_string().c_str());
        verdicts_ok = false;
      }
    }

    // ---- End-to-end packets/sec, both interpreters. ----
    volatile int sink = 0;
    double t_scalar = best_of(reps, [&] {
      int acc = 0;
      for (const BitVec& input : corpus) acc += static_cast<int>(run_impl(prog, input).outcome);
      sink = acc;
    });
    double t_compiled = best_of(reps, [&] {
      int acc = 0;
      for (const BitVec& input : corpus) acc += static_cast<int>(run_impl(matcher, input).outcome);
      sink = acc;
    });
    (void)sink;

    // ---- Match kernel: the lookup step in isolation, aggregated. ----
    // Drive every (table, state) group with a key mix of row values
    // (guaranteed hits) and uniform noise, and check both paths agree on
    // the winning row while timing them.
    std::set<std::pair<int, int>> groups;
    for (const auto& e : prog.entries) groups.insert({e.table, e.state});
    Rng krng(0xfeed);
    double ks = 0, kc = 0;
    for (const auto& [tbl, st] : groups) {
      const CompiledMatcher::Group* g = matcher.find(tbl, st);
      if (g == nullptr || g->row_count == 0) continue;
      std::vector<std::uint64_t> keys;
      keys.reserve(64);
      std::uint64_t kw_mask =
          g->key_width >= 64 ? ~0ull : ((1ull << g->key_width) - 1);
      for (int i = 0; i < 64; ++i) {
        if (i % 2 == 0)
          keys.push_back(g->rows[static_cast<std::size_t>(i / 2 % g->row_count)]->value & kw_mask);
        else
          keys.push_back(krng() & kw_mask);
      }
      // Winner agreement on the key mix (scalar scan is the oracle).
      for (std::uint64_t key : keys) {
        const TcamEntry* scalar_win = nullptr;
        for (const TcamEntry* row : prog.rows_of(tbl, st))
          if (row->matches(key)) {
            scalar_win = row;
            break;
          }
        int win = CompiledMatcher::first_match(*g, key);
        const TcamEntry* fast_win = win < 0 ? nullptr : g->rows[static_cast<std::size_t>(win)];
        if (scalar_win != fast_win) {
          std::printf("KERNEL MISMATCH (%s) table=%d state=%d key=0x%llx\n", family.name.c_str(),
                      tbl, st, static_cast<unsigned long long>(key));
          verdicts_ok = false;
        }
      }
      volatile std::uint64_t ksink = 0;
      ks += best_of(reps, [&] {
        std::uint64_t acc = 0;
        for (int it = 0; it < kernel_iters; ++it) {
          std::uint64_t key = keys[static_cast<std::size_t>(it) & 63];
          for (const TcamEntry* row : prog.rows_of(tbl, st))
            if (row->matches(key)) {
              acc += static_cast<std::uint64_t>(row->entry) + 1;
              break;
            }
        }
        ksink = acc;
      });
      kc += best_of(reps, [&] {
        std::uint64_t acc = 0;
        for (int it = 0; it < kernel_iters; ++it) {
          std::uint64_t key = keys[static_cast<std::size_t>(it) & 63];
          int win = CompiledMatcher::first_match(*g, key);
          acc += static_cast<std::uint64_t>(win) + 1;
        }
        ksink = acc;
      });
      (void)ksink;
    }
    kernel_scalar_sec += ks;
    kernel_compiled_sec += kc;

    // ---- Batched runner: single- vs multi-thread, identical verdicts. ----
    BatchOptions b1;
    b1.threads = 1;
    BatchRunner runner1(spec, prog, b1);
    BatchResult r1;
    double t_b1 = best_of(reps, [&] { r1 = runner1.run(corpus); });
    BatchOptions bn;
    bn.threads = mt_threads;
    bn.chunk = 32;
    BatchRunner runnern(spec, prog, bn);
    BatchResult rn;
    double t_bn = best_of(reps, [&] { rn = runnern.run(corpus); });
    if (r1.agree != rn.agree || r1.mismatches != rn.mismatches ||
        r1.first_mismatch != rn.first_mismatch) {
      std::printf("BATCH VERDICT DIVERGED (%s): 1-thread vs %d-thread\n", family.name.c_str(),
                  mt_threads);
      verdicts_ok = false;
    }

    double e2e = t_compiled > 0 ? t_scalar / t_compiled : 0;
    double kratio = kc > 0 ? ks / kc : 0;
    report.begin_row();
    report.set("benchmark", family.name);
    report.set("tcam_rows", static_cast<std::int64_t>(prog.entries.size()));
    report.set("packets", static_cast<std::int64_t>(corpus.size()));
    report.set("scalar_pkts_per_sec", t_scalar > 0 ? n / t_scalar : 0.0);
    report.set("compiled_pkts_per_sec", t_compiled > 0 ? n / t_compiled : 0.0);
    report.set("e2e_speedup", e2e);
    report.set("kernel_scalar_sec", ks);
    report.set("kernel_compiled_sec", kc);
    report.set("kernel_speedup", kratio);
    report.set("batch1_pkts_per_sec", t_b1 > 0 ? n / t_b1 : 0.0);
    report.set("batchn_pkts_per_sec", t_bn > 0 ? n / t_bn : 0.0);
    report.set("batch_threads", mt_threads);
    report.set("verdicts_identical", verdicts_ok);
    table.add_row({family.name, std::to_string(prog.entries.size()),
                   std::to_string(corpus.size()), fmt_double(t_scalar > 0 ? n / t_scalar : 0, 0),
                   fmt_double(t_compiled > 0 ? n / t_compiled : 0, 0), fmt_double(e2e, 2) + "x",
                   fmt_double(kratio, 2) + "x", fmt_double(t_b1 > 0 ? n / t_b1 : 0, 0),
                   fmt_double(t_bn > 0 ? n / t_bn : 0, 0)});
  }

  std::printf("%s\n", table.to_string().c_str());
  double kernel_speedup =
      kernel_compiled_sec > 0 ? kernel_scalar_sec / kernel_compiled_sec : 0;
  std::printf("aggregate match-kernel speedup: %.2fx over %d specs (gate: >= 5x)\n", kernel_speedup,
              compiled_specs);
  report.begin_row();
  report.set("benchmark", "(aggregate)");
  report.set("kernel_scalar_sec", kernel_scalar_sec);
  report.set("kernel_compiled_sec", kernel_compiled_sec);
  report.set("kernel_speedup", kernel_speedup);
  report.set("verdicts_identical", verdicts_ok);
  report.write();

  if (!verdicts_ok) {
    std::printf("FAIL: verdict divergence between scalar and compiled paths\n");
    return 1;
  }
  if (compiled_specs == 0) {
    std::printf("FAIL: no spec compiled; nothing measured\n");
    return 1;
  }
  if (kernel_speedup < 5.0) {
    std::printf("FAIL: compiled match kernel below the 5x gate (%.2fx)\n", kernel_speedup);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
