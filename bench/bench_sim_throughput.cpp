// Line-rate simulation throughput: packets/sec through the spec and impl
// interpreters, single- vs multi-threaded, the compiled bit-parallel
// TCAM matcher vs the scalar row-scan, and the SIMD/SWAR wide batch
// kernel vs the compiled scalar matcher (DESIGN.md §9, §12).
//
//   ./build/bench/bench_sim_throughput
//   PH_SIM_PACKETS=5000 PH_SIM_REPS=5 ./build/bench/bench_sim_throughput
//
// Three hard gates (non-zero exit on failure, so this binary is
// registered with ctest):
//   * verdicts: the compiled-matcher interpreter must produce results
//     bit-identical to the scalar row-scan interpreter on every packet,
//     the batched runner must report the same verdict at every thread
//     count, and the wide match kernel must agree with first_match at
//     every SIMD level (including non-lane-multiple tails) and leave the
//     zoo replay's verdicts/coverage unchanged;
//   * speed: the compiled match kernel must resolve lookups at >= 5x the
//     scalar rows_of()-scan rate, aggregated across the compiled suite
//     specs (the end-to-end packet ratio is reported but not gated — it
//     includes extraction and dictionary costs common to both paths);
//   * wide speed: the wide kernel at the best CPU-supported level must
//     resolve lookups at >= 4x the compiled scalar matcher, aggregated
//     over the protocol zoo's wide-eligible (single-word) groups.
//
// The zoo section reports Mpps (million packets per second) through the
// full BatchRunner per examples/specs parser, scalar vs wide — see
// README "Measuring Mpps throughput".
//
// Thread scaling is reported loosely: on a single-core container the
// multi-thread row measures pool overhead, not speedup.
//
// Knobs: PH_SIM_PACKETS (corpus size per spec, default 512), PH_SIM_REPS
// (best-of reps per measurement, default 3), PH_SIM_KERNEL_ITERS (match
// kernel iterations per group, default 20000), PH_SIM_ZOO
// (comma-separated zoo subset; default: every spec in examples/specs).
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "sim/batch.h"
#include "sim/testgen.h"
#include "sim/tracegen.h"
#include "suite/corpus.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"
#include "synth/compiler.h"
#include "tcam/matcher.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  int n = v != nullptr ? std::atoi(v) : 0;
  return n > 0 ? n : fallback;
}

bool identical(const ParseResult& a, const ParseResult& b) {
  return a.outcome == b.outcome && a.dict == b.dict && a.bits_consumed == b.bits_consumed &&
         a.iterations == b.iterations;
}

/// Best-of-reps wall time for `body()`.
template <typename F>
double best_of(int reps, F&& body) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    body();
    double t = watch.elapsed_sec();
    if (t < best) best = t;
  }
  return best;
}

/// Every wide-kernel level this CPU can run.
std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::Scalar, SimdLevel::Swar};
  if (static_cast<int>(max_supported_level()) >= static_cast<int>(SimdLevel::Avx2))
    levels.push_back(SimdLevel::Avx2);
  if (static_cast<int>(max_supported_level()) >= static_cast<int>(SimdLevel::Avx512))
    levels.push_back(SimdLevel::Avx512);
  return levels;
}

/// Kernel-isolation measurement of the wide batch kernel vs per-key
/// first_match over every wide-eligible (single-word) group of `prog`,
/// driven by the same 50% row-value / 50% noise key mix as the compiled
/// vs row-scan gate. Also re-checks wide-vs-scalar identity at every
/// supported level, on full 64-key batches and a 61-key tail (not a
/// multiple of any lane width). Accumulates best-of wall times into
/// `scalar_sec` (per-key first_match) and `wide_sec` (match_batch at the
/// best supported level); flips `identity_ok` on any disagreement.
void measure_wide_kernel(const char* label, const TcamProgram& prog,
                         const CompiledMatcher& matcher, int reps, int kernel_iters,
                         double* scalar_sec, double* wide_sec, bool* identity_ok) {
  const SimdLevel best_level = max_supported_level();
  std::set<std::pair<int, int>> groups;
  for (const auto& e : prog.entries) groups.insert({e.table, e.state});
  Rng krng(0x5eed);
  for (const auto& [tbl, st] : groups) {
    const CompiledMatcher::Group* g = matcher.find(tbl, st);
    if (g == nullptr || g->row_count == 0 || g->words != 1) continue;
    std::uint64_t kw_mask = g->key_width >= 64 ? ~0ull : ((1ull << g->key_width) - 1);
    std::vector<std::uint64_t> keys(64);
    for (int i = 0; i < 64; ++i)
      keys[static_cast<std::size_t>(i)] =
          i % 2 == 0 ? (g->rows[static_cast<std::size_t>(i / 2 % g->row_count)]->value & kw_mask)
                     : (krng() & kw_mask);

    // Identity at every level, full batches and the 61-key tail.
    std::vector<int> expect(64);
    for (int i = 0; i < 64; ++i)
      expect[static_cast<std::size_t>(i)] =
          CompiledMatcher::first_match(*g, keys[static_cast<std::size_t>(i)]);
    for (SimdLevel level : supported_levels()) {
      for (int n : {64, 61}) {
        std::vector<int> got(static_cast<std::size_t>(n), -2);
        CompiledMatcher::match_batch(*g, keys.data(), n, got.data(), level);
        for (int i = 0; i < n; ++i)
          if (got[static_cast<std::size_t>(i)] != expect[static_cast<std::size_t>(i)]) {
            std::printf("WIDE KERNEL MISMATCH (%s) table=%d state=%d level=%s n=%d lane=%d\n",
                        label, tbl, st, to_string(level), n, i);
            *identity_ok = false;
          }
      }
    }

    // Timed halves: same lookup count through both paths.
    const int batches = kernel_iters / 64 + 1;
    volatile std::uint64_t ksink = 0;
    *scalar_sec += best_of(reps, [&] {
      std::uint64_t acc = 0;
      for (int b = 0; b < batches; ++b)
        for (int i = 0; i < 64; ++i)
          acc += static_cast<std::uint64_t>(
              CompiledMatcher::first_match(*g, keys[static_cast<std::size_t>(i)]));
      ksink = acc;
    });
    std::vector<int> out(64);
    *wide_sec += best_of(reps, [&] {
      std::uint64_t acc = 0;
      for (int b = 0; b < batches; ++b) {
        CompiledMatcher::match_batch(*g, keys.data(), 64, out.data(), best_level);
        for (int i = 0; i < 64; ++i) acc += static_cast<std::uint64_t>(out[static_cast<std::size_t>(i)]);
      }
      ksink = acc;
    });
    (void)ksink;
  }
}

/// PH_SIM_ZOO as a list, or every zoo spec when unset.
std::vector<std::string> zoo_names() {
  if (const char* env = std::getenv("PH_SIM_ZOO"); env != nullptr && *env != '\0') {
    std::vector<std::string> names;
    std::stringstream ss(env);
    for (std::string item; std::getline(ss, item, ',');)
      if (!item.empty()) names.push_back(item);
    return names;
  }
  return corpus::list_specs();
}

}  // namespace

int main() {
  JsonReport report("sim_throughput");
  const int packets = env_int("PH_SIM_PACKETS", 512);
  const int reps = env_int("PH_SIM_REPS", 3);
  const int kernel_iters = env_int("PH_SIM_KERNEL_ITERS", 20000);
  const int mt_threads =
      static_cast<int>(std::max(2u, std::min(4u, std::thread::hardware_concurrency())));

  std::printf("corpus: %d packets/spec, best of %d reps, %d kernel iters/group\n\n", packets, reps,
              kernel_iters);
  TextTable table({"Benchmark", "Rows", "pkts", "scalar pkt/s", "compiled pkt/s", "e2e",
                   "kernel", "batch(1) pkt/s", "batch(n) pkt/s"});

  // Aggregate match-kernel times across specs: the >= 5x gate.
  double kernel_scalar_sec = 0;
  double kernel_compiled_sec = 0;
  // Wide kernel vs compiled scalar on the table-3 suite (reported) and on
  // the protocol zoo (the >= 4x gate).
  double suite_wide_scalar_sec = 0;
  double suite_wide_sec = 0;
  bool verdicts_ok = true;
  int compiled_specs = 0;

  for (const auto& family : table3_families()) {
    const ParserSpec& spec = family.variants.front().spec;
    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    opts.num_threads = num_threads();
    CompileResult cr = compile(spec, tofino(), opts);
    if (!cr.ok()) {
      std::printf("  (skipping %s: %s)\n", family.name.c_str(), failure_cell(cr).c_str());
      continue;
    }
    ++compiled_specs;
    const TcamProgram& prog = cr.program;
    CompiledMatcher matcher(prog);

    DiffTestOptions corpus_opts;
    corpus_opts.samples = packets;
    corpus_opts.seed = 0x51beef;
    std::vector<BitVec> corpus = difftest_corpus(spec, corpus_opts);
    const double n = static_cast<double>(corpus.size());

    // ---- Verdict gate: scalar scan vs compiled matcher, every packet. ----
    for (const BitVec& input : corpus) {
      ParseResult scalar = run_impl(prog, input);
      ParseResult fast = run_impl(matcher, input);
      if (!identical(scalar, fast)) {
        std::printf("VERDICT MISMATCH (%s) on %s\n", family.name.c_str(),
                    input.to_string().c_str());
        verdicts_ok = false;
      }
    }

    // ---- End-to-end packets/sec, both interpreters. ----
    volatile int sink = 0;
    double t_scalar = best_of(reps, [&] {
      int acc = 0;
      for (const BitVec& input : corpus) acc += static_cast<int>(run_impl(prog, input).outcome);
      sink = acc;
    });
    double t_compiled = best_of(reps, [&] {
      int acc = 0;
      for (const BitVec& input : corpus) acc += static_cast<int>(run_impl(matcher, input).outcome);
      sink = acc;
    });
    (void)sink;

    // ---- Match kernel: the lookup step in isolation, aggregated. ----
    // Drive every (table, state) group with a key mix of row values
    // (guaranteed hits) and uniform noise, and check both paths agree on
    // the winning row while timing them.
    std::set<std::pair<int, int>> groups;
    for (const auto& e : prog.entries) groups.insert({e.table, e.state});
    Rng krng(0xfeed);
    double ks = 0, kc = 0;
    for (const auto& [tbl, st] : groups) {
      const CompiledMatcher::Group* g = matcher.find(tbl, st);
      if (g == nullptr || g->row_count == 0) continue;
      std::vector<std::uint64_t> keys;
      keys.reserve(64);
      std::uint64_t kw_mask =
          g->key_width >= 64 ? ~0ull : ((1ull << g->key_width) - 1);
      for (int i = 0; i < 64; ++i) {
        if (i % 2 == 0)
          keys.push_back(g->rows[static_cast<std::size_t>(i / 2 % g->row_count)]->value & kw_mask);
        else
          keys.push_back(krng() & kw_mask);
      }
      // Winner agreement on the key mix (scalar scan is the oracle).
      for (std::uint64_t key : keys) {
        const TcamEntry* scalar_win = nullptr;
        for (const TcamEntry* row : prog.rows_of(tbl, st))
          if (row->matches(key)) {
            scalar_win = row;
            break;
          }
        int win = CompiledMatcher::first_match(*g, key);
        const TcamEntry* fast_win = win < 0 ? nullptr : g->rows[static_cast<std::size_t>(win)];
        if (scalar_win != fast_win) {
          std::printf("KERNEL MISMATCH (%s) table=%d state=%d key=0x%llx\n", family.name.c_str(),
                      tbl, st, static_cast<unsigned long long>(key));
          verdicts_ok = false;
        }
      }
      volatile std::uint64_t ksink = 0;
      ks += best_of(reps, [&] {
        std::uint64_t acc = 0;
        for (int it = 0; it < kernel_iters; ++it) {
          std::uint64_t key = keys[static_cast<std::size_t>(it) & 63];
          for (const TcamEntry* row : prog.rows_of(tbl, st))
            if (row->matches(key)) {
              acc += static_cast<std::uint64_t>(row->entry) + 1;
              break;
            }
        }
        ksink = acc;
      });
      kc += best_of(reps, [&] {
        std::uint64_t acc = 0;
        for (int it = 0; it < kernel_iters; ++it) {
          std::uint64_t key = keys[static_cast<std::size_t>(it) & 63];
          int win = CompiledMatcher::first_match(*g, key);
          acc += static_cast<std::uint64_t>(win) + 1;
        }
        ksink = acc;
      });
      (void)ksink;
    }
    kernel_scalar_sec += ks;
    kernel_compiled_sec += kc;

    // ---- Wide batch kernel vs compiled scalar, same isolation. ----
    double ws = 0, ww = 0;
    measure_wide_kernel(family.name.c_str(), prog, matcher, reps, kernel_iters, &ws, &ww,
                        &verdicts_ok);
    suite_wide_scalar_sec += ws;
    suite_wide_sec += ww;

    // ---- Batched runner: single- vs multi-thread, identical verdicts. ----
    BatchOptions b1;
    b1.threads = 1;
    BatchRunner runner1(spec, prog, b1);
    BatchResult r1;
    double t_b1 = best_of(reps, [&] { r1 = runner1.run(corpus); });
    BatchOptions bn;
    bn.threads = mt_threads;
    bn.chunk = 32;
    BatchRunner runnern(spec, prog, bn);
    BatchResult rn;
    double t_bn = best_of(reps, [&] { rn = runnern.run(corpus); });
    if (r1.agree != rn.agree || r1.mismatches != rn.mismatches ||
        r1.first_mismatch != rn.first_mismatch) {
      std::printf("BATCH VERDICT DIVERGED (%s): 1-thread vs %d-thread\n", family.name.c_str(),
                  mt_threads);
      verdicts_ok = false;
    }

    double e2e = t_compiled > 0 ? t_scalar / t_compiled : 0;
    double kratio = kc > 0 ? ks / kc : 0;
    report.begin_row();
    report.set("family", family.name);
    report.set("benchmark", family.name);
    report.set("tcam_rows", static_cast<std::int64_t>(prog.entries.size()));
    report.set("packets", static_cast<std::int64_t>(corpus.size()));
    report.set("scalar_pkts_per_sec", t_scalar > 0 ? n / t_scalar : 0.0);
    report.set("compiled_pkts_per_sec", t_compiled > 0 ? n / t_compiled : 0.0);
    report.set("e2e_speedup", e2e);
    report.set("kernel_scalar_sec", ks);
    report.set("kernel_compiled_sec", kc);
    report.set("kernel_speedup", kratio);
    report.set("wide_kernel_scalar_sec", ws);
    report.set("wide_kernel_sec", ww);
    report.set("wide_kernel_speedup", ww > 0 ? ws / ww : 0.0);
    report.set("batch1_pkts_per_sec", t_b1 > 0 ? n / t_b1 : 0.0);
    report.set("batchn_pkts_per_sec", t_bn > 0 ? n / t_bn : 0.0);
    report.set("batch_threads", mt_threads);
    report.set("verdicts_identical", verdicts_ok);
    table.add_row({family.name, std::to_string(prog.entries.size()),
                   std::to_string(corpus.size()), fmt_double(t_scalar > 0 ? n / t_scalar : 0, 0),
                   fmt_double(t_compiled > 0 ? n / t_compiled : 0, 0), fmt_double(e2e, 2) + "x",
                   fmt_double(kratio, 2) + "x", fmt_double(t_b1 > 0 ? n / t_b1 : 0, 0),
                   fmt_double(t_bn > 0 ? n / t_bn : 0, 0)});
  }

  std::printf("%s\n", table.to_string().c_str());

  // ---- Protocol zoo: Mpps through the full BatchRunner, scalar vs wide,
  // plus the zoo-aggregate wide-kernel gate (DESIGN.md §12). ----
  std::printf("protocol zoo (wide level: %s)\n", to_string(max_supported_level()));
  TextTable zoo_table({"Spec", "pkts", "scalar Mpps", "wide Mpps", "Mpps ratio", "wide kernel"});
  double zoo_wide_scalar_sec = 0;
  double zoo_wide_sec = 0;
  double zoo_scalar_replay_sec = 0;
  double zoo_wide_replay_sec = 0;
  std::int64_t zoo_packets = 0;
  int zoo_specs = 0;
  for (const std::string& name : zoo_names()) {
    auto spec = corpus::load_spec(name);
    if (!spec.ok()) {
      std::printf("  (skipping %s: %s)\n", name.c_str(), spec.error().to_string().c_str());
      continue;
    }
    SynthOptions zopts;
    zopts.timeout_sec = opt_timeout_sec();
    zopts.num_threads = num_threads();
    CompileResult cr = compile(*spec, tofino(), zopts);
    if (!cr.ok()) {
      std::printf("  (skipping %s: %s)\n", name.c_str(), failure_cell(cr).c_str());
      continue;
    }
    ++zoo_specs;
    CompiledMatcher matcher(cr.program);

    // The deterministic protocol-shaped trace, replicated up to the
    // corpus size so each timed run is long enough to resolve.
    TraceGenReport trace = generate_trace(*spec);
    std::vector<BitVec> corpus;
    corpus.reserve(static_cast<std::size_t>(packets));
    while (static_cast<int>(corpus.size()) < packets && !trace.packets.empty())
      for (const BitVec& p : trace.packets) {
        if (static_cast<int>(corpus.size()) >= packets) break;
        corpus.push_back(p);
      }
    const double n = static_cast<double>(corpus.size());
    zoo_packets += static_cast<std::int64_t>(corpus.size());
    std::vector<PacketRef> refs = as_refs(corpus);

    // Zero-copy replay through the BatchRunner, forced-scalar vs wide.
    // Coverage collection off in the timed loop (it is the same work on
    // both sides); identity of verdicts and coverage is asserted below.
    BatchOptions scalar_opts;
    scalar_opts.simd = SimdLevel::Scalar;
    scalar_opts.collect_coverage = false;
    scalar_opts.max_iterations = cr.program.max_iterations;
    BatchRunner scalar_runner(*spec, cr.program, scalar_opts);
    BatchOptions wide_opts = scalar_opts;
    wide_opts.simd = max_supported_level();
    BatchRunner wide_runner(*spec, cr.program, wide_opts);
    BatchResult rs, rw;
    double t_scalar = best_of(reps, [&] { rs = scalar_runner.run(refs); });
    double t_wide = best_of(reps, [&] { rw = wide_runner.run(refs); });
    zoo_scalar_replay_sec += t_scalar;
    zoo_wide_replay_sec += t_wide;

    // Identity gate: verdicts and coverage must be level-independent.
    bool identical_replay = rs.agree == rw.agree && rs.mismatches == rw.mismatches &&
                            rs.first_mismatch == rw.first_mismatch;
    BatchOptions cov_scalar = scalar_opts;
    cov_scalar.collect_coverage = true;
    BatchOptions cov_wide = wide_opts;
    cov_wide.collect_coverage = true;
    BatchResult cs = BatchRunner(*spec, cr.program, cov_scalar).run(refs);
    BatchResult cw = BatchRunner(*spec, cr.program, cov_wide).run(refs);
    identical_replay = identical_replay && cs.coverage.state_hits == cw.coverage.state_hits &&
                       cs.coverage.rule_hits == cw.coverage.rule_hits &&
                       cs.coverage.row_hits == cw.coverage.row_hits;
    if (!identical_replay) {
      std::printf("ZOO REPLAY DIVERGED (%s): scalar vs %s\n", name.c_str(),
                  to_string(max_supported_level()));
      verdicts_ok = false;
    }

    // Kernel-isolation wide measurement over this spec's groups: the
    // aggregate feeds the >= 4x gate.
    double ws = 0, ww = 0;
    measure_wide_kernel(name.c_str(), cr.program, matcher, reps, kernel_iters, &ws, &ww,
                        &verdicts_ok);
    zoo_wide_scalar_sec += ws;
    zoo_wide_sec += ww;

    double scalar_mpps = t_scalar > 0 ? n / t_scalar / 1e6 : 0;
    double wide_mpps = t_wide > 0 ? n / t_wide / 1e6 : 0;
    report.begin_row();
    report.set("family", "zoo:" + name);
    report.set("benchmark", "zoo:" + name);
    report.set("tcam_rows", static_cast<std::int64_t>(cr.program.entries.size()));
    report.set("packets", static_cast<std::int64_t>(corpus.size()));
    report.set("scalar_mpps_throughput", scalar_mpps);
    report.set("wide_mpps_throughput", wide_mpps);
    report.set("wide_kernel_scalar_sec", ws);
    report.set("wide_kernel_sec", ww);
    report.set("wide_kernel_speedup", ww > 0 ? ws / ww : 0.0);
    report.set("replay_identical", identical_replay);
    zoo_table.add_row({name, std::to_string(corpus.size()), fmt_double(scalar_mpps, 2),
                       fmt_double(wide_mpps, 2),
                       fmt_double(t_wide > 0 ? t_scalar / t_wide : 0, 2) + "x",
                       fmt_double(ww > 0 ? ws / ww : 0, 2) + "x"});
  }
  std::printf("%s\n", zoo_table.to_string().c_str());

  double kernel_speedup =
      kernel_compiled_sec > 0 ? kernel_scalar_sec / kernel_compiled_sec : 0;
  double suite_wide_speedup = suite_wide_sec > 0 ? suite_wide_scalar_sec / suite_wide_sec : 0;
  double zoo_wide_speedup = zoo_wide_sec > 0 ? zoo_wide_scalar_sec / zoo_wide_sec : 0;
  std::printf("aggregate match-kernel speedup: %.2fx over %d specs (gate: >= 5x)\n", kernel_speedup,
              compiled_specs);
  std::printf("aggregate wide-kernel speedup: suite %.2fx, zoo %.2fx over %d specs "
              "(zoo gate: >= 4x, level %s)\n",
              suite_wide_speedup, zoo_wide_speedup, zoo_specs, to_string(max_supported_level()));
  std::printf("zoo replay: %.2f Mpps scalar, %.2f Mpps wide (%lld packets)\n",
              zoo_scalar_replay_sec > 0 ? static_cast<double>(zoo_packets) / zoo_scalar_replay_sec / 1e6 : 0,
              zoo_wide_replay_sec > 0 ? static_cast<double>(zoo_packets) / zoo_wide_replay_sec / 1e6 : 0,
              static_cast<long long>(zoo_packets));
  report.begin_row();
  report.set("family", "(aggregate)");
  report.set("benchmark", "(aggregate)");
  report.set("kernel_scalar_sec", kernel_scalar_sec);
  report.set("kernel_compiled_sec", kernel_compiled_sec);
  report.set("kernel_speedup", kernel_speedup);
  report.set("suite_wide_kernel_speedup", suite_wide_speedup);
  report.set("zoo_wide_kernel_speedup", zoo_wide_speedup);
  report.set("zoo_scalar_mpps_throughput",
             zoo_scalar_replay_sec > 0 ? static_cast<double>(zoo_packets) / zoo_scalar_replay_sec / 1e6 : 0.0);
  report.set("zoo_wide_mpps_throughput",
             zoo_wide_replay_sec > 0 ? static_cast<double>(zoo_packets) / zoo_wide_replay_sec / 1e6 : 0.0);
  report.set("zoo_packets", zoo_packets);
  report.set("zoo_specs", zoo_specs);
  report.set("verdicts_identical", verdicts_ok);
  report.write();

  if (!verdicts_ok) {
    std::printf("FAIL: verdict divergence between scalar and compiled paths\n");
    return 1;
  }
  if (compiled_specs == 0) {
    std::printf("FAIL: no spec compiled; nothing measured\n");
    return 1;
  }
  if (kernel_speedup < 5.0) {
    std::printf("FAIL: compiled match kernel below the 5x gate (%.2fx)\n", kernel_speedup);
    return 1;
  }
  if (zoo_specs == 0) {
    std::printf("FAIL: no zoo spec compiled; wide kernel not measured\n");
    return 1;
  }
  // The wide gate scales with the lane count this CPU offers: 8-lane
  // AVX-512 must clear 4x; 4-lane AVX2 2x; the portable SWAR floor 1.2x.
  const double wide_gate = max_supported_level() == SimdLevel::Avx512   ? 4.0
                           : max_supported_level() == SimdLevel::Avx2 ? 2.0
                                                                      : 1.2;
  if (zoo_wide_speedup < wide_gate) {
    std::printf("FAIL: wide match kernel below the %.1fx gate on the zoo (%.2fx at %s)\n",
                wide_gate, zoo_wide_speedup, to_string(max_supported_level()));
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
