// Table 3, Tofino half: ParserHawk vs the Tofino commercial proxy on the
// full benchmark suite with ±R rewrite variants.
//
// Columns mirror the paper: #TCAM entries, search-space bits, OPT vs Orig
// compile time, speedup, and the baseline's entry count (or its red-cell
// failure). Absolute times use this machine's scaled timeout (see
// bench_util.h); the shape to check is ParserHawk compiling every row with
// <= the baseline's entries and identical resources across all variants of
// one family.
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  HwProfile hw = tofino();
  JsonReport report("table3_tofino");
  std::printf("=== Table 3 (Tofino): ParserHawk vs Tofino compiler proxy ===\n");
  std::printf("Orig timeout: %.0fs (stands in for the paper's 24h budget)\n\n", orig_timeout_sec());

  TextTable table({"Program Name", "PH #TCAM", "Search Space (bits)", "OPT time (s)",
                   "Orig time (s)", "speedup", "Baseline #TCAM"});
  int compiled = 0, rows = 0, baseline_failures = 0, ph_fewer = 0;
  for (const auto& family : table3_families()) {
    for (const auto& variant : family.variants) {
      std::string label = variant.label.empty() ? family.name : "  " + variant.label;
      PhRun run = run_parserhawk(variant.spec, hw);
      CompileResult base = baseline::compile_tofino_proxy(variant.spec, hw);

      report.begin_row();
      report.set("family", family.name);
      report.set("variant", variant.label);
      report.add_run(run);
      report.add_compile("baseline", base);

      ++rows;
      if (run.opt.ok()) ++compiled;
      if (!base.ok()) ++baseline_failures;
      if (run.opt.ok() && base.ok() && run.opt.usage.tcam_entries < base.usage.tcam_entries)
        ++ph_fewer;

      std::string speedup;
      if (run.orig_ran && run.opt.ok())
        speedup = (run.orig_timed_out ? ">" : "") + fmt_double(run.speedup, 2);
      table.add_row({label, tcam_cell(run.opt),
                     run.opt.ok() ? fmt_double(run.opt.stats.search_space_bits, 0) : "",
                     run.opt.ok() ? fmt_double(run.opt.stats.seconds, 2) : "",
                     run.orig_ran ? fmt_seconds(run.orig_timed_out ? orig_timeout_sec()
                                                                   : run.orig.stats.seconds,
                                                run.orig_timed_out)
                                  : "(skipped)",
                     speedup, tcam_cell(base)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ParserHawk compiled %d/%d rows; baseline failed %d rows; "
              "ParserHawk used strictly fewer entries on %d rows.\n",
              compiled, rows, baseline_failures, ph_fewer);
  report.write();
  return compiled == rows ? 0 : 1;
}
