// Table 5: ablation of Opt4 (constant synthesis) and Opt5 (key-bit
// grouping). Columns: all other optimizations on but Opt4+Opt5 off
// ("Other OPT"), Opt5 added, then Opt4+Opt5 added — per target.
//
// Shape to check: each added optimization reduces compile time
// (Other OPT >= +OPT5 >= +OPT4,5).
#include <cstdio>

#include "bench_util.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

double timed_compile(const ParserSpec& spec, const HwProfile& hw, bool opt4, bool opt5,
                     bool* ok) {
  SynthOptions opts;
  opts.opt4_constant_synthesis = opt4;
  opts.opt5_key_grouping = opt5;
  opts.timeout_sec = opt_timeout_sec();
  CompileResult r = compile(spec, hw, opts);
  *ok = r.ok();
  return r.ok() ? r.stats.seconds : opt_timeout_sec();
}

}  // namespace

int main() {
  JsonReport report("table5");
  std::printf("=== Table 5: speedup from Opt4/Opt5 (ablation) ===\n\n");
  struct Program {
    std::string name;
    ParserSpec spec;
  };
  std::vector<Program> programs = {
      {"Sai V1", suite::sai_v1()},
      {"Dash V1", suite::dash_v2()},
      {"Large tran key", suite::large_tran_key()},
  };

  TextTable table({"Program Name", "Tofino Other OPT (s)", "Tofino +OPT5 (s)",
                   "Tofino +OPT4,5 (s)", "IPU Other OPT (s)", "IPU +OPT5 (s)",
                   "IPU +OPT4,5 (s)"});
  bool monotone = true;
  for (const auto& p : programs) {
    std::vector<std::string> cells{p.name};
    report.begin_row();
    report.set("name", p.name);
    for (const HwProfile& hw : {tofino(), ipu()}) {
      bool ok = true;
      double other = timed_compile(p.spec, hw, /*opt4=*/false, /*opt5=*/false, &ok);
      double plus5 = timed_compile(p.spec, hw, /*opt4=*/false, /*opt5=*/true, &ok);
      double plus45 = timed_compile(p.spec, hw, /*opt4=*/true, /*opt5=*/true, &ok);
      // Allow small noise; the trend must hold within 20%.
      if (plus45 > other * 1.2) monotone = false;
      report.set(hw.name + "_other_sec", other);
      report.set(hw.name + "_plus5_sec", plus5);
      report.set(hw.name + "_plus45_sec", plus45);
      cells.push_back(fmt_double(other, 2));
      cells.push_back(fmt_double(plus5, 2));
      cells.push_back(fmt_double(plus45, 2));
    }
    table.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Fully-optimized no slower than un-ablated: %s\n", monotone ? "yes" : "NO");
  report.write();
  return 0;
}
