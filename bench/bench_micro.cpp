// Substrate micro-benchmarks (google-benchmark): throughput of the pieces
// every experiment leans on — BitVec manipulation, the spec/TCAM
// interpreters, path-directed input generation and the program analyzer.
// Not a paper table; used to keep the simulators fast enough that the
// differential tester's sample counts stay cheap.
#include <benchmark/benchmark.h>

#include "analysis/analysis.h"
#include "baseline/baseline.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "support/rng.h"

namespace {

using namespace parserhawk;

void BM_BitVecSlice(benchmark::State& state) {
  Rng rng(1);
  BitVec v = BitVec::random(512, [&rng] { return rng(); });
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.slice((i = (i + 7) % 448), 64).to_u64());
  }
}
BENCHMARK(BM_BitVecSlice);

void BM_BitVecAppend(benchmark::State& state) {
  for (auto _ : state) {
    BitVec v;
    for (int i = 0; i < 16; ++i) v.append_u64(0xA5A5, 16);
    benchmark::DoNotOptimize(v.size());
  }
}
BENCHMARK(BM_BitVecAppend);

void BM_SpecInterpreterEthernet(benchmark::State& state) {
  ParserSpec spec = suite::parse_ethernet();
  BitVec pkt;
  pkt.append_u64(0xAAAABBBBCCCCull, 48);
  pkt.append_u64(0x111122223333ull, 48);
  pkt.append_u64(0x0800, 16);
  pkt.append_u64(0xDEADBEEF, 32);
  for (auto _ : state) benchmark::DoNotOptimize(run_spec(spec, pkt));
}
BENCHMARK(BM_SpecInterpreterEthernet);

void BM_ImplInterpreterEthernet(benchmark::State& state) {
  ParserSpec spec = suite::parse_ethernet();
  CompileResult r = baseline::compile_tofino_proxy(spec, tofino());
  BitVec pkt;
  pkt.append_u64(0xAAAABBBBCCCCull, 48);
  pkt.append_u64(0x111122223333ull, 48);
  pkt.append_u64(0x0800, 16);
  pkt.append_u64(0xDEADBEEF, 32);
  for (auto _ : state) benchmark::DoNotOptimize(run_impl(r.program, pkt));
}
BENCHMARK(BM_ImplInterpreterEthernet);

void BM_SpecInterpreterMplsLoop(benchmark::State& state) {
  ParserSpec spec = suite::parse_mpls();
  BitVec pkt;
  pkt.append_u64(0x8847, 16);
  for (int i = 0; i < 7; ++i) pkt.append_u64(0x00123040, 32);
  pkt.append_u64(0x00123140, 32);
  pkt.append_u64(0xCAFEBABE, 32);
  for (auto _ : state) benchmark::DoNotOptimize(run_spec(spec, pkt, 16));
}
BENCHMARK(BM_SpecInterpreterMplsLoop);

void BM_PathDirectedInputGen(benchmark::State& state) {
  ParserSpec spec = suite::sai_v2();
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(generate_path_input(spec, rng, 16, 0));
}
BENCHMARK(BM_PathDirectedInputGen);

void BM_AnalyzeSaiV2(benchmark::State& state) {
  ParserSpec spec = suite::sai_v2();
  for (auto _ : state) benchmark::DoNotOptimize(analyze(spec, 8).max_input_bits);
}
BENCHMARK(BM_AnalyzeSaiV2);

void BM_GreedyMerge(benchmark::State& state) {
  std::vector<Rule> rules;
  for (int v = 0; v < 32; ++v) rules.push_back(Rule{static_cast<std::uint64_t>(v), 0x3F, 1});
  for (auto _ : state) benchmark::DoNotOptimize(baseline::greedy_merge_rules(rules, 6).size());
}
BENCHMARK(BM_GreedyMerge);

}  // namespace

BENCHMARK_MAIN();
