#include "bench_util.h"

#include <cstdlib>
#include <fstream>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rewrite/rewrite.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "synth/normalize.h"

namespace parserhawk::bench {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return end != v && parsed > 0 ? parsed : fallback;
}

}  // namespace

double orig_timeout_sec() { return env_double("PH_ORIG_TIMEOUT_SEC", 8.0); }
double opt_timeout_sec() { return env_double("PH_OPT_TIMEOUT_SEC", 60.0); }
bool skip_orig() { return std::getenv("PH_SKIP_ORIG") != nullptr; }

int num_threads() {
  int t = static_cast<int>(env_double("PH_THREADS", 1.0));
  return t < 1 ? 1 : t;
}

std::string cache_dir() {
  const char* v = std::getenv("PH_CACHE_DIR");
  return v == nullptr ? "" : v;
}

int difftest_batch() {
  const char* v = std::getenv("PH_DIFFTEST_BATCH");
  if (v == nullptr) return -1;
  int n = std::atoi(v);
  return n > 0 ? n : -1;
}

int difftest_threads() {
  const char* v = std::getenv("PH_DIFFTEST_THREADS");
  if (v == nullptr) return -1;
  int n = std::atoi(v);
  return n >= 0 ? n : -1;
}

VerifierKind verifier() {
  const char* v = std::getenv("PH_VERIFIER");
  VerifierKind k = VerifierKind::Z3;
  if (v != nullptr) parse_verifier(v, k);  // unknown values keep the default
  return k;
}

std::vector<RowFamily> table3_families() {
  using namespace parserhawk::suite;
  Rng rng(0xbe7c4);
  std::vector<RowFamily> out;

  auto base = [](const ParserSpec& s) { return Variant{"", s}; };

  {
    ParserSpec s = parse_ethernet();
    out.push_back(RowFamily{"Parse Ethernet",
                            false,
                            {base(s),
                             {"+ R1", rewrite::add_redundant_entries(s, rng, 3)},
                             {"- R3", rewrite::merge_entries(s)},
                             {"+ R2", rewrite::add_unreachable_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = parse_icmp();
    out.push_back(RowFamily{"Parse icmp",
                            false,
                            {base(s),
                             {"+ R5", rewrite::split_states(s, rng, 1)},
                             {"- R3", rewrite::merge_entries(s)}}});
  }
  {
    ParserSpec s = parse_mpls();
    out.push_back(RowFamily{"Parse MPLS",
                            true,
                            {base(s),
                             {"+ unroll loop", parse_mpls_unrolled(3)},
                             {"- R1", prune_dead_rules(s)},
                             {"+ R1", rewrite::add_redundant_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = large_tran_key();
    auto r4 = rewrite::split_transition_key(s, 0, 24);
    ParserSpec split = r4 ? *r4 : s;
    out.push_back(RowFamily{"Large tran key",
                            false,
                            {base(s),
                             {"+ R4", split},
                             {"+ R1 + R4", rewrite::add_redundant_entries(split, rng, 2)},
                             {"+ R3 + R4", rewrite::split_entries(split, rng, 1)}}});
  }
  {
    ParserSpec s = multi_key_same_field();
    out.push_back(RowFamily{"Multi-key (same pkt field)",
                            false,
                            {base(s),
                             {"- R5", merge_extract_chains(s)},
                             {"- R5 - R3", rewrite::merge_entries(merge_extract_chains(s))}}});
  }
  {
    ParserSpec s = multi_keys_diff_fields();
    out.push_back(RowFamily{"Multi-keys (diff pkt fields)",
                            false,
                            {base(s),
                             {"+ R5", rewrite::split_states(s, rng, 1)},
                             {"- R5", merge_extract_chains(s)}}});
  }
  {
    ParserSpec s = pure_extraction_states();
    out.push_back(RowFamily{"Pure Extraction states",
                            false,
                            {base(s), {"+ state merging", merge_extract_chains(s)}}});
  }
  {
    ParserSpec s = sai_v1();
    out.push_back(RowFamily{
        "Sai V1", false, {base(s), {"+ R2", rewrite::add_unreachable_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = sai_v2();
    out.push_back(RowFamily{"Sai V2",
                            false,
                            {base(s),
                             {"+ R1 + R2",
                              rewrite::add_unreachable_entries(
                                  rewrite::add_redundant_entries(s, rng, 2), rng, 2)}}});
  }
  {
    ParserSpec s = dash_v2();
    out.push_back(RowFamily{"Dash V2",
                            false,
                            {base(s),
                             {"+ R1 + R2",
                              rewrite::add_unreachable_entries(
                                  rewrite::add_redundant_entries(s, rng, 2), rng, 2)}}});
  }
  {
    ParserSpec s = finance_origin();
    out.push_back(RowFamily{
        "Finance origin", false, {base(s), {"+ R1", rewrite::add_redundant_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = ipv4_options();
    out.push_back(RowFamily{"IPv4 options (varbit)", false, {base(s)}});
  }
  return out;
}

PhRun run_parserhawk(const ParserSpec& spec, const HwProfile& hw) {
  PhRun run;
  SynthOptions opt;
  opt.timeout_sec = opt_timeout_sec();
  opt.num_threads = num_threads();
  opt.cache_dir = cache_dir();  // empty keeps the cache off
  if (difftest_batch() > 0) opt.difftest_samples = difftest_batch();
  if (difftest_threads() >= 0) opt.difftest_threads = difftest_threads();
  opt.verifier = verifier();
  run.opt = compile(spec, hw, opt);

  if (!skip_orig()) {
    SynthOptions orig = SynthOptions::naive();
    orig.timeout_sec = orig_timeout_sec();
    run.orig = compile(spec, hw, orig);
    run.orig_ran = true;
    // Any unsuccessful Orig run exhausted its scaled budget without a
    // result (the paper's ">86400" rows); report the bound, not a zero.
    run.orig_timed_out = !run.orig.ok();
    double orig_time = run.orig_timed_out ? orig_timeout_sec() : run.orig.stats.seconds;
    if (run.opt.stats.seconds > 0) run.speedup = orig_time / run.opt.stats.seconds;
  }
  return run;
}

std::string failure_cell(const CompileResult& result) {
  const std::string& r = result.reason;
  if (r.find("wide-tran-key") != std::string::npos) return "Wide tran key";
  if (r.find("parser-loop-rej") != std::string::npos || r.find("parser-loop") != std::string::npos)
    return "Parser loop rej";
  if (r.find("conflict-transition") != std::string::npos) return "Conflict transition";
  if (r.find("too-many-stages") != std::string::npos) return "Too many stages";
  if (r.find("entries") != std::string::npos || r.find("too-many-tcam") != std::string::npos ||
      r.find("split-explosion") != std::string::npos)
    return "Too many TCAM";
  if (result.status == CompileStatus::Timeout) return "Timeout";
  return to_string(result.status);
}

std::string tcam_cell(const CompileResult& result) {
  return result.ok() ? std::to_string(result.usage.tcam_entries) : failure_cell(result);
}

std::string stages_cell(const CompileResult& result) {
  return result.ok() ? std::to_string(result.usage.stages) : failure_cell(result);
}

// ---------------------------------------------------------------------------
// JsonReport
// ---------------------------------------------------------------------------

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name)
    : name_(std::move(bench_name)), path_("BENCH_" + name_ + ".json") {
  // Benches always collect metrics: the snapshot rides in the sidecar, so a
  // bench run's Z3/CEGIS telemetry is never lost. Tracing stays opt-in
  // (per-event buffers cost memory over a long table).
  obs::Metrics::get().enable();
  if (std::getenv("PH_TRACE") != nullptr) obs::Tracer::get().enable();
  obs::set_thread_name("main");
}

void JsonReport::begin_row() { rows_.emplace_back(); }

void JsonReport::set(const std::string& key, const std::string& v) {
  if (!rows_.empty()) rows_.back().str(key, v);
}
void JsonReport::set(const std::string& key, const char* v) { set(key, std::string(v)); }
void JsonReport::set(const std::string& key, double v) {
  if (!rows_.empty()) rows_.back().num(key, v);
}
void JsonReport::set(const std::string& key, std::int64_t v) {
  if (!rows_.empty()) rows_.back().num(key, v);
}
void JsonReport::set(const std::string& key, bool v) {
  if (!rows_.empty()) rows_.back().boolean(key, v);
}

void JsonReport::add_compile(const std::string& prefix, const CompileResult& r) {
  set(prefix + "_status", to_string(r.status));
  set(prefix + "_seconds", r.stats.seconds);
  if (r.ok()) {
    set(prefix + "_tcam_entries", r.usage.tcam_entries);
    set(prefix + "_stages", r.usage.stages);
  } else {
    set(prefix + "_failure", failure_cell(r));
  }
  set(prefix + "_cegis_rounds", r.stats.cegis_rounds);
  set(prefix + "_synth_queries", r.stats.synth_queries);
  set(prefix + "_verify_queries", r.stats.verify_queries);
  set(prefix + "_budget_attempts", r.stats.budget_attempts);
  set(prefix + "_formally_verified", r.stats.formally_verified);
}

void JsonReport::add_run(const PhRun& run) {
  add_compile("opt", run.opt);
  if (run.orig_ran) {
    add_compile("orig", run.orig);
    set("orig_timed_out", run.orig_timed_out);
    set("speedup", run.speedup);
  }
}

bool JsonReport::write() const {
  bool ok = true;
  std::string out = "{\"bench\":" + obs::json_str(name_) + ",\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i) out += ",";
    out += rows_[i].render();
  }
  out += "],\"metrics\":" + obs::Metrics::get().to_json() + "}\n";
  std::ofstream f(path_);
  if (f) {
    f << out;
    ok = f.good();
  } else {
    ok = false;
  }
  if (ok)
    obs::log_info("bench sidecar written to %s", path_.c_str());
  else
    obs::log_error("cannot write bench sidecar %s", path_.c_str());

  if (const char* env = std::getenv("PH_METRICS"))
    ok = obs::Metrics::get().write_json(env) && ok;
  if (const char* env = std::getenv("PH_TRACE")) {
    std::string p = env;
    bool w = ends_with(p, ".jsonl") ? obs::Tracer::get().write_jsonl(p)
                                    : obs::Tracer::get().write_chrome_trace(p);
    if (w)
      obs::log_info("trace written to %s", p.c_str());
    else
      obs::log_error("cannot write trace %s", p.c_str());
    ok = w && ok;
  }
  return ok;
}

}  // namespace parserhawk::bench
