#include "bench_util.h"

#include <cstdlib>

#include "rewrite/rewrite.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "synth/normalize.h"

namespace parserhawk::bench {

namespace {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return end != v && parsed > 0 ? parsed : fallback;
}

}  // namespace

double orig_timeout_sec() { return env_double("PH_ORIG_TIMEOUT_SEC", 8.0); }
double opt_timeout_sec() { return env_double("PH_OPT_TIMEOUT_SEC", 60.0); }
bool skip_orig() { return std::getenv("PH_SKIP_ORIG") != nullptr; }

int num_threads() {
  int t = static_cast<int>(env_double("PH_THREADS", 1.0));
  return t < 1 ? 1 : t;
}

std::vector<RowFamily> table3_families() {
  using namespace parserhawk::suite;
  Rng rng(0xbe7c4);
  std::vector<RowFamily> out;

  auto base = [](const ParserSpec& s) { return Variant{"", s}; };

  {
    ParserSpec s = parse_ethernet();
    out.push_back(RowFamily{"Parse Ethernet",
                            false,
                            {base(s),
                             {"+ R1", rewrite::add_redundant_entries(s, rng, 3)},
                             {"- R3", rewrite::merge_entries(s)},
                             {"+ R2", rewrite::add_unreachable_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = parse_icmp();
    out.push_back(RowFamily{"Parse icmp",
                            false,
                            {base(s),
                             {"+ R5", rewrite::split_states(s, rng, 1)},
                             {"- R3", rewrite::merge_entries(s)}}});
  }
  {
    ParserSpec s = parse_mpls();
    out.push_back(RowFamily{"Parse MPLS",
                            true,
                            {base(s),
                             {"+ unroll loop", parse_mpls_unrolled(3)},
                             {"- R1", prune_dead_rules(s)},
                             {"+ R1", rewrite::add_redundant_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = large_tran_key();
    auto r4 = rewrite::split_transition_key(s, 0, 24);
    ParserSpec split = r4 ? *r4 : s;
    out.push_back(RowFamily{"Large tran key",
                            false,
                            {base(s),
                             {"+ R4", split},
                             {"+ R1 + R4", rewrite::add_redundant_entries(split, rng, 2)},
                             {"+ R3 + R4", rewrite::split_entries(split, rng, 1)}}});
  }
  {
    ParserSpec s = multi_key_same_field();
    out.push_back(RowFamily{"Multi-key (same pkt field)",
                            false,
                            {base(s),
                             {"- R5", merge_extract_chains(s)},
                             {"- R5 - R3", rewrite::merge_entries(merge_extract_chains(s))}}});
  }
  {
    ParserSpec s = multi_keys_diff_fields();
    out.push_back(RowFamily{"Multi-keys (diff pkt fields)",
                            false,
                            {base(s),
                             {"+ R5", rewrite::split_states(s, rng, 1)},
                             {"- R5", merge_extract_chains(s)}}});
  }
  {
    ParserSpec s = pure_extraction_states();
    out.push_back(RowFamily{"Pure Extraction states",
                            false,
                            {base(s), {"+ state merging", merge_extract_chains(s)}}});
  }
  {
    ParserSpec s = sai_v1();
    out.push_back(RowFamily{
        "Sai V1", false, {base(s), {"+ R2", rewrite::add_unreachable_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = sai_v2();
    out.push_back(RowFamily{"Sai V2",
                            false,
                            {base(s),
                             {"+ R1 + R2",
                              rewrite::add_unreachable_entries(
                                  rewrite::add_redundant_entries(s, rng, 2), rng, 2)}}});
  }
  {
    ParserSpec s = dash_v2();
    out.push_back(RowFamily{"Dash V2",
                            false,
                            {base(s),
                             {"+ R1 + R2",
                              rewrite::add_unreachable_entries(
                                  rewrite::add_redundant_entries(s, rng, 2), rng, 2)}}});
  }
  {
    ParserSpec s = finance_origin();
    out.push_back(RowFamily{
        "Finance origin", false, {base(s), {"+ R1", rewrite::add_redundant_entries(s, rng, 2)}}});
  }
  {
    ParserSpec s = ipv4_options();
    out.push_back(RowFamily{"IPv4 options (varbit)", false, {base(s)}});
  }
  return out;
}

PhRun run_parserhawk(const ParserSpec& spec, const HwProfile& hw) {
  PhRun run;
  SynthOptions opt;
  opt.timeout_sec = opt_timeout_sec();
  opt.num_threads = num_threads();
  run.opt = compile(spec, hw, opt);

  if (!skip_orig()) {
    SynthOptions orig = SynthOptions::naive();
    orig.timeout_sec = orig_timeout_sec();
    run.orig = compile(spec, hw, orig);
    run.orig_ran = true;
    // Any unsuccessful Orig run exhausted its scaled budget without a
    // result (the paper's ">86400" rows); report the bound, not a zero.
    run.orig_timed_out = !run.orig.ok();
    double orig_time = run.orig_timed_out ? orig_timeout_sec() : run.orig.stats.seconds;
    if (run.opt.stats.seconds > 0) run.speedup = orig_time / run.opt.stats.seconds;
  }
  return run;
}

std::string failure_cell(const CompileResult& result) {
  const std::string& r = result.reason;
  if (r.find("wide-tran-key") != std::string::npos) return "Wide tran key";
  if (r.find("parser-loop-rej") != std::string::npos || r.find("parser-loop") != std::string::npos)
    return "Parser loop rej";
  if (r.find("conflict-transition") != std::string::npos) return "Conflict transition";
  if (r.find("too-many-stages") != std::string::npos) return "Too many stages";
  if (r.find("entries") != std::string::npos || r.find("too-many-tcam") != std::string::npos ||
      r.find("split-explosion") != std::string::npos)
    return "Too many TCAM";
  if (result.status == CompileStatus::Timeout) return "Timeout";
  return to_string(result.status);
}

std::string tcam_cell(const CompileResult& result) {
  return result.ok() ? std::to_string(result.usage.tcam_entries) : failure_cell(result);
}

std::string stages_cell(const CompileResult& result) {
  return result.ok() ? std::to_string(result.usage.stages) : failure_cell(result);
}

}  // namespace parserhawk::bench
