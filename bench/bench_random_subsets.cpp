// §7 benchmark-generation methodology: "Some benchmarks are created by
// randomly selecting a subset of 2-9 parser states from switch.p4 ...".
// This harness samples connected 2-9-state subsets of the switch.p4-style
// population, compiles each for both targets, and differential-validates
// every output — the long tail of structurally diverse programs that backs
// the paper's "compiles all benchmarks" claim.
#include <cstdio>

#include "bench_util.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("random_subsets");
  std::printf("=== Random switch.p4-style subset benchmarks (§7 methodology) ===\n\n");
  ParserSpec population = suite::subsets::switch_p4_style();
  std::printf("Population graph: %zu states\n\n", population.states.size());

  Rng rng(0x5D17C4);
  TextTable table({"Subset", "#states", "tofino #TCAM", "tofino t(s)", "ipu #stages",
                   "ipu t(s)", "validated"});
  int total = 0, compiled_both = 0, validated = 0;
  const int kSamples = 8;
  for (int i = 0; i < kSamples; ++i) {
    int k = rng.range(2, 9);
    ParserSpec spec = suite::subsets::random_subset(population, rng, k);
    ++total;

    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    CompileResult on_tofino = compile(spec, tofino(), opts);
    CompileResult on_ipu = compile(spec, ipu(), opts);
    bool both = on_tofino.ok() && on_ipu.ok();
    if (both) ++compiled_both;

    bool all_valid = both;
    for (const CompileResult* r : {&on_tofino, &on_ipu}) {
      if (!r->ok()) continue;
      DiffTestOptions dt;
      dt.samples = 200;
      dt.seed = static_cast<std::uint64_t>(i) + 11;
      dt.max_iterations = r->program.max_iterations;
      if (differential_test(r->reference, r->program, dt)) all_valid = false;
    }
    if (all_valid && both) ++validated;

    report.begin_row();
    report.set("subset", spec.name);
    report.set("states", static_cast<std::int64_t>(spec.states.size()));
    report.add_compile("tofino", on_tofino);
    report.add_compile("ipu", on_ipu);
    report.set("validated", all_valid && both);

    table.add_row({spec.name, std::to_string(spec.states.size()), tcam_cell(on_tofino),
                   on_tofino.ok() ? fmt_double(on_tofino.stats.seconds, 2) : "",
                   stages_cell(on_ipu), on_ipu.ok() ? fmt_double(on_ipu.stats.seconds, 2) : "",
                   both ? (all_valid ? "PASS" : "FAIL") : ""});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%d/%d subsets compiled on both targets; %d/%d validated.\n", compiled_both, total,
              validated, compiled_both);
  report.write();
  return compiled_both == total && validated == compiled_both ? 0 : 1;
}
