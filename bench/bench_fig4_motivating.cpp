// Figure 4: the motivating example. The Figure 3 program compiled for
// device B (4-bit transition keys) and device A (2-bit keys). The
// heuristic path (V1 = DPParserGen's greedy merge + fixed-order split)
// lands on more entries than the synthesis path (V2 = ParserHawk): the
// paper reports 5-vs-4 on device B and 10-vs-6 on device A.
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("fig4_motivating");
  std::printf("=== Figure 4: heuristic (V1) vs synthesis (V2) on the Figure 3 program ===\n\n");
  ParserSpec spec = suite::figure3_program();

  TextTable table({"Device", "Key limit", "V2 ParserHawk #TCAM", "V1 DPParserGen #TCAM"});
  bool shape_holds = true;
  struct Dev {
    std::string name;
    int key_limit;
  };
  for (const Dev& dev : {Dev{"Device B", 4}, Dev{"Device A", 2}}) {
    HwProfile hw = parametrized(dev.key_limit, /*lookahead=*/32, /*extract=*/16);
    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    CompileResult ph = compile(spec, hw, opts);
    CompileResult dp = baseline::compile_dpparsergen(spec, hw);
    report.begin_row();
    report.set("device", dev.name);
    report.set("key_limit", dev.key_limit);
    report.add_compile("ph", ph);
    report.add_compile("dp", dp);
    table.add_row({dev.name, std::to_string(dev.key_limit) + "-bit", tcam_cell(ph),
                   tcam_cell(dp)});
    if (ph.ok() && dp.ok() && ph.usage.tcam_entries > dp.usage.tcam_entries) shape_holds = false;
    if (!ph.ok()) shape_holds = false;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Synthesis never uses more entries than the heuristic: %s\n",
              shape_holds ? "yes" : "NO");
  report.write();
  return shape_holds ? 0 : 1;
}
