// Table 4: ParserHawk vs DPParserGen over the motivating examples under
// parameterized hardware (transition-key width sweep, 2-bit lookahead,
// 10-bit extraction limit — widened just enough to hold each program's
// fields, as the paper's parameterization is per-benchmark).
//
// ME-1 rewards a good entry-merging strategy, ME-2 requires key splitting,
// ME-3 is full of redundant entries. The shape to check: ParserHawk <=
// DPParserGen everywhere, strictly fewer where the DP heuristics are
// suboptimal (greedy merge order, fixed split order, no redundancy
// elimination).
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

struct Row {
  std::string name;
  ParserSpec spec;
  int key_width_limit;
};

}  // namespace

int main() {
  JsonReport report("table4");
  std::printf("=== Table 4: ParserHawk vs DPParserGen (parameterized hardware) ===\n\n");

  std::vector<Row> rows = {
      {"Large tran key", suite::large_tran_key(), 32},
      {"ME-1", suite::me1_entry_merging(), 4},
      {"ME-2", suite::me2_key_splitting(), 16},
      {"ME-2", suite::me2_key_splitting(), 8},
      {"ME-3", suite::me3_redundant_entries(), 16},
  };

  TextTable table({"", "ParserHawk #TCAM", "DPParserGen #TCAM", "Key width", "Lookahead",
                   "Extract limit"});
  bool never_worse = true;
  int strictly_better = 0;
  for (const auto& row : rows) {
    // The paper fixes a 2-bit lookahead and 10-bit extraction budget for
    // the MEs; our programs' widest single extract bounds the floor.
    int widest = 0;
    for (const auto& f : row.spec.fields) widest = std::max(widest, f.width);
    int extract_limit = std::max(10, widest);
    int lookahead = std::max(2, row.spec.states[static_cast<std::size_t>(row.spec.start)].key_width() +
                                    48);  // window must reach the dispatch key
    HwProfile hw = parametrized(row.key_width_limit, lookahead, extract_limit);

    SynthOptions opts;
    opts.timeout_sec = opt_timeout_sec();
    CompileResult ph = compile(row.spec, hw, opts);
    CompileResult dp = baseline::compile_dpparsergen(row.spec, hw);

    report.begin_row();
    report.set("name", row.name);
    report.set("key_width_limit", row.key_width_limit);
    report.add_compile("ph", ph);
    report.add_compile("dp", dp);

    if (ph.ok() && dp.ok()) {
      if (ph.usage.tcam_entries > dp.usage.tcam_entries) never_worse = false;
      if (ph.usage.tcam_entries < dp.usage.tcam_entries) ++strictly_better;
    }
    table.add_row({row.name, tcam_cell(ph), tcam_cell(dp),
                   std::to_string(row.key_width_limit) + "-bit", "2-bit",
                   std::to_string(extract_limit) + "-bit"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("ParserHawk never worse: %s; strictly fewer entries on %d rows.\n",
              never_worse ? "yes" : "NO (regression!)", strictly_better);
  report.write();
  return never_worse ? 0 : 1;
}
