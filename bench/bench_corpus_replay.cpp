// Protocol-zoo corpus replay: synthesize each examples/specs parser, pump
// its deterministic synthetic trace (plus a pcap round-trip of it)
// through the batched differential engine, and report replay throughput
// and coverage (DESIGN.md §10).
//
//   ./build/bench/bench_corpus_replay
//   PH_CORPUS_SPECS=vlan,vxlan PH_CORPUS_WALKS=256 ./build/bench/bench_corpus_replay
//
// Hard gates (non-zero exit, so this binary is registered with ctest):
//   * every selected spec compiles and its replay difftests clean (zero
//     spec/impl disagreements over the whole corpus);
//   * the corpus reaches 100% spec rule coverage on every spec — an
//     uncovered rule means the replay proves nothing about it.
//
// Knobs: PH_CORPUS_SPECS (comma-separated subset; default: every spec in
// the registry), PH_CORPUS_WALKS (random walks appended per trace,
// default 64), PH_SIM_REPS (best-of reps, default 3). The metrics
// registry snapshot lands in BENCH_corpus_replay.json and, for the CI
// trace check, in BENCH_corpus_replay_metrics.json (cov.corpus.<spec>.*
// gauges included).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "sim/batch.h"
#include "sim/pcap.h"
#include "sim/tracegen.h"
#include "suite/corpus.h"
#include "support/table.h"
#include "support/timer.h"

using namespace parserhawk;
using namespace parserhawk::bench;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  int n = v != nullptr ? std::atoi(v) : 0;
  return n > 0 ? n : fallback;
}

std::vector<std::string> selected_specs() {
  const char* v = std::getenv("PH_CORPUS_SPECS");
  if (v == nullptr || *v == '\0') return corpus::list_specs();
  std::vector<std::string> names;
  std::string s(v);
  for (std::size_t at = 0; at < s.size();) {
    std::size_t comma = s.find(',', at);
    if (comma == std::string::npos) comma = s.size();
    if (comma > at) names.push_back(s.substr(at, comma - at));
    at = comma + 1;
  }
  return names;
}

template <typename F>
double best_of(int reps, F&& body) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    body();
    double t = watch.elapsed_sec();
    if (t < best) best = t;
  }
  return best;
}

}  // namespace

int main() {
  JsonReport report("corpus_replay");
  const int reps = env_int("PH_SIM_REPS", 3);
  const int walks = env_int("PH_CORPUS_WALKS", 64);
  obs::Metrics::get().enable();

  std::vector<std::string> names = selected_specs();
  if (names.empty()) {
    std::printf("FAIL: no specs found in %s\n", corpus::specs_dir().c_str());
    return 1;
  }
  std::printf("corpus: %zu spec(s) from %s, best of %d reps\n\n", names.size(),
              corpus::specs_dir().c_str(), reps);
  TextTable table(
      {"Spec", "States", "Rules", "Rows", "Packets", "Synth s", "Coverage", "Replay pkt/s"});

  bool all_ok = true;
  for (const std::string& name : names) {
    auto spec = corpus::load_spec(name);
    if (!spec.ok()) {
      std::printf("FAIL: %s: %s\n", name.c_str(), spec.error().to_string().c_str());
      all_ok = false;
      continue;
    }
    corpus::ReplayOptions opts;
    opts.synth.timeout_sec = opt_timeout_sec();
    opts.synth.num_threads = num_threads();
    opts.trace.random_walks = walks;
    opts.batch.threads = 1;

    // Replay includes the trace round-tripped through the pcap machinery,
    // so the serialization path is part of what this bench exercises.
    TraceGenReport trace = generate_trace(*spec, opts.trace);
    auto capture = pcap::parse(pcap::write(trace.packets));
    if (!capture.ok()) {
      std::printf("FAIL: %s: %s\n", name.c_str(), capture.error().to_string().c_str());
      all_ok = false;
      continue;
    }
    opts.extra_packets = capture->to_bitvecs();

    corpus::ReplayReport rep = corpus::replay_spec(name, *spec, opts);
    if (!rep.ok) {
      std::printf("FAIL: %s: %s\n", name.c_str(), rep.detail.c_str());
      all_ok = false;
      continue;
    }

    // Throughput: the full pcap-derived corpus through the batch runner.
    BatchRunner runner(*spec, rep.compiled.program, opts.batch);
    const std::vector<BitVec>& packets = opts.extra_packets;
    double t_replay = best_of(reps, [&] { runner.run(packets); });
    double pkts_per_sec = t_replay > 0 ? static_cast<double>(packets.size()) / t_replay : 0;

    std::string coverage = std::to_string(rep.coverage.rules_hit()) + "/" +
                           std::to_string(rep.coverage.rules_total());
    report.begin_row();
    report.set("spec", name);
    report.set("states", static_cast<std::int64_t>(spec->states.size()));
    report.set("rules", rep.coverage.rules_total());
    report.set("tcam_rows", static_cast<std::int64_t>(rep.compiled.program.entries.size()));
    report.set("packets", static_cast<std::int64_t>(rep.corpus_size));
    report.set("synth_sec", rep.compiled.stats.seconds);
    report.set("rules_hit", rep.coverage.rules_hit());
    report.set("rules_total", rep.coverage.rules_total());
    report.set("replay_pkts_per_sec", pkts_per_sec);
    report.set("trace_missed_rules", static_cast<std::int64_t>(rep.trace.missed_rules.size()));
    report.set("covered", rep.coverage.all_rules_covered());
    table.add_row({name, std::to_string(spec->states.size()),
                   std::to_string(rep.coverage.rules_total()),
                   std::to_string(rep.compiled.program.entries.size()),
                   std::to_string(rep.corpus_size), fmt_double(rep.compiled.stats.seconds, 2),
                   coverage, fmt_double(pkts_per_sec, 0)});
  }

  std::printf("%s\n", table.to_string().c_str());
  report.write();
  // The CI trace check asserts on the cov.corpus.<spec>.* gauges in here.
  obs::Metrics::get().write_json("BENCH_corpus_replay_metrics.json");

  if (!all_ok) {
    std::printf("FAIL: at least one spec did not replay clean with full coverage\n");
    return 1;
  }
  std::printf("OK: %zu spec(s) replayed clean with 100%% rule coverage\n", names.size());
  return 0;
}
