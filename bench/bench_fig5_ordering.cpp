// Figure 5: two ways of writing the *same* transition semantics (equal
// source entry counts) lead phase-decoupled compilers to different TCAM
// usage, while ParserHawk — which only sees semantics — lands on identical
// resources.
//
// We write the ME-2 key-splitting program in two styles: the transition
// key split at bit 4 (Sol1) and at bit 12 (Sol2). Both are
// semantics-preserving rewrites of one program (verified by the rewrite
// engine's tests); DPParserGen's fixed-order splitter reacts differently to
// each, ParserHawk does not.
#include <cstdio>

#include "bench_util.h"
#include "baseline/baseline.h"
#include "rewrite/rewrite.h"
#include "suite/suite.h"
#include "support/table.h"

using namespace parserhawk;
using namespace parserhawk::bench;

int main() {
  JsonReport report("fig5_ordering");
  std::printf("=== Figure 5: written-style sensitivity of decoupled compilation ===\n\n");
  ParserSpec base = suite::me2_key_splitting();
  auto sol1 = rewrite::split_transition_key(base, 0, 4);
  auto sol2 = rewrite::split_transition_key(base, 0, 12);
  if (!sol1 || !sol2) {
    std::printf("rewrite failed: %s\n",
                (!sol1 ? sol1.error() : sol2.error()).to_string().c_str());
    return 1;
  }

  HwProfile hw = parametrized(/*key=*/8, /*lookahead=*/32, /*extract=*/16);
  SynthOptions opts;
  opts.timeout_sec = opt_timeout_sec();

  TextTable table({"Written style", "ParserHawk #TCAM", "Tofino proxy #TCAM"});
  std::vector<int> ph_counts, proxy_counts;
  struct Style {
    std::string name;
    const ParserSpec& spec;
  };
  for (const Style& style : {Style{"Sol1 (split at bit 4)", *sol1},
                             Style{"Sol2 (split at bit 12)", *sol2}}) {
    CompileResult ph = compile(style.spec, hw, opts);
    CompileResult proxy = baseline::compile_tofino_proxy(style.spec, hw);
    report.begin_row();
    report.set("style", style.name);
    report.add_compile("ph", ph);
    report.add_compile("proxy", proxy);
    table.add_row({style.name, tcam_cell(ph), tcam_cell(proxy)});
    if (ph.ok()) ph_counts.push_back(ph.usage.tcam_entries);
    if (proxy.ok()) proxy_counts.push_back(proxy.usage.tcam_entries);
  }
  std::printf("%s\n", table.to_string().c_str());

  bool ph_invariant = ph_counts.size() == 2 && ph_counts[0] == ph_counts[1];
  bool proxy_varies = proxy_counts.size() != 2 || proxy_counts[0] != proxy_counts[1];
  std::printf("ParserHawk invariant across styles: %s; baseline varies (or fails): %s\n",
              ph_invariant ? "yes" : "NO", proxy_varies ? "yes" : "no");
  report.write();
  return ph_invariant ? 0 : 1;
}
