// Golden-corpus regression test for the spec interpreter: for every
// examples/specs/*.hawk program, a checked-in file of (input, outcome,
// output-dictionary) triples pins the reference semantics. Any
// interpreter change that alters an outcome, an extracted value, or
// which fields appear in the dictionary fails here with a precise diff.
//
// Regenerate after an *intentional* semantics change with
//   PH_REGEN_GOLDEN=1 ./build/tests/test_golden_corpus
// which rewrites tests/golden/<spec>.golden in the source tree.
//
// File format, one triple per line (blank lines and # comments ignored):
//   <input-bits> <outcome> <iterations> [<field>=<value-bits>]...
// where bit strings use the BitVec::to_string "0b..." wire-order form.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lang/lang.h"
#include "sim/interp.h"
#include "sim/testgen.h"

namespace parserhawk {
namespace {

std::vector<std::filesystem::path> example_specs() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(PH_EXAMPLES_DIR))
    if (entry.path().extension() == ".hawk") out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  return out;
}

ParserSpec load_spec(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto spec = lang::parse_source(buf.str());
  EXPECT_TRUE(spec.ok()) << path << ": " << (spec.ok() ? "" : spec.error().to_string());
  return *spec;
}

BitVec parse_bits(const std::string& s) {
  BitVec v;
  std::size_t start = s.rfind("0b", 0) == 0 ? 2 : 0;
  for (std::size_t i = start; i < s.size(); ++i) v.push_back(s[i] == '1');
  return v;
}

/// The corpus each golden file pins: deterministic differential-test
/// inputs for the spec. Changing this changes every golden file, so keep
/// it frozen; add cases by bumping kGoldenSamples alongside a regen.
constexpr int kGoldenSamples = 24;
constexpr std::uint64_t kGoldenSeed = 0x601d;

std::vector<BitVec> golden_corpus(const ParserSpec& spec) {
  DiffTestOptions dt;
  dt.samples = kGoldenSamples;
  dt.seed = kGoldenSeed;
  return difftest_corpus(spec, dt);
}

std::string render_triple(const ParserSpec& spec, const BitVec& input, const ParseResult& r) {
  std::ostringstream os;
  os << input.to_string() << " " << to_string(r.outcome) << " " << r.iterations;
  for (const auto& [fid, value] : r.dict)
    os << " " << spec.fields[static_cast<std::size_t>(fid)].name << "=" << value.to_string();
  return os.str();
}

TEST(GoldenCorpus, SpecInterpreterMatchesCheckedInTriples) {
  const bool regen = std::getenv("PH_REGEN_GOLDEN") != nullptr;
  auto files = example_specs();
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    ParserSpec spec = load_spec(file);
    std::filesystem::path golden =
        std::filesystem::path(PH_GOLDEN_DIR) / (file.stem().string() + ".golden");

    if (regen) {
      std::ofstream out(golden);
      ASSERT_TRUE(out.good()) << "cannot write " << golden;
      out << "# " << file.filename().string() << ": spec-interpreter golden corpus.\n"
          << "# input outcome iterations field=value...  (regen: PH_REGEN_GOLDEN=1)\n";
      for (const BitVec& input : golden_corpus(spec))
        out << render_triple(spec, input, run_spec(spec, input)) << "\n";
      continue;
    }

    std::ifstream in(golden);
    ASSERT_TRUE(in.good()) << "missing golden file " << golden
                           << " — run with PH_REGEN_GOLDEN=1 to create it";
    std::vector<std::string> expected;
    for (std::string line; std::getline(in, line);) {
      if (line.empty() || line[0] == '#') continue;
      expected.push_back(line);
    }
    std::vector<BitVec> corpus = golden_corpus(spec);
    ASSERT_EQ(expected.size(), corpus.size()) << golden << " is stale (corpus size changed)";
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      std::string actual = render_triple(spec, corpus[i], run_spec(spec, corpus[i]));
      EXPECT_EQ(expected[i], actual) << golden << " line " << i;
      // The input column must round-trip: the corpus is the contract.
      std::istringstream ls(expected[i]);
      std::string bits;
      ls >> bits;
      EXPECT_EQ(parse_bits(bits), corpus[i]) << golden << " line " << i;
    }
  }
}

}  // namespace
}  // namespace parserhawk
