#include "support/bitvec.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace parserhawk {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0);
  EXPECT_TRUE(v.empty());
}

TEST(BitVec, ZeroInitializedWidth) {
  BitVec v(10);
  EXPECT_EQ(v.size(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, FromU64IsMsbFirst) {
  // 0b1010 over 4 bits: wire bit 0 is the MSB (1).
  BitVec v = BitVec::from_u64(0b1010, 4);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_FALSE(v.get(3));
}

TEST(BitVec, RoundTripU64) {
  for (std::uint64_t value : {0ull, 1ull, 0xdeadbeefull, 0xffffffffffffffffull}) {
    EXPECT_EQ(BitVec::from_u64(value, 64).to_u64(), value);
  }
  EXPECT_EQ(BitVec::from_u64(0x0800, 16).to_u64(), 0x0800u);
}

TEST(BitVec, FromU64TruncatesHighBits) {
  EXPECT_EQ(BitVec::from_u64(0x1f, 4).to_u64(), 0xfu);
}

TEST(BitVec, FromU64RejectsBadWidth) {
  EXPECT_THROW(BitVec::from_u64(0, -1), std::invalid_argument);
  EXPECT_THROW(BitVec::from_u64(0, 65), std::invalid_argument);
}

TEST(BitVec, SetAndGetAcrossWordBoundary) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(65));
}

TEST(BitVec, PushBackGrows) {
  BitVec v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVec, AppendConcatenatesInWireOrder) {
  BitVec a = BitVec::from_u64(0b101, 3);
  BitVec b = BitVec::from_u64(0b01, 2);
  a.append(b);
  EXPECT_EQ(a.size(), 5);
  EXPECT_EQ(a.to_u64(), 0b10101u);
}

TEST(BitVec, AppendU64) {
  BitVec v;
  v.append_u64(0x08, 8);
  v.append_u64(0x00, 8);
  EXPECT_EQ(v.to_u64(), 0x0800u);
}

TEST(BitVec, SliceWireOrder) {
  BitVec v = BitVec::from_u64(0b11001010, 8);
  EXPECT_EQ(v.slice(0, 4).to_u64(), 0b1100u);
  EXPECT_EQ(v.slice(4, 4).to_u64(), 0b1010u);
  EXPECT_EQ(v.slice(2, 3).to_u64(), 0b001u);
  EXPECT_EQ(v.slice(8, 0).size(), 0);
}

TEST(BitVec, SliceOutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.slice(5, 4), std::out_of_range);
  EXPECT_THROW(v.slice(-1, 2), std::out_of_range);
}

TEST(BitVec, SliceAcrossWordBoundary) {
  BitVec v(128);
  v.set(62, true);
  v.set(63, true);
  v.set(64, true);
  EXPECT_EQ(v.slice(62, 3).to_u64(), 0b111u);
  EXPECT_EQ(v.slice(60, 8).to_u64(), 0b00111000u);
}

TEST(BitVec, ToU64OverWidthThrows) {
  BitVec v(65);
  EXPECT_THROW(v.to_u64(), std::invalid_argument);
}

TEST(BitVec, ParseBinary) {
  auto v = BitVec::parse_binary("0b1010");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_u64(), 0b1010u);
  EXPECT_EQ(BitVec::parse_binary("101")->to_u64(), 0b101u);
  EXPECT_EQ(BitVec::parse_binary("0b1010_1010")->to_u64(), 0b10101010u);
  EXPECT_FALSE(BitVec::parse_binary("0b").has_value());
  EXPECT_FALSE(BitVec::parse_binary("0b12").has_value());
  EXPECT_FALSE(BitVec::parse_binary("").has_value());
}

TEST(BitVec, ToStringRoundTrip) {
  BitVec v = BitVec::from_u64(0b0110, 4);
  EXPECT_EQ(v.to_string(), "0b0110");
  EXPECT_EQ(*BitVec::parse_binary(v.to_string()), v);
}

TEST(BitVec, EqualityIncludesWidth) {
  EXPECT_EQ(BitVec::from_u64(5, 4), BitVec::from_u64(5, 4));
  EXPECT_NE(BitVec::from_u64(5, 4), BitVec::from_u64(5, 5));
  EXPECT_NE(BitVec::from_u64(5, 4), BitVec::from_u64(4, 4));
}

TEST(BitVec, HashDistinguishesWidthAndContent) {
  EXPECT_NE(BitVec::from_u64(5, 4).hash(), BitVec::from_u64(5, 5).hash());
  EXPECT_NE(BitVec::from_u64(5, 4).hash(), BitVec::from_u64(6, 4).hash());
  EXPECT_EQ(BitVec::from_u64(5, 4).hash(), BitVec::from_u64(5, 4).hash());
}

TEST(BitVec, RandomHasRequestedWidth) {
  Rng rng(42);
  auto next = [&rng] { return rng(); };
  for (int w : {0, 1, 63, 64, 65, 200}) {
    EXPECT_EQ(BitVec::random(w, next).size(), w);
  }
}

TEST(BitVec, RandomIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  auto na = [&a] { return a(); };
  auto nb = [&b] { return b(); };
  auto nc = [&c] { return c(); };
  EXPECT_EQ(BitVec::random(100, na), BitVec::random(100, nb));
  Rng a2(7);
  auto na2 = [&a2] { return a2(); };
  EXPECT_NE(BitVec::random(100, na2), BitVec::random(100, nc));
}

// Property sweep: slice(i, w).to_u64 equals shifting the full value.
class BitVecSliceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVecSliceProperty, SliceMatchesShiftArithmetic) {
  const int width = 32;
  const std::uint64_t value = 0xA5C3F019u;
  BitVec v = BitVec::from_u64(value, width);
  int lo = GetParam();
  for (int len = 0; lo + len <= width; ++len) {
    std::uint64_t expect =
        len == 0 ? 0 : (value >> (width - lo - len)) & ((len == 64) ? ~0ull : ((1ull << len) - 1));
    EXPECT_EQ(v.slice(lo, len).to_u64(), expect) << "lo=" << lo << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, BitVecSliceProperty, ::testing::Range(0, 32));

}  // namespace
}  // namespace parserhawk
