#include "synth/compiler.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/testgen.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::mpls_loop;
using testing::spec1;
using testing::spec2;

/// An Ethernet-shaped benchmark: 3-way dispatch on a 16-bit type plus two
/// terminal payload states.
ParserSpec ethernet_like() {
  SpecBuilder b("ethernet_like");
  b.field("etherType", 16).field("v4", 16).field("v6", 16);
  b.state("start")
      .extract("etherType")
      .select({b.whole("etherType")})
      .when_exact(0x0800, "parse_v4")
      .when_exact(0x86dd, "parse_v6")
      .otherwise("accept");
  b.state("parse_v4").extract("v4").otherwise("accept");
  b.state("parse_v6").extract("v6").otherwise("accept");
  return b.build().value();
}

void expect_compiles_and_matches(const ParserSpec& spec, const HwProfile& hw,
                                 const SynthOptions& opts = {}) {
  CompileResult r = compile(spec, hw, opts);
  ASSERT_TRUE(r.ok()) << to_string(r.status) << ": " << r.reason;
  DiffTestOptions dt;
  dt.samples = 200;
  dt.max_iterations = r.program.max_iterations;
  auto mismatch = differential_test(r.reference, r.program, dt);
  EXPECT_FALSE(mismatch.has_value())
      << "input " << mismatch->input.to_string() << "\n"
      << to_string(r.program);
}

TEST(Compiler, Spec1CompilesToOneFusedEntry) {
  CompileResult r = compile(spec1(), tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_EQ(r.usage.tcam_entries, 1);  // pure extraction chain fuses fully
  EXPECT_TRUE(r.stats.formally_verified);
}

TEST(Compiler, Spec2CompilesWithinThreeEntries) {
  CompileResult r = compile(spec2(), tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_LE(r.usage.tcam_entries, 3);
  expect_compiles_and_matches(spec2(), tofino());
}

TEST(Compiler, EthernetLikeIsThreeEntriesOnTofino) {
  CompileResult r = compile(ethernet_like(), tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_EQ(r.usage.tcam_entries, 3);  // the paper's Parse Ethernet row
  expect_compiles_and_matches(ethernet_like(), tofino());
}

TEST(Compiler, EthernetLikeOnIpu) {
  CompileResult r = compile(ethernet_like(), ipu());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_GE(r.usage.stages, 1);
  EXPECT_LE(r.usage.stages, 3);
  expect_compiles_and_matches(ethernet_like(), ipu());
}

TEST(Compiler, Figure3MergesEntries) {
  CompileResult r = compile(figure3(), tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  // 4 transition entries ({15,11,7,3} merged + 14 + 2 + default); the three
  // payload states fold into them.
  EXPECT_EQ(r.usage.tcam_entries, 4);
  expect_compiles_and_matches(figure3(), tofino());
}

TEST(Compiler, Figure3OnNarrowKeyDeviceSplits) {
  // Device A of Figure 4: 2-bit transition keys force splitting; V2's
  // optimum is 6 entries.
  HwProfile hw = parametrized(/*key=*/2, /*lookahead=*/32, /*extract=*/64);
  CompileResult r = compile(figure3(), hw);
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_LE(r.usage.tcam_entries, 6);
  expect_compiles_and_matches(figure3(), hw);
}

TEST(Compiler, MplsLoopOnTofinoUsesLoopback) {
  CompileResult r = compile(mpls_loop(), tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_LE(r.usage.tcam_entries, 3);
  expect_compiles_and_matches(mpls_loop(), tofino());
}

TEST(Compiler, MplsLoopOnIpuUnrolls) {
  SynthOptions opts;
  opts.loop_unroll_depth = 3;
  CompileResult r = compile(mpls_loop(), ipu(), opts);
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_GT(r.usage.stages, 1);
  // Reference is the *unrolled* spec.
  DiffTestOptions dt;
  dt.samples = 150;
  dt.max_iterations = r.program.max_iterations;
  EXPECT_FALSE(differential_test(r.reference, r.program, dt).has_value());
}

TEST(Compiler, RedundantRulesDoNotCostEntries) {
  ParserSpec base = figure3();
  ParserSpec r1 = base;
  r1.states[0].rules.insert(r1.states[0].rules.begin() + 4, Rule{15, 0xF, 1});  // +R1
  CompileResult a = compile(base, tofino());
  CompileResult b = compile(r1, tofino());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.usage.tcam_entries, b.usage.tcam_entries);
}

TEST(Compiler, ResourceLimitYieldsResourceExceeded) {
  HwProfile hw = tofino();
  hw.tcam_entry_limit = 1;
  CompileResult r = compile(figure3(), hw);
  EXPECT_EQ(r.status, CompileStatus::ResourceExceeded);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Compiler, EthernetFitsOneStageViaInlining) {
  // Post-synthesis inlining folds the terminal extract states into the
  // dispatch rows, so even a 1-stage device suffices for this shape.
  HwProfile hw = ipu();
  hw.stage_limit = 1;
  CompileResult r = compile(ethernet_like(), hw);
  EXPECT_TRUE(r.ok()) << r.reason;
  EXPECT_EQ(r.usage.stages, 1);
}

TEST(Compiler, StageLimitYieldsResourceExceeded) {
  // Two *dependent* dispatches cannot share a pipeline stage: the second
  // select needs the first extraction. A 1-stage device must fail.
  SpecBuilder b("two_hops");
  b.field("t1", 8).field("t2", 8).field("x", 8);
  b.state("start")
      .extract("t1")
      .select({b.whole("t1")})
      .when_exact(1, "mid")
      .otherwise("accept");
  b.state("mid")
      .extract("t2")
      .select({b.whole("t2")})
      .when_exact(2, "deep")
      .otherwise("accept");
  b.state("deep").extract("x").otherwise("accept");
  ParserSpec spec = b.build().value();
  HwProfile hw = ipu();
  hw.stage_limit = 1;
  CompileResult r = compile(spec, hw);
  EXPECT_EQ(r.status, CompileStatus::ResourceExceeded);
  HwProfile ok_hw = ipu();
  CompileResult r2 = compile(spec, ok_hw);
  EXPECT_TRUE(r2.ok()) << r2.reason;
  EXPECT_GE(r2.usage.stages, 2);
}

TEST(Compiler, InvalidSpecRejected) {
  ParserSpec bad;
  bad.name = "bad";
  CompileResult r = compile(bad, tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
}

TEST(Compiler, TimeoutReported) {
  SynthOptions opts;
  opts.timeout_sec = 1e-6;
  CompileResult r = compile(figure3(), tofino(), opts);
  EXPECT_EQ(r.status, CompileStatus::Timeout);
}

TEST(Compiler, VarbitRoundTrip) {
  SpecBuilder b("vb");
  b.field("len", 2).varbit_field("opts", 12);
  b.state("s")
      .extract("len")
      .extract_var("opts", "len", 4, 0)
      .select({b.whole("len")})
      .when_exact(0, "accept")
      .otherwise("tail");
  b.state("tail").otherwise("accept");
  ParserSpec spec = b.build().value();
  CompileResult r = compile(spec, tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  bool has_varbit_extract = false;
  for (const auto& e : r.program.entries)
    for (const auto& ex : e.extracts)
      if (ex.len_field >= 0) has_varbit_extract = true;
  EXPECT_TRUE(has_varbit_extract);
  DiffTestOptions dt;
  dt.samples = 300;
  dt.max_iterations = r.program.max_iterations;
  EXPECT_FALSE(differential_test(spec, r.program, dt).has_value());
}

TEST(Compiler, StatsAreMeaningful) {
  CompileResult r = compile(figure3(), tofino());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.stats.seconds, 0);
  EXPECT_GT(r.stats.search_space_bits, 0);
  EXPECT_GT(r.stats.synth_queries, 0);
  EXPECT_GT(r.stats.budget_attempts, 0);
}

TEST(Compiler, StatusToString) {
  EXPECT_EQ(to_string(CompileStatus::Success), "success");
  EXPECT_EQ(to_string(CompileStatus::ResourceExceeded), "resource-exceeded");
  EXPECT_EQ(to_string(CompileStatus::Timeout), "timeout");
}

TEST(CompilerNaive, Spec1WithAllOptsOff) {
  SynthOptions naive = SynthOptions::naive();
  naive.timeout_sec = 60;
  CompileResult r = compile(spec1(), tofino(), naive);
  ASSERT_TRUE(r.ok()) << to_string(r.status) << ": " << r.reason;
  DiffTestOptions dt;
  dt.samples = 150;
  dt.max_iterations = r.program.max_iterations;
  EXPECT_FALSE(differential_test(spec1(), r.program, dt).has_value());
}

TEST(CompilerNaive, Spec2WithAllOptsOff) {
  SynthOptions naive = SynthOptions::naive();
  naive.timeout_sec = 120;
  CompileResult r = compile(spec2(), tofino(), naive);
  ASSERT_TRUE(r.ok()) << to_string(r.status) << ": " << r.reason;
  DiffTestOptions dt;
  dt.samples = 150;
  dt.max_iterations = r.program.max_iterations;
  EXPECT_FALSE(differential_test(spec2(), r.program, dt).has_value());
}

}  // namespace
}  // namespace parserhawk
