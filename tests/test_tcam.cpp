#include "tcam/tcam.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

/// Table 1 of the paper: the hand-written implementation of Spec2
/// (extract field0; if field0[0]==0 extract field1).
TcamProgram table1_impl() {
  TcamProgram p;
  p.name = "impl2";
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  // TID 0, SID 0, EID 0: True -> extract field0 -> (0,1)
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  // TID 0, SID 1, EID 0: field0[0]==0 -> extract field1 -> accept
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  // TID 0, SID 1, EID 1: field0[0]!=0 -> {} -> accept
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

TEST(TcamEntry, TernaryMatch) {
  TcamEntry e;
  e.value = 0b10;
  e.mask = 0b11;
  EXPECT_TRUE(e.matches(0b10));
  EXPECT_FALSE(e.matches(0b11));
}

TEST(TcamProgram, RowsOfSortsByPriority) {
  TcamProgram p = table1_impl();
  // Scramble insertion order.
  std::swap(p.entries[1], p.entries[2]);
  auto rows = p.rows_of(0, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->entry, 0);
  EXPECT_EQ(rows[1]->entry, 1);
}

TEST(TcamProgram, RowsOfFiltersTableAndState) {
  TcamProgram p = table1_impl();
  EXPECT_EQ(p.rows_of(0, 0).size(), 1u);
  EXPECT_EQ(p.rows_of(0, 2).size(), 0u);
  EXPECT_EQ(p.rows_of(1, 0).size(), 0u);
}

TEST(TcamProgram, LayoutLookup) {
  TcamProgram p = table1_impl();
  ASSERT_NE(p.layout_of(0, 1), nullptr);
  EXPECT_EQ(p.layout_of(0, 1)->key_width(), 1);
  EXPECT_EQ(p.layout_of(0, 0), nullptr);
}

TEST(Measure, CountsEntriesAndStages) {
  TcamProgram p = table1_impl();
  ResourceUsage u = measure(p);
  EXPECT_EQ(u.tcam_entries, 3);
  EXPECT_EQ(u.stages, 1);
  EXPECT_EQ(u.max_entries_per_stage, 3);
  EXPECT_EQ(u.max_key_bits, 1);
}

TEST(Measure, PipelinedStages) {
  TcamProgram p = table1_impl();
  p.entries[1].table = 1;
  p.entries[2].table = 1;
  ResourceUsage u = measure(p);
  EXPECT_EQ(u.stages, 2);
  EXPECT_EQ(u.max_entries_per_stage, 2);
}

TEST(ValidateVsProfile, AcceptsTable1OnTofino) {
  EXPECT_TRUE(validate(table1_impl(), tofino()).ok());
}

TEST(ValidateVsProfile, KeyLimitEnforced) {
  TcamProgram p = table1_impl();
  HwProfile hw = parametrized(/*key=*/1, 32, 128);
  EXPECT_TRUE(validate(p, hw).ok());
  p.layouts[{0, 1}].key[0].len = 2;  // now 2 bits > limit 1 (also widen field ref)
  p.fields[0].width = 4;
  EXPECT_FALSE(validate(p, hw).ok());
}

TEST(ValidateVsProfile, EntryBudgetTotalForSingleTable) {
  TcamProgram p = table1_impl();
  HwProfile hw = tofino();
  hw.tcam_entry_limit = 2;
  auto r = validate(p, hw);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("entries"), std::string::npos);
}

TEST(ValidateVsProfile, EntryBudgetPerStageForPipelined) {
  TcamProgram p = table1_impl();
  // Move state 1 (rows and key layout) to stage 1 so the program is
  // forward-only.
  p.entries[1].table = 1;
  p.entries[2].table = 1;
  p.entries[0].next_table = 1;
  p.layouts[{1, 1}] = p.layouts[{0, 1}];
  p.layouts.erase({0, 1});
  HwProfile hw = ipu();
  hw.tcam_entry_limit = 2;
  EXPECT_TRUE(validate(p, hw).ok());  // max 2 per stage
  hw.tcam_entry_limit = 1;
  EXPECT_FALSE(validate(p, hw).ok());
}

TEST(ValidateVsProfile, PipelinedMustMoveForward) {
  TcamProgram p = table1_impl();
  // All in stage 0 with a (0 -> 0) real transition: illegal on IPU.
  EXPECT_FALSE(validate(p, ipu()).ok());
}

TEST(ValidateVsProfile, SingleTableUsesOnlyTableZero) {
  TcamProgram p = table1_impl();
  p.entries[0].table = 1;
  EXPECT_FALSE(validate(p, tofino()).ok());
}

TEST(ValidateVsProfile, StageLimitEnforced) {
  TcamProgram p = table1_impl();
  p.entries[1].table = 20;
  p.entries[2].table = 20;
  p.entries[0].next_table = 20;
  HwProfile hw = ipu();  // stage_limit 16
  EXPECT_FALSE(validate(p, hw).ok());
}

TEST(ValidateVsProfile, ExtractionLimitEnforced) {
  TcamProgram p = table1_impl();
  HwProfile hw = tofino();
  hw.extract_limit_bits = 3;  // field0 is 4 bits
  EXPECT_FALSE(validate(p, hw).ok());
}

TEST(ValidateVsProfile, ConditionMustFitKey) {
  TcamProgram p = table1_impl();
  p.entries[2].mask = 0b10;  // key of (0,1) is 1 bit
  EXPECT_FALSE(validate(p, tofino()).ok());
}

TEST(ToString, DumpsRowsAndLayouts) {
  std::string text = to_string(table1_impl());
  EXPECT_NE(text.find("layout (0,1)"), std::string::npos);
  EXPECT_NE(text.find("row (0,0,0)"), std::string::npos);
  EXPECT_NE(text.find("accept"), std::string::npos);
}

}  // namespace
}  // namespace parserhawk
