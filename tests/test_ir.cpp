#include "ir/ir.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::spec1;
using testing::spec2;

TEST(Rule, TernaryMatchSemantics) {
  Rule r{0b1010, 0b1110, kAccept};
  EXPECT_TRUE(r.matches(0b1010));
  EXPECT_TRUE(r.matches(0b1011));  // unmasked low bit free
  EXPECT_FALSE(r.matches(0b0010));
  EXPECT_FALSE(r.matches(0b1110));
}

TEST(Rule, DefaultMatchesEverything) {
  Rule r{0, 0, kAccept};
  EXPECT_TRUE(r.is_default());
  for (std::uint64_t k : {0ull, 5ull, ~0ull}) EXPECT_TRUE(r.matches(k));
}

TEST(Rule, ValueBitsOutsideMaskAreIgnored) {
  // (key ^ value) & mask == 0 only inspects masked positions.
  Rule r{0b1111, 0b1000, kAccept};
  EXPECT_TRUE(r.matches(0b1000));
  EXPECT_TRUE(r.matches(0b1011));
  EXPECT_FALSE(r.matches(0b0111));
}

TEST(State, KeyWidthSumsParts) {
  State st;
  st.key.push_back(KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 12});
  st.key.push_back(KeyPart{KeyPart::Kind::Lookahead, -1, 4, 8});
  EXPECT_EQ(st.key_width(), 20);
}

TEST(ParserSpec, Lookups) {
  ParserSpec s = spec1();
  EXPECT_EQ(s.field_index("field0"), 0);
  EXPECT_EQ(s.field_index("nope"), -1);
  EXPECT_EQ(s.state_index("state1"), 1);
  EXPECT_EQ(s.state_index("nope"), -1);
}

TEST(Validate, AcceptsFixtures) {
  EXPECT_TRUE(validate(spec1()).ok());
  EXPECT_TRUE(validate(spec2()).ok());
  EXPECT_TRUE(validate(figure3()).ok());
}

TEST(Validate, RejectsEmptySpec) {
  ParserSpec s;
  s.name = "empty";
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsBadStartState) {
  ParserSpec s = spec1();
  s.start = 99;
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsUnknownFieldInExtract) {
  ParserSpec s = spec1();
  s.states[0].extracts[0].field = 42;
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsKeySliceOutOfFieldBounds) {
  ParserSpec s = spec2();
  s.states[0].key[0] = KeyPart{KeyPart::Kind::FieldSlice, 0, 2, 4};  // field0 is 4 bits
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsKeyWiderThan64) {
  SpecBuilder b("wide");
  b.field("f", 40).field("g", 40);
  b.state("s0").extract("f").extract("g").select({b.whole("f"), b.whole("g")}).otherwise("accept");
  EXPECT_FALSE(b.build().ok());
}

TEST(Validate, RejectsMaskWiderThanKey) {
  ParserSpec s = figure3();
  s.states[0].rules[0].mask = 0x1F;  // key is 4 bits
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsTransitionToUnknownState) {
  ParserSpec s = spec1();
  s.states[0].rules[0].next = 17;
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsNonDefaultRuleWithoutKey) {
  ParserSpec s = spec1();
  s.states[0].rules[0].mask = 1;  // state0 has no key
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsDuplicateFieldNames) {
  SpecBuilder b("dup");
  b.field("f", 4).field("f", 8);
  b.state("s0").extract("f").otherwise("accept");
  EXPECT_FALSE(b.build().ok());
}

TEST(Validate, RejectsVarbitInKey) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 64);
  b.state("s0").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  ParserSpec s = b.build().value();
  s.states[0].key.push_back(KeyPart{KeyPart::Kind::FieldSlice, 1, 0, 4});
  s.states[0].rules[0] = Rule{0, 0xF, kAccept};
  EXPECT_FALSE(validate(s).ok());
}

TEST(Validate, RejectsVarbitWithoutLengthSource) {
  SpecBuilder b("vb");
  b.varbit_field("opts", 64);
  ParserSpec s;
  s.name = "vb";
  s.fields.push_back(Field{"opts", 64, true});
  State st;
  st.name = "s0";
  st.extracts.push_back(ExtractOp{0, -1, 0, 0});  // varbit with no len field
  st.rules.push_back(Rule{0, 0, kAccept});
  s.states.push_back(st);
  EXPECT_FALSE(validate(s).ok());
}

TEST(StateName, SentinelsAndStates) {
  ParserSpec s = spec1();
  EXPECT_EQ(state_name(s, kAccept), "accept");
  EXPECT_EQ(state_name(s, kReject), "reject");
  EXPECT_EQ(state_name(s, 0), "state0");
  EXPECT_NE(state_name(s, 99).find("invalid"), std::string::npos);
}

TEST(ToString, MentionsStatesAndFields) {
  std::string text = to_string(figure3());
  EXPECT_NE(text.find("field tranKey : 4;"), std::string::npos);
  EXPECT_NE(text.find("state N1"), std::string::npos);
  EXPECT_NE(text.find("default : accept"), std::string::npos);
}

}  // namespace
}  // namespace parserhawk
