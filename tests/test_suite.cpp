#include "suite/suite.h"

#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

TEST(Suite, AllBenchmarksValidate) {
  for (const auto& b : suite::base_suite()) {
    EXPECT_TRUE(validate(b.spec).ok()) << b.name;
  }
}

TEST(Suite, LoopFlagsMatchAnalysis) {
  for (const auto& b : suite::base_suite()) {
    if (b.spec.fields.empty()) continue;
    bool varbit = false;
    for (const auto& f : b.spec.fields) varbit |= f.varbit;
    if (varbit) continue;  // analyzer loop check fine either way, just run it
    EXPECT_EQ(analyze(b.spec).has_loop, b.loopy) << b.name;
  }
}

TEST(Suite, EthernetDispatch) {
  ParserSpec spec = suite::parse_ethernet();
  BitVec pkt;
  pkt.append_u64(0xAAAABBBBCCCCull, 48);
  pkt.append_u64(0x111122223333ull, 48);
  pkt.append_u64(0x0800, 16);
  pkt.append_u64(0xDEADBEEF, 32);
  ParseResult r = run_spec(spec, pkt);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_TRUE(r.dict.count(spec.field_index("ipv4_hdr")));
  EXPECT_FALSE(r.dict.count(spec.field_index("ipv6_hdr")));
}

TEST(Suite, IcmpPath) {
  ParserSpec spec = suite::parse_icmp();
  BitVec pkt;
  pkt.append_u64(0x0800, 16);
  pkt.append_u64(0x45, 8);
  pkt.append_u64(1, 8);  // proto = ICMP
  pkt.append_u64(0x08, 8);
  pkt.append_u64(0x00, 8);
  ParseResult r = run_spec(spec, pkt);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_TRUE(r.dict.count(spec.field_index("icmp_type")));
  EXPECT_FALSE(r.dict.count(spec.field_index("tcp_ports")));
}

TEST(Suite, MplsStackDepths) {
  ParserSpec spec = suite::parse_mpls();
  for (int depth = 1; depth <= 4; ++depth) {
    BitVec pkt;
    pkt.append_u64(0x8847, 16);
    for (int i = 0; i < depth; ++i) {
      std::uint64_t word = (0x123 << 20) | (i + 1 == depth ? 0x100 : 0) | 0x40;
      pkt.append_u64(word, 32);
    }
    pkt.append_u64(0xCAFEBABE, 32);
    ParseResult r = run_spec(spec, pkt, 16);
    EXPECT_EQ(r.outcome, ParseOutcome::Accepted) << "depth " << depth;
    EXPECT_TRUE(r.dict.count(spec.field_index("payload")));
  }
}

TEST(Suite, MplsUnrolledAgreesWithLoopedOnShallowStacks) {
  ParserSpec loop = suite::parse_mpls();
  ParserSpec unrolled = suite::parse_mpls_unrolled(3);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    BitVec input = generate_path_input(loop, rng, 8, 96);
    ASSERT_TRUE(equivalent(run_spec(loop, input, 12), run_spec(unrolled, input, 12)))
        << input.to_string();
  }
}

TEST(Suite, LargeTranKeyIsWiderThanProxyLimit) {
  ParserSpec spec = suite::large_tran_key();
  EXPECT_GT(spec.states[0].key_width(), 32);
}

TEST(Suite, FinanceOriginClassifies) {
  ParserSpec spec = suite::finance_origin();
  auto classify = [&](std::uint64_t tag) {
    BitVec pkt;
    pkt.append_u64(0x6558, 16);
    pkt.append_u64(0xABCDEF, 24);
    pkt.append_u64(tag, 16);
    pkt.append_u64(0xFFFFFFFF, 32);  // plenty of payload
    return run_spec(spec, pkt);
  };
  EXPECT_TRUE(classify(0x1234).dict.count(spec.field_index("exch_seq")));
  EXPECT_TRUE(classify(0x2001).dict.count(spec.field_index("internal_meta")));
  EXPECT_TRUE(classify(0x3001).dict.count(spec.field_index("premium_meta")));
  EXPECT_TRUE(classify(0x3002).dict.count(spec.field_index("premium_meta")));
  ParseResult other = classify(0x4000);
  EXPECT_EQ(other.outcome, ParseOutcome::Accepted);
  EXPECT_FALSE(other.dict.count(spec.field_index("exch_seq")));
}

TEST(Suite, Ipv4OptionsVarbitLengths) {
  ParserSpec spec = suite::ipv4_options();
  // ihl = 5: no options.
  BitVec p1;
  p1.append_u64(5, 4);
  p1.append_u64(6, 8);
  p1.append_u64(0xBEEF, 16);
  ParseResult r1 = run_spec(spec, p1);
  EXPECT_EQ(r1.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r1.dict.at(spec.field_index("options")).size(), 0);
  // ihl = 7: 16 bits of options.
  BitVec p2;
  p2.append_u64(7, 4);
  p2.append_u64(6, 8);
  p2.append_u64(0xAAAA, 16);
  p2.append_u64(0xBEEF, 16);
  ParseResult r2 = run_spec(spec, p2);
  EXPECT_EQ(r2.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r2.dict.at(spec.field_index("options")).size(), 16);
}

TEST(Suite, Me3IsMassivelyRedundant) {
  ParserSpec spec = suite::me3_redundant_entries();
  SpecAnalysis a = analyze(spec);
  EXPECT_GE(a.redundant_rules.size(), 9u);
}

TEST(Suite, DashChainIsLongAndNarrow) {
  ParserSpec spec = suite::dash_v2();
  EXPECT_GE(spec.states.size(), 9u);
  for (const auto& st : spec.states) EXPECT_LE(st.key_width(), 1);
}

TEST(Subsets, PopulationValidatesAndIsSwitchScale) {
  ParserSpec pop = suite::subsets::switch_p4_style();
  EXPECT_TRUE(validate(pop).ok());
  EXPECT_GE(pop.states.size(), 12u);
  EXPECT_TRUE(analyze(pop).has_loop);  // the MPLS sub-loop
}

TEST(Subsets, RandomSubsetsAreValidAndConnected) {
  ParserSpec pop = suite::subsets::switch_p4_style();
  Rng rng(42);
  for (int i = 0; i < 30; ++i) {
    int k = rng.range(2, 9);
    ParserSpec sub = suite::subsets::random_subset(pop, rng, k);
    ASSERT_TRUE(validate(sub).ok()) << to_string(sub);
    EXPECT_LE(sub.states.size(), static_cast<std::size_t>(k));
    SpecAnalysis a = analyze(sub);
    for (bool reachable : a.state_reachable) EXPECT_TRUE(reachable);
  }
}

TEST(Subsets, SubsetBehaviorMatchesPopulationUntilExit) {
  // On packets whose population parse never leaves the chosen subset, the
  // subset parser and the population parser agree exactly.
  ParserSpec pop = suite::subsets::switch_p4_style();
  Rng rng(7);
  ParserSpec sub = suite::subsets::random_subset(pop, rng, 9);
  Rng srng(13);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    BitVec input = generate_path_input(sub, srng, 10, 80);
    ParseResult s = run_spec(sub, input, 10);
    if (s.outcome != ParseOutcome::Accepted) continue;
    ++checked;
    // Every field the subset parsed must carry the same value in the
    // population parse (the population may parse further).
    ParseResult p = run_spec(pop, input, 12);
    for (const auto& [f, v] : s.dict) {
      if (!p.dict.count(f)) continue;  // population diverged after exit
      EXPECT_EQ(p.dict.at(f), v) << "field " << pop.fields[static_cast<std::size_t>(f)].name;
    }
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace parserhawk
