// Opt7 determinism: `seed` + options fully determine the output program —
// the work-stealing portfolio must produce bit-identical TCAM rows and the
// same CompileStatus at every thread count, and every parallel result must
// still pass the differential tester against its reference semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "random_spec.h"
#include "sim/testgen.h"
#include "synth/compiler.h"

namespace parserhawk {
namespace {

using testing::random_spec;
using testing::RandomSpecOptions;

std::string describe_rows(const TcamProgram& p) {
  return to_string(p);
}

void expect_same_program(const TcamProgram& a, const TcamProgram& b, std::uint64_t seed,
                         int threads) {
  ASSERT_EQ(a.entries.size(), b.entries.size())
      << "seed " << seed << " threads " << threads << "\n1 thread:\n"
      << describe_rows(a) << "\n" << threads << " threads:\n" << describe_rows(b);
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    const TcamEntry& x = a.entries[i];
    const TcamEntry& y = b.entries[i];
    bool same_extracts = x.extracts.size() == y.extracts.size();
    for (std::size_t e = 0; same_extracts && e < x.extracts.size(); ++e)
      same_extracts = x.extracts[e].field == y.extracts[e].field;
    ASSERT_TRUE(x.table == y.table && x.state == y.state && x.entry == y.entry &&
                x.value == y.value && x.mask == y.mask && x.next_table == y.next_table &&
                x.next_state == y.next_state && same_extracts)
        << "row " << i << " differs for seed " << seed << " at " << threads << " threads\n"
        << "1 thread:\n" << describe_rows(a) << "\n" << threads << " threads:\n"
        << describe_rows(b);
  }
  EXPECT_EQ(a.layouts.size(), b.layouts.size()) << "seed " << seed;
  EXPECT_EQ(a.start_state, b.start_state) << "seed " << seed;
  EXPECT_EQ(a.max_iterations, b.max_iterations) << "seed " << seed;
}

void check_seed(std::uint64_t seed, const RandomSpecOptions& spec_opts, const HwProfile& hw) {
  Rng rng(seed);
  ParserSpec spec = random_spec(rng, spec_opts);

  SynthOptions opts;
  opts.seed = seed;
  CompileResult reference_run = compile(spec, hw, opts);

  for (int threads : {2, 8}) {
    SynthOptions popts = opts;
    popts.num_threads = threads;
    CompileResult r = compile(spec, hw, popts);
    ASSERT_EQ(to_string(reference_run.status), to_string(r.status))
        << "seed " << seed << " diverges at " << threads << " threads: "
        << reference_run.reason << " vs " << r.reason << "\n" << to_string(spec);
    if (!r.ok()) continue;
    expect_same_program(reference_run.program, r.program, seed, threads);

    // Correctness is not traded for speed: the parallel result still
    // agrees with the reference semantics on sampled inputs.
    DiffTestOptions dt;
    dt.samples = 120;
    dt.seed = seed * 13 + 7;
    dt.max_iterations = r.program.max_iterations;
    auto mismatch = differential_test(r.reference, r.program, dt);
    ASSERT_FALSE(mismatch.has_value())
        << "parallel (" << threads << " threads) result mis-parses seed " << seed << " on "
        << mismatch->input.to_string() << "\n" << to_string(spec);
  }
}

class ParallelDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminism, IdenticalProgramsAcrossThreadCountsOnTofino) {
  check_seed(static_cast<std::uint64_t>(GetParam()), RandomSpecOptions{}, tofino());
}

TEST_P(ParallelDeterminism, IdenticalProgramsAcrossThreadCountsOnIpu) {
  check_seed(static_cast<std::uint64_t>(GetParam()) + 500, RandomSpecOptions{}, ipu());
}

// ~20 random specs per target (the ISSUE's floor), small enough to keep the
// suite fast: each seed compiles 3x per target.
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Range(1, 21));

TEST(ParallelDeterminismLoops, LoopySpecsRaceLoopAwareVsUnrolledDeterministically) {
  // Loopy specs on a loop-capable target exercise the whole-program
  // loop-aware vs unrolled Opt7 race; the loop-aware variant must win
  // deterministically whenever it succeeds.
  // Three seeds keep this under a minute: each loopy compile runs the
  // whole pipeline twice (loop-aware + unrolled) at three thread counts.
  for (int seed = 300; seed < 303; ++seed) {
    RandomSpecOptions o;
    o.allow_loops = true;
    check_seed(static_cast<std::uint64_t>(seed), o, tofino());
  }
}

TEST(ParallelDeterminismWide, KeySplitRaceIsDeterministic) {
  // A 48-bit transition key forces the key-split shape family (multiple
  // split orders x aux counts) — the densest Opt7 race in the compiler.
  SpecBuilder b("wide");
  b.field("k", 48).field("body", 8);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when_exact(0xABCD12345678ull, "more")
      .when_exact(0x1111EEEE2222ull, "more")
      .when_exact(0x00FF00FF00FFull, "accept")
      .otherwise("reject");
  b.state("more").extract("body").otherwise("accept");
  ParserSpec spec = b.build().value();

  SynthOptions opts;
  CompileResult base = compile(spec, tofino(), opts);
  ASSERT_TRUE(base.ok()) << base.reason;
  for (int threads : {2, 8}) {
    SynthOptions popts = opts;
    popts.num_threads = threads;
    CompileResult r = compile(spec, tofino(), popts);
    ASSERT_TRUE(r.ok()) << r.reason;
    expect_same_program(base.program, r.program, 0, threads);
  }
}

}  // namespace
}  // namespace parserhawk
