// Coverage-guided differential fuzzing over the example specs: every
// transition rule of every examples/specs/*.hawk program must fire at
// least once under the generated corpus — an uncovered rule means the
// differential test proves nothing about it. The corpus starts from the
// deterministic difftest corpus and is then grown mutation-by-mutation,
// keeping an input only when it raises rule coverage (the CoverageMap as
// a fitness signal).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lang/lang.h"
#include "sim/batch.h"
#include "sim/testgen.h"
#include "support/rng.h"
#include "synth/compiler.h"

namespace parserhawk {
namespace {

std::vector<std::filesystem::path> example_specs() {
  std::vector<std::filesystem::path> out;
  for (const auto& entry : std::filesystem::directory_iterator(PH_EXAMPLES_DIR))
    if (entry.path().extension() == ".hawk") out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  return out;
}

ParserSpec load_spec(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto spec = lang::parse_source(buf.str());
  EXPECT_TRUE(spec.ok()) << path << ": " << (spec.ok() ? "" : spec.error().to_string());
  return *spec;
}

/// One mutation: bit flips, truncation, extension, or a fresh path input.
BitVec mutate(const ParserSpec& spec, const BitVec& parent, Rng& rng) {
  switch (rng.below(4)) {
    case 0: {  // flip a few bits
      BitVec child = parent;
      if (child.size() == 0) return generate_path_input(spec, rng);
      for (int f = rng.range(1, 4); f > 0; --f) {
        int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(child.size())));
        child.set(i, !child.get(i));
      }
      return child;
    }
    case 1:  // truncate
      return parent.size() > 0 ? parent.slice(0, rng.range(0, parent.size())) : parent;
    case 2: {  // extend with random bits
      BitVec child = parent;
      for (int n = rng.range(1, 64); n > 0; --n) child.push_back(rng.chance(0.5));
      return child;
    }
    default:  // fresh path-directed input
      return generate_path_input(spec, rng);
  }
}

TEST(DifftestCoverage, EveryExampleSpecRuleIsCovered) {
  auto files = example_specs();
  ASSERT_FALSE(files.empty()) << "no .hawk specs under " << PH_EXAMPLES_DIR;
  for (const auto& file : files) {
    ParserSpec spec = load_spec(file);
    SynthOptions opts;
    opts.timeout_sec = 120;
    CompileResult cr = compile(spec, tofino(), opts);
    ASSERT_TRUE(cr.ok()) << file << ": " << cr.reason;
    const TcamProgram& prog = cr.program;

    // Seed corpus: the deterministic differential-test inputs, batched.
    DiffTestOptions dt;
    dt.samples = 96;
    dt.seed = 0xc0ffee;
    dt.max_iterations = prog.max_iterations;
    dt.threads = 2;
    BatchOptions bo;
    bo.threads = 2;
    bo.chunk = 16;
    bo.max_iterations = prog.max_iterations;
    BatchRunner runner(spec, prog, bo);
    std::vector<BitVec> corpus = difftest_corpus(spec, dt);
    BatchResult seed = runner.run(corpus);
    ASSERT_FALSE(seed.mismatch.has_value())
        << file << ": differential mismatch on " << seed.mismatch->input.to_string();
    CoverageMap total = seed.coverage;

    // Coverage-guided growth: mutate members of the interesting pool and
    // keep children that light up a new rule.
    Rng rng(0xf00d);
    std::vector<BitVec> pool(corpus.begin(),
                             corpus.begin() + std::min<std::size_t>(corpus.size(), 32));
    for (int round = 0; round < 600 && !total.all_rules_covered(); ++round) {
      const BitVec& parent = pool[rng.below(pool.size())];
      BitVec child = mutate(spec, parent, rng);
      CoverageMap cov = CoverageMap::for_pair(spec, prog);
      ParseResult s = run_spec(spec, child, prog.max_iterations, &cov);
      ParseResult m = run_impl(runner.matcher(), child, &cov);
      EXPECT_TRUE(equivalent(s, m)) << file << ": fuzz mismatch on " << child.to_string();
      int before = total.rules_hit();
      total.merge(cov);
      if (total.rules_hit() > before) pool.push_back(std::move(child));
    }

    EXPECT_TRUE(total.all_rules_covered())
        << file << ": uncovered rules: " << total.uncovered_rules(spec);
    EXPECT_EQ(total.states_hit(), total.states_total()) << file;
  }
}

}  // namespace
}  // namespace parserhawk
