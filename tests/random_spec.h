// Random parser-spec generator for end-to-end property tests: small but
// structurally diverse parse graphs (branching, wildcard entries, shared
// tails, optional self loops, multi-extract states).
#pragma once

#include <string>
#include <vector>

#include "ir/builder.h"
#include "ir/ir.h"
#include "support/rng.h"

namespace parserhawk::testing {

struct RandomSpecOptions {
  int max_states = 4;
  int max_fields = 4;
  int max_field_width = 8;
  bool allow_loops = false;
};

inline ParserSpec random_spec(Rng& rng, const RandomSpecOptions& options = {}) {
  int num_fields = rng.range(2, options.max_fields);
  int num_states = rng.range(2, options.max_states);

  SpecBuilder b("random");
  std::vector<int> width(static_cast<std::size_t>(num_fields));
  for (int f = 0; f < num_fields; ++f) {
    width[static_cast<std::size_t>(f)] = rng.range(2, options.max_field_width);
    b.field("f" + std::to_string(f), width[static_cast<std::size_t>(f)]);
  }

  // Each state extracts a dedicated field (so every path extracts fields at
  // most once) plus sometimes a shared extra one.
  for (int s = 0; s < num_states; ++s) {
    auto st = b.state("s" + std::to_string(s));
    int own = s % num_fields;
    st.extract("f" + std::to_string(own));

    auto target = [&]() -> std::string {
      // Forward targets only (unless loops allowed): later state, accept or
      // reject.
      int kind = rng.range(0, 5);
      if (options.allow_loops && kind == 0) return "s" + std::to_string(s);
      if (kind <= 2 && s + 1 < num_states)
        return "s" + std::to_string(rng.range(s + 1, num_states - 1));
      return kind == 3 ? "reject" : "accept";
    };

    if (rng.chance(0.85)) {
      int kw = std::min(width[static_cast<std::size_t>(own)], 6);
      int lo = rng.range(0, width[static_cast<std::size_t>(own)] - kw);
      st.select({b.slice("f" + std::to_string(own), lo, kw)});
      std::uint64_t full = (std::uint64_t{1} << kw) - 1;
      int rules = rng.range(1, 3);
      for (int r = 0; r < rules; ++r) {
        std::uint64_t value = rng() & full;
        if (rng.chance(0.3)) {
          std::uint64_t mask = rng() & full;
          st.when(value & mask, mask, target());
        } else {
          st.when_exact(value, target());
        }
      }
      st.otherwise(target());
    } else {
      st.otherwise(target());
    }
  }
  auto spec = b.build();
  return spec.value();  // generator invariants keep this valid
}

}  // namespace parserhawk::testing
