#include "backend/backend.h"

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "suite/suite.h"

namespace parserhawk {
namespace {

TcamProgram sample_program() {
  // Compile with the deterministic baseline to avoid Z3 variance in pure
  // formatting tests.
  return baseline::compile_tofino_proxy(suite::parse_icmp(), tofino()).program;
}

TEST(Backend, TofinoFormatHasHeaderAndRows) {
  std::string text = backend::emit_tofino(sample_program());
  EXPECT_NE(text.find("# tofino parser TCAM configuration"), std::string::npos);
  EXPECT_NE(text.find("table parser_tcam"), std::string::npos);
  EXPECT_NE(text.find("entry 0 match"), std::string::npos);
  EXPECT_NE(text.find("goto accept"), std::string::npos);
}

TEST(Backend, TofinoFormatNamesExtractedFields) {
  std::string text = backend::emit_tofino(sample_program());
  EXPECT_NE(text.find("icmp_type"), std::string::npos);
  EXPECT_NE(text.find("tcp_ports"), std::string::npos);
}

TEST(Backend, IpuFormatHasStageBlocks) {
  CompileResult r = baseline::compile_ipu_proxy(suite::parse_icmp(), ipu());
  ASSERT_TRUE(r.ok());
  std::string text = backend::emit_ipu(r.program);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  EXPECT_NE(text.find("stage 1"), std::string::npos);
  EXPECT_NE(text.find("# ipu pipelined parser configuration"), std::string::npos);
}

TEST(Backend, EmitDispatchesOnArch) {
  TcamProgram p = sample_program();
  EXPECT_EQ(backend::emit(p, tofino()), backend::emit_tofino(p));
  CompileResult r = baseline::compile_ipu_proxy(suite::parse_icmp(), ipu());
  EXPECT_EQ(backend::emit(r.program, ipu()), backend::emit_ipu(r.program));
}

TEST(Backend, HexWidthsFollowKeyWidth) {
  // 16-bit keys render as 4 hex digits.
  std::string text = backend::emit_tofino(sample_program());
  EXPECT_NE(text.find("0x0800/0xffff"), std::string::npos);
}

TEST(Backend, VarbitExtractAnnotated) {
  CompileResult r = baseline::compile_tofino_proxy(suite::ipv4_options(), tofino());
  ASSERT_TRUE(r.ok());
  std::string text = backend::emit_tofino(r.program);
  EXPECT_NE(text.find("options(var:ihl)"), std::string::npos);
}

TEST(Backend, OneLinePerEntry) {
  TcamProgram p = sample_program();
  std::string text = backend::emit_tofino(p);
  std::size_t lines = 0;
  for (std::size_t pos = text.find("entry "); pos != std::string::npos;
       pos = text.find("entry ", pos + 1))
    ++lines;
  EXPECT_EQ(lines, p.entries.size());
}

}  // namespace
}  // namespace parserhawk
