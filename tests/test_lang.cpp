#include "lang/lang.h"

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

using lang::emit_source;
using lang::parse_source;
using lang::TokKind;
using lang::tokenize;

// ---- Lexer ----

TEST(Lexer, BasicTokens) {
  auto toks = tokenize("parser p { field f : 16; }");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 10u);  // incl. End
  EXPECT_EQ((*toks)[0].kind, TokKind::Identifier);
  EXPECT_EQ((*toks)[0].text, "parser");
  EXPECT_EQ((*toks)[6].kind, TokKind::Number);
  EXPECT_EQ((*toks)[6].value, 16u);
  EXPECT_EQ(toks->back().kind, TokKind::End);
}

TEST(Lexer, NumberBases) {
  auto toks = tokenize("255 0xff 0b11111111 0xAb_Cd");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].value, 255u);
  EXPECT_EQ((*toks)[1].value, 255u);
  EXPECT_EQ((*toks)[2].value, 255u);
  EXPECT_EQ((*toks)[3].value, 0xABCDu);
}

TEST(Lexer, MaskOperator) {
  auto toks = tokenize("0x0800 &&& 0xff00");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].kind, TokKind::MaskOp);
}

TEST(Lexer, StrayAmpersandFails) {
  EXPECT_FALSE(tokenize("a & b").ok());
  EXPECT_FALSE(tokenize("a && b").ok());
}

TEST(Lexer, Comments) {
  auto toks = tokenize("a // line comment\n/* block\ncomment */ b");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_EQ((*toks)[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentFails) {
  auto r = tokenize("a /* never closed");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unterminated"), std::string::npos);
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = tokenize("a\nb\n  c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[2].line, 3);
  EXPECT_EQ((*toks)[2].column, 3);
}

TEST(Lexer, BadLiteralPrefixFails) { EXPECT_FALSE(tokenize("0x").ok()); }

// ---- Parser ----

constexpr const char* kEthernet = R"(
parser ethernet {
  field etherType : 16;
  field ipv4 : 32;
  state start {
    extract(etherType);
    transition select(etherType) {
      0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    extract(ipv4);
    transition accept;
  }
}
)";

TEST(LangParser, ParsesEthernet) {
  auto spec = parse_source(kEthernet);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->name, "ethernet");
  EXPECT_EQ(spec->fields.size(), 2u);
  EXPECT_EQ(spec->states.size(), 2u);
  EXPECT_EQ(spec->states[0].rules.size(), 2u);
  EXPECT_EQ(spec->states[0].rules[0].value, 0x0800u);
  EXPECT_EQ(spec->states[0].rules[0].mask, 0xFFFFu);  // exact entry
  EXPECT_EQ(spec->states[0].rules[1].mask, 0u);       // default
}

TEST(LangParser, TernaryEntries) {
  auto spec = parse_source(R"(
parser p {
  field k : 8;
  state start {
    extract(k);
    transition select(k) { 0x80 &&& 0xC0 : t; default : accept; }
  }
  state t { transition accept; }
})");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_EQ(spec->states[0].rules[0].mask, 0xC0u);
}

TEST(LangParser, SlicesAndLookahead) {
  auto spec = parse_source(R"(
parser p {
  field k : 16;
  state start {
    extract(k);
    transition select(k[4:12], lookahead<8, 4>) { default : accept; }
  }
})");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  const auto& key = spec->states[0].key;
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].kind, KeyPart::Kind::FieldSlice);
  EXPECT_EQ(key[0].lo, 4);
  EXPECT_EQ(key[0].len, 8);
  EXPECT_EQ(key[1].kind, KeyPart::Kind::Lookahead);
  EXPECT_EQ(key[1].lo, 8);
  EXPECT_EQ(key[1].len, 4);
}

TEST(LangParser, VarbitWithLengthExpression) {
  auto spec = parse_source(R"(
parser p {
  field ihl : 4;
  field options : varbit<320>;
  state start {
    extract(ihl);
    extract(options, len = 32 * ihl - 160);
    transition accept;
  }
})");
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  EXPECT_TRUE(spec->fields[1].varbit);
  const auto& ex = spec->states[0].extracts[1];
  EXPECT_EQ(ex.len_scale, 32);
  EXPECT_EQ(ex.len_base, -160);
}

TEST(LangParser, StartStateByName) {
  auto spec = parse_source(R"(
parser p {
  field k : 4;
  state other { extract(k); transition accept; }
  state start { transition other; }
})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->start, spec->state_index("start"));
}

TEST(LangParser, FirstStateIsStartOtherwise) {
  auto spec = parse_source(R"(
parser p {
  field k : 4;
  state first { extract(k); transition accept; }
})");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->start, 0);
}

TEST(LangParser, StateWithoutTransitionRejects) {
  auto spec = parse_source(R"(
parser p {
  field k : 4;
  state start { extract(k); }
})");
  ASSERT_TRUE(spec.ok());
  BitVec in = BitVec::from_u64(5, 4);
  EXPECT_EQ(run_spec(*spec, in).outcome, ParseOutcome::Rejected);
}

TEST(LangParser, ErrorsCarryLocation) {
  auto spec = parse_source("parser p {\n  field k 16;\n}");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().message.find("line 2"), std::string::npos);
}

TEST(LangParser, UnknownFieldInExtract) {
  auto spec = parse_source("parser p { state start { extract(ghost); transition accept; } }");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().message.find("ghost"), std::string::npos);
}

TEST(LangParser, UnknownTransitionTarget) {
  auto spec = parse_source(R"(
parser p { field k : 4; state start { extract(k); transition nowhere; } })");
  EXPECT_FALSE(spec.ok());
}

TEST(LangParser, ReservedStateNamesRejected) {
  EXPECT_FALSE(parse_source("parser p { state accept { transition reject; } }").ok());
  EXPECT_FALSE(parse_source("parser p { state reject { transition accept; } }").ok());
}

TEST(LangParser, ExtractAfterTransitionFails) {
  auto spec = parse_source(R"(
parser p { field k : 4; state start { transition accept; extract(k); } })");
  EXPECT_FALSE(spec.ok());
}

TEST(LangParser, MultipleTransitionsFail) {
  auto spec = parse_source(R"(
parser p { state start { transition accept; transition reject; } })");
  EXPECT_FALSE(spec.ok());
}

TEST(LangParser, BackwardSliceFails) {
  auto spec = parse_source(R"(
parser p { field k : 8; state start { extract(k);
  transition select(k[4:2]) { default : accept; } } })");
  EXPECT_FALSE(spec.ok());
}

// ---- Emitter round trips ----

void expect_round_trip(const ParserSpec& spec) {
  auto reparsed = parse_source(emit_source(spec));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n" << emit_source(spec);
  // Structural equivalence via differential sampling.
  Rng rng(99);
  for (int i = 0; i < 150; ++i) {
    BitVec input = generate_path_input(spec, rng, 12, 64);
    ASSERT_TRUE(equivalent(run_spec(spec, input, 12), run_spec(*reparsed, input, 12)))
        << emit_source(spec);
  }
}

TEST(LangEmit, RoundTripsSuitePrograms) {
  expect_round_trip(suite::parse_ethernet());
  expect_round_trip(suite::parse_icmp());
  expect_round_trip(suite::parse_mpls());
  expect_round_trip(suite::finance_origin());
  expect_round_trip(suite::ipv4_options());
  expect_round_trip(suite::large_tran_key());
  expect_round_trip(suite::multi_key_same_field());
}

TEST(LangEmit, StartStateFirstWhenNotNamedStart) {
  ParserSpec spec = suite::parse_ethernet();
  spec.states[0].name = "entry";  // no state named "start" anymore
  expect_round_trip(spec);
}

}  // namespace
}  // namespace parserhawk
