// The pcap reader's robustness contract: well-formed captures round-trip
// through write()/parse() in either byte order, and malformed input — bad
// magic, truncated headers, records lying about their length, arbitrary
// byte soup — is rejected with an error code or parsed into views that
// stay inside the buffer. Never a crash, never an over-read.
// The zero-copy sections (DESIGN.md §12) pin the PacketRef lifetime
// contract: refs alias the capture's own buffer through run_batch, views
// observe later buffer mutations, and moving the PcapFile keeps them valid.
#include "sim/pcap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "helpers.h"
#include "sim/batch.h"
#include "support/bitvec.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

std::vector<BitVec> sample_packets() {
  std::vector<BitVec> packets;
  packets.push_back(BitVec::from_u64(0x0800, 16));
  BitVec long_packet;
  for (int i = 0; i < 64; ++i) long_packet.append_u64(static_cast<std::uint64_t>(i), 8);
  packets.push_back(long_packet);
  packets.push_back(BitVec());                  // empty packet
  packets.push_back(BitVec::from_u64(0x5, 3));  // sub-byte: padded on write
  return packets;
}

/// Byte-swap every multi-byte header field of a write()-produced capture,
/// yielding the same logical file in the opposite byte order.
std::vector<std::uint8_t> swap_headers(std::vector<std::uint8_t> bytes) {
  auto swap32 = [&](std::size_t at) { std::swap(bytes[at], bytes[at + 3]); std::swap(bytes[at + 1], bytes[at + 2]); };
  auto swap16 = [&](std::size_t at) { std::swap(bytes[at], bytes[at + 1]); };
  std::uint32_t caplen;
  swap32(0);             // magic
  swap16(4);             // version major
  swap16(6);             // version minor
  swap32(8);             // thiszone
  swap32(12);            // sigfigs
  swap32(16);            // snaplen
  swap32(20);            // link type
  std::size_t at = 24;
  while (at + 16 <= bytes.size()) {
    std::memcpy(&caplen, bytes.data() + at + 8, 4);  // still native order here
    swap32(at);          // ts_sec
    swap32(at + 4);      // ts_frac
    swap32(at + 8);      // caplen
    swap32(at + 12);     // orig_len
    at += 16 + caplen;   // packet bytes are payload: not swapped
  }
  return bytes;
}

TEST(Pcap, RoundTripsThroughWriteAndParse) {
  std::vector<BitVec> packets = sample_packets();
  auto parsed = pcap::parse(pcap::write(packets, /*link_type=*/1));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_FALSE(parsed->swapped);
  EXPECT_FALSE(parsed->nanosecond);
  EXPECT_FALSE(parsed->truncated_tail);
  EXPECT_EQ(parsed->link_type, 1u);
  ASSERT_EQ(parsed->packets.size(), packets.size());
  std::vector<BitVec> bits = parsed->to_bitvecs();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Writing pads to a whole byte; the prefix must be the original.
    ASSERT_GE(bits[i].size(), packets[i].size()) << i;
    EXPECT_EQ(bits[i].slice(0, packets[i].size()), packets[i]) << i;
    for (int b = packets[i].size(); b < bits[i].size(); ++b)
      EXPECT_FALSE(bits[i].get(b)) << "pad bit " << b << " of packet " << i;
  }
  // Synthetic timestamps are deterministic: index microseconds.
  EXPECT_EQ(parsed->packets[1].ts_frac, 1u);
  EXPECT_EQ(parsed->packets[1].orig_len, parsed->packets[1].caplen);
}

TEST(Pcap, EmptyCaptureParses) {
  auto parsed = pcap::parse(pcap::write({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->packets.empty());
}

TEST(Pcap, SwappedEndiannessParsesIdentically) {
  std::vector<BitVec> packets = sample_packets();
  auto native = pcap::parse(pcap::write(packets));
  auto swapped = pcap::parse(swap_headers(pcap::write(packets)));
  ASSERT_TRUE(native.ok());
  ASSERT_TRUE(swapped.ok()) << swapped.error().to_string();
  EXPECT_TRUE(swapped->swapped);
  EXPECT_EQ(swapped->snaplen, native->snaplen);
  EXPECT_EQ(swapped->link_type, native->link_type);
  ASSERT_EQ(swapped->packets.size(), native->packets.size());
  for (std::size_t i = 0; i < native->packets.size(); ++i) {
    EXPECT_EQ(swapped->packets[i].to_bits(), native->packets[i].to_bits()) << i;
    EXPECT_EQ(swapped->packets[i].ts_sec, native->packets[i].ts_sec) << i;
    EXPECT_EQ(swapped->packets[i].ts_frac, native->packets[i].ts_frac) << i;
  }
}

TEST(Pcap, NanosecondMagicSetsFlag) {
  std::vector<std::uint8_t> bytes = pcap::write(sample_packets());
  const std::uint32_t nsec_magic = 0xa1b23c4d;
  std::memcpy(bytes.data(), &nsec_magic, 4);
  auto parsed = pcap::parse(std::move(bytes));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->nanosecond);
  EXPECT_FALSE(parsed->swapped);
}

TEST(Pcap, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = pcap::write(sample_packets());
  bytes[0] ^= 0xff;
  auto parsed = pcap::parse(std::move(bytes));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "pcap-bad-magic");
}

TEST(Pcap, TruncatedGlobalHeaderRejected) {
  std::vector<std::uint8_t> whole = pcap::write({});
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{23}}) {
    auto parsed =
        pcap::parse(std::vector<std::uint8_t>(whole.begin(), whole.begin() + static_cast<long>(len)));
    ASSERT_FALSE(parsed.ok()) << len;
    EXPECT_EQ(parsed.error().code, "pcap-truncated-header") << len;
  }
}

TEST(Pcap, TruncatedRecordToleratedByDefault) {
  std::vector<BitVec> packets = sample_packets();
  std::vector<std::uint8_t> whole = pcap::write(packets);
  // Chop into the last record's body: every complete packet survives.
  std::vector<std::uint8_t> chopped(whole.begin(), whole.end() - 1);
  auto parsed = pcap::parse(chopped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->truncated_tail);
  EXPECT_EQ(parsed->packets.size(), packets.size() - 1);
  // Chop into a record *header* (the empty packet's record is 16 bytes).
  std::vector<std::uint8_t> header_cut(whole.begin(), whole.begin() + 24 + 8);
  auto parsed2 = pcap::parse(header_cut);
  ASSERT_TRUE(parsed2.ok());
  EXPECT_TRUE(parsed2->truncated_tail);
  EXPECT_TRUE(parsed2->packets.empty());
}

TEST(Pcap, TruncatedRecordRejectedWhenStrict) {
  std::vector<std::uint8_t> whole = pcap::write(sample_packets());
  std::vector<std::uint8_t> chopped(whole.begin(), whole.end() - 1);
  pcap::ParseOptions strict;
  strict.strict = true;
  auto parsed = pcap::parse(std::move(chopped), strict);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "pcap-truncated-record");
}

TEST(Pcap, CaplenOverSnaplenRejected) {
  std::vector<std::uint8_t> bytes = pcap::write(sample_packets());
  const std::uint32_t tiny = 1;
  std::memcpy(bytes.data() + 16, &tiny, 4);  // snaplen := 1 < every caplen... except
  auto parsed = pcap::parse(std::move(bytes));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "pcap-bad-record");
}

/// Fuzz the robustness contract (same mutation loop as test_fuzz_lang):
/// random byte-level corruption of a valid capture must either parse into
/// in-bounds views or fail with a structured error.
TEST(Pcap, FuzzedBytesNeverEscapeTheBuffer) {
  std::vector<std::uint8_t> seed = pcap::write(sample_packets());
  Rng rng(0x9ca9);
  for (int round = 0; round < 1000; ++round) {
    std::vector<std::uint8_t> bytes = seed;
    switch (rng.below(4)) {
      case 0:  // flip random bytes
        for (int f = rng.range(1, 8); f > 0; --f)
          bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(rng());
        break;
      case 1:  // truncate
        bytes.resize(rng.below(bytes.size() + 1));
        break;
      case 2:  // extend with garbage
        for (int n = rng.range(1, 64); n > 0; --n)
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        break;
      default:  // splice: overwrite a window with garbage
        for (std::size_t i = rng.below(bytes.size()), n = rng.below(32);
             n > 0 && i < bytes.size(); ++i, --n)
          bytes[i] = static_cast<std::uint8_t>(rng());
        break;
    }
    pcap::ParseOptions po;
    po.strict = rng.chance(0.5);
    auto parsed = pcap::parse(bytes, po);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().code.empty());
      continue;
    }
    const std::uint8_t* lo = parsed->bytes.data();
    const std::uint8_t* hi = lo + parsed->bytes.size();
    for (const pcap::PacketView& p : parsed->packets) {
      ASSERT_GE(p.data, lo);
      ASSERT_LE(p.data + p.caplen, hi);
      p.to_bits();  // touch every captured byte under ASan
    }
  }
}

// ---- Zero-copy lifetime contract --------------------------------------

/// The hand-built correct implementation of testing::spec2 (Table 1),
/// shared with tests/test_batch.cpp.
TcamProgram spec2_impl() {
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

/// spec2-shaped packets of assorted depths, plus junk-length strays.
std::vector<BitVec> spec2_packets() {
  std::vector<BitVec> packets;
  Rng rng(0x2ca9);
  for (int i = 0; i < 24; ++i) {
    int bytes = static_cast<int>(rng.below(4));  // 0..3 bytes
    BitVec p;
    for (int b = 0; b < bytes * 8; ++b) p.push_back(rng.chance(0.5));
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST(PcapZeroCopy, RefsAliasTheCaptureThroughRunBatch) {
  ParserSpec spec = testing::spec2();
  TcamProgram impl = spec2_impl();
  auto parsed = pcap::parse(pcap::write(spec2_packets()));
  ASSERT_TRUE(parsed.ok());
  const pcap::PcapFile& file = *parsed;

  // Every ref must point inside the file's own buffer — no copies.
  std::vector<PacketRef> refs = file.to_refs();
  ASSERT_EQ(refs.size(), file.packets.size());
  const std::uint8_t* lo = file.bytes.data();
  const std::uint8_t* hi = lo + file.bytes.size();
  for (const PacketRef& r : refs) {
    if (r.nbits == 0) continue;
    ASSERT_GE(r.bytes, lo);
    ASSERT_LE(r.bytes + (r.nbits + 7) / 8, hi);
  }

  // Zero-copy replay and the materialized copy must be indistinguishable.
  BatchResult via_refs = run_batch(spec, impl, refs, {});
  BatchResult via_copies = run_batch(spec, impl, file.to_bitvecs(), {});
  EXPECT_EQ(via_refs.submitted, via_copies.submitted);
  EXPECT_EQ(via_refs.evaluated, via_copies.evaluated);
  EXPECT_EQ(via_refs.agree, via_copies.agree);
  EXPECT_EQ(via_refs.first_mismatch, via_copies.first_mismatch);
  for (int o = 0; o < 3; ++o) {
    EXPECT_EQ(via_refs.spec_outcomes[o], via_copies.spec_outcomes[o]) << o;
    EXPECT_EQ(via_refs.impl_outcomes[o], via_copies.impl_outcomes[o]) << o;
  }
  EXPECT_EQ(via_refs.coverage.state_hits, via_copies.coverage.state_hits);
  EXPECT_EQ(via_refs.coverage.rule_hits, via_copies.coverage.rule_hits);
  EXPECT_EQ(via_refs.coverage.row_hits, via_copies.coverage.row_hits);
}

TEST(PcapZeroCopy, TruncatedTailCaptureReplaysItsCompletePackets) {
  ParserSpec spec = testing::spec2();
  TcamProgram impl = spec2_impl();
  std::vector<std::uint8_t> whole = pcap::write(spec2_packets());
  std::vector<std::uint8_t> chopped(whole.begin(), whole.end() - 3);
  auto parsed = pcap::parse(std::move(chopped));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->truncated_tail);
  ASSERT_FALSE(parsed->packets.empty());
  // The surviving (complete) packets flow through the wide kernel exactly
  // like their materialized twins.
  BatchResult via_refs = run_batch(spec, impl, parsed->to_refs(), {});
  BatchResult via_copies = run_batch(spec, impl, parsed->to_bitvecs(), {});
  EXPECT_EQ(via_refs.submitted, static_cast<std::int64_t>(parsed->packets.size()));
  EXPECT_EQ(via_refs.evaluated, via_copies.evaluated);
  EXPECT_EQ(via_refs.agree, via_copies.agree);
  EXPECT_EQ(via_refs.coverage.row_hits, via_copies.coverage.row_hits);
}

TEST(PcapZeroCopy, ViewsObserveBufferMutation) {
  // A ref is a window, not a snapshot: mutating the capture buffer after
  // taking views changes what they read. This is the documented aliasing
  // hazard — pinned here so a future "fix" that silently copies (or a
  // caller assuming snapshot semantics) trips a test.
  auto parsed = pcap::parse(pcap::write({BitVec::from_u64(0xAB, 8)}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->packets.size(), 1u);
  PacketRef ref = parsed->packets[0].ref();
  EXPECT_EQ(ref.materialize().to_u64(), 0xABu);
  // Flip the packet's payload byte in place (the view points at it).
  std::size_t at = static_cast<std::size_t>(parsed->packets[0].data - parsed->bytes.data());
  parsed->bytes[at] = 0xCD;
  EXPECT_EQ(ref.materialize().to_u64(), 0xCDu);
  EXPECT_EQ(parsed->packets[0].to_bits().to_u64(), 0xCDu);
}

TEST(PcapZeroCopy, MovedPcapFileKeepsViewsValid) {
  auto parsed = pcap::parse(pcap::write({BitVec::from_u64(0x5A, 8), BitVec::from_u64(0x3C, 8)}));
  ASSERT_TRUE(parsed.ok());
  std::vector<PacketRef> refs = parsed->to_refs();
  pcap::PcapFile moved = std::move(*parsed);  // heap buffer does not move
  EXPECT_EQ(refs[0].materialize().to_u64(), 0x5Au);
  EXPECT_EQ(refs[1].materialize().to_u64(), 0x3Cu);
  EXPECT_EQ(moved.packets[0].to_bits().to_u64(), 0x5Au);
}

}  // namespace
}  // namespace parserhawk
