// Minimal recursive-descent JSON validator (structure only, no value
// extraction), shared by the observability tests. The runtime renders JSON
// but never parses it; these tests are exactly where that asymmetry gets
// audited.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace parserhawk::testing {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }

  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    return expect('"');
  }

  bool number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* c = lit; *c; ++c, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) { return JsonValidator(text).valid(); }

}  // namespace parserhawk::testing
