#include "rewrite/rewrite.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "synth/normalize.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::spec1;

void expect_same_semantics(const ParserSpec& a, const ParserSpec& b) {
  Rng rng(31);
  for (int i = 0; i < 250; ++i) {
    BitVec input = generate_path_input(a, rng, 16, 64);
    ASSERT_TRUE(equivalent(run_spec(a, input, 16), run_spec(b, input, 16)))
        << "input " << input.to_string() << "\n"
        << to_string(a) << "\nvs\n"
        << to_string(b);
  }
  // Also sample paths of the rewritten program (it may have new branches).
  for (int i = 0; i < 250; ++i) {
    BitVec input = generate_path_input(b, rng, 16, 64);
    ASSERT_TRUE(equivalent(run_spec(a, input, 16), run_spec(b, input, 16)))
        << "input " << input.to_string();
  }
}

std::size_t total_rules(const ParserSpec& s) {
  std::size_t n = 0;
  for (const auto& st : s.states) n += st.rules.size();
  return n;
}

TEST(AddRedundantEntries, AddsWithoutChangingSemantics) {
  ParserSpec base = figure3();
  Rng rng(1);
  ParserSpec mutated = rewrite::add_redundant_entries(base, rng, 3);
  EXPECT_EQ(total_rules(mutated), total_rules(base) + 3);
  expect_same_semantics(base, mutated);
}

TEST(AddRedundantEntries, PruneRemovesThemAgain) {
  ParserSpec base = figure3();
  Rng rng(2);
  ParserSpec mutated = rewrite::add_redundant_entries(base, rng, 3);
  ParserSpec pruned = prune_dead_rules(mutated);
  EXPECT_EQ(total_rules(pruned), total_rules(prune_dead_rules(base)));
}

TEST(AddUnreachableEntries, NeverFire) {
  ParserSpec base = figure3();
  Rng rng(3);
  ParserSpec mutated = rewrite::add_unreachable_entries(base, rng, 3);
  EXPECT_EQ(total_rules(mutated), total_rules(base) + 3);
  expect_same_semantics(base, mutated);
}

TEST(SplitEntries, ExpandsMaskedRules) {
  SpecBuilder b("masked");
  b.field("k", 4).field("p", 4);
  b.state("s").extract("k").select({b.whole("k")}).when(0b1000, 0b1000, "t").otherwise("accept");
  b.state("t").extract("p").otherwise("accept");
  ParserSpec base = b.build().value();
  Rng rng(4);
  ParserSpec mutated = rewrite::split_entries(base, rng, 1);
  EXPECT_EQ(total_rules(mutated), total_rules(base) + 1);
  expect_same_semantics(base, mutated);
}

TEST(SplitEntries, NoopWhenAllExact) {
  // figure3's rules are exact over the whole key: nothing to split further
  // once every bit is cared... but the default still has free bits? The
  // default rule is excluded, so repeated splitting terminates.
  ParserSpec base = figure3();
  Rng rng(5);
  ParserSpec once = rewrite::split_entries(base, rng, 1);
  expect_same_semantics(base, once);
}

TEST(MergeEntries, InvertsSplit) {
  SpecBuilder b("masked");
  b.field("k", 4).field("p", 4);
  b.state("s").extract("k").select({b.whole("k")}).when(0b1000, 0b1000, "t").otherwise("accept");
  b.state("t").extract("p").otherwise("accept");
  ParserSpec base = b.build().value();
  Rng rng(6);
  ParserSpec split = rewrite::split_entries(base, rng, 2);
  ParserSpec merged = rewrite::merge_entries(split);
  EXPECT_LT(total_rules(merged), total_rules(split));
  expect_same_semantics(base, merged);
}

TEST(SplitTransitionKey, ProducesEquivalentTwoLevelDispatch) {
  ParserSpec base = figure3();
  auto split = rewrite::split_transition_key(base, 0, 2);
  ASSERT_TRUE(split.ok()) << split.error().to_string();
  EXPECT_GT(split->states.size(), base.states.size());
  for (const auto& st : split->states) EXPECT_LE(st.key_width(), 2);
  expect_same_semantics(base, *split);
}

TEST(SplitTransitionKey, RequiresExactRules) {
  SpecBuilder b("masked");
  b.field("k", 4).field("p", 4);
  b.state("s").extract("k").select({b.whole("k")}).when(0b1000, 0b1000, "t").otherwise("accept");
  b.state("t").extract("p").otherwise("accept");
  EXPECT_FALSE(rewrite::split_transition_key(b.build().value(), 0).ok());
}

TEST(SplitTransitionKey, RejectsNarrowKeys) {
  EXPECT_FALSE(rewrite::split_transition_key(spec1(), 0).ok());
}

TEST(MergeSplitKey, InvertsSplitTransitionKey) {
  ParserSpec base = figure3();
  auto split = rewrite::split_transition_key(base, 0, 2);
  ASSERT_TRUE(split.ok());
  ParserSpec merged = rewrite::merge_split_key(*split);
  EXPECT_EQ(merged.states.size(), base.states.size());
  EXPECT_EQ(merged.states[0].key_width(), 4);
  expect_same_semantics(base, merged);
}

TEST(MergeSplitKey, NoopOnUnsplitSpec) {
  ParserSpec base = figure3();
  ParserSpec merged = rewrite::merge_split_key(base);
  EXPECT_EQ(merged.states.size(), base.states.size());
}

TEST(SplitStates, ChainsExtraction) {
  ParserSpec base = spec1();
  Rng rng(7);
  // spec1's states each extract one field; merge first so there is a
  // 2-extract state to split.
  ParserSpec merged = merge_extract_chains(base);
  ASSERT_EQ(merged.states[0].extracts.size(), 2u);
  ParserSpec split = rewrite::split_states(merged, rng, 1);
  EXPECT_EQ(split.states.size(), merged.states.size() + 1);
  expect_same_semantics(merged, split);
}

TEST(SplitStates, RoundTripsThroughMergeExtractChains) {
  ParserSpec merged = merge_extract_chains(spec1());
  Rng rng(8);
  ParserSpec split = rewrite::split_states(merged, rng, 1);
  ParserSpec back = merge_extract_chains(split);
  EXPECT_EQ(back.states.size(), merged.states.size());
}

}  // namespace
}  // namespace parserhawk
