#include "baseline/baseline.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/testgen.h"
#include "suite/suite.h"

namespace parserhawk {
namespace {

using baseline::compile_dpparsergen;
using baseline::compile_ipu_proxy;
using baseline::compile_tofino_proxy;
using baseline::greedy_merge_rules;
using testing::figure3;
using testing::mpls_loop;

void expect_runs_correctly(const CompileResult& r, const ParserSpec& spec) {
  ASSERT_TRUE(r.ok()) << r.reason;
  DiffTestOptions dt;
  dt.samples = 200;
  dt.max_iterations = r.program.max_iterations;
  auto mismatch = differential_test(spec, r.program, dt);
  EXPECT_FALSE(mismatch.has_value())
      << "input " << mismatch->input.to_string() << "\n"
      << to_string(r.program);
}

TEST(GreedyMerge, MergesOneBitNeighbors) {
  std::vector<Rule> rules = {Rule{0b10, 0b11, 1}, Rule{0b11, 0b11, 1}, Rule{0, 0, kAccept}};
  auto merged = greedy_merge_rules(rules, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].mask, 0b10u);
  EXPECT_EQ(merged[0].value, 0b10u);
}

TEST(GreedyMerge, KeepsDifferentTargetsApart) {
  std::vector<Rule> rules = {Rule{0b10, 0b11, 1}, Rule{0b11, 0b11, 2}};
  EXPECT_EQ(greedy_merge_rules(rules, 2).size(), 2u);
}

TEST(GreedyMerge, MergesFigure3FamilyFully) {
  // {15,11,7,3} -> same target: pairwise one-bit merging collapses to one
  // rule with mask 0b0011.
  std::vector<Rule> rules = {Rule{15, 0xF, 1}, Rule{11, 0xF, 1}, Rule{7, 0xF, 1}, Rule{3, 0xF, 1}};
  auto merged = greedy_merge_rules(rules, 4);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].mask, 0b0011u);
}

TEST(GreedyMerge, OrderSensitivityLeavesResidue) {
  // A set where greedy pairing strands one rule: {0,3} can only merge via
  // two-bit flips, so nothing merges even though {0,1,2,3} as a whole would
  // be one wildcard rule if 1 and 2 were present.
  std::vector<Rule> rules = {Rule{0b00, 0b11, 1}, Rule{0b11, 0b11, 1}};
  EXPECT_EQ(greedy_merge_rules(rules, 2).size(), 2u);
}

TEST(TofinoProxy, CompilesFigure3RulePerEntry) {
  ParserSpec spec = figure3();
  CompileResult r = compile_tofino_proxy(spec, tofino());
  expect_runs_correctly(r, spec);
  // 7 dispatch rules + 3 terminal extract states (no inlining, no merging).
  EXPECT_EQ(r.usage.tcam_entries, 10);
}

TEST(TofinoProxy, KeepsRedundantEntries) {
  ParserSpec spec = figure3();
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 4, Rule{15, 0xF, 1});
  CompileResult r = compile_tofino_proxy(spec, tofino());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.usage.tcam_entries, 11);  // one more than the clean version
}

TEST(TofinoProxy, RejectsWideKeys) {
  CompileResult r = compile_tofino_proxy(suite::large_tran_key(), tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("wide-tran-key"), std::string::npos);
}

TEST(TofinoProxy, HandlesLoops) {
  ParserSpec spec = mpls_loop();
  CompileResult r = compile_tofino_proxy(spec, tofino());
  expect_runs_correctly(r, spec);
}

TEST(TofinoProxy, TooManyEntriesFails) {
  HwProfile hw = tofino();
  hw.tcam_entry_limit = 4;
  CompileResult r = compile_tofino_proxy(figure3(), hw);
  EXPECT_EQ(r.status, CompileStatus::ResourceExceeded);
}

TEST(IpuProxy, RejectsLoops) {
  CompileResult r = compile_ipu_proxy(mpls_loop(), ipu());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("parser-loop-rej"), std::string::npos);
}

TEST(IpuProxy, RejectsConflictTransitions) {
  ParserSpec spec = figure3();
  // Unreachable duplicate condition with a different target (the +R2 shape).
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 1, Rule{15, 0xF, 2});
  CompileResult r = compile_ipu_proxy(spec, ipu());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("conflict-transition"), std::string::npos);
}

TEST(IpuProxy, CompilesAndStagesDag) {
  ParserSpec spec = figure3();
  CompileResult r = compile_ipu_proxy(spec, ipu());
  expect_runs_correctly(r, spec);
  EXPECT_GE(r.usage.stages, 2);
}

TEST(IpuProxy, StageLimitFails) {
  HwProfile hw = ipu();
  hw.stage_limit = 1;
  CompileResult r = compile_ipu_proxy(figure3(), hw);
  EXPECT_EQ(r.status, CompileStatus::ResourceExceeded);
}

TEST(DpParserGen, SingleTableOnly) {
  CompileResult r = compile_dpparsergen(figure3(), ipu());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("unsupported-arch"), std::string::npos);
}

TEST(DpParserGen, RejectsLookahead) {
  SpecBuilder b("la");
  b.field("f", 8);
  b.state("s").select({SpecBuilder::lookahead(0, 4)}).when_exact(1, "t").otherwise("accept");
  b.state("t").extract("f").otherwise("accept");
  CompileResult r = compile_dpparsergen(b.build().value(), tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("lookahead-unsupported"), std::string::npos);
}

TEST(DpParserGen, RejectsForeignKeyFields) {
  CompileResult r = compile_dpparsergen(suite::multi_key_same_field(), tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("key-not-own-field"), std::string::npos);
}

TEST(DpParserGen, RejectsWildcardEntries) {
  SpecBuilder b("wild");
  b.field("k", 4).field("p", 4);
  b.state("s").extract("k").select({b.whole("k")}).when(0b1000, 0b1001, "t").otherwise("accept");
  b.state("t").extract("p").otherwise("accept");
  CompileResult r = compile_dpparsergen(b.build().value(), tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("wildcard-unsupported"), std::string::npos);
}

TEST(DpParserGen, RejectsAcceptOnValue) {
  SpecBuilder b("aov");
  b.field("k", 4).field("p", 4);
  b.state("s").extract("k").select({b.whole("k")}).when_exact(0, "accept").otherwise("t");
  b.state("t").extract("p").otherwise("accept");
  CompileResult r = compile_dpparsergen(b.build().value(), tofino());
  EXPECT_EQ(r.status, CompileStatus::Rejected);
  EXPECT_NE(r.reason.find("accept-on-value"), std::string::npos);
}

TEST(DpParserGen, MergesAndClustersFigure3) {
  ParserSpec spec = figure3();
  CompileResult r = compile_dpparsergen(spec, tofino());
  expect_runs_correctly(r, spec);
  // Greedy merge collapses {15,11,7,3}; clustering folds the terminal
  // extract states: 4 dispatch entries remain.
  EXPECT_EQ(r.usage.tcam_entries, 4);
}

TEST(DpParserGen, SplitsWideKeysCorrectly) {
  ParserSpec spec = suite::me2_key_splitting();
  HwProfile hw = parametrized(/*key=*/8, /*lookahead=*/32, /*extract=*/64);
  CompileResult r = compile_dpparsergen(spec, hw);
  expect_runs_correctly(r, spec);
  EXPECT_GT(r.usage.max_key_bits, 0);
  EXPECT_LE(r.usage.max_key_bits, 8);
}

TEST(DpParserGen, SplitIsSuboptimalVsEntryCount) {
  // With redundant entries in the source, DPParserGen pays for them while
  // ParserHawk's canonicalization would not (Table 4 ME-3).
  ParserSpec spec = suite::me3_redundant_entries();
  CompileResult r = compile_dpparsergen(spec, tofino());
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_GT(r.usage.tcam_entries, 1);
}

TEST(DpParserGen, KeepsLoopsOnSingleTable) {
  SpecBuilder b("selfloop");
  b.field("w", 8);
  b.state("s")
      .extract("w")
      .select({b.slice("w", 7, 1)})
      .when_exact(0, "s")
      .otherwise("accept");
  ParserSpec spec = b.build().value();
  CompileResult r = compile_dpparsergen(spec, tofino());
  expect_runs_correctly(r, spec);
}

}  // namespace
}  // namespace parserhawk
