#include "support/table.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "#TCAM"});
  t.add_row({"Parse Ethernet", "3"});
  t.add_row({"x", "12"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| Parse Ethernet | 3     |"), std::string::npos);
  EXPECT_NE(out.find("| x              | 12    |"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTable, OverlongRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(TextTable, SeparatorRendersDashes) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  std::string out = t.to_string();
  // header separator + explicit separator
  int dashes = 0;
  for (std::size_t pos = out.find("|---"); pos != std::string::npos; pos = out.find("|---", pos + 1)) ++dashes;
  EXPECT_EQ(dashes, 2);
}

TEST(FmtHelpers, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(309.444, 1), "309.4");
}

TEST(FmtHelpers, SecondsWithTimeout) {
  EXPECT_EQ(fmt_seconds(5.13, false), "5.13");
  EXPECT_EQ(fmt_seconds(86400, true), ">86400");
}

}  // namespace
}  // namespace parserhawk
