#include "analysis/analysis.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::mpls_loop;
using testing::spec1;
using testing::spec2;

TEST(Analyze, ReachabilityAllForFixtures) {
  SpecAnalysis a = analyze(figure3());
  for (bool r : a.state_reachable) EXPECT_TRUE(r);
}

TEST(Analyze, UnreachableStateDetected) {
  SpecBuilder b("dead");
  b.field("k", 4).field("x", 4);
  b.state("start").extract("k").select({b.whole("k")}).when_exact(1, "accept").otherwise("accept");
  b.state("island").extract("x").otherwise("accept");  // no incoming edge
  ParserSpec spec = b.build().value();
  SpecAnalysis a = analyze(spec);
  EXPECT_TRUE(a.state_reachable[0]);
  EXPECT_FALSE(a.state_reachable[1]);
}

TEST(Analyze, StateBehindDeadRuleIsUnreachable) {
  // The R2 scenario: the rule leading to 'ghost' can never fire.
  SpecBuilder b("r2");
  b.field("k", 2).field("x", 4);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when(0, 0b10, "accept")     // covers k in {00,01}
      .when(0b10, 0b10, "accept")  // covers k in {10,11}
      .when_exact(0b11, "ghost")   // fully shadowed
      .otherwise("accept");
  b.state("ghost").extract("x").otherwise("accept");
  ParserSpec spec = b.build().value();
  SpecAnalysis a = analyze(spec);
  EXPECT_FALSE(a.state_reachable[spec.state_index("ghost")]);
  EXPECT_TRUE(a.rule_is_dead(0, 2));
}

TEST(Analyze, LoopDetection) {
  EXPECT_TRUE(analyze(mpls_loop()).has_loop);
  EXPECT_FALSE(analyze(spec1()).has_loop);
  EXPECT_FALSE(analyze(figure3()).has_loop);
}

TEST(Analyze, LoopThroughDeadRuleDoesNotCount) {
  SpecBuilder b("fakeloop");
  b.field("k", 1);
  b.state("s")
      .extract("k")
      .select({b.whole("k")})
      .when(0, 1, "accept")
      .when(1, 1, "accept")
      .when_exact(1, "s")  // dead: shadowed by the two rules above
      .otherwise("accept");
  ParserSpec spec = b.build().value();
  EXPECT_FALSE(analyze(spec).has_loop);
}

TEST(RuleCanFire, PriorityShadowing) {
  ParserSpec spec = figure3();
  for (int r = 0; r < 7; ++r) EXPECT_TRUE(rule_can_fire(spec, 0, r)) << r;
  // Append a rule strictly covered by rule 0 (value 15 exact).
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 1, Rule{15, 0xF, 1});
  EXPECT_FALSE(rule_can_fire(spec, 0, 1));
}

TEST(RuleCanFire, KeylessStateOnlyFirstRuleFires) {
  ParserSpec spec = spec1();
  EXPECT_TRUE(rule_can_fire(spec, 0, 0));
}

TEST(RuleIsRedundant, DuplicateWithSameNext) {
  ParserSpec spec = figure3();
  // Duplicate of "15 -> N1" later in the list: removable.
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 4, Rule{15, 0xF, 1});
  EXPECT_TRUE(rule_is_redundant(spec, 0, 4));
}

TEST(RuleIsRedundant, LiveRuleIsNot) {
  ParserSpec spec = figure3();
  EXPECT_FALSE(rule_is_redundant(spec, 0, 4));  // 14 -> N2
  EXPECT_FALSE(rule_is_redundant(spec, 0, 6));  // default accept
}

TEST(RuleIsRedundant, RuleDuplicatingTheDefault) {
  SpecBuilder b("dupdef");
  b.field("k", 2);
  b.state("s")
      .extract("k")
      .select({b.whole("k")})
      .when_exact(1, "accept")  // same target as the default below
      .otherwise("accept");
  ParserSpec spec = b.build().value();
  EXPECT_TRUE(rule_is_redundant(spec, 0, 0));
}

TEST(Analyze, DeadAndRedundantRuleLists) {
  ParserSpec spec = figure3();
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 4, Rule{15, 0xF, 1});
  SpecAnalysis a = analyze(spec);
  EXPECT_TRUE(a.rule_is_dead(0, 4));
  bool found = false;
  for (auto [s, r] : a.redundant_rules) found |= (s == 0 && r == 4);
  EXPECT_TRUE(found);
}

TEST(Analyze, KeyUsageMarksOnlyUsedBits) {
  SpecAnalysis a = analyze(spec2());
  // spec2 keys on field0[0] only.
  ASSERT_EQ(a.key_usage.size(), 2u);
  EXPECT_TRUE(a.key_usage[0].bits[0]);
  EXPECT_FALSE(a.key_usage[0].bits[1]);
  EXPECT_FALSE(a.key_usage[1].any());
}

TEST(Analyze, IrrelevantFields) {
  SpecAnalysis a = analyze(spec2());
  EXPECT_FALSE(a.irrelevant_field[0]);  // keyed on
  EXPECT_TRUE(a.irrelevant_field[1]);   // extracted, never keyed
}

TEST(Analyze, VarbitLengthSourceIsRelevant) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  SpecAnalysis a = analyze(b.build().value());
  EXPECT_FALSE(a.irrelevant_field[0]);  // len drives the varbit width
  EXPECT_TRUE(a.irrelevant_field[1]);
}

TEST(Analyze, StateConstantsCollected) {
  SpecAnalysis a = analyze(figure3());
  const auto& consts = a.state_constants[0];
  for (std::uint64_t v : {15u, 11u, 7u, 3u, 14u, 2u}) EXPECT_TRUE(consts.count(v)) << v;
  EXPECT_EQ(consts.size(), 6u);
}

TEST(Analyze, MaxInputBitsLinearChain) {
  // spec1 consumes exactly 8 bits.
  EXPECT_EQ(analyze(spec1()).max_input_bits, 8);
  // figure3: 4-bit key + one 4-bit field.
  EXPECT_EQ(analyze(figure3()).max_input_bits, 8);
}

TEST(Analyze, MaxInputBitsGrowsWithLoopBound) {
  int n4 = analyze(mpls_loop(), 4).max_input_bits;
  int n8 = analyze(mpls_loop(), 8).max_input_bits;
  EXPECT_GT(n8, n4);
  EXPECT_EQ(n4, 4 * 8);
}

TEST(SubrangeConstants, EnumeratesWindows) {
  // value 0b1010 (width 4), key limit 2: subranges of width 1 and 2.
  auto subs = subrange_constants(0b1010, 4, 2);
  EXPECT_TRUE(subs.count(0b10));
  EXPECT_TRUE(subs.count(0b01));
  EXPECT_TRUE(subs.count(0b1));
  EXPECT_TRUE(subs.count(0b0));
  // Full value does not fit in 2 bits.
  EXPECT_FALSE(subs.count(0b1010));
}

TEST(SubrangeConstants, IncludesFullValueWhenItFits) {
  auto subs = subrange_constants(0b1010, 4, 4);
  EXPECT_TRUE(subs.count(0b1010));
}

TEST(StateMaxBits, CountsExtractsAndLookahead) {
  ParserSpec spec = spec1();
  EXPECT_EQ(state_max_bits(spec, 0), 4);
  SpecBuilder b("la");
  b.field("f", 4);
  b.state("s").select({SpecBuilder::lookahead(6, 4)}).otherwise("accept");
  EXPECT_EQ(state_max_bits(b.build().value(), 0), 10);  // lookahead reach dominates
}

}  // namespace
}  // namespace parserhawk
