#include "hw/profile.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

TEST(Profiles, TofinoShape) {
  HwProfile p = tofino();
  EXPECT_EQ(p.arch, Arch::SingleTable);
  EXPECT_TRUE(p.allows_loops);
  EXPECT_FALSE(p.pipelined());
  EXPECT_TRUE(validate(p).ok());
}

TEST(Profiles, IpuShape) {
  HwProfile p = ipu();
  EXPECT_EQ(p.arch, Arch::Pipelined);
  EXPECT_FALSE(p.allows_loops);
  EXPECT_TRUE(p.pipelined());
  EXPECT_GT(p.stage_limit, 1);
  EXPECT_TRUE(validate(p).ok());
}

TEST(Profiles, TridentShape) {
  HwProfile p = trident();
  EXPECT_EQ(p.arch, Arch::Interleaved);
  EXPECT_TRUE(validate(p).ok());
}

TEST(Profiles, ParametrizedCarriesLimits) {
  HwProfile p = parametrized(8, 2, 10);
  EXPECT_EQ(p.key_limit_bits, 8);
  EXPECT_EQ(p.lookahead_limit_bits, 2);
  EXPECT_EQ(p.extract_limit_bits, 10);
  EXPECT_TRUE(validate(p).ok());
}

TEST(ProfileValidate, RejectsBadKeyLimit) {
  HwProfile p = tofino();
  p.key_limit_bits = 0;
  EXPECT_FALSE(validate(p).ok());
  p.key_limit_bits = 65;
  EXPECT_FALSE(validate(p).ok());
}

TEST(ProfileValidate, RejectsLoopyPipeline) {
  HwProfile p = ipu();
  p.allows_loops = true;
  EXPECT_FALSE(validate(p).ok());
}

TEST(ProfileValidate, RejectsNonLoopySingleTable) {
  HwProfile p = tofino();
  p.allows_loops = false;
  EXPECT_FALSE(validate(p).ok());
}

TEST(ProfileValidate, RejectsNonPositiveEntryLimit) {
  HwProfile p = tofino();
  p.tcam_entry_limit = 0;
  EXPECT_FALSE(validate(p).ok());
}

TEST(ArchToString, AllValuesNamed) {
  EXPECT_EQ(to_string(Arch::SingleTable), "single-table");
  EXPECT_EQ(to_string(Arch::Pipelined), "pipelined");
  EXPECT_EQ(to_string(Arch::Interleaved), "interleaved");
}

}  // namespace
}  // namespace parserhawk
