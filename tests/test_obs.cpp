// The observability subsystem (DESIGN.md §7): exporter validity, span
// nesting, lossless concurrent recording, and the disabled-mode contract.
//
// JSON checks use the minimal recursive-descent validator in
// json_validator.h (shared with the flight-recorder tests).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "helpers.h"
#include "json_validator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace parserhawk::obs {
namespace {

using parserhawk::testing::is_valid_json;

/// Per-test tracer/metrics hygiene: the singletons are process-global, so
/// every test starts and ends from the disabled+empty state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::get().disable();
    Tracer::get().reset();
    Metrics::get().disable();
    Metrics::get().reset();
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  Tracer::get().enable();
  set_thread_name("main");
  {
    Span outer("outer");
    outer.arg("spec", "ether\"net\n");  // escaping must hold up
    outer.arg("n", 42);
    Span inner("inner");
    trace_instant("marker");
  }
  std::string json = Tracer::get().chrome_trace_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST_F(ObsTest, JsonlExportHasOneValidObjectPerLine) {
  Tracer::get().enable();
  for (int i = 0; i < 5; ++i) Span span("work");
  trace_instant("done");
  std::string jsonl = Tracer::get().jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(is_valid_json(line)) << line;
    EXPECT_EQ(line.front(), '{');
    ++n;
  }
  EXPECT_EQ(n, 6);
}

TEST_F(ObsTest, MetricsExportIsValidJson) {
  Metrics::get().enable();
  count("z3.synth.queries", 3);
  observe("z3.synth.time_sec", 0.001);
  observe("z3.synth.time_sec", 0.1);
  maximize("pool.queue_depth_hwm", 7);
  std::string json = Metrics::get().to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"z3.synth.queries\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  EXPECT_EQ(Metrics::get().counter("z3.synth.queries"), 3);
}

TEST_F(ObsTest, FileExportersWriteValidJsonToDisk) {
  // The write_* paths (what hawk_compile/bench sidecars use), routed
  // through the per-test scratch dir so nothing lands in the working
  // directory or a shared /tmp name.
  parserhawk::testing::ScratchDir scratch("obs_export");
  Tracer::get().enable();
  Metrics::get().enable();
  { Span span("disk_roundtrip"); }
  count("z3.synth.queries", 1);

  auto slurp = [](const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    std::ostringstream buf;
    buf << f.rdbuf();
    return buf.str();
  };

  std::string trace_path = scratch.file("trace.json");
  ASSERT_TRUE(Tracer::get().write_chrome_trace(trace_path));
  EXPECT_TRUE(is_valid_json(slurp(trace_path)));

  std::string jsonl_path = scratch.file("trace.jsonl");
  ASSERT_TRUE(Tracer::get().write_jsonl(jsonl_path));
  EXPECT_NE(slurp(jsonl_path).find("disk_roundtrip"), std::string::npos);

  std::string metrics_path = scratch.file("metrics.json");
  ASSERT_TRUE(Metrics::get().write_json(metrics_path));
  EXPECT_TRUE(is_valid_json(slurp(metrics_path)));

  // Unwritable target: clean failure, no crash.
  EXPECT_FALSE(Metrics::get().write_json(scratch.file("no/such/dir/metrics.json")));
}

// ---------------------------------------------------------------------------
// Span semantics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestWithNonNegativeDurations) {
  Tracer::get().enable();
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  auto events = Tracer::get().snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(outer->dur_ns, 0);
  EXPECT_GE(inner->dur_ns, 0);
  // Proper nesting: the inner interval sits inside the outer one.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
}

TEST_F(ObsTest, LabelAndEndAreIdempotent) {
  Tracer::get().enable();
  {
    Span span("solve_state");
    span.label("parse_tcp");
    span.end();
    span.end();  // second end is a no-op
  }
  auto events = Tracer::get().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "solve_state:parse_tcp");
}

TEST_F(ObsTest, ConcurrentRecordingFromEightThreadsLosesNoEvents) {
  Tracer::get().enable();
  Metrics::get().enable();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      set_thread_name("t" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        Span span("op");
        span.arg("i", i);
        count("ops");
        observe("op.time_sec", 1e-6 * (i + 1));
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(Tracer::get().snapshot().size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(Metrics::get().counter("ops"), kThreads * kPerThread);
  auto hists = Metrics::get().histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].count, kThreads * kPerThread);
  // Chrome export of a multi-thread trace still renders valid JSON.
  EXPECT_TRUE(is_valid_json(Tracer::get().chrome_trace_json()));
}

TEST_F(ObsTest, SnapshotEventsAreSortedByTimestamp) {
  Tracer::get().enable();
  for (int i = 0; i < 50; ++i) Span span("tick");
  auto events = Tracer::get().snapshot();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
}

// ---------------------------------------------------------------------------
// Disabled mode
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(tracing());
  ASSERT_FALSE(metrics_on());
  {
    Span span("ghost");
    span.label("never");
    span.arg("k", 1);
    trace_instant("ghost_instant");
    count("ghost.counter", 5);
    observe("ghost.histogram", 1.0);
    maximize("ghost.gauge", 9);
  }
  EXPECT_TRUE(Tracer::get().snapshot().empty());
  EXPECT_TRUE(Metrics::get().counters().empty());
  EXPECT_TRUE(Metrics::get().histograms().empty());
  EXPECT_EQ(Metrics::get().counter("ghost.counter"), 0);
}

TEST_F(ObsTest, SpanStartedWhileEnabledStillClosesAfterDisable) {
  Tracer::get().enable();
  {
    Span span("straddler");
    Tracer::get().disable();
  }  // destructor runs with tracing off; the span was active, so it records
  Tracer::get().enable();
  auto events = Tracer::get().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "straddler");
}

TEST_F(ObsTest, ResetDropsBufferedEvents) {
  Tracer::get().enable();
  { Span span("before"); }
  Tracer::get().reset();
  EXPECT_TRUE(Tracer::get().snapshot().empty());
  { Span span("after"); }
  auto events = Tracer::get().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after");
}

// ---------------------------------------------------------------------------
// Logger
// ---------------------------------------------------------------------------

TEST_F(ObsTest, LogLevelThresholding) {
  LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  // Below-threshold calls must be safe no-ops (nothing to assert beyond
  // not crashing; output goes to stderr).
  log_debug("dropped %d", 1);
  log_info("dropped %s", "too");
  set_log_level(saved);
}

}  // namespace
}  // namespace parserhawk::obs
