#include "synth/normalize.h"

#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "helpers.h"
#include "ir/builder.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::mpls_loop;
using testing::spec1;
using testing::spec2;

/// Check §4 equivalence of two specs over path-directed samples.
void expect_same_semantics(const ParserSpec& a, const ParserSpec& b, int iters = 16) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    BitVec input = generate_path_input(a, rng, iters, 64);
    ParseResult ra = run_spec(a, input, iters);
    ParseResult rb = run_spec(b, input, iters);
    ASSERT_TRUE(equivalent(ra, rb)) << "input " << input.to_string() << "\n"
                                    << to_string(a) << "\nvs\n"
                                    << to_string(b);
  }
}

TEST(PruneDeadRules, RemovesShadowedRuleAndGhostState) {
  ParserSpec spec = figure3();
  // Shadowed duplicate of 15 -> N1.
  spec.states[0].rules.insert(spec.states[0].rules.begin() + 4, Rule{15, 0xF, 1});
  ParserSpec pruned = prune_dead_rules(spec);
  EXPECT_EQ(pruned.states[0].rules.size(), 7u);
  expect_same_semantics(spec, pruned);
}

TEST(PruneDeadRules, DropsUnreachableStates) {
  SpecBuilder b("r2");
  b.field("k", 2).field("x", 4);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when(0, 0b10, "accept")
      .when(0b10, 0b10, "accept")
      .when_exact(0b11, "ghost")
      .otherwise("accept");
  b.state("ghost").extract("x").otherwise("accept");
  ParserSpec spec = b.build().value();
  ParserSpec pruned = prune_dead_rules(spec);
  EXPECT_EQ(pruned.states.size(), 1u);
  expect_same_semantics(spec, pruned);
}

TEST(PruneDeadRules, CollapsesRuleDuplicatingDefault) {
  SpecBuilder b("dupdef");
  b.field("k", 2);
  b.state("s").extract("k").select({b.whole("k")}).when_exact(1, "accept").otherwise("accept");
  ParserSpec spec = b.build().value();
  ParserSpec pruned = prune_dead_rules(spec);
  EXPECT_EQ(pruned.states[0].rules.size(), 1u);
  expect_same_semantics(spec, pruned);
}

TEST(PruneDeadRules, KeepsLiveRules) {
  ParserSpec spec = figure3();
  ParserSpec pruned = prune_dead_rules(spec);
  EXPECT_EQ(pruned.states[0].rules.size(), 7u);
  EXPECT_EQ(pruned.states.size(), 4u);
}

TEST(MergeExtractChains, CollapsesLinearChain) {
  ParserSpec spec = spec1();  // state0 -> state1 -> accept, both extract
  ParserSpec merged = merge_extract_chains(spec);
  EXPECT_EQ(merged.states.size(), 1u);
  EXPECT_EQ(merged.states[0].extracts.size(), 2u);
  expect_same_semantics(spec, merged);
}

TEST(MergeExtractChains, KeepsBranchingStates) {
  ParserSpec spec = spec2();
  ParserSpec merged = merge_extract_chains(spec);
  EXPECT_EQ(merged.states.size(), 2u);  // branch prevents merging
  expect_same_semantics(spec, merged);
}

TEST(MergeExtractChains, RespectsMultiplePredecessors) {
  // Two states both default into a shared tail: tail must not merge.
  SpecBuilder b("shared");
  b.field("k", 2).field("t", 4);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when_exact(0, "a")
      .otherwise("bstate");
  b.state("a").otherwise("tail");
  b.state("bstate").otherwise("tail");
  b.state("tail").extract("t").otherwise("accept");
  ParserSpec spec = b.build().value();
  ParserSpec merged = merge_extract_chains(spec);
  // 'a' and 'bstate' cannot merge into 'tail' (two predecessors).
  EXPECT_EQ(merged.states.size(), 4u);
  expect_same_semantics(spec, merged);
}

TEST(QuotientBisimulation, MergesIdenticalStates) {
  // Two states with identical behavior reached on different branches.
  SpecBuilder b("twins");
  b.field("k", 2).field("t", 4);
  b.state("start")
      .extract("k")
      .select({b.whole("k")})
      .when_exact(0, "twin1")
      .when_exact(1, "twin2")
      .otherwise("accept");
  b.state("twin1").extract("t").otherwise("accept");
  b.state("twin2").extract("t").otherwise("accept");
  ParserSpec spec = b.build().value();
  ParserSpec q = quotient_bisimulation(spec);
  EXPECT_EQ(q.states.size(), 2u);
  expect_same_semantics(spec, q);
}

TEST(QuotientBisimulation, RerollsPartiallyUnrolledLoop) {
  // Partially hand-unrolled MPLS whose tail still loops (the common style:
  // unroll a few iterations, keep the loop for deeper stacks). All copies
  // are bisimilar to the looping tail and collapse into one state — the
  // paper's loop-aware re-rolling (§6.7.1).
  SpecBuilder b("unrolled");
  b.field("label", 8);
  for (int i = 0; i < 3; ++i) {
    std::string name = "mpls" + std::to_string(i);
    std::string next = i + 1 < 3 ? "mpls" + std::to_string(i + 1) : "mpls2";  // tail loops
    b.state(name)
        .extract("label")
        .select({b.slice("label", 7, 1)})
        .when_exact(1, "accept")
        .otherwise(next);
  }
  ParserSpec spec = b.build().value();
  ParserSpec q = quotient_bisimulation(spec);
  EXPECT_EQ(q.states.size(), 1u);
  expect_same_semantics(spec, q, /*iters=*/8);
}

TEST(QuotientBisimulation, BoundedUnrollDoesNotCollapse) {
  // A *fully* bounded unroll (last copy rejects on continuation) is NOT
  // bisimilar across copies: each copy tolerates a different remaining
  // stack depth, and merging them would change semantics on deep stacks.
  SpecBuilder b("bounded");
  b.field("label", 8);
  for (int i = 0; i < 3; ++i) {
    std::string name = "mpls" + std::to_string(i);
    std::string next = i + 1 < 3 ? "mpls" + std::to_string(i + 1) : "reject";
    b.state(name)
        .extract("label")
        .select({b.slice("label", 7, 1)})
        .when_exact(1, "accept")
        .otherwise(next);
  }
  ParserSpec spec = b.build().value();
  ParserSpec q = quotient_bisimulation(spec);
  EXPECT_EQ(q.states.size(), 3u);
  expect_same_semantics(spec, q, /*iters=*/8);
}

TEST(QuotientBisimulation, DistinguishesDifferentTargets) {
  ParserSpec spec = figure3();  // N1..N3 extract different fields
  ParserSpec q = quotient_bisimulation(spec);
  EXPECT_EQ(q.states.size(), 4u);
}

TEST(UnrollLoops, DagIsUntouched) {
  ParserSpec spec = figure3();
  auto u = unroll_loops(spec, 4);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->states.size(), spec.states.size());
}

TEST(UnrollLoops, SelfLoopGetsCopies) {
  ParserSpec spec = mpls_loop();
  auto u = unroll_loops(spec, 4);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->states.size(), 4u);
  EXPECT_FALSE(analyze(*u).has_loop);
  // Equivalence holds for stacks that fit in the unroll depth.
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    BitVec input = generate_path_input(*u, rng, 8, 40);
    ParseResult a = run_spec(spec, input, 8);
    ParseResult b2 = run_spec(*u, input, 8);
    if (a.outcome == ParseOutcome::Accepted && a.iterations <= 4) {
      EXPECT_TRUE(equivalent(a, b2)) << input.to_string();
    }
  }
}

TEST(UnrollLoops, RejectsBadDepth) {
  EXPECT_FALSE(unroll_loops(mpls_loop(), 0).ok());
}

TEST(UnrollLoops, DeepStackRejectsAfterUnrollBudget) {
  auto u = unroll_loops(mpls_loop(), 2);
  ASSERT_TRUE(u.ok());
  BitVec input;
  for (int i = 0; i < 5; ++i) input.append_u64(0x10, 8);  // bos never set
  input.append_u64(0x31, 8);
  ParseResult r = run_spec(*u, input, 16);
  EXPECT_EQ(r.outcome, ParseOutcome::Rejected);
}

TEST(ShrinkIrrelevantFields, ShrinksOnlyIrrelevant) {
  ParserSpec spec = spec2();
  ParserSpec shrunk = shrink_irrelevant_fields(spec);
  EXPECT_EQ(shrunk.fields[0].width, 4);  // keyed on
  EXPECT_EQ(shrunk.fields[1].width, 1);  // irrelevant
}

TEST(VarbitToFixed, DropsRuntimeLengths) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  ParserSpec fixed = varbit_to_fixed(b.build().value());
  EXPECT_FALSE(fixed.fields[1].varbit);
  EXPECT_EQ(fixed.states[0].extracts[1].len_field, -1);
}

TEST(Canonicalize, IsIdempotent) {
  ParserSpec once = canonicalize(figure3());
  ParserSpec twice = canonicalize(once);
  EXPECT_EQ(once.states.size(), twice.states.size());
}

TEST(Canonicalize, NormalizesRewrittenVariantsToSameSize) {
  // The R1/R5 rewrites of Figure 21 must not change the canonical form's
  // state count: this is the invariance ParserHawk's Table 3 rows rely on.
  ParserSpec base = figure3();
  ParserSpec r1 = base;
  r1.states[0].rules.insert(r1.states[0].rules.begin() + 4, Rule{15, 0xF, 1});  // +R1
  ParserSpec cb = canonicalize(base);
  ParserSpec cr = canonicalize(r1);
  EXPECT_EQ(cb.states.size(), cr.states.size());
  std::size_t rb = 0, rr = 0;
  for (const auto& st : cb.states) rb += st.rules.size();
  for (const auto& st : cr.states) rr += st.rules.size();
  EXPECT_EQ(rb, rr);
}

}  // namespace
}  // namespace parserhawk
