#include "synth/chain_synth.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

/// The Figure 3 transition function: 4-bit key; {15,11,7,3} -> 1 (N1),
/// 14 -> 2 (N2), 2 -> 3 (N3), default 0 (accept encoded as state 0 here —
/// targets are opaque ints to the chain synthesizer).
ChainProblem figure3_problem() {
  ChainProblem p;
  p.key_width = 4;
  p.semantics = {Rule{15, 0xF, 1}, Rule{11, 0xF, 1}, Rule{7, 0xF, 1}, Rule{3, 0xF, 1},
                 Rule{14, 0xF, 2}, Rule{2, 0xF, 3},  Rule{0, 0, kAccept}};
  p.exit_targets = {1, 2, 3, kAccept, kReject};
  return p;
}

ChainShape single_layer(int kw, int budget, std::vector<std::uint64_t> candidates = {}) {
  ChainShape s;
  std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
  s.alloc_masks = {full};
  s.layers = 1;
  s.aux_counts = {1};
  s.row_budget = budget;
  s.value_candidates = std::move(candidates);
  s.key_limit = 64;
  return s;
}

void expect_exhaustively_correct(const ChainProblem& p, const ChainSolution& sol) {
  std::uint64_t space = std::uint64_t{1} << p.key_width;
  for (std::uint64_t k = 0; k < space; ++k)
    ASSERT_EQ(eval_chain(sol, k), eval_semantics(p.semantics, k)) << "key " << k;
}

TEST(EvalSemantics, FirstMatchWins) {
  std::vector<Rule> rules = {Rule{0b10, 0b10, 5}, Rule{0b11, 0b11, 6}, Rule{0, 0, kAccept}};
  EXPECT_EQ(eval_semantics(rules, 0b11), 5);  // first rule matches too
  EXPECT_EQ(eval_semantics(rules, 0b01), kAccept);
  EXPECT_EQ(eval_semantics({}, 0), kReject);
}

TEST(ChainSynth, KeylessStateTrivial) {
  ChainProblem p;
  p.key_width = 0;
  p.semantics = {Rule{0, 0, 7}};
  p.exit_targets = {7, kReject};
  ChainStats st;
  auto sol = synthesize_chain(p, single_layer(0, 1), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(eval_chain(*sol, 0), 7);
  EXPECT_EQ(sol->rows.size(), 1u);
}

TEST(ChainSynth, Figure3MergesToFourEntries) {
  // Device B of Figure 4 (4-bit key): the optimal cover is 4 entries —
  // the {15,11,7,3} family merges under mask 0b0011.
  ChainProblem p = figure3_problem();
  ChainStats st;
  EXPECT_FALSE(synthesize_chain(p, single_layer(4, 3), Deadline::none(), st).has_value());
  auto sol = synthesize_chain(p, single_layer(4, 4), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->rows.size(), 4u);
  expect_exhaustively_correct(p, *sol);
}

TEST(ChainSynth, Figure3WithConstantPool) {
  // Opt4: values restricted to the spec constants still admit the 4-entry
  // solution (any member of the merged family works as the value).
  ChainProblem p = figure3_problem();
  ChainStats st;
  auto sol = synthesize_chain(p, single_layer(4, 4, {15, 11, 7, 3, 14, 2}), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  expect_exhaustively_correct(p, *sol);
}

TEST(ChainSynth, SplitKeyAcrossTwoLayers) {
  // Device A of Figure 4: at most 2 key bits per entry. The 4-bit function
  // must split into a layer-0 match on one half and layer-1 matches on the
  // other; Figure 4's V2 needs 6 entries.
  ChainProblem p = figure3_problem();
  ChainShape shape;
  shape.alloc_masks = {0b0011, 0b1100};  // low half first (V2's ordering)
  shape.layers = 2;
  shape.aux_counts = {1, 4};
  shape.key_limit = 2;
  ChainStats st;
  std::optional<ChainSolution> found;
  int budget = 0;
  for (budget = 4; budget <= 10 && !found; ++budget) {
    shape.row_budget = budget;
    found = synthesize_chain(p, shape, Deadline::none(), st);
  }
  ASSERT_TRUE(found.has_value());
  EXPECT_LE(found->rows.size(), 6u);
  expect_exhaustively_correct(p, *found);
}

TEST(ChainSynth, SymbolicAllocFindsRelevantBits) {
  // Opt5 off: the solver must discover that only the top bit matters.
  ChainProblem p;
  p.key_width = 6;
  p.semantics = {Rule{0b100000, 0b100000, 1}, Rule{0, 0, 2}};
  p.exit_targets = {1, 2, kReject};
  ChainShape shape;
  shape.layers = 1;
  shape.aux_counts = {1};
  shape.row_budget = 2;
  shape.key_limit = 1;  // forces a 1-bit key: only the right bit works
  ChainStats st;
  auto sol = synthesize_chain(p, shape, Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->alloc_masks[0], 0b100000u);
  expect_exhaustively_correct(p, *sol);
}

TEST(ChainSynth, InsufficientBudgetIsUnsat) {
  ChainProblem p;
  p.key_width = 2;
  p.semantics = {Rule{0, 0b11, 1}, Rule{1, 0b11, 2}, Rule{2, 0b11, 3}, Rule{3, 0b11, 4}};
  p.exit_targets = {1, 2, 3, 4, kReject};
  ChainStats st;
  EXPECT_FALSE(synthesize_chain(p, single_layer(2, 3), Deadline::none(), st).has_value());
  EXPECT_TRUE(synthesize_chain(p, single_layer(2, 4), Deadline::none(), st).has_value());
}

TEST(ChainSynth, WildcardSemanticsPreserved) {
  // Input written with masks (the DPParserGen-hostile style): 1**0 -> 1.
  ChainProblem p;
  p.key_width = 4;
  p.semantics = {Rule{0b1000, 0b1001, 1}, Rule{0, 0, kAccept}};
  p.exit_targets = {1, kAccept, kReject};
  ChainStats st;
  auto sol = synthesize_chain(p, single_layer(4, 2), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  expect_exhaustively_correct(p, *sol);
}

TEST(ChainSynth, DeadlineAborts) {
  ChainProblem p = figure3_problem();
  Deadline expired(1e-9);
  ChainStats st;
  EXPECT_FALSE(synthesize_chain(p, single_layer(4, 4), expired, st).has_value());
}

TEST(ChainSynth, StatsPopulated) {
  ChainProblem p = figure3_problem();
  ChainStats st;
  auto sol = synthesize_chain(p, single_layer(4, 4), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  EXPECT_GT(st.synth_queries, 0);
  EXPECT_GT(st.verify_queries, 0);
  EXPECT_GT(st.search_space_bits, 0);
}

// Property sweep: random transition functions over small keys are always
// implementable with a full budget and exhaustively correct.
class ChainSynthRandomFunction : public ::testing::TestWithParam<int> {};

TEST_P(ChainSynthRandomFunction, SynthesizesExactCover) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  // Tiny deterministic PRNG for rule generation.
  auto next = [&seed] {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  ChainProblem p;
  p.key_width = 3;
  int nrules = 2 + static_cast<int>(next() % 3);
  for (int i = 0; i < nrules; ++i)
    p.semantics.push_back(
        Rule{next() % 8, next() % 8, static_cast<int>(next() % 3) + 1});
  p.semantics.push_back(Rule{0, 0, kAccept});
  p.exit_targets = {1, 2, 3, kAccept, kReject};
  ChainStats st;
  std::optional<ChainSolution> sol;
  for (int budget = 1; budget <= nrules + 1 && !sol; ++budget)
    sol = synthesize_chain(p, single_layer(3, budget), Deadline::none(), st);
  ASSERT_TRUE(sol.has_value());
  for (std::uint64_t k = 0; k < 8; ++k)
    EXPECT_EQ(eval_chain(*sol, k), eval_semantics(p.semantics, k)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSynthRandomFunction, ::testing::Range(1, 13));

}  // namespace
}  // namespace parserhawk
