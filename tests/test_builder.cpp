#include "ir/builder.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

TEST(SpecBuilder, ResolvesForwardReferences) {
  SpecBuilder b("fwd");
  b.field("t", 8);
  b.state("start").extract("t").select({b.whole("t")}).when_exact(1, "later").otherwise("accept");
  b.state("later").otherwise("accept");
  auto spec = b.build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->states[0].rules[0].next, spec->state_index("later"));
}

TEST(SpecBuilder, WhenExactComputesFullMask) {
  SpecBuilder b("exact");
  b.field("t", 6);
  b.state("s").extract("t").select({b.whole("t")}).when_exact(9, "accept").otherwise("reject");
  auto spec = b.build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->states[0].rules[0].mask, 0b111111u);
  EXPECT_EQ(spec->states[0].rules[0].value, 9u);
}

TEST(SpecBuilder, UnknownNextStateFailsBuild) {
  SpecBuilder b("bad");
  b.field("t", 4);
  b.state("s").extract("t").select({b.whole("t")}).when_exact(1, "ghost").otherwise("accept");
  auto spec = b.build();
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.error().message.find("ghost"), std::string::npos);
}

TEST(SpecBuilder, UnknownFieldThrowsEagerly) {
  SpecBuilder b("bad");
  EXPECT_THROW(b.state("s").extract("ghost"), std::invalid_argument);
  EXPECT_THROW((void)b.slice("ghost", 0, 1), std::invalid_argument);
}

TEST(SpecBuilder, StartOverride) {
  SpecBuilder b("start");
  b.field("t", 4);
  b.state("first").otherwise("accept");
  b.state("second").extract("t").otherwise("accept");
  b.start("second");
  auto spec = b.build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->start, 1);
}

TEST(SpecBuilder, UnknownStartFailsBuild) {
  SpecBuilder b("start");
  b.field("t", 4);
  b.state("only").otherwise("accept");
  b.start("ghost");
  EXPECT_FALSE(b.build().ok());
}

TEST(SpecBuilder, SliceAndWholeHelpers) {
  SpecBuilder b("keys");
  b.field("f", 16);
  KeyPart s = b.slice("f", 4, 8);
  EXPECT_EQ(s.kind, KeyPart::Kind::FieldSlice);
  EXPECT_EQ(s.lo, 4);
  EXPECT_EQ(s.len, 8);
  KeyPart w = b.whole("f");
  EXPECT_EQ(w.len, 16);
  KeyPart la = SpecBuilder::lookahead(3, 5);
  EXPECT_EQ(la.kind, KeyPart::Kind::Lookahead);
  EXPECT_EQ(la.lo, 3);
  EXPECT_EQ(la.len, 5);
}

TEST(SpecBuilder, ReopeningAStateAppends) {
  SpecBuilder b("reopen");
  b.field("t", 4);
  b.state("s").extract("t");
  b.state("s").select({b.whole("t")}).when_exact(2, "accept").otherwise("reject");
  auto spec = b.build();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->states.size(), 1u);
  EXPECT_EQ(spec->states[0].extracts.size(), 1u);
  EXPECT_EQ(spec->states[0].rules.size(), 2u);
}

TEST(SpecBuilder, VarbitExtract) {
  SpecBuilder b("vb");
  b.field("ihl", 4).varbit_field("options", 320);
  b.state("s").extract("ihl").extract_var("options", "ihl", 32, -160).otherwise("accept");
  auto spec = b.build();
  ASSERT_TRUE(spec.ok());
  const ExtractOp& ex = spec->states[0].extracts[1];
  EXPECT_EQ(ex.len_field, spec->field_index("ihl"));
  EXPECT_EQ(ex.len_scale, 32);
  EXPECT_EQ(ex.len_base, -160);
}

}  // namespace
}  // namespace parserhawk
