// Interpreter edge cases: varbit extraction at non-byte boundaries,
// inputs that run out mid-lookahead, and ParseOutcome::Exhausted parity
// between the spec and impl interpreters at the loop bound K.
#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/coverage.h"
#include "sim/interp.h"
#include "tcam/matcher.h"

namespace parserhawk {
namespace {

using testing::mpls_loop;

/// 3-bit length selector, then a varbit body of `2 * len + 1` bits —
/// every runtime width is odd, so extraction never lands on a byte
/// boundary.
ParserSpec odd_varbit_spec() {
  SpecBuilder b("odd_varbit");
  b.field("len", 3).varbit_field("body", 15).field("tail", 4);
  b.state("start")
      .extract("len")
      .extract_var("body", "len", /*scale=*/2, /*base=*/1)
      .otherwise("fin");
  b.state("fin").extract("tail").otherwise("accept");
  return b.build().value();
}

TEST(VarbitEdge, NonByteBoundaryWidths) {
  ParserSpec spec = odd_varbit_spec();
  for (int len = 0; len < 8; ++len) {
    int body_bits = 2 * len + 1;
    BitVec input;
    for (int i = 2; i >= 0; --i) input.push_back((len >> i) & 1);
    for (int i = 0; i < body_bits; ++i) input.push_back(i % 2 == 0);  // 1010... pattern
    for (int i = 0; i < 4; ++i) input.push_back(true);                // tail = 1111
    ParseResult r = run_spec(spec, input);
    ASSERT_EQ(r.outcome, ParseOutcome::Accepted) << "len=" << len;
    ASSERT_TRUE(r.dict.count(1)) << "len=" << len;
    EXPECT_EQ(r.dict.at(1).size(), body_bits) << "len=" << len;
    for (int i = 0; i < body_bits; ++i)
      EXPECT_EQ(r.dict.at(1).get(i), i % 2 == 0) << "len=" << len << " bit " << i;
    EXPECT_EQ(r.dict.at(2).to_u64(), 0xfu) << "len=" << len;
  }
}

TEST(VarbitEdge, InputEndingInsideVarbitRejects) {
  ParserSpec spec = odd_varbit_spec();
  // len = 7 wants 15 body bits; supply only 5.
  BitVec input;
  for (int i = 0; i < 3; ++i) input.push_back(true);
  for (int i = 0; i < 5; ++i) input.push_back(false);
  EXPECT_EQ(run_spec(spec, input).outcome, ParseOutcome::Rejected);
}

/// Keyed on 4 lookahead bits that are never extracted.
ParserSpec lookahead_spec() {
  SpecBuilder b("lookahead");
  b.field("head", 4).field("rest", 4);
  b.state("start")
      .extract("head")
      .select({SpecBuilder::lookahead(0, 4)})
      .when_exact(0xf, "take")
      .otherwise("accept");
  b.state("take").extract("rest").otherwise("accept");
  return b.build().value();
}

TEST(LookaheadEdge, TruncatedMidLookaheadRejects) {
  ParserSpec spec = lookahead_spec();
  // 4 head bits + only 2 of the 4 lookahead bits: key evaluation fails.
  BitVec truncated = BitVec::from_u64(0b110011, 6);
  EXPECT_EQ(run_spec(spec, truncated).outcome, ParseOutcome::Rejected);
  // With all 4 lookahead bits present the same prefix accepts.
  BitVec full = BitVec::from_u64(0b11001111, 8);
  ParseResult r = run_spec(spec, full);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  ASSERT_TRUE(r.dict.count(1));
  EXPECT_EQ(r.dict.at(1).to_u64(), 0xfu);
}

TEST(LookaheadEdge, ImplSideTruncationParity) {
  // Impl program keyed on lookahead: same reject-on-truncation semantics,
  // and the compiled matcher path agrees bit-for-bit.
  TcamProgram p;
  p.fields = {Field{"head", 4, false}, Field{"rest", 4, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 0, 4}}};
  p.entries.push_back(
      TcamEntry{0, 0, 0, 0xf, 0xf, {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 0, 1, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  CompiledMatcher m(p);
  for (int bits = 0; bits < 10; ++bits) {
    BitVec input;
    for (int i = 0; i < bits; ++i) input.push_back(true);
    ParseResult scalar = run_impl(p, input);
    ParseResult fast = run_impl(m, input);
    EXPECT_EQ(scalar.outcome, fast.outcome) << bits;
    EXPECT_EQ(scalar.dict, fast.dict) << bits;
    // < 4 bits: lookahead fails -> reject. >= 8: both extracts fit.
    if (bits < 4) EXPECT_EQ(scalar.outcome, ParseOutcome::Rejected) << bits;
    if (bits >= 8) EXPECT_EQ(scalar.outcome, ParseOutcome::Accepted) << bits;
  }
}

TEST(ExhaustedEdge, SpecAndImplAgreeAtLoopBound) {
  ParserSpec spec = mpls_loop();
  // Impl mirror of the loop: 1-bit key on label's bottom bit (lookahead
  // offset 7 before the 8-bit extract happens — match-then-extract).
  TcamProgram p;
  p.fields = {Field{"label", 8, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 7, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 1, 1, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 0, 1, 0, 1, {ExtractOp{0, -1, 0, 0}}, 0, 0});
  const int K = 4;
  p.max_iterations = K;

  auto stack = [](int labels, bool bottom_last) {
    BitVec v;
    for (int l = 0; l < labels; ++l)
      for (int b = 0; b < 8; ++b)
        v.push_back(b == 7 && bottom_last && l == labels - 1);
    return v;
  };

  // K - 1 labels with a bottom bit: accepted by both within the bound.
  {
    BitVec ok = stack(K - 1, true);
    ParseResult s = run_spec(spec, ok, K);
    ParseResult i = run_impl(p, ok);
    EXPECT_EQ(s.outcome, ParseOutcome::Accepted);
    EXPECT_EQ(i.outcome, ParseOutcome::Accepted);
    EXPECT_EQ(s.dict, i.dict);
  }

  // A stack deeper than K never-bottom labels: both sides exhaust, and
  // coverage records the exhaustion on both sides.
  {
    BitVec deep = stack(2 * K, false);
    CoverageMap cov = CoverageMap::for_pair(spec, p);
    ParseResult s = run_spec(spec, deep, K, &cov);
    ParseResult i = run_impl(p, deep, &cov);
    EXPECT_EQ(s.outcome, ParseOutcome::Exhausted);
    EXPECT_EQ(i.outcome, ParseOutcome::Exhausted);
    EXPECT_TRUE(equivalent(s, i));
    EXPECT_EQ(cov.spec_exhausted, 1);
    EXPECT_EQ(cov.impl_exhausted, 1);
    // The compiled-matcher path exhausts identically.
    CompiledMatcher m(p);
    ParseResult fast = run_impl(m, deep);
    EXPECT_EQ(fast.outcome, ParseOutcome::Exhausted);
    EXPECT_EQ(fast.dict, i.dict);
    EXPECT_EQ(fast.iterations, i.iterations);
  }

  // Exactly at the boundary: bottom-of-stack on iteration K-1 accepts;
  // needing iteration K exhausts. The off-by-one both interpreters must
  // agree on.
  {
    BitVec boundary = stack(K, true);  // bottom bit on the K-th label
    ParseResult s = run_spec(spec, boundary, K);
    ParseResult i = run_impl(p, boundary);
    EXPECT_EQ(s.outcome, i.outcome);
  }
}

}  // namespace
}  // namespace parserhawk
