#include "sim/interp.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::mpls_loop;
using testing::spec1;
using testing::spec2;

BitVec bits(std::uint64_t value, int width) { return BitVec::from_u64(value, width); }

TEST(RunSpec, Spec1ExtractsBothFields) {
  ParseResult r = run_spec(spec1(), bits(0xAB, 8));
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  ASSERT_TRUE(r.dict.count(0));
  ASSERT_TRUE(r.dict.count(1));
  EXPECT_EQ(r.dict.at(0).to_u64(), 0xAu);
  EXPECT_EQ(r.dict.at(1).to_u64(), 0xBu);
  EXPECT_EQ(r.bits_consumed, 8);
}

TEST(RunSpec, Spec2ConditionalExtract) {
  // field0 = 0b0xxx -> also extract field1.
  ParseResult with = run_spec(spec2(), bits(0x2B, 8));
  EXPECT_EQ(with.outcome, ParseOutcome::Accepted);
  EXPECT_TRUE(with.dict.count(1));
  // field0 = 0b1xxx -> accept without field1.
  ParseResult without = run_spec(spec2(), bits(0xAB, 8));
  EXPECT_EQ(without.outcome, ParseOutcome::Accepted);
  EXPECT_FALSE(without.dict.count(1));
  EXPECT_EQ(without.bits_consumed, 4);
}

TEST(RunSpec, ShortInputRejectsAtomically) {
  ParseResult r = run_spec(spec1(), bits(0xA, 4));
  EXPECT_EQ(r.outcome, ParseOutcome::Rejected);
  EXPECT_TRUE(r.dict.count(0));   // field0 completed
  EXPECT_FALSE(r.dict.count(1));  // field1 never recorded
}

TEST(RunSpec, EmptyInputRejectsWithEmptyDict) {
  ParseResult r = run_spec(spec1(), BitVec{});
  EXPECT_EQ(r.outcome, ParseOutcome::Rejected);
  EXPECT_TRUE(r.dict.empty());
}

TEST(RunSpec, Figure3Dispatch) {
  // tranKey 15 -> N1 (extracts n1 next 4 bits).
  ParseResult r = run_spec(figure3(), bits(0xF7, 8));
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.at(1).to_u64(), 0x7u);
  // tranKey 14 -> N2.
  r = run_spec(figure3(), bits(0xE5, 8));
  EXPECT_EQ(r.dict.at(2).to_u64(), 0x5u);
  // tranKey 0 -> default accept, nothing else extracted.
  r = run_spec(figure3(), bits(0x0F, 8));
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.size(), 1u);
}

TEST(RunSpec, PriorityFirstMatchWins) {
  SpecBuilder b("prio");
  b.field("k", 4).field("x", 4);
  b.state("s")
      .extract("k")
      .select({b.whole("k")})
      .when(0b1000, 0b1000, "accept")   // any MSB=1
      .when_exact(0b1111, "reject")     // shadowed by the rule above
      .otherwise("accept");
  ParserSpec spec = b.build().value();
  ParseResult r = run_spec(spec, bits(0xF, 4));
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);  // first rule won
}

TEST(RunSpec, MplsLoopIteratesUntilBottomOfStack) {
  // Three labels: two with BOS=0, last with BOS=1, then accept.
  BitVec input;
  input.append_u64(0x10, 8);  // bos=0
  input.append_u64(0x20, 8);  // bos=0
  input.append_u64(0x31, 8);  // bos=1
  ParseResult r = run_spec(mpls_loop(), input);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.at(0).to_u64(), 0x31u);  // last label retained
  EXPECT_EQ(r.bits_consumed, 24);
}

TEST(RunSpec, LoopBoundExhausts) {
  // All labels BOS=0: parser loops until K and reports Exhausted.
  BitVec input;
  for (int i = 0; i < 100; ++i) input.append_u64(0x10, 8);
  ParseResult r = run_spec(mpls_loop(), input, /*max_iterations=*/8);
  EXPECT_EQ(r.outcome, ParseOutcome::Exhausted);
}

TEST(RunSpec, MissingKeyFieldRejects) {
  // State selects on a field never extracted.
  ParserSpec s = spec2();
  s.states[0].extracts.clear();
  ParseResult r = run_spec(s, bits(0xAB, 8));
  EXPECT_EQ(r.outcome, ParseOutcome::Rejected);
}

TEST(RunSpec, NoMatchingRuleRejects) {
  SpecBuilder b("nodefault");
  b.field("k", 2);
  b.state("s").extract("k").select({b.whole("k")}).when_exact(3, "accept");
  ParserSpec spec = b.build().value();
  EXPECT_EQ(run_spec(spec, bits(0b11, 2)).outcome, ParseOutcome::Accepted);
  EXPECT_EQ(run_spec(spec, bits(0b01, 2)).outcome, ParseOutcome::Rejected);
}

TEST(RunSpec, LookaheadKey) {
  SpecBuilder b("la");
  b.field("f", 8);
  b.state("s")
      .select({SpecBuilder::lookahead(0, 4)})
      .when_exact(0xA, "take")
      .otherwise("accept");
  b.state("take").extract("f").otherwise("accept");
  ParserSpec spec = b.build().value();
  ParseResult hit = run_spec(spec, bits(0xAB, 8));
  EXPECT_TRUE(hit.dict.count(0));
  ParseResult miss = run_spec(spec, bits(0x1B, 8));
  EXPECT_FALSE(miss.dict.count(0));
  EXPECT_EQ(miss.outcome, ParseOutcome::Accepted);
}

TEST(RunSpec, VarbitExtractUsesLengthField) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("payload", 64);
  b.state("s").extract("len").extract_var("payload", "len", 4, 0).otherwise("accept");
  ParserSpec spec = b.build().value();
  // len = 2 -> payload is 8 bits.
  BitVec input;
  input.append_u64(2, 4);
  input.append_u64(0xAB, 8);
  ParseResult r = run_spec(spec, input);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.at(1).size(), 8);
  EXPECT_EQ(r.dict.at(1).to_u64(), 0xABu);
}

TEST(RunSpec, VarbitLengthClampsToMaxWidth) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("payload", 8);
  b.state("s").extract("len").extract_var("payload", "len", 4, 0).otherwise("accept");
  ParserSpec spec = b.build().value();
  BitVec input;
  input.append_u64(15, 4);  // 60 bits requested, clamped to 8
  input.append_u64(0xCD, 8);
  ParseResult r = run_spec(spec, input);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.at(1).size(), 8);
}

// ---- Impl interpreter ----

TcamProgram impl_for_spec2() {
  TcamProgram p;
  p.name = "impl2";
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

TEST(RunImpl, MatchesSpec2OnBothBranches) {
  TcamProgram p = impl_for_spec2();
  ParserSpec s = spec2();
  for (std::uint64_t v = 0; v < 256; ++v) {
    BitVec input = bits(v, 8);
    EXPECT_TRUE(equivalent(run_spec(s, input), run_impl(p, input))) << "input=" << v;
  }
}

TEST(RunImpl, NoMatchingRowRejects) {
  TcamProgram p = impl_for_spec2();
  p.entries.pop_back();  // remove the field0[0]!=0 row
  ParseResult r = run_impl(p, bits(0xAB, 8));
  EXPECT_EQ(r.outcome, ParseOutcome::Rejected);
}

TEST(RunImpl, LookaheadRow) {
  // Single row: matches lookahead nibble 0xA, extracts both fields at once.
  TcamProgram p;
  p.fields = {Field{"f0", 4, false}, Field{"f1", 4, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 0, 4}}};
  p.entries.push_back(
      TcamEntry{0, 0, 0, 0xA, 0xF, {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 0, 1, 0, 0, {}, 0, kAccept});

  ParseResult hit = run_impl(p, bits(0xAB, 8));
  EXPECT_EQ(hit.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(hit.dict.at(0).to_u64(), 0xAu);
  EXPECT_EQ(hit.dict.at(1).to_u64(), 0xBu);

  ParseResult miss = run_impl(p, bits(0x1B, 8));
  EXPECT_EQ(miss.outcome, ParseOutcome::Accepted);
  EXPECT_TRUE(miss.dict.empty());
}

TEST(RunImpl, LoopingSingleEntryMpls) {
  // One TCAM row loops over MPLS labels until bottom-of-stack (the paper's
  // single-table looping example, §3.1).
  TcamProgram p;
  p.fields = {Field{"label", 8, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 7, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 1, {ExtractOp{0, -1, 0, 0}}, 0, 0});  // bos=0: loop
  p.entries.push_back(TcamEntry{0, 0, 1, 1, 1, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  p.max_iterations = 64;

  BitVec input;
  input.append_u64(0x10, 8);
  input.append_u64(0x20, 8);
  input.append_u64(0x31, 8);
  ParseResult r = run_impl(p, input);
  EXPECT_EQ(r.outcome, ParseOutcome::Accepted);
  EXPECT_EQ(r.dict.at(0).to_u64(), 0x31u);
}

TEST(RunImpl, ExhaustsAtIterationBound) {
  TcamProgram p;
  p.fields = {Field{"f", 4, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {}, 0, 0});  // self-loop, no extraction
  p.max_iterations = 5;
  ParseResult r = run_impl(p, bits(0, 4));
  EXPECT_EQ(r.outcome, ParseOutcome::Exhausted);
  EXPECT_EQ(r.iterations, 5);
}

TEST(Equivalent, ComparesDictOnlyWhenAccepted) {
  ParseResult a, b;
  a.outcome = b.outcome = ParseOutcome::Rejected;
  a.dict[0] = bits(1, 4);
  EXPECT_TRUE(equivalent(a, b));
  a.outcome = b.outcome = ParseOutcome::Accepted;
  EXPECT_FALSE(equivalent(a, b));
  b.dict[0] = bits(1, 4);
  EXPECT_TRUE(equivalent(a, b));
  b.outcome = ParseOutcome::Rejected;
  EXPECT_FALSE(equivalent(a, b));
}

TEST(OutputDictToString, NamesFields) {
  OutputDict d;
  d[0] = bits(0xA, 4);
  std::vector<Field> fields = {Field{"etherType", 4, false}};
  EXPECT_EQ(to_string(d, fields), "{etherType=0b1010}");
}

}  // namespace
}  // namespace parserhawk
