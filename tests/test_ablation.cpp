// Correctness of every optimization configuration: each Opt1-Opt7 flag
// changes only the search strategy, never the semantics of the output.
// Every single-flag-off configuration (and the all-off naive mode on small
// programs) must still produce verified, equivalent implementations.
#include <gtest/gtest.h>

#include "helpers.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "synth/compiler.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::spec2;

void expect_correct(const ParserSpec& spec, const HwProfile& hw, const SynthOptions& opts,
                    const std::string& what) {
  CompileResult r = compile(spec, hw, opts);
  ASSERT_TRUE(r.ok()) << what << ": " << to_string(r.status) << " " << r.reason;
  DiffTestOptions dt;
  dt.samples = 120;
  dt.max_iterations = r.program.max_iterations;
  auto mismatch = differential_test(r.reference, r.program, dt);
  EXPECT_FALSE(mismatch.has_value()) << what << " input " << mismatch->input.to_string();
}

struct Toggle {
  std::string name;
  bool SynthOptions::* member;
};

const std::vector<Toggle>& toggles() {
  static const std::vector<Toggle> t = {
      {"opt1", &SynthOptions::opt1_spec_guided_keys},
      {"opt2", &SynthOptions::opt2_bitwidth_min},
      {"opt4", &SynthOptions::opt4_constant_synthesis},
      {"opt5", &SynthOptions::opt5_key_grouping},
      {"opt6", &SynthOptions::opt6_varbit_as_fixed},
      {"opt7", &SynthOptions::opt7_parallel},
  };
  return t;
}

class SingleOptOff : public ::testing::TestWithParam<int> {};

TEST_P(SingleOptOff, Figure3StillCorrectOnTofino) {
  const Toggle& t = toggles()[static_cast<std::size_t>(GetParam())];
  SynthOptions opts;
  opts.*(t.member) = false;
  opts.timeout_sec = 90;
  expect_correct(figure3(), tofino(), opts, t.name + " off, tofino");
}

TEST_P(SingleOptOff, Spec2StillCorrectOnIpu) {
  const Toggle& t = toggles()[static_cast<std::size_t>(GetParam())];
  SynthOptions opts;
  opts.*(t.member) = false;
  opts.timeout_sec = 90;
  expect_correct(spec2(), ipu(), opts, t.name + " off, ipu");
}

INSTANTIATE_TEST_SUITE_P(Toggles, SingleOptOff, ::testing::Range(0, 6));

TEST(Ablation, Opt3OffUsesNaiveGlobalPathCorrectly) {
  SynthOptions opts;
  opts.opt3_preallocate = false;
  opts.timeout_sec = 120;
  expect_correct(spec2(), tofino(), opts, "opt3 off (global encoding)");
}

TEST(Ablation, Opt4OffMatchesOpt4OnResources) {
  // Constant synthesis accelerates the search; the minimal entry count is
  // a property of the program, not of the search strategy.
  SynthOptions fast;
  SynthOptions slow;
  slow.opt4_constant_synthesis = false;
  fast.timeout_sec = slow.timeout_sec = 90;
  CompileResult a = compile(figure3(), tofino(), fast);
  CompileResult b = compile(figure3(), tofino(), slow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.usage.tcam_entries, b.usage.tcam_entries);
}

TEST(Ablation, Opt5OffStillFindsNarrowKeySolutions) {
  // Without grouping the solver must discover the relevant bits itself
  // under the popcount bound.
  HwProfile hw = parametrized(/*key=*/2, /*lookahead=*/32, /*extract=*/64);
  SynthOptions opts;
  opts.opt5_key_grouping = false;
  opts.timeout_sec = 120;
  expect_correct(figure3(), hw, opts, "opt5 off on a 2-bit-key device");
}

TEST(Ablation, VarbitRequiresRestorationRegardlessOfOpt6) {
  // With opt6 on, varbit is modeled as fixed during synthesis and restored
  // after; the differential test against the *varbit* reference is the
  // proof that restoration worked.
  SynthOptions opts;
  opts.timeout_sec = 90;
  expect_correct(suite::ipv4_options(), tofino(), opts, "varbit with opt6");
}

TEST(Ablation, SearchSpaceShrinksWithOpt4) {
  SynthOptions with;
  SynthOptions without;
  without.opt4_constant_synthesis = false;
  with.timeout_sec = without.timeout_sec = 90;
  CompileResult a = compile(figure3(), tofino(), with);
  CompileResult b = compile(figure3(), tofino(), without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a.stats.search_space_bits, b.stats.search_space_bits);
}

}  // namespace
}  // namespace parserhawk
