// The protocol-zoo corpus gate (DESIGN.md §10): every examples/specs
// parser is synthesized, its deterministic trace is round-tripped through
// a pcap and replayed alongside the generated packets through the batched
// differential engine, and the run must light up 100% of the spec's
// transition rules — a failure names the rules that never fired. Also
// covers the spec registry and thread-count invariance of pcap-fed
// replay (same verdict, mismatch index and coverage at 1/4/8 threads).
#include "suite/corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "hw/profile.h"
#include "obs/metrics.h"
#include "sim/pcap.h"
#include "sim/tracegen.h"

namespace parserhawk {
namespace {

const char* kZoo[] = {"geneve", "gre",  "gtp",         "icmp_zoo", "ipv6_exthdr",
                      "mpls_stack",     "tcp_options", "vlan",     "vlan_qinq",
                      "vxlan"};

TEST(CorpusRegistry, FindsTheSourceTreeSpecs) {
  std::string dir = corpus::specs_dir();
  EXPECT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::string> names = corpus::list_specs();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name : kZoo)
    EXPECT_TRUE(std::binary_search(names.begin(), names.end(), std::string(name)))
        << name << " missing from " << dir;
}

TEST(CorpusRegistry, LoadsByNameAndByPath) {
  auto by_name = corpus::load_spec("vlan");
  ASSERT_TRUE(by_name.ok()) << by_name.error().to_string();
  EXPECT_EQ(by_name->name, "vlan");
  auto by_path = corpus::load_spec(corpus::specs_dir() + "/vlan.hawk");
  ASSERT_TRUE(by_path.ok());
  EXPECT_EQ(by_path->name, "vlan");
  auto missing = corpus::load_spec("no_such_spec");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, "corpus-io");
}

TEST(CorpusRegistry, EnvironmentOverrideWins) {
  setenv("PARSERHAWK_SPECS_DIR", "/nonexistent/zoo", 1);
  EXPECT_EQ(corpus::specs_dir(), "/nonexistent/zoo");
  EXPECT_TRUE(corpus::list_specs().empty());
  unsetenv("PARSERHAWK_SPECS_DIR");
}

/// The tentpole: synthesize every zoo spec, replay its generated trace
/// plus the same trace round-tripped through a pcap, and demand full
/// spec-rule coverage. publish=true so the cov.corpus.<spec>.* gauges
/// the CI trace check asserts on are exercised here too.
///
/// Compiles run with --verifier=race so the sampled cov.corpus.* coverage
/// is cross-checked against the bisim sweep's *exhaustive* reachability
/// (DESIGN.md §13): every rule the replay claims to have hit must be
/// provably reachable, and the verify.bisim.<spec>.* gauges must report
/// 100% of states/rules with no padding rows left dark.
TEST(CorpusReplay, EveryZooSpecCoversEveryRule) {
  obs::Metrics::get().reset();
  obs::Metrics::get().enable();
  std::vector<std::string> names = corpus::list_specs();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    auto spec = corpus::load_spec(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.error().to_string();

    corpus::ReplayOptions opts;
    opts.synth.timeout_sec = 120;
    opts.synth.verifier = VerifierKind::Race;
    opts.batch.threads = 2;
    opts.batch.chunk = 16;
    // Replay path: the generated trace, serialized and re-read as a pcap.
    TraceGenReport trace = generate_trace(*spec, opts.trace);
    auto capture = pcap::parse(pcap::write(trace.packets));
    ASSERT_TRUE(capture.ok()) << name << ": " << capture.error().to_string();
    ASSERT_EQ(capture->packets.size(), trace.packets.size()) << name;
    opts.extra_packets = capture->to_bitvecs();

    corpus::ReplayReport report = corpus::replay_spec(name, *spec, opts);
    ASSERT_TRUE(report.compiled.ok()) << name << ": " << report.detail;
    EXPECT_TRUE(report.ok) << name << ": " << report.detail;
    EXPECT_TRUE(report.coverage.all_rules_covered())
        << name << ": uncovered rules: " << report.coverage.uncovered_rules(*spec);
    EXPECT_EQ(report.coverage.states_hit(), report.coverage.states_total()) << name;
    EXPECT_FALSE(report.batch.mismatch.has_value()) << name;
    EXPECT_GE(report.batch.agree, static_cast<std::int64_t>(trace.packets.size()) * 2) << name;

    auto& m = obs::Metrics::get();
    EXPECT_GT(m.gauge("cov.corpus." + name + ".rules_total"), 0) << name;
    EXPECT_EQ(m.gauge("cov.corpus." + name + ".rules_hit"),
              m.gauge("cov.corpus." + name + ".rules_total"))
        << name;

    // Exhaustive reachability from the race's bisim sweep: the report must
    // exist, claim every state/rule/TCAM row, and agree with both the
    // sampled coverage totals and the published verify.bisim.* gauges.
    ASSERT_TRUE(report.compiled.reach_valid) << name;
    EXPECT_EQ(report.compiled.verifier.rfind("race:", 0), 0u) << report.compiled.verifier;
    const verify2::ReachSet& reach = report.compiled.reach;
    EXPECT_EQ(reach.states_reachable(), reach.states_total()) << name;
    EXPECT_EQ(reach.rules_reachable(), reach.rules_total()) << name;
    EXPECT_EQ(reach.rows_reachable(), reach.rows_total())
        << name << ": TCAM rows left provably dark: " << reach.unreachable_rows().size();
    EXPECT_EQ(static_cast<std::int64_t>(reach.rules_total()),
              m.gauge("cov.corpus." + name + ".rules_total"))
        << name;
    EXPECT_EQ(static_cast<std::int64_t>(reach.states_total()),
              m.gauge("cov.corpus." + name + ".states_total"))
        << name;
    EXPECT_EQ(m.gauge("verify.bisim." + name + ".rules_reachable"),
              m.gauge("verify.bisim." + name + ".rules_total"))
        << name;
    EXPECT_EQ(m.gauge("verify.bisim." + name + ".states_reachable"),
              m.gauge("verify.bisim." + name + ".states_total"))
        << name;
    EXPECT_GT(m.gauge("verify.bisim." + name + ".rows_total"), 0) << name;
  }
  obs::Metrics::get().disable();
  obs::Metrics::get().reset();
}

/// Satellite: a pcap-fed batch is thread-count invariant even when the
/// implementation is broken — verdict, first-mismatch index, outcome
/// tallies and coverage counts are identical at 1, 4 and 8 threads.
TEST(CorpusReplay, PcapFedBatchesAreThreadCountInvariant) {
  auto spec = corpus::load_spec("icmp_zoo");
  ASSERT_TRUE(spec.ok());
  SynthOptions so;
  so.timeout_sec = 120;
  CompileResult cr = compile(*spec, tofino(), so);
  ASSERT_TRUE(cr.ok()) << cr.reason;

  TraceGenOptions tg;
  tg.random_walks = 128;
  TraceGenReport trace = generate_trace(*spec, tg);
  auto capture = pcap::parse(pcap::write(trace.packets));
  ASSERT_TRUE(capture.ok());
  std::vector<BitVec> packets = capture->to_bitvecs();

  // Corrupt the program so the replay disagrees somewhere mid-corpus.
  TcamProgram bad = cr.program;
  BatchResult r1;
  bool broke_it = false;
  for (std::size_t e = 0; e < bad.entries.size() && !broke_it; ++e) {
    TcamProgram candidate = cr.program;
    candidate.entries[e].next_state =
        candidate.entries[e].next_state == kReject ? kAccept : kReject;
    BatchOptions b1;
    b1.threads = 1;
    r1 = run_batch(*spec, candidate, packets, b1);
    if (r1.mismatch.has_value()) {
      bad = candidate;
      broke_it = true;
    }
  }
  ASSERT_TRUE(broke_it) << "no single-entry corruption produced a mismatch";

  for (int threads : {4, 8}) {
    BatchOptions bn;
    bn.threads = threads;
    bn.chunk = 8;
    BatchResult rn = run_batch(*spec, bad, packets, bn);
    ASSERT_TRUE(rn.mismatch.has_value()) << threads;
    EXPECT_EQ(r1.first_mismatch, rn.first_mismatch) << threads;
    EXPECT_EQ(r1.mismatch->input, rn.mismatch->input) << threads;
    EXPECT_EQ(r1.evaluated, rn.evaluated) << threads;
    EXPECT_EQ(r1.agree, rn.agree) << threads;
    for (int o = 0; o < 3; ++o) {
      EXPECT_EQ(r1.spec_outcomes[o], rn.spec_outcomes[o]) << threads;
      EXPECT_EQ(r1.impl_outcomes[o], rn.impl_outcomes[o]) << threads;
    }
    EXPECT_EQ(r1.coverage.state_hits, rn.coverage.state_hits) << threads;
    EXPECT_EQ(r1.coverage.rule_hits, rn.coverage.rule_hits) << threads;
    EXPECT_EQ(r1.coverage.row_hits, rn.coverage.row_hits) << threads;
  }

  // And a clean run over the same pcap corpus: identical coverage too.
  BatchOptions b1;
  b1.threads = 1;
  BatchResult clean1 = run_batch(*spec, cr.program, packets, b1);
  EXPECT_FALSE(clean1.mismatch.has_value());
  for (int threads : {4, 8}) {
    BatchOptions bn;
    bn.threads = threads;
    bn.chunk = 8;
    BatchResult cleann = run_batch(*spec, cr.program, packets, bn);
    EXPECT_EQ(clean1.agree, cleann.agree) << threads;
    EXPECT_EQ(clean1.coverage.rule_hits, cleann.coverage.rule_hits) << threads;
    EXPECT_EQ(clean1.coverage.row_hits, cleann.coverage.row_hits) << threads;
  }
}

/// Satellite (DESIGN.md §12): the wide-kernel level is as unobservable as
/// the thread count. A full thread × SIMD matrix of replay_spec over two
/// zoo specs — one compile each, shared via ReplayOptions::precompiled —
/// must publish bit-identical cov.corpus.* gauges and batch tallies in
/// every cell.
TEST(CorpusReplay, ThreadBySimdMatrixPublishesIdenticalGauges) {
  std::vector<SimdLevel> levels = {SimdLevel::Scalar, SimdLevel::Swar};
  if (static_cast<int>(max_supported_level()) > static_cast<int>(SimdLevel::Swar))
    levels.push_back(max_supported_level());

  for (const char* name : {"vlan", "icmp_zoo"}) {
    auto spec = corpus::load_spec(name);
    ASSERT_TRUE(spec.ok()) << name;
    SynthOptions so;
    so.timeout_sec = 120;
    CompileResult cr = compile(*spec, tofino(), so);
    ASSERT_TRUE(cr.ok()) << name << ": " << cr.reason;

    const std::string prefix = std::string("cov.corpus.") + name + ".";
    const char* kGauges[] = {"states_hit", "states_total", "rules_hit", "rules_total"};
    bool have_baseline = false;
    std::int64_t expect_gauges[4] = {0, 0, 0, 0};
    std::int64_t expect_agree = 0;
    for (int threads : {1, 4, 8}) {
      for (SimdLevel level : levels) {
        obs::Metrics::get().reset();
        obs::Metrics::get().enable();
        corpus::ReplayOptions opts;
        opts.precompiled = &cr;
        opts.batch.threads = threads;
        opts.batch.chunk = 8;
        opts.batch.simd = level;
        corpus::ReplayReport report = corpus::replay_spec(name, *spec, opts);
        ASSERT_TRUE(report.ok) << name << " threads=" << threads << " level="
                               << to_string(level) << ": " << report.detail;
        auto& m = obs::Metrics::get();
        for (int gi = 0; gi < 4; ++gi) {
          std::int64_t got = m.gauge(prefix + kGauges[gi]);
          if (!have_baseline)
            expect_gauges[gi] = got;
          else
            EXPECT_EQ(expect_gauges[gi], got) << name << "." << kGauges[gi]
                                              << " threads=" << threads
                                              << " level=" << to_string(level);
        }
        if (!have_baseline)
          expect_agree = report.batch.agree;
        else
          EXPECT_EQ(expect_agree, report.batch.agree)
              << name << " threads=" << threads << " level=" << to_string(level);
        have_baseline = true;
        obs::Metrics::get().disable();
      }
    }
    obs::Metrics::get().reset();
  }
}

/// The trace generator's own contract: deterministic in (spec, seed),
/// byte-aligned packets, and no missed rules on the zoo.
TEST(TraceGen, DeterministicAndByteAligned) {
  auto spec = corpus::load_spec("vlan");
  ASSERT_TRUE(spec.ok());
  TraceGenReport a = generate_trace(*spec);
  TraceGenReport b = generate_trace(*spec);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i], b.packets[i]) << i;
    EXPECT_EQ(a.packets[i].size() % 8, 0) << i;
  }
  EXPECT_TRUE(a.missed_rules.empty());
  TraceGenOptions other;
  other.seed = 0xdead;
  TraceGenReport c = generate_trace(*spec, other);
  EXPECT_EQ(a.packets.size(), c.packets.size());  // same shape, different bits
}

}  // namespace
}  // namespace parserhawk
