// The line-rate simulation engine: compiled-matcher parity against the
// scalar row scan, BatchRunner determinism across thread counts,
// cooperative cancellation, coverage accounting, and the sim.batch.* /
// cov.* metrics invariants.
#include "sim/batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>

#include "helpers.h"
#include "obs/metrics.h"
#include "sim/testgen.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "tcam/matcher.h"

namespace parserhawk {
namespace {

using testing::mpls_loop;
using testing::spec2;

/// The hand-built correct implementation of spec2 (Table 1).
TcamProgram spec2_impl() {
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

/// A random single-state ternary table over a `kw`-bit key: the matcher
/// fuzzing substrate. Rows get random (value, mask) pairs and sequential
/// priorities; roughly one in four rows is a catch-all.
TcamProgram random_table(Rng& rng, int kw, int rows) {
  TcamProgram p;
  p.fields = {Field{"f", kw, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, kw}}};
  std::uint64_t kmask = kw >= 64 ? ~0ull : ((1ull << kw) - 1);
  for (int r = 0; r < rows; ++r) {
    TcamEntry e;
    e.table = 0;
    e.state = 0;
    e.entry = r;
    e.mask = rng.chance(0.25) ? 0 : (rng() & kmask);
    e.value = rng() & e.mask;
    e.next_state = kAccept;
    p.entries.push_back(std::move(e));
  }
  return p;
}

/// First matching row by the scalar scan — the oracle for first_match.
int scan_winner(const TcamProgram& p, int table, int state, std::uint64_t key) {
  for (const TcamEntry* row : p.rows_of(table, state))
    if (row->matches(key)) return static_cast<int>(row - p.entries.data());
  return -1;
}

/// Every wide-kernel level this build can actually run (always includes
/// the forced-scalar path and the portable SWAR path).
std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::Scalar, SimdLevel::Swar};
  if (static_cast<int>(max_supported_level()) >= static_cast<int>(SimdLevel::Avx2))
    levels.push_back(SimdLevel::Avx2);
  if (static_cast<int>(max_supported_level()) >= static_cast<int>(SimdLevel::Avx512))
    levels.push_back(SimdLevel::Avx512);
  return levels;
}

TEST(CompiledMatcher, AgreesWithScalarScanOnRandomTables) {
  Rng rng(0xabc);
  for (int trial = 0; trial < 50; ++trial) {
    int kw = 1 + static_cast<int>(rng.below(24));
    int rows = 1 + static_cast<int>(rng.below(12));
    TcamProgram p = random_table(rng, kw, rows);
    CompiledMatcher m(p);
    const CompiledMatcher::Group* g = m.find(0, 0);
    ASSERT_NE(g, nullptr);
    std::uint64_t kmask = (1ull << kw) - 1;
    for (int k = 0; k < 200; ++k) {
      std::uint64_t key = rng() & kmask;
      int scan = scan_winner(p, 0, 0, key);
      int win = CompiledMatcher::first_match(*g, key);
      int fast = win < 0 ? -1 : g->entry_index[static_cast<std::size_t>(win)];
      ASSERT_EQ(scan, fast) << "kw=" << kw << " rows=" << rows << " key=" << key;
    }
  }
}

TEST(CompiledMatcher, MultiWordGroupsAgreeWithScan) {
  // > 64 rows forces the multi-word live-bitmap path.
  Rng rng(0x77);
  TcamProgram p = random_table(rng, 10, 150);
  CompiledMatcher m(p);
  const CompiledMatcher::Group* g = m.find(0, 0);
  ASSERT_NE(g, nullptr);
  ASSERT_GT(g->words, 1);
  for (int k = 0; k < 500; ++k) {
    std::uint64_t key = rng() & 0x3ff;
    int scan = scan_winner(p, 0, 0, key);
    int win = CompiledMatcher::first_match(*g, key);
    ASSERT_EQ(scan, win < 0 ? -1 : g->entry_index[static_cast<std::size_t>(win)]) << "key=" << key;
  }
}

TEST(CompiledMatcher, RespectsPriorityAmongOverlappingRows) {
  TcamProgram p;
  p.fields = {Field{"f", 4, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 4}}};
  // Priorities deliberately inserted out of order; 0b1x1x, 0b1xxx, catch-all.
  p.entries.push_back(TcamEntry{0, 0, 2, 0x0, 0x0, {}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 0, 0, 0xa, 0xa, {}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 0, 1, 0x8, 0x8, {}, 0, kAccept});
  CompiledMatcher m(p);
  const CompiledMatcher::Group* g = m.find(0, 0);
  ASSERT_NE(g, nullptr);
  auto winner = [&](std::uint64_t key) {
    int w = CompiledMatcher::first_match(*g, key);
    return w < 0 ? -1 : g->rows[static_cast<std::size_t>(w)]->entry;
  };
  EXPECT_EQ(winner(0xf), 0);  // matches all three; priority 0 wins
  EXPECT_EQ(winner(0xc), 1);  // 1100: fails 1x1x, matches 1xxx
  EXPECT_EQ(winner(0x3), 2);  // catch-all only
}

TEST(CompiledMatcher, InterpreterPathsBitIdentical) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  CompiledMatcher m(p);
  Rng rng(5);
  DiffTestOptions opts;
  opts.samples = 100;
  for (const BitVec& input : difftest_corpus(spec, opts)) {
    ParseResult a = run_impl(p, input);
    ParseResult b = run_impl(m, input);
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.dict, b.dict);
    EXPECT_EQ(a.bits_consumed, b.bits_consumed);
    EXPECT_EQ(a.iterations, b.iterations);
  }
}

TEST(BatchRunner, CleanRunAgreesOnEverything) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  DiffTestOptions opts;
  opts.samples = 64;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  BatchResult r = run_batch(spec, p, corpus, {});
  EXPECT_EQ(r.submitted, static_cast<std::int64_t>(corpus.size()));
  EXPECT_EQ(r.evaluated, r.submitted);
  EXPECT_EQ(r.skipped, 0);
  EXPECT_EQ(r.agree, r.submitted);
  EXPECT_EQ(r.mismatches, 0);
  EXPECT_EQ(r.first_mismatch, -1);
  EXPECT_FALSE(r.mismatch.has_value());
  EXPECT_EQ(r.spec_outcomes[0] + r.spec_outcomes[1] + r.spec_outcomes[2], r.evaluated);
  EXPECT_EQ(r.impl_outcomes[0] + r.impl_outcomes[1] + r.impl_outcomes[2], r.evaluated);
}

TEST(BatchRunner, SameVerdictAtEveryThreadCount) {
  ParserSpec spec = spec2();
  TcamProgram bad = spec2_impl();
  bad.entries[1].next_state = kReject;  // mismatch somewhere mid-corpus
  DiffTestOptions opts;
  opts.samples = 128;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);

  BatchOptions b1;
  b1.threads = 1;
  BatchResult r1 = run_batch(spec, bad, corpus, b1);
  ASSERT_TRUE(r1.mismatch.has_value());

  for (int threads : {2, 4, 8}) {
    BatchOptions bn;
    bn.threads = threads;
    bn.chunk = 8;
    BatchResult rn = run_batch(spec, bad, corpus, bn);
    ASSERT_TRUE(rn.mismatch.has_value()) << threads;
    EXPECT_EQ(r1.first_mismatch, rn.first_mismatch) << threads;
    EXPECT_EQ(r1.mismatch->input, rn.mismatch->input) << threads;
    EXPECT_EQ(r1.evaluated, rn.evaluated) << threads;
    EXPECT_EQ(r1.agree, rn.agree) << threads;
    for (int o = 0; o < 3; ++o) {
      EXPECT_EQ(r1.spec_outcomes[o], rn.spec_outcomes[o]) << threads;
      EXPECT_EQ(r1.impl_outcomes[o], rn.impl_outcomes[o]) << threads;
    }
    EXPECT_EQ(r1.coverage.state_hits, rn.coverage.state_hits) << threads;
    EXPECT_EQ(r1.coverage.rule_hits, rn.coverage.rule_hits) << threads;
    EXPECT_EQ(r1.coverage.row_hits, rn.coverage.row_hits) << threads;
  }
}

TEST(BatchRunner, MatchesScalarDifferentialTest) {
  ParserSpec spec = spec2();
  TcamProgram bad = spec2_impl();
  std::swap(bad.entries[1].value, bad.entries[2].value);  // branch sense inverted
  DiffTestOptions opts;
  opts.samples = 200;
  auto scalar = differential_test(spec, bad, opts);
  ASSERT_TRUE(scalar.has_value());
  opts.threads = 4;
  BatchResult batched = differential_test_batch(spec, bad, opts);
  ASSERT_TRUE(batched.mismatch.has_value());
  EXPECT_EQ(scalar->input, batched.mismatch->input);
  EXPECT_EQ(scalar->spec_result.outcome, batched.mismatch->spec_result.outcome);
  EXPECT_EQ(scalar->impl_result.outcome, batched.mismatch->impl_result.outcome);
}

TEST(BatchRunner, CancellationSkipsTail) {
  ParserSpec spec = spec2();
  TcamProgram bad = spec2_impl();
  bad.entries[0].next_state = kReject;  // every accept-side input disagrees
  DiffTestOptions opts;
  opts.samples = 512;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  BatchResult r = run_batch(spec, bad, corpus, {});
  ASSERT_TRUE(r.mismatch.has_value());
  EXPECT_GT(r.skipped, 0);
  EXPECT_EQ(r.evaluated + r.skipped, r.submitted);
  // Everything up to the winner was evaluated; the winner is the lowest.
  EXPECT_EQ(r.evaluated, r.first_mismatch + 1);
}

TEST(BatchRunner, StopOnMismatchOffEvaluatesEverything) {
  ParserSpec spec = spec2();
  TcamProgram bad = spec2_impl();
  bad.entries[0].next_state = kReject;
  DiffTestOptions opts;
  opts.samples = 64;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  BatchOptions b;
  b.stop_on_mismatch = false;
  BatchResult r = run_batch(spec, bad, corpus, b);
  EXPECT_EQ(r.evaluated, r.submitted);
  EXPECT_EQ(r.skipped, 0);
  EXPECT_GT(r.mismatches, 1);  // counts them all when not stopping
  EXPECT_FALSE(r.mismatch.has_value());
  EXPECT_EQ(r.first_mismatch, -1);
}

TEST(BatchRunner, RunsOnExternalPool) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  DiffTestOptions opts;
  opts.samples = 64;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  ThreadPool pool(4);
  BatchOptions b;
  b.pool = &pool;
  b.chunk = 4;
  BatchResult r = run_batch(spec, p, corpus, b);
  EXPECT_EQ(r.agree, r.submitted);
}

TEST(Coverage, ExactCountsOnKnownInputs) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  // 0000 1111: field0[0] == 0 -> state1, extract field1, accept.
  BitVec deep = BitVec::from_u64(0x0f, 8);
  // 1000: field0[0] == 1 -> accept straight away.
  BitVec shallow = BitVec::from_u64(0x8, 4);
  BatchResult r = run_batch(spec, p, std::vector<BitVec>{deep, shallow}, {});
  EXPECT_EQ(r.agree, 2);
  ASSERT_EQ(r.coverage.state_hits.size(), 2u);
  EXPECT_EQ(r.coverage.state_hits[0], 2);  // state0 entered by both
  EXPECT_EQ(r.coverage.state_hits[1], 1);  // state1 only by `deep`
  // state0 rule 0 (key==0) once, rule 1 (otherwise) once.
  ASSERT_EQ(r.coverage.rule_hits[0].size(), 2u);
  EXPECT_EQ(r.coverage.rule_hits[0][0], 1);
  EXPECT_EQ(r.coverage.rule_hits[0][1], 1);
  EXPECT_EQ(r.coverage.rules_hit(), 3);  // both state0 rules + state1's otherwise
  EXPECT_TRUE(r.coverage.all_rules_covered());
  // Impl side: row 0 fired twice, rows 1 and 2 once each.
  ASSERT_EQ(r.coverage.row_hits.size(), 3u);
  EXPECT_EQ(r.coverage.row_hits[0], 2);
  EXPECT_EQ(r.coverage.row_hits[1], 1);
  EXPECT_EQ(r.coverage.row_hits[2], 1);
  EXPECT_EQ(r.coverage.rows_hit(), 3);
}

TEST(Coverage, UncoveredRulesAreNamed) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  BatchResult r =
      run_batch(spec, p, std::vector<BitVec>{BitVec::from_u64(0x8, 4)}, {});  // shallow only
  EXPECT_FALSE(r.coverage.all_rules_covered());
  std::string missing = r.coverage.uncovered_rules(spec);
  EXPECT_NE(missing.find("state0"), std::string::npos) << missing;
}

TEST(Coverage, ExhaustionCounted) {
  ParserSpec spec = mpls_loop();
  // A stack of never-bottom labels exhausts the spec-side loop bound.
  BitVec endless;
  for (int i = 0; i < 16 * 8; ++i) endless.push_back(false);
  CoverageMap cov = CoverageMap::for_spec(spec);
  ParseResult r = run_spec(spec, endless, /*max_iterations=*/4, &cov);
  EXPECT_EQ(r.outcome, ParseOutcome::Exhausted);
  EXPECT_EQ(cov.spec_exhausted, 1);
}

TEST(Metrics, BatchAndCoverageInvariantsHold) {
  obs::Metrics::get().reset();
  obs::Metrics::get().enable();
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  DiffTestOptions opts;
  opts.samples = 32;
  differential_test_batch(spec, p, opts);
  auto& m = obs::Metrics::get();
  std::int64_t samples = m.counter("sim.batch.samples");
  EXPECT_GT(samples, 0);
  EXPECT_EQ(m.counter("sim.batch.agree") + m.counter("sim.batch.mismatch"), samples);
  EXPECT_EQ(m.counter("sim.batch.spec.accept") + m.counter("sim.batch.spec.reject") +
                m.counter("sim.batch.spec.exhausted"),
            samples);
  EXPECT_EQ(m.counter("sim.batch.impl.accept") + m.counter("sim.batch.impl.reject") +
                m.counter("sim.batch.impl.exhausted"),
            samples);
  EXPECT_GT(m.gauge("cov.spec.rules_total"), 0);
  EXPECT_LE(m.gauge("cov.spec.rules_hit"), m.gauge("cov.spec.rules_total"));
  EXPECT_LE(m.gauge("cov.spec.states_hit"), m.gauge("cov.spec.states_total"));
  EXPECT_LE(m.gauge("cov.impl.rows_hit"), m.gauge("cov.impl.rows_total"));
  obs::Metrics::get().disable();
  obs::Metrics::get().reset();
}

// The TSan job's main course: batched difftest at 8 threads, small chunks,
// both clean and mismatching runs racing cancellation against workers.
TEST(BatchRunner, EightThreadStress) {
  ParserSpec s2 = spec2();
  TcamProgram good = spec2_impl();
  TcamProgram bad = spec2_impl();
  bad.entries[2].next_state = kReject;
  DiffTestOptions opts;
  opts.samples = 256;
  std::vector<BitVec> corpus = difftest_corpus(s2, opts);
  BatchOptions b;
  b.threads = 8;
  b.chunk = 4;
  BatchResult clean = run_batch(s2, good, corpus, b);
  EXPECT_EQ(clean.agree, clean.submitted);
  BatchResult dirty1 = run_batch(s2, bad, corpus, b);
  BatchResult dirty2 = run_batch(s2, bad, corpus, b);
  ASSERT_TRUE(dirty1.mismatch.has_value());
  EXPECT_EQ(dirty1.first_mismatch, dirty2.first_mismatch);
  EXPECT_EQ(dirty1.evaluated, dirty2.evaluated);
}

// ---- Wide-kernel identity gate (DESIGN.md §12) ------------------------
//
// match_batch must be bit-identical to first_match at every SIMD level,
// for any key width, row count (including >64-row multi-word groups) and
// batch length (including tails shorter than one SIMD lane group).

TEST(WideKernel, MatchBatchIdenticalToFirstMatchAtEveryLevel) {
  Rng rng(0x51d);
  for (int trial = 0; trial < 40; ++trial) {
    // Odd key widths on purpose: shifts and the implicit key mask must
    // agree with the scalar kernel bit-for-bit.
    int kw = 1 + static_cast<int>(rng.below(63));
    int rows = 1 + static_cast<int>(rng.below(40));
    TcamProgram p = random_table(rng, kw, rows);
    CompiledMatcher m(p);
    const CompiledMatcher::Group* g = m.find(0, 0);
    ASSERT_NE(g, nullptr);
    ASSERT_EQ(g->words, 1);
    std::uint64_t kmask = kw >= 64 ? ~0ull : ((1ull << kw) - 1);
    // Batch lengths straddling every tail shape for 4- and 8-wide lanes.
    for (int n : {1, 3, 4, 5, 7, 8, 9, 31}) {
      std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
      for (auto& k : keys) k = rng() & kmask;
      std::vector<int> expect(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i)
        expect[i] = CompiledMatcher::first_match(*g, keys[i]);
      for (SimdLevel level : supported_levels()) {
        std::vector<int> got(keys.size(), -2);
        CompiledMatcher::match_batch(*g, keys.data(), n, got.data(), level);
        ASSERT_EQ(expect, got) << "level=" << to_string(level) << " kw=" << kw
                               << " rows=" << rows << " n=" << n;
      }
    }
  }
}

TEST(WideKernel, MultiWordGroupsFallBackIdentically) {
  // > 64 rows: the wide kernel falls back to per-key first_match, so the
  // identity must hold trivially — pin it anyway.
  Rng rng(0x91e);
  TcamProgram p = random_table(rng, 11, 150);
  CompiledMatcher m(p);
  const CompiledMatcher::Group* g = m.find(0, 0);
  ASSERT_NE(g, nullptr);
  ASSERT_GT(g->words, 1);
  std::vector<std::uint64_t> keys(37);
  for (auto& k : keys) k = rng() & 0x7ff;
  std::vector<int> expect(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    expect[i] = CompiledMatcher::first_match(*g, keys[i]);
  for (SimdLevel level : supported_levels()) {
    std::vector<int> got(keys.size(), -2);
    CompiledMatcher::match_batch(*g, keys.data(), static_cast<int>(keys.size()), got.data(),
                                 level);
    EXPECT_EQ(expect, got) << to_string(level);
  }
}

TEST(WideKernel, ZeroLengthBatchIsANoOp) {
  Rng rng(0x3);
  TcamProgram p = random_table(rng, 8, 5);
  CompiledMatcher m(p);
  const CompiledMatcher::Group* g = m.find(0, 0);
  ASSERT_NE(g, nullptr);
  for (SimdLevel level : supported_levels())
    CompiledMatcher::match_batch(*g, nullptr, 0, nullptr, level);  // must not touch anything
}

TEST(WideKernel, DispatchRespectsEnvAndClampsToCpu) {
  // PH_SIMD=off / scalar force the scalar row scan; unknown or absent
  // values resolve to the best level the CPU supports; a request above
  // the CPU's ceiling clamps down instead of crashing.
  ASSERT_GE(static_cast<int>(max_supported_level()), static_cast<int>(SimdLevel::Swar));
  ::setenv("PH_SIMD", "off", 1);
  EXPECT_EQ(dispatch_level(), SimdLevel::Scalar);
  ::setenv("PH_SIMD", "scalar", 1);
  EXPECT_EQ(dispatch_level(), SimdLevel::Scalar);
  ::setenv("PH_SIMD", "swar", 1);
  EXPECT_EQ(dispatch_level(), SimdLevel::Swar);
  ::setenv("PH_SIMD", "avx512", 1);
  EXPECT_LE(static_cast<int>(dispatch_level()), static_cast<int>(max_supported_level()));
  ::unsetenv("PH_SIMD");
  EXPECT_EQ(dispatch_level(), max_supported_level());
}

TEST(WideKernel, RunImplBatchMatchesScalarInterpreterAndCoverage) {
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  CompiledMatcher m(p);
  DiffTestOptions opts;
  opts.samples = 150;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  std::vector<PacketRef> refs = as_refs(corpus);

  CoverageMap scalar_cov = CoverageMap::for_pair(spec, p);
  std::vector<ParseResult> scalar(corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) scalar[i] = run_impl(m, refs[i], &scalar_cov);

  for (SimdLevel level : supported_levels()) {
    CoverageMap cov = CoverageMap::for_pair(spec, p);
    std::vector<ParseResult> wide(corpus.size());
    run_impl_batch(m, refs.data(), static_cast<int>(refs.size()), wide.data(), &cov, level);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      ASSERT_EQ(scalar[i].outcome, wide[i].outcome) << to_string(level) << " i=" << i;
      ASSERT_EQ(scalar[i].dict, wide[i].dict) << to_string(level) << " i=" << i;
      ASSERT_EQ(scalar[i].bits_consumed, wide[i].bits_consumed) << to_string(level) << " i=" << i;
      ASSERT_EQ(scalar[i].iterations, wide[i].iterations) << to_string(level) << " i=" << i;
    }
    EXPECT_EQ(scalar_cov.row_hits, cov.row_hits) << to_string(level);
    EXPECT_EQ(scalar_cov.impl_exhausted, cov.impl_exhausted) << to_string(level);
  }
}

TEST(WideKernel, BatchRunnerVerdictIdenticalAtEverySimdLevel) {
  ParserSpec spec = spec2();
  TcamProgram good = spec2_impl();
  TcamProgram bad = spec2_impl();
  bad.entries[1].next_state = kReject;
  DiffTestOptions opts;
  opts.samples = 200;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);

  for (const TcamProgram* prog : {&good, &bad}) {
    BatchOptions ref;
    ref.simd = SimdLevel::Scalar;
    BatchResult base = run_batch(spec, *prog, corpus, ref);
    for (SimdLevel level : supported_levels()) {
      for (int chunk : {3, 64}) {  // chunk is also the wide sub-batch width
        BatchOptions b;
        b.simd = level;
        b.chunk = chunk;
        BatchResult r = run_batch(spec, *prog, corpus, b);
        EXPECT_EQ(base.first_mismatch, r.first_mismatch) << to_string(level) << " chunk=" << chunk;
        EXPECT_EQ(base.evaluated, r.evaluated) << to_string(level) << " chunk=" << chunk;
        EXPECT_EQ(base.agree, r.agree) << to_string(level) << " chunk=" << chunk;
        EXPECT_EQ(base.mismatch.has_value(), r.mismatch.has_value()) << to_string(level);
        if (base.mismatch.has_value() && r.mismatch.has_value()) {
          EXPECT_EQ(base.mismatch->input, r.mismatch->input) << to_string(level);
        }
        EXPECT_EQ(base.coverage.state_hits, r.coverage.state_hits) << to_string(level);
        EXPECT_EQ(base.coverage.rule_hits, r.coverage.rule_hits) << to_string(level);
        EXPECT_EQ(base.coverage.row_hits, r.coverage.row_hits) << to_string(level);
        for (int o = 0; o < 3; ++o) {
          EXPECT_EQ(base.spec_outcomes[o], r.spec_outcomes[o]) << to_string(level);
          EXPECT_EQ(base.impl_outcomes[o], r.impl_outcomes[o]) << to_string(level);
        }
      }
    }
  }
}

TEST(WideKernel, ForcedScalarEnvMatchesAutoDispatch) {
  // The PH_SIMD escape hatch must not change any observable result — the
  // same contract build.yml's off-vs-on corpus diff step enforces
  // end-to-end via ci/check_trace.py --diff-metrics.
  ParserSpec spec = spec2();
  TcamProgram p = spec2_impl();
  DiffTestOptions opts;
  opts.samples = 100;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  ::setenv("PH_SIMD", "off", 1);
  BatchResult off = run_batch(spec, p, corpus, {});
  ::unsetenv("PH_SIMD");
  BatchResult on = run_batch(spec, p, corpus, {});
  EXPECT_EQ(off.agree, on.agree);
  EXPECT_EQ(off.evaluated, on.evaluated);
  EXPECT_EQ(off.coverage.row_hits, on.coverage.row_hits);
  EXPECT_EQ(off.coverage.rule_hits, on.coverage.rule_hits);
}

// TSan course: wide kernel under 8 threads × small chunks, every level.
TEST(WideKernel, EightThreadSimdStress) {
  ParserSpec spec = spec2();
  TcamProgram bad = spec2_impl();
  bad.entries[2].next_state = kReject;
  DiffTestOptions opts;
  opts.samples = 256;
  std::vector<BitVec> corpus = difftest_corpus(spec, opts);
  BatchOptions ref;
  ref.simd = SimdLevel::Scalar;
  BatchResult base = run_batch(spec, bad, corpus, ref);
  for (SimdLevel level : supported_levels()) {
    BatchOptions b;
    b.threads = 8;
    b.chunk = 4;
    b.simd = level;
    BatchResult r = run_batch(spec, bad, corpus, b);
    EXPECT_EQ(base.first_mismatch, r.first_mismatch) << to_string(level);
    EXPECT_EQ(base.evaluated, r.evaluated) << to_string(level);
    EXPECT_EQ(base.coverage.row_hits, r.coverage.row_hits) << to_string(level);
  }
}

}  // namespace
}  // namespace parserhawk
