// Cross-module integration tests: the whole pipeline over the benchmark
// suite, the Trident-style interleaved architecture, and language-to-
// hardware round trips.
#include <gtest/gtest.h>

#include "backend/backend.h"
#include "lang/lang.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "synth/compiler.h"
#include "synth/normalize.h"

namespace parserhawk {
namespace {

TEST(Integration, CanonicalizePreservesEverySuiteBenchmark) {
  for (const auto& b : suite::base_suite()) {
    bool varbit = false;
    for (const auto& f : b.spec.fields) varbit |= f.varbit;
    ParserSpec work = varbit ? varbit_to_fixed(b.spec) : b.spec;
    ParserSpec canon = canonicalize(work);
    Rng rng(0x5EED);
    for (int i = 0; i < 120; ++i) {
      BitVec input = generate_path_input(work, rng, 12, 64);
      ASSERT_TRUE(equivalent(run_spec(work, input, 12), run_spec(canon, input, 12)))
          << b.name << " input " << input.to_string();
    }
  }
}

TEST(Integration, SuiteCompilesOnTrident) {
  // The interleaved (Trident-style) profile uses the pipelined compilation
  // path: forward-only stages of sub-parser TCAMs.
  HwProfile hw = trident();
  int compiled = 0;
  for (const auto& b : suite::base_suite()) {
    SynthOptions opts;
    opts.timeout_sec = 60;
    CompileResult r = compile(b.spec, hw, opts);
    if (!r.ok()) continue;
    ++compiled;
    DiffTestOptions dt;
    dt.samples = 80;
    dt.max_iterations = r.program.max_iterations;
    EXPECT_FALSE(differential_test(r.reference, r.program, dt).has_value()) << b.name;
  }
  EXPECT_GE(compiled, 8);  // most of the suite fits the Trident profile
}

TEST(Integration, HawkSourceToBothBackends) {
  const char* source = R"(
parser two_level {
  field outer : 8;
  field inner : 8;
  field body : 16;
  state start {
    extract(outer);
    transition select(outer) { 0x11 : mid; default : accept; }
  }
  state mid {
    extract(inner);
    transition select(inner) { 0x22 : fin; default : accept; }
  }
  state fin {
    extract(body);
    transition accept;
  }
})";
  auto spec = lang::parse_source(source);
  ASSERT_TRUE(spec.ok()) << spec.error().to_string();
  for (const HwProfile& hw : {tofino(), ipu()}) {
    SynthOptions opts;
    opts.timeout_sec = 60;
    CompileResult r = compile(*spec, hw, opts);
    ASSERT_TRUE(r.ok()) << hw.name << ": " << r.reason;
    std::string text = backend::emit(r.program, hw);
    EXPECT_NE(text.find("goto accept"), std::string::npos) << hw.name;
    DiffTestOptions dt;
    dt.samples = 150;
    dt.max_iterations = r.program.max_iterations;
    EXPECT_FALSE(differential_test(*spec, r.program, dt).has_value()) << hw.name;
  }
}

TEST(Integration, CompiledProgramsValidateAgainstTheirProfiles) {
  for (const auto& b : suite::base_suite()) {
    for (const HwProfile& hw : {tofino(), ipu()}) {
      SynthOptions opts;
      opts.timeout_sec = 60;
      CompileResult r = compile(b.spec, hw, opts);
      if (!r.ok()) continue;
      EXPECT_TRUE(validate(r.program, hw).ok()) << b.name << " on " << hw.name;
    }
  }
}

TEST(Integration, DeterministicRecompilation) {
  // Same options, same seed: identical resource usage (the search is
  // deterministic on one thread).
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult a = compile(suite::parse_icmp(), tofino(), opts);
  CompileResult b = compile(suite::parse_icmp(), tofino(), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.usage.tcam_entries, b.usage.tcam_entries);
  EXPECT_EQ(a.usage.stages, b.usage.stages);
}

TEST(Integration, AcceptRejectSemanticsSurviveTheWholePipeline) {
  // A spec that rejects on a specific value: the compiled program must
  // reproduce rejects exactly, not just accepts.
  auto spec = lang::parse_source(R"(
parser strict {
  field magic : 8;
  field body : 8;
  state start {
    extract(magic);
    transition select(magic) {
      0x7f : parse_body;
      0x00 : reject;
      default : accept;
    }
  }
  state parse_body { extract(body); transition accept; }
})");
  ASSERT_TRUE(spec.ok());
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult r = compile(*spec, tofino(), opts);
  ASSERT_TRUE(r.ok()) << r.reason;
  BitVec good = BitVec::from_u64(0x7fAA, 16);
  BitVec bad = BitVec::from_u64(0x00AA, 16);
  BitVec other = BitVec::from_u64(0x10AA, 16);
  EXPECT_EQ(run_impl(r.program, good).outcome, ParseOutcome::Accepted);
  EXPECT_TRUE(run_impl(r.program, good).dict.count(spec->field_index("body")));
  EXPECT_EQ(run_impl(r.program, bad).outcome, ParseOutcome::Rejected);
  EXPECT_EQ(run_impl(r.program, other).outcome, ParseOutcome::Accepted);
  EXPECT_FALSE(run_impl(r.program, other).dict.count(spec->field_index("body")));
}

}  // namespace
}  // namespace parserhawk
