#include "support/result.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

TEST(Result, OkHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, ErrHoldsError) {
  auto r = Result<int>::err("wide-tran-key", "key is 16 bits, limit is 8");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "wide-tran-key");
  EXPECT_NE(r.error().message.find("16 bits"), std::string::npos);
}

TEST(Result, ValueOnErrorThrows) {
  auto r = Result<int>::err("x", "y");
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, ErrorOnOkThrows) {
  Result<int> r(1);
  EXPECT_THROW(r.error(), std::logic_error);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(Result, ErrorToString) {
  Error e{"code", "message"};
  EXPECT_EQ(e.to_string(), "code: message");
}

}  // namespace
}  // namespace parserhawk
