#include "postopt/postopt.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

/// Ethernet-ish flat program: state 0 dispatches on a 4-bit lookahead tag
/// and the two terminal states each extract one payload field then accept.
TcamProgram dispatch_program() {
  TcamProgram p;
  p.fields = {Field{"tag", 4, false}, Field{"a", 8, false}, Field{"b", 8, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 0, 4}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0x8, 0xF, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 0, 1, 0x6, 0xF, {ExtractOp{0, -1, 0, 0}}, 0, 2});
  p.entries.push_back(TcamEntry{0, 0, 2, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 0, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 2, 0, 0, 0, {ExtractOp{2, -1, 0, 0}}, 0, kAccept});
  return p;
}

void expect_behavior_unchanged(const TcamProgram& before, const TcamProgram& after) {
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    BitVec input = BitVec::random(rng.range(0, 32), [&rng] { return rng(); });
    ParseResult a = run_impl(before, input);
    ParseResult b = run_impl(after, input);
    ASSERT_TRUE(equivalent(a, b)) << input.to_string() << "\n"
                                  << to_string(before) << "\nvs\n"
                                  << to_string(after);
  }
}

TEST(InlineTerminalExtracts, FoldsTerminalStatesIntoDispatchRows) {
  TcamProgram p = dispatch_program();
  TcamProgram inlined = inline_terminal_extracts(p, tofino());
  EXPECT_EQ(inlined.entries.size(), 3u);  // the paper's 3-entry Ethernet shape
  expect_behavior_unchanged(p, inlined);
}

TEST(InlineTerminalExtracts, RespectsExtractionLimit) {
  TcamProgram p = dispatch_program();
  HwProfile hw = tofino();
  hw.extract_limit_bits = 8;  // tag(4)+a(8) would exceed the limit
  TcamProgram inlined = inline_terminal_extracts(p, hw);
  EXPECT_EQ(inlined.entries.size(), p.entries.size());
}

TEST(InlineTerminalExtracts, NeverFoldsStartState) {
  TcamProgram p;
  p.fields = {Field{"f", 4, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  TcamProgram inlined = inline_terminal_extracts(p, tofino());
  EXPECT_EQ(inlined.entries.size(), 1u);
}

TEST(InlineTerminalExtracts, ChainsOfTerminalsCollapseRecursively) {
  TcamProgram p;
  p.fields = {Field{"a", 4, false}, Field{"b", 4, false}, Field{"c", 4, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 0, {ExtractOp{1, -1, 0, 0}}, 0, 2});
  p.entries.push_back(TcamEntry{0, 2, 0, 0, 0, {ExtractOp{2, -1, 0, 0}}, 0, kAccept});
  TcamProgram inlined = inline_terminal_extracts(p, tofino());
  EXPECT_EQ(inlined.entries.size(), 1u);
  EXPECT_EQ(inlined.entries[0].extracts.size(), 3u);
  expect_behavior_unchanged(p, inlined);
}

TEST(InlineTerminalExtracts, SkipsSelfLoops) {
  TcamProgram p;
  p.fields = {Field{"f", 8, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});  // self loop
  TcamProgram inlined = inline_terminal_extracts(p, tofino());
  EXPECT_EQ(inlined.entries.size(), 2u);
}

TEST(SplitWideExtracts, SplitsOverLimitRows) {
  TcamProgram p;
  p.fields = {Field{"a", 8, false}, Field{"b", 8, false}, Field{"c", 8, false}};
  p.entries.push_back(TcamEntry{
      0, 0, 0, 0, 0,
      {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}, ExtractOp{2, -1, 0, 0}}, 0, kAccept});
  HwProfile hw = tofino();
  hw.extract_limit_bits = 10;
  auto split = split_wide_extracts(p, hw);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->entries.size(), 3u);  // one row per 8-bit field
  expect_behavior_unchanged(p, *split);
  EXPECT_TRUE(validate(*split, hw).ok());
}

TEST(SplitWideExtracts, SingleFieldOverLimitFails) {
  TcamProgram p;
  p.fields = {Field{"jumbo", 64, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  HwProfile hw = tofino();
  hw.extract_limit_bits = 32;
  EXPECT_FALSE(split_wide_extracts(p, hw).ok());
}

TEST(SplitWideExtracts, NoopWhenWithinLimit) {
  TcamProgram p = dispatch_program();
  auto split = split_wide_extracts(p, tofino());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->entries.size(), p.entries.size());
}

TEST(AssignStages, LevelsLinearChain) {
  TcamProgram p = dispatch_program();
  auto staged = assign_stages(p, ipu());
  ASSERT_TRUE(staged.ok());
  ResourceUsage u = measure(*staged);
  EXPECT_EQ(u.stages, 2);
  EXPECT_TRUE(validate(*staged, ipu()).ok());
  expect_behavior_unchanged(p, *staged);
}

TEST(AssignStages, RejectsLoops) {
  TcamProgram p;
  p.fields = {Field{"f", 8, false}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 0, {}, 0, 0});  // back edge
  auto staged = assign_stages(p, ipu());
  ASSERT_FALSE(staged.ok());
  EXPECT_EQ(staged.error().code, "parser-loop");
}

TEST(AssignStages, SpillsOvercapacityState) {
  // One state with 5 rows on a device with 3 entries/stage: rows spill into
  // a continuation state in the next stage via a fall-through default.
  TcamProgram p;
  p.fields = {Field{"k", 4, false}, Field{"x", 4, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 0, 4}}};
  for (int i = 0; i < 5; ++i)
    p.entries.push_back(TcamEntry{0, 0, i, static_cast<std::uint64_t>(i), 0xF,
                                  {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  HwProfile hw = ipu();
  hw.tcam_entry_limit = 3;
  auto staged = assign_stages(p, hw);
  ASSERT_TRUE(staged.ok()) << staged.error().to_string();
  EXPECT_TRUE(validate(*staged, hw).ok());
  ResourceUsage u = measure(*staged);
  EXPECT_EQ(u.stages, 2);
  EXPECT_EQ(u.tcam_entries, 6);  // +1 fall-through entry
  expect_behavior_unchanged(p, *staged);
}

TEST(AssignStages, TooManyStagesFails) {
  // A chain longer than the stage budget.
  TcamProgram p;
  p.fields = {Field{"f", 1, false}};
  const int n = 6;
  for (int i = 0; i < n; ++i)
    p.entries.push_back(
        TcamEntry{0, i, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, i + 1 < n ? i + 1 : kAccept});
  HwProfile hw = ipu();
  hw.stage_limit = 3;
  auto staged = assign_stages(p, hw);
  ASSERT_FALSE(staged.ok());
  EXPECT_EQ(staged.error().code, "too-many-stages");
}

TEST(RestoreVarbit, ReattachesRuntimeLength) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  ParserSpec original = b.build().value();

  TcamProgram p;
  p.fields = {Field{"len", 4, false}, Field{"opts", 32, false}};
  p.entries.push_back(
      TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  auto restored = restore_varbit_extracts(p, original);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->fields[1].varbit);
  EXPECT_EQ(restored->entries[0].extracts[1].len_field, 0);
  EXPECT_EQ(restored->entries[0].extracts[1].len_scale, 8);
}

TEST(RestoreVarbit, AmbiguousFormulasFail) {
  SpecBuilder b("vb2");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s1").extract("len").extract_var("opts", "len", 8, 0).otherwise("s2");
  b.state("s2").extract_var("opts", "len", 4, 0).otherwise("accept");
  ParserSpec original = b.build().value();
  TcamProgram p;
  p.fields = {Field{"len", 4, false}, Field{"opts", 32, false}};
  EXPECT_FALSE(restore_varbit_extracts(p, original).ok());
}

TEST(RestoreFieldWidths, RestoresShrunkWidths) {
  TcamProgram p;
  p.fields = {Field{"f", 1, false}};
  std::vector<Field> original = {Field{"f", 48, false}};
  TcamProgram restored = restore_field_widths(p, original);
  EXPECT_EQ(restored.fields[0].width, 48);
}

}  // namespace
}  // namespace parserhawk
