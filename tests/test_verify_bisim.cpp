// The differential agreement gate for the two equivalence checkers
// (DESIGN.md §13): the monolithic terminal-pair Z3 query (synth/verify.h)
// and the product-automaton bisimulation sweep (verify2/bisim.h) must
// return the same verdict everywhere — hand-written fixtures, the full
// examples-spec zoo, and a ≥200-program seeded random sweep including
// mutated-implementation negatives. On Counterexample, each checker's own
// input must be confirmed real by the concrete interpreters.
//
// Also covers the exact-reachability report (padded-TCAM rows are flagged
// provably unreachable), the fuzz contract (Inconclusive only when
// max_configs is genuinely exceeded, asserted via the verify.bisim.configs
// metric), and the race mode's determinism (bit-identical compiled output
// to --verifier=z3 at any thread count; the Race* suite also runs under
// TSan via ci/run_tsan.sh).
#include "verify2/bisim.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/baseline.h"
#include "helpers.h"
#include "hw/profile.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "random_spec.h"
#include "sim/interp.h"
#include "suite/corpus.h"
#include "support/rng.h"
#include "synth/compiler.h"
#include "synth/verify.h"

namespace parserhawk {
namespace {

using testing::mpls_loop;
using testing::random_spec;
using testing::RandomSpecOptions;
using testing::spec1;
using testing::spec2;

/// The Table 1 implementation of spec2 from test_verify.cpp — the shared
/// hand-written fixture both checker suites exercise.
TcamProgram table1_impl() {
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

verify2::BisimOptions bisim_options(const VerifyOptions& vo) {
  verify2::BisimOptions bo;
  bo.input_bits = vo.input_bits;
  bo.max_iterations_spec = vo.max_iterations_spec;
  bo.max_iterations_impl = vo.max_iterations_impl;
  bo.max_configs = vo.max_configs;
  return bo;
}

void expect_real_counterexample(const ParserSpec& spec, const TcamProgram& impl,
                                const BitVec& cex, const std::string& what) {
  ParseResult s = run_spec(spec, cex);
  ParseResult i = run_impl(impl, cex);
  EXPECT_FALSE(equivalent(s, i)) << what << ": counterexample " << cex.to_string()
                                 << " does not actually distinguish spec and impl";
}

/// The gate itself: both checkers, same verdict; on Counterexample, each
/// checker's own input must be real. Returns the agreed verdict kind.
VerifyOutcome::Kind expect_agree(const ParserSpec& spec, const TcamProgram& impl,
                                 const VerifyOptions& vo, const std::string& what) {
  VerifyOutcome z = verify_equivalence(spec, impl, vo);
  verify2::BisimResult b = verify2::check_bisimulation(spec, impl, bisim_options(vo));
  EXPECT_EQ(static_cast<int>(z.kind), static_cast<int>(b.outcome.kind))
      << what << ": z3 says " << z.detail << " / bisim says " << b.outcome.detail;
  if (z.kind == VerifyOutcome::Kind::Counterexample)
    expect_real_counterexample(spec, impl, z.counterexample, what + " [z3]");
  if (b.outcome.kind == VerifyOutcome::Kind::Counterexample)
    expect_real_counterexample(spec, impl, b.outcome.counterexample, what + " [bisim]");
  return z.kind;
}

TEST(BisimDifferential, AgreesOnHandWrittenSuite) {
  VerifyOptions vo;
  EXPECT_EQ(expect_agree(spec2(), table1_impl(), vo, "table1"),
            VerifyOutcome::Kind::Equivalent);

  TcamProgram wrong = table1_impl();
  wrong.entries[1].next_state = kReject;
  EXPECT_EQ(expect_agree(spec2(), wrong, vo, "wrong-transition"),
            VerifyOutcome::Kind::Counterexample);

  TcamProgram missing = table1_impl();
  missing.entries[1].extracts.clear();
  EXPECT_EQ(expect_agree(spec2(), missing, vo, "missing-extract"),
            VerifyOutcome::Kind::Counterexample);

  TcamProgram masked = table1_impl();
  masked.entries[1].value = 1;
  masked.entries[2].value = 0;
  EXPECT_EQ(expect_agree(spec2(), masked, vo, "subtle-mask"),
            VerifyOutcome::Kind::Counterexample);

  // Fused lookahead implementation of spec1.
  TcamProgram fused;
  fused.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  fused.entries.push_back(
      TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  EXPECT_EQ(expect_agree(spec1(), fused, vo, "fused"), VerifyOutcome::Kind::Equivalent);

  // Loopy MPLS implementation against the loopy spec.
  TcamProgram loopy;
  loopy.fields = {Field{"label", 8, false}};
  loopy.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 7, 1}}};
  loopy.entries.push_back(TcamEntry{0, 0, 0, 0, 1, {ExtractOp{0, -1, 0, 0}}, 0, 0});
  loopy.entries.push_back(TcamEntry{0, 0, 1, 1, 1, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  loopy.max_iterations = 16;
  VerifyOptions loop_vo;
  loop_vo.max_iterations_spec = 4;
  loop_vo.max_iterations_impl = 8;
  EXPECT_EQ(expect_agree(mpls_loop(), loopy, loop_vo, "loopy"),
            VerifyOutcome::Kind::Equivalent);
}

TEST(BisimDifferential, BothCheckersThrowOnVarbit) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  ParserSpec spec = b.build().value();
  TcamProgram p;
  p.fields = {Field{"len", 4, false}, Field{"opts", 32, false}};
  EXPECT_THROW(verify_equivalence(spec, p), std::invalid_argument);
  EXPECT_THROW(verify2::check_bisimulation(spec, p), std::invalid_argument);
}

/// The full examples zoo through the Tofino-proxy baseline compiler: both
/// checkers agree everywhere, and — the acceptance bar — zero Inconclusive
/// verdicts at default bounds, with the bisim reachable-set report covering
/// 100% of spec states and rules.
TEST(BisimDifferential, AgreesAcrossExamplesZoo) {
  std::vector<std::string> names = corpus::list_specs();
  ASSERT_FALSE(names.empty());
  int checked = 0;
  for (const std::string& name : names) {
    auto spec = corpus::load_spec(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.error().to_string();
    bool varbit = false;
    for (const auto& f : spec->fields) varbit |= f.varbit;
    if (varbit) continue;  // BothCheckersThrowOnVarbit covers the contract
    CompileResult proxy = baseline::compile_tofino_proxy(*spec, tofino());
    ASSERT_TRUE(proxy.ok()) << name << ": " << proxy.reason;

    VerifyOptions vo;
    vo.max_iterations_impl = std::max(48, proxy.program.max_iterations);
    VerifyOutcome z = verify_equivalence(*spec, proxy.program, vo);
    verify2::BisimResult b = verify2::check_bisimulation(*spec, proxy.program, bisim_options(vo));
    EXPECT_EQ(static_cast<int>(z.kind), static_cast<int>(b.outcome.kind)) << name;
    EXPECT_NE(z.kind, VerifyOutcome::Kind::Inconclusive) << name << ": " << z.detail;
    EXPECT_NE(b.outcome.kind, VerifyOutcome::Kind::Inconclusive) << name << ": "
                                                                 << b.outcome.detail;
    if (z.kind == VerifyOutcome::Kind::Counterexample) {
      expect_real_counterexample(*spec, proxy.program, z.counterexample, name + " [z3]");
      expect_real_counterexample(*spec, proxy.program, b.outcome.counterexample,
                                 name + " [bisim]");
    }
    EXPECT_EQ(b.reach.states_reachable(), b.reach.states_total()) << name;
    EXPECT_EQ(b.reach.rules_reachable(), b.reach.rules_total()) << name;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

/// Mutated zoo implementations: corrupting one TCAM entry of a correct
/// proxy program must fail both checkers identically, each with a real
/// counterexample.
TEST(BisimDifferential, MutatedZooImplsAgreeOnCounterexamples) {
  int negatives = 0;
  for (const char* name : {"vlan", "icmp_zoo", "gre"}) {
    auto spec = corpus::load_spec(name);
    ASSERT_TRUE(spec.ok()) << name;
    CompileResult proxy = baseline::compile_tofino_proxy(*spec, tofino());
    ASSERT_TRUE(proxy.ok()) << name;
    VerifyOptions vo;
    vo.max_iterations_impl = std::max(48, proxy.program.max_iterations);
    for (std::size_t e = 0; e < proxy.program.entries.size() && negatives < 6; ++e) {
      TcamProgram bad = proxy.program;
      bad.entries[e].next_state = bad.entries[e].next_state == kReject ? kAccept : kReject;
      VerifyOutcome::Kind agreed =
          expect_agree(*spec, bad, vo, std::string(name) + " entry " + std::to_string(e));
      if (agreed == VerifyOutcome::Kind::Counterexample) ++negatives;
    }
  }
  EXPECT_GE(negatives, 3) << "the mutation sweep produced too few negative cases";
}

/// The ≥200-program random sweep: seeded random specs through the proxy
/// compiler, verified by both checkers — plus a mutated-impl negative for
/// every other seed.
TEST(BisimDifferential, RandomSpecSweepOf200Agrees) {
  int programs = 0;
  for (std::uint64_t seed = 1; seed <= 220; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    ParserSpec spec = random_spec(rng);
    CompileResult proxy = baseline::compile_tofino_proxy(spec, tofino());
    if (!proxy.ok()) continue;  // wide-key rejections etc. are not this gate
    VerifyOptions vo;
    vo.max_iterations_impl = std::max(48, proxy.program.max_iterations);
    expect_agree(spec, proxy.program, vo, "seed " + std::to_string(seed));
    ++programs;
    if (seed % 2 == 0 && !proxy.program.entries.empty()) {
      TcamProgram bad = proxy.program;
      std::size_t e = rng.range(0, static_cast<int>(bad.entries.size()) - 1);
      bad.entries[e].next_state = bad.entries[e].next_state == kReject ? kAccept : kReject;
      expect_agree(spec, bad, vo, "seed " + std::to_string(seed) + " mutated");
      ++programs;
    }
    if (::testing::Test::HasFailure()) break;  // don't spray 200 identical failures
  }
  EXPECT_GE(programs, 200);
}

/// The exact-reachability satellite: pad a correct TCAM with rows that can
/// never fire — one shadowed by complete higher-priority coverage, one in a
/// state no transition targets — and the report must flag exactly those,
/// while the verdict stays Equivalent (dead rows are semantically inert).
TEST(BisimReach, PaddedTcamRowsFlaggedUnreachable) {
  TcamProgram padded = table1_impl();
  // Entries 1 (key 0) and 2 (key 1) cover state 1's whole 1-bit key: this
  // lower-priority row is shadowed, its nomatch ∧ match guard unsat.
  padded.entries.push_back(TcamEntry{0, 1, 2, 0, 0, {}, 0, kReject});
  // A row in a state nothing transitions to: graph-unreachable.
  padded.entries.push_back(TcamEntry{0, 9, 0, 0, 0, {}, 0, kAccept});

  verify2::BisimResult r = verify2::check_bisimulation(spec2(), padded);
  EXPECT_EQ(r.outcome.kind, VerifyOutcome::Kind::Equivalent) << r.outcome.detail;
  EXPECT_TRUE(r.reach.exact);
  EXPECT_EQ(r.reach.states_reachable(), r.reach.states_total());
  EXPECT_EQ(r.reach.rules_reachable(), r.reach.rules_total());
  EXPECT_EQ(r.reach.rows_reachable(), 3);
  EXPECT_EQ(r.reach.rows_total(), 5);
  EXPECT_EQ(r.reach.unreachable_rows(), (std::vector<int>{3, 4}));

  // Both checkers still agree on the padded program.
  EXPECT_EQ(verify_equivalence(spec2(), padded).kind, VerifyOutcome::Kind::Equivalent);
}

/// Seeded mutation fuzzing of the checker pair, test_fuzz_lang.cpp-style:
/// random specs, random single-site corruptions drawn from a fixed op menu,
/// and the agreement invariant must hold on every one.
TEST(BisimFuzz, SeededMutationFuzzAgrees) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed * 0xc2b2ae3d27d4eb4full + 7);
    ParserSpec spec = random_spec(rng);
    CompileResult proxy = baseline::compile_tofino_proxy(spec, tofino());
    if (!proxy.ok() || proxy.program.entries.empty()) continue;
    TcamProgram bad = proxy.program;
    std::size_t e = rng.range(0, static_cast<int>(bad.entries.size()) - 1);
    switch (rng.range(0, 3)) {
      case 0:
        bad.entries[e].next_state = bad.entries[e].next_state == kReject ? kAccept : kReject;
        break;
      case 1: bad.entries[e].value ^= 1; break;
      case 2: bad.entries[e].mask ^= 1; break;
      default: bad.entries[e].extracts.clear(); break;
    }
    VerifyOptions vo;
    vo.max_iterations_impl = std::max(48, proxy.program.max_iterations);
    expect_agree(spec, bad, vo, "fuzz seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) break;
  }
}

/// Inconclusive is only legitimate when the product-configuration budget
/// was genuinely exceeded — asserted through the verify.bisim.configs
/// metric, which must exceed the budget on the Inconclusive run and the
/// verdict counters must sum to the run count.
TEST(BisimFuzz, InconclusiveOnlyWhenConfigBoundGenuinelyExceeded) {
  obs::Metrics::get().reset();
  obs::Metrics::get().enable();

  verify2::BisimOptions tight;
  tight.max_configs = 3;
  verify2::BisimResult starved = verify2::check_bisimulation(spec2(), table1_impl(), tight);
  EXPECT_EQ(starved.outcome.kind, VerifyOutcome::Kind::Inconclusive);
  EXPECT_NE(starved.outcome.detail.find("bound exceeded"), std::string::npos)
      << starved.outcome.detail;
  EXPECT_GT(starved.stats.configs, tight.max_configs);

  verify2::BisimResult full = verify2::check_bisimulation(spec2(), table1_impl());
  EXPECT_EQ(full.outcome.kind, VerifyOutcome::Kind::Equivalent);

  auto& m = obs::Metrics::get();
  EXPECT_EQ(m.counter("verify.bisim.runs"), 2);
  EXPECT_EQ(m.counter("verify.bisim.configs"), starved.stats.configs + full.stats.configs);
  EXPECT_GT(m.counter("verify.bisim.configs"),
            static_cast<std::int64_t>(tight.max_configs));
  EXPECT_EQ(m.counter("verify.bisim.verdict.inconclusive"), 1);
  EXPECT_EQ(m.counter("verify.bisim.verdict.equivalent"), 1);
  EXPECT_EQ(m.counter("verify.bisim.verdict.equivalent") +
                m.counter("verify.bisim.verdict.counterexample") +
                m.counter("verify.bisim.verdict.inconclusive"),
            m.counter("verify.bisim.runs"));

  obs::Metrics::get().disable();
  obs::Metrics::get().reset();
}

/// Race determinism (the acceptance bar): --verifier=race produces
/// bit-identical compiled output to --verifier=z3 at any thread count.
/// Named Race* so ci/run_tsan.sh can run this suite under TSan: with
/// threads > 1 the two checkers genuinely run concurrently on the pool.
TEST(RaceVerifier, BitIdenticalToZ3AtAnyThreadCount) {
  auto spec = corpus::load_spec("vlan");
  ASSERT_TRUE(spec.ok());

  SynthOptions z3_opts;
  z3_opts.timeout_sec = 120;
  CompileResult golden = compile(*spec, tofino(), z3_opts);
  ASSERT_TRUE(golden.ok()) << golden.reason;
  EXPECT_EQ(golden.verifier, "z3");
  EXPECT_FALSE(golden.reach_valid);
  const std::string fingerprint = to_string(golden.program);

  for (int threads : {1, 2, 4}) {
    SynthOptions race_opts;
    race_opts.timeout_sec = 120;
    race_opts.verifier = VerifierKind::Race;
    race_opts.num_threads = threads;
    CompileResult raced = compile(*spec, tofino(), race_opts);
    ASSERT_TRUE(raced.ok()) << "threads=" << threads << ": " << raced.reason;
    EXPECT_EQ(to_string(raced.program), fingerprint) << "threads=" << threads;
    EXPECT_TRUE(raced.stats.formally_verified) << "threads=" << threads;
    EXPECT_TRUE(raced.reach_valid) << "threads=" << threads;
    EXPECT_EQ(raced.reach.states_reachable(), raced.reach.states_total())
        << "threads=" << threads;
    EXPECT_EQ(raced.verifier.rfind("race:", 0), 0u) << raced.verifier;
  }

  // The standalone bisim verifier also reproduces the same program.
  SynthOptions bisim_opts;
  bisim_opts.timeout_sec = 120;
  bisim_opts.verifier = VerifierKind::Bisim;
  CompileResult bisimed = compile(*spec, tofino(), bisim_opts);
  ASSERT_TRUE(bisimed.ok()) << bisimed.reason;
  EXPECT_EQ(bisimed.verifier, "bisim");
  EXPECT_EQ(to_string(bisimed.program), fingerprint);
  EXPECT_TRUE(bisimed.stats.formally_verified);
}

/// The race metric invariants the CI trace gate enforces, checked at the
/// source: every conclusive race credits exactly one winner, and every
/// both-conclusive race is an agreement check that agreed.
TEST(RaceVerifier, MetricInvariantsHold) {
  obs::Metrics::get().reset();
  obs::Metrics::get().enable();
  for (const char* name : {"vlan", "icmp_zoo"}) {
    auto spec = corpus::load_spec(name);
    ASSERT_TRUE(spec.ok()) << name;
    SynthOptions opts;
    opts.timeout_sec = 120;
    opts.verifier = VerifierKind::Race;
    opts.num_threads = 4;
    CompileResult r = compile(*spec, tofino(), opts);
    ASSERT_TRUE(r.ok()) << name << ": " << r.reason;
  }
  auto& m = obs::Metrics::get();
  EXPECT_GE(m.counter("verify.race.runs"), 2);
  EXPECT_EQ(m.counter("verify.race.conclusive_verdicts"),
            m.counter("verify.race.bisim_wins") + m.counter("verify.race.z3_wins"));
  EXPECT_EQ(m.counter("verify.race.agreement_checks"), m.counter("verify.race.agreements"));
  EXPECT_GE(m.counter("verify.race.agreement_checks"), 2);
  EXPECT_EQ(m.counter("verify.bisim.runs"),
            m.counter("verify.bisim.verdict.equivalent") +
                m.counter("verify.bisim.verdict.counterexample") +
                m.counter("verify.bisim.verdict.inconclusive"));
  obs::Metrics::get().disable();
  obs::Metrics::get().reset();
}

}  // namespace
}  // namespace parserhawk
