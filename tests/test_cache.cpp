// Synthesis-cache tests (DESIGN.md §8): fingerprint determinism and
// sensitivity, entry serialization under adversarial corruption (every
// truncation point, every byte flipped), the two-tier SynthCache itself,
// the validate_solution hit gate, and — the contract that matters — the
// differential property that a cache-hit compile is row-for-row identical
// to a cold one, in memory, across instances (disk tier) and across thread
// counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "helpers.h"
#include "obs/metrics.h"
#include "random_spec.h"
#include "suite/suite.h"
#include "support/rng.h"
#include "support/timer.h"
#include "synth/chain_synth.h"
#include "synth/compiler.h"

namespace parserhawk {
namespace {

namespace fs = std::filesystem;
using cache::CachedPlan;
using cache::CacheConfig;
using cache::SynthCache;
using parserhawk::testing::ScratchDir;

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

ChainProblem sample_problem() {
  ChainProblem p;
  p.spec_state = 0;
  p.key_width = 4;
  p.semantics = {{15, 15, 1}, {14, 15, 2}, {2, 15, 3}, {0, 0, kAccept}};
  p.exit_targets = {1, 2, 3, kAccept};
  return p;
}

std::vector<ChainShape> sample_shapes() {
  ChainShape sh;
  sh.alloc_masks = {0xF};
  sh.layers = 1;
  sh.aux_counts = {1};
  sh.value_candidates = {15, 14, 2};
  sh.mask_candidates = {0xB};
  sh.key_limit = 32;
  sh.restrict_masks = true;
  ChainShape sh2 = sh;
  sh2.restrict_masks = false;
  return {sh, sh2};
}

std::string fp_of(const ChainProblem& p, const std::vector<ChainShape>& shapes, int lb, int cap,
                  bool improve, const HwProfile& hw) {
  return cache::plan_fingerprint(p, shapes, lb, cap, improve, hw).hex();
}

TEST(Fingerprint, DeterministicAndWellFormed) {
  std::string a = fp_of(sample_problem(), sample_shapes(), 1, 8, true, tofino());
  std::string b = fp_of(sample_problem(), sample_shapes(), 1, 8, true, tofino());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 32u);  // 128 bits of hex
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Fingerprint, SensitiveToEveryKeyComponent) {
  const std::string base = fp_of(sample_problem(), sample_shapes(), 1, 8, true, tofino());
  std::vector<std::string> variants;

  // Budget bounds and pass kind.
  variants.push_back(fp_of(sample_problem(), sample_shapes(), 2, 8, true, tofino()));
  variants.push_back(fp_of(sample_problem(), sample_shapes(), 1, 9, true, tofino()));
  variants.push_back(fp_of(sample_problem(), sample_shapes(), 1, 8, false, tofino()));

  // Device limits.
  {
    HwProfile hw = tofino();
    hw.key_limit_bits += 1;
    variants.push_back(fp_of(sample_problem(), sample_shapes(), 1, 8, true, hw));
  }
  variants.push_back(fp_of(sample_problem(), sample_shapes(), 1, 8, true, ipu()));

  // Problem semantics: key width, rule value/mask/target, exit set.
  {
    ChainProblem p = sample_problem();
    p.key_width = 5;
    variants.push_back(fp_of(p, sample_shapes(), 1, 8, true, tofino()));
  }
  {
    ChainProblem p = sample_problem();
    p.semantics[0].value ^= 1;
    variants.push_back(fp_of(p, sample_shapes(), 1, 8, true, tofino()));
  }
  {
    ChainProblem p = sample_problem();
    p.semantics[1].mask ^= 4;
    variants.push_back(fp_of(p, sample_shapes(), 1, 8, true, tofino()));
  }
  {
    ChainProblem p = sample_problem();
    p.semantics[2].next = 7;
    variants.push_back(fp_of(p, sample_shapes(), 1, 8, true, tofino()));
  }
  {
    ChainProblem p = sample_problem();
    p.exit_targets.push_back(kReject);
    variants.push_back(fp_of(p, sample_shapes(), 1, 8, true, tofino()));
  }

  // Shape family: order, alloc masks, layering, candidate pools, flags.
  {
    auto shapes = sample_shapes();
    std::swap(shapes[0], shapes[1]);
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes.pop_back();
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[0].alloc_masks[0] = 0x7;
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[0].layers = 2;
    shapes[0].aux_counts = {1, 2};
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[0].value_candidates.push_back(9);
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[0].mask_candidates.clear();
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[0].key_limit = 16;
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }
  {
    auto shapes = sample_shapes();
    shapes[1].restrict_masks = true;
    variants.push_back(fp_of(sample_problem(), shapes, 1, 8, true, tofino()));
  }

  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i], base) << "variant " << i << " did not change the fingerprint";
    for (std::size_t j = i + 1; j < variants.size(); ++j)
      EXPECT_NE(variants[i], variants[j]) << "variants " << i << " and " << j << " collide";
  }
}

TEST(Fingerprint, EmptyVsZeroLengthDistinction) {
  // Length-prefixed hashing: {[1],[]} and {[],[1]} feed different streams.
  ChainProblem a = sample_problem(), b = sample_problem();
  a.semantics = {{0, 0, kAccept}};
  a.exit_targets = {};
  b.semantics = {};
  b.exit_targets = {kAccept};
  // Not a real problem shape, but the hash must still separate them.
  EXPECT_NE(fp_of(a, sample_shapes(), 1, 8, true, tofino()),
            fp_of(b, sample_shapes(), 1, 8, true, tofino()));
}

// ---------------------------------------------------------------------------
// Entry serialization + corruption
// ---------------------------------------------------------------------------

CachedPlan sample_plan() {
  CachedPlan plan;
  plan.layers = 2;
  plan.aux_counts = {1, 2};
  plan.search_space_bits = 37.625;
  plan.winner_variant = 3;
  plan.winner_budget = 5;
  plan.winner_restricted = false;
  plan.solution.alloc_masks = {0xF0F0, 0x0F0F};
  ChainRow r0;
  r0.layer = 0;
  r0.aux = 0;
  r0.priority = 0;
  r0.value = 0xDEAD;
  r0.mask = 0xFFFF;
  r0.is_exit = false;
  r0.exit_target = kReject;
  r0.next_aux = 1;
  ChainRow r1;
  r1.layer = 1;
  r1.aux = 1;
  r1.priority = 1;
  r1.value = 0;
  r1.mask = 0;
  r1.is_exit = true;
  r1.exit_target = kAccept;
  r1.next_aux = 0;
  plan.solution.rows = {r0, r1};
  return plan;
}

TEST(PlanCodec, RoundTripPreservesEveryField) {
  CachedPlan plan = sample_plan();
  auto back = cache::decode_plan(cache::encode_plan(plan));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->layers, plan.layers);
  EXPECT_EQ(back->aux_counts, plan.aux_counts);
  EXPECT_DOUBLE_EQ(back->search_space_bits, plan.search_space_bits);
  EXPECT_EQ(back->winner_variant, plan.winner_variant);
  EXPECT_EQ(back->winner_budget, plan.winner_budget);
  EXPECT_EQ(back->winner_restricted, plan.winner_restricted);
  EXPECT_EQ(back->solution.alloc_masks, plan.solution.alloc_masks);
  ASSERT_EQ(back->solution.rows.size(), plan.solution.rows.size());
  for (std::size_t i = 0; i < plan.solution.rows.size(); ++i) {
    const ChainRow& a = plan.solution.rows[i];
    const ChainRow& b = back->solution.rows[i];
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.aux, b.aux);
    EXPECT_EQ(a.priority, b.priority);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_EQ(a.is_exit, b.is_exit);
    EXPECT_EQ(a.exit_target, b.exit_target);
    EXPECT_EQ(a.next_aux, b.next_aux);
  }
}

TEST(PlanCodec, EveryTruncationIsRejected) {
  std::string text = cache::encode_plan(sample_plan());
  ASSERT_TRUE(cache::decode_plan(text).has_value());
  for (std::size_t len = 0; len < text.size(); ++len)
    EXPECT_FALSE(cache::decode_plan(text.substr(0, len)).has_value()) << "prefix length " << len;
}

TEST(PlanCodec, EveryByteFlipIsRejected) {
  std::string text = cache::encode_plan(sample_plan());
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string flipped = text;
    // Bit 2 keeps newlines from mutating into other whitespace (which would
    // be an equivalent, legitimately-decodable encoding, not corruption).
    flipped[i] = static_cast<char>(flipped[i] ^ 0x04);
    EXPECT_FALSE(cache::decode_plan(flipped).has_value()) << "flip at byte " << i;
  }
}

TEST(PlanCodec, GarbageIsRejectedNotCrashed) {
  EXPECT_FALSE(cache::decode_plan("").has_value());
  EXPECT_FALSE(cache::decode_plan("\n").has_value());
  EXPECT_FALSE(cache::decode_plan("sum 0000000000000000\n").has_value());
  EXPECT_FALSE(cache::decode_plan("phcache 1\nsum deadbeef\n").has_value());
  EXPECT_FALSE(cache::decode_plan(std::string(4096, '\xff')).has_value());
  Rng rng(0xc0ffee);
  for (int i = 0; i < 64; ++i) {
    std::string soup;
    std::size_t n = rng() % 512;
    for (std::size_t j = 0; j < n; ++j) soup.push_back(static_cast<char>(rng() & 0xff));
    EXPECT_FALSE(cache::decode_plan(soup).has_value());
  }
}

// ---------------------------------------------------------------------------
// SynthCache tiers
// ---------------------------------------------------------------------------

TEST(SynthCacheTest, MemoryTierLruEvicts) {
  CacheConfig cfg;
  cfg.memory_entries = 2;
  SynthCache sc(cfg);
  sc.store("aa1", sample_plan());
  sc.store("bb2", sample_plan());
  EXPECT_TRUE(sc.lookup("aa1").has_value());  // refresh aa1; bb2 becomes LRU
  sc.store("cc3", sample_plan());
  EXPECT_EQ(sc.counters().evictions, 1);
  EXPECT_FALSE(sc.lookup("bb2").has_value());
  EXPECT_TRUE(sc.lookup("aa1").has_value());
  EXPECT_TRUE(sc.lookup("cc3").has_value());
  EXPECT_EQ(sc.counters().hits, 3);
  EXPECT_EQ(sc.counters().misses, 1);
  EXPECT_EQ(sc.counters().stores, 3);
}

TEST(SynthCacheTest, DiskTierSurvivesInstances) {
  ScratchDir scratch("cache_disk");
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();
  {
    SynthCache writer(cfg);
    writer.store("0123abc", sample_plan());
    EXPECT_GT(writer.counters().bytes, 0);
  }
  SynthCache reader(cfg);
  auto hit = reader.lookup("0123abc");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->winner_variant, sample_plan().winner_variant);
  EXPECT_EQ(hit->solution.rows.size(), sample_plan().solution.rows.size());
  EXPECT_EQ(reader.counters().hits, 1);
  // Promotion: the second lookup is a memory hit even after the entry file
  // disappears.
  fs::remove_all(scratch.path() / ("v" + std::to_string(cache::kCacheEpoch)));
  EXPECT_TRUE(reader.lookup("0123abc").has_value());
}

TEST(SynthCacheTest, ClearMemoryFallsBackToDisk) {
  ScratchDir scratch("cache_clear");
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();
  SynthCache sc(cfg);
  sc.store("k", sample_plan());
  sc.clear_memory();
  EXPECT_TRUE(sc.lookup("k").has_value());  // served from disk
  sc.clear_memory();
  sc.set_disk_dir("");
  EXPECT_FALSE(sc.lookup("k").has_value());  // both tiers gone
}

std::vector<fs::path> entry_files(const fs::path& root) {
  std::vector<fs::path> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end; it.increment(ec))
    if (it->is_regular_file() && it->path().extension() == ".phc") out.push_back(it->path());
  return out;
}

TEST(SynthCacheTest, CorruptDiskEntriesAreMissesNeverCrashes) {
  ScratchDir scratch("cache_corrupt");
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();

  auto write_entry = [&](const std::string& content) {
    SynthCache writer(cfg);
    writer.store("feedface", sample_plan());
    auto files = entry_files(scratch.path());
    EXPECT_EQ(files.size(), 1u);
    if (files.empty()) return;
    std::ofstream f(files[0], std::ios::binary | std::ios::trunc);
    f << content;
  };

  std::string good = cache::encode_plan(sample_plan());

  // Truncated to half.
  write_entry(good.substr(0, good.size() / 2));
  {
    SynthCache reader(cfg);
    EXPECT_FALSE(reader.lookup("feedface").has_value());
    EXPECT_EQ(reader.counters().corrupt, 1);
    EXPECT_EQ(reader.counters().misses, 1);
    // The poisoned file was removed so the next run pays no decode cost.
    EXPECT_TRUE(entry_files(scratch.path()).empty());
  }

  // Single flipped byte in the middle.
  std::string flipped = good;
  flipped[flipped.size() / 2] ^= 0x10;
  write_entry(flipped);
  {
    SynthCache reader(cfg);
    EXPECT_FALSE(reader.lookup("feedface").has_value());
    EXPECT_EQ(reader.counters().corrupt, 1);
  }

  // Empty file and random garbage.
  write_entry("");
  {
    SynthCache reader(cfg);
    EXPECT_FALSE(reader.lookup("feedface").has_value());
  }
  write_entry("not a cache entry at all\n\x01\x02\x03");
  {
    SynthCache reader(cfg);
    EXPECT_FALSE(reader.lookup("feedface").has_value());
    // A store after the corrupt miss repairs the entry.
    reader.store("feedface", sample_plan());
    SynthCache again(cfg);
    EXPECT_TRUE(again.lookup("feedface").has_value());
  }
}

TEST(SynthCacheTest, CountersMirrorIntoMetricsRegistry) {
  obs::Metrics::get().enable();
  ScratchDir scratch("cache_metrics");
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();
  SynthCache sc(cfg);
  sc.lookup("nope");
  sc.store("yes", sample_plan());
  sc.lookup("yes");
  std::string json = obs::Metrics::get().to_json();
  EXPECT_NE(json.find("cache.hits"), std::string::npos) << json;
  EXPECT_NE(json.find("cache.misses"), std::string::npos) << json;
  EXPECT_NE(json.find("cache.stores"), std::string::npos) << json;
  EXPECT_NE(json.find("cache.bytes"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// validate_solution: the hit gate
// ---------------------------------------------------------------------------

TEST(ValidateSolution, AcceptsRealSolutionsRejectsTamperedOnes) {
  ChainProblem p = sample_problem();
  ChainShape sh;
  sh.alloc_masks = {0xF};
  sh.layers = 1;
  sh.aux_counts = {1};
  sh.row_budget = static_cast<int>(p.semantics.size()) + 2;
  sh.restrict_masks = false;
  ChainStats stats;
  auto sol = synthesize_chain(p, sh, Deadline::none(), stats);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(validate_solution(p, *sol));

  // Semantic tamper: flip a matched bit in some row's value.
  {
    ChainSolution bad = *sol;
    bool tampered = false;
    for (auto& r : bad.rows) {
      if (r.mask != 0) {
        r.value ^= (r.mask & (~r.mask + 1));  // lowest set mask bit
        tampered = true;
        break;
      }
    }
    ASSERT_TRUE(tampered);
    EXPECT_FALSE(validate_solution(p, bad));
  }
  // Structural tampers: out-of-range layer, foreign exit target, dangling
  // non-exit row.
  {
    ChainSolution bad = *sol;
    bad.rows[0].layer = 7;
    EXPECT_FALSE(validate_solution(p, bad));
  }
  {
    ChainSolution bad = *sol;
    for (auto& r : bad.rows)
      if (r.is_exit) {
        r.exit_target = 99;  // not in exit_targets
        break;
      }
    EXPECT_FALSE(validate_solution(p, bad));
  }
  {
    ChainSolution bad = *sol;
    bad.rows[0].is_exit = false;  // single layer: no layer+1 to continue into
    EXPECT_FALSE(validate_solution(p, bad));
  }
  // Degenerate: no rows at all cannot implement a non-reject semantics.
  EXPECT_FALSE(validate_solution(p, ChainSolution{}));
}

// ---------------------------------------------------------------------------
// Differential: cache-hit compiles are bit-identical to cold compiles
// ---------------------------------------------------------------------------

void expect_warm_equals_cold(const ParserSpec& spec, const HwProfile& hw, int threads,
                             bool require_hits = true) {
  SynthOptions cold_opts;
  cold_opts.timeout_sec = 60;
  cold_opts.num_threads = threads;
  CompileResult cold = compile(spec, hw, cold_opts);
  ASSERT_TRUE(cold.ok()) << spec.name << ": " << cold.reason;

  SynthCache sc;  // memory-only, private to this check
  SynthOptions cached_opts = cold_opts;
  cached_opts.cache = &sc;
  CompileResult first = compile(spec, hw, cached_opts);   // fills the cache
  CompileResult second = compile(spec, hw, cached_opts);  // replays from it
  ASSERT_TRUE(first.ok()) << spec.name << ": " << first.reason;
  ASSERT_TRUE(second.ok()) << spec.name << ": " << second.reason;

  // Row-for-row identity: enabling the cache never changes the program,
  // and a hit compile emits exactly the cold program.
  EXPECT_EQ(to_string(cold.program), to_string(first.program)) << spec.name;
  EXPECT_EQ(to_string(cold.program), to_string(second.program)) << spec.name;
  EXPECT_EQ(cold.usage.tcam_entries, second.usage.tcam_entries) << spec.name;
  EXPECT_EQ(cold.usage.stages, second.usage.stages) << spec.name;

  auto c = sc.counters();
  if (require_hits) {
    EXPECT_GT(c.stores, 0) << spec.name;
    EXPECT_GT(c.hits, 0) << spec.name << ": second compile never hit the cache";
  } else if (c.stores > 0) {
    // Specs with no keyed states legitimately store nothing; but anything
    // stored by the first compile must be replayed by the second.
    EXPECT_GT(c.hits, 0) << spec.name << ": second compile never hit the cache";
  }
  // The replayed compile does not re-run the per-state chain search
  // (keyless states solve trivially with zero queries either way).
  EXPECT_EQ(second.stats.synth_queries, 0) << spec.name;
  EXPECT_EQ(second.stats.cegis_rounds, 0) << spec.name;
}

TEST(CacheDifferential, KeylessSpecIsHarmlesslyUncached) {
  // spec1 has only unconditional transitions: nothing is cache-eligible
  // (keyless solves are instant), so the cache must stay empty and the
  // compile must still succeed identically.
  ParserSpec spec = parserhawk::testing::spec1();
  SynthOptions cold_opts;
  cold_opts.timeout_sec = 60;
  CompileResult cold = compile(spec, tofino(), cold_opts);
  ASSERT_TRUE(cold.ok()) << cold.reason;

  SynthCache sc;
  SynthOptions opts = cold_opts;
  opts.cache = &sc;
  CompileResult a = compile(spec, tofino(), opts);
  CompileResult b = compile(spec, tofino(), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(to_string(cold.program), to_string(a.program));
  EXPECT_EQ(to_string(cold.program), to_string(b.program));
  EXPECT_EQ(sc.counters().stores, 0);
  EXPECT_EQ(sc.counters().hits, 0);
  EXPECT_EQ(sc.counters().misses, 0);
}

TEST(CacheDifferential, SuiteSpecsHitIdentically) {
  expect_warm_equals_cold(parserhawk::testing::spec2(), tofino(), 1);
  expect_warm_equals_cold(parserhawk::testing::figure3(), tofino(), 1);
  expect_warm_equals_cold(parserhawk::testing::mpls_loop(), tofino(), 1);
  expect_warm_equals_cold(suite::parse_ethernet(), tofino(), 1);
  expect_warm_equals_cold(suite::parse_icmp(), ipu(), 1);
}

TEST(CacheDifferential, ParallelPortfolioHitsIdentically) {
  // The winner-replay metadata must reproduce the deterministic Opt7
  // winner, so hits are identical even when the cold race was concurrent.
  expect_warm_equals_cold(parserhawk::testing::figure3(), tofino(), 4);
  expect_warm_equals_cold(suite::parse_ethernet(), tofino(), 4);
}

TEST(CacheDifferential, RandomSpecsHitIdentically) {
  // Some seeds generate specs whose states are all unconditional after
  // canonicalization — those have nothing cache-eligible, so hits are not
  // required, only identity and hit/store consistency.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    ParserSpec spec = parserhawk::testing::random_spec(rng);
    expect_warm_equals_cold(spec, tofino(), 1, /*require_hits=*/false);
  }
}

TEST(CacheDifferential, DiskTierHitsAcrossInstances) {
  ScratchDir scratch("cache_e2e");
  ParserSpec spec = parserhawk::testing::figure3();

  CacheConfig cfg;
  cfg.disk_dir = scratch.str();
  SynthCache writer(cfg);
  SynthOptions opts;
  opts.timeout_sec = 60;
  opts.cache = &writer;
  CompileResult cold = compile(spec, tofino(), opts);
  ASSERT_TRUE(cold.ok()) << cold.reason;
  ASSERT_GT(writer.counters().bytes, 0);

  // A brand-new instance over the same directory — the "second process".
  SynthCache reader(cfg);
  SynthOptions warm_opts;
  warm_opts.timeout_sec = 60;
  warm_opts.cache = &reader;
  CompileResult warm = compile(spec, tofino(), warm_opts);
  ASSERT_TRUE(warm.ok()) << warm.reason;
  EXPECT_EQ(to_string(cold.program), to_string(warm.program));
  EXPECT_GT(reader.counters().hits, 0);
  EXPECT_EQ(warm.stats.synth_queries, 0);
}

TEST(CacheDifferential, CacheDirOptionPopulatesTheDirectory) {
  // End-to-end plumbing of SynthOptions::cache_dir (the --cache-dir /
  // PH_CACHE_DIR path): compiling with it set must leave entries behind.
  ScratchDir scratch("cache_dir_opt");
  SynthOptions opts;
  opts.timeout_sec = 60;
  opts.cache_dir = scratch.str();
  CompileResult r = compile(parserhawk::testing::spec2(), tofino(), opts);
  ASSERT_TRUE(r.ok()) << r.reason;
  EXPECT_FALSE(entry_files(scratch.path()).empty());

  // And the entries replay: same dir, fresh (injected) instance, no Z3.
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();
  SynthCache reader(cfg);
  SynthOptions warm_opts;
  warm_opts.timeout_sec = 60;
  warm_opts.cache = &reader;
  CompileResult warm = compile(parserhawk::testing::spec2(), tofino(), warm_opts);
  ASSERT_TRUE(warm.ok()) << warm.reason;
  EXPECT_EQ(to_string(r.program), to_string(warm.program));
  EXPECT_GT(reader.counters().hits, 0);
}

TEST(CacheDifferential, CorruptedDiskEntriesFallBackToColdSolve) {
  ScratchDir scratch("cache_corrupt_e2e");
  ParserSpec spec = parserhawk::testing::figure3();
  CacheConfig cfg;
  cfg.disk_dir = scratch.str();

  CompileResult cold;
  {
    SynthCache writer(cfg);
    SynthOptions opts;
    opts.timeout_sec = 60;
    opts.cache = &writer;
    cold = compile(spec, tofino(), opts);
    ASSERT_TRUE(cold.ok()) << cold.reason;
  }
  // Vandalize every entry on disk.
  auto files = entry_files(scratch.path());
  ASSERT_FALSE(files.empty());
  Rng rng(99);
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (i % 2 == 0) {
      std::ofstream f(files[i], std::ios::binary | std::ios::trunc);
      f << "garbage";
    } else {
      std::ifstream in(files[i], std::ios::binary);
      std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      if (!text.empty()) text[rng() % text.size()] ^= 0x20;
      std::ofstream f(files[i], std::ios::binary | std::ios::trunc);
      f << text;
    }
  }
  SynthCache reader(cfg);
  SynthOptions opts;
  opts.timeout_sec = 60;
  opts.cache = &reader;
  CompileResult repaired = compile(spec, tofino(), opts);
  ASSERT_TRUE(repaired.ok()) << repaired.reason;
  EXPECT_EQ(to_string(cold.program), to_string(repaired.program));
  EXPECT_EQ(reader.counters().hits, 0);
  EXPECT_GT(reader.counters().corrupt, 0);
}

}  // namespace
}  // namespace parserhawk
