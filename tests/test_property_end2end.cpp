// End-to-end property tests: for randomly generated specifications, every
// compiler in the repository must produce implementations equivalent to
// the specification, and ParserHawk's resource usage must be invariant
// under the Figure 21 rewrites and never worse than the baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "baseline/baseline.h"
#include "helpers.h"
#include "random_spec.h"
#include "rewrite/rewrite.h"
#include "sim/testgen.h"
#include "support/timer.h"
#include "synth/compiler.h"
#include "synth/normalize.h"
#include "synth/verify.h"

namespace parserhawk {
namespace {

using testing::random_spec;
using testing::RandomSpecOptions;

void expect_equivalent(const ParserSpec& reference, const CompileResult& r,
                       std::uint64_t seed, const std::string& who) {
  ASSERT_TRUE(r.ok()) << who << " failed on seed " << seed << ": " << r.reason << "\n"
                      << to_string(reference);
  DiffTestOptions dt;
  dt.samples = 150;
  dt.seed = seed * 7 + 1;
  dt.max_iterations = r.program.max_iterations;
  auto mismatch = differential_test(r.reference, r.program, dt);
  ASSERT_FALSE(mismatch.has_value())
      << who << " mis-compiled seed " << seed << " on input " << mismatch->input.to_string()
      << "\nspec:\n"
      << to_string(reference) << "\nimpl:\n"
      << to_string(r.program);
}

class End2EndProperty : public ::testing::TestWithParam<int> {};

TEST_P(End2EndProperty, ParserHawkCompilesRandomSpecsCorrectly) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult r = compile(spec, tofino(), opts);
  expect_equivalent(spec, r, seed, "ParserHawk/tofino");
}

TEST_P(End2EndProperty, ParserHawkCompilesForIpuToo) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult r = compile(spec, ipu(), opts);
  expect_equivalent(spec, r, seed, "ParserHawk/ipu");
}

TEST_P(End2EndProperty, TofinoProxyIsCorrectWhereItCompiles) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 2000;
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  CompileResult r = baseline::compile_tofino_proxy(spec, tofino());
  if (!r.ok()) return;  // documented rejections are allowed; wrong output is not
  expect_equivalent(spec, r, seed, "tofino-proxy");
}

TEST_P(End2EndProperty, ParserHawkNeverUsesMoreEntriesThanProxy) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 3000;
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult ph = compile(spec, tofino(), opts);
  CompileResult proxy = baseline::compile_tofino_proxy(spec, tofino());
  if (!ph.ok() || !proxy.ok()) return;
  EXPECT_LE(ph.usage.tcam_entries, proxy.usage.tcam_entries)
      << "seed " << seed << "\n"
      << to_string(spec);
}

TEST_P(End2EndProperty, ResourcesInvariantUnderRewrites) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 4000;
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult base = compile(spec, tofino(), opts);
  if (!base.ok()) return;

  Rng mrng(seed + 5);
  std::vector<ParserSpec> variants = {
      rewrite::add_redundant_entries(spec, mrng, 2),
      rewrite::add_unreachable_entries(spec, mrng, 1),
      rewrite::split_entries(spec, mrng, 1),
      merge_extract_chains(spec),
  };
  for (const auto& variant : variants) {
    CompileResult r = compile(variant, tofino(), opts);
    ASSERT_TRUE(r.ok()) << "seed " << seed << "\n" << to_string(variant);
    EXPECT_EQ(r.usage.tcam_entries, base.usage.tcam_entries)
        << "seed " << seed << "\nbase:\n"
        << to_string(spec) << "\nvariant:\n"
        << to_string(variant);
  }
}

TEST_P(End2EndProperty, CanonicalizePreservesSemantics) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) + 5000;
  Rng rng(seed);
  ParserSpec spec = random_spec(rng);
  ParserSpec canon = canonicalize(spec);
  Rng srng(seed + 17);
  for (int i = 0; i < 200; ++i) {
    BitVec input = generate_path_input(spec, srng, 12, 48);
    ASSERT_TRUE(equivalent(run_spec(spec, input, 12), run_spec(canon, input, 12)))
        << "seed " << seed << " input " << input.to_string() << "\n"
        << to_string(spec) << "\nvs\n"
        << to_string(canon);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, End2EndProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Metamorphic properties: semantics-preserving spec transformations must
// yield parsers the verifier proves equivalent to the *original* spec, at
// identical resource usage. Names are not semantics (the IR is index-
// based), and pairwise-disjoint select rules match at most one rule per
// key, so their order is immaterial.
// ---------------------------------------------------------------------------

/// Rename every field, state and the spec itself.
ParserSpec rename_everything(const ParserSpec& spec) {
  ParserSpec out = spec;
  out.name = "renamed_" + spec.name;
  for (std::size_t f = 0; f < out.fields.size(); ++f)
    out.fields[f].name = "fld" + std::to_string(f) + "_" + out.fields[f].name;
  for (std::size_t s = 0; s < out.states.size(); ++s)
    out.states[s].name = "st" + std::to_string(s) + "_" + out.states[s].name;
  return out;
}

/// Reverse each state's reorderable rule prefix: the non-default rules
/// before the first default, when no key can match two of them (rules i, j
/// overlap iff they agree on every commonly-masked bit). Identity when no
/// state has such a prefix.
ParserSpec permute_disjoint_rules(const ParserSpec& spec) {
  ParserSpec out = spec;
  for (auto& st : out.states) {
    std::size_t prefix = 0;
    while (prefix < st.rules.size() && !st.rules[prefix].is_default()) ++prefix;
    if (prefix < 2) continue;
    bool disjoint = true;
    for (std::size_t i = 0; i < prefix && disjoint; ++i)
      for (std::size_t j = i + 1; j < prefix && disjoint; ++j)
        disjoint = ((st.rules[i].value ^ st.rules[j].value) & st.rules[i].mask &
                    st.rules[j].mask) != 0;
    if (!disjoint) continue;
    std::reverse(st.rules.begin(), st.rules.begin() + static_cast<std::ptrdiff_t>(prefix));
  }
  return out;
}

/// Compile `variant` and demand (a) the same TCAM/stage usage as `base`
/// and (b) formal equivalence to `original` per verify.cpp — with the
/// documented Inconclusive escape hatch falling back to differential
/// testing against the original spec.
void expect_metamorphic_equivalent(const ParserSpec& original, const CompileResult& base,
                                   const ParserSpec& variant, const std::string& who) {
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult r = compile(variant, tofino(), opts);
  ASSERT_TRUE(r.ok()) << who << ": " << r.reason << "\n" << to_string(variant);
  EXPECT_EQ(r.usage.tcam_entries, base.usage.tcam_entries) << who;
  EXPECT_EQ(r.usage.stages, base.usage.stages) << who;

  VerifyOutcome v = verify_equivalence(original, r.program);
  ASSERT_NE(v.kind, VerifyOutcome::Kind::Counterexample)
      << who << " diverges from the original spec on input " << v.counterexample.to_string()
      << "\noriginal:\n"
      << to_string(original) << "\nvariant:\n"
      << to_string(variant);
  if (v.kind == VerifyOutcome::Kind::Inconclusive) {
    DiffTestOptions dt;
    dt.samples = 200;
    dt.max_iterations = r.program.max_iterations;
    auto mismatch = differential_test(original, r.program, dt);
    EXPECT_FALSE(mismatch.has_value()) << who << " (differential fallback)";
  }
}

void check_metamorphic(const ParserSpec& spec) {
  SynthOptions opts;
  opts.timeout_sec = 60;
  CompileResult base = compile(spec, tofino(), opts);
  ASSERT_TRUE(base.ok()) << spec.name << ": " << base.reason;
  expect_metamorphic_equivalent(spec, base, rename_everything(spec), spec.name + "/renamed");
  expect_metamorphic_equivalent(spec, base, permute_disjoint_rules(spec),
                                spec.name + "/rule-permuted");
  expect_metamorphic_equivalent(spec, base, permute_disjoint_rules(rename_everything(spec)),
                                spec.name + "/renamed+permuted");
}

TEST(Metamorphic, FixedSpecsSurviveRenameAndRulePermutation) {
  check_metamorphic(testing::figure3());  // 6 disjoint exact-match rules
  check_metamorphic(testing::spec2());
  check_metamorphic(testing::mpls_loop());
}

TEST(Metamorphic, RandomSpecsSurviveRenameAndRulePermutation) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed + 6000);
    ParserSpec spec = random_spec(rng);
    check_metamorphic(spec);
  }
}

TEST(Metamorphic, PermutationHelperPreservesConcreteSemantics) {
  // Sanity of the transform itself, independent of the compiler: the
  // permuted spec agrees with the original on sampled inputs.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed + 7000);
    ParserSpec spec = random_spec(rng);
    ParserSpec permuted = permute_disjoint_rules(rename_everything(spec));
    Rng srng(seed);
    for (int i = 0; i < 100; ++i) {
      BitVec input = generate_path_input(spec, srng, 12, 48);
      ASSERT_TRUE(equivalent(run_spec(spec, input, 12), run_spec(permuted, input, 12)))
          << "seed " << seed << " input " << input.to_string() << "\n"
          << to_string(spec) << "\nvs\n"
          << to_string(permuted);
    }
  }
}

TEST(End2EndTimeout, TinyBudgetWithParallelPortfolioTimesOutPromptly) {
  // A 60-bit transition key forces the multi-layer key-split search — far
  // more work than a 20 ms budget allows — so the compile must come back
  // as Timeout, promptly, with every pool worker joined (the pool is
  // scoped inside compile()), not hang or crash. The wall-clock bound is
  // ~2x the budget plus scheduling/Z3-query slack.
  SpecBuilder b("timeout_wide");
  b.field("k", 60).field("body", 8);
  auto st = b.state("start").extract("k").select({b.whole("k")});
  Rng rng(42);
  for (int i = 0; i < 6; ++i) {
    std::uint64_t mask = rng() & ((std::uint64_t{1} << 60) - 1);
    st.when(rng() & mask, mask, i % 2 == 0 ? "more" : "accept");
  }
  st.otherwise("reject");
  b.state("more").extract("body").otherwise("accept");
  ParserSpec spec = b.build().value();

  for (int threads : {2, 8}) {
    SynthOptions opts;
    opts.timeout_sec = 0.02;
    opts.num_threads = threads;
    Stopwatch watch;
    CompileResult r = compile(spec, tofino(), opts);
    double elapsed = watch.elapsed_sec();
    EXPECT_EQ(r.status, CompileStatus::Timeout)
        << "threads=" << threads << ": " << to_string(r.status) << " (" << r.reason << ")";
    // "Promptly": the budget is 20 ms; losers are cancelled cooperatively
    // at CEGIS-round boundaries, so allow generous-but-bounded slack for
    // in-flight Z3 queries on a loaded CI machine. Sanitizer builds
    // stretch every query, so the bound is overridable (ci/run_tsan.sh).
    double slack = 2.0;
    if (const char* s = std::getenv("PH_TIMEOUT_SLACK_SEC")) slack = std::atof(s);
    EXPECT_LT(elapsed, slack) << "threads=" << threads << " took " << elapsed << "s";
  }

  // No leaked threads: an immediate follow-up compile with a sane budget
  // still works (a leaked pool or poisoned deadline would wedge it). A
  // small spec keeps this instant — what matters is that a *fresh* pool
  // comes up cleanly right after the timed-out one was torn down.
  SpecBuilder small("after_timeout");
  small.field("t", 8);
  small.state("start")
      .extract("t")
      .select({small.whole("t")})
      .when_exact(0x11, "accept")
      .otherwise("reject");
  ParserSpec small_spec = small.build().value();
  SynthOptions sane;
  sane.timeout_sec = 60;
  sane.num_threads = 2;
  CompileResult ok = compile(small_spec, tofino(), sane);
  EXPECT_TRUE(ok.ok()) << ok.reason;
}

TEST(End2EndLoops, RandomLoopySpecsOnTofino) {
  for (int seed = 100; seed < 104; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    RandomSpecOptions o;
    o.allow_loops = true;
    ParserSpec spec = random_spec(rng, o);
    SynthOptions opts;
    opts.timeout_sec = 60;
    CompileResult r = compile(spec, tofino(), opts);
    ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.reason << "\n" << to_string(spec);
    DiffTestOptions dt;
    dt.samples = 150;
    dt.max_iterations = r.program.max_iterations;
    auto mismatch = differential_test(r.reference, r.program, dt);
    EXPECT_FALSE(mismatch.has_value()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace parserhawk
