#include "sim/testgen.h"

#include <gtest/gtest.h>

#include <set>

#include "helpers.h"
#include "ir/builder.h"

namespace parserhawk {
namespace {

using testing::figure3;
using testing::mpls_loop;
using testing::spec2;

TEST(PathInput, ReachesDeepStatesOften) {
  // figure3's N2 is hit only on tranKey==14: uniform sampling hits it with
  // p=1/16; the path generator must do far better.
  ParserSpec spec = figure3();
  Rng rng(123);
  int n2_hits = 0;
  for (int i = 0; i < 200; ++i) {
    BitVec input = generate_path_input(spec, rng);
    ParseResult r = run_spec(spec, input);
    if (r.dict.count(2)) ++n2_hits;
  }
  EXPECT_GT(n2_hits, 10);
}

TEST(PathInput, CoversAllBranchesOfSpec2) {
  ParserSpec spec = spec2();
  Rng rng(7);
  bool with_f1 = false, without_f1 = false;
  for (int i = 0; i < 100; ++i) {
    ParseResult r = run_spec(spec, generate_path_input(spec, rng));
    if (r.outcome != ParseOutcome::Accepted) continue;
    (r.dict.count(1) ? with_f1 : without_f1) = true;
  }
  EXPECT_TRUE(with_f1);
  EXPECT_TRUE(without_f1);
}

TEST(PathInput, HandlesLoops) {
  ParserSpec spec = mpls_loop();
  Rng rng(9);
  std::set<int> lengths;
  for (int i = 0; i < 200; ++i) {
    BitVec input = generate_path_input(spec, rng, /*max_iterations=*/8);
    ParseResult r = run_spec(spec, input, 8);
    if (r.outcome == ParseOutcome::Accepted) lengths.insert(r.bits_consumed);
  }
  EXPECT_GE(lengths.size(), 2u);  // stacks of different depths observed
}

TEST(PathInput, PadsToMinBits) {
  ParserSpec spec = spec2();
  Rng rng(1);
  BitVec input = generate_path_input(spec, rng, 64, /*min_bits=*/50);
  EXPECT_GE(input.size(), 50);
}

TEST(PathInput, DeterministicPerSeed) {
  ParserSpec spec = figure3();
  Rng a(5), b(5);
  EXPECT_EQ(generate_path_input(spec, a), generate_path_input(spec, b));
}

// A correct hand impl of spec2 (Table 1) must pass the differential test.
TcamProgram good_impl() {
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

TEST(DifferentialTest, PassesCorrectImpl) {
  DiffTestOptions opts;
  opts.samples = 200;
  EXPECT_FALSE(differential_test(spec2(), good_impl(), opts).has_value());
}

TEST(DifferentialTest, CatchesWrongTransition) {
  TcamProgram p = good_impl();
  p.entries[1].next_state = kReject;  // field0[0]==0 now wrongly rejects
  auto mismatch = differential_test(spec2(), p);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_NE(mismatch->spec_result.outcome, mismatch->impl_result.outcome);
}

TEST(DifferentialTest, CatchesMissingExtract) {
  TcamProgram p = good_impl();
  p.entries[1].extracts.clear();  // field1 never recorded
  auto mismatch = differential_test(spec2(), p);
  ASSERT_TRUE(mismatch.has_value());
}

TEST(DifferentialTest, CatchesFlippedCondition) {
  TcamProgram p = good_impl();
  std::swap(p.entries[1].value, p.entries[2].value);  // branch sense inverted
  EXPECT_TRUE(differential_test(spec2(), p).has_value());
}

TEST(DifferentialTest, ReportsTheFailingInput) {
  TcamProgram p = good_impl();
  p.entries[1].next_state = kReject;
  auto mismatch = differential_test(spec2(), p);
  ASSERT_TRUE(mismatch.has_value());
  // Replaying the reported input must reproduce the disagreement.
  ParseResult s = run_spec(spec2(), mismatch->input);
  ParseResult i = run_impl(p, mismatch->input);
  EXPECT_FALSE(equivalent(s, i));
}

}  // namespace
}  // namespace parserhawk
