// The Opt7 work-stealing pool: submission, stealing under contention,
// cooperative cancellation mid-task, nested batches, and drain-then-join
// shutdown with work still queued.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "support/cancel.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace parserhawk {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i)
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }  // drain-then-join shutdown
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, RunAllBlocksUntilBatchCompletes) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 50; ++i)
    tasks.push_back([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 50);  // no synchronization needed: run_all returned
}

TEST(ThreadPool, WorkIsStolenAcrossWorkersUnderContention) {
  // One long task pins a worker; the many short tasks behind it in the
  // round-robin queues must be stolen by the free workers, so the batch
  // finishes far sooner than a no-stealing schedule would allow.
  ThreadPool pool(4);
  std::set<std::thread::id> seen;
  std::mutex mu;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  for (int i = 0; i < 400; ++i)
    tasks.push_back([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      std::lock_guard<std::mutex> lk(mu);
      seen.insert(std::this_thread::get_id());
    });
  Stopwatch watch;
  pool.run_all(std::move(tasks));
  // 400 x 100us serially is >= 40ms per worker queue; with stealing (and
  // the caller helping) the short tasks spread over >= 2 threads.
  EXPECT_GE(seen.size(), 2u);
  EXPECT_LT(watch.elapsed_sec(), 5.0);
}

TEST(ThreadPool, CancellationStopsTasksMidLoop) {
  ThreadPool pool(2);
  CancelSource cancel;
  std::atomic<bool> started{false};
  std::atomic<bool> observed_cancel{false};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&, token = cancel.token()] {
    started = true;
    // Cooperative loop: spins until the token trips (bounded by the
    // failsafe so a broken token cannot hang the suite).
    for (int i = 0; i < 100000; ++i) {
      if (token.cancelled()) {
        observed_cancel = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  tasks.push_back([&] {
    while (!started) std::this_thread::sleep_for(std::chrono::microseconds(50));
    cancel.cancel();
  });
  pool.run_all(std::move(tasks));
  EXPECT_TRUE(observed_cancel.load());
}

TEST(ThreadPool, CancelledDeadlineReportsExpired) {
  CancelSource cancel;
  Deadline unlimited = Deadline::none();
  Deadline tokened = unlimited.with_token(cancel.token());
  EXPECT_FALSE(tokened.expired());
  cancel.cancel();
  EXPECT_TRUE(tokened.expired());
  EXPECT_TRUE(tokened.cancelled());
  // The base deadline is unaffected, and remaining_sec stays time-based
  // (never collapses to the Z3 "0 = unlimited" trap).
  EXPECT_FALSE(unlimited.expired());
  EXPECT_GT(tokened.remaining_sec(), 0.0);
}

TEST(ThreadPool, NestedRunAllFromPoolTasksDoesNotDeadlock) {
  // Mirrors the compiler's shape: an outer per-state batch whose tasks
  // each run an inner per-attempt batch on the same pool.
  ThreadPool pool(2);  // fewer workers than outer tasks forces helping
  std::atomic<int> inner_done{0};
  std::vector<std::function<void()>> outer;
  for (int s = 0; s < 4; ++s)
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int i = 0; i < 8; ++i)
        inner.push_back([&] { inner_done.fetch_add(1, std::memory_order_relaxed); });
      pool.run_all(std::move(inner));
    });
  pool.run_all(std::move(outer));
  EXPECT_EQ(inner_done.load(), 32);
}

TEST(ThreadPool, ShutdownWithQueuedWorkIsClean) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    // Two slow tasks occupy both workers so the rest sit queued when the
    // destructor runs; drain-then-join must still execute all of them.
    for (int i = 0; i < 2; ++i)
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    for (int i = 0; i < 100; ++i)
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(count.load(), 102);
}

TEST(ThreadPool, SingleWorkerPoolStillCompletesBatches) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i)
    tasks.push_back([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, StatsAreConsistentAfterDrain) {
  // Every task flows submit -> try_acquire -> execute, so once a batch has
  // drained the counters must reconcile exactly: nothing lost, nothing run
  // twice, steals a subset of executions, high-water within bounds.
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 300; ++i)
    tasks.push_back([] { std::this_thread::sleep_for(std::chrono::microseconds(50)); });
  pool.run_all(std::move(tasks));

  ThreadPoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, 300);
  EXPECT_EQ(s.executed, s.submitted);
  EXPECT_GE(s.steals, 0);
  EXPECT_LE(s.steals, s.executed);
  EXPECT_GE(s.queue_depth_hwm, 1);
  EXPECT_LE(s.queue_depth_hwm, s.submitted);
}

TEST(ThreadPool, PublishMetricsExportsPoolCounters) {
  obs::Metrics::get().reset();
  obs::Metrics::get().enable();
  {
    ThreadPool pool(2);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i) tasks.push_back([] {});
    pool.run_all(std::move(tasks));
    pool.publish_metrics();
  }
  EXPECT_EQ(obs::Metrics::get().counter("pool.submitted"), 64);
  EXPECT_EQ(obs::Metrics::get().counter("pool.executed"), 64);
  obs::Metrics::get().disable();
  obs::Metrics::get().reset();
}

}  // namespace
}  // namespace parserhawk
