// Seeded fuzz of the hawk front-end (lexer, parser, lowering): random byte
// soup, printable/token soup, and byte-level mutations of known-valid
// sources. The properties are crash-freedom on arbitrary input and, for
// every input the front-end *accepts*, a well-formed result: validate()
// holds, the spec survives the emit -> reparse round trip, and the
// interpreter runs it without faulting. Every run is deterministic (fixed
// seeds), so a failure here is a regression, not flake.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.h"
#include "lang/lang.h"
#include "random_spec.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "suite/suite.h"
#include "support/rng.h"

namespace parserhawk {
namespace {

using testing::random_spec;

/// The contract for any source the front-end accepts: the IR is valid, the
/// emitter round-trips it, and the interpreter can execute it.
void expect_well_formed_if_accepted(const std::string& source) {
  auto spec = lang::parse_source(source);
  if (!spec) return;  // rejection is always fine; crashing is the bug
  auto valid = validate(*spec);
  EXPECT_TRUE(valid.ok()) << "accepted spec fails validate(): "
                                 << valid.error().to_string() << "\nsource:\n"
                                 << source;
  if (!valid.ok()) return;

  std::string emitted = lang::emit_source(*spec);
  auto reparsed = lang::parse_source(emitted);
  ASSERT_TRUE(reparsed.ok())
      << "emit_source output no longer parses: " << reparsed.error().to_string() << "\nemitted:\n"
      << emitted;
  EXPECT_TRUE(validate(*reparsed).ok());
  // The emitter is a fixed point after one round trip.
  EXPECT_EQ(emitted, lang::emit_source(*reparsed)) << "emit/parse/emit is not stable";

  // Lowered execution must not fault on arbitrary inputs either.
  Rng srng(0x51u ^ spec->states.size());
  for (int i = 0; i < 4; ++i) {
    BitVec input = generate_path_input(*spec, srng, 8, 32);
    run_spec(*spec, input, 8);
  }
}

TEST(FuzzLang, RandomByteSoupNeverCrashes) {
  Rng rng(0xf00dfeed);
  for (int i = 0; i < 300; ++i) {
    std::string soup;
    std::size_t n = rng() % 1024;
    for (std::size_t j = 0; j < n; ++j) soup.push_back(static_cast<char>(rng() & 0xff));
    expect_well_formed_if_accepted(soup);
  }
}

TEST(FuzzLang, PrintableSoupNeverCrashes) {
  // Printable-only soup gets past the lexer more often than raw bytes.
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789_{}();:,<>[]&x \n\t/*\"\\-=.";
  Rng rng(0xbadc0de);
  for (int i = 0; i < 300; ++i) {
    std::string soup;
    std::size_t n = rng() % 512;
    for (std::size_t j = 0; j < n; ++j) soup.push_back(alphabet[rng() % alphabet.size()]);
    expect_well_formed_if_accepted(soup);
  }
}

TEST(FuzzLang, TokenSoupNeverCrashes) {
  // Valid tokens in random order reach the deepest parser states: partial
  // declarations, dangling selects, nested-looking braces, huge literals.
  const std::vector<std::string> tokens = {
      "parser",  "state",   "field",     "extract", "transition", "select", "default",
      "accept",  "reject",  "varbit",    "lookahead", "len",      "{",      "}",
      "(",       ")",       "<",         ">",       "[",          "]",      ":",
      ";",       ",",       "&&&",       "=",       "*",          "-",      "start",
      "f0",      "f1",      "s0",        "s1",      "0",          "1",      "8",
      "48",      "0x0800",  "0xff00",    "0xffffffffffffffff",    "4294967296",
      "//x\n",   "/*y*/",   "etherType", "ihl"};
  Rng rng(0x70c375);
  for (int i = 0; i < 400; ++i) {
    std::string soup;
    std::size_t n = rng() % 96;
    for (std::size_t j = 0; j < n; ++j) {
      soup += tokens[rng() % tokens.size()];
      soup += " ";
    }
    expect_well_formed_if_accepted(soup);
  }
}

std::vector<std::string> seed_sources() {
  std::vector<std::string> out;
  out.push_back(lang::emit_source(parserhawk::testing::spec2()));
  out.push_back(lang::emit_source(parserhawk::testing::figure3()));
  out.push_back(lang::emit_source(parserhawk::testing::mpls_loop()));
  out.push_back(lang::emit_source(suite::parse_ethernet()));
  out.push_back(lang::emit_source(suite::parse_mpls()));
  out.push_back(lang::emit_source(suite::ipv4_options()));  // varbit + len exprs
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    out.push_back(lang::emit_source(random_spec(rng)));
  }
  return out;
}

TEST(FuzzLang, MutatedValidSpecsNeverCrash) {
  Rng rng(0x5eed0);
  for (const std::string& base : seed_sources()) {
    ASSERT_TRUE(lang::parse_source(base).ok()) << base;
    for (int m = 0; m < 60; ++m) {
      std::string mut = base;
      // One to three stacked mutations: flip, delete, insert, truncate,
      // or duplicate a chunk.
      int edits = 1 + static_cast<int>(rng() % 3);
      for (int e = 0; e < edits && !mut.empty(); ++e) {
        std::size_t pos = rng() % mut.size();
        switch (rng() % 5) {
          case 0:
            mut[pos] = static_cast<char>(mut[pos] ^ (1u << (rng() % 8)));
            break;
          case 1:
            mut.erase(pos, 1 + rng() % 4);
            break;
          case 2:
            mut.insert(pos, 1, static_cast<char>(rng() & 0xff));
            break;
          case 3:
            mut.resize(pos);  // truncate mid-token / mid-comment
            break;
          case 4: {
            std::size_t len = 1 + rng() % 16;
            mut.insert(pos, mut.substr(pos, len));
            break;
          }
        }
      }
      expect_well_formed_if_accepted(mut);
    }
  }
}

TEST(FuzzLang, SpliceTwoSpecsNeverCrashes) {
  // Crossover: a prefix of one valid source glued to a suffix of another —
  // structurally plausible garbage (balanced-ish braces, real keywords).
  auto sources = seed_sources();
  Rng rng(0xcafe5);
  for (int i = 0; i < 150; ++i) {
    const std::string& a = sources[rng() % sources.size()];
    const std::string& b = sources[rng() % sources.size()];
    std::string spliced =
        a.substr(0, rng() % (a.size() + 1)) + b.substr(b.size() - rng() % (b.size() + 1));
    expect_well_formed_if_accepted(spliced);
  }
}

TEST(FuzzLang, RoundTripOnAllSeedSources) {
  // The unmutated seeds must be *accepted* (not just crash-free) and
  // round-trip exactly.
  for (const std::string& src : seed_sources()) {
    auto spec = lang::parse_source(src);
    ASSERT_TRUE(spec.ok()) << src;
    expect_well_formed_if_accepted(src);
  }
}

}  // namespace
}  // namespace parserhawk
