#include "synth/verify.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "ir/builder.h"
#include "sim/interp.h"

namespace parserhawk {
namespace {

using testing::mpls_loop;
using testing::spec1;
using testing::spec2;

TcamProgram table1_impl() {
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.layouts[{0, 1}] = StateLayout{{KeyPart{KeyPart::Kind::FieldSlice, 0, 0, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}}, 0, 1});
  p.entries.push_back(TcamEntry{0, 1, 0, 0, 1, {ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  p.entries.push_back(TcamEntry{0, 1, 1, 1, 1, {}, 0, kAccept});
  return p;
}

TEST(Verify, Table1ImplEquivalentToSpec2) {
  VerifyOutcome r = verify_equivalence(spec2(), table1_impl());
  EXPECT_EQ(r.kind, VerifyOutcome::Kind::Equivalent) << r.detail;
}

TEST(Verify, WrongTransitionYieldsCounterexample) {
  TcamProgram p = table1_impl();
  p.entries[1].next_state = kReject;
  VerifyOutcome r = verify_equivalence(spec2(), p);
  ASSERT_EQ(r.kind, VerifyOutcome::Kind::Counterexample);
  // The counterexample must actually expose the difference.
  ParseResult s = run_spec(spec2(), r.counterexample);
  ParseResult i = run_impl(p, r.counterexample);
  EXPECT_FALSE(equivalent(s, i));
}

TEST(Verify, MissingExtractDetected) {
  TcamProgram p = table1_impl();
  p.entries[1].extracts.clear();
  VerifyOutcome r = verify_equivalence(spec2(), p);
  ASSERT_EQ(r.kind, VerifyOutcome::Kind::Counterexample);
  ParseResult s = run_spec(spec2(), r.counterexample);
  ParseResult i = run_impl(p, r.counterexample);
  EXPECT_FALSE(equivalent(s, i));
}

TEST(Verify, FlippedConditionDetected) {
  TcamProgram p = table1_impl();
  std::swap(p.entries[1].value, p.entries[2].value);
  EXPECT_EQ(verify_equivalence(spec2(), p).kind, VerifyOutcome::Kind::Counterexample);
}

TEST(Verify, LookaheadImplOfSpec1) {
  // Fused single-row impl: extract both fields unconditionally.
  TcamProgram p;
  p.fields = {Field{"field0", 4, false}, Field{"field1", 4, false}};
  p.entries.push_back(
      TcamEntry{0, 0, 0, 0, 0, {ExtractOp{0, -1, 0, 0}, ExtractOp{1, -1, 0, 0}}, 0, kAccept});
  EXPECT_EQ(verify_equivalence(spec1(), p).kind, VerifyOutcome::Kind::Equivalent);
}

TEST(Verify, LoopyImplAgainstLoopySpec) {
  // Two-row looping MPLS impl (lookahead on the bottom-of-stack bit).
  TcamProgram p;
  p.fields = {Field{"label", 8, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 7, 1}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0, 1, {ExtractOp{0, -1, 0, 0}}, 0, 0});
  p.entries.push_back(TcamEntry{0, 0, 1, 1, 1, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  p.max_iterations = 16;
  VerifyOptions vo;
  vo.max_iterations_spec = 4;
  vo.max_iterations_impl = 8;
  EXPECT_EQ(verify_equivalence(mpls_loop(), p, vo).kind, VerifyOutcome::Kind::Equivalent);
}

TEST(Verify, CatchesSubtleMaskBug) {
  // Impl matches field0[0] with an inverted value on one row: only inputs
  // reaching that row expose it.
  TcamProgram p = table1_impl();
  p.entries[1].value = 1;
  p.entries[2].value = 0;
  ASSERT_EQ(verify_equivalence(spec2(), p).kind, VerifyOutcome::Kind::Counterexample);
}

TEST(Verify, VarbitSpecThrows) {
  SpecBuilder b("vb");
  b.field("len", 4).varbit_field("opts", 32);
  b.state("s").extract("len").extract_var("opts", "len", 8, 0).otherwise("accept");
  TcamProgram p;
  p.fields = {Field{"len", 4, false}, Field{"opts", 32, false}};
  EXPECT_THROW(verify_equivalence(b.build().value(), p), std::invalid_argument);
}

TEST(Verify, RespectsExplicitInputWidth) {
  VerifyOptions vo;
  vo.input_bits = 8;
  EXPECT_EQ(verify_equivalence(spec2(), table1_impl(), vo).kind, VerifyOutcome::Kind::Equivalent);
}

TEST(Verify, RejectOnlyDifferenceInDictIgnored) {
  // Impl extracts nothing when rejecting; spec extracted field0 first.
  // Equivalence must still hold (dict unobservable on reject).
  SpecBuilder b("rej");
  b.field("f", 4);
  b.state("s").extract("f").select({b.whole("f")}).when_exact(0xF, "accept");
  // no default: everything else rejects *after* extracting f.
  ParserSpec spec = b.build().value();
  TcamProgram p;
  p.fields = {Field{"f", 4, false}};
  p.layouts[{0, 0}] = StateLayout{{KeyPart{KeyPart::Kind::Lookahead, -1, 0, 4}}};
  p.entries.push_back(TcamEntry{0, 0, 0, 0xF, 0xF, {ExtractOp{0, -1, 0, 0}}, 0, kAccept});
  // No catch-all row: non-0xF inputs reject without extracting.
  EXPECT_EQ(verify_equivalence(spec, p).kind, VerifyOutcome::Kind::Equivalent);
}

}  // namespace
}  // namespace parserhawk
