// Per-compile attribution reports (DESIGN.md §11): the attribution tree
// must explain where a compile's wall time went, attribute cache hits to the
// cache lookup (not the solver), stay structurally identical at every thread
// count, and — together with the flight recorder — leave a post-mortem dump
// naming the in-flight state when a compile blows its deadline.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "cache/cache.h"
#include "helpers.h"
#include "json_validator.h"
#include "obs/flight.h"
#include "obs/report.h"
#include "synth/compiler.h"

namespace parserhawk {
namespace {

using obs::CompileReport;
using obs::ReportBuilder;
using obs::StateReport;
using parserhawk::testing::figure3;
using parserhawk::testing::is_valid_json;
using parserhawk::testing::ScratchDir;

/// Report/flight hygiene: both are process-global; every test starts clean.
class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::install_report(nullptr);
    obs::flight::set_auto_dump_path("");
    obs::flight::reset();
  }
  void TearDown() override { SetUp(); }
};

CompileReport compile_with_report(const ParserSpec& spec, SynthOptions opts,
                                  CompileResult* result_out = nullptr) {
  ReportBuilder builder;
  opts.report = &builder;
  CompileResult r = compile(spec, tofino(), opts);
  if (result_out != nullptr) *result_out = std::move(r);
  return builder.report();
}

const StateReport* find_state(const CompileReport& rep, const std::string& name) {
  for (const auto& s : rep.states)
    if (s.name == name) return &s;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Attribution completeness
// ---------------------------------------------------------------------------

TEST_F(ReportTest, AttributionSumsToCompileWallTimeSingleThreaded) {
  SynthOptions opts;
  opts.num_threads = 1;
  CompileResult result;
  CompileReport rep = compile_with_report(figure3(), opts, &result);
  ASSERT_TRUE(result.ok()) << result.reason;

  EXPECT_EQ(rep.spec, "figure3");
  EXPECT_EQ(rep.status, "success");
  EXPECT_EQ(rep.threads, 1);
  ASSERT_GT(rep.total_sec, 0);
  // The acceptance bound: top-level phases explain >= 95% of the compile
  // span at --threads 1 (phases are contiguous coordinating-thread
  // intervals, so in practice this is ~100%).
  EXPECT_GE(rep.attributed_sec(), 0.95 * rep.total_sec)
      << "attributed " << rep.attributed_sec() << " of " << rep.total_sec;
  // ... and never more than the whole compile (small slack for timer skew).
  EXPECT_LE(rep.attributed_sec(), 1.05 * rep.total_sec + 1e-3);

  // Every spec state is accounted for, with winner provenance.
  ASSERT_EQ(rep.states.size(), 4u);  // start + N1 + N2 + N3
  for (const auto& s : rep.states) {
    EXPECT_TRUE(s.source == "solver" || s.source == "trivial") << s.name << ": " << s.source;
    EXPECT_GE(s.winner_variant, 0) << s.name;
    EXPECT_GE(s.seconds, 0) << s.name;
  }
  // The dispatch state needed the solver: Z3 queries and budget attempts
  // must have been attributed to it.
  const StateReport* start = find_state(rep, "start");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->source, "solver");
  EXPECT_GT(start->budget_attempts, 0);
  std::int64_t queries = 0;
  for (const auto& [phase, z] : start->z3) queries += z.queries;
  EXPECT_GT(queries, 0);

  // Renderings: valid JSON, and the explain table names the phases.
  EXPECT_TRUE(is_valid_json(rep.to_json())) << rep.to_json();
  std::string table = rep.explain();
  EXPECT_NE(table.find("solve_states"), std::string::npos);
  EXPECT_NE(table.find("start"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cache attribution
// ---------------------------------------------------------------------------

TEST_F(ReportTest, CacheHitCompileAttributesToCacheLookupNotSolver) {
  cache::SynthCache sc;
  SynthOptions opts;
  opts.num_threads = 1;
  opts.cache = &sc;

  // Cold compile fills the cache and reports only misses.
  CompileReport cold = compile_with_report(figure3(), opts);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_GT(cold.cache_misses, 0);

  // Warm compile: every state the solver produced cold now replays from
  // the cache, with its wall time attributed to the cache lookup — not
  // solve_state. Trivial states (no key to synthesize) skip the cache on
  // both runs and stay "trivial".
  CompileResult warm_result;
  CompileReport warm = compile_with_report(figure3(), opts, &warm_result);
  ASSERT_TRUE(warm_result.ok()) << warm_result.reason;
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(warm.cache_hits, cold.cache_misses);
  EXPECT_GT(warm.cache_hits, 0);
  ASSERT_EQ(warm.states.size(), cold.states.size());
  for (const auto& s : warm.states) {
    const StateReport* was = find_state(cold, s.name);
    ASSERT_NE(was, nullptr) << s.name;
    if (was->source == "trivial") {
      EXPECT_EQ(s.source, "trivial") << s.name;
      continue;
    }
    EXPECT_EQ(was->source, "solver") << s.name;
    EXPECT_EQ(s.source, "cache") << s.name;
    EXPECT_GT(s.cache_lookups, 0) << s.name;
    EXPECT_EQ(s.budget_attempts, 0) << s.name;  // the solver never ran
    // Winner provenance survives the cache round-trip.
    EXPECT_EQ(s.winner_variant, was->winner_variant) << s.name;
    EXPECT_EQ(s.winner_budget, was->winner_budget) << s.name;
    EXPECT_EQ(s.winner_restricted, was->winner_restricted) << s.name;
  }
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

TEST_F(ReportTest, ReportStructureIsThreadCountInvariant) {
  SynthOptions opts;
  opts.num_threads = 1;
  CompileReport seq = compile_with_report(figure3(), opts);
  opts.num_threads = 4;
  CompileReport par = compile_with_report(figure3(), opts);

  EXPECT_EQ(seq.status, "success");
  EXPECT_EQ(par.status, "success");
  EXPECT_EQ(par.threads, 4);

  // Same states, same winner provenance — the deterministic-winner rule
  // (options.h Opt7) seen through the report.
  ASSERT_EQ(seq.states.size(), par.states.size());
  for (std::size_t i = 0; i < seq.states.size(); ++i) {
    const StateReport& a = seq.states[i];
    const StateReport& b = par.states[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.source, b.source) << a.name;
    EXPECT_EQ(a.winner_variant, b.winner_variant) << a.name;
    EXPECT_EQ(a.winner_budget, b.winner_budget) << a.name;
    EXPECT_EQ(a.winner_restricted, b.winner_restricted) << a.name;
  }
  // Same top-level phase sequence (timings differ, structure must not).
  ASSERT_EQ(seq.phases.size(), par.phases.size());
  for (std::size_t i = 0; i < seq.phases.size(); ++i)
    EXPECT_EQ(seq.phases[i].name, par.phases[i].name);
}

// ---------------------------------------------------------------------------
// Deadline-starved compiles leave a flight dump
// ---------------------------------------------------------------------------

TEST_F(ReportTest, DeadlineStarvedCompileAutoWritesFlightDumpNamingTheState) {
  ScratchDir scratch("report_starved");
  std::string dump_path = scratch.file("starved.flight.json");
  obs::flight::set_auto_dump_path(dump_path);

  SynthOptions opts;
  opts.num_threads = 1;
  opts.timeout_sec = 1e-9;  // expires before the first solver attempt
  CompileResult result;
  CompileReport rep = compile_with_report(figure3(), opts, &result);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, CompileStatus::Timeout);
  EXPECT_EQ(rep.status, "timeout");

  std::ifstream f(dump_path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "no flight dump at " << dump_path;
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string dump = buf.str();
  EXPECT_TRUE(is_valid_json(dump)) << dump;
  EXPECT_NE(dump.find("\"reason\":\"deadline_exhausted\""), std::string::npos);
  // The dump fires while the starved state's span is still open, so
  // in_progress names the state being solved ("solve_state:<name>").
  auto ip_begin = dump.find("\"in_progress\":[");
  auto ip_end = dump.find("],\"events\"");
  ASSERT_NE(ip_begin, std::string::npos);
  ASSERT_NE(ip_end, std::string::npos);
  std::string in_progress = dump.substr(ip_begin, ip_end - ip_begin);
  EXPECT_NE(in_progress.find("solve_state:"), std::string::npos) << in_progress;
}

// ---------------------------------------------------------------------------
// Hook behavior without an installed builder
// ---------------------------------------------------------------------------

TEST_F(ReportTest, HooksAreNoOpsWithoutAnInstalledBuilder) {
  EXPECT_FALSE(obs::report_on());
  // None of these may crash or leak into a later builder.
  obs::report_z3("synth", 0.001, "sat");
  obs::report_cegis_rounds(3);
  obs::report_cache("start", true, 0.0001);
  obs::report_state_result("start", 0.01, "solver", 0, 1, true, 2);
  obs::report_variant_time("start", 0, 0.01);

  ReportBuilder builder;
  obs::install_report(&builder);
  EXPECT_TRUE(obs::report_on());
  obs::install_report(nullptr);
  CompileReport rep = builder.report();
  EXPECT_TRUE(rep.states.empty());
  EXPECT_TRUE(rep.phases.empty());
}

}  // namespace
}  // namespace parserhawk
