// Flight recorder (DESIGN.md §11): lossless-by-design wrap-around, the
// 8-thread concurrent-record contract (run under TSan by ci/run_tsan.sh —
// this file is part of the test_obs binary), the disabled-mode contract,
// dump JSON validity, open-span attribution, and the auto-dump once-guard.
// Also covers the exposition layer (expo.h): histogram quantile error
// bounds, snapshot deltas, and Prometheus text-format rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "helpers.h"
#include "json_validator.h"
#include "obs/expo.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace parserhawk::obs {
namespace {

using parserhawk::testing::is_valid_json;

/// Flight-ring hygiene: the rings are process-global and ON by default, so
/// every test starts from an empty window with auto dumps disarmed.
class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight::enable();
    flight::set_auto_dump_path("");
    flight::reset();
    Metrics::get().disable();
    Metrics::get().reset();
  }
  void TearDown() override { SetUp(); }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Ring semantics
// ---------------------------------------------------------------------------

TEST_F(FlightTest, OverflowWrapsWithCountsPreserved) {
  const int extra = 100;
  const int total = flight::kRingSlots + extra;
  for (int i = 0; i < total; ++i)
    flight::record(flight::EventKind::Note, "wrap", std::to_string(i).c_str());

  flight::Snapshot snap = flight::snapshot();
  // This thread's events: exactly one ring of the newest, with the overflow
  // accounted for — nothing silently vanishes.
  std::vector<const flight::Event*> mine;
  for (const auto& e : snap.events)
    if (e.name == "wrap") mine.push_back(&e);
  ASSERT_EQ(static_cast<int>(mine.size()), flight::kRingSlots);
  EXPECT_EQ(snap.total_recorded, total);
  EXPECT_EQ(snap.dropped, extra);
  // Oldest events were dropped: the retained window is the newest
  // kRingSlots in recording order.
  for (int i = 0; i < flight::kRingSlots; ++i)
    EXPECT_EQ(mine[static_cast<std::size_t>(i)]->detail, std::to_string(extra + i));
}

TEST_F(FlightTest, EightThreadConcurrentRecordIsAccountedExactly) {
  const int kThreads = 8;
  const int kPerThread = 2000;  // > kRingSlots: every ring wraps
  std::atomic<bool> go{false};
  std::atomic<bool> stop_reader{false};

  // A reader hammering snapshot() while writers record: slots mid-write are
  // skipped, never torn (the TSan run is what proves the "never a data
  // race" half of the contract).
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_acquire)) {
      flight::Snapshot s = flight::snapshot();
      EXPECT_GE(s.dropped, 0);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::string tag = "w" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i)
        flight::record(flight::EventKind::Note, tag.c_str(), nullptr,
                       static_cast<std::int64_t>(i));
    });
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();

  flight::Snapshot snap = flight::snapshot();
  // Quiescent accounting is exact: every record is either retained or
  // counted as dropped.
  EXPECT_EQ(snap.total_recorded, static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.dropped,
            snap.total_recorded - static_cast<std::int64_t>(snap.events.size()));
  // Each writer's ring retains its newest kRingSlots events, in order.
  for (int t = 0; t < kThreads; ++t) {
    std::string tag = "w" + std::to_string(t);
    std::vector<std::int64_t> values;
    for (const auto& e : snap.events)
      if (e.name == tag) values.push_back(e.value);
    ASSERT_EQ(static_cast<int>(values.size()), flight::kRingSlots) << tag;
    for (int i = 0; i < flight::kRingSlots; ++i)
      EXPECT_EQ(values[static_cast<std::size_t>(i)], kPerThread - flight::kRingSlots + i);
  }
}

TEST_F(FlightTest, DisabledModeRecordsNothing) {
  flight::disable();
  EXPECT_FALSE(flight::enabled());
  flight::record(flight::EventKind::Note, "invisible");
  flight::note("also_invisible", "detail");
  flight::Snapshot snap = flight::snapshot();
  EXPECT_EQ(snap.total_recorded, 0);
  EXPECT_TRUE(snap.events.empty());
  // Disabled auto dumps write nothing either.
  parserhawk::testing::ScratchDir scratch("flight_disabled");
  flight::set_auto_dump_path(scratch.file("never.json"));
  EXPECT_FALSE(flight::auto_dump("should_not_fire"));
  EXPECT_FALSE(std::ifstream(scratch.file("never.json")).good());
  flight::enable();
}

TEST_F(FlightTest, ResetDropsRetainedEventsAndZerosTotals) {
  for (int i = 0; i < 10; ++i) flight::note("before");
  flight::reset();
  flight::Snapshot snap = flight::snapshot();
  EXPECT_EQ(snap.total_recorded, 0);
  EXPECT_TRUE(snap.events.empty());
  flight::note("after");
  snap = flight::snapshot();
  EXPECT_EQ(snap.total_recorded, 1);
}

// ---------------------------------------------------------------------------
// Dumps
// ---------------------------------------------------------------------------

TEST_F(FlightTest, DumpJsonIsValidAndNamesOpenSpans) {
  flight::record(flight::EventKind::SpanBegin, "compile");
  flight::record(flight::EventKind::SpanBegin, "solve_state");
  flight::note("solve_state", "parse_tcp");  // refines the innermost span
  flight::record(flight::EventKind::SpanBegin, "closed");
  flight::record(flight::EventKind::SpanEnd, "closed:label", nullptr, 42);
  flight::note("esc\"ape", "de\\tail");  // escaping must hold up

  std::string json = flight::dump_json("unit_test");
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"flight_dump\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"unit_test\""), std::string::npos);
  // Open spans: compile and solve_state (refined by the note); the closed
  // span must not appear.
  auto ip_begin = json.find("\"in_progress\":[");
  auto ip_end = json.find("],\"events\"");
  ASSERT_NE(ip_begin, std::string::npos);
  ASSERT_NE(ip_end, std::string::npos);
  std::string in_progress = json.substr(ip_begin, ip_end - ip_begin);
  EXPECT_NE(in_progress.find("solve_state:parse_tcp"), std::string::npos) << in_progress;
  EXPECT_NE(in_progress.find(": compile"), std::string::npos) << in_progress;
  EXPECT_EQ(in_progress.find("closed"), std::string::npos) << in_progress;
}

TEST_F(FlightTest, AutoDumpWritesConfiguredPathAndFiresOnce) {
  parserhawk::testing::ScratchDir scratch("flight_auto");
  flight::set_auto_dump_path(scratch.file("auto.json"));
  flight::note("solve_state", "parse_vlan");

  ASSERT_TRUE(flight::auto_dump("deadline_exhausted"));
  std::string first = slurp(scratch.file("auto.json"));
  EXPECT_TRUE(is_valid_json(first)) << first;
  EXPECT_NE(first.find("deadline_exhausted"), std::string::npos);

  // First fatal condition wins: a later post-mortem dump must not clobber
  // the at-the-point-of-failure dump.
  EXPECT_FALSE(flight::auto_dump("verification_failure"));
  EXPECT_EQ(slurp(scratch.file("auto.json")), first);

  // reset() re-arms.
  flight::reset();
  flight::note("solve_state", "parse_mpls");
  EXPECT_TRUE(flight::auto_dump("deadline_exhausted"));
  EXPECT_NE(slurp(scratch.file("auto.json")), first);
}

TEST_F(FlightTest, AutoDumpUnconfiguredIsANoOp) {
  flight::note("solve_state", "x");
  EXPECT_FALSE(flight::auto_dump("deadline_exhausted"));  // empty path
}

TEST_F(FlightTest, MetricsWrappersLeaveFlightBreadcrumbs) {
  // count()/observe() drop flight events even with the metrics registry
  // disabled — the post-mortem ring shows recent activity regardless.
  count("z3.synth.queries", 3);
  observe("z3.synth.time_sec", 0.25);
  flight::Snapshot snap = flight::snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].kind, flight::EventKind::Count);
  EXPECT_EQ(snap.events[0].value, 3);
  EXPECT_EQ(snap.events[1].kind, flight::EventKind::Observe);
  EXPECT_EQ(snap.events[1].value, 250000000);  // 0.25 s in ns
}

// ---------------------------------------------------------------------------
// Exposition: quantiles, deltas, Prometheus rendering
// ---------------------------------------------------------------------------

TEST_F(FlightTest, HistogramQuantileWithinLog2ErrorBound) {
  Metrics::get().enable();
  // 100 observations at exactly 1 ms: every quantile must come back within
  // the documented sqrt(2) multiplicative bound (clamped to [min,max] here,
  // so in fact exact).
  for (int i = 0; i < 100; ++i) observe("q.time_sec", 1e-3);
  auto hists = Metrics::get().histograms();
  ASSERT_EQ(hists.size(), 1u);
  const HistogramSnapshot& h = hists[0];
  EXPECT_EQ(h.count, 100);
  EXPECT_NEAR(h.mean(), 1e-3, 1e-9);
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    double v = h.quantile(q);
    EXPECT_GE(v, 1e-3 / std::sqrt(2.0) - 1e-12) << "q=" << q;
    EXPECT_LE(v, 1e-3 * std::sqrt(2.0) + 1e-12) << "q=" << q;
  }
  // Spread sample: p50 of {1us x 50, 1s x 50} lands in the low mode, p99
  // in the high mode.
  Metrics::get().reset();
  for (int i = 0; i < 50; ++i) observe("spread", 1e-6);
  for (int i = 0; i < 50; ++i) observe("spread", 1.0);
  hists = Metrics::get().histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_LT(hists[0].quantile(0.5), 1e-5);
  EXPECT_GT(hists[0].quantile(0.99), 0.5);
  // Empty histogram: quantile is 0, not UB.
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0);
}

TEST_F(FlightTest, SnapshotDeltaScopesOneRequest) {
  Metrics::get().enable();
  count("steady", 5);
  count("busy", 1);
  observe("lat", 1e-3);
  MetricsSnapshot before = take_snapshot();
  count("busy", 3);
  observe("lat", 2e-3);
  observe("lat", 4e-3);
  MetricsSnapshot after = take_snapshot();

  MetricsSnapshot d = delta(before, after);
  // Unchanged entries are dropped; changed ones carry the difference.
  EXPECT_EQ(d.counter("steady"), 0);
  EXPECT_EQ(d.counter("busy"), 3);
  const HistogramSnapshot* lat = d.histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);
  EXPECT_NEAR(lat->sum, 6e-3, 1e-9);
}

TEST_F(FlightTest, PrometheusRenderingIsWellFormed) {
  Metrics::get().enable();
  count("z3.synth.queries", 7);
  maximize("pool.queue-depth.hwm", 4);
  observe("z3.synth.time_sec", 1e-4);
  observe("z3.synth.time_sec", 1e-2);

  // Name sanitization: every invalid byte becomes '_', prefix prepended.
  EXPECT_EQ(prometheus_name("z3.synth.time_sec"), "ph_z3_synth_time_sec");
  EXPECT_EQ(prometheus_name("pool.queue-depth.hwm", "x_"), "x_pool_queue_depth_hwm");

  std::string text = render_prometheus(take_snapshot());
  EXPECT_NE(text.find("# TYPE ph_z3_synth_queries counter"), std::string::npos);
  EXPECT_NE(text.find("ph_z3_synth_queries 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ph_pool_queue_depth_hwm gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ph_z3_synth_time_sec histogram"), std::string::npos);
  EXPECT_NE(text.find("ph_z3_synth_time_sec_count 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ph_z3_synth_time_sec_p50"), std::string::npos);

  // Cumulative bucket monotonicity: the le="..." sample values never
  // decrease as the bound rises.
  std::istringstream lines(text);
  std::string line;
  std::int64_t prev = -1;
  while (std::getline(lines, line)) {
    if (line.find("_bucket{le=") == std::string::npos) continue;
    std::int64_t v = std::stoll(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_EQ(prev, 2);  // the +Inf bucket equals _count

  // Every non-comment line is "name{...} value" or "name value".
  std::istringstream lines2(text);
  while (std::getline(lines2, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(sp + 1))) << line;
  }
}

}  // namespace
}  // namespace parserhawk::obs
