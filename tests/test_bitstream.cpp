#include "support/bitstream.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

// Bitstream is a non-owning view (DESIGN.md §12), so every test binds the
// backing BitVec to a local that outlives the stream.

TEST(Bitstream, ReadConsumes) {
  const BitVec v = BitVec::from_u64(0xAB, 8);
  Bitstream s(v);
  auto first = s.read(4);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->to_u64(), 0xAu);
  EXPECT_EQ(s.position(), 4);
  auto second = s.read(4);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->to_u64(), 0xBu);
  EXPECT_EQ(s.remaining(), 0);
}

TEST(Bitstream, ReadPastEndFailsWithoutConsuming) {
  const BitVec v = BitVec::from_u64(0xF, 4);
  Bitstream s(v);
  EXPECT_FALSE(s.read(5).has_value());
  EXPECT_EQ(s.position(), 0);  // nothing consumed on failure
  EXPECT_TRUE(s.read(4).has_value());
  EXPECT_FALSE(s.read(1).has_value());
}

TEST(Bitstream, ZeroWidthReadAlwaysSucceeds) {
  const BitVec empty;
  Bitstream s(empty);
  auto r = s.read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 0);
}

TEST(Bitstream, PeekDoesNotConsume) {
  const BitVec v = BitVec::from_u64(0b10110011, 8);
  Bitstream s(v);
  auto p = s.peek(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_u64(), 0b101u);
  EXPECT_EQ(s.position(), 0);
}

TEST(Bitstream, PeekWithOffsetIsRelativeToCursor) {
  const BitVec v = BitVec::from_u64(0b10110011, 8);
  Bitstream s(v);
  ASSERT_TRUE(s.read(4).has_value());
  auto p = s.peek(2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_u64(), 0b11u);  // bits 6..7 of the stream
}

TEST(Bitstream, PeekPastEndFails) {
  const BitVec v = BitVec::from_u64(0xF, 4);
  Bitstream s(v);
  EXPECT_FALSE(s.peek(2, 3).has_value());
  EXPECT_TRUE(s.peek(2, 2).has_value());
}

TEST(Bitstream, NegativeWidthRejected) {
  const BitVec v = BitVec::from_u64(0xF, 4);
  Bitstream s(v);
  EXPECT_FALSE(s.read(-1).has_value());
  EXPECT_FALSE(s.peek(0, -1).has_value());
  EXPECT_FALSE(s.peek(-1, 2).has_value());
}

TEST(Bitstream, RawByteWindowReadsWireOrder) {
  // Bit i of the stream = bit (7 - i%8) of byte i/8 — MSB-first, matching
  // BitVec::from_bytes and the pcap PacketView convention.
  const std::uint8_t bytes[2] = {0xA5, 0xC0};
  Bitstream s(bytes, 12);
  auto hi = s.read(8);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(hi->to_u64(), 0xA5u);
  auto lo = s.read(4);
  ASSERT_TRUE(lo.has_value());
  EXPECT_EQ(lo->to_u64(), 0xCu);
  EXPECT_EQ(s.remaining(), 0);
  EXPECT_FALSE(s.read(1).has_value());
}

}  // namespace
}  // namespace parserhawk
