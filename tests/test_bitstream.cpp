#include "support/bitstream.h"

#include <gtest/gtest.h>

namespace parserhawk {
namespace {

TEST(Bitstream, ReadConsumes) {
  Bitstream s(BitVec::from_u64(0xAB, 8));
  auto first = s.read(4);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->to_u64(), 0xAu);
  EXPECT_EQ(s.position(), 4);
  auto second = s.read(4);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->to_u64(), 0xBu);
  EXPECT_EQ(s.remaining(), 0);
}

TEST(Bitstream, ReadPastEndFailsWithoutConsuming) {
  Bitstream s(BitVec::from_u64(0xF, 4));
  EXPECT_FALSE(s.read(5).has_value());
  EXPECT_EQ(s.position(), 0);  // nothing consumed on failure
  EXPECT_TRUE(s.read(4).has_value());
  EXPECT_FALSE(s.read(1).has_value());
}

TEST(Bitstream, ZeroWidthReadAlwaysSucceeds) {
  Bitstream s(BitVec{});
  auto r = s.read(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 0);
}

TEST(Bitstream, PeekDoesNotConsume) {
  Bitstream s(BitVec::from_u64(0b10110011, 8));
  auto p = s.peek(0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_u64(), 0b101u);
  EXPECT_EQ(s.position(), 0);
}

TEST(Bitstream, PeekWithOffsetIsRelativeToCursor) {
  Bitstream s(BitVec::from_u64(0b10110011, 8));
  ASSERT_TRUE(s.read(4).has_value());
  auto p = s.peek(2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_u64(), 0b11u);  // bits 6..7 of the stream
}

TEST(Bitstream, PeekPastEndFails) {
  Bitstream s(BitVec::from_u64(0xF, 4));
  EXPECT_FALSE(s.peek(2, 3).has_value());
  EXPECT_TRUE(s.peek(2, 2).has_value());
}

TEST(Bitstream, NegativeWidthRejected) {
  Bitstream s(BitVec::from_u64(0xF, 4));
  EXPECT_FALSE(s.read(-1).has_value());
  EXPECT_FALSE(s.peek(0, -1).has_value());
  EXPECT_FALSE(s.peek(-1, 2).has_value());
}

}  // namespace
}  // namespace parserhawk
