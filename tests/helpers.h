// Shared miniature parser specs for unit tests. The full benchmark programs
// live in src/suite; these are intentionally tiny.
#pragma once

#include "ir/builder.h"
#include "ir/ir.h"

namespace parserhawk::testing {

/// Spec1 of Figure 7: extract two 4-bit fields unconditionally.
inline ParserSpec spec1() {
  SpecBuilder b("spec1");
  b.field("field0", 4).field("field1", 4);
  b.state("state0").extract("field0").otherwise("state1");
  b.state("state1").extract("field1").otherwise("accept");
  return b.build().value();
}

/// Spec2 of Figure 7: extract field1 only when field0[0] == 0.
inline ParserSpec spec2() {
  SpecBuilder b("spec2");
  b.field("field0", 4).field("field1", 4);
  b.state("state0")
      .extract("field0")
      .select({b.slice("field0", 0, 1)})
      .when_exact(0, "state1")
      .otherwise("accept");
  b.state("state1").extract("field1").otherwise("accept");
  return b.build().value();
}

/// The Figure 3 motivating program: 4-bit key;
/// {15,11,7,3} -> N1, 14 -> N2, 2 -> N3, default accept.
inline ParserSpec figure3() {
  SpecBuilder b("figure3");
  b.field("tranKey", 4).field("n1", 4).field("n2", 4).field("n3", 4);
  b.state("start")
      .extract("tranKey")
      .select({b.whole("tranKey")})
      .when_exact(15, "N1")
      .when_exact(11, "N1")
      .when_exact(7, "N1")
      .when_exact(3, "N1")
      .when_exact(14, "N2")
      .when_exact(2, "N3")
      .otherwise("accept");
  b.state("N1").extract("n1").otherwise("accept");
  b.state("N2").extract("n2").otherwise("accept");
  b.state("N3").extract("n3").otherwise("accept");
  return b.build().value();
}

/// MPLS-style loop: read one 8-bit label; low bit 1 = bottom of stack.
inline ParserSpec mpls_loop() {
  SpecBuilder b("mpls_loop");
  b.field("label", 8);
  b.state("mpls")
      .extract("label")
      .select({b.slice("label", 7, 1)})
      .when_exact(1, "accept")
      .otherwise("mpls");
  return b.build().value();
}

}  // namespace parserhawk::testing
