// Shared miniature parser specs for unit tests (the full benchmark programs
// live in src/suite; these are intentionally tiny), plus the per-test
// scratch-directory helper every test that touches the filesystem must use.
#pragma once

#include <atomic>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "ir/builder.h"
#include "ir/ir.h"

namespace parserhawk::testing {

/// Per-test scratch directory. Unique per instance (pid + process-wide
/// counter, so parallel ctest shards and repeated fixtures never collide),
/// created eagerly, recursively deleted on destruction. All temp files a
/// test writes must live under one of these — never in the working
/// directory or a hand-rolled /tmp path.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag = "scratch") {
    static std::atomic<unsigned> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("ph_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort; never throws in a dtor
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }
  /// Absolute path for a file named `name` inside the scratch dir.
  std::string file(const std::string& name) const { return (path_ / name).string(); }

 private:
  std::filesystem::path path_;
};

/// Spec1 of Figure 7: extract two 4-bit fields unconditionally.
inline ParserSpec spec1() {
  SpecBuilder b("spec1");
  b.field("field0", 4).field("field1", 4);
  b.state("state0").extract("field0").otherwise("state1");
  b.state("state1").extract("field1").otherwise("accept");
  return b.build().value();
}

/// Spec2 of Figure 7: extract field1 only when field0[0] == 0.
inline ParserSpec spec2() {
  SpecBuilder b("spec2");
  b.field("field0", 4).field("field1", 4);
  b.state("state0")
      .extract("field0")
      .select({b.slice("field0", 0, 1)})
      .when_exact(0, "state1")
      .otherwise("accept");
  b.state("state1").extract("field1").otherwise("accept");
  return b.build().value();
}

/// The Figure 3 motivating program: 4-bit key;
/// {15,11,7,3} -> N1, 14 -> N2, 2 -> N3, default accept.
inline ParserSpec figure3() {
  SpecBuilder b("figure3");
  b.field("tranKey", 4).field("n1", 4).field("n2", 4).field("n3", 4);
  b.state("start")
      .extract("tranKey")
      .select({b.whole("tranKey")})
      .when_exact(15, "N1")
      .when_exact(11, "N1")
      .when_exact(7, "N1")
      .when_exact(3, "N1")
      .when_exact(14, "N2")
      .when_exact(2, "N3")
      .otherwise("accept");
  b.state("N1").extract("n1").otherwise("accept");
  b.state("N2").extract("n2").otherwise("accept");
  b.state("N3").extract("n3").otherwise("accept");
  return b.build().value();
}

/// MPLS-style loop: read one 8-bit label; low bit 1 = bottom of stack.
inline ParserSpec mpls_loop() {
  SpecBuilder b("mpls_loop");
  b.field("label", 8);
  b.state("mpls")
      .extract("label")
      .select({b.slice("label", 7, 1)})
      .when_exact(1, "accept")
      .otherwise("mpls");
  return b.build().value();
}

}  // namespace parserhawk::testing
