#include "baseline/baseline.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <set>

#include "analysis/analysis.h"
#include "postopt/postopt.h"
#include "support/timer.h"

namespace parserhawk::baseline {

namespace {

CompileResult fail(CompileStatus status, std::string reason, const ParserSpec& reference) {
  CompileResult r;
  r.status = status;
  r.reason = std::move(reason);
  r.reference = reference;
  return r;
}

/// Direct lookahead translation of a state's key (no deferral): nullopt
/// when the window does not fit.
std::optional<std::vector<KeyPart>> direct_layout(const ParserSpec& spec, const State& st,
                                                  const HwProfile& hw) {
  std::map<int, int> own_offset;
  int total = 0;
  for (const auto& ex : st.extracts) {
    own_offset[ex.field] = total;
    total += spec.fields[static_cast<std::size_t>(ex.field)].width;
  }
  std::vector<KeyPart> parts;
  for (const auto& p : st.key) {
    if (p.kind == KeyPart::Kind::FieldSlice) {
      auto it = own_offset.find(p.field);
      if (it == own_offset.end()) {
        parts.push_back(p);  // earlier field: plain dictionary read
        continue;
      }
      int off = it->second + p.lo;
      if (off + p.len > hw.lookahead_limit_bits) return std::nullopt;
      parts.push_back(KeyPart{KeyPart::Kind::Lookahead, -1, off, p.len});
    } else {
      int off = total + p.lo;
      if (off + p.len > hw.lookahead_limit_bits) return std::nullopt;
      parts.push_back(KeyPart{KeyPart::Kind::Lookahead, -1, off, p.len});
    }
  }
  return parts;
}

/// The rule-per-entry translation both commercial proxies share. States
/// whose key cannot be evaluated by lookahead are deferred into an
/// extract-state + match-state pair (one extra entry). Optionally applies
/// DPParserGen's greedy rule merging first.
Result<TcamProgram> direct_translate(const ParserSpec& spec, const HwProfile& hw,
                                     bool greedy_merge) {
  TcamProgram prog;
  prog.name = spec.name;
  prog.fields = spec.fields;
  prog.start_table = 0;
  prog.start_state = spec.start;
  prog.max_iterations = 64;
  int next_id = static_cast<int>(spec.states.size());

  for (std::size_t s = 0; s < spec.states.size(); ++s) {
    const State& st = spec.states[s];
    int kw = st.key_width();
    if (kw > hw.key_limit_bits)
      return Result<TcamProgram>::err(
          "wide-tran-key", "state '" + st.name + "' has a " + std::to_string(kw) +
                               "-bit transition key; the compiler cannot split keys (limit " +
                               std::to_string(hw.key_limit_bits) + ")");

    std::vector<Rule> rules = st.rules;
    if (rules.empty()) rules.push_back(Rule{0, 0, kReject});
    if (greedy_merge) rules = greedy_merge_rules(rules, kw);

    auto layout = direct_layout(spec, st, hw);
    int match_state = static_cast<int>(s);
    if (!layout) {
      // Deferred: this state only extracts; a fresh match state dispatches
      // on the now-extracted fields.
      match_state = next_id++;
      TcamEntry ext_row;
      ext_row.table = 0;
      ext_row.state = static_cast<int>(s);
      ext_row.entry = 0;
      ext_row.extracts = st.extracts;
      ext_row.next_table = 0;
      ext_row.next_state = match_state;
      prog.entries.push_back(std::move(ext_row));
      prog.layouts[{0, match_state}] = StateLayout{st.key};
    } else if (!layout->empty()) {
      prog.layouts[{0, static_cast<int>(s)}] = StateLayout{*layout};
    }

    int prio = 0;
    for (const auto& r : rules) {
      TcamEntry e;
      e.table = 0;
      e.state = match_state;
      e.entry = prio++;
      e.value = r.value & r.mask;
      e.mask = r.mask;
      if (match_state == static_cast<int>(s)) e.extracts = st.extracts;
      e.next_table = 0;
      e.next_state = r.next;
      prog.entries.push_back(std::move(e));
    }
  }
  return prog;
}

CompileResult finish(TcamProgram prog, const HwProfile& hw, const ParserSpec& reference,
                     const Stopwatch& watch) {
  CompileResult out;
  // Extraction-length splitting is table-stakes for every real compiler;
  // the documented baseline weaknesses are about keys and redundancy, not
  // extraction.
  if (auto split = split_wide_extracts(prog, hw)) prog = std::move(*split);
  if (auto v = validate(prog, hw); !v) {
    out.status = CompileStatus::ResourceExceeded;
    out.reason = v.error().message;
    out.reference = reference;
    return out;
  }
  out.status = CompileStatus::Success;
  out.program = std::move(prog);
  out.usage = measure(out.program);
  out.reference = reference;
  out.stats.seconds = watch.elapsed_sec();
  return out;
}

}  // namespace

std::vector<Rule> greedy_merge_rules(std::vector<Rule> rules, int key_width) {
  (void)key_width;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < rules.size() && !changed; ++i) {
      if (rules[i].is_default()) continue;
      for (std::size_t j = i + 1; j < rules.size() && !changed; ++j) {
        if (rules[j].is_default()) continue;
        if (rules[i].next != rules[j].next || rules[i].mask != rules[j].mask) continue;
        std::uint64_t diff = (rules[i].value ^ rules[j].value) & rules[i].mask;
        if (std::popcount(diff) != 1) continue;
        rules[i].mask &= ~diff;
        rules[i].value &= rules[i].mask;
        rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
      }
    }
  }
  return rules;
}

CompileResult compile_tofino_proxy(const ParserSpec& spec, const HwProfile& hw) {
  Stopwatch watch;
  if (auto v = validate(spec); !v) return fail(CompileStatus::Rejected, v.error().to_string(), spec);
  auto prog = direct_translate(spec, hw, /*greedy_merge=*/false);
  if (!prog) return fail(CompileStatus::Rejected, prog.error().to_string(), spec);
  return finish(std::move(*prog), hw, spec, watch);
}

CompileResult compile_ipu_proxy(const ParserSpec& spec, const HwProfile& hw) {
  Stopwatch watch;
  if (auto v = validate(spec); !v) return fail(CompileStatus::Rejected, v.error().to_string(), spec);
  if (analyze(spec).has_loop)
    return fail(CompileStatus::Rejected,
                "parser-loop-rej: the IPU compiler cannot unroll parser loops", spec);
  // Documented failure mode: duplicate conditions with different targets.
  for (const auto& st : spec.states) {
    std::map<std::pair<std::uint64_t, std::uint64_t>, int> seen;
    for (const auto& r : st.rules) {
      auto key = std::make_pair(r.value & r.mask, r.mask);
      auto [it, inserted] = seen.emplace(key, r.next);
      if (!inserted && it->second != r.next)
        return fail(CompileStatus::Rejected,
                    "conflict-transition: state '" + st.name +
                        "' has duplicate conditions with different targets",
                    spec);
    }
  }
  auto prog = direct_translate(spec, hw, /*greedy_merge=*/false);
  if (!prog) return fail(CompileStatus::Rejected, prog.error().to_string(), spec);
  if (auto split = split_wide_extracts(*prog, hw)) *prog = std::move(*split);
  auto staged = assign_stages(*prog, hw);
  if (!staged) {
    CompileStatus status = staged.error().code == "too-many-stages" ||
                                   staged.error().code == "too-many-tcam"
                               ? CompileStatus::ResourceExceeded
                               : CompileStatus::Rejected;
    return fail(status, staged.error().to_string(), spec);
  }
  return finish(std::move(*staged), hw, spec, watch);
}

CompileResult compile_dpparsergen(const ParserSpec& spec, const HwProfile& hw) {
  Stopwatch watch;
  if (auto v = validate(spec); !v) return fail(CompileStatus::Rejected, v.error().to_string(), spec);
  if (hw.arch != Arch::SingleTable)
    return fail(CompileStatus::Rejected,
                "unsupported-arch: DPParserGen only targets single-TCAM-table parsers", spec);

  // Documented input restrictions.
  for (const auto& st : spec.states) {
    std::set<int> own;
    for (const auto& ex : st.extracts) own.insert(ex.field);
    for (const auto& p : st.key) {
      if (p.kind == KeyPart::Kind::Lookahead)
        return fail(CompileStatus::Rejected, "lookahead-unsupported: state '" + st.name + "'", spec);
      if (!own.count(p.field))
        return fail(CompileStatus::Rejected,
                    "key-not-own-field: state '" + st.name +
                        "' keys on a field extracted elsewhere",
                    spec);
    }
    int kw = st.key_width();
    std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : kw == 0 ? 0 : ((std::uint64_t{1} << kw) - 1);
    for (const auto& r : st.rules) {
      if (!r.is_default() && r.mask != full)
        return fail(CompileStatus::Rejected,
                    "wildcard-unsupported: state '" + st.name + "' uses a masked entry", spec);
      if (!r.is_default() && r.next == kAccept)
        return fail(CompileStatus::Rejected,
                    "accept-on-value: state '" + st.name + "' transitions to accept on a value",
                    spec);
    }
  }

  // Greedy (suboptimal) merging, then fixed-order key splitting.
  TcamProgram prog;
  prog.name = spec.name;
  prog.fields = spec.fields;
  prog.start_table = 0;
  prog.start_state = spec.start;
  prog.max_iterations = 64;
  int next_id = static_cast<int>(spec.states.size());

  for (std::size_t s = 0; s < spec.states.size(); ++s) {
    const State& st = spec.states[s];
    int kw = st.key_width();
    std::vector<Rule> rules = st.rules;
    if (rules.empty()) rules.push_back(Rule{0, 0, kReject});
    rules = greedy_merge_rules(rules, kw);

    auto layout = direct_layout(spec, st, hw);
    if (!layout)
      return fail(CompileStatus::Rejected, "window-exceeded: state '" + st.name + "'", spec);

    if (kw <= hw.key_limit_bits) {
      if (!layout->empty()) prog.layouts[{0, static_cast<int>(s)}] = StateLayout{*layout};
      int prio = 0;
      for (const auto& r : rules) {
        prog.entries.push_back(TcamEntry{0, static_cast<int>(s), prio++, r.value & r.mask, r.mask,
                                         st.extracts, 0, r.next});
      }
      continue;
    }

    // Fixed left-to-right chunk split (the V1 strategy of Figure 4): a
    // decision tree over chunks in declaration order. Each chunk level
    // expands every rule's chunk cube into *concrete* values — this
    // expansion is exactly where the suboptimal entry blow-up of Figure 4's
    // V1 comes from — and children with identical residual rule lists are
    // shared. Keys whose chunk value matches no expansion fall through a
    // default edge carrying only the catch-all rules, which keeps priority
    // semantics exact.
    struct Chunk {
      int lo, len;  // bit range within the key, MSB-first
    };
    std::vector<Chunk> chunks;
    for (int b = 0; b < kw; b += hw.key_limit_bits)
      chunks.push_back(Chunk{b, std::min(hw.key_limit_bits, kw - b)});

    auto chunk_layout = [&](const Chunk& c) {
      std::vector<KeyPart> parts;
      int at = 0;
      for (const auto& p : *layout) {
        int plo = std::max(c.lo - at, 0);
        int phi = std::min(c.lo + c.len - at, p.len);
        if (phi > plo) parts.push_back(KeyPart{p.kind, p.field, p.lo + plo, phi - plo});
        at += p.len;
      }
      return parts;
    };
    auto chunk_cond = [&](const Rule& r, const Chunk& ch) {
      int shift = kw - ch.lo - ch.len;
      std::uint64_t cm = ch.len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << ch.len) - 1);
      return std::pair<std::uint64_t, std::uint64_t>{(r.value >> shift) & (r.mask >> shift) & cm,
                                                     (r.mask >> shift) & cm};
    };

    bool overflow = false;
    // Recursive tree builder; returns the state id implementing `pending`
    // from chunk `c` onward. Children are deduplicated per (c, pending).
    std::map<std::pair<std::size_t, std::vector<Rule>>, int> memo;
    std::function<int(std::size_t, const std::vector<Rule>&, int)> build =
        [&](std::size_t c, const std::vector<Rule>& pending, int forced_id) -> int {
      auto key = std::make_pair(c, pending);
      if (forced_id < 0) {
        auto it = memo.find(key);
        if (it != memo.end()) return it->second;
      }
      int id = forced_id >= 0 ? forced_id : next_id++;
      memo[key] = id;
      const Chunk& ch = chunks[c];
      prog.layouts[{0, id}] = StateLayout{chunk_layout(ch)};
      int prio = 0;
      if (c + 1 == chunks.size()) {
        // Last chunk: one entry per rule; TCAM priority resolves overlap.
        for (const auto& r : pending) {
          auto [cv, cm] = chunk_cond(r, ch);
          prog.entries.push_back(TcamEntry{0, id, prio++, cv, cm, st.extracts, 0, r.next});
          if (cm == 0) break;  // catch-all: nothing below can fire
        }
        return id;
      }
      // Expand concrete chunk values covered by non-catch-all rules.
      std::vector<std::uint64_t> values;
      std::uint64_t full = ch.len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << ch.len) - 1);
      for (const auto& r : pending) {
        auto [cv, cm] = chunk_cond(r, ch);
        if (cm == 0) continue;
        std::uint64_t free = full & ~cm;
        int free_bits = std::popcount(free);
        if (free_bits > 6) {
          overflow = true;
          return id;
        }
        // Enumerate the cube cv + subsets of free bits.
        std::uint64_t sub = 0;
        do {
          std::uint64_t v = cv | sub;
          if (std::find(values.begin(), values.end(), v) == values.end()) values.push_back(v);
          sub = (sub - free) & free;
        } while (sub != 0);
      }
      if (values.size() > 64) {
        overflow = true;
        return id;
      }
      for (std::uint64_t v : values) {
        std::vector<Rule> residual;
        bool saturated = false;
        for (const auto& r : pending) {
          auto [cv, cm] = chunk_cond(r, ch);
          if ((v & cm) != cv) continue;
          residual.push_back(r);
          // If the rule's remaining chunks are unconstrained, it ends the
          // residual list (catch-all from here on).
          std::uint64_t rest_mask = r.mask & ~(((ch.len >= 64 ? ~std::uint64_t{0}
                                                              : ((std::uint64_t{1} << ch.len) - 1)))
                                               << (kw - ch.lo - ch.len));
          if (rest_mask == 0) {
            saturated = true;
            break;
          }
        }
        (void)saturated;
        int child = build(c + 1, residual, -1);
        prog.entries.push_back(TcamEntry{0, id, prio++, v, full, {}, 0, child});
      }
      // Values outside the expansion match only chunk-level catch-alls.
      std::vector<Rule> defaults;
      for (const auto& r : pending) {
        auto [cv, cm] = chunk_cond(r, ch);
        if (cm == 0) defaults.push_back(r);
      }
      if (!defaults.empty()) {
        int child = build(c + 1, defaults, -1);
        prog.entries.push_back(TcamEntry{0, id, prio++, 0, 0, {}, 0, child});
      }
      return id;
    };
    build(0, rules, static_cast<int>(s));
    if (overflow)
      return fail(CompileStatus::ResourceExceeded,
                  "split-explosion: state '" + st.name +
                      "' expands beyond the splitter's cube budget",
                  spec);
  }

  // The DP clustering step: fold unconditional extract states (Figure 1's
  // entry saving) — reuse of the generic pass is faithful here because
  // clustering is the part Gibb et al. do well.
  TcamProgram clustered = inline_terminal_extracts(prog, hw);
  return finish(std::move(clustered), hw, spec, watch);
}

}  // namespace parserhawk::baseline
