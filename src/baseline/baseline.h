// Baseline parser compilers (§7 "Baseline selection").
//
// Three baselines, all producing runnable TcamPrograms through the same
// CompileResult interface as ParserHawk so the benchmark harnesses can
// diff-test and measure everything uniformly:
//
//  * compile_tofino_proxy — stands in for the closed-source Tofino SDE
//    parser compiler. Rule-per-entry translation with the documented
//    limitations (§7.2): no R4-like transition-key splitting (wide keys are
//    rejected with "wide-tran-key"), no dead/redundant rule elimination,
//    no terminal-extract inlining.
//  * compile_ipu_proxy — stands in for the closed-source Intel IPU
//    compiler: same translation, pipelined placement, plus its documented
//    failure modes: loops are rejected ("parser-loop-rej"; it cannot unroll)
//    and duplicate (value, mask) conditions with different targets are
//    rejected ("conflict-transition").
//  * compile_dpparsergen — a from-scratch reimplementation of Gibb et
//    al.'s dynamic-programming parser generator: state clustering is done
//    well (its contribution), but rule merging is a greedy pairwise
//    algorithm and key splitting uses a fixed left-to-right chunk order,
//    both suboptimal (the V1 strategies of Figure 4). Input restrictions
//    are enforced as documented: single-TCAM targets only, no lookahead in
//    the source, no wildcard entries, keys only over fields extracted in
//    the same state.
//
// These proxies are substitutions for gated artifacts (see DESIGN.md §2);
// they reproduce the *documented contract* of the originals, which is what
// the paper's comparisons exercise.
#pragma once

#include "hw/profile.h"
#include "ir/ir.h"
#include "synth/compiler.h"

namespace parserhawk::baseline {

CompileResult compile_tofino_proxy(const ParserSpec& spec, const HwProfile& hw);

CompileResult compile_ipu_proxy(const ParserSpec& spec, const HwProfile& hw);

CompileResult compile_dpparsergen(const ParserSpec& spec, const HwProfile& hw);

/// Greedy pairwise rule merging as DPParserGen performs it: repeatedly
/// merge the first pair of same-target rules whose (value, mask) differ in
/// exactly one cared bit. Exposed for unit tests and the Figure 4 bench.
std::vector<Rule> greedy_merge_rules(std::vector<Rule> rules, int key_width);

}  // namespace parserhawk::baseline
