// Semantic-preserving rewrite rules (Figure 21).
//
// The paper mutates each benchmark with ±R1..±R5 to model the many ways
// developers write the same parser: redundant entries left behind during
// maintenance (R1), unreachable entries (R2), entries split into exact
// matches instead of masked families (R3), transition keys split across
// states because the author knows one device's width limit (R4), and
// states split per extraction (R5). ParserHawk's resource usage must be
// invariant under all of them; the baselines' is not (§7.2).
//
// The + direction adds the artifact; the - direction removes it:
//   +R1 add_redundant_entries    / -R1 prune (src/synth/normalize)
//   +R2 add_unreachable_entries  / -R2 prune
//   +R3 split_entries            / -R3 merge_entries
//   +R4 split_transition_key     / -R4 merge_split_key
//   +R5 split_states             / -R5 merge_extract_chains
//
// Every rewrite preserves §4 semantics; tests check this by differential
// sampling.
#pragma once

#include "ir/ir.h"
#include "support/result.h"
#include "support/rng.h"

namespace parserhawk::rewrite {

/// +R1: duplicate up to `count` existing non-default rules at a lower
/// priority (they can never fire; same target, so also redundant).
ParserSpec add_redundant_entries(const ParserSpec& spec, Rng& rng, int count = 2);

/// +R2: insert up to `count` rules that are fully shadowed by an existing
/// higher-priority rule but transition somewhere *else* — the pattern that
/// trips the IPU proxy's "conflict-transition" check.
ParserSpec add_unreachable_entries(const ParserSpec& spec, Rng& rng, int count = 2);

/// +R3: expand up to `count` masked rules into two half-cube rules each
/// (one free mask bit pinned both ways).
ParserSpec split_entries(const ParserSpec& spec, Rng& rng, int count = 2);

/// -R3: conservatively merge adjacent same-target rules whose values
/// differ in exactly one cared bit.
ParserSpec merge_entries(const ParserSpec& spec);

/// +R4: split `state`'s transition key at bit `split_at` (default: middle):
/// the state keeps the key prefix and dispatches to fresh per-prefix
/// continuation states matching the suffix. Requires all non-default rules
/// of the state to be exact matches. Fails otherwise.
Result<ParserSpec> split_transition_key(const ParserSpec& spec, int state, int split_at = -1);

/// -R4: recognize the split pattern produced above (exact-prefix dispatch
/// into single-predecessor, extract-free suffix states) and fold it back
/// into one wide-key state. Returns the spec unchanged when no instance of
/// the pattern exists.
ParserSpec merge_split_key(const ParserSpec& spec);

/// +R5: split up to `count` multi-extract states into an extract-prefix
/// state chained to the remainder by a default transition.
ParserSpec split_states(const ParserSpec& spec, Rng& rng, int count = 1);

}  // namespace parserhawk::rewrite
