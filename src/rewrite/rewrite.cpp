#include "rewrite/rewrite.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

namespace parserhawk::rewrite {

namespace {

/// Indices of states that have at least one non-default rule.
std::vector<int> keyed_states(const ParserSpec& spec) {
  std::vector<int> out;
  for (std::size_t s = 0; s < spec.states.size(); ++s)
    for (const auto& r : spec.states[s].rules)
      if (!r.is_default()) {
        out.push_back(static_cast<int>(s));
        break;
      }
  return out;
}

}  // namespace

ParserSpec add_redundant_entries(const ParserSpec& spec, Rng& rng, int count) {
  ParserSpec out = spec;
  std::vector<int> targets = keyed_states(out);
  if (targets.empty()) return out;
  for (int i = 0; i < count; ++i) {
    int s = targets[static_cast<std::size_t>(rng.below(targets.size()))];
    State& st = out.state(s);
    std::vector<std::size_t> nondefault;
    for (std::size_t r = 0; r < st.rules.size(); ++r)
      if (!st.rules[r].is_default()) nondefault.push_back(r);
    std::size_t pick = nondefault[static_cast<std::size_t>(rng.below(nondefault.size()))];
    // Insert the duplicate at any position *after* the original: shadowed,
    // same target, so removing it never changes semantics.
    std::size_t at = pick + 1 + static_cast<std::size_t>(rng.below(st.rules.size() - pick));
    st.rules.insert(st.rules.begin() + static_cast<std::ptrdiff_t>(at), st.rules[pick]);
  }
  return out;
}

ParserSpec add_unreachable_entries(const ParserSpec& spec, Rng& rng, int count) {
  ParserSpec out = spec;
  std::vector<int> targets = keyed_states(out);
  if (targets.empty()) return out;
  for (int i = 0; i < count; ++i) {
    int s = targets[static_cast<std::size_t>(rng.below(targets.size()))];
    State& st = out.state(s);
    std::vector<std::size_t> nondefault;
    for (std::size_t r = 0; r < st.rules.size(); ++r)
      if (!st.rules[r].is_default()) nondefault.push_back(r);
    std::size_t pick = nondefault[static_cast<std::size_t>(rng.below(nondefault.size()))];
    Rule ghost = st.rules[pick];
    // Same condition, different destination, inserted directly below the
    // original: it can never fire.
    ghost.next = ghost.next == kReject ? kAccept : kReject;
    st.rules.insert(st.rules.begin() + static_cast<std::ptrdiff_t>(pick) + 1, ghost);
  }
  return out;
}

ParserSpec split_entries(const ParserSpec& spec, Rng& rng, int count) {
  ParserSpec out = spec;
  for (int i = 0; i < count; ++i) {
    // Find a rule with at least one free (uncared) bit inside the key.
    std::vector<std::pair<int, std::size_t>> candidates;
    for (std::size_t s = 0; s < out.states.size(); ++s) {
      const State& st = out.states[s];
      int kw = st.key_width();
      std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : kw == 0 ? 0 : ((std::uint64_t{1} << kw) - 1);
      for (std::size_t r = 0; r < st.rules.size(); ++r) {
        const Rule& rule = st.rules[r];
        if (rule.is_default()) continue;
        if ((full & ~rule.mask) != 0) candidates.emplace_back(static_cast<int>(s), r);
      }
    }
    if (candidates.empty()) return out;
    auto [s, r] = candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
    State& st = out.state(s);
    Rule rule = st.rules[r];
    int kw = st.key_width();
    std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
    std::uint64_t free = full & ~rule.mask;
    // Pin the highest free bit both ways.
    std::uint64_t bit = std::uint64_t{1} << (63 - std::countl_zero(free));
    Rule zero = rule, one = rule;
    zero.mask |= bit;
    one.mask |= bit;
    one.value |= bit;
    st.rules[r] = zero;
    st.rules.insert(st.rules.begin() + static_cast<std::ptrdiff_t>(r) + 1, one);
  }
  return out;
}

ParserSpec merge_entries(const ParserSpec& spec) {
  ParserSpec out = spec;
  for (auto& st : out.states) {
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t r = 0; r + 1 < st.rules.size(); ++r) {
        Rule& a = st.rules[r];
        Rule& b = st.rules[r + 1];
        if (a.is_default() || b.is_default()) continue;
        if (a.next != b.next || a.mask != b.mask) continue;
        std::uint64_t diff = (a.value ^ b.value) & a.mask;
        if (std::popcount(diff) != 1) continue;
        a.mask &= ~diff;
        a.value &= a.mask;
        st.rules.erase(st.rules.begin() + static_cast<std::ptrdiff_t>(r) + 1);
        changed = true;
        break;
      }
    }
  }
  return out;
}

Result<ParserSpec> split_transition_key(const ParserSpec& spec, int state, int split_at) {
  if (state < 0 || state >= static_cast<int>(spec.states.size()))
    return Result<ParserSpec>::err("bad-state", "state index out of range");
  const State& st = spec.state(state);
  int kw = st.key_width();
  if (kw < 2) return Result<ParserSpec>::err("key-too-narrow", "cannot split a <2-bit key");
  if (split_at < 0) split_at = kw / 2;
  if (split_at <= 0 || split_at >= kw)
    return Result<ParserSpec>::err("bad-split", "split point outside the key");
  std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
  for (const auto& r : st.rules)
    if (!r.is_default() && r.mask != full)
      return Result<ParserSpec>::err("masked-rules", "split requires exact-match rules");

  // Slice the key part list at bit `split_at`.
  auto slice_parts = [&](int lo, int hi) {
    std::vector<KeyPart> parts;
    int at = 0;
    for (const auto& p : st.key) {
      int plo = std::max(lo - at, 0);
      int phi = std::min(hi - at, p.len);
      if (phi > plo) parts.push_back(KeyPart{p.kind, p.field, p.lo + plo, phi - plo});
      at += p.len;
    }
    return parts;
  };

  ParserSpec out = spec;
  State& head = out.state(state);
  head.key = slice_parts(0, split_at);

  int default_next = kReject;
  for (const auto& r : st.rules)
    if (r.is_default()) {
      default_next = r.next;
      break;
    }

  // Group exact rules by key prefix; one continuation state per prefix.
  head.rules.clear();
  std::map<std::uint64_t, std::vector<Rule>> groups;
  std::vector<std::uint64_t> order;
  int suffix_w = kw - split_at;
  std::uint64_t suffix_mask = suffix_w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << suffix_w) - 1);
  for (const auto& r : st.rules) {
    if (r.is_default()) continue;
    std::uint64_t prefix = r.value >> suffix_w;
    if (!groups.count(prefix)) order.push_back(prefix);
    groups[prefix].push_back(Rule{r.value & suffix_mask, suffix_mask, r.next});
  }
  std::uint64_t prefix_full = split_at >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << split_at) - 1);
  for (std::uint64_t prefix : order) {
    State cont;
    cont.name = st.name + "_k" + std::to_string(prefix);
    cont.key = slice_parts(split_at, kw);
    cont.rules = groups[prefix];
    cont.rules.push_back(Rule{0, 0, default_next});
    int cont_id = static_cast<int>(out.states.size());
    out.states.push_back(std::move(cont));
    out.state(state).rules.push_back(Rule{prefix, prefix_full, cont_id});
  }
  out.state(state).rules.push_back(Rule{0, 0, default_next});
  return out;
}

ParserSpec merge_split_key(const ParserSpec& spec) {
  ParserSpec cur = spec;
  for (bool changed = true; changed;) {
    changed = false;
    // In-degree over live graph.
    std::vector<int> deg(cur.states.size(), 0);
    for (const auto& st : cur.states)
      for (const auto& r : st.rules)
        if (is_real_state(r.next)) ++deg[static_cast<std::size_t>(r.next)];

    for (std::size_t s = 0; s < cur.states.size() && !changed; ++s) {
      State& head = cur.states[s];
      if (head.key.empty() || head.rules.size() < 2) continue;
      int prefix_w = head.key_width();
      std::uint64_t prefix_full =
          prefix_w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << prefix_w) - 1);
      // All non-default rules must be exact and lead to extract-free,
      // single-predecessor states sharing one key structure and one
      // trailing default target.
      int default_next = kReject;
      bool ok = true;
      std::vector<const Rule*> prefix_rules;
      for (const auto& r : head.rules) {
        if (r.is_default()) {
          default_next = r.next;
          continue;
        }
        if (r.mask != prefix_full || !is_real_state(r.next) ||
            deg[static_cast<std::size_t>(r.next)] != 1 || r.next == static_cast<int>(s) ||
            r.next == cur.start) {
          ok = false;
          break;
        }
        prefix_rules.push_back(&r);
      }
      if (!ok || prefix_rules.empty()) continue;
      const State& first = cur.state(prefix_rules[0]->next);
      if (!first.extracts.empty() || first.key.empty()) continue;
      int suffix_w = first.key_width();
      std::uint64_t suffix_full =
          suffix_w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << suffix_w) - 1);
      if (prefix_w + suffix_w > 64) continue;
      for (const Rule* pr : prefix_rules) {
        const State& cont = cur.state(pr->next);
        if (!cont.extracts.empty() || !(cont.key == first.key)) ok = false;
        if (cont.rules.empty() || !cont.rules.back().is_default() ||
            cont.rules.back().next != default_next)
          ok = false;
        for (const auto& cr : cont.rules)
          if (!cr.is_default() && cr.mask != suffix_full) ok = false;
        if (!ok) break;
      }
      if (!ok) continue;

      // Fold.
      State merged = head;
      merged.key.insert(merged.key.end(), first.key.begin(), first.key.end());
      merged.rules.clear();
      std::set<int> absorbed;
      std::uint64_t wide_full = prefix_w + suffix_w >= 64
                                    ? ~std::uint64_t{0}
                                    : ((std::uint64_t{1} << (prefix_w + suffix_w)) - 1);
      for (const Rule* pr : prefix_rules) {
        const State& cont = cur.state(pr->next);
        absorbed.insert(pr->next);
        for (const auto& cr : cont.rules) {
          if (cr.is_default()) continue;
          merged.rules.push_back(
              Rule{(pr->value << suffix_w) | cr.value, wide_full, cr.next});
        }
      }
      merged.rules.push_back(Rule{0, 0, default_next});
      cur.states[s] = std::move(merged);
      std::vector<bool> keep(cur.states.size(), true);
      for (int a : absorbed) keep[static_cast<std::size_t>(a)] = false;
      // Compact.
      std::vector<int> remap(cur.states.size(), -1);
      ParserSpec next_spec;
      next_spec.name = cur.name;
      next_spec.fields = cur.fields;
      for (std::size_t i = 0; i < cur.states.size(); ++i) {
        if (!keep[i]) continue;
        remap[i] = static_cast<int>(next_spec.states.size());
        next_spec.states.push_back(cur.states[i]);
      }
      for (auto& st2 : next_spec.states)
        for (auto& r2 : st2.rules)
          if (is_real_state(r2.next)) r2.next = remap[static_cast<std::size_t>(r2.next)];
      next_spec.start = remap[static_cast<std::size_t>(cur.start)];
      cur = std::move(next_spec);
      changed = true;
    }
  }
  return cur;
}

ParserSpec split_states(const ParserSpec& spec, Rng& rng, int count) {
  ParserSpec out = spec;
  for (int i = 0; i < count; ++i) {
    std::vector<int> candidates;
    for (std::size_t s = 0; s < out.states.size(); ++s)
      if (out.states[s].extracts.size() >= 2) candidates.push_back(static_cast<int>(s));
    if (candidates.empty()) return out;
    int s = candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
    State& st = out.state(s);
    std::size_t cut = 1 + static_cast<std::size_t>(rng.below(st.extracts.size() - 1));
    State tail;
    tail.name = st.name + "_tail";
    tail.extracts.assign(st.extracts.begin() + static_cast<std::ptrdiff_t>(cut), st.extracts.end());
    tail.key = st.key;
    tail.rules = st.rules;
    st.extracts.resize(cut);
    st.key.clear();
    int tail_id = static_cast<int>(out.states.size());
    st.rules = {Rule{0, 0, tail_id}};
    out.states.push_back(std::move(tail));
  }
  return out;
}

}  // namespace parserhawk::rewrite
