#include "analysis/analysis.h"

#include <z3++.h>

#include <algorithm>
#include <functional>

#include "obs/trace.h"

namespace parserhawk {

namespace {

/// Z3 expression for "rule matches key": (key ^ value) & mask == 0.
z3::expr rule_matches(z3::context& ctx, const z3::expr& key, const Rule& rule, int kw) {
  if (kw == 0) return ctx.bool_val(true);
  z3::expr v = ctx.bv_val(static_cast<std::uint64_t>(rule.value), static_cast<unsigned>(kw));
  z3::expr m = ctx.bv_val(static_cast<std::uint64_t>(rule.mask), static_cast<unsigned>(kw));
  return ((key ^ v) & m) == ctx.bv_val(0, static_cast<unsigned>(kw));
}

/// Next-state as a function of key for a rule list, as a nested ITE.
z3::expr next_of(z3::context& ctx, const z3::expr& key, const std::vector<Rule>& rules, int kw) {
  z3::expr out = ctx.int_val(kReject);
  for (auto it = rules.rbegin(); it != rules.rend(); ++it)
    out = z3::ite(rule_matches(ctx, key, *it, kw), ctx.int_val(it->next), out);
  return out;
}

}  // namespace

bool rule_can_fire(const ParserSpec& spec, int state, int rule_idx) {
  const State& st = spec.state(state);
  int kw = st.key_width();
  if (kw == 0) return rule_idx == 0;  // only the first rule of a keyless state fires

  z3::context ctx;
  z3::solver solver(ctx);
  z3::expr key = ctx.bv_const("key", static_cast<unsigned>(kw));
  solver.add(rule_matches(ctx, key, st.rules[static_cast<std::size_t>(rule_idx)], kw));
  for (int i = 0; i < rule_idx; ++i)
    solver.add(!rule_matches(ctx, key, st.rules[static_cast<std::size_t>(i)], kw));
  return solver.check() == z3::sat;
}

bool rule_is_redundant(const ParserSpec& spec, int state, int rule_idx) {
  const State& st = spec.state(state);
  int kw = st.key_width();
  if (kw == 0) return rule_idx != 0;

  std::vector<Rule> without = st.rules;
  without.erase(without.begin() + rule_idx);

  z3::context ctx;
  z3::solver solver(ctx);
  z3::expr key = ctx.bv_const("key", static_cast<unsigned>(kw));
  solver.add(next_of(ctx, key, st.rules, kw) != next_of(ctx, key, without, kw));
  return solver.check() == z3::unsat;
}

std::set<std::uint64_t> subrange_constants(std::uint64_t value, int width, int key_limit) {
  std::set<std::uint64_t> out;
  if (width <= key_limit && width > 0) out.insert(value);
  for (int lo = 0; lo < width; ++lo) {
    for (int len = 1; len <= key_limit && lo + len <= width; ++len) {
      // bits [lo, lo+len) in MSB-first order of a `width`-bit value
      int shift = width - lo - len;
      std::uint64_t sub =
          (value >> shift) & (len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1));
      out.insert(sub);
    }
  }
  return out;
}

int state_max_bits(const ParserSpec& spec, int state) {
  const State& st = spec.state(state);
  int bits = 0;
  for (const auto& ex : st.extracts) bits += spec.fields[static_cast<std::size_t>(ex.field)].width;
  int lookahead_reach = 0;
  for (const auto& p : st.key)
    if (p.kind == KeyPart::Kind::Lookahead) lookahead_reach = std::max(lookahead_reach, p.lo + p.len);
  return std::max(bits, lookahead_reach);
}

SpecAnalysis analyze(const ParserSpec& spec, int max_iterations) {
  obs::Span span("analyze");
  span.arg("spec", spec.name);
  SpecAnalysis a;
  const int n = static_cast<int>(spec.states.size());
  a.state_reachable.assign(static_cast<std::size_t>(n), false);

  // Dead-rule detection first: reachability should only follow live rules.
  for (int s = 0; s < n; ++s) {
    const State& st = spec.states[static_cast<std::size_t>(s)];
    for (int r = 0; r < static_cast<int>(st.rules.size()); ++r) {
      if (!rule_can_fire(spec, s, r)) a.dead_rules.emplace_back(s, r);
      if (!rule_can_fire(spec, s, r) || rule_is_redundant(spec, s, r))
        a.redundant_rules.emplace_back(s, r);
    }
  }

  // BFS over live edges.
  std::vector<int> work{spec.start};
  a.state_reachable[static_cast<std::size_t>(spec.start)] = true;
  while (!work.empty()) {
    int s = work.back();
    work.pop_back();
    const State& st = spec.states[static_cast<std::size_t>(s)];
    for (int r = 0; r < static_cast<int>(st.rules.size()); ++r) {
      if (a.rule_is_dead(s, r)) continue;
      int next = st.rules[static_cast<std::size_t>(r)].next;
      if (is_real_state(next) && !a.state_reachable[static_cast<std::size_t>(next)]) {
        a.state_reachable[static_cast<std::size_t>(next)] = true;
        work.push_back(next);
      }
    }
  }

  // Cycle detection on the reachable live sub-graph (iterative DFS colors).
  {
    enum { White, Grey, Black };
    std::vector<int> color(static_cast<std::size_t>(n), White);
    std::function<bool(int)> dfs = [&](int s) -> bool {
      color[static_cast<std::size_t>(s)] = Grey;
      const State& st = spec.states[static_cast<std::size_t>(s)];
      for (int r = 0; r < static_cast<int>(st.rules.size()); ++r) {
        if (a.rule_is_dead(s, r)) continue;
        int next = st.rules[static_cast<std::size_t>(r)].next;
        if (!is_real_state(next)) continue;
        if (color[static_cast<std::size_t>(next)] == Grey) return true;
        if (color[static_cast<std::size_t>(next)] == White && dfs(next)) return true;
      }
      color[static_cast<std::size_t>(s)] = Black;
      return false;
    };
    a.has_loop = a.state_reachable[static_cast<std::size_t>(spec.start)] && dfs(spec.start);
  }

  // Key-bit usage (Opt1) and irrelevant fields (Opt2).
  a.key_usage.resize(spec.fields.size());
  for (std::size_t f = 0; f < spec.fields.size(); ++f)
    a.key_usage[f].bits.assign(static_cast<std::size_t>(spec.fields[f].width), false);
  std::vector<bool> is_len_source(spec.fields.size(), false);
  std::vector<bool> extracted(spec.fields.size(), false);
  for (const auto& st : spec.states) {
    for (const auto& p : st.key)
      if (p.kind == KeyPart::Kind::FieldSlice)
        for (int j = 0; j < p.len; ++j)
          a.key_usage[static_cast<std::size_t>(p.field)].bits[static_cast<std::size_t>(p.lo + j)] = true;
    for (const auto& ex : st.extracts) {
      extracted[static_cast<std::size_t>(ex.field)] = true;
      if (ex.len_field >= 0) is_len_source[static_cast<std::size_t>(ex.len_field)] = true;
    }
  }
  a.irrelevant_field.assign(spec.fields.size(), false);
  for (std::size_t f = 0; f < spec.fields.size(); ++f)
    a.irrelevant_field[f] = extracted[f] && !a.key_usage[f].any() && !is_len_source[f];

  // Constant pools (Opt4 raw material).
  a.state_constants.resize(spec.states.size());
  for (std::size_t s = 0; s < spec.states.size(); ++s) {
    const State& st = spec.states[s];
    int kw = st.key_width();
    std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : kw == 0 ? 0 : ((std::uint64_t{1} << kw) - 1);
    for (const auto& r : st.rules)
      if (!r.is_default()) a.state_constants[s].insert(r.value & full);
  }

  // Input-length bound: DP over (iteration, state) of max cumulative bits.
  {
    std::vector<int> best(static_cast<std::size_t>(n), -1);
    best[static_cast<std::size_t>(spec.start)] = 0;
    int overall = state_max_bits(spec, spec.start);
    for (int iter = 0; iter < max_iterations; ++iter) {
      std::vector<int> next_best(static_cast<std::size_t>(n), -1);
      bool changed = false;
      for (int s = 0; s < n; ++s) {
        if (best[static_cast<std::size_t>(s)] < 0) continue;
        int after = best[static_cast<std::size_t>(s)] + state_max_bits(spec, s);
        overall = std::max(overall, after);
        for (const auto& r : spec.states[static_cast<std::size_t>(s)].rules) {
          if (!is_real_state(r.next)) continue;
          int& slot = next_best[static_cast<std::size_t>(r.next)];
          if (after > slot) {
            slot = after;
            changed = true;
          }
        }
      }
      // Carry forward the best-so-far for states reachable at multiple depths.
      for (int s = 0; s < n; ++s)
        best[static_cast<std::size_t>(s)] = std::max(best[static_cast<std::size_t>(s)],
                                                     next_best[static_cast<std::size_t>(s)]);
      if (!changed) break;
    }
    a.max_input_bits = overall;
  }

  return a;
}

}  // namespace parserhawk
