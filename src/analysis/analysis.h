// Program analyzer (§5.1 "Code Analyzer and Encoder").
//
// Extracts the semantic facts the synthesizer and the rewrite engine
// consume: reachability, loop structure, dead (shadowed) and redundant
// transition rules, which field bits participate in transition keys (Opt1),
// which fields are irrelevant (Opt2), the constant pools for value/mask
// synthesis (Opt4), and the input-length bound for bounded verification.
//
// Shadow/redundancy checks are exact: each is a single Z3 query over the
// state's <=64-bit key space, not a heuristic cube cover.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "ir/ir.h"

namespace parserhawk {

/// Per-field key-bit usage: bit i set means bit i of the field appears in
/// some state's transition key.
struct FieldKeyUsage {
  std::vector<bool> bits;
  bool any() const {
    for (bool b : bits)
      if (b) return true;
    return false;
  }
};

struct SpecAnalysis {
  /// Reachable from the start state via rules that can actually fire.
  std::vector<bool> state_reachable;

  /// True when the reachable sub-graph contains a cycle (MPLS-style loops);
  /// pipelined targets must unroll or reject such programs.
  bool has_loop = false;

  /// (state, rule index) pairs that can never fire: every key they match is
  /// claimed by a higher-priority rule. These are the R2 "unreachable
  /// entries" of Figure 21.
  std::vector<std::pair<int, int>> dead_rules;

  /// (state, rule index) pairs whose removal leaves the state's transition
  /// function unchanged (dead, or duplicating the behavior of what remains).
  /// Superset of dead_rules; these are the R1 "redundant entries".
  std::vector<std::pair<int, int>> redundant_rules;

  /// Key-bit usage per field (Opt1: spec-guided key construction).
  std::vector<FieldKeyUsage> key_usage;

  /// Fields extracted somewhere but contributing no key bits and not acting
  /// as a varbit length source (Opt2: candidates for bit-width
  /// minimization).
  std::vector<bool> irrelevant_field;

  /// Per-state constants appearing as rule values (masked to the key
  /// width), the raw material of Opt4 constant synthesis.
  std::vector<std::set<std::uint64_t>> state_constants;

  /// Upper bound on bits any K-iteration parse can consume; the symbolic
  /// input width for CEGIS verification.
  int max_input_bits = 0;

  bool rule_is_dead(int state, int rule) const {
    for (auto [s, r] : dead_rules)
      if (s == state && r == rule) return true;
    return false;
  }
};

/// Run all analyses. `max_iterations` is the K bound used for the input
/// length computation (loopy graphs consume more input per extra
/// iteration).
SpecAnalysis analyze(const ParserSpec& spec, int max_iterations = 64);

/// Exact check: can rule `rule_idx` of `state` ever fire given its
/// higher-priority siblings? (Z3 query over the key space.)
bool rule_can_fire(const ParserSpec& spec, int state, int rule_idx);

/// Exact check: does deleting rule `rule_idx` leave the state's
/// key -> next-state function unchanged?
bool rule_is_redundant(const ParserSpec& spec, int state, int rule_idx);

/// Opt4.3: all width-limited sub-range constants C[i..j] (j-i <= key_limit)
/// of `value` interpreted at `width` bits, plus the value itself when it
/// fits. Deduplicated.
std::set<std::uint64_t> subrange_constants(std::uint64_t value, int width, int key_limit);

/// Upper bound on bits consumed by one activation of `state` (extracts
/// plus lookahead reach).
int state_max_bits(const ParserSpec& spec, int state);

}  // namespace parserhawk
