#include "backend/backend.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace parserhawk::backend {

namespace {

std::string hex(std::uint64_t value, int width_bits) {
  char buf[32];
  int digits = std::max(1, (width_bits + 3) / 4);
  std::snprintf(buf, sizeof(buf), "0x%0*llx", digits, static_cast<unsigned long long>(value));
  return buf;
}

std::string key_spec(const TcamProgram& prog, int table, int state) {
  const StateLayout* layout = prog.layout_of(table, state);
  if (layout == nullptr || layout->key.empty()) return "-";
  std::string out;
  for (const auto& p : layout->key) {
    if (!out.empty()) out += "++";
    if (p.kind == KeyPart::Kind::Lookahead) {
      out += "la[" + std::to_string(p.lo) + ":" + std::to_string(p.lo + p.len) + "]";
    } else {
      out += prog.fields.at(static_cast<std::size_t>(p.field)).name + "[" + std::to_string(p.lo) +
             ":" + std::to_string(p.lo + p.len) + "]";
    }
  }
  return out;
}

std::string extract_spec(const TcamProgram& prog, const TcamEntry& e) {
  if (e.extracts.empty()) return "-";
  std::string out;
  for (const auto& ex : e.extracts) {
    if (!out.empty()) out += ",";
    out += prog.fields.at(static_cast<std::size_t>(ex.field)).name;
    if (ex.len_field >= 0)
      out += "(var:" + prog.fields.at(static_cast<std::size_t>(ex.len_field)).name + ")";
  }
  return out;
}

std::string target_spec(const TcamEntry& e) {
  if (e.next_state == kAccept) return "accept";
  if (e.next_state == kReject) return "reject";
  return "s" + std::to_string(e.next_state) + "@t" + std::to_string(e.next_table);
}

void emit_rows(std::ostringstream& os, const TcamProgram& prog, int table) {
  std::set<int> states;
  for (const auto& e : prog.entries)
    if (e.table == table) states.insert(e.state);
  for (int state : states) {
    const StateLayout* layout = prog.layout_of(table, state);
    int kw = layout ? layout->key_width() : 0;
    os << "  state s" << state << " key " << key_spec(prog, table, state) << " (" << kw
       << "b)\n";
    for (const TcamEntry* row : prog.rows_of(table, state)) {
      os << "    entry " << row->entry << " match " << hex(row->value, kw) << "/"
         << hex(row->mask, kw) << " extract " << extract_spec(prog, *row) << " goto "
         << target_spec(*row) << "\n";
    }
  }
}

}  // namespace

std::string emit_tofino(const TcamProgram& prog) {
  std::ostringstream os;
  os << "# tofino parser TCAM configuration: " << prog.name << "\n";
  os << "# " << prog.entries.size() << " entries, single table, start s" << prog.start_state
     << "\n";
  os << "table parser_tcam\n";
  emit_rows(os, prog, 0);
  return os.str();
}

std::string emit_ipu(const TcamProgram& prog) {
  std::ostringstream os;
  std::set<int> tables;
  for (const auto& e : prog.entries) tables.insert(e.table);
  os << "# ipu pipelined parser configuration: " << prog.name << "\n";
  os << "# " << prog.entries.size() << " entries over " << tables.size() << " stage(s), start s"
     << prog.start_state << "@t" << prog.start_table << "\n";
  for (int table : tables) {
    int count = 0;
    for (const auto& e : prog.entries)
      if (e.table == table) ++count;
    os << "stage " << table << " (" << count << " entries)\n";
    emit_rows(os, prog, table);
  }
  return os.str();
}

std::string emit(const TcamProgram& prog, const HwProfile& profile) {
  return profile.arch == Arch::SingleTable ? emit_tofino(prog) : emit_ipu(prog);
}

}  // namespace parserhawk::backend
