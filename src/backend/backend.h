// Back-end code generators: render a compiled TcamProgram as
// target-specific configuration text.
//
// The formats are deliberately simple, line-oriented and diff-friendly —
// one TCAM row per line — mirroring what a vendor SDE's table-config dump
// looks like: single flat table for Tofino-class devices, one table block
// per pipeline stage for IPU-class devices. These artifacts are what a
// deployment pipeline would load; the library-internal TcamProgram remains
// the source of truth for simulation and verification.
#pragma once

#include <string>

#include "hw/profile.h"
#include "tcam/tcam.h"

namespace parserhawk::backend {

/// Single-table format: one `entry` line per row, keyed by state.
std::string emit_tofino(const TcamProgram& prog);

/// Pipelined format: one `stage` block per table, rows within.
std::string emit_ipu(const TcamProgram& prog);

/// Dispatch on the profile's architecture.
std::string emit(const TcamProgram& prog, const HwProfile& profile);

}  // namespace parserhawk::backend
