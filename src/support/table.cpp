#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace parserhawk {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) throw std::invalid_argument("TextTable: row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto render_sep = [&] {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) line += std::string(width[c] + 2, '-') + "|";
    return line + "\n";
  };

  std::string out = render_line(headers_) + render_sep();
  for (const auto& row : rows_) out += row.empty() ? render_sep() : render_line(row);
  return out;
}

std::string fmt_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_seconds(double seconds, bool timed_out) {
  return timed_out ? ">" + fmt_double(seconds, 0) : fmt_double(seconds, 2);
}

}  // namespace parserhawk
