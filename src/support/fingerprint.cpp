#include "support/fingerprint.h"

#include <algorithm>
#include <cstdio>

namespace parserhawk {

namespace {
constexpr std::uint64_t kPrimeLo = 0x100000001b3ull;
constexpr std::uint64_t kPrimeHi = 0x00000100000001b3ull ^ 0x9e3779b97f4a7c15ull;
}  // namespace

void Fingerprint::mix(std::uint8_t byte) {
  lo_ = (lo_ ^ byte) * kPrimeLo;
  hi_ = (hi_ ^ byte ^ (fed_ & 0xff)) * kPrimeHi;
  ++fed_;
}

void Fingerprint::add_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Fingerprint::add_bytes(const void* data, std::size_t len) {
  add_u64(static_cast<std::uint64_t>(len));
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) mix(p[i]);
}

void Fingerprint::add_bitvec(const BitVec& v) {
  add_int(v.size());
  for (int b = 0; b < v.size(); b += 64) {
    int len = std::min(64, v.size() - b);
    add_u64(v.slice(b, len).to_u64());
  }
}

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx", static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return buf;
}

}  // namespace parserhawk
