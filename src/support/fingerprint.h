// Streaming 128-bit content fingerprint (two independent FNV-1a lanes).
//
// The synthesis cache (src/cache) keys entries by a fingerprint of the
// canonical per-state sub-problem, so the hash must be a pure function of
// the fed content: no pointer values, no iteration over unordered
// containers, no platform-dependent layout. Every `add` overload reduces
// its argument to a defined byte sequence first (integers little-endian,
// BitVec as width + packed 64-bit chunks in wire order), which keeps
// fingerprints stable across platforms, builds and processes — a cache
// entry written by one binary is valid for any other at the same epoch.
//
// 128 bits makes accidental collisions negligible (~2^-64 at a billion
// entries); cache hits are additionally revalidated against the problem
// semantics before use (chain_synth's validate_solution), so even an
// adversarial collision cannot produce a wrong program.
#pragma once

#include <cstdint>
#include <string>

#include "support/bitvec.h"

namespace parserhawk {

class Fingerprint {
 public:
  Fingerprint() = default;

  /// Primitive feeds. Signed values go through their two's-complement
  /// 64-bit image so -1 (kAccept/kReject sentinels) hashes consistently.
  void add_u64(std::uint64_t v);
  void add_i64(std::int64_t v) { add_u64(static_cast<std::uint64_t>(v)); }
  void add_int(int v) { add_i64(v); }
  void add_bool(bool v) { add_u64(v ? 1 : 0); }

  /// Length-prefixed, so consecutive strings cannot alias each other.
  void add_bytes(const void* data, std::size_t len);
  void add_string(const std::string& s) { add_bytes(s.data(), s.size()); }

  /// Width + contents in wire order (64-bit chunks, MSB-first).
  void add_bitvec(const BitVec& v);

  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }

  /// 32 lowercase hex chars; used as the cache entry name.
  std::string hex() const;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

 private:
  void mix(std::uint8_t byte);

  // Two FNV-1a lanes with distinct offset bases; the second lane also
  // folds in a running byte counter so lane collisions are independent.
  std::uint64_t lo_ = 0xcbf29ce484222325ull;
  std::uint64_t hi_ = 0x6c62272e07bb0142ull;
  std::uint64_t fed_ = 0;
};

}  // namespace parserhawk
