// Bitstream: a read cursor over a BitVec.
//
// Models the parser's extraction pointer (`pos` in the paper's Figure 6/9):
// `read(w)` consumes w bits, `peek(offset, w)` implements lookahead without
// consuming. Reads past the end return nullopt, which both interpreters map
// to an implicit transition to the reject state (atomic per-field
// extraction; see DESIGN.md §4).
#pragma once

#include <optional>

#include "support/bitvec.h"

namespace parserhawk {

class Bitstream {
 public:
  explicit Bitstream(BitVec data) : data_(std::move(data)) {}

  /// Bits not yet consumed.
  int remaining() const { return data_.size() - pos_; }

  /// Current extraction pointer (bits consumed so far).
  int position() const { return pos_; }

  /// Total number of bits in the underlying vector.
  int size() const { return data_.size(); }

  /// Consume `width` bits. Returns nullopt (and consumes nothing) if fewer
  /// than `width` bits remain.
  std::optional<BitVec> read(int width) {
    if (width < 0 || width > remaining()) return std::nullopt;
    BitVec out = data_.slice(pos_, width);
    pos_ += width;
    return out;
  }

  /// Lookahead: bits [position()+offset, position()+offset+width) without
  /// consuming. Returns nullopt if the window runs past the end.
  std::optional<BitVec> peek(int offset, int width) const {
    if (offset < 0 || width < 0 || offset + width > remaining()) return std::nullopt;
    return data_.slice(pos_ + offset, width);
  }

  /// Underlying data (whole packet).
  const BitVec& data() const { return data_; }

 private:
  BitVec data_;
  int pos_ = 0;
};

}  // namespace parserhawk
