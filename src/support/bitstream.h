// Bitstream: a zero-copy read cursor over wire-order bits.
//
// Models the parser's extraction pointer (`pos` in the paper's Figure 6/9):
// `read(w)` consumes w bits, `peek(offset, w)` implements lookahead without
// consuming. Reads past the end return nullopt, which both interpreters map
// to an implicit transition to the reject state (atomic per-field
// extraction; see DESIGN.md §4).
//
// The stream never owns the packet. It views either a BitVec (the
// front-end / synthesizer currency) or a raw wire-order byte buffer (a
// pcap::PacketView window into a capture file), so running a packet
// through an interpreter costs zero allocations and zero copies of the
// packet body — the backing buffer must simply outlive the stream. Both
// backings agree on bit order: bit i is bit (7 - i%8) of byte i/8, which
// is exactly BitVec's MSB-first wire order.
#pragma once

#include <optional>

#include "support/bitvec.h"

namespace parserhawk {

class Bitstream {
 public:
  /// View over a BitVec. The vector must outlive the stream; binding a
  /// temporary is deleted below because it would dangle immediately.
  explicit Bitstream(const BitVec& data) : bits_(&data), size_(data.size()) {}
  explicit Bitstream(BitVec&& data) = delete;

  /// View over `nbits` wire-order bits of a raw byte buffer.
  Bitstream(const std::uint8_t* bytes, int nbits) : bytes_(bytes), size_(nbits) {}

  /// Bits not yet consumed.
  int remaining() const { return size_ - pos_; }

  /// Current extraction pointer (bits consumed so far).
  int position() const { return pos_; }

  /// Total number of bits in the underlying buffer.
  int size() const { return size_; }

  /// Consume `width` bits. Returns nullopt (and consumes nothing) if fewer
  /// than `width` bits remain.
  std::optional<BitVec> read(int width) {
    if (width < 0 || width > remaining()) return std::nullopt;
    BitVec out = window(pos_, width);
    pos_ += width;
    return out;
  }

  /// Lookahead: bits [position()+offset, position()+offset+width) without
  /// consuming. Returns nullopt if the window runs past the end.
  std::optional<BitVec> peek(int offset, int width) const {
    if (offset < 0 || width < 0 || offset + width > remaining()) return std::nullopt;
    return window(pos_ + offset, width);
  }

 private:
  BitVec window(int lo, int len) const {
    return bits_ != nullptr ? bits_->slice(lo, len) : BitVec::from_bytes(bytes_, lo, len);
  }

  const BitVec* bits_ = nullptr;
  const std::uint8_t* bytes_ = nullptr;
  int size_ = 0;
  int pos_ = 0;
};

}  // namespace parserhawk
