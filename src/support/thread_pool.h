// Small work-stealing thread pool backing the Opt7 parallel portfolio.
//
// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
// cache-friendly for nested fan-out) while idle workers steal from the
// front of other queues (FIFO, oldest-first — which for the compiler's
// budget-ordered attempt lists means low variant indices start first, so
// speculation stays close to the sequential search order).
//
// run_all() is the structured primitive the synthesizer uses: it blocks
// until the whole batch finished, and the *calling* thread participates by
// draining queued tasks while it waits. That makes nested batches safe —
// a pool task may itself call run_all (per-state races inside the
// per-state fan-out) without deadlocking, because waiting threads keep
// executing work instead of sleeping on it.
//
// Shutdown is drain-then-join: the destructor completes every task already
// submitted, so a scoped pool never leaks threads or drops work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parserhawk {

/// Pool health counters (DESIGN.md §7). Monotonic over the pool's life;
/// read them after shutdown (or any quiescent point) for exact totals.
struct ThreadPoolStats {
  std::int64_t submitted = 0;  ///< tasks handed to submit()/run_all()
  std::int64_t executed = 0;   ///< tasks actually run (== submitted at shutdown)
  std::int64_t steals = 0;     ///< executions acquired from a non-home queue
  std::int64_t queue_depth_hwm = 0;  ///< max queued-but-unstarted tasks
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Fire-and-forget submission. The task is guaranteed to run before the
  /// destructor returns.
  void submit(std::function<void()> task);

  /// Run every task in `tasks` to completion before returning. The calling
  /// thread helps drain the pool while it waits; safe to call from inside a
  /// pool task (nested batches).
  void run_all(std::vector<std::function<void()>> tasks);

  /// Snapshot of the health counters. Consistent (executed == submitted,
  /// steals <= executed) once the pool is idle or destroyed.
  ThreadPoolStats stats() const;

  /// Publish stats() into the global obs::Metrics registry under
  /// "pool.submitted" / "pool.executed" / "pool.steals" /
  /// "pool.queue_depth_hwm" (gauge). No-op when metrics are disabled.
  void publish_metrics() const;

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Pop from our own queue's back, else steal from the front of another
  /// queue, scanning from `home`. Returns false when every queue is empty.
  bool try_acquire(std::function<void()>& out, std::size_t home);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Idle/shutdown coordination: `pending_` counts queued-but-unstarted
  // tasks; workers sleep on `work_cv_` only when it is zero.
  mutable std::mutex idle_mutex_;  // mutable: stats() reads under it
  std::condition_variable work_cv_;
  int pending_ = 0;
  bool stop_ = false;
  std::size_t next_queue_ = 0;  // round-robin home queue for external submits

  // Health counters. submitted_/queue_depth_hwm_ piggyback on idle_mutex_
  // (already held where they change); executed_/steals_ are updated from
  // try_acquire under per-queue locks, so they are atomics.
  std::int64_t submitted_ = 0;
  std::int64_t queue_depth_hwm_ = 0;
  std::atomic<std::int64_t> executed_{0};
  std::atomic<std::int64_t> steals_{0};
};

}  // namespace parserhawk
