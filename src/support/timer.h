// Wall-clock stopwatch and deadline used by the synthesis budget search.
//
// The paper imposes a 24-hour compilation timeout; our harness scales that
// to seconds (DESIGN.md §5). Deadline is threaded through the CEGIS loop so
// a timed-out "Orig" run aborts cleanly and reports ">timeout" like
// Table 3's red cells.
//
// A Deadline may also carry a CancelToken (with_token): the Opt7 portfolio
// cancels losing variants by tripping the token, and every place that
// already polls expired() — budget steps, CEGIS rounds — observes it for
// free. remaining_sec() stays purely time-based so Z3 per-query timeouts
// never collapse to the "0 = unlimited" trap on cancellation.
#pragma once

#include <chrono>

#include "support/cancel.h"

namespace parserhawk {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  double elapsed_sec() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

class Deadline {
 public:
  /// A deadline `budget_sec` seconds from now. Non-positive budget means
  /// "no deadline" (never expires).
  explicit Deadline(double budget_sec) : budget_sec_(budget_sec) {}

  static Deadline none() { return Deadline(0); }

  /// A copy sharing this deadline's start time and budget that additionally
  /// reports expiry when `token` is cancelled.
  Deadline with_token(CancelToken token) const {
    Deadline d = *this;
    d.token_ = std::move(token);
    return d;
  }

  bool cancelled() const { return token_.cancelled(); }

  bool expired() const {
    return token_.cancelled() || (budget_sec_ > 0 && watch_.elapsed_sec() >= budget_sec_);
  }

  /// Seconds left; +inf when unlimited, clamped at 0 when expired.
  double remaining_sec() const {
    if (budget_sec_ <= 0) return 1e30;
    double r = budget_sec_ - watch_.elapsed_sec();
    return r > 0 ? r : 0;
  }

  double budget_sec() const { return budget_sec_; }

 private:
  double budget_sec_;
  Stopwatch watch_;
  CancelToken token_;
};

}  // namespace parserhawk
