// Deterministic RNG used by test generation and the differential tester.
//
// A thin splitmix64 wrapper: reproducible across platforms (unlike
// std::mt19937_64 seeded through seed_seq), trivially seedable per test so
// failures replay exactly.
#pragma once

#include <cstdint>

namespace parserhawk {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) : state_(seed) {}

  /// Next 64 random bits (splitmix64).
  std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int range(int lo, int hi) { return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1))); }

  /// Bernoulli draw with probability p (0..1).
  bool chance(double p) { return static_cast<double>((*this)() >> 11) * 0x1.0p-53 < p; }

 private:
  std::uint64_t state_;
};

}  // namespace parserhawk
