#include "support/thread_pool.h"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace parserhawk {

ThreadPool::ThreadPool(int num_threads) {
  std::size_t n = static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(idle_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t q;
  {
    std::lock_guard<std::mutex> lk(idle_mutex_);
    q = next_queue_++ % queues_.size();
    ++pending_;
    ++submitted_;
    if (pending_ > queue_depth_hwm_) queue_depth_hwm_ = pending_;
  }
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_acquire(std::function<void()>& out, std::size_t home) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Queue& q = *queues_[(home + i) % n];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty()) continue;
    if (i == 0) {  // own queue: newest first
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {  // steal: oldest first
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> ilk(idle_mutex_);
    --pending_;
    return true;
  }
  return false;
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  {
    std::lock_guard<std::mutex> lk(idle_mutex_);
    s.submitted = submitted_;
    s.queue_depth_hwm = queue_depth_hwm_;
  }
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::publish_metrics() const {
  if (!obs::metrics_on()) return;
  ThreadPoolStats s = stats();
  obs::count("pool.submitted", s.submitted);
  obs::count("pool.executed", s.executed);
  obs::count("pool.steals", s.steals);
  obs::maximize("pool.queue_depth_hwm", s.queue_depth_hwm);
}

void ThreadPool::worker_loop(std::size_t self) {
  // Named track per worker so Opt7 races are readable in Perfetto.
  obs::set_thread_name("worker " + std::to_string(self));
  std::function<void()> task;
  for (;;) {
    if (try_acquire(task, self)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mutex_);
    // Drain-then-join shutdown: exit only once stop is set AND nothing is
    // queued, so work submitted before the destructor always runs.
    if (stop_ && pending_ == 0) return;
    work_cv_.wait(lk, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;

  struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();

  for (auto& t : tasks) {
    submit([task = std::move(t), batch] {
      task();
      std::lock_guard<std::mutex> lk(batch->mutex);
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    });
  }

  // Participate until the batch drains. Between checks, execute *any*
  // queued task — our own batch's, a sibling batch's, whatever — so nested
  // run_all calls from pool workers make progress instead of deadlocking.
  std::function<void()> task;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(batch->mutex);
      if (batch->remaining == 0) return;
    }
    if (try_acquire(task, 0)) {
      task();
      task = nullptr;
      continue;
    }
    // Nothing stealable: our remaining tasks are running on workers. Sleep
    // briefly; the timeout re-polls for new stealable work (a running task
    // may fan out again) since that work signals work_cv_, not done_cv.
    std::unique_lock<std::mutex> lk(batch->mutex);
    batch->done_cv.wait_for(lk, std::chrono::milliseconds(5),
                            [&] { return batch->remaining == 0; });
  }
}

}  // namespace parserhawk
