// BitVec: an arbitrary-width bit vector in wire order.
//
// Bit 0 is the first bit on the wire, which is the most significant bit of
// the first header field. All slicing and numeric conversions follow this
// convention: `slice(0, 16).to_u64()` of an Ethernet frame yields the first
// 16 bits of the destination MAC interpreted MSB-first.
//
// BitVec is the common currency between the front-end (field values in
// transition entries), the interpreters (bitstream contents, output
// dictionaries), and the synthesizer (counterexample inputs decoded from Z3
// models).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace parserhawk {

class BitVec {
 public:
  /// Empty vector of zero bits.
  BitVec() = default;

  /// `width` zero bits.
  explicit BitVec(int width);

  /// The low `width` bits of `value`, laid out MSB-first in wire order.
  /// Requires 0 <= width <= 64.
  static BitVec from_u64(std::uint64_t value, int width);

  /// Bits [bit_lo, bit_lo + bit_len) of a wire-order byte buffer (bit 0 =
  /// MSB of bytes[0], matching how capture files lay packets out). The
  /// caller guarantees the window is inside the buffer.
  static BitVec from_bytes(const std::uint8_t* bytes, int bit_lo, int bit_len);

  /// Parse a literal like "0b1010" / "1010" (wire order, bit 0 first).
  /// Returns nullopt on any character outside {0,1} (after an optional
  /// "0b" prefix) or on an empty payload.
  static std::optional<BitVec> parse_binary(const std::string& text);

  /// Number of bits.
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bit at wire position `i` (0 = first on wire). Requires 0 <= i < size().
  bool get(int i) const;

  /// Set bit at wire position `i`. Requires 0 <= i < size().
  void set(int i, bool value);

  /// Append a single bit at the end (later on the wire).
  void push_back(bool bit);

  /// Append all bits of `other` after this vector's bits.
  void append(const BitVec& other);

  /// Append the low `width` bits of `value`, MSB-first.
  void append_u64(std::uint64_t value, int width);

  /// Bits [lo, lo+len) in wire order. Requires the range to be in bounds.
  BitVec slice(int lo, int len) const;

  /// Interpret the whole vector as an unsigned integer, MSB-first.
  /// Requires size() <= 64.
  std::uint64_t to_u64() const;

  /// "0b..."-style string in wire order.
  std::string to_string() const;

  /// Uniformly random vector of `width` bits drawn from `next_word`,
  /// a callable returning uint64_t (see Rng::operator()).
  static BitVec random(int width, const std::function<std::uint64_t()>& next_word);

  friend bool operator==(const BitVec& a, const BitVec& b);
  friend bool operator!=(const BitVec& a, const BitVec& b) { return !(a == b); }

  /// FNV-1a style hash over contents (for use as unordered_map key).
  std::size_t hash() const;

 private:
  static constexpr int kWordBits = 64;
  // words_[0] bit 63 is wire bit 0 (MSB-first packing keeps to_u64 cheap
  // for the common <=64-bit case).
  std::vector<std::uint64_t> words_;
  int size_ = 0;

  void ensure_capacity(int bits);
};

}  // namespace parserhawk

template <>
struct std::hash<parserhawk::BitVec> {
  std::size_t operator()(const parserhawk::BitVec& v) const noexcept { return v.hash(); }
};
