#include "support/bitvec.h"

#include <cassert>
#include <stdexcept>

namespace parserhawk {

namespace {
// Position of wire bit i inside its word: bit 0 -> word 0 bit 63.
inline int word_index(int i) { return i / 64; }
inline int bit_offset(int i) { return 63 - (i % 64); }
}  // namespace

BitVec::BitVec(int width) {
  if (width < 0) throw std::invalid_argument("BitVec: negative width");
  size_ = width;
  words_.assign((width + kWordBits - 1) / kWordBits, 0);
}

BitVec BitVec::from_u64(std::uint64_t value, int width) {
  if (width < 0 || width > 64) throw std::invalid_argument("BitVec::from_u64: width out of [0,64]");
  BitVec v(width);
  for (int i = 0; i < width; ++i) {
    bool bit = (value >> (width - 1 - i)) & 1u;
    v.set(i, bit);
  }
  return v;
}

BitVec BitVec::from_bytes(const std::uint8_t* bytes, int bit_lo, int bit_len) {
  if (bit_lo < 0 || bit_len < 0) throw std::out_of_range("BitVec::from_bytes");
  BitVec v(bit_len);
  for (int i = 0; i < bit_len; ++i) {
    const int at = bit_lo + i;
    if ((bytes[at / 8] >> (7 - at % 8)) & 1u) v.set(i, true);
  }
  return v;
}

std::optional<BitVec> BitVec::parse_binary(const std::string& text) {
  std::size_t start = 0;
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'b' || text[1] == 'B')) start = 2;
  if (start >= text.size()) return std::nullopt;
  BitVec v;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (text[i] == '_') continue;  // allow 0b1010_1010 style grouping
    if (text[i] != '0' && text[i] != '1') return std::nullopt;
    v.push_back(text[i] == '1');
  }
  if (v.empty()) return std::nullopt;
  return v;
}

bool BitVec::get(int i) const {
  assert(i >= 0 && i < size_);
  return (words_[word_index(i)] >> bit_offset(i)) & 1u;
}

void BitVec::set(int i, bool value) {
  assert(i >= 0 && i < size_);
  std::uint64_t m = std::uint64_t{1} << bit_offset(i);
  if (value)
    words_[word_index(i)] |= m;
  else
    words_[word_index(i)] &= ~m;
}

void BitVec::ensure_capacity(int bits) {
  std::size_t words_needed = (bits + kWordBits - 1) / kWordBits;
  if (words_.size() < words_needed) words_.resize(words_needed, 0);
}

void BitVec::push_back(bool bit) {
  ensure_capacity(size_ + 1);
  ++size_;
  set(size_ - 1, bit);
}

void BitVec::append(const BitVec& other) {
  for (int i = 0; i < other.size(); ++i) push_back(other.get(i));
}

void BitVec::append_u64(std::uint64_t value, int width) {
  append(from_u64(value, width));
}

BitVec BitVec::slice(int lo, int len) const {
  if (lo < 0 || len < 0 || lo + len > size_) throw std::out_of_range("BitVec::slice");
  BitVec out(len);
  for (int i = 0; i < len; ++i) out.set(i, get(lo + i));
  return out;
}

std::uint64_t BitVec::to_u64() const {
  if (size_ > 64) throw std::invalid_argument("BitVec::to_u64: wider than 64 bits");
  std::uint64_t out = 0;
  for (int i = 0; i < size_; ++i) out = (out << 1) | std::uint64_t(get(i));
  return out;
}

std::string BitVec::to_string() const {
  std::string s = "0b";
  s.reserve(static_cast<std::size_t>(size_) + 2);
  for (int i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

BitVec BitVec::random(int width, const std::function<std::uint64_t()>& next_word) {
  BitVec v(width);
  for (int base = 0; base < width; base += 64) {
    std::uint64_t w = next_word();
    int n = std::min(64, width - base);
    for (int j = 0; j < n; ++j) v.set(base + j, (w >> j) & 1u);
  }
  return v;
}

bool operator==(const BitVec& a, const BitVec& b) {
  if (a.size_ != b.size_) return false;
  for (int i = 0; i < a.size_; ++i)
    if (a.get(i) != b.get(i)) return false;
  return true;
}

std::size_t BitVec::hash() const {
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(size_));
  for (int i = 0; i < size_; ++i) mix(get(i) ? 0x9e3779b97f4a7c15ull + i : i);
  return h;
}

}  // namespace parserhawk
