// Result<T>: value-or-error return type used across the library.
//
// The Core Guidelines prefer error codes/expected-style types over
// exceptions for anticipated, recoverable failures (E.3, I.10). Compilation
// failure is an ordinary outcome for a parser compiler — the paper's Table 3
// is full of red "rejected" cells — so every compiler entry point returns a
// Result rather than throwing.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace parserhawk {

/// Error payload: a short machine-checkable code plus human-readable detail.
struct Error {
  std::string code;     ///< e.g. "wide-tran-key", "parser-loop-rej"
  std::string message;  ///< free-form explanation

  std::string to_string() const { return code + ": " + message; }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  static Result err(std::string code, std::string message) {
    return Result(Error{std::move(code), std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Value access; throws std::logic_error when called on an error Result
  /// (programming bug, not a recoverable condition).
  T& value() {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  const T& value() const {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().to_string());
    return std::get<T>(data_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on ok result");
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace parserhawk
