// Cooperative cancellation for the Opt7 portfolio race (§6.7).
//
// A CancelSource owns a flag; CancelTokens are cheap shared views of it.
// Workers poll `cancelled()` at loop boundaries (CEGIS rounds, budget
// steps) and unwind voluntarily — nothing is ever interrupted mid-query,
// so a cancelled attempt can only be *absent* from the result set, never
// half-written. That, plus the lowest-variant-index winner rule in the
// compiler, is what keeps the parallel portfolio deterministic: a variant
// is only ever cancelled by a SAT variant with a *lower* index, i.e. one
// that already beat it.
#pragma once

#include <atomic>
#include <memory>

namespace parserhawk {

class CancelToken {
 public:
  /// Default token: never cancelled.
  CancelToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// A token that observes cancellation (as opposed to the never-cancelled
  /// default).
  bool cancellable() const { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag) : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Request cancellation. Idempotent; safe from any thread.
  void cancel() { flag_->store(true, std::memory_order_relaxed); }

  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace parserhawk
