// TextTable: aligned plain-text tables for the benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables/figures; this
// printer renders them with the same row/column layout the paper reports.
#pragma once

#include <string>
#include <vector>

namespace parserhawk {

class TextTable {
 public:
  /// Column headers; fixes the column count for all later rows.
  explicit TextTable(std::vector<std::string> headers);

  /// Add one row. Rows shorter than the header are right-padded with "";
  /// longer rows are a programming error and throw.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator line before the next row.
  void add_separator();

  /// Render with single-space-padded, pipe-separated columns.
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` places after the point.
std::string fmt_double(double value, int digits = 2);

/// Format seconds like the paper: "5.13", ">86400" when capped.
std::string fmt_seconds(double seconds, bool timed_out);

}  // namespace parserhawk
