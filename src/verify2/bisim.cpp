#include "verify2/bisim.h"

#include <z3++.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/interp.h"
#include "synth/z3_obs.h"
#include "verify2/symexec.h"

namespace parserhawk::verify2 {

int ReachSet::states_reachable() const {
  return static_cast<int>(std::count(spec_states.begin(), spec_states.end(), 1));
}

int ReachSet::rules_reachable() const {
  int n = 0;
  for (const auto& per_state : spec_rules)
    n += static_cast<int>(std::count(per_state.begin(), per_state.end(), 1));
  return n;
}

int ReachSet::rules_total() const {
  int n = 0;
  for (const auto& per_state : spec_rules) n += static_cast<int>(per_state.size());
  return n;
}

int ReachSet::rows_reachable() const {
  return static_cast<int>(std::count(impl_rows.begin(), impl_rows.end(), 1));
}

std::vector<int> ReachSet::unreachable_rows() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < impl_rows.size(); ++i)
    if (!impl_rows[i]) out.push_back(static_cast<int>(i));
  return out;
}

namespace {

using symexec::Config;
using symexec::input_slice;
using symexec::statically_false;

/// One product configuration: the shared path constraint plus each side's
/// location. A side that has reached its outcome (sentinel state, bound, or
/// a terminal step) is `done` and frozen at its final configuration.
struct Prod {
  z3::expr guard;
  Config spec;
  Config impl;
  bool spec_done = false;
  bool impl_done = false;
  ParseOutcome spec_out = ParseOutcome::Rejected;
  ParseOutcome impl_out = ParseOutcome::Rejected;
};

/// The subsumption key: everything about a product configuration except its
/// guard. Two configurations at the same key behave identically on any
/// input satisfying either guard (both machines are deterministic in the
/// input), so their guards merge by disjunction.
struct LocKey {
  int s_state, s_pos, s_iter;
  int i_table, i_state, i_pos, i_iter;
  bool s_done, i_done;
  int s_out, i_out;
  symexec::FieldDict s_dict, i_dict;

  bool operator<(const LocKey& o) const {
    return std::tie(s_state, s_pos, s_iter, i_table, i_state, i_pos, i_iter, s_done, i_done,
                    s_out, i_out, s_dict, i_dict) <
           std::tie(o.s_state, o.s_pos, o.s_iter, o.i_table, o.i_state, o.i_pos, o.i_iter,
                    o.s_done, o.i_done, o.s_out, o.i_out, o.s_dict, o.i_dict);
  }
};

LocKey key_of(const Prod& p) {
  return LocKey{p.spec.state,
                p.spec.pos,
                p.spec.iter,
                p.impl.table,
                p.impl.state,
                p.impl.pos,
                p.impl.iter,
                p.spec_done,
                p.impl_done,
                static_cast<int>(p.spec_out),
                static_cast<int>(p.impl_out),
                p.spec.dict,
                p.impl.dict};
}

const char* verdict_name(VerifyOutcome::Kind k) {
  switch (k) {
    case VerifyOutcome::Kind::Equivalent: return "equivalent";
    case VerifyOutcome::Kind::Counterexample: return "counterexample";
    default: return "inconclusive";
  }
}

}  // namespace

BisimResult check_bisimulation(const ParserSpec& spec, const TcamProgram& impl,
                               const BisimOptions& options) {
  obs::Span span("check_bisimulation");
  span.arg("spec", spec.name);
  for (const auto& f : spec.fields)
    if (f.varbit)
      throw std::invalid_argument("check_bisimulation: varbit fields present; run varbit_to_fixed");
  for (const auto& f : impl.fields)
    if (f.varbit) throw std::invalid_argument("check_bisimulation: impl has varbit fields");

  BisimResult result;
  ReachSet& reach = result.reach;
  BisimStats& stats = result.stats;
  reach.spec_states.assign(spec.states.size(), 0);
  reach.spec_rules.resize(spec.states.size());
  for (std::size_t s = 0; s < spec.states.size(); ++s)
    reach.spec_rules[s].assign(spec.states[s].rules.size(), 0);
  reach.impl_rows.assign(impl.entries.size(), 0);
  reach.exact = options.exact_reach;

  int n_bits = options.input_bits;
  if (n_bits == 0) n_bits = analyze(spec, options.max_iterations_spec).max_input_bits;
  n_bits = std::max(n_bits, 1);

  z3::context ctx;
  z3::expr input = ctx.bv_const("I", static_cast<unsigned>(n_bits));
  z3::solver witness(ctx);

  // Witness-check a guard that first touches a reach item: sat ⇒ the item
  // is semantically reachable, unsat ⇒ the whole successor is dead and can
  // be pruned, unknown ⇒ mark anyway but the report is no longer exact.
  // Returns whether the successor should be explored.
  auto witness_ok = [&](const z3::expr& guard) {
    if (!options.exact_reach) return true;
    ++stats.witness_queries;
    witness.push();
    witness.add(guard);
    z3::check_result r = timed_check(witness, nullptr, "bisim");
    witness.pop();
    if (r == z3::unsat) return false;
    if (r != z3::sat) reach.exact = false;
    return true;
  };

  // Mark everything a successor's transition touches; the first fresh mark
  // triggers one witness query covering all items under the same guard.
  // Returns false when the witness proves the successor unreachable.
  auto mark = [&](const z3::expr& guard, int spec_state, int rule_state, int rule, int row) {
    bool fresh = false;
    auto touch = [&](std::vector<char>& v, int i) {
      if (i >= 0 && i < static_cast<int>(v.size()) && !v[static_cast<std::size_t>(i)])
        fresh = true;
    };
    touch(reach.spec_states, spec_state);
    if (rule_state >= 0 && rule_state < static_cast<int>(reach.spec_rules.size()))
      touch(reach.spec_rules[static_cast<std::size_t>(rule_state)], rule);
    touch(reach.impl_rows, row);
    if (!fresh) return true;
    if (!witness_ok(guard)) return false;
    auto set = [&](std::vector<char>& v, int i) {
      if (i >= 0 && i < static_cast<int>(v.size())) v[static_cast<std::size_t>(i)] = 1;
    };
    set(reach.spec_states, spec_state);
    if (rule_state >= 0 && rule_state < static_cast<int>(reach.spec_rules.size()))
      set(reach.spec_rules[static_cast<std::size_t>(rule_state)], rule);
    set(reach.impl_rows, row);
    return true;
  };

  std::vector<std::pair<LocKey, Prod>> work;
  std::map<LocKey, std::size_t> pending;
  auto push = [&](Prod&& p) {
    LocKey k = key_of(p);
    auto it = pending.find(k);
    if (it != pending.end()) {
      Prod& there = work[it->second].second;
      there.guard = there.guard || p.guard;
      ++stats.merges;
      return;
    }
    pending.emplace(k, work.size());
    work.emplace_back(std::move(k), std::move(p));
    stats.worklist_hwm = std::max(stats.worklist_hwm, static_cast<std::int64_t>(work.size()));
  };

  {
    Prod init{ctx.bool_val(true),
              Config{ctx.bool_val(true), 0, 0, {}, 0, spec.start},
              Config{ctx.bool_val(true), 0, 0, {}, impl.start_table, impl.start_state}};
    if (spec.start >= 0 && spec.start < static_cast<int>(reach.spec_states.size()))
      reach.spec_states[static_cast<std::size_t>(spec.start)] = 1;
    push(std::move(init));
  }

  z3::expr_vector mismatches(ctx);
  std::vector<symexec::Successor> succ;
  VerifyOutcome& out = result.outcome;
  bool aborted = false;

  while (!work.empty()) {
    if (options.cancel.cancelled()) {
      out.kind = VerifyOutcome::Kind::Inconclusive;
      out.detail = "cancelled";
      aborted = true;
      break;
    }
    if (++stats.configs > options.max_configs) {
      out.kind = VerifyOutcome::Kind::Inconclusive;
      out.detail = "product configuration bound exceeded";
      aborted = true;
      break;
    }
    Prod c = std::move(work.back().second);
    pending.erase(work.back().first);
    work.pop_back();
    if (statically_false(c.guard)) continue;

    // Resolve sentinel states and iteration bounds into done flags.
    if (!c.spec_done) {
      if (c.spec.state == kAccept || c.spec.state == kReject) {
        c.spec_done = true;
        c.spec_out = c.spec.state == kAccept ? ParseOutcome::Accepted : ParseOutcome::Rejected;
      } else if (c.spec.iter >= options.max_iterations_spec) {
        c.spec_done = true;
        c.spec_out = ParseOutcome::Exhausted;
      }
    }
    if (!c.impl_done) {
      if (c.impl.state == kAccept || c.impl.state == kReject) {
        c.impl_done = true;
        c.impl_out = c.impl.state == kAccept ? ParseOutcome::Accepted : ParseOutcome::Rejected;
      } else if (c.impl.iter >= options.max_iterations_impl) {
        c.impl_done = true;
        c.impl_out = ParseOutcome::Exhausted;
      }
    }
    // Exhaustion is a simulation artifact and excluded from the contract
    // (exactly as the monolithic checker skips Exhausted terminals), so a
    // product path with an exhausted side can never witness a mismatch.
    if ((c.spec_done && c.spec_out == ParseOutcome::Exhausted) ||
        (c.impl_done && c.impl_out == ParseOutcome::Exhausted))
      continue;

    if (c.spec_done && c.impl_done) {
      ++stats.terminal_pairs;
      if (c.spec_out != c.impl_out) {
        mismatches.push_back(c.guard);
        continue;
      }
      if (c.spec_out != ParseOutcome::Accepted) continue;  // rejected: dict unobservable
      z3::expr_vector diffs(ctx);
      bool static_diff = false;
      for (const auto& [field, range] : c.spec.dict) {
        auto it = c.impl.dict.find(field);
        if (it == c.impl.dict.end()) {
          static_diff = true;
          break;
        }
        if (it->second == range) continue;  // same bits by construction
        diffs.push_back(input_slice(input, n_bits, range.first, range.second) !=
                        input_slice(input, n_bits, it->second.first, it->second.second));
      }
      if (!static_diff)
        for (const auto& [field, range] : c.impl.dict)
          if (!c.spec.dict.count(field)) {
            static_diff = true;
            break;
          }
      if (static_diff)
        mismatches.push_back(c.guard);
      else if (!diffs.empty())
        mismatches.push_back(c.guard && z3::mk_or(diffs));
      continue;
    }

    // Step the unfinished side (spec first), carrying the shared guard
    // through the side's step so each successor's guard is the new product
    // guard.
    succ.clear();
    if (!c.spec_done) {
      Config side = c.spec;
      side.guard = c.guard;
      symexec::spec_successors(ctx, input, n_bits, spec, side, succ);
      for (auto& s : succ) {
        int to_state = !s.is_terminal && s.cfg.state >= 0 ? s.cfg.state : -1;
        if (!mark(s.cfg.guard, to_state, c.spec.state, s.rule, -1)) continue;
        Prod next = c;
        next.guard = s.cfg.guard;
        next.spec = std::move(s.cfg);
        if (s.is_terminal) {
          next.spec_done = true;
          next.spec_out = s.outcome;
        }
        push(std::move(next));
      }
    } else {
      Config side = c.impl;
      side.guard = c.guard;
      symexec::impl_successors(ctx, input, n_bits, impl, side, succ);
      for (auto& s : succ) {
        if (!mark(s.cfg.guard, -1, -1, -1, s.row)) continue;
        Prod next = c;
        next.guard = s.cfg.guard;
        next.impl = std::move(s.cfg);
        if (s.is_terminal) {
          next.impl_done = true;
          next.impl_out = s.outcome;
        }
        push(std::move(next));
      }
    }
  }

  if (!aborted) {
    if (mismatches.empty()) {
      out.kind = VerifyOutcome::Kind::Equivalent;
    } else {
      z3::solver solver(ctx);
      solver.add(z3::mk_or(mismatches));
      z3::check_result r = timed_check(solver, nullptr, "bisim");
      if (r == z3::unsat) {
        out.kind = VerifyOutcome::Kind::Equivalent;
      } else if (r != z3::sat) {
        out.kind = VerifyOutcome::Kind::Inconclusive;
        out.detail = "solver returned unknown";
      } else {
        z3::model model = solver.get_model();
        BitVec cex(n_bits);
        for (int i = 0; i < n_bits; ++i) {
          z3::expr bit = model.eval(input_slice(input, n_bits, i, 1), true);
          cex.set(i, bit.get_numeral_uint64() != 0);
        }
        obs::flight::note("bisim_counterexample", spec.name.c_str());
        out.kind = VerifyOutcome::Kind::Counterexample;
        out.counterexample = std::move(cex);
      }
    }
  }

  if (obs::metrics_on()) {
    obs::count("verify.bisim.runs");
    obs::count("verify.bisim.configs", stats.configs);
    obs::count("verify.bisim.merges", stats.merges);
    obs::count(std::string("verify.bisim.verdict.") + verdict_name(out.kind));
  }
  span.arg("verdict", std::string(verdict_name(out.kind)));
  return result;
}

}  // namespace parserhawk::verify2
