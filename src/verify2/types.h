// Shared vocabulary of the equivalence checkers (DESIGN.md §13).
//
// Two independent checkers speak it: the monolithic terminal-pair Z3 query
// (synth/verify.h) and the product-automaton bisimulation sweep
// (verify2/bisim.h). Both implement the same §4 contract — same outcome
// everywhere, same dictionary on accepted inputs, iteration-bound
// exhaustion excluded — so a VerifyOutcome is checker-independent and the
// compiler can race them.
#pragma once

#include <string>

#include "support/bitvec.h"

namespace parserhawk {

struct VerifyOptions {
  /// Symbolic input width; 0 = derive from the spec's max consumption.
  int input_bits = 0;
  /// Iteration bound for the specification side.
  int max_iterations_spec = 8;
  /// Iteration bound for the implementation side (chains take several
  /// implementation iterations per specification state).
  int max_iterations_impl = 48;
  /// Abort (treat as inconclusive) beyond this many path configurations.
  int max_configs = 20000;
};

struct VerifyOutcome {
  enum class Kind {
    Equivalent,
    Counterexample,
    Inconclusive,  ///< config explosion or solver timeout
  };
  Kind kind = Kind::Inconclusive;
  BitVec counterexample;  ///< valid when kind == Counterexample
  std::string detail;
};

/// Which equivalence checker the compiler's verify phase runs
/// (SynthOptions::verifier, hawk_compile --verifier, PH_VERIFIER).
enum class VerifierKind {
  Z3,     ///< the monolithic terminal-pair Z3 query (synth/verify.h)
  Bisim,  ///< the product-automaton bisimulation sweep (verify2/bisim.h)
  Race,   ///< both, raced; first conclusive verdict wins, z3 payload on tie
};

inline const char* to_string(VerifierKind k) {
  switch (k) {
    case VerifierKind::Z3: return "z3";
    case VerifierKind::Bisim: return "bisim";
    default: return "race";
  }
}

/// Parse "z3" / "bisim" / "race". Returns false (leaving `out` untouched)
/// on anything else.
inline bool parse_verifier(const std::string& s, VerifierKind& out) {
  if (s == "z3") {
    out = VerifierKind::Z3;
  } else if (s == "bisim") {
    out = VerifierKind::Bisim;
  } else if (s == "race") {
    out = VerifierKind::Race;
  } else {
    return false;
  }
  return true;
}

}  // namespace parserhawk
