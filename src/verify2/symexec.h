// Shared symbolic-execution machinery of the equivalence checkers.
//
// Both sides of the §4 equivalence question are executed over one shared
// symbolic input bitvector I. Because field widths are fixed during
// synthesis (Opt6), every path has *concrete* extraction positions: a
// configuration is (path guard over I, wire position, iteration count,
// field -> concrete bit range, machine location), and stepping a
// configuration enumerates guarded successors — either follow-on
// configurations or terminal outcomes.
//
// Two explorers are built on these steps: the monolithic checker
// (synth/verify.cpp) runs each machine to its terminal set independently
// and compares all terminal pairs in one Z3 query, while the bisimulation
// checker (verify2/bisim.cpp) sweeps the product automaton, conjoining both
// machines' branch constraints onto one shared guard. The step semantics
// here are the single source of truth for both:
//
//   spec side  — extract, then match, then transition; out-of-input
//                extraction/lookahead rejects; no matching rule rejects.
//   impl side  — match first (missing match registers read as zero, per
//                sim::eval_key), then only the winning row extracts and
//                transitions; out-of-input mid-extraction rejects.
#pragma once

#include <z3++.h>

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ir/ir.h"
#include "tcam/tcam.h"

namespace parserhawk::symexec {

/// field -> (wire position, length): concrete bit ranges of every field
/// extracted on the path so far.
using FieldDict = std::map<int, std::pair<int, int>>;

struct Config {
  z3::expr guard;
  int pos;
  int iter;
  FieldDict dict;
  // Machine location: spec uses state only; impl uses (table, state).
  int table;
  int state;
};

/// One outcome of stepping a configuration: a follow-on configuration
/// (`cfg.state` may be kAccept/kReject — the explorer resolves sentinels),
/// or a terminal Rejected path (out of input, or no rule matched).
/// `rule`/`row` name the spec rule index / impl entries[] index whose match
/// constraint the successor's guard conjoins, -1 for implicit fallthroughs.
struct Successor {
  Config cfg;
  bool is_terminal;
  ParseOutcome outcome;  ///< valid when is_terminal
  int rule = -1;
  int row = -1;
};

/// Wire-order slice [pos, pos+len) of the symbolic input (BV bit 0 = last
/// wire bit).
inline z3::expr input_slice(const z3::expr& input, int total_bits, int pos, int len) {
  unsigned hi = static_cast<unsigned>(total_bits - 1 - pos);
  unsigned lo = static_cast<unsigned>(total_bits - pos - len);
  return input.extract(hi, lo);
}

inline bool statically_false(const z3::expr& e) { return e.simplify().is_false(); }

/// Build the key expression for `parts`, or nullopt when evaluation rejects
/// (spec-side missing field, or out-of-input lookahead on either side).
/// `missing_is_zero` mirrors sim::eval_key: implementation-side TCAM match
/// registers read as zero when the field was never extracted.
inline std::optional<z3::expr> key_expr(z3::context& ctx, const z3::expr& input, int total_bits,
                                        const std::vector<KeyPart>& parts, const Config& c,
                                        bool missing_is_zero) {
  std::optional<z3::expr> key;
  auto append = [&key](const z3::expr& piece) { key = key ? z3::concat(*key, piece) : piece; };
  for (const auto& p : parts) {
    int pos, len = p.len;
    if (p.kind == KeyPart::Kind::FieldSlice) {
      auto it = c.dict.find(p.field);
      if (it == c.dict.end() || p.lo + p.len > it->second.second) {
        if (!missing_is_zero) return std::nullopt;
        append(ctx.bv_val(0, static_cast<unsigned>(len)));
        continue;
      }
      pos = it->second.first + p.lo;
    } else {
      pos = c.pos + p.lo;
    }
    if (pos + len > total_bits) return std::nullopt;
    append(input_slice(input, total_bits, pos, len));
  }
  if (!key) key = ctx.bv_val(0, 1);  // unused
  return key;
}

/// Enumerate the successors of a non-terminal specification configuration
/// (extract, then match, then transition). Statically-false successors are
/// pruned; the terminal fallthrough (no matching rule) carries the
/// accumulated nomatch guard.
inline void spec_successors(z3::context& ctx, const z3::expr& input, int total_bits,
                            const ParserSpec& spec, const Config& c,
                            std::vector<Successor>& out) {
  const State& st = spec.state(c.state);
  Config after = c;
  for (const auto& ex : st.extracts) {
    int w = spec.fields[static_cast<std::size_t>(ex.field)].width;
    if (after.pos + w > total_bits) {
      out.push_back(Successor{std::move(after), true, ParseOutcome::Rejected, -1, -1});
      return;
    }
    after.dict[ex.field] = {after.pos, w};
    after.pos += w;
  }
  if (st.rules.empty()) {
    out.push_back(Successor{std::move(after), true, ParseOutcome::Rejected, -1, -1});
    return;
  }
  auto key = key_expr(ctx, input, total_bits, st.key, after, /*missing_is_zero=*/false);
  if (!key) {
    out.push_back(Successor{std::move(after), true, ParseOutcome::Rejected, -1, -1});
    return;
  }
  int kw = st.key_width();
  z3::expr nomatch = after.guard;
  for (std::size_t ri = 0; ri < st.rules.size(); ++ri) {
    const Rule& r = st.rules[ri];
    z3::expr match = kw == 0 ? ctx.bool_val(true)
                             : ((*key ^ ctx.bv_val(r.value, static_cast<unsigned>(kw))) &
                                ctx.bv_val(r.mask, static_cast<unsigned>(kw))) ==
                                   ctx.bv_val(0, static_cast<unsigned>(kw));
    Config next = after;
    next.guard = nomatch && match;
    next.state = r.next;
    next.iter = c.iter + 1;
    if (!statically_false(next.guard))
      out.push_back(Successor{std::move(next), false, ParseOutcome::Rejected,
                              static_cast<int>(ri), -1});
    nomatch = nomatch && !match;
    if (statically_false(nomatch)) return;
  }
  Config fall = after;
  fall.guard = nomatch;
  out.push_back(Successor{std::move(fall), true, ParseOutcome::Rejected, -1, -1});
}

/// Enumerate the successors of a non-terminal implementation configuration
/// (match first, then the winning row extracts and transitions). A row
/// whose extraction runs out of input is a terminal Rejected successor that
/// still names the row (it matched and fired).
inline void impl_successors(z3::context& ctx, const z3::expr& input, int total_bits,
                            const TcamProgram& impl, const Config& c,
                            std::vector<Successor>& out) {
  const StateLayout* layout = impl.layout_of(c.table, c.state);
  std::vector<KeyPart> parts = layout ? layout->key : std::vector<KeyPart>{};
  auto key = key_expr(ctx, input, total_bits, parts, c, /*missing_is_zero=*/true);
  if (!key) {
    out.push_back(Successor{c, true, ParseOutcome::Rejected, -1, -1});
    return;
  }
  int kw = 0;
  for (const auto& p : parts) kw += p.len;

  auto rows = impl.rows_of(c.table, c.state);
  z3::expr nomatch = c.guard;
  for (const TcamEntry* row : rows) {
    int row_index = static_cast<int>(row - impl.entries.data());
    z3::expr match = kw == 0 ? ctx.bool_val(true)
                             : ((*key ^ ctx.bv_val(row->value, static_cast<unsigned>(kw))) &
                                ctx.bv_val(row->mask, static_cast<unsigned>(kw))) ==
                                   ctx.bv_val(0, static_cast<unsigned>(kw));
    Config next = c;
    next.guard = nomatch && match;
    nomatch = nomatch && !match;
    if (!statically_false(next.guard)) {
      bool ran_out = false;
      for (const auto& ex : row->extracts) {
        int w = impl.fields[static_cast<std::size_t>(ex.field)].width;
        if (next.pos + w > total_bits) {
          out.push_back(Successor{next, true, ParseOutcome::Rejected, -1, row_index});
          ran_out = true;
          break;
        }
        next.dict[ex.field] = {next.pos, w};
        next.pos += w;
      }
      if (!ran_out) {
        next.table = row->next_table;
        next.state = row->next_state;
        next.iter = c.iter + 1;
        out.push_back(Successor{std::move(next), false, ParseOutcome::Rejected, -1, row_index});
      }
    }
    if (statically_false(nomatch)) return;
  }
  Config fall = c;
  fall.guard = nomatch;
  out.push_back(Successor{std::move(fall), true, ParseOutcome::Rejected, -1, -1});
}

}  // namespace parserhawk::symexec
