// Product-automaton bisimulation checker (DESIGN.md §13).
//
// An independent implementation of the §4 equivalence contract: instead of
// running spec and impl to their terminal sets separately and comparing all
// terminal pairs in one monolithic Z3 query (synth/verify.h), this checker
// sweeps the *product* of the two machines with an explicit worklist of
// (spec configuration, impl configuration, shared path constraint) triples.
// Each side's branch constraints are conjoined onto the shared guard as the
// product steps, so unsatisfiable spec×impl path combinations are pruned
// structurally and never reach the solver; product configurations that meet
// again at the same (locations, positions, dictionaries) are merged by
// OR-ing their guards (constraint subsumption — sound because both machines
// are deterministic in the input, so behavior from a product location is a
// function of the location alone).
//
// Because the sweep enumerates exactly the satisfiable-in-structure product
// paths, it yields for free what sampling cannot: an *exact* reachable-set
// report — which spec states, spec transition rules and TCAM rows are
// reachable under the iteration bounds, with per-first-touch SAT witness
// checks in exact mode so "reachable" means semantically reachable, not
// merely graph-connected (a shadowed TCAM row's nomatch∧match guard is
// unsatisfiable and the row is reported unreachable).
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/cancel.h"
#include "tcam/tcam.h"
#include "verify2/types.h"

namespace parserhawk::verify2 {

struct BisimOptions {
  /// Symbolic input width; 0 = derive from the spec's max consumption.
  int input_bits = 0;
  /// Iteration bound for the specification side of the product.
  int max_iterations_spec = 8;
  /// Iteration bound for the implementation side (chains take several
  /// implementation iterations per specification state).
  int max_iterations_impl = 48;
  /// Abort (Inconclusive) beyond this many popped product configurations.
  int max_configs = 20000;
  /// Witness-check each first-touched state/rule/row with a SAT query so
  /// the reachable set is semantically exact. When off (or when a witness
  /// query returns unknown) items are marked on structural reachability and
  /// ReachSet::exact is false.
  bool exact_reach = true;
  /// Cooperative cancellation (the race); a cancelled sweep is Inconclusive.
  CancelToken cancel;
};

/// What the sweep proved reachable, by index: spec states and per-state
/// transition rules (spec.state(s).rules order), and TCAM rows (index into
/// TcamProgram::entries).
struct ReachSet {
  std::vector<char> spec_states;
  std::vector<std::vector<char>> spec_rules;
  std::vector<char> impl_rows;
  /// True when every mark was confirmed by a SAT witness (exact_reach mode
  /// with no unknown witness queries): unmarked items are then *provably*
  /// unreachable under the bounds.
  bool exact = false;

  int states_reachable() const;
  int states_total() const { return static_cast<int>(spec_states.size()); }
  int rules_reachable() const;
  int rules_total() const;
  int rows_reachable() const;
  int rows_total() const { return static_cast<int>(impl_rows.size()); }
  /// Indices into TcamProgram::entries never reached by the sweep.
  std::vector<int> unreachable_rows() const;
};

struct BisimStats {
  std::int64_t configs = 0;          ///< product configurations popped
  std::int64_t merges = 0;           ///< guard merges at an existing location
  std::int64_t terminal_pairs = 0;   ///< both-done pairs compared
  std::int64_t witness_queries = 0;  ///< first-touch reachability SAT checks
  std::int64_t worklist_hwm = 0;     ///< worklist high-water mark
};

struct BisimResult {
  VerifyOutcome outcome;
  ReachSet reach;
  BisimStats stats;
};

/// Sweep the spec × impl product automaton. Same contract and same throw
/// behavior (varbit ⇒ std::invalid_argument) as verify_equivalence; the
/// differential suite in tests/test_verify_bisim.cpp holds the two checkers
/// to identical verdicts. Publishes verify.bisim.* metrics when obs is on.
BisimResult check_bisimulation(const ParserSpec& spec, const TcamProgram& impl,
                               const BisimOptions& options = {});

}  // namespace parserhawk::verify2
