// ParserHawk's public compilation entry point (§5, Figure 8).
//
// Pipeline: front-end analysis & normalization -> synthesis (per-state
// chain CEGIS when Opt3 preallocation is on; the naive global encoding
// otherwise) -> post-synthesis optimization -> stage assignment for
// pipelined devices -> bounded formal verification + differential test ->
// restoration of varbit/width transforms.
//
// Failures are ordinary values with the same failure vocabulary as the
// paper's Table 3 red cells ("wide-tran-key", "parser-loop-rej",
// "too-many-stages", ...).
#pragma once

#include <string>

#include "hw/profile.h"
#include "ir/ir.h"
#include "sim/interp.h"
#include "synth/options.h"
#include "tcam/tcam.h"
#include "verify2/bisim.h"

namespace parserhawk {

enum class CompileStatus {
  Success,
  Rejected,          ///< invalid input specification
  ResourceExceeded,  ///< no implementation fits the device limits
  Timeout,           ///< wall-clock budget exhausted
  NoSolution,        ///< search space exhausted without a solution
  InternalError,     ///< a synthesized program failed its own verification
};

std::string to_string(CompileStatus status);

struct SynthStats {
  double seconds = 0;
  /// The paper's "Search Space (bits)" column: log2 of the candidate space
  /// of the successful synthesis configuration.
  double search_space_bits = 0;
  int cegis_rounds = 0;
  int synth_queries = 0;
  int verify_queries = 0;
  /// Entry-budget values attempted by the minimization search.
  int budget_attempts = 0;
  /// Wall clock of the final verify phase alone (all racers included).
  double verify_seconds = 0;
  /// Whether the bounded formal equivalence check conclusively passed.
  bool formally_verified = false;
};

struct CompileResult {
  CompileStatus status = CompileStatus::NoSolution;
  std::string reason;  ///< failure code/detail; empty on success
  TcamProgram program;
  ResourceUsage usage;
  SynthStats stats;
  /// Semantics the output was verified against: the input spec, after loop
  /// unrolling when the target cannot loop.
  ParserSpec reference;
  /// Which checker's verdict the verify phase returned: "z3", "bisim",
  /// "race:z3" / "race:bisim" (the race, naming the payload's source), or
  /// empty when the compile failed before the verify phase.
  std::string verifier;
  /// Exact reachable-set report from the bisimulation sweep; populated
  /// (reach_valid = true) whenever the bisim checker ran (verifier bisim or
  /// race). Indices refer to `reference` and `program`.
  verify2::ReachSet reach;
  bool reach_valid = false;

  bool ok() const { return status == CompileStatus::Success; }
};

/// Compile `spec` for the device `hw`.
CompileResult compile(const ParserSpec& spec, const HwProfile& hw, const SynthOptions& opts = {});

}  // namespace parserhawk
