#include "synth/verify.h"

#include <z3++.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "analysis/analysis.h"
#include "obs/trace.h"
#include "sim/interp.h"
#include "synth/z3_obs.h"

namespace parserhawk {

namespace {

/// A fully-explored execution path: guard over the symbolic input, final
/// outcome, and concrete bit ranges for every extracted field.
struct Terminal {
  z3::expr guard;
  ParseOutcome outcome;
  std::map<int, std::pair<int, int>> dict;  // field -> (wire pos, len)
};

struct Config {
  z3::expr guard;
  int pos;
  int iter;
  std::map<int, std::pair<int, int>> dict;
  // Machine location: spec uses state only; impl uses (table, state).
  int table;
  int state;
};

/// Wire-order slice [pos, pos+len) of the symbolic input (BV bit 0 = last
/// wire bit).
z3::expr input_slice(const z3::expr& input, int total_bits, int pos, int len) {
  unsigned hi = static_cast<unsigned>(total_bits - 1 - pos);
  unsigned lo = static_cast<unsigned>(total_bits - pos - len);
  return input.extract(hi, lo);
}

bool statically_false(const z3::expr& e) { return e.simplify().is_false(); }

/// Build the key expression for `parts`, or nullopt when evaluation rejects
/// (spec-side missing field, or out-of-input lookahead on either side).
/// `missing_is_zero` mirrors sim::eval_key: implementation-side TCAM match
/// registers read as zero when the field was never extracted.
std::optional<z3::expr> key_expr(z3::context& ctx, const z3::expr& input, int total_bits,
                                 const std::vector<KeyPart>& parts, const Config& c,
                                 bool missing_is_zero) {
  std::optional<z3::expr> key;
  auto append = [&key](const z3::expr& piece) { key = key ? z3::concat(*key, piece) : piece; };
  for (const auto& p : parts) {
    int pos, len = p.len;
    if (p.kind == KeyPart::Kind::FieldSlice) {
      auto it = c.dict.find(p.field);
      if (it == c.dict.end() || p.lo + p.len > it->second.second) {
        if (!missing_is_zero) return std::nullopt;
        append(ctx.bv_val(0, static_cast<unsigned>(len)));
        continue;
      }
      pos = it->second.first + p.lo;
    } else {
      pos = c.pos + p.lo;
    }
    if (pos + len > total_bits) return std::nullopt;
    append(input_slice(input, total_bits, pos, len));
  }
  if (!key) key = ctx.bv_val(0, 1);  // unused
  return key;
}

/// Explore all paths of the specification.
/// `extract` applies one op; returns false when input is exhausted.
template <typename StepFn>
std::vector<Terminal> explore(z3::context& ctx, int total_bits, int max_iterations, int max_configs,
                              Config initial, const StepFn& step, bool& exploded) {
  std::vector<Terminal> terminals;
  std::vector<Config> work{std::move(initial)};
  int visited = 0;
  while (!work.empty()) {
    if (++visited > max_configs) {
      exploded = true;
      return terminals;
    }
    Config c = std::move(work.back());
    work.pop_back();
    if (statically_false(c.guard)) continue;
    if (c.state == kAccept || c.state == kReject) {
      terminals.push_back(Terminal{c.guard,
                                   c.state == kAccept ? ParseOutcome::Accepted : ParseOutcome::Rejected,
                                   c.dict});
      continue;
    }
    if (c.iter >= max_iterations) {
      terminals.push_back(Terminal{c.guard, ParseOutcome::Exhausted, c.dict});
      continue;
    }
    step(c, terminals, work);
  }
  (void)ctx;
  (void)total_bits;
  return terminals;
}

}  // namespace

VerifyOutcome verify_equivalence(const ParserSpec& spec, const TcamProgram& impl,
                                 const VerifyOptions& options) {
  obs::Span span("verify_equivalence");
  span.arg("spec", spec.name);
  for (const auto& f : spec.fields)
    if (f.varbit)
      throw std::invalid_argument("verify_equivalence: varbit fields present; run varbit_to_fixed");
  for (const auto& f : impl.fields)
    if (f.varbit) throw std::invalid_argument("verify_equivalence: impl has varbit fields");

  int n_bits = options.input_bits;
  if (n_bits == 0) n_bits = analyze(spec, options.max_iterations_spec).max_input_bits;
  n_bits = std::max(n_bits, 1);

  z3::context ctx;
  z3::expr input = ctx.bv_const("I", static_cast<unsigned>(n_bits));
  bool exploded = false;

  // ---- Specification side: extract, then match, then transition. ----
  auto spec_step = [&](const Config& c, std::vector<Terminal>& terminals,
                       std::vector<Config>& work) {
    const State& st = spec.state(c.state);
    Config after = c;
    for (const auto& ex : st.extracts) {
      int w = spec.fields[static_cast<std::size_t>(ex.field)].width;
      if (after.pos + w > n_bits) {
        terminals.push_back(Terminal{after.guard, ParseOutcome::Rejected, after.dict});
        return;
      }
      after.dict[ex.field] = {after.pos, w};
      after.pos += w;
    }
    if (st.rules.empty()) {
      terminals.push_back(Terminal{after.guard, ParseOutcome::Rejected, after.dict});
      return;
    }
    auto key = key_expr(ctx, input, n_bits, st.key, after, /*missing_is_zero=*/false);
    if (!key) {
      terminals.push_back(Terminal{after.guard, ParseOutcome::Rejected, after.dict});
      return;
    }
    int kw = st.key_width();
    z3::expr nomatch = after.guard;
    for (const auto& r : st.rules) {
      z3::expr match = kw == 0 ? ctx.bool_val(true)
                               : ((*key ^ ctx.bv_val(r.value, static_cast<unsigned>(kw))) &
                                  ctx.bv_val(r.mask, static_cast<unsigned>(kw))) ==
                                     ctx.bv_val(0, static_cast<unsigned>(kw));
      Config next = after;
      next.guard = nomatch && match;
      next.state = r.next;
      next.iter = c.iter + 1;
      if (!statically_false(next.guard)) work.push_back(std::move(next));
      nomatch = nomatch && !match;
      if (statically_false(nomatch)) return;
    }
    terminals.push_back(Terminal{nomatch, ParseOutcome::Rejected, after.dict});
  };

  // ---- Implementation side: match first, then the winner extracts. ----
  auto impl_step = [&](const Config& c, std::vector<Terminal>& terminals,
                       std::vector<Config>& work) {
    const StateLayout* layout = impl.layout_of(c.table, c.state);
    std::vector<KeyPart> parts = layout ? layout->key : std::vector<KeyPart>{};
    auto key = key_expr(ctx, input, n_bits, parts, c, /*missing_is_zero=*/true);
    if (!key) {
      terminals.push_back(Terminal{c.guard, ParseOutcome::Rejected, c.dict});
      return;
    }
    int kw = 0;
    for (const auto& p : parts) kw += p.len;

    auto rows = impl.rows_of(c.table, c.state);
    z3::expr nomatch = c.guard;
    for (const TcamEntry* row : rows) {
      z3::expr match = kw == 0 ? ctx.bool_val(true)
                               : ((*key ^ ctx.bv_val(row->value, static_cast<unsigned>(kw))) &
                                  ctx.bv_val(row->mask, static_cast<unsigned>(kw))) ==
                                     ctx.bv_val(0, static_cast<unsigned>(kw));
      Config next = c;
      next.guard = nomatch && match;
      nomatch = nomatch && !match;
      if (!statically_false(next.guard)) {
        bool ran_out = false;
        for (const auto& ex : row->extracts) {
          int w = impl.fields[static_cast<std::size_t>(ex.field)].width;
          if (next.pos + w > n_bits) {
            terminals.push_back(Terminal{next.guard, ParseOutcome::Rejected, next.dict});
            ran_out = true;
            break;
          }
          next.dict[ex.field] = {next.pos, w};
          next.pos += w;
        }
        if (!ran_out) {
          next.table = row->next_table;
          next.state = row->next_state;
          next.iter = c.iter + 1;
          work.push_back(std::move(next));
        }
      }
      if (statically_false(nomatch)) return;
    }
    terminals.push_back(Terminal{nomatch, ParseOutcome::Rejected, c.dict});
  };

  Config spec_init{ctx.bool_val(true), 0, 0, {}, 0, spec.start};
  Config impl_init{ctx.bool_val(true), 0, 0, {}, impl.start_table, impl.start_state};
  std::vector<Terminal> spec_terms = explore(ctx, n_bits, options.max_iterations_spec,
                                             options.max_configs, spec_init, spec_step, exploded);
  std::vector<Terminal> impl_terms = explore(ctx, n_bits, options.max_iterations_impl,
                                             options.max_configs, impl_init, impl_step, exploded);
  if (exploded) {
    VerifyOutcome out;
    out.kind = VerifyOutcome::Kind::Inconclusive;
    out.detail = "path configuration bound exceeded";
    return out;
  }

  // ---- Product comparison. ----
  z3::expr_vector mismatches(ctx);
  for (const auto& ts : spec_terms) {
    if (ts.outcome == ParseOutcome::Exhausted) continue;
    for (const auto& ti : impl_terms) {
      if (ti.outcome == ParseOutcome::Exhausted) continue;
      z3::expr both = ts.guard && ti.guard;
      if (statically_false(both)) continue;
      if (ts.outcome != ti.outcome) {
        mismatches.push_back(both);
        continue;
      }
      if (ts.outcome != ParseOutcome::Accepted) continue;  // rejected: dict unobservable
      z3::expr_vector diffs(ctx);
      bool static_diff = false;
      for (const auto& [field, range] : ts.dict) {
        auto it = ti.dict.find(field);
        if (it == ti.dict.end()) {
          static_diff = true;
          break;
        }
        if (it->second == range) continue;  // same bits by construction
        diffs.push_back(input_slice(input, n_bits, range.first, range.second) !=
                        input_slice(input, n_bits, it->second.first, it->second.second));
      }
      if (!static_diff)
        for (const auto& [field, range] : ti.dict)
          if (!ts.dict.count(field)) {
            static_diff = true;
            break;
          }
      if (static_diff) {
        mismatches.push_back(both);
      } else if (!diffs.empty()) {
        mismatches.push_back(both && z3::mk_or(diffs));
      }
    }
  }

  VerifyOutcome out;
  if (mismatches.empty()) {
    out.kind = VerifyOutcome::Kind::Equivalent;
    return out;
  }
  z3::solver solver(ctx);
  solver.add(z3::mk_or(mismatches));
  z3::check_result r = timed_check(solver, nullptr, "equiv");
  if (r == z3::unsat) {
    out.kind = VerifyOutcome::Kind::Equivalent;
    return out;
  }
  if (r != z3::sat) {
    out.kind = VerifyOutcome::Kind::Inconclusive;
    out.detail = "solver returned unknown";
    return out;
  }
  z3::model model = solver.get_model();
  BitVec cex(n_bits);
  for (int i = 0; i < n_bits; ++i) {
    z3::expr bit = model.eval(input_slice(input, n_bits, i, 1), true);
    cex.set(i, bit.get_numeral_uint64() != 0);
  }
  // A counterexample here means the synthesized program is wrong — drop a
  // breadcrumb so a post-mortem flight dump shows the failing spec even
  // when the caller's auto-dump fires later.
  obs::flight::note("verify_counterexample", spec.name.c_str());
  out.kind = VerifyOutcome::Kind::Counterexample;
  out.counterexample = std::move(cex);
  return out;
}

}  // namespace parserhawk
