#include "synth/verify.h"

#include <z3++.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "analysis/analysis.h"
#include "obs/trace.h"
#include "sim/interp.h"
#include "synth/z3_obs.h"
#include "verify2/symexec.h"

namespace parserhawk {

namespace {

using symexec::Config;
using symexec::input_slice;
using symexec::statically_false;

/// A fully-explored execution path: guard over the symbolic input, final
/// outcome, and concrete bit ranges for every extracted field.
struct Terminal {
  z3::expr guard;
  ParseOutcome outcome;
  symexec::FieldDict dict;  // field -> (wire pos, len)
};

/// Explore all paths of one machine to its terminal set. `step` enumerates
/// the successors of a non-terminal configuration (verify2/symexec.h).
template <typename StepFn>
std::vector<Terminal> explore(int max_iterations, int max_configs, Config initial,
                              const StepFn& step, bool& exploded) {
  std::vector<Terminal> terminals;
  std::vector<Config> work{std::move(initial)};
  std::vector<symexec::Successor> succ;
  int visited = 0;
  while (!work.empty()) {
    if (++visited > max_configs) {
      exploded = true;
      return terminals;
    }
    Config c = std::move(work.back());
    work.pop_back();
    if (statically_false(c.guard)) continue;
    if (c.state == kAccept || c.state == kReject) {
      terminals.push_back(Terminal{c.guard,
                                   c.state == kAccept ? ParseOutcome::Accepted : ParseOutcome::Rejected,
                                   c.dict});
      continue;
    }
    if (c.iter >= max_iterations) {
      terminals.push_back(Terminal{c.guard, ParseOutcome::Exhausted, c.dict});
      continue;
    }
    succ.clear();
    step(c, succ);
    for (auto& s : succ) {
      if (s.is_terminal)
        terminals.push_back(Terminal{s.cfg.guard, s.outcome, std::move(s.cfg.dict)});
      else
        work.push_back(std::move(s.cfg));
    }
  }
  return terminals;
}

}  // namespace

VerifyOutcome verify_equivalence(const ParserSpec& spec, const TcamProgram& impl,
                                 const VerifyOptions& options) {
  obs::Span span("verify_equivalence");
  span.arg("spec", spec.name);
  for (const auto& f : spec.fields)
    if (f.varbit)
      throw std::invalid_argument("verify_equivalence: varbit fields present; run varbit_to_fixed");
  for (const auto& f : impl.fields)
    if (f.varbit) throw std::invalid_argument("verify_equivalence: impl has varbit fields");

  int n_bits = options.input_bits;
  if (n_bits == 0) n_bits = analyze(spec, options.max_iterations_spec).max_input_bits;
  n_bits = std::max(n_bits, 1);

  z3::context ctx;
  z3::expr input = ctx.bv_const("I", static_cast<unsigned>(n_bits));
  bool exploded = false;

  auto spec_step = [&](const Config& c, std::vector<symexec::Successor>& out) {
    symexec::spec_successors(ctx, input, n_bits, spec, c, out);
  };
  auto impl_step = [&](const Config& c, std::vector<symexec::Successor>& out) {
    symexec::impl_successors(ctx, input, n_bits, impl, c, out);
  };

  Config spec_init{ctx.bool_val(true), 0, 0, {}, 0, spec.start};
  Config impl_init{ctx.bool_val(true), 0, 0, {}, impl.start_table, impl.start_state};
  std::vector<Terminal> spec_terms = explore(options.max_iterations_spec, options.max_configs,
                                             spec_init, spec_step, exploded);
  std::vector<Terminal> impl_terms = explore(options.max_iterations_impl, options.max_configs,
                                             impl_init, impl_step, exploded);
  if (exploded) {
    VerifyOutcome out;
    out.kind = VerifyOutcome::Kind::Inconclusive;
    out.detail = "path configuration bound exceeded";
    return out;
  }

  // ---- Product comparison. ----
  z3::expr_vector mismatches(ctx);
  for (const auto& ts : spec_terms) {
    if (ts.outcome == ParseOutcome::Exhausted) continue;
    for (const auto& ti : impl_terms) {
      if (ti.outcome == ParseOutcome::Exhausted) continue;
      z3::expr both = ts.guard && ti.guard;
      if (statically_false(both)) continue;
      if (ts.outcome != ti.outcome) {
        mismatches.push_back(both);
        continue;
      }
      if (ts.outcome != ParseOutcome::Accepted) continue;  // rejected: dict unobservable
      z3::expr_vector diffs(ctx);
      bool static_diff = false;
      for (const auto& [field, range] : ts.dict) {
        auto it = ti.dict.find(field);
        if (it == ti.dict.end()) {
          static_diff = true;
          break;
        }
        if (it->second == range) continue;  // same bits by construction
        diffs.push_back(input_slice(input, n_bits, range.first, range.second) !=
                        input_slice(input, n_bits, it->second.first, it->second.second));
      }
      if (!static_diff)
        for (const auto& [field, range] : ti.dict)
          if (!ts.dict.count(field)) {
            static_diff = true;
            break;
          }
      if (static_diff) {
        mismatches.push_back(both);
      } else if (!diffs.empty()) {
        mismatches.push_back(both && z3::mk_or(diffs));
      }
    }
  }

  VerifyOutcome out;
  if (mismatches.empty()) {
    out.kind = VerifyOutcome::Kind::Equivalent;
    return out;
  }
  z3::solver solver(ctx);
  solver.add(z3::mk_or(mismatches));
  z3::check_result r = timed_check(solver, nullptr, "equiv");
  if (r == z3::unsat) {
    out.kind = VerifyOutcome::Kind::Equivalent;
    return out;
  }
  if (r != z3::sat) {
    out.kind = VerifyOutcome::Kind::Inconclusive;
    out.detail = "solver returned unknown";
    return out;
  }
  z3::model model = solver.get_model();
  BitVec cex(n_bits);
  for (int i = 0; i < n_bits; ++i) {
    z3::expr bit = model.eval(input_slice(input, n_bits, i, 1), true);
    cex.set(i, bit.get_numeral_uint64() != 0);
  }
  // A counterexample here means the synthesized program is wrong — drop a
  // breadcrumb so a post-mortem flight dump shows the failing spec even
  // when the caller's auto-dump fires later.
  obs::flight::note("verify_counterexample", spec.name.c_str());
  out.kind = VerifyOutcome::Kind::Counterexample;
  out.counterexample = std::move(cex);
  return out;
}

}  // namespace parserhawk
