#include "synth/global_synth.h"

#include <z3++.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <cstdlib>

#include "analysis/analysis.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "support/rng.h"
#include "synth/verify.h"
#include "synth/z3_obs.h"

namespace parserhawk {

namespace {

/// Candidate key bit: bit `bit` of field `field` (wire order within the
/// field).
struct CandBit {
  int field;
  int bit;
};

/// Symbolic row of one implementation state.
struct GRow {
  z3::expr used;
  z3::expr value;
  z3::expr mask;
  z3::expr next;
  z3::expr xtr;  ///< does this row's ExtractSet include the state's field?
};

constexpr int kAcceptId = -1;  // mirrors ir sentinels in the Int encoding
constexpr int kRejectId = -2;

/// All cursor positions any implementation could reach: subset sums of
/// field widths, bounded by the input length.
std::vector<int> possible_positions(const ParserSpec& spec, int input_bits) {
  std::set<int> sums{0};
  for (const auto& f : spec.fields) {
    std::set<int> next = sums;
    for (int s : sums)
      if (s + f.width <= input_bits) next.insert(s + f.width);
    sums = std::move(next);
    if (sums.size() > 512) break;  // cap; larger programs time out anyway
  }
  return {sums.begin(), sums.end()};
}

}  // namespace

std::optional<GlobalSynthResult> global_synthesize(const ParserSpec& spec, const HwProfile& profile,
                                                   const SynthOptions& options,
                                                   const Deadline& deadline, ChainStats& stats) {
  obs::Span span("global_synthesize");
  span.arg("spec", spec.name);
  SpecAnalysis analysis = analyze(spec, options.max_iterations);
  const int input_bits = std::max(1, analysis.max_input_bits);
  const int num_fields = static_cast<int>(spec.fields.size());

  // Candidate key bits (Opt1 restricts to spec-used bits).
  std::vector<CandBit> bits;
  for (int f = 0; f < num_fields; ++f) {
    for (int j = 0; j < spec.fields[static_cast<std::size_t>(f)].width; ++j) {
      bool used = analysis.key_usage[static_cast<std::size_t>(f)].bits[static_cast<std::size_t>(j)];
      if (options.opt1_spec_guided_keys && !used) continue;
      bits.push_back(CandBit{f, j});
      if (bits.size() == 64) break;
    }
    if (bits.size() == 64) break;
  }
  const int kw = std::max(1, static_cast<int>(bits.size()));
  const unsigned w = static_cast<unsigned>(kw);

  // Impl skeleton: one state per extraction op (at least one per spec
  // state); synthesis chooses which field each state extracts.
  int num_states = 0;
  for (const auto& st : spec.states) num_states += std::max<std::size_t>(1, st.extracts.size());
  const int rows_per_state =
      std::min(6, 1 + static_cast<int>(std::max_element(spec.states.begin(), spec.states.end(),
                                                        [](const State& a, const State& b) {
                                                          return a.rules.size() < b.rules.size();
                                                        })
                                           ->rules.size()));
  const int K = std::min(16, std::max(options.max_iterations, num_states + 2));

  // Opt4 constant pool: spec rule values scattered to candidate positions.
  std::vector<std::uint64_t> pool;
  if (options.opt4_constant_synthesis) {
    for (std::size_t s = 0; s < spec.states.size(); ++s) {
      const State& st = spec.states[s];
      int skw = st.key_width();
      for (const auto& r : st.rules) {
        if (r.is_default()) continue;
        std::uint64_t mapped = 0;
        int key_bit = 0;
        for (const auto& p : st.key) {
          for (int j = 0; j < p.len; ++j, ++key_bit) {
            if (p.kind != KeyPart::Kind::FieldSlice) continue;
            bool bitval = (r.value >> (skw - 1 - key_bit)) & 1u;
            if (!bitval) continue;
            for (std::size_t b = 0; b < bits.size(); ++b)
              if (bits[b].field == p.field && bits[b].bit == p.lo + j)
                mapped |= std::uint64_t{1} << (kw - 1 - static_cast<int>(b));
          }
        }
        pool.push_back(mapped);
      }
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }

  const std::vector<int> positions = possible_positions(spec, input_bits);

  // ---------- Static (per-run) symbolic structure. ----------
  z3::context ctx;
  z3::solver synth(ctx);

  std::vector<z3::expr> alloc;    // per state: candidate-bit mask
  std::vector<z3::expr> ext;      // per state: extracted field or -1
  std::vector<std::vector<GRow>> rows(static_cast<std::size_t>(num_states));

  double space_bits = 0;
  for (int i = 0; i < num_states; ++i) {
    z3::expr a = ctx.bv_const(("alloc" + std::to_string(i)).c_str(), w);
    z3::expr sum = ctx.int_val(0);
    for (int b = 0; b < kw; ++b)
      sum = sum + z3::ite(a.extract(static_cast<unsigned>(b), static_cast<unsigned>(b)) == ctx.bv_val(1, 1),
                          ctx.int_val(1), ctx.int_val(0));
    synth.add(sum <= ctx.int_val(profile.key_limit_bits));
    if (options.opt5_key_grouping) {
      // Bits of one field are allocated together.
      for (std::size_t b = 1; b < bits.size(); ++b)
        if (bits[b].field == bits[b - 1].field) {
          unsigned hi = static_cast<unsigned>(kw - 1 - static_cast<int>(b - 1));
          unsigned lo = static_cast<unsigned>(kw - 1 - static_cast<int>(b));
          synth.add(a.extract(hi, hi) == a.extract(lo, lo));
        }
    } else {
      space_bits += kw;
    }
    alloc.push_back(a);

    z3::expr e = ctx.int_const(("ext" + std::to_string(i)).c_str());
    synth.add(e >= ctx.int_val(-1) && e < ctx.int_val(num_fields));
    space_bits += std::log2(static_cast<double>(num_fields + 1));
    ext.push_back(e);

    for (int r = 0; r < rows_per_state; ++r) {
      std::string tag = "s" + std::to_string(i) + "r" + std::to_string(r);
      GRow row{ctx.bool_const(("u" + tag).c_str()), ctx.bv_const(("v" + tag).c_str(), w),
               ctx.bv_const(("m" + tag).c_str(), w), ctx.int_const(("n" + tag).c_str()),
               ctx.bool_const(("x" + tag).c_str())};
      synth.add((row.mask & ~a) == ctx.bv_val(0, w));
      synth.add((row.value & ~row.mask) == ctx.bv_val(0, w));
      synth.add((row.next >= ctx.int_val(0) && row.next < ctx.int_val(num_states)) ||
                row.next == ctx.int_val(kAcceptId) || row.next == ctx.int_val(kRejectId));
      if (!pool.empty()) {
        z3::expr_vector ok(ctx);
        ok.push_back(row.mask == ctx.bv_val(0, w));
        for (std::uint64_t c : pool) ok.push_back(row.value == (ctx.bv_val(c, w) & row.mask));
        synth.add(z3::implies(row.used, z3::mk_or(ok)));
        space_bits += std::log2(static_cast<double>(pool.size() + 1)) + kw;
      } else {
        space_bits += 2.0 * kw;
      }
      space_bits += std::log2(static_cast<double>(num_states + 2)) + 1;
      if (r > 0) synth.add(z3::implies(row.used, rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(r - 1)].used));
      rows[static_cast<std::size_t>(i)].push_back(std::move(row));
    }
  }
  stats.search_space_bits = space_bits;

  z3::expr total_used = ctx.int_val(0);
  for (const auto& sr : rows)
    for (const auto& r : sr) total_used = total_used + z3::ite(r.used, ctx.int_val(1), ctx.int_val(0));
  z3::expr budget = ctx.int_const("budget");
  synth.add(total_used <= budget);

  // ---------- Per-test unrolled encoding (Figure 9). ----------
  int test_counter = 0;
  auto add_test = [&](const BitVec& input, const ParseResult& expected) {
    int t = test_counter++;
    auto nm = [&](const std::string& base, int a, int b = -1) {
      return base + "_" + std::to_string(t) + "_" + std::to_string(a) +
             (b >= 0 ? "_" + std::to_string(b) : "");
    };
    std::vector<z3::expr> cur, pos;
    std::vector<std::vector<z3::expr>> vpos(static_cast<std::size_t>(K + 1));
    for (int l = 0; l <= K; ++l) {
      cur.push_back(ctx.int_const(nm("cur", l).c_str()));
      pos.push_back(ctx.int_const(nm("pos", l).c_str()));
      for (int f = 0; f < num_fields; ++f)
        vpos[static_cast<std::size_t>(l)].push_back(ctx.int_const(nm("vp", l, f).c_str()));
    }
    synth.add(cur[0] == ctx.int_val(0));
    synth.add(pos[0] == ctx.int_val(0));
    for (int f = 0; f < num_fields; ++f) synth.add(vpos[0][static_cast<std::size_t>(f)] == ctx.int_val(-1));

    for (int l = 0; l < K; ++l) {
      // Raw key value at this iteration: candidate bit b reads the input at
      // the field's latest extraction position (concrete input => the OR
      // ranges only over positions whose bit is 1).
      z3::expr kraw = ctx.bv_val(0, w);
      if (!bits.empty()) {
        std::vector<z3::expr> kbits;
        for (std::size_t b = 0; b < bits.size(); ++b) {
          z3::expr_vector ors(ctx);
          for (int p : positions) {
            int wire = p + bits[b].bit;
            if (wire < input.size() && input.get(wire))
              ors.push_back(vpos[static_cast<std::size_t>(l)][static_cast<std::size_t>(bits[b].field)] ==
                            ctx.int_val(p));
          }
          kbits.push_back(ors.empty() ? ctx.bool_val(false) : z3::mk_or(ors));
        }
        z3::expr acc = z3::ite(kbits[0], ctx.bv_val(1, 1), ctx.bv_val(0, 1));
        for (std::size_t b = 1; b < kbits.size(); ++b)
          acc = z3::concat(acc, z3::ite(kbits[b], ctx.bv_val(1, 1), ctx.bv_val(0, 1)));
        if (static_cast<int>(bits.size()) == kw) kraw = acc;
        else kraw = z3::concat(acc, ctx.bv_val(0, static_cast<unsigned>(kw - static_cast<int>(bits.size()))));
      }

      // Sentinels are absorbing.
      for (int sentinel : {kAcceptId, kRejectId}) {
        z3::expr at = cur[static_cast<std::size_t>(l)] == ctx.int_val(sentinel);
        synth.add(z3::implies(at, cur[static_cast<std::size_t>(l + 1)] == ctx.int_val(sentinel)));
        synth.add(z3::implies(at, pos[static_cast<std::size_t>(l + 1)] == pos[static_cast<std::size_t>(l)]));
        for (int f = 0; f < num_fields; ++f)
          synth.add(z3::implies(at, vpos[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(f)] ==
                                        vpos[static_cast<std::size_t>(l)][static_cast<std::size_t>(f)]));
      }

      for (int i = 0; i < num_states; ++i) {
        z3::expr at = cur[static_cast<std::size_t>(l)] == ctx.int_val(i);
        z3::expr nomatch = ctx.bool_val(true);
        z3::expr width = ctx.int_val(0);
        for (int f = 0; f < num_fields; ++f)
          width = z3::ite(ext[static_cast<std::size_t>(i)] == ctx.int_val(f),
                          ctx.int_val(spec.fields[static_cast<std::size_t>(f)].width), width);
        for (const auto& row : rows[static_cast<std::size_t>(i)]) {
          z3::expr match = row.used && ((kraw & row.mask) == row.value);
          z3::expr fired = at && nomatch && match;
          synth.add(z3::implies(fired, cur[static_cast<std::size_t>(l + 1)] == row.next));
          // Per-row ExtractSet (Figure 6): either the state's assigned
          // field or nothing.
          synth.add(z3::implies(fired && row.xtr,
                                pos[static_cast<std::size_t>(l + 1)] ==
                                    pos[static_cast<std::size_t>(l)] + width));
          synth.add(z3::implies(fired && !row.xtr,
                                pos[static_cast<std::size_t>(l + 1)] == pos[static_cast<std::size_t>(l)]));
          for (int f = 0; f < num_fields; ++f) {
            z3::expr cur_vp = vpos[static_cast<std::size_t>(l)][static_cast<std::size_t>(f)];
            z3::expr nxt_vp = vpos[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(f)];
            z3::expr updates = row.xtr && ext[static_cast<std::size_t>(i)] == ctx.int_val(f);
            synth.add(z3::implies(fired && updates, nxt_vp == pos[static_cast<std::size_t>(l)]));
            synth.add(z3::implies(fired && !updates, nxt_vp == cur_vp));
          }
          nomatch = nomatch && !match;
        }
        synth.add(z3::implies(at && nomatch,
                              cur[static_cast<std::size_t>(l + 1)] == ctx.int_val(kRejectId)));
        synth.add(z3::implies(at && nomatch,
                              pos[static_cast<std::size_t>(l + 1)] == pos[static_cast<std::size_t>(l)]));
        for (int f = 0; f < num_fields; ++f)
          synth.add(z3::implies(at && nomatch,
                                vpos[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(f)] ==
                                    vpos[static_cast<std::size_t>(l)][static_cast<std::size_t>(f)]));
      }
    }

    // Final-state obligations.
    if (expected.outcome == ParseOutcome::Accepted)
      synth.add(cur[static_cast<std::size_t>(K)] == ctx.int_val(kAcceptId));
    else if (expected.outcome == ParseOutcome::Rejected)
      synth.add(cur[static_cast<std::size_t>(K)] == ctx.int_val(kRejectId));
    else
      return;  // exhausted expectations are not encoded

    if (expected.outcome != ParseOutcome::Accepted) return;  // dict unobservable on reject
    for (int f = 0; f < num_fields; ++f) {
      auto it = expected.dict.find(f);
      z3::expr vp = vpos[static_cast<std::size_t>(K)][static_cast<std::size_t>(f)];
      if (it == expected.dict.end()) {
        synth.add(vp == ctx.int_val(-1));
        continue;
      }
      // Accept any extraction position where the input bits equal the
      // expected value.
      z3::expr_vector ok(ctx);
      const BitVec& val = it->second;
      for (int p : positions) {
        if (p + val.size() > input.size()) continue;
        if (input.slice(p, val.size()) == val) ok.push_back(vp == ctx.int_val(p));
      }
      synth.add(ok.empty() ? ctx.bool_val(false) : z3::mk_or(ok));
    }
  };

  // ---------- Model extraction. ----------
  auto build_program = [&](const z3::model& model) {
    TcamProgram prog;
    prog.name = spec.name + "_naive";
    prog.fields = spec.fields;
    prog.start_table = 0;
    prog.start_state = 0;
    prog.max_iterations = std::max(K + 2, 2 * num_states + 4);
    for (int i = 0; i < num_states; ++i) {
      std::uint64_t amask = model.eval(alloc[static_cast<std::size_t>(i)], true).get_numeral_uint64();
      // Layout: contiguous runs of selected candidate bits within a field.
      StateLayout layout;
      for (std::size_t b = 0; b < bits.size();) {
        bool sel = (amask >> (kw - 1 - static_cast<int>(b))) & 1u;
        if (!sel) {
          ++b;
          continue;
        }
        std::size_t e = b;
        while (e + 1 < bits.size() && bits[e + 1].field == bits[b].field &&
               bits[e + 1].bit == bits[e].bit + 1 &&
               ((amask >> (kw - 1 - static_cast<int>(e + 1))) & 1u))
          ++e;
        layout.key.push_back(KeyPart{KeyPart::Kind::FieldSlice, bits[b].field, bits[b].bit,
                                     static_cast<int>(e - b) + 1});
        b = e + 1;
      }
      if (!layout.key.empty()) prog.layouts[{0, i}] = layout;

      int efield = static_cast<int>(model.eval(ext[static_cast<std::size_t>(i)], true).get_numeral_int64());
      int prio = 0;
      for (const auto& row : rows[static_cast<std::size_t>(i)]) {
        if (!z3::eq(model.eval(row.used, true), ctx.bool_val(true))) continue;
        TcamEntry e;
        e.table = 0;
        e.state = i;
        e.entry = prio++;
        std::uint64_t v = model.eval(row.value, true).get_numeral_uint64();
        std::uint64_t m = model.eval(row.mask, true).get_numeral_uint64();
        // Pack to the selected bits (layout order == candidate order).
        std::uint64_t pv = 0, pm = 0;
        for (int b = 0; b < kw; ++b) {
          if (!((amask >> (kw - 1 - b)) & 1u)) continue;
          pv = (pv << 1) | ((v >> (kw - 1 - b)) & 1u);
          pm = (pm << 1) | ((m >> (kw - 1 - b)) & 1u);
        }
        e.value = pv;
        e.mask = pm;
        if (efield >= 0 && z3::eq(model.eval(row.xtr, true), ctx.bool_val(true)))
          e.extracts.push_back(ExtractOp{efield, -1, 0, 0});
        int nx = static_cast<int>(model.eval(row.next, true).get_numeral_int64());
        e.next_table = 0;
        e.next_state = nx == kAcceptId ? kAccept : nx == kRejectId ? kReject : nx;
        prog.entries.push_back(std::move(e));
      }
    }
    return prog;
  };

  // ---------- CEGIS with an outer entry-budget search. ----------
  Rng rng(options.seed);
  std::vector<std::pair<BitVec, ParseResult>> tests;
  {
    BitVec seed_input = generate_path_input(spec, rng, options.max_iterations, input_bits);
    tests.emplace_back(seed_input, run_spec(spec, seed_input, options.max_iterations));
    add_test(tests.back().first, tests.back().second);
  }

  for (int T = num_states; T <= num_states * rows_per_state; ++T) {
    ++stats.cegis_rounds;
    obs::count("cegis.budget_attempts");
    for (int round = 0; round < options.max_cegis_rounds; ++round) {
      if (deadline.expired()) return std::nullopt;
      ++stats.synth_queries;
      synth.push();
      synth.add(budget == ctx.int_val(T));
      z3::check_result cr = timed_check(synth, &deadline, "synth");
      if (cr != z3::sat) {
        synth.pop();
        if (cr == z3::unknown) return std::nullopt;  // timeout
        break;                                       // UNSAT at this budget: grow
      }
      TcamProgram candidate = build_program(synth.get_model());
      synth.pop();
      if (std::getenv("PH_DEBUG_NAIVE")) {
        // The env var is the opt-in, so emit at Info (visible by default).
        obs::logf(obs::LogLevel::Info, "--- T=%d round=%d candidate:\n%s", T, round,
                  to_string(candidate).c_str());
      }

      // Cheap refutation before the Z3 verify: a batched packet-level
      // difftest over spec-consistent inputs. All inputs are exactly
      // input_bits long (no truncation), so any disagreement is a true
      // counterexample within the modeled input space and feeds CEGIS
      // directly — skipping the far more expensive verify query.
      if (options.difftest_samples > 0) {
        DiffTestOptions dt;
        dt.samples = options.difftest_samples;
        dt.seed = options.seed + static_cast<std::uint64_t>(stats.synth_queries);
        dt.input_bits = input_bits;
        dt.include_truncated = false;
        dt.max_iterations = options.max_iterations;
        dt.collect_coverage = false;
        BatchResult pre = differential_test_batch(spec, candidate, dt);
        if (pre.mismatch) {
          obs::count("cegis.difftest_counterexamples");
          tests.emplace_back(pre.mismatch->input,
                             run_spec(spec, pre.mismatch->input, options.max_iterations));
          add_test(tests.back().first, tests.back().second);
          continue;
        }
      }

      ++stats.verify_queries;
      VerifyOptions vo;
      vo.input_bits = input_bits;
      vo.max_iterations_spec = options.max_iterations;
      vo.max_iterations_impl = candidate.max_iterations;
      VerifyOutcome vr = verify_equivalence(spec, candidate, vo);
      if (vr.kind == VerifyOutcome::Kind::Equivalent)
        return GlobalSynthResult{std::move(candidate), stats};
      if (vr.kind == VerifyOutcome::Kind::Inconclusive) return std::nullopt;
      obs::count("cegis.counterexamples");
      tests.emplace_back(vr.counterexample, run_spec(spec, vr.counterexample, options.max_iterations));
      add_test(tests.back().first, tests.back().second);
    }
  }
  return std::nullopt;
}

}  // namespace parserhawk
