// Synthesis configuration: one flag per paper optimization (§6) so the
// Table 5 ablation is a configuration, not a code fork.
#pragma once

#include <cstdint>
#include <string>

#include "verify2/types.h"

namespace parserhawk::cache {
class SynthCache;
}  // namespace parserhawk::cache

namespace parserhawk::obs {
class ReportBuilder;
}  // namespace parserhawk::obs

namespace parserhawk {

struct SynthOptions {
  /// Opt1 (§6.1): restrict candidate key bits to those the specification
  /// itself uses in transitions.
  bool opt1_spec_guided_keys = true;
  /// Opt2 (§6.2): shrink fields irrelevant to transitions to 1 bit during
  /// synthesis; restore widths afterwards.
  bool opt2_bitwidth_min = true;
  /// Opt3 (§6.3): preallocate field extraction to parser states instead of
  /// synthesizing the assignment. Off => the naive global encoding.
  bool opt3_preallocate = true;
  /// Opt4 (§6.4): constant synthesis — draw values from spec constants,
  /// adjacent-state concatenations and width-limited subranges; restrict
  /// masks to all-ones when every rule transitions to a distinct state.
  bool opt4_constant_synthesis = true;
  /// Opt5 (§6.5): treat the bits of one field used by one state as an
  /// indivisible key group instead of per-bit allocation.
  bool opt5_key_grouping = true;
  /// Opt6 (§6.6): treat varbit fields as fixed-size during synthesis and
  /// restore variable extraction afterwards.
  bool opt6_varbit_as_fixed = true;
  /// Opt7 (§6.7): portfolio parallelism — loop-aware vs loop-free
  /// whole-program variants, alternative key-split orders, aux-state
  /// counts, and restricted-mask vs candidate-mask passes raced against
  /// each other with first-SAT-cancels-losers semantics. With
  /// `num_threads > 1` the race is genuinely concurrent on a work-stealing
  /// pool (src/support/thread_pool.h); the winner is always the variant
  /// with the lowest index in the sequential search order, so the output
  /// program is a pure function of (spec, hw, options) — identical at
  /// every thread count. See DESIGN.md §6 for the cancellation protocol.
  bool opt7_parallel = true;

  /// K: max state transitions modeled during synthesis & verification.
  int max_iterations = 8;
  /// Loop unrolling depth used when the target cannot loop (IPU).
  int loop_unroll_depth = 4;
  /// Wall-clock budget in seconds (0 = unlimited). Stands in for the
  /// paper's 24 h timeout.
  double timeout_sec = 0;
  /// Give up after this many CEGIS refinement rounds per query.
  int max_cegis_rounds = 128;
  /// Random seed for the initial test-case pair (§5.2).
  std::uint64_t seed = 1;
  /// Samples for the post-compile differential test (Figure 22) and the
  /// batched CEGIS candidate pre-check.
  int difftest_samples = 64;
  /// Worker threads for the batched differential test. 0 = reuse the Opt7
  /// pool when one exists, else run on the calling thread; >= 1 forces
  /// that many dedicated workers. The verdict is identical at every value
  /// (the batch engine's determinism contract, sim/batch.h).
  int difftest_threads = 0;
  /// Opt7 portfolio threads. 1 = run subproblems sequentially on the
  /// calling thread (exactly the pre-parallel code path); > 1 = solve
  /// independent per-state chain problems concurrently and race their
  /// Opt7 variants on a pool of this many workers. The compiled program
  /// is identical for every value (deterministic-winner rule).
  int num_threads = 1;

  /// Which equivalence checker the final verify phase runs (DESIGN.md §13):
  /// the monolithic terminal-pair Z3 query, the product-automaton
  /// bisimulation sweep, or both raced to completion. The compiled program
  /// and verdict are identical for every value — Race always returns the
  /// Z3 payload when Z3 is conclusive — so this knob only moves wall clock
  /// and which verify.* metrics get published.
  VerifierKind verifier = VerifierKind::Z3;
  /// Specification-side iteration bound for the verify phase only; 0 = use
  /// max_iterations. Raise it (independently of the synthesis bound) when
  /// the bisim reachable-set report must cover states deeper than K.
  int verify_iterations = 0;
  /// Path/product configuration budget for the verify phase.
  int verify_max_configs = 20000;

  /// Content-addressed synthesis cache (src/cache, DESIGN.md §8). Off by
  /// default so every compile is reproducibly cold; turning it on never
  /// changes the compiled program (hits replay the deterministic Opt7
  /// winner and are revalidated against the problem semantics), only
  /// wall-clock. Enabled when any of the three knobs below is set.
  bool cache_enabled = false;
  /// On-disk cache tier root (CLI --cache-dir / env PH_CACHE_DIR). Empty =
  /// memory-only. Setting it implies cache_enabled.
  std::string cache_dir;
  /// Injected cache instance (tests, benches). nullptr = use the
  /// process-global cache when enabled. Setting it implies cache_enabled.
  cache::SynthCache* cache = nullptr;

  /// Attribution-report sink (obs/report.h, DESIGN.md §11). When set,
  /// compile() installs it for the duration of the compile and fills in the
  /// per-phase / per-state / per-variant / per-Z3-phase breakdown; the
  /// caller snapshots it afterwards (hawk_compile --report-out). nullptr =
  /// no report, zero overhead beyond one relaxed load per hook site.
  obs::ReportBuilder* report = nullptr;

  /// All optimizations off: the naive encoding used for the "Orig" columns
  /// of Table 3.
  static SynthOptions naive() {
    SynthOptions o;
    o.opt1_spec_guided_keys = false;
    o.opt2_bitwidth_min = false;
    o.opt3_preallocate = false;
    o.opt4_constant_synthesis = false;
    o.opt5_key_grouping = false;
    o.opt6_varbit_as_fixed = false;
    o.opt7_parallel = false;
    return o;
  }
};

}  // namespace parserhawk
