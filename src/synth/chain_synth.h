// Per-state chain synthesis: the CEGIS core of the OPT pipeline.
//
// After normalization and extraction preallocation (Opt3), compiling one
// parser state S reduces to synthesizing a *chain* of TCAM states that
// implements S's transition function f_S : key -> next-state exactly, under
// the device's key-width limit. Layer 0 is the state itself; further layers
// are auxiliary match-only states introduced when the key must be split
// (the R4 problem of Figure 21 / step 2 of Figure 4). Each layer owns an
// allocation mask saying which key bits it may inspect (fixed slices when
// Opt5 grouping is on, synthesized subject to a popcount bound when off).
//
// Rows carry symbolic (value, mask, next); values are drawn from the
// specification's constant pool when Opt4 is on. The row budget is the
// outer minimization knob: the compiler calls synthesize_chain with
// increasing budgets and takes the first SAT, which yields the
// minimum-entry implementation for the chain shape.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/ir.h"
#include "support/timer.h"

namespace parserhawk {

/// The semantic problem for one spec state.
struct ChainProblem {
  int spec_state = -1;
  /// Width of the candidate key in bits.
  int key_width = 0;
  /// f_S as a prioritized rule list over the candidate key (first match
  /// wins; no match = reject).
  std::vector<Rule> semantics;
  /// Exits the chain may produce (range of f_S; always includes every rule
  /// target). Values are spec state ids, kAccept or kReject.
  std::vector<int> exit_targets;
};

/// The search-space shape for one attempt.
struct ChainShape {
  /// Per-layer allocation masks over the candidate key. Non-empty => fixed
  /// (Opt5 on). Empty => `layers` symbolic masks, each with popcount <=
  /// key_limit (Opt5 off).
  std::vector<std::uint64_t> alloc_masks;
  int layers = 1;
  /// Auxiliary states per layer (index 0 is always 1: the entry state).
  std::vector<int> aux_counts;
  /// Total row budget across the whole chain.
  int row_budget = 1;
  /// Opt4: restrict row values to this candidate pool (empty = free).
  std::vector<std::uint64_t> value_candidates;
  /// keyLimit of the device (bounds symbolic masks).
  int key_limit = 64;
  /// Opt4.2 (§6.4.2): restrict every row's mask to all-ones-over-the-layer
  /// or catch-all. Solves instantly when the spec's targets are distinct;
  /// the compiler races this variant against the candidate-mask variant.
  bool restrict_masks = false;
  /// Opt4.2 candidate masks: pairwise-XOR-derived merge masks (the mask
  /// that would unify two same-target constants). When non-empty and
  /// restrict_masks is false, each row's mask is confined to
  /// {0, layer-alloc} union {alloc & m : m in mask_candidates} — the paper's
  /// restricted mask search. Empty with restrict_masks=false => free masks.
  std::vector<std::uint64_t> mask_candidates;
};

/// One concrete synthesized row.
struct ChainRow {
  int layer = 0;
  int aux = 0;        ///< state index within the layer
  int priority = 0;   ///< row order within the state
  std::uint64_t value = 0;
  std::uint64_t mask = 0;
  bool is_exit = true;
  int exit_target = kReject;  ///< valid when is_exit
  int next_aux = 0;           ///< target state in layer+1 when !is_exit
};

struct ChainSolution {
  std::vector<ChainRow> rows;
  std::vector<std::uint64_t> alloc_masks;  ///< concrete, one per layer
};

struct ChainStats {
  int cegis_rounds = 0;
  int synth_queries = 0;
  int verify_queries = 0;
  /// log2 of the candidate space explored (the paper's "Search Space
  /// (bits)" metric, accumulated by the compiler).
  double search_space_bits = 0;
};

/// Attempt to synthesize a chain of the given shape implementing the
/// problem exactly (verified over the full key space). Returns nullopt on
/// UNSAT, round exhaustion or deadline expiry (deadline also sets
/// stats.cegis_rounds to the rounds actually used).
std::optional<ChainSolution> synthesize_chain(const ChainProblem& problem, const ChainShape& shape,
                                              const Deadline& deadline, ChainStats& stats);

/// Concrete evaluation of f_S on one key (reference semantics used by the
/// CEGIS example phase and by tests).
int eval_semantics(const std::vector<Rule>& semantics, std::uint64_t key);

/// Concrete evaluation of a synthesized chain on one key; returns the exit
/// target (kReject when some state has no matching row).
int eval_chain(const ChainSolution& solution, std::uint64_t key);

/// Cross-check a (possibly cached) solution against the problem semantics
/// without touching Z3: structural sanity (layer/exit-target ranges) plus
/// concrete agreement on a probe set — exhaustive up to 12 key bits,
/// otherwise every rule constant, its one-bit neighbors, the boundary keys
/// and a deterministic random sample. This is the synthesis cache's hit
/// gate (src/cache): a colliding fingerprint or corrupted entry fails here
/// and is re-solved instead of miscompiled.
bool validate_solution(const ChainProblem& problem, const ChainSolution& solution);

}  // namespace parserhawk
