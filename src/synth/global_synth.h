// Naive whole-program synthesis: the paper's unoptimized encoding ("Orig"
// in Table 3), used when Opt3 preallocation is disabled.
//
// Everything is symbolic at once, exactly as §6 warns: per-state extraction
// assignment (Extract), per-bit key allocation masks (Alloc), free
// value/mask constants per TCAM row, and symbolic next-state pointers. The
// CEGIS synthesis phase unrolls the parser K iterations over each concrete
// test input, tracking symbolic current-state, cursor and per-field
// extraction positions (Figure 9's formulas); the verification phase is the
// shared symbolic-execution equivalence check of verify.h. The search space
// this encoding hands to Z3 grows exponentially with the program, which is
// what the optimization flags in SynthOptions claw back.
#pragma once

#include <optional>

#include "hw/profile.h"
#include "ir/ir.h"
#include "support/timer.h"
#include "synth/chain_synth.h"  // ChainStats
#include "synth/options.h"
#include "tcam/tcam.h"

namespace parserhawk {

struct GlobalSynthResult {
  TcamProgram program;
  ChainStats stats;
};

/// Synthesize a flat (single-table) implementation of `spec` with the naive
/// global encoding. The spec must be varbit-free (apply varbit_to_fixed) —
/// the caller handles loop unrolling for pipelined targets and stage
/// assignment afterwards. Returns nullopt on UNSAT/timeout (stats still
/// describe the attempt).
std::optional<GlobalSynthResult> global_synthesize(const ParserSpec& spec, const HwProfile& profile,
                                                   const SynthOptions& options,
                                                   const Deadline& deadline, ChainStats& stats);

}  // namespace parserhawk
