#include "synth/chain_synth.h"

#include <z3++.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/z3_obs.h"

namespace parserhawk {

int eval_semantics(const std::vector<Rule>& semantics, std::uint64_t key) {
  for (const auto& r : semantics)
    if (r.matches(key)) return r.next;
  return kReject;
}

int eval_chain(const ChainSolution& solution, std::uint64_t key) {
  int layer = 0;
  int aux = 0;
  for (;;) {
    std::uint64_t masked = 0;
    const ChainRow* fired = nullptr;
    for (const auto& row : solution.rows) {
      if (row.layer != layer || row.aux != aux) continue;
      masked = layer < static_cast<int>(solution.alloc_masks.size())
                   ? key & solution.alloc_masks[static_cast<std::size_t>(layer)]
                   : key;
      if ((masked & row.mask) == row.value) {
        if (fired == nullptr || row.priority < fired->priority) fired = &row;
      }
    }
    // rows are scanned in priority order via the min-priority winner above
    if (fired == nullptr) return kReject;
    if (fired->is_exit) return fired->exit_target;
    ++layer;
    aux = fired->next_aux;
  }
}

bool validate_solution(const ChainProblem& problem, const ChainSolution& solution) {
  // Structural sanity: every row lives in a declared layer, exits land in
  // the semantic range, and continuations stay inside the chain.
  const int layers = static_cast<int>(solution.alloc_masks.size());
  if (layers < 1) return false;
  for (const auto& row : solution.rows) {
    if (row.layer < 0 || row.layer >= layers) return false;
    if (row.is_exit) {
      bool known = false;
      for (int t : problem.exit_targets) known |= t == row.exit_target;
      if (!known) return false;
    } else if (row.layer + 1 >= layers || row.next_aux < 0) {
      return false;
    }
  }

  auto agree = [&](std::uint64_t key) {
    return eval_chain(solution, key) == eval_semantics(problem.semantics, key);
  };
  if (problem.key_width == 0) return agree(0);
  const std::uint64_t full =
      problem.key_width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << problem.key_width) - 1);
  if (problem.key_width <= 12) {
    for (std::uint64_t k = 0; k <= full; ++k)
      if (!agree(k)) return false;
    return true;
  }
  if (!agree(0) || !agree(full)) return false;
  for (const auto& r : problem.semantics) {
    if (!agree(r.value & full)) return false;
    for (int b = 0; b < problem.key_width; ++b)
      if (!agree((r.value ^ (std::uint64_t{1} << b)) & full)) return false;
  }
  // Deterministic splitmix64 sample (same recipe as support/rng.h, inlined
  // so the probe set is a pure function of the problem).
  std::uint64_t state = 0x9e3779b97f4a7c15ull ^ (static_cast<std::uint64_t>(problem.key_width) << 32);
  for (int i = 0; i < 256; ++i) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    if (!agree((z ^ (z >> 31)) & full)) return false;
  }
  return true;
}

namespace {

/// One symbolic row slot.
struct Slot {
  int layer;
  int aux;
  int priority;
  z3::expr used;
  z3::expr value;
  z3::expr mask;
  z3::expr is_exit;
  z3::expr exit_target;
  z3::expr next_aux;
};

struct Encoding {
  z3::context& ctx;
  const ChainProblem& problem;
  const ChainShape& shape;
  std::vector<Slot> slots;
  std::vector<z3::expr> alloc;  // per-layer mask (const or var)

  /// Slots of state (layer, aux) in priority order.
  std::vector<const Slot*> state_slots(int layer, int aux) const {
    std::vector<const Slot*> out;
    for (const auto& s : slots)
      if (s.layer == layer && s.aux == aux) out.push_back(&s);
    return out;
  }
};

unsigned bvw(const ChainProblem& p) { return static_cast<unsigned>(std::max(p.key_width, 1)); }

z3::expr popcount_le(z3::context& ctx, const z3::expr& bv, int width, int limit) {
  z3::expr sum = ctx.int_val(0);
  for (int i = 0; i < width; ++i)
    sum = sum + z3::ite(bv.extract(static_cast<unsigned>(i), static_cast<unsigned>(i)) ==
                            ctx.bv_val(1, 1),
                        ctx.int_val(1), ctx.int_val(0));
  return sum <= ctx.int_val(limit);
}

Encoding build_encoding(z3::context& ctx, const ChainProblem& problem, const ChainShape& shape,
                        z3::solver& solver, ChainStats& stats) {
  Encoding enc{ctx, problem, shape, {}, {}};
  const unsigned w = bvw(problem);
  const int layers = shape.layers;

  // Allocation masks.
  double space_bits = 0;
  for (int l = 0; l < layers; ++l) {
    if (!shape.alloc_masks.empty()) {
      enc.alloc.push_back(ctx.bv_val(shape.alloc_masks[static_cast<std::size_t>(l)], w));
    } else {
      z3::expr a = ctx.bv_const(("alloc_" + std::to_string(l)).c_str(), w);
      solver.add(popcount_le(ctx, a, problem.key_width, shape.key_limit));
      enc.alloc.push_back(a);
      space_bits += problem.key_width;
    }
  }

  // Row slots: every chain state gets up to `row_budget` slots; the total
  // number of *used* slots is capped by the budget.
  auto aux_count = [&](int l) { return l == 0 ? 1 : shape.aux_counts[static_cast<std::size_t>(l)]; };
  z3::expr total_used = ctx.int_val(0);
  for (int l = 0; l < layers; ++l) {
    for (int a = 0; a < aux_count(l); ++a) {
      int per_state = std::min(shape.row_budget, 8);
      for (int r = 0; r < per_state; ++r) {
        std::string tag = "L" + std::to_string(l) + "A" + std::to_string(a) + "R" + std::to_string(r);
        Slot s{l,
               a,
               r,
               ctx.bool_const(("u" + tag).c_str()),
               ctx.bv_const(("v" + tag).c_str(), w),
               ctx.bv_const(("m" + tag).c_str(), w),
               ctx.bool_const(("e" + tag).c_str()),
               ctx.int_const(("x" + tag).c_str()),
               ctx.int_const(("n" + tag).c_str())};
        // Structural constraints.
        solver.add(z3::implies(s.used, (s.mask & ~enc.alloc[static_cast<std::size_t>(l)]) ==
                                           ctx.bv_val(0, w)));
        if (shape.restrict_masks) {
          solver.add(s.mask == ctx.bv_val(0, w) || s.mask == enc.alloc[static_cast<std::size_t>(l)]);
        } else if (!shape.mask_candidates.empty()) {
          z3::expr_vector mask_ok(ctx);
          mask_ok.push_back(s.mask == ctx.bv_val(0, w));
          mask_ok.push_back(s.mask == enc.alloc[static_cast<std::size_t>(l)]);
          for (std::uint64_t m : shape.mask_candidates)
            mask_ok.push_back(s.mask == (ctx.bv_val(m, w) & enc.alloc[static_cast<std::size_t>(l)]));
          solver.add(z3::mk_or(mask_ok));
        }
        solver.add((s.value & ~s.mask) == ctx.bv_val(0, w));  // canonical value
        if (l == layers - 1) solver.add(s.is_exit);
        // Exit targets restricted to the semantic range.
        z3::expr_vector exit_ok(ctx);
        for (int t : problem.exit_targets) exit_ok.push_back(s.exit_target == ctx.int_val(t));
        solver.add(z3::implies(s.used && s.is_exit, z3::mk_or(exit_ok)));
        if (l + 1 < layers) {
          solver.add(s.next_aux >= 0 && s.next_aux < ctx.int_val(aux_count(l + 1)));
        }
        // Opt4: values drawn from the constant pool (defaults always allowed).
        if (!shape.value_candidates.empty()) {
          z3::expr_vector val_ok(ctx);
          val_ok.push_back(s.mask == ctx.bv_val(0, w));  // catch-all row
          for (std::uint64_t c : shape.value_candidates)
            val_ok.push_back(s.value == (ctx.bv_val(c, w) & s.mask));
          solver.add(z3::implies(s.used, z3::mk_or(val_ok)));
          space_bits += std::log2(static_cast<double>(shape.value_candidates.size() + 1)) +
                        problem.key_width;  // value choice + free mask
        } else {
          space_bits += 2.0 * problem.key_width;
        }
        space_bits += std::log2(static_cast<double>(problem.exit_targets.size() + aux_count(l + 1 < layers ? l + 1 : l))) + 1;
        total_used = total_used + z3::ite(s.used, ctx.int_val(1), ctx.int_val(0));
        enc.slots.push_back(std::move(s));
      }
      // Used slots are contiguous in priority order (symmetry breaking).
      for (int r = 1; r < std::min(shape.row_budget, 8); ++r) {
        const Slot& hi = enc.slots[enc.slots.size() - static_cast<std::size_t>(r)];
        const Slot& lo = enc.slots[enc.slots.size() - static_cast<std::size_t>(r) - 1];
        solver.add(z3::implies(hi.used, lo.used));
      }
    }
  }
  solver.add(total_used <= ctx.int_val(shape.row_budget));
  stats.search_space_bits = space_bits;
  return enc;
}

/// Chain evaluation as an Int-valued expression over a (symbolic or
/// constant) key expression.
z3::expr eval_expr(const Encoding& enc, const z3::expr& key) {
  z3::context& ctx = enc.ctx;
  auto aux_count = [&](int l) {
    return l == 0 ? 1 : enc.shape.aux_counts[static_cast<std::size_t>(l)];
  };
  // Build from the last layer backwards.
  std::vector<std::vector<z3::expr>> layer_eval(static_cast<std::size_t>(enc.shape.layers));
  for (int l = enc.shape.layers - 1; l >= 0; --l) {
    z3::expr masked = key & enc.alloc[static_cast<std::size_t>(l)];
    for (int a = 0; a < aux_count(l); ++a) {
      z3::expr res = ctx.int_val(kReject);
      auto slots = enc.state_slots(l, a);
      for (auto it = slots.rbegin(); it != slots.rend(); ++it) {
        const Slot& s = **it;
        z3::expr fired = s.used && ((masked & s.mask) == s.value);
        z3::expr step = s.exit_target;
        if (l + 1 < enc.shape.layers) {
          z3::expr cont = ctx.int_val(kReject);
          for (int na = aux_count(l + 1) - 1; na >= 0; --na)
            cont = z3::ite(s.next_aux == ctx.int_val(na),
                           layer_eval[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(na)],
                           cont);
          step = z3::ite(s.is_exit, s.exit_target, cont);
        }
        res = z3::ite(fired, step, res);
      }
      layer_eval[static_cast<std::size_t>(l)].push_back(res);
    }
  }
  return layer_eval[0][0];
}

/// f_S as an Int-valued expression over a symbolic key.
z3::expr semantics_expr(z3::context& ctx, const ChainProblem& problem, const z3::expr& key) {
  const unsigned w = bvw(problem);
  z3::expr out = ctx.int_val(kReject);
  for (auto it = problem.semantics.rbegin(); it != problem.semantics.rend(); ++it) {
    z3::expr cond = ((key ^ ctx.bv_val(it->value, w)) & ctx.bv_val(it->mask, w)) == ctx.bv_val(0, w);
    out = z3::ite(cond, ctx.int_val(it->next), out);
  }
  return out;
}

ChainSolution extract_solution(const Encoding& enc, const z3::model& model) {
  ChainSolution sol;
  for (std::size_t l = 0; l < enc.alloc.size(); ++l)
    sol.alloc_masks.push_back(model.eval(enc.alloc[l], true).get_numeral_uint64());
  for (const auto& s : enc.slots) {
    if (!z3::eq(model.eval(s.used, true), enc.ctx.bool_val(true))) continue;
    ChainRow row;
    row.layer = s.layer;
    row.aux = s.aux;
    row.priority = s.priority;
    row.value = model.eval(s.value, true).get_numeral_uint64();
    row.mask = model.eval(s.mask, true).get_numeral_uint64();
    row.is_exit = s.layer == static_cast<int>(enc.alloc.size()) - 1 ||
                  z3::eq(model.eval(s.is_exit, true), enc.ctx.bool_val(true));
    row.exit_target = static_cast<int>(model.eval(s.exit_target, true).get_numeral_int64());
    row.next_aux = static_cast<int>(model.eval(s.next_aux, true).get_numeral_int64());
    sol.rows.push_back(row);
  }
  return sol;
}

}  // namespace

std::optional<ChainSolution> synthesize_chain(const ChainProblem& problem, const ChainShape& shape,
                                              const Deadline& deadline, ChainStats& stats) {
  // Keyless states have a trivial one-row solution.
  if (problem.key_width == 0) {
    ChainSolution sol;
    sol.alloc_masks.assign(1, 0);
    sol.rows.push_back(ChainRow{0, 0, 0, 0, 0, true, eval_semantics(problem.semantics, 0), 0});
    return sol;
  }

  obs::Span span("synthesize_chain");
  if (span.active()) {
    span.arg("spec_state", problem.spec_state);
    span.arg("key_width", problem.key_width);
    span.arg("layers", shape.layers);
    span.arg("row_budget", shape.row_budget);
    span.arg("restrict_masks", shape.restrict_masks);
  }
  // Attribution hook: however this call exits, its CEGIS round count lands
  // on the (state, variant) context the caller established (obs/report.h).
  struct RoundsReporter {
    const ChainStats& stats;
    ~RoundsReporter() {
      if (stats.cegis_rounds > 0) obs::report_cegis_rounds(stats.cegis_rounds);
    }
  } rounds_reporter{stats};

  z3::context ctx;
  z3::solver synth(ctx);
  Encoding enc = build_encoding(ctx, problem, shape, synth, stats);

  // Seed examples: every rule's value plus the boundary keys.
  std::vector<std::uint64_t> examples;
  const std::uint64_t full =
      problem.key_width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << problem.key_width) - 1);
  for (const auto& r : problem.semantics) examples.push_back(r.value & full);
  examples.push_back(0);
  examples.push_back(full);
  // One-bit neighbors of every constant: cheap examples that kill most
  // wrong masks before the expensive verify/refine loop starts.
  {
    std::vector<std::uint64_t> neighbors;
    for (const auto& r : problem.semantics)
      for (int b = 0; b < problem.key_width && neighbors.size() < 192; ++b)
        neighbors.push_back((r.value ^ (std::uint64_t{1} << b)) & full);
    examples.insert(examples.end(), neighbors.begin(), neighbors.end());
  }
  std::sort(examples.begin(), examples.end());
  examples.erase(std::unique(examples.begin(), examples.end()), examples.end());

  const unsigned w = bvw(problem);
  for (std::uint64_t k : examples)
    synth.add(eval_expr(enc, ctx.bv_val(k, w)) ==
              ctx.int_val(eval_semantics(problem.semantics, k)));

  for (int round = 0; round < 48; ++round) {
    if (deadline.expired()) {
      if (deadline.cancelled()) obs::count("opt7.attempts_cancelled");
      return std::nullopt;
    }
    stats.cegis_rounds = round + 1;

    ++stats.synth_queries;
    if (timed_check(synth, &deadline, "synth") != z3::sat) return std::nullopt;
    ChainSolution candidate = extract_solution(enc, synth.get_model());

    // Verification: does the candidate agree with f_S over the whole key
    // space? The candidate is concrete, so this is a plain BV query.
    ++stats.verify_queries;
    z3::solver verify(ctx);
    z3::expr k = ctx.bv_const("k", w);
    // Re-encode the candidate concretely (cheap: few rows).
    {
      z3::expr spec_next = semantics_expr(ctx, problem, k);
      // Build chain eval for concrete rows.
      auto aux_count = [&](int l) {
        return l == 0 ? 1 : shape.aux_counts[static_cast<std::size_t>(l)];
      };
      std::vector<std::vector<z3::expr>> layer_eval(static_cast<std::size_t>(shape.layers));
      for (int l = shape.layers - 1; l >= 0; --l) {
        z3::expr masked = k & ctx.bv_val(candidate.alloc_masks[static_cast<std::size_t>(l)], w);
        for (int a = 0; a < aux_count(l); ++a) {
          z3::expr res = ctx.int_val(kReject);
          std::vector<const ChainRow*> rows;
          for (const auto& row : candidate.rows)
            if (row.layer == l && row.aux == a) rows.push_back(&row);
          std::sort(rows.begin(), rows.end(),
                    [](const ChainRow* x, const ChainRow* y) { return x->priority < y->priority; });
          for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
            const ChainRow& row = **it;
            z3::expr fired = (masked & ctx.bv_val(row.mask, w)) == ctx.bv_val(row.value, w);
            z3::expr step = ctx.int_val(row.exit_target);
            if (!row.is_exit && l + 1 < shape.layers)
              step = layer_eval[static_cast<std::size_t>(l + 1)][static_cast<std::size_t>(row.next_aux)];
            res = z3::ite(fired, step, res);
          }
          layer_eval[static_cast<std::size_t>(l)].push_back(res);
        }
      }
      verify.add(layer_eval[0][0] != spec_next);
    }
    z3::check_result vr = timed_check(verify, &deadline, "verify");
    if (vr == z3::unsat) {
      if (obs::metrics_on()) {
        obs::observe("cegis.rounds_per_call", round + 1);
        obs::observe("cegis.counterexamples_per_call", round);
      }
      return candidate;
    }
    if (vr != z3::sat) return std::nullopt;  // timeout mid-verify

    obs::count("cegis.counterexamples");
    std::uint64_t cex = verify.get_model().eval(k, true).get_numeral_uint64();
    synth.add(eval_expr(enc, ctx.bv_val(cex, w)) ==
              ctx.int_val(eval_semantics(problem.semantics, cex)));
  }
  obs::count("cegis.round_exhaustion");
  return std::nullopt;
}

}  // namespace parserhawk
