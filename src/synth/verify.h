// Bounded formal equivalence of a specification and a TCAM implementation
// (the CEGIS verification phase, §5.2, plus the final whole-program check).
//
// Both sides are symbolically executed over one shared symbolic input
// bitvector I of N bits. Because field widths are fixed during synthesis
// (Opt6), every execution path has *concrete* extraction positions, so each
// terminal configuration is (path guard over I, outcome, field -> concrete
// bit range). Equivalence then reduces to one pure-bitvector Z3 query over
// all terminal pairs: a SAT model is a counterexample input.
//
// Semantics checked is §4 equivalence as implemented by sim::equivalent:
// same outcome everywhere, same dictionary on accepted inputs. Terminals
// that exhaust the iteration bound are excluded (the bound is a simulation
// artifact; callers pick bounds large enough that real programs never hit
// them on N-bit inputs).
#pragma once

#include <optional>

#include "ir/ir.h"
#include "support/bitvec.h"
#include "tcam/tcam.h"
#include "verify2/types.h"  // VerifyOptions / VerifyOutcome / VerifierKind

namespace parserhawk {

/// Check Impl(I) == Spec(I) for all I of the derived/requested width.
/// Throws std::invalid_argument if the spec still contains varbit fields
/// (run varbit_to_fixed first; varbit restoration is validated by the
/// differential tester instead).
VerifyOutcome verify_equivalence(const ParserSpec& spec, const TcamProgram& impl,
                                 const VerifyOptions& options = {});

}  // namespace parserhawk
