// Specification normalization passes run before synthesis.
//
// ParserHawk "only cares about the semantics instead of the written style
// of the input parser program" (§3.3). These passes canonicalize away the
// written style: dead/redundant rules (the ±R1/±R2 rewrites of Figure 21),
// split entries (±R3), split states (±R5) and unrolled loops all collapse
// to the same normal form, which is why ParserHawk's resource usage is
// invariant under Figure 21's mutations while the baselines' is not.
//
// All passes are semantics-preserving w.r.t. §4 equivalence (same outcome;
// same dictionary on accepted inputs), except unroll_loops, which bounds
// loop iterations for loop-free targets and therefore defines the reference
// semantics the compiled parser is verified against.
#pragma once

#include "ir/ir.h"
#include "support/result.h"

namespace parserhawk {

/// Remove rules that can never fire, rules whose removal preserves each
/// state's transition function, and states unreachable afterwards.
/// Exactness comes from the Z3 checks in src/analysis.
ParserSpec prune_dead_rules(const ParserSpec& spec);

/// Merge a state whose whole rule list is one default transition into its
/// unique successor (the inverse of Figure 21's R5 state split). Repeats to
/// a fixpoint, so chains of pure-extraction states collapse.
ParserSpec merge_extract_chains(const ParserSpec& spec);

/// Bisimulation quotient: collapse states with identical extraction
/// behavior and equivalent transition functions (partition refinement with
/// Z3 checks). This is what re-rolls a hand-unrolled MPLS loop back into a
/// single looping state for single-table targets (§6.7.1's loop-aware
/// search).
ParserSpec quotient_bisimulation(const ParserSpec& spec);

/// Unroll every cycle up to `depth` iterations for loop-free (pipelined)
/// targets. States in a non-trivial SCC get one copy per iteration;
/// intra-SCC transitions advance to the next copy and fall off to reject
/// after `depth` copies. Fails when depth < 1.
Result<ParserSpec> unroll_loops(const ParserSpec& spec, int depth);

/// Opt2: shrink fields irrelevant to all transition decisions to 1 bit.
/// Used by the global (naive) encoding to cut the symbolic input width;
/// `restore_field_widths` undoes it on the synthesized program's field
/// table.
ParserSpec shrink_irrelevant_fields(const ParserSpec& spec);

/// Opt6: model varbit fields as fixed-size (their maximum width) during
/// synthesis. `restore_varbit_extracts` puts the runtime-length extraction
/// back into a synthesized program.
ParserSpec varbit_to_fixed(const ParserSpec& spec);

/// Convenience: run the style-canonicalization passes (prune, split-key
/// re-merge, extract-chain merge, bisimulation quotient) to a joint
/// fixpoint. After this pass the ±R1..±R5 variants of one program share a
/// single normal form.
ParserSpec canonicalize(const ParserSpec& spec);

}  // namespace parserhawk
