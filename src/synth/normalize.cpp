#include "synth/normalize.h"

#include <z3++.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "analysis/analysis.h"
#include "rewrite/rewrite.h"

namespace parserhawk {

namespace {

/// Rebuild a spec keeping only states flagged in `keep`, remapping ids.
ParserSpec compact(const ParserSpec& spec, const std::vector<bool>& keep) {
  std::vector<int> remap(spec.states.size(), -1);
  ParserSpec out;
  out.name = spec.name;
  out.fields = spec.fields;
  for (std::size_t i = 0; i < spec.states.size(); ++i) {
    if (!keep[i]) continue;
    remap[i] = static_cast<int>(out.states.size());
    out.states.push_back(spec.states[i]);
  }
  for (auto& st : out.states)
    for (auto& r : st.rules)
      if (is_real_state(r.next)) r.next = remap[static_cast<std::size_t>(r.next)];
  out.start = remap[static_cast<std::size_t>(spec.start)];
  return out;
}

/// Count live in-edges of each state (excluding self loops for merge
/// decisions is handled by the caller).
std::vector<int> in_degrees(const ParserSpec& spec) {
  std::vector<int> deg(spec.states.size(), 0);
  for (const auto& st : spec.states)
    for (const auto& r : st.rules)
      if (is_real_state(r.next)) ++deg[static_cast<std::size_t>(r.next)];
  return deg;
}

/// Z3 next-state function of a rule list over a symbolic key, with states
/// mapped through `to_id` (identity when empty).
z3::expr next_fn(z3::context& ctx, const z3::expr& key, const State& st,
                 const std::vector<int>& block_of) {
  auto map_id = [&](int next) {
    if (!is_real_state(next) || block_of.empty()) return next;
    return block_of[static_cast<std::size_t>(next)] + 1000;  // offset: avoid clashing with sentinels
  };
  int kw = st.key_width();
  z3::expr out = ctx.int_val(map_id(kReject));
  for (auto it = st.rules.rbegin(); it != st.rules.rend(); ++it) {
    z3::expr cond = ctx.bool_val(true);
    if (kw > 0) {
      z3::expr v = ctx.bv_val(static_cast<std::uint64_t>(it->value), static_cast<unsigned>(kw));
      z3::expr m = ctx.bv_val(static_cast<std::uint64_t>(it->mask), static_cast<unsigned>(kw));
      cond = ((key ^ v) & m) == ctx.bv_val(0, static_cast<unsigned>(kw));
    } else {
      cond = ctx.bool_val(true);
    }
    out = z3::ite(cond, ctx.int_val(map_id(it->next)), out);
  }
  return out;
}

/// Are the transition functions of s and t equivalent modulo the block
/// partition? Requires identical key structure (checked by the caller).
bool transitions_equivalent(const ParserSpec& spec, int s, int t, const std::vector<int>& block_of) {
  const State& a = spec.state(s);
  const State& b = spec.state(t);
  int kw = a.key_width();
  z3::context ctx;
  z3::solver solver(ctx);
  z3::expr key = kw > 0 ? ctx.bv_const("k", static_cast<unsigned>(kw)) : ctx.bool_const("unused_k");
  solver.add(next_fn(ctx, key, a, block_of) != next_fn(ctx, key, b, block_of));
  return solver.check() == z3::unsat;
}

}  // namespace

ParserSpec prune_dead_rules(const ParserSpec& spec) {
  ParserSpec cur = spec;
  // Iterate: removing one redundant rule can expose another.
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t s = 0; s < cur.states.size() && !changed; ++s) {
      State& st = cur.states[s];
      // Scan from the lowest priority upward so defaults survive when a
      // specific rule duplicates them.
      for (int r = static_cast<int>(st.rules.size()) - 1; r >= 0; --r) {
        if (rule_is_redundant(cur, static_cast<int>(s), r)) {
          st.rules.erase(st.rules.begin() + r);
          changed = true;
          break;
        }
      }
    }
  }
  SpecAnalysis a = analyze(cur);
  return compact(cur, a.state_reachable);
}

ParserSpec merge_extract_chains(const ParserSpec& spec) {
  ParserSpec cur = spec;
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<int> deg = in_degrees(cur);
    for (std::size_t s = 0; s < cur.states.size(); ++s) {
      State& st = cur.states[s];
      if (st.rules.size() != 1 || !st.rules[0].is_default()) continue;
      int next = st.rules[0].next;
      if (!is_real_state(next) || next == static_cast<int>(s)) continue;
      if (next == cur.start) continue;
      if (deg[static_cast<std::size_t>(next)] != 1) continue;
      const State& succ = cur.state(next);
      // Successor keys that look ahead are offset-relative to the cursor
      // after *its own* extracts only when the parts are lookahead; merging
      // keeps the cursor identical at the decision point, so copying is
      // sound for all part kinds.
      st.extracts.insert(st.extracts.end(), succ.extracts.begin(), succ.extracts.end());
      st.key = succ.key;
      st.rules = succ.rules;
      std::vector<bool> keep(cur.states.size(), true);
      keep[static_cast<std::size_t>(next)] = false;
      cur = compact(cur, keep);
      changed = true;
      break;
    }
  }
  return cur;
}

ParserSpec quotient_bisimulation(const ParserSpec& spec) {
  const int n = static_cast<int>(spec.states.size());
  if (n <= 1) return spec;

  // Initial partition by (extracts, key) signature.
  std::vector<int> block(static_cast<std::size_t>(n), 0);
  {
    std::vector<std::pair<std::vector<ExtractOp>, std::vector<KeyPart>>> sigs;
    auto ex_eq = [](const ExtractOp& a, const ExtractOp& b) {
      return a.field == b.field && a.len_field == b.len_field && a.len_scale == b.len_scale &&
             a.len_base == b.len_base;
    };
    for (int s = 0; s < n; ++s) {
      const State& st = spec.state(s);
      int found = -1;
      for (std::size_t b2 = 0; b2 < sigs.size(); ++b2) {
        if (sigs[b2].second == st.key && sigs[b2].first.size() == st.extracts.size() &&
            std::equal(sigs[b2].first.begin(), sigs[b2].first.end(), st.extracts.begin(), ex_eq)) {
          found = static_cast<int>(b2);
          break;
        }
      }
      if (found < 0) {
        found = static_cast<int>(sigs.size());
        sigs.emplace_back(st.extracts, st.key);
      }
      block[static_cast<std::size_t>(s)] = found;
    }
  }

  // Refine: split blocks whose members' transition functions differ.
  for (bool changed = true; changed;) {
    changed = false;
    int nblocks = *std::max_element(block.begin(), block.end()) + 1;
    for (int b = 0; b < nblocks && !changed; ++b) {
      std::vector<int> members;
      for (int s = 0; s < n; ++s)
        if (block[static_cast<std::size_t>(s)] == b) members.push_back(s);
      if (members.size() < 2) continue;
      // Keep the first member; move inequivalent members to a fresh block.
      std::vector<int> moved;
      for (std::size_t i = 1; i < members.size(); ++i)
        if (!transitions_equivalent(spec, members[0], members[i], block)) moved.push_back(members[i]);
      if (!moved.empty() && moved.size() < members.size()) {
        for (int s : moved) block[static_cast<std::size_t>(s)] = nblocks;
        changed = true;
      }
    }
  }

  // Build the quotient: representative = lowest-id member of each block.
  std::vector<int> rep_of_block(static_cast<std::size_t>(n), -1);
  std::vector<bool> keep(static_cast<std::size_t>(n), false);
  for (int s = 0; s < n; ++s) {
    int b = block[static_cast<std::size_t>(s)];
    if (rep_of_block[static_cast<std::size_t>(b)] < 0) {
      rep_of_block[static_cast<std::size_t>(b)] = s;
      keep[static_cast<std::size_t>(s)] = true;
    }
  }
  ParserSpec redirected = spec;
  for (auto& st : redirected.states)
    for (auto& r : st.rules)
      if (is_real_state(r.next))
        r.next = rep_of_block[static_cast<std::size_t>(block[static_cast<std::size_t>(r.next)])];
  redirected.start = rep_of_block[static_cast<std::size_t>(block[static_cast<std::size_t>(spec.start)])];
  return compact(redirected, keep);
}

Result<ParserSpec> unroll_loops(const ParserSpec& spec, int depth) {
  if (depth < 1) return Result<ParserSpec>::err("bad-unroll-depth", "depth must be >= 1");
  SpecAnalysis a = analyze(spec);
  if (!a.has_loop) return spec;

  const int n = static_cast<int>(spec.states.size());

  // Tarjan-free SCC via Kosaraju (n is small).
  std::vector<std::vector<int>> fwd(static_cast<std::size_t>(n)), rev(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s)
    for (const auto& r : spec.states[static_cast<std::size_t>(s)].rules)
      if (is_real_state(r.next)) {
        fwd[static_cast<std::size_t>(s)].push_back(r.next);
        rev[static_cast<std::size_t>(r.next)].push_back(s);
      }
  std::vector<int> order;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::function<void(int)> dfs1 = [&](int u) {
    seen[static_cast<std::size_t>(u)] = true;
    for (int v : fwd[static_cast<std::size_t>(u)])
      if (!seen[static_cast<std::size_t>(v)]) dfs1(v);
    order.push_back(u);
  };
  for (int s = 0; s < n; ++s)
    if (!seen[static_cast<std::size_t>(s)]) dfs1(s);
  std::vector<int> scc(static_cast<std::size_t>(n), -1);
  int nscc = 0;
  std::function<void(int, int)> dfs2 = [&](int u, int c) {
    scc[static_cast<std::size_t>(u)] = c;
    for (int v : rev[static_cast<std::size_t>(u)])
      if (scc[static_cast<std::size_t>(v)] < 0) dfs2(v, c);
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (scc[static_cast<std::size_t>(*it)] < 0) dfs2(*it, nscc++);

  std::vector<bool> in_cycle(static_cast<std::size_t>(n), false);
  std::vector<int> scc_size(static_cast<std::size_t>(nscc), 0);
  for (int s = 0; s < n; ++s) ++scc_size[static_cast<std::size_t>(scc[static_cast<std::size_t>(s)])];
  for (int s = 0; s < n; ++s) {
    if (scc_size[static_cast<std::size_t>(scc[static_cast<std::size_t>(s)])] > 1) in_cycle[static_cast<std::size_t>(s)] = true;
    for (const auto& r : spec.states[static_cast<std::size_t>(s)].rules)
      if (r.next == s) in_cycle[static_cast<std::size_t>(s)] = true;  // self loop
  }

  // New state table: acyclic states keep one copy; cyclic states get
  // `depth` copies.
  ParserSpec out;
  out.name = spec.name;
  out.fields = spec.fields;
  std::map<std::pair<int, int>, int> id_of;  // (orig state, copy) -> new id
  for (int s = 0; s < n; ++s) {
    int copies = in_cycle[static_cast<std::size_t>(s)] ? depth : 1;
    for (int d = 0; d < copies; ++d) {
      id_of[{s, d}] = static_cast<int>(out.states.size());
      State st = spec.states[static_cast<std::size_t>(s)];
      if (copies > 1) st.name += "_u" + std::to_string(d);
      out.states.push_back(std::move(st));
    }
  }
  auto target = [&](int from, int from_copy, int to) -> int {
    if (!is_real_state(to)) return to;
    bool cyc_from = in_cycle[static_cast<std::size_t>(from)];
    bool cyc_to = in_cycle[static_cast<std::size_t>(to)];
    if (!cyc_to) return id_of[{to, 0}];
    if (!cyc_from) return id_of[{to, 0}];
    if (scc[static_cast<std::size_t>(from)] != scc[static_cast<std::size_t>(to)] && !(from == to))
      return id_of[{to, 0}];
    // Intra-SCC (or self-loop) edge: advance one copy; off the end => reject.
    int next_copy = from_copy + 1;
    if (next_copy >= depth) return kReject;
    return id_of[{to, next_copy}];
  };
  for (int s = 0; s < n; ++s) {
    int copies = in_cycle[static_cast<std::size_t>(s)] ? depth : 1;
    for (int d = 0; d < copies; ++d) {
      State& st = out.states[static_cast<std::size_t>(id_of[{s, d}])];
      for (auto& r : st.rules) r.next = target(s, d, r.next);
    }
  }
  out.start = id_of[{spec.start, 0}];
  return out;
}

ParserSpec shrink_irrelevant_fields(const ParserSpec& spec) {
  SpecAnalysis a = analyze(spec);
  ParserSpec out = spec;
  for (std::size_t f = 0; f < out.fields.size(); ++f)
    if (a.irrelevant_field[f] && !out.fields[f].varbit) out.fields[f].width = 1;
  return out;
}

ParserSpec varbit_to_fixed(const ParserSpec& spec) {
  ParserSpec out = spec;
  for (auto& f : out.fields) f.varbit = false;
  for (auto& st : out.states)
    for (auto& ex : st.extracts) {
      ex.len_field = -1;
      ex.len_scale = 0;
      ex.len_base = 0;
    }
  return out;
}

ParserSpec canonicalize(const ParserSpec& spec) {
  ParserSpec cur = spec;
  for (int round = 0; round < 8; ++round) {
    ParserSpec next = quotient_bisimulation(
        merge_extract_chains(rewrite::merge_split_key(prune_dead_rules(cur))));
    if (next.states.size() == cur.states.size()) {
      std::size_t rules_before = 0, rules_after = 0;
      for (const auto& st : cur.states) rules_before += st.rules.size();
      for (const auto& st : next.states) rules_after += st.rules.size();
      if (rules_before == rules_after) return next;
    }
    cur = std::move(next);
  }
  return cur;
}

}  // namespace parserhawk
