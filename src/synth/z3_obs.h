// Shared Z3 query telemetry shim (internal to src/synth).
//
// Every solver interaction in the synthesizer goes through timed_check so
// the metrics registry sees a uniform "z3.<phase>.*" family — queries,
// sat/unsat/unknown/timeout outcomes, and a per-query wall-time histogram —
// and the tracer gets one "z3_check:<phase>" span per query. Phases in use:
// "synth" (CEGIS synthesis queries, chain + global), "verify" (CEGIS
// verification queries), "equiv" (whole-program bounded equivalence),
// "bisim" (the product-automaton sweep's witness and mismatch queries).
//
// With tracing and metrics both disabled this is exactly the bare
// set-timeout + check() the call sites used to inline.
#pragma once

#include <z3++.h>

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "support/timer.h"

namespace parserhawk {

/// Run `solver.check()` with the per-query timeout derived from `deadline`
/// (capped so z3 never sees 0 = unlimited), recording telemetry when
/// observability is on. `deadline == nullptr` skips the timeout knob (used
/// by the equivalence checker, which has no deadline today).
inline z3::check_result timed_check(z3::solver& solver, const Deadline* deadline,
                                    const char* phase) {
  if (deadline != nullptr)
    solver.set("timeout",
               static_cast<unsigned>(std::min(deadline->remaining_sec(), 3.0e5) * 1000));
  if (!obs::metrics_on() && !obs::tracing() && !obs::report_on() && !obs::flight::enabled())
    return solver.check();

  obs::Span span("z3_check");
  span.label(phase);
  Stopwatch watch;
  z3::check_result result = solver.check();
  double sec = watch.elapsed_sec();
  if (obs::report_on())
    obs::report_z3(phase, sec,
                   result == z3::sat ? "sat" : result == z3::unsat ? "unsat" : "unknown");
  if (obs::metrics_on()) {
    std::string p = std::string("z3.") + phase;
    obs::count(p + ".queries");
    obs::observe(p + ".time_sec", sec);
    switch (result) {
      case z3::sat: obs::count(p + ".sat"); break;
      case z3::unsat: obs::count(p + ".unsat"); break;
      default: {
        obs::count(p + ".unknown");
        std::string reason = solver.reason_unknown();
        if (reason.find("timeout") != std::string::npos ||
            reason.find("canceled") != std::string::npos)
          obs::count(p + ".timeout");
        break;
      }
    }
  }
  span.arg("result", std::string(result == z3::sat     ? "sat"
                                 : result == z3::unsat ? "unsat"
                                                       : "unknown"));
  return result;
}

}  // namespace parserhawk
