#include "synth/compiler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <utility>

#include "analysis/analysis.h"
#include "cache/cache.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "postopt/postopt.h"
#include "sim/testgen.h"
#include "support/cancel.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "support/timer.h"
#include "synth/chain_synth.h"
#include "synth/global_synth.h"
#include "synth/normalize.h"
#include "synth/verify.h"

namespace parserhawk {

std::string to_string(CompileStatus status) {
  switch (status) {
    case CompileStatus::Success: return "success";
    case CompileStatus::Rejected: return "rejected";
    case CompileStatus::ResourceExceeded: return "resource-exceeded";
    case CompileStatus::Timeout: return "timeout";
    case CompileStatus::NoSolution: return "no-solution";
    case CompileStatus::InternalError: return "internal-error";
  }
  return "unknown";
}

namespace {

/// One bit of a chain key with its provenance (either a bit of an
/// already-extracted field, or a lookahead bit relative to the state-entry
/// cursor).
struct KeyBit {
  KeyPart::Kind kind;
  int field;  ///< FieldSlice only
  int pos;    ///< bit within the field, or absolute lookahead offset
  friend bool operator==(const KeyBit&, const KeyBit&) = default;
};

/// Translate a spec state's key into chain-key bits evaluated *before* the
/// state's extraction (rows match first, then extract). Returns nullopt
/// when a lookahead-translated bit would exceed the device's window.
std::optional<std::vector<KeyBit>> chain_key_bits(const ParserSpec& spec, const State& st,
                                                  const HwProfile& hw) {
  std::map<int, int> own_offset;  // field -> bit offset from state-entry cursor
  int total = 0;
  for (const auto& ex : st.extracts) {
    own_offset[ex.field] = total;
    total += spec.fields[static_cast<std::size_t>(ex.field)].width;
  }
  std::vector<KeyBit> bits;
  for (const auto& p : st.key) {
    for (int j = 0; j < p.len; ++j) {
      if (p.kind == KeyPart::Kind::FieldSlice) {
        auto it = own_offset.find(p.field);
        if (it == own_offset.end()) {
          bits.push_back(KeyBit{KeyPart::Kind::FieldSlice, p.field, p.lo + j});
        } else {
          int off = it->second + p.lo + j;
          if (off >= hw.lookahead_limit_bits) return std::nullopt;
          bits.push_back(KeyBit{KeyPart::Kind::Lookahead, -1, off});
        }
      } else {
        int off = total + p.lo + j;  // spec lookahead is relative to the post-extract cursor
        if (off >= hw.lookahead_limit_bits) return std::nullopt;
        bits.push_back(KeyBit{KeyPart::Kind::Lookahead, -1, off});
      }
    }
  }
  return bits;
}

/// Figure 21 R5-style split applied when a state's key cannot be evaluated
/// through lookahead: the state becomes extract-state -> match-state, after
/// which all own-field references are plain dictionary reads.
Result<ParserSpec> defer_wide_lookahead(const ParserSpec& spec, const HwProfile& hw) {
  ParserSpec cur = spec;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t s = 0; s < cur.states.size(); ++s) {
      State& st = cur.states[s];
      if (st.extracts.empty() || st.key.empty()) continue;
      if (chain_key_bits(cur, st, hw)) continue;
      // Pure-lookahead keys that are too wide cannot be deferred.
      bool uses_own_field = false;
      for (const auto& p : st.key)
        if (p.kind == KeyPart::Kind::FieldSlice)
          for (const auto& ex : st.extracts)
            if (ex.field == p.field) uses_own_field = true;
      if (!uses_own_field)
        return Result<ParserSpec>::err("lookahead-too-wide",
                                       "state '" + st.name + "' looks ahead past the device window");
      State match;
      match.name = st.name + "_match";
      match.key = st.key;
      match.rules = st.rules;
      st.key.clear();
      st.rules = {Rule{0, 0, static_cast<int>(cur.states.size())}};
      cur.states.push_back(std::move(match));
      changed = true;
      break;
    }
  }
  return cur;
}

/// Lift a rule list over the original chain-key bits onto an extended bit
/// list (identity mapping when the lists are equal).
std::vector<Rule> lift_rules(const std::vector<Rule>& rules, const std::vector<KeyBit>& orig,
                             const std::vector<KeyBit>& ext) {
  std::vector<int> at(orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    auto it = std::find(ext.begin(), ext.end(), orig[i]);
    at[i] = static_cast<int>(it - ext.begin());
  }
  const int ow = static_cast<int>(orig.size());
  const int ew = static_cast<int>(ext.size());
  std::vector<Rule> out;
  for (const auto& r : rules) {
    Rule lifted{0, 0, r.next};
    for (int i = 0; i < ow; ++i) {
      std::uint64_t vb = (r.value >> (ow - 1 - i)) & 1u;
      std::uint64_t mb = (r.mask >> (ow - 1 - i)) & 1u;
      lifted.value |= vb << (ew - 1 - at[static_cast<std::size_t>(i)]);
      lifted.mask |= mb << (ew - 1 - at[static_cast<std::size_t>(i)]);
    }
    out.push_back(lifted);
  }
  return out;
}

/// Compress selected bits (alloc mask over the chain key) into layout
/// KeyParts, merging contiguous runs from the same source.
std::vector<KeyPart> layout_from_alloc(const std::vector<KeyBit>& bits, std::uint64_t alloc) {
  const int kw = static_cast<int>(bits.size());
  std::vector<KeyPart> parts;
  for (int b = 0; b < kw;) {
    if (!((alloc >> (kw - 1 - b)) & 1u)) {
      ++b;
      continue;
    }
    int e = b;
    while (e + 1 < kw && ((alloc >> (kw - 1 - (e + 1))) & 1u) && bits[static_cast<std::size_t>(e + 1)].kind == bits[static_cast<std::size_t>(b)].kind &&
           bits[static_cast<std::size_t>(e + 1)].field == bits[static_cast<std::size_t>(b)].field &&
           bits[static_cast<std::size_t>(e + 1)].pos == bits[static_cast<std::size_t>(e)].pos + 1)
      ++e;
    parts.push_back(KeyPart{bits[static_cast<std::size_t>(b)].kind, bits[static_cast<std::size_t>(b)].field,
                            bits[static_cast<std::size_t>(b)].pos, e - b + 1});
    b = e + 1;
  }
  return parts;
}

/// Pack a kw-bit value down to the bits selected by `alloc` (MSB-first).
std::uint64_t pack_bits(std::uint64_t value, std::uint64_t alloc, int kw) {
  std::uint64_t out = 0;
  for (int b = kw - 1; b >= 0; --b)
    if ((alloc >> b) & 1u) out = (out << 1) | ((value >> b) & 1u);
  return out;
}

/// Candidate layer partitions (orders) of the chain key for splitting.
std::vector<std::vector<std::uint64_t>> split_orders(int kw, int limit, bool all_orders) {
  std::vector<std::uint64_t> chunks;
  for (int b = 0; b < kw; b += limit) {
    int len = std::min(limit, kw - b);
    std::uint64_t m = (len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1))
                      << (kw - b - len);
    chunks.push_back(m);
  }
  std::vector<std::vector<std::uint64_t>> orders;
  std::sort(chunks.begin(), chunks.end());
  if (all_orders && chunks.size() <= 2) {
    do {
      orders.push_back(chunks);
    } while (std::next_permutation(chunks.begin(), chunks.end()));
  } else {
    // Three or more layers: the permutation space explodes; race only the
    // declaration order and its reverse.
    orders.push_back(chunks);
    if (all_orders) {
      std::vector<std::uint64_t> rev(chunks.rbegin(), chunks.rend());
      orders.push_back(rev);
    }
  }
  return orders;
}

struct StatePlan {
  int spec_state;
  std::vector<KeyBit> key_bits;
  ChainSolution solution;
  int layers = 1;
  std::vector<int> aux_counts;
  double search_space_bits = 0;
  /// Opt7 winner provenance, persisted by the synthesis cache so a hit can
  /// replay the deterministic winner selection without re-racing.
  int winner_variant = 0;
  int winner_budget = 1;
  bool winner_restricted = true;
};

CompileResult fail(CompileStatus status, std::string reason, const ParserSpec& reference,
                   const SynthStats& stats) {
  CompileResult r;
  r.status = status;
  r.reason = std::move(reason);
  r.reference = reference;
  r.stats = stats;
  return r;
}

// ---------------------------------------------------------------------------
// Per-state synthesis task: everything solve_state needs, precomputed
// deterministically up front so the work can be handed to a pool worker.
// ---------------------------------------------------------------------------

struct StateTask {
  std::string state_name;
  std::vector<KeyBit> key_bits;
  ChainProblem problem;
  /// Shape family in Opt7 variant order (split orders x aux counts). The
  /// sequential search scans these in order; the parallel race preserves
  /// that order as the variant index, so both pick the same winner.
  std::vector<ChainShape> shapes;
  int lb = 1;   ///< entry-budget lower bound
  int cap = 1;  ///< entry-budget upper bound
  /// Whether the free/candidate-mask improvement pass applies (§6.4.2).
  bool improvement_pass = false;
};

struct StateOutcome {
  bool ok = false;
  CompileStatus fail_status = CompileStatus::NoSolution;
  std::string fail_reason;
  StatePlan plan;
  /// Per-state counters, merged into the compile-wide SynthStats at join.
  SynthStats stats;
};

/// Build the chain problem + shape family for state `s` of `canon`
/// (deterministic; no synthesis happens here).
Result<StateTask> build_state_task(const ParserSpec& canon, std::size_t s, const HwProfile& hw,
                                   const SynthOptions& opts) {
  const State& st = canon.states[s];
  StateTask task;
  task.state_name = st.name;

  auto orig_bits = chain_key_bits(canon, st, hw);
  if (!orig_bits)
    return Result<StateTask>::err("lookahead-too-wide", "state '" + st.name + "'");

  // Opt1 off: widen the candidate key to whole fields / whole windows.
  std::vector<KeyBit> bits = *orig_bits;
  if (!opts.opt1_spec_guided_keys) {
    std::set<std::pair<int, int>> have;
    for (const auto& b : bits) have.insert({b.kind == KeyPart::Kind::Lookahead ? -1 : b.field, b.pos});
    std::vector<KeyBit> extended = bits;
    for (const auto& b : *orig_bits) {
      if (static_cast<int>(extended.size()) >= 64) break;
      if (b.kind == KeyPart::Kind::FieldSlice) {
        for (int j = 0; j < canon.fields[static_cast<std::size_t>(b.field)].width &&
                        static_cast<int>(extended.size()) < 64;
             ++j)
          if (have.insert({b.field, j}).second)
            extended.push_back(KeyBit{KeyPart::Kind::FieldSlice, b.field, j});
      }
    }
    bits = std::move(extended);
  }
  task.key_bits = bits;

  ChainProblem& problem = task.problem;
  problem.spec_state = static_cast<int>(s);
  problem.key_width = static_cast<int>(bits.size());
  problem.semantics = lift_rules(st.rules, *orig_bits, bits);
  std::set<int> targets{kReject};
  for (const auto& r : st.rules) targets.insert(r.next);
  problem.exit_targets.assign(targets.begin(), targets.end());

  // Value candidates (Opt4): the state's own constants plus
  // concatenation-style variants are subsumed by mask conjunction.
  std::vector<std::uint64_t> candidates;
  std::vector<std::uint64_t> mask_candidates;
  if (opts.opt4_constant_synthesis) {
    std::set<std::uint64_t> cs;
    for (const auto& r : problem.semantics)
      if (!r.is_default()) cs.insert(r.value);
    candidates.assign(cs.begin(), cs.end());
    if (candidates.empty()) candidates.push_back(0);
    // §6.4.2: masks that merge two same-target constants. Pairwise XOR
    // covers k-member cube families too (any two antipodal members of a
    // cube produce the cube's mask).
    std::set<std::uint64_t> ms;
    std::map<int, std::vector<Rule>> by_target;
    for (const auto& r : problem.semantics)
      if (!r.is_default()) by_target[r.next].push_back(r);
    for (const auto& [t, rs] : by_target)
      for (std::size_t i = 0; i < rs.size(); ++i)
        for (std::size_t j = i + 1; j < rs.size() && ms.size() < 64; ++j)
          // The mask unifying two ternary entries: keep the bits both
          // care about and agree on.
          ms.insert(rs[i].mask & rs[j].mask & ~(rs[i].value ^ rs[j].value));
    // Masks the specification itself uses (wildcard entries must be
    // reproducible verbatim).
    for (const auto& r : problem.semantics)
      if (!r.is_default()) ms.insert(r.mask);
    mask_candidates.assign(ms.begin(), ms.end());
  }

  // Shape family.
  const int kw = problem.key_width;
  auto push_shape = [&](std::vector<std::uint64_t> masks, int layers, int aux) {
    ChainShape sh;
    sh.alloc_masks = std::move(masks);
    sh.layers = layers;
    sh.aux_counts.assign(static_cast<std::size_t>(layers), aux);
    sh.aux_counts[0] = 1;
    sh.value_candidates = candidates;
    sh.mask_candidates = mask_candidates;
    sh.key_limit = hw.key_limit_bits;
    task.shapes.push_back(std::move(sh));
  };
  if (kw == 0) {
    push_shape({0}, 1, 1);
  } else if (opts.opt5_key_grouping) {
    if (kw <= hw.key_limit_bits) {
      std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
      push_shape({full}, 1, 1);
    } else {
      for (auto& order : split_orders(kw, hw.key_limit_bits, opts.opt7_parallel))
        for (int aux : {1, 2, 4})
          push_shape(order, static_cast<int>(order.size()), aux);
    }
  } else {
    int layers = (kw + hw.key_limit_bits - 1) / hw.key_limit_bits;
    for (int aux : layers > 1 ? std::vector<int>{1, 2, 4} : std::vector<int>{1})
      push_shape({}, layers, aux);  // symbolic masks
  }

  task.lb = std::max<int>(1, static_cast<int>(targets.size()) - (targets.count(kReject) ? 1 : 0));
  int max_aux_total = 0;
  for (const auto& sh : task.shapes)
    max_aux_total = std::max(max_aux_total,
                             std::accumulate(sh.aux_counts.begin(), sh.aux_counts.end(), 0));
  task.cap = static_cast<int>(st.rules.size()) + 1 + 2 * max_aux_total + 2;
  task.improvement_pass = !mask_candidates.empty() || problem.key_width <= 24;
  return task;
}

// ---------------------------------------------------------------------------
// Opt7 portfolio race (§6.7).
// ---------------------------------------------------------------------------

struct AttemptOutcome {
  std::optional<ChainSolution> sol;
  ChainStats cs;
  bool ran = false;
};

/// Race `attempts` (fully configured shapes) on the pool. The winner is the
/// LOWEST index that returned a solution — when attempt i succeeds, only
/// attempts j > i are cancelled, so an attempt that could still beat the
/// current winner always runs to completion. That makes the winner a pure
/// function of the attempt list, independent of thread scheduling, which is
/// what keeps `seed` + `num_threads` fully determining the output program.
/// Flight-recorder breadcrumb for one Opt7 attempt: "v<variant> b=<budget>".
void note_attempt(const std::string& state, int variant, const ChainShape& shape) {
  if (!obs::flight::enabled()) return;
  char detail[obs::flight::kDetailBytes];
  std::snprintf(detail, sizeof(detail), "%s v%d b=%d%s", state.c_str(), variant,
                shape.row_budget, shape.restrict_masks ? " r" : "");
  obs::flight::record(obs::flight::EventKind::Note, "attempt", detail);
}

int race_attempts(ThreadPool& pool, const std::string& state_name, const ChainProblem& problem,
                  const std::vector<ChainShape>& attempts, const Deadline& deadline,
                  std::vector<AttemptOutcome>& out) {
  const int n = static_cast<int>(attempts.size());
  out.assign(static_cast<std::size_t>(n), AttemptOutcome{});
  std::vector<CancelSource> cancels(static_cast<std::size_t>(n));
  // Cancellation-to-stop latency telemetry: when attempt j is cancelled we
  // stamp the monotonic clock; when j's job later returns, the delta is how
  // long the cooperative cancel took to be observed (DESIGN.md §7).
  std::vector<std::int64_t> cancel_ns(static_cast<std::size_t>(n), -1);
  std::mutex mu;  // serializes the cancellation fan-out on SAT
  std::vector<std::function<void()>> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    jobs.push_back([&, i] {
      AttemptOutcome& o = out[static_cast<std::size_t>(i)];
      if (cancels[static_cast<std::size_t>(i)].cancelled()) {
        obs::count("opt7.attempts_skipped");
        return;
      }
      o.ran = true;
      // Attribution context for the deep hooks (timed_check, CEGIS): this
      // job runs one variant's synthesis entirely on this thread.
      obs::ReportStateScope state_scope(state_name);
      obs::ReportVariantScope variant_scope(i);
      note_attempt(state_name, i, attempts[static_cast<std::size_t>(i)]);
      obs::Span span("attempt");
      if (span.active()) {
        span.arg("variant", i);
        span.arg("spec_state", problem.spec_state);
        span.arg("budget", attempts[static_cast<std::size_t>(i)].row_budget);
        span.arg("restrict_masks", attempts[static_cast<std::size_t>(i)].restrict_masks);
      }
      Stopwatch attempt_watch;
      auto sol = synthesize_chain(problem, attempts[static_cast<std::size_t>(i)],
                                  deadline.with_token(cancels[static_cast<std::size_t>(i)].token()),
                                  o.cs);
      obs::report_variant_time(state_name, i, attempt_watch.elapsed_sec());
      span.arg("result", sol ? "sat" : "no-solution");
      if (sol) {
        o.sol = std::move(sol);
        std::lock_guard<std::mutex> lk(mu);
        std::int64_t now = obs::Tracer::get().now_ns();
        for (int j = i + 1; j < n; ++j) {
          cancels[static_cast<std::size_t>(j)].cancel();
          if (cancel_ns[static_cast<std::size_t>(j)] < 0)
            cancel_ns[static_cast<std::size_t>(j)] = now;
        }
      } else if (obs::metrics_on()) {
        std::int64_t cancelled_at;
        {
          std::lock_guard<std::mutex> lk(mu);
          cancelled_at = cancel_ns[static_cast<std::size_t>(i)];
        }
        if (cancelled_at >= 0)
          obs::observe("opt7.cancel_latency_sec",
                       static_cast<double>(obs::Tracer::get().now_ns() - cancelled_at) / 1e9);
      }
    });
  }
  pool.run_all(std::move(jobs));
  for (int i = 0; i < n; ++i)
    if (out[static_cast<std::size_t>(i)].sol) {
      obs::observe("opt7.winner_index", static_cast<double>(i));
      return i;
    }
  return -1;
}

/// Budget-minimizing search for one state. pool == nullptr runs the exact
/// sequential two-pass search (bit-for-bit the num_threads = 1 behavior);
/// otherwise both passes become first-SAT-cancels-losers races with the
/// deterministic lowest-variant-index winner rule.
StateOutcome solve_state(const StateTask& task, const Deadline& deadline, ThreadPool* pool) {
  obs::Span span("solve_state");
  if (span.active()) {
    span.label(task.state_name);
    span.arg("key_width", task.problem.key_width);
    span.arg("shapes", static_cast<int>(task.shapes.size()));
    span.arg("budget_lb", task.lb);
    span.arg("budget_cap", task.cap);
  }
  Stopwatch state_watch;
  obs::ReportStateScope state_scope(task.state_name);
  obs::flight::note("solve_state", task.state_name.c_str());
  StateOutcome out;
  StatePlan& plan = out.plan;
  plan.spec_state = task.problem.spec_state;
  plan.key_bits = task.key_bits;
  bool solved = false;

  auto adopt = [&](const ChainShape& sh, ChainSolution sol, double space_bits, int variant,
                   int budget, bool restricted) {
    plan.solution = std::move(sol);
    plan.layers = sh.layers;
    plan.aux_counts = sh.aux_counts;
    plan.search_space_bits = space_bits;
    plan.winner_variant = variant;
    plan.winner_budget = budget;
    plan.winner_restricted = restricted;
    solved = true;
  };

  // Attribution: one state_result per solve_state call, whatever the exit.
  auto report_done = [&](const char* source) {
    obs::report_state_result(task.state_name, state_watch.elapsed_sec(), source,
                             solved ? plan.winner_variant : -1,
                             solved ? static_cast<double>(plan.winner_budget) : 0,
                             solved && plan.winner_restricted, out.stats.budget_attempts);
    // Dump the flight ring at the point of exhaustion, while this state's
    // span is still open — the dump's "in_progress" then names the state
    // (and any racing variant) instead of just the top-level compile.
    if (std::strcmp(source, "timeout") == 0) obs::flight::auto_dump("deadline_exhausted");
  };

  if (pool == nullptr) {
    // ---- Sequential two-pass budget search (today's behavior). ----
    auto attempt = [&](ChainShape sh, int variant, int budget, bool restricted) -> bool {
      sh.row_budget = budget;
      sh.restrict_masks = restricted;
      ChainStats cs;
      ++out.stats.budget_attempts;
      obs::ReportVariantScope variant_scope(variant);
      note_attempt(task.state_name, variant, sh);
      Stopwatch attempt_watch;
      auto sol = synthesize_chain(task.problem, sh, deadline, cs);
      obs::report_variant_time(task.state_name, variant, attempt_watch.elapsed_sec());
      out.stats.cegis_rounds += cs.cegis_rounds;
      out.stats.synth_queries += cs.synth_queries;
      out.stats.verify_queries += cs.verify_queries;
      if (!sol) return false;
      adopt(sh, std::move(*sol), cs.search_space_bits, variant, budget, restricted);
      return true;
    };
    // Two-pass budget search implementing §6.4.2's mask strategy: the
    // all-ones-mask pass converges almost instantly and yields an entry
    // upper bound B; the free-mask pass then only has to beat B, so it
    // never grinds through UNSAT proofs at budgets it cannot improve.
    int best_budget = task.cap + 1;
    for (int budget = task.lb; budget <= task.cap && !solved; ++budget) {
      for (std::size_t v = 0; v < task.shapes.size(); ++v) {
        if (deadline.expired()) {
          out.fail_status = CompileStatus::Timeout;
          out.fail_reason = "synthesis budget exhausted";
          report_done("timeout");
          return out;
        }
        if (attempt(task.shapes[v], static_cast<int>(v), budget, true)) {
          best_budget = budget;
          break;
        }
      }
    }
    // The improvement pass uses candidate masks when Opt4 is on (cheap
    // at any key width); fully free masks only below 25 bits, where
    // CEGIS still converges. When the all-ones pass found nothing
    // (wildcard-heavy specs), best_budget is cap+1 and this pass covers
    // the whole budget range.
    if (task.improvement_pass) {
      for (int budget = task.lb; budget < best_budget; ++budget) {
        bool improved = false;
        for (std::size_t v = 0; v < task.shapes.size(); ++v) {
          if (deadline.expired()) break;  // keep any restricted-pass solution
          if (attempt(task.shapes[v], static_cast<int>(v), budget, false)) {
            improved = true;
            break;
          }
        }
        if (improved) break;
      }
    }
  } else {
    // ---- Parallel portfolio: the sequential budget ascent, with the
    // shape family raced inside each budget. Racing every (budget, shape)
    // pair at once is a trap: cancellation is cooperative (observed
    // between CEGIS queries), so a speculative high-budget attempt stuck
    // inside one long z3 query holds the whole barrier long after the
    // winner finished. Keeping the race window to one budget's shapes —
    // comparable-cost attempts — bounds that waste, and the ascent order
    // is the sequential one, so the winner is unchanged.
    auto merge = [&](const std::vector<AttemptOutcome>& res) {
      for (const auto& o : res) {
        if (!o.ran) continue;
        ++out.stats.budget_attempts;
        out.stats.cegis_rounds += o.cs.cegis_rounds;
        out.stats.synth_queries += o.cs.synth_queries;
        out.stats.verify_queries += o.cs.verify_queries;
      }
    };
    auto race_budget = [&](int budget, bool restrict_masks) -> bool {
      std::vector<ChainShape> attempts;
      attempts.reserve(task.shapes.size());
      for (ChainShape sh : task.shapes) {
        sh.row_budget = budget;
        sh.restrict_masks = restrict_masks;
        attempts.push_back(std::move(sh));
      }
      std::vector<AttemptOutcome> res;
      int w = race_attempts(*pool, task.state_name, task.problem, attempts, deadline, res);
      merge(res);
      if (w < 0) return false;
      adopt(attempts[static_cast<std::size_t>(w)], std::move(*res[static_cast<std::size_t>(w)].sol),
            res[static_cast<std::size_t>(w)].cs.search_space_bits, w, budget, restrict_masks);
      return true;
    };

    // Restricted pass: budgets ascend exactly as in the sequential search;
    // within a budget the min-shape-index winner is the sequential winner.
    int best_budget = task.cap + 1;
    for (int budget = task.lb; budget <= task.cap && !solved; ++budget) {
      if (deadline.expired()) {
        out.fail_status = CompileStatus::Timeout;
        out.fail_reason = "synthesis budget exhausted";
        report_done("timeout");
        return out;
      }
      if (race_budget(budget, true)) best_budget = budget;
    }
    // Improvement pass over budgets below the restricted upper bound.
    if (task.improvement_pass) {
      for (int budget = task.lb; budget < best_budget; ++budget) {
        if (deadline.expired()) break;  // keep any restricted-pass solution
        if (race_budget(budget, false)) break;
      }
    }
  }

  if (!solved) {
    if (deadline.expired()) {
      out.fail_status = CompileStatus::Timeout;
      out.fail_reason = "synthesis budget exhausted";
      report_done("timeout");
    } else {
      out.fail_status = CompileStatus::NoSolution;
      out.fail_reason =
          "no chain implements state '" + task.state_name + "' within the key-split budget";
      report_done("failed");
    }
    return out;
  }
  out.ok = true;
  report_done(task.problem.key_width == 0 ? "trivial" : "solver");
  return out;
}

/// Result of the final verify phase: the verdict the compiler acts on,
/// which checker produced it, and (when the bisimulation sweep ran) its
/// exact reachable-set report.
struct VerifyRun {
  VerifyOutcome outcome;
  std::string verifier;
  std::optional<verify2::BisimResult> bisim;
};

bool conclusive(const VerifyOutcome& o) { return o.kind != VerifyOutcome::Kind::Inconclusive; }

/// Dispatch the verify phase to the configured checker (DESIGN.md §13).
///
/// Race mode runs both checkers to completion — no cancellation, so every
/// race doubles as a live differential agreement check — concurrently when
/// a pool exists. The *returned* payload is Z3's whenever Z3 is conclusive,
/// making the compile result bit-identical to --verifier=z3 at any thread
/// count; the bisim verdict only decides when Z3 could not. The wall-clock
/// winner (first conclusive by completion order) is published as
/// verify.race.{bisim,z3}_wins but never affects the payload.
VerifyRun run_verify_phase(const ParserSpec& work, const TcamProgram& impl,
                           const VerifyOptions& vo, const SynthOptions& opts, ThreadPool* pool) {
  VerifyRun run;
  if (opts.verifier == VerifierKind::Z3) {
    run.outcome = verify_equivalence(work, impl, vo);
    run.verifier = "z3";
    return run;
  }
  verify2::BisimOptions bo;
  bo.input_bits = vo.input_bits;
  bo.max_iterations_spec = vo.max_iterations_spec;
  bo.max_iterations_impl = vo.max_iterations_impl;
  bo.max_configs = vo.max_configs;
  if (opts.verifier == VerifierKind::Bisim) {
    run.bisim = verify2::check_bisimulation(work, impl, bo);
    run.outcome = run.bisim->outcome;
    run.verifier = "bisim";
    return run;
  }

  VerifyOutcome z3_out;
  verify2::BisimResult bisim_out;
  std::atomic<int> finish_seq{0};
  int z3_rank = 0;
  int bisim_rank = 0;
  auto z3_job = [&] {
    z3_out = verify_equivalence(work, impl, vo);
    z3_rank = ++finish_seq;
  };
  auto bisim_job = [&] {
    bisim_out = verify2::check_bisimulation(work, impl, bo);
    bisim_rank = ++finish_seq;
  };
  if (pool != nullptr) {
    std::vector<std::function<void()>> jobs;
    jobs.emplace_back(z3_job);
    jobs.emplace_back(bisim_job);
    pool->run_all(std::move(jobs));
  } else {
    z3_job();
    bisim_job();
  }

  bool z3_ok = conclusive(z3_out);
  bool bisim_ok = conclusive(bisim_out.outcome);
  if (obs::metrics_on()) {
    obs::count("verify.race.runs");
    if (z3_ok || bisim_ok) {
      obs::count("verify.race.conclusive_verdicts");
      bool bisim_first = bisim_ok && (!z3_ok || bisim_rank < z3_rank);
      obs::count(bisim_first ? "verify.race.bisim_wins" : "verify.race.z3_wins");
    } else {
      obs::count("verify.race.inconclusive");
    }
    if (z3_ok && bisim_ok) {
      obs::count("verify.race.agreement_checks");
      if (z3_out.kind == bisim_out.outcome.kind) obs::count("verify.race.agreements");
    }
  }
  if (z3_ok && bisim_ok && z3_out.kind != bisim_out.outcome.kind)
    obs::flight::note("verify_race_disagreement", work.name.c_str());

  run.bisim = std::move(bisim_out);
  if (z3_ok || !bisim_ok) {
    run.outcome = std::move(z3_out);
    run.verifier = "race:z3";
  } else {
    run.outcome = run.bisim->outcome;
    run.verifier = "race:bisim";
  }
  return run;
}

/// Compile `spec` against the semantics of `reference` (== spec, or spec
/// with loops unrolled — the two Opt7 whole-program variants). `pool` is
/// null for the sequential path.
CompileResult compile_variant(const ParserSpec& spec, const ParserSpec& reference,
                              const HwProfile& hw, const SynthOptions& opts,
                              const Deadline& deadline, ThreadPool* pool,
                              cache::SynthCache* synth_cache) {
  SynthStats stats;

  bool had_varbit = false;
  for (const auto& f : spec.fields) had_varbit |= f.varbit;
  ParserSpec work = had_varbit ? varbit_to_fixed(reference) : reference;
  std::string note;
  if (had_varbit && !opts.opt6_varbit_as_fixed)
    note = "varbit approximated as fixed-size (the naive encoding does not model runtime lengths); ";

  TcamProgram flat;
  if (opts.opt3_preallocate) {
    // ---------------- OPT pipeline: per-state chain synthesis. ----------
    obs::ReportPhase norm_phase("normalize");
    obs::Span norm_span("normalize");
    ParserSpec canon = canonicalize(work);
    auto deferred = defer_wide_lookahead(canon, hw);
    if (!deferred) return fail(CompileStatus::Rejected, deferred.error().to_string(), reference, stats);
    canon = std::move(*deferred);
    norm_span.end();
    norm_phase.end();

    // Deterministic problem construction up front, then solve: states are
    // independent chain problems, so with a pool they synthesize
    // concurrently (and each state's Opt7 variants race internally).
    obs::ReportPhase tasks_phase("build_tasks");
    obs::Span tasks_span("build_state_tasks");
    std::vector<StateTask> tasks;
    for (std::size_t s = 0; s < canon.states.size(); ++s) {
      auto task = build_state_task(canon, s, hw, opts);
      if (!task) return fail(CompileStatus::Rejected, task.error().to_string(), reference, stats);
      tasks.push_back(std::move(*task));
    }
    tasks_span.arg("states", static_cast<int>(tasks.size()));
    tasks_span.end();
    tasks_phase.end();

    // Cache probe: resolve every state's fingerprint up front (sequential,
    // so lookup order — and therefore LRU behavior — is deterministic) and
    // adopt validated hits; only the misses go to the solver. A hit replays
    // the deterministic Opt7 winner, so the program is bit-identical to a
    // cold solve; validate_solution gates every hit so a colliding key or
    // corrupted entry is re-solved, never miscompiled.
    std::vector<StateOutcome> outcomes(tasks.size());
    std::vector<std::string> cache_keys(tasks.size());
    std::vector<bool> from_cache(tasks.size(), false);
    if (synth_cache != nullptr) {
      obs::ReportPhase cache_phase("cache_probe");
      obs::Span cache_span("cache_probe");
      int hits = 0;
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        const StateTask& task = tasks[s];
        if (task.problem.key_width == 0) continue;  // trivial: solving is instant
        Stopwatch lookup_watch;
        cache_keys[s] = cache::plan_fingerprint(task.problem, task.shapes, task.lb, task.cap,
                                                task.improvement_pass, hw)
                            .hex();
        auto hit = synth_cache->lookup(cache_keys[s]);
        bool adopted = false;
        if (hit && !validate_solution(task.problem, hit->solution)) {
          obs::count("cache.rejected_hits");
          hit.reset();
        }
        if (hit) {
          StateOutcome& o = outcomes[s];
          o.ok = true;
          o.plan.spec_state = task.problem.spec_state;
          o.plan.key_bits = task.key_bits;
          o.plan.solution = std::move(hit->solution);
          o.plan.layers = hit->layers;
          o.plan.aux_counts = hit->aux_counts;
          o.plan.search_space_bits = hit->search_space_bits;
          o.plan.winner_variant = hit->winner_variant;
          o.plan.winner_budget = hit->winner_budget;
          o.plan.winner_restricted = hit->winner_restricted;
          from_cache[s] = true;
          adopted = true;
          ++hits;
        }
        double lookup_sec = lookup_watch.elapsed_sec();
        obs::report_cache(task.state_name, adopted, lookup_sec);
        // A hit IS the state's production path: attribute the state's wall
        // time to cache_lookup, not solve_state (test_report.cpp pins this).
        if (adopted) {
          const StatePlan& p = outcomes[s].plan;
          obs::report_state_result(task.state_name, lookup_sec, "cache", p.winner_variant,
                                   static_cast<double>(p.winner_budget), p.winner_restricted, 0);
        }
      }
      if (cache_span.active()) {
        cache_span.arg("states", static_cast<int>(tasks.size()));
        cache_span.arg("hits", hits);
      }
    }

    obs::ReportPhase solve_phase("solve_states");
    obs::Span solve_span("solve_states");
    if (pool != nullptr && tasks.size() > 1) {
      std::vector<std::function<void()>> jobs;
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        if (from_cache[s]) continue;
        jobs.push_back([&, s] { outcomes[s] = solve_state(tasks[s], deadline, pool); });
      }
      pool->run_all(std::move(jobs));
    } else {
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        if (from_cache[s]) continue;
        outcomes[s] = solve_state(tasks[s], deadline, pool);
        if (!outcomes[s].ok) break;  // sequential fail-fast, as before
      }
    }
    solve_span.end();
    solve_phase.end();

    // Persist fresh completed solutions. Deadline-truncated searches are
    // not stored: their winner can depend on wall clock, and the cache
    // must only ever replay results a full search would also produce.
    if (synth_cache != nullptr && !deadline.expired()) {
      obs::ReportPhase store_phase("cache_store");
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        if (from_cache[s] || !outcomes[s].ok || cache_keys[s].empty()) continue;
        const StatePlan& plan = outcomes[s].plan;
        cache::CachedPlan entry;
        entry.solution = plan.solution;
        entry.layers = plan.layers;
        entry.aux_counts = plan.aux_counts;
        entry.search_space_bits = plan.search_space_bits;
        entry.winner_variant = plan.winner_variant;
        entry.winner_budget = plan.winner_budget;
        entry.winner_restricted = plan.winner_restricted;
        synth_cache->store(cache_keys[s], entry);
      }
    }

    // Merge per-state counters (single-threaded join: no atomics needed),
    // then surface the lowest-index failure — state order, never thread
    // order — so failures are deterministic too.
    for (const auto& o : outcomes) {
      stats.cegis_rounds += o.stats.cegis_rounds;
      stats.synth_queries += o.stats.synth_queries;
      stats.verify_queries += o.stats.verify_queries;
      stats.budget_attempts += o.stats.budget_attempts;
    }
    std::vector<StatePlan> plans;
    for (auto& o : outcomes) {
      if (!o.ok) return fail(o.fail_status, o.fail_reason, reference, stats);
      stats.search_space_bits += o.plan.search_space_bits;
      plans.push_back(std::move(o.plan));
    }

    // ---------------- Assemble the flat program. ----------
    obs::ReportPhase assemble_phase("assemble");
    obs::Span assemble_span("assemble");
    flat.name = spec.name;
    flat.fields = canon.fields;
    flat.start_table = 0;
    flat.start_state = canon.start;
    int next_id = static_cast<int>(canon.states.size());
    for (auto& plan : plans) {
      const State& st = canon.states[static_cast<std::size_t>(plan.spec_state)];
      // Ids for aux states: (layer >= 1, aux index) -> fresh id.
      std::map<std::pair<int, int>, int> aux_id;
      for (int l = 1; l < plan.layers; ++l)
        for (int a = 0; a < plan.aux_counts[static_cast<std::size_t>(l)]; ++a)
          aux_id[{l, a}] = next_id++;
      auto state_id = [&](int layer, int aux) {
        return layer == 0 ? plan.spec_state : aux_id[{layer, aux}];
      };
      for (int l = 0; l < plan.layers; ++l) {
        std::uint64_t amask = l < static_cast<int>(plan.solution.alloc_masks.size())
                                  ? plan.solution.alloc_masks[static_cast<std::size_t>(l)]
                                  : 0;
        std::vector<KeyPart> parts = layout_from_alloc(plan.key_bits, amask);
        int aux_count = l == 0 ? 1 : plan.aux_counts[static_cast<std::size_t>(l)];
        for (int a = 0; a < aux_count; ++a)
          if (!parts.empty()) flat.layouts[{0, state_id(l, a)}] = StateLayout{parts};
      }
      const int kw = static_cast<int>(plan.key_bits.size());
      for (const auto& row : plan.solution.rows) {
        TcamEntry e;
        e.table = 0;
        e.state = state_id(row.layer, row.aux);
        e.entry = row.priority;
        std::uint64_t amask = plan.solution.alloc_masks[static_cast<std::size_t>(row.layer)];
        e.value = pack_bits(row.value, amask, kw);
        e.mask = pack_bits(row.mask, amask, kw);
        e.next_table = 0;
        if (row.is_exit) {
          e.next_state = row.exit_target;
          e.extracts = st.extracts;  // exit rows perform the state's extraction
        } else {
          e.next_state = state_id(row.layer + 1, row.next_aux);
        }
        flat.entries.push_back(std::move(e));
      }
    }
    int max_layers = 1;
    for (const auto& plan : plans) max_layers = std::max(max_layers, plan.layers);
    flat.max_iterations = std::max(64, opts.max_iterations * (max_layers + 1) + 8);
    assemble_span.end();
    assemble_phase.end();
  } else {
    // ---------------- Naive global pipeline ("Orig"). ----------
    obs::ReportPhase global_phase("global_synth");
    ParserSpec naive_spec = work;
    ChainStats cs;
    auto result = global_synthesize(naive_spec, hw, opts, deadline, cs);
    stats.cegis_rounds += cs.cegis_rounds;
    stats.synth_queries += cs.synth_queries;
    stats.verify_queries += cs.verify_queries;
    stats.search_space_bits = cs.search_space_bits;
    if (!result) {
      if (deadline.expired())
        return fail(CompileStatus::Timeout, "synthesis budget exhausted", reference, stats);
      return fail(CompileStatus::NoSolution, "global synthesis found no implementation", reference,
                  stats);
    }
    flat = std::move(result->program);
    flat.name = spec.name;
  }

  // ---------------- Post-synthesis optimization. ----------
  obs::ReportPhase postopt_phase("postopt");
  obs::Span postopt_span("postopt");
  TcamProgram optimized = inline_terminal_extracts(flat, hw);
  auto split = split_wide_extracts(optimized, hw);
  if (!split) return fail(CompileStatus::ResourceExceeded, split.error().to_string(), reference, stats);
  optimized = std::move(*split);
  if (hw.pipelined()) {
    auto staged = assign_stages(optimized, hw);
    if (!staged)
      return fail(CompileStatus::ResourceExceeded, staged.error().to_string(), reference, stats);
    optimized = std::move(*staged);
  }

  if (auto v = validate(optimized, hw); !v)
    return fail(CompileStatus::ResourceExceeded, v.error().to_string(), reference, stats);
  postopt_span.end();
  postopt_phase.end();

  // ---------------- Verification (CEGIS verify phase + Figure 22). ------
  std::string verifier_used;
  verify2::ReachSet reach;
  bool reach_valid = false;
  {
    obs::ReportPhase verify_phase("verify");
    Stopwatch verify_watch;
    VerifyOptions vo;
    vo.max_iterations_spec =
        opts.verify_iterations > 0 ? opts.verify_iterations : opts.max_iterations;
    vo.max_iterations_impl = optimized.max_iterations;
    vo.max_configs = opts.verify_max_configs;
    VerifyRun vr = run_verify_phase(work, optimized, vo, opts, pool);
    stats.verify_seconds = verify_watch.elapsed_sec();
    verifier_used = std::move(vr.verifier);
    if (vr.bisim) {
      reach = std::move(vr.bisim->reach);
      reach_valid = true;
    }
    if (vr.outcome.kind == VerifyOutcome::Kind::Counterexample)
      return fail(CompileStatus::InternalError,
                  "verification counterexample: " + vr.outcome.counterexample.to_string(),
                  reference, stats);
    stats.formally_verified = vr.outcome.kind == VerifyOutcome::Kind::Equivalent;
  }

  // ---------------- Restore Opt6/Opt2 transforms & final diff test. -----
  obs::ReportPhase difftest_phase("difftest");
  if (had_varbit) {
    auto restored = restore_varbit_extracts(optimized, reference);
    if (!restored)
      return fail(CompileStatus::Rejected, restored.error().to_string(), reference, stats);
    optimized = std::move(*restored);
  }
  optimized = restore_field_widths(optimized, reference.fields);

  {
    DiffTestOptions dt;
    dt.samples = opts.difftest_samples;
    dt.seed = opts.seed;
    dt.max_iterations = optimized.max_iterations;
    dt.input_bits = analyze(had_varbit ? varbit_to_fixed(reference) : reference,
                            opts.max_iterations)
                        .max_input_bits;
    if (opts.difftest_threads > 0)
      dt.threads = opts.difftest_threads;
    else
      dt.pool = pool;  // reuse the Opt7 pool; nullptr = calling thread
    BatchResult dr = differential_test_batch(reference, optimized, dt);
    if (dr.mismatch)
      return fail(CompileStatus::InternalError,
                  "differential test mismatch on " + dr.mismatch->input.to_string(), reference,
                  stats);
  }

  CompileResult out;
  out.status = CompileStatus::Success;
  out.reason = note;
  out.program = std::move(optimized);
  out.usage = measure(out.program);
  out.reference = reference;
  out.stats = stats;
  out.verifier = std::move(verifier_used);
  out.reach = std::move(reach);
  out.reach_valid = reach_valid;
  return out;
}

/// A failure worth falling through to the unrolled variant for: the
/// loop-aware encoding conclusively cannot implement the spec. Timeout is
/// excluded — it is wall-clock-dependent, and folding it into variant
/// selection would make the output scheduling-sensitive.
bool deterministic_failure(const CompileResult& r) {
  return r.status == CompileStatus::NoSolution || r.status == CompileStatus::ResourceExceeded;
}

/// The whole compile pipeline minus report/post-mortem bookkeeping;
/// compile() wraps it so every exit path flows through one place.
CompileResult compile_toplevel(const ParserSpec& spec, const HwProfile& hw,
                               const SynthOptions& opts, const Deadline& deadline) {
  Stopwatch watch;
  obs::Span span("compile");
  if (span.active()) {
    span.arg("spec", spec.name);
    span.arg("hw", hw.name);
    span.arg("threads", opts.num_threads);
    span.arg("timeout_sec", opts.timeout_sec);
  }
  obs::flight::note("compile", spec.name.c_str());
  SynthStats stats;
  obs::ReportPhase frontend_phase("frontend");

  if (auto v = validate(spec); !v) return fail(CompileStatus::Rejected, v.error().to_string(), spec, stats);
  if (auto v = validate(hw); !v) return fail(CompileStatus::Rejected, v.error().to_string(), spec, stats);

  // Opt7 worker pool. num_threads <= 1 keeps everything on the calling
  // thread through the exact sequential code path.
  std::optional<ThreadPool> pool;
  if (opts.num_threads > 1) pool.emplace(opts.num_threads);
  ThreadPool* p = pool ? &*pool : nullptr;

  // Synthesis cache: an injected instance wins; otherwise any of the
  // enable knobs selects the process-global cache (configuring its disk
  // tier when a directory was given). Off by default — caching never
  // changes the output program, but cold compiles should stay cold unless
  // asked (DESIGN.md §8).
  cache::SynthCache* sc = opts.cache;
  if (sc == nullptr && (opts.cache_enabled || !opts.cache_dir.empty())) {
    sc = &cache::SynthCache::process();
    if (!opts.cache_dir.empty()) sc->set_disk_dir(opts.cache_dir);
  }
  if (span.active()) span.arg("cache", sc != nullptr);

  SpecAnalysis a = analyze(spec, opts.max_iterations);
  frontend_phase.end();
  CompileResult result;
  if (a.has_loop && !hw.allows_loops) {
    // Loop-free target: the unrolled spec IS the reference semantics.
    auto unrolled = unroll_loops(spec, opts.loop_unroll_depth);
    if (!unrolled) return fail(CompileStatus::Rejected, unrolled.error().to_string(), spec, stats);
    result = compile_variant(spec, *unrolled, hw, opts, deadline, p, sc);
  } else if (a.has_loop && hw.allows_loops && opts.opt7_parallel) {
    // Opt7 whole-program race: loop-aware (variant 0) vs unrolled
    // (variant 1). Variant 0 is the deterministic winner whenever it
    // succeeds; variant 1 only wins on a conclusive variant-0 failure, so
    // the outcome is identical at every thread count.
    auto unrolled = unroll_loops(spec, opts.loop_unroll_depth);
    if (p != nullptr && unrolled) {
      CancelSource cancel_alt;
      CompileResult alt;
      std::vector<std::function<void()>> jobs;
      jobs.push_back([&] {
        obs::Span vs("compile_variant");
        vs.arg("variant", "loop-aware");
        result = compile_variant(spec, spec, hw, opts, deadline, p, sc);
        if (result.ok()) cancel_alt.cancel();
      });
      jobs.push_back([&] {
        obs::Span vs("compile_variant");
        vs.arg("variant", "unrolled");
        alt = compile_variant(spec, *unrolled, hw, opts, deadline.with_token(cancel_alt.token()), p, sc);
      });
      p->run_all(std::move(jobs));
      if (!result.ok() && deterministic_failure(result) && alt.ok()) result = std::move(alt);
    } else {
      result = compile_variant(spec, spec, hw, opts, deadline, p, sc);
      if (!result.ok() && deterministic_failure(result) && unrolled) {
        CompileResult alt = compile_variant(spec, *unrolled, hw, opts, deadline, p, sc);
        if (alt.ok()) result = std::move(alt);
      }
    }
  } else {
    result = compile_variant(spec, spec, hw, opts, deadline, p, sc);
  }

  result.stats.seconds = watch.elapsed_sec();

  // Fold the per-compile SynthStats totals onto the metrics registry (one
  // source of truth for sidecar consumers), and flush pool health counters
  // while the pool is still alive.
  if (p != nullptr) p->publish_metrics();
  if (obs::metrics_on()) {
    obs::count("synth.compiles");
    obs::count("synth.status." + to_string(result.status));
    obs::count("synth.cegis_rounds", result.stats.cegis_rounds);
    obs::count("synth.synth_queries", result.stats.synth_queries);
    obs::count("synth.verify_queries", result.stats.verify_queries);
    obs::count("synth.budget_attempts", result.stats.budget_attempts);
    if (result.stats.formally_verified) obs::count("synth.formally_verified");
    obs::observe("synth.compile_sec", result.stats.seconds);
    if (!result.verifier.empty()) obs::observe("synth.verify_sec", result.stats.verify_seconds);
  }
  if (span.active()) {
    span.arg("status", to_string(result.status));
    span.arg("seconds", result.stats.seconds);
  }
  return result;
}

}  // namespace

CompileResult compile(const ParserSpec& spec, const HwProfile& hw, const SynthOptions& opts) {
  Deadline deadline(opts.timeout_sec);
  if (opts.report != nullptr) {
    opts.report->set_context(spec.name, hw.name, opts.num_threads, opts.timeout_sec);
    obs::install_report(opts.report);
  }
  CompileResult result = compile_toplevel(spec, hw, opts, deadline);
  if (opts.report != nullptr) {
    opts.report->set_outcome(to_string(result.status), result.ok() ? "" : result.reason,
                             result.stats.seconds,
                             opts.timeout_sec > 0 ? deadline.remaining_sec() : 0);
    obs::install_report(nullptr);
  }
  // Post-mortem flight dumps: a blown deadline or a verification/difftest
  // failure auto-writes the recent-event ring when a dump path is
  // configured (hawk_compile sets one; library callers opt in via
  // flight::set_auto_dump_path or PH_FLIGHT_DUMP).
  if (result.status == CompileStatus::Timeout)
    obs::flight::auto_dump("deadline_exhausted");
  else if (result.status == CompileStatus::InternalError)
    obs::flight::auto_dump("verification_failure");
  return result;
}

}  // namespace parserhawk
