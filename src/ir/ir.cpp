#include "ir/ir.h"

#include <sstream>

namespace parserhawk {

int ParserSpec::field_index(const std::string& field_name) const {
  for (std::size_t i = 0; i < fields.size(); ++i)
    if (fields[i].name == field_name) return static_cast<int>(i);
  return -1;
}

int ParserSpec::state_index(const std::string& state_name) const {
  for (std::size_t i = 0; i < states.size(); ++i)
    if (states[i].name == state_name) return static_cast<int>(i);
  return -1;
}

namespace {

Result<bool> validate_state(const ParserSpec& spec, int sid) {
  const State& st = spec.state(sid);
  auto err = [&](const std::string& what) {
    return Result<bool>::err("invalid-spec", "state '" + st.name + "': " + what);
  };

  for (const auto& ex : st.extracts) {
    if (ex.field < 0 || ex.field >= static_cast<int>(spec.fields.size()))
      return err("extract references unknown field");
    const Field& f = spec.fields[static_cast<std::size_t>(ex.field)];
    if (f.varbit) {
      if (ex.len_field < 0 || ex.len_field >= static_cast<int>(spec.fields.size()))
        return err("varbit extract of '" + f.name + "' needs a length field");
      if (spec.fields[static_cast<std::size_t>(ex.len_field)].varbit)
        return err("varbit length source must be a fixed-size field");
    } else if (ex.len_field != -1) {
      return err("fixed-size extract of '" + f.name + "' must not carry a length source");
    }
  }

  int kw = 0;
  for (const auto& p : st.key) {
    if (p.len <= 0) return err("key part with non-positive width");
    if (p.kind == KeyPart::Kind::FieldSlice) {
      if (p.field < 0 || p.field >= static_cast<int>(spec.fields.size()))
        return err("key references unknown field");
      const Field& f = spec.fields[static_cast<std::size_t>(p.field)];
      if (f.varbit) return err("varbit field '" + f.name + "' used in a transition key");
      if (p.lo < 0 || p.lo + p.len > f.width)
        return err("key slice out of bounds of field '" + f.name + "'");
    } else {
      if (p.lo < 0) return err("negative lookahead offset");
    }
    kw += p.len;
  }
  if (kw > 64) return err("transition key wider than 64 bits");

  std::uint64_t key_mask = kw == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
  for (const auto& r : st.rules) {
    if ((r.mask & ~key_mask) != 0) return err("rule mask wider than the key");
    if ((r.value & ~key_mask) != 0) return err("rule value wider than the key");
    if (is_real_state(r.next) && r.next >= static_cast<int>(spec.states.size()))
      return err("rule transitions to unknown state");
  }
  if (st.key.empty() && !st.rules.empty()) {
    for (const auto& r : st.rules)
      if (!r.is_default()) return err("non-default rule in a state without a key");
  }
  return true;
}

}  // namespace

Result<bool> validate(const ParserSpec& spec) {
  if (spec.states.empty()) return Result<bool>::err("invalid-spec", "parser has no states");
  if (spec.start < 0 || spec.start >= static_cast<int>(spec.states.size()))
    return Result<bool>::err("invalid-spec", "start state out of range");
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    const Field& f = spec.fields[i];
    if (f.width <= 0)
      return Result<bool>::err("invalid-spec", "field '" + f.name + "' has non-positive width");
    for (std::size_t j = i + 1; j < spec.fields.size(); ++j)
      if (spec.fields[j].name == f.name)
        return Result<bool>::err("invalid-spec", "duplicate field name '" + f.name + "'");
  }
  for (std::size_t i = 0; i < spec.states.size(); ++i) {
    for (std::size_t j = i + 1; j < spec.states.size(); ++j)
      if (spec.states[j].name == spec.states[i].name)
        return Result<bool>::err("invalid-spec", "duplicate state name '" + spec.states[i].name + "'");
    if (auto r = validate_state(spec, static_cast<int>(i)); !r) return r;
  }
  return true;
}

std::string state_name(const ParserSpec& spec, int id) {
  if (id == kAccept) return "accept";
  if (id == kReject) return "reject";
  if (id >= 0 && id < static_cast<int>(spec.states.size()))
    return spec.states[static_cast<std::size_t>(id)].name;
  return "<invalid:" + std::to_string(id) + ">";
}

std::string to_string(const ParserSpec& spec) {
  std::ostringstream os;
  os << "parser " << spec.name << " {\n";
  for (const auto& f : spec.fields) {
    os << "  field " << f.name << " : ";
    if (f.varbit) os << "varbit<" << f.width << ">";
    else os << f.width;
    os << ";\n";
  }
  for (std::size_t i = 0; i < spec.states.size(); ++i) {
    const State& st = spec.states[i];
    os << "  state " << st.name << (static_cast<int>(i) == spec.start ? " /*start*/" : "") << " {\n";
    for (const auto& ex : st.extracts) {
      os << "    extract(" << spec.fields[static_cast<std::size_t>(ex.field)].name;
      if (ex.len_field >= 0)
        os << ", len = " << ex.len_base << " + " << ex.len_scale << " * "
           << spec.fields[static_cast<std::size_t>(ex.len_field)].name;
      os << ");\n";
    }
    if (!st.key.empty()) {
      os << "    transition select(";
      for (std::size_t k = 0; k < st.key.size(); ++k) {
        const KeyPart& p = st.key[k];
        if (k) os << ", ";
        if (p.kind == KeyPart::Kind::Lookahead)
          os << "lookahead<" << p.lo << ", " << p.len << ">";
        else
          os << spec.fields[static_cast<std::size_t>(p.field)].name << "[" << p.lo << ":" << (p.lo + p.len) << "]";
      }
      os << ") {\n";
      for (const auto& r : st.rules) {
        if (r.is_default()) os << "      default";
        else os << "      0x" << std::hex << r.value << " &&& 0x" << r.mask << std::dec;
        os << " : " << state_name(spec, r.next) << ";\n";
      }
      os << "    }\n";
    } else if (!st.rules.empty()) {
      os << "    transition " << state_name(spec, st.rules.front().next) << ";\n";
    } else {
      os << "    transition reject;\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace parserhawk
