#include "ir/builder.h"

#include <stdexcept>

namespace parserhawk {

SpecBuilder& SpecBuilder::field(const std::string& name, int width) {
  spec_.fields.push_back(Field{name, width, false});
  return *this;
}

SpecBuilder& SpecBuilder::varbit_field(const std::string& name, int max_width) {
  spec_.fields.push_back(Field{name, max_width, true});
  return *this;
}

int SpecBuilder::field_or_throw(const std::string& name) const {
  int idx = spec_.field_index(name);
  if (idx < 0) throw std::invalid_argument("SpecBuilder: unknown field '" + name + "'");
  return idx;
}

int SpecBuilder::ensure_state(const std::string& name) {
  for (std::size_t i = 0; i < pending_.size(); ++i)
    if (pending_[i].name == name) return static_cast<int>(i);
  pending_.push_back(PendingState{name, {}, {}, {}});
  return static_cast<int>(pending_.size()) - 1;
}

StateBuilder SpecBuilder::state(const std::string& name) {
  return StateBuilder(this, ensure_state(name));
}

SpecBuilder& SpecBuilder::start(const std::string& name) {
  start_name_ = name;
  return *this;
}

KeyPart SpecBuilder::slice(const std::string& field_name, int lo, int len) const {
  return KeyPart{KeyPart::Kind::FieldSlice, field_or_throw(field_name), lo, len};
}

KeyPart SpecBuilder::whole(const std::string& field_name) const {
  int idx = field_or_throw(field_name);
  return KeyPart{KeyPart::Kind::FieldSlice, idx, 0, spec_.fields[static_cast<std::size_t>(idx)].width};
}

Result<ParserSpec> SpecBuilder::build() const {
  ParserSpec out = spec_;
  out.states.clear();

  auto resolve_next = [&](const std::string& name) -> int {
    if (name == "accept") return kAccept;
    if (name == "reject") return kReject;
    for (std::size_t i = 0; i < pending_.size(); ++i)
      if (pending_[i].name == name) return static_cast<int>(i);
    return kReject - 1;  // marker for "unknown"
  };

  for (const auto& ps : pending_) {
    State st;
    st.name = ps.name;
    st.extracts = ps.extracts;
    st.key = ps.key;
    int kw = st.key_width();
    std::uint64_t full = kw >= 64 ? ~std::uint64_t{0}
                                  : ((std::uint64_t{1} << kw) - 1);
    for (const auto& pr : ps.rules) {
      int next = resolve_next(pr.next);
      if (next == kReject - 1)
        return Result<ParserSpec>::err(
            "invalid-spec", "state '" + ps.name + "' transitions to unknown state '" + pr.next + "'");
      st.rules.push_back(Rule{pr.value, pr.exact ? full : pr.mask, next});
    }
    out.states.push_back(std::move(st));
  }

  out.start = 0;
  if (!start_name_.empty()) {
    out.start = out.state_index(start_name_);
    if (out.start < 0)
      return Result<ParserSpec>::err("invalid-spec", "unknown start state '" + start_name_ + "'");
  }

  if (auto v = validate(out); !v) return Result<ParserSpec>::err(v.error().code, v.error().message);
  return out;
}

StateBuilder& StateBuilder::extract(const std::string& field_name) {
  auto& ps = owner_->pending_[static_cast<std::size_t>(index_)];
  ps.extracts.push_back(ExtractOp{owner_->field_or_throw(field_name), -1, 0, 0});
  return *this;
}

StateBuilder& StateBuilder::extract_var(const std::string& field_name, const std::string& len_field,
                                        int scale, int base) {
  auto& ps = owner_->pending_[static_cast<std::size_t>(index_)];
  ps.extracts.push_back(
      ExtractOp{owner_->field_or_throw(field_name), owner_->field_or_throw(len_field), scale, base});
  return *this;
}

StateBuilder& StateBuilder::select(std::vector<KeyPart> parts) {
  owner_->pending_[static_cast<std::size_t>(index_)].key = std::move(parts);
  return *this;
}

StateBuilder& StateBuilder::when(std::uint64_t value, std::uint64_t mask, const std::string& next) {
  owner_->pending_[static_cast<std::size_t>(index_)].rules.push_back(
      SpecBuilder::PendingRule{value, mask, false, next});
  return *this;
}

StateBuilder& StateBuilder::when_exact(std::uint64_t value, const std::string& next) {
  owner_->pending_[static_cast<std::size_t>(index_)].rules.push_back(
      SpecBuilder::PendingRule{value, 0, true, next});
  return *this;
}

StateBuilder& StateBuilder::otherwise(const std::string& next) {
  owner_->pending_[static_cast<std::size_t>(index_)].rules.push_back(
      SpecBuilder::PendingRule{0, 0, false, next});
  return *this;
}

}  // namespace parserhawk
