// Parse-graph intermediate representation.
//
// A parser specification (§4 of the paper) is a finite state machine:
// each state extracts an ordered list of packet fields, builds a transition
// key out of already-extracted field slices and/or lookahead bits, and
// selects the next state with a prioritized list of ternary (value, mask)
// rules — the same shape a TCAM row matches in hardware.
//
// This IR is the common input to the interpreters (src/sim), the analyzer
// (src/analysis), the synthesizer (src/synth), the baseline compilers
// (src/baseline) and the rewrite engine (src/rewrite).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace parserhawk {

/// Sentinel state ids. Non-negative ids index ParserSpec::states.
inline constexpr int kAccept = -1;
inline constexpr int kReject = -2;

/// True for a real (indexable) state id.
inline bool is_real_state(int id) { return id >= 0; }

/// A packet header field.
struct Field {
  std::string name;
  /// Bit width; for varbit fields this is the maximum width.
  int width = 0;
  /// Size determined at run time (paper's VarField, §6.6 / Opt6).
  bool varbit = false;
};

/// One extraction step inside a state: deposit the next bits of the input
/// into `field`. For varbit fields the runtime length in bits is
/// `len_base + len_scale * value(len_field)` clamped to [0, field.width]
/// (e.g. IPv4 options: base -160, scale 32, len_field = ihl).
struct ExtractOp {
  int field = -1;
  int len_field = -1;  ///< -1 for fixed-size fields
  int len_scale = 0;
  int len_base = 0;
};

/// One component of a state's transition key. Components are concatenated
/// MSB-first in declaration order to form the key value.
struct KeyPart {
  enum class Kind {
    FieldSlice,  ///< bits [lo, lo+len) of an already-extracted field
    Lookahead,   ///< bits [lo, lo+len) ahead of the current cursor
  };
  Kind kind = Kind::FieldSlice;
  int field = -1;  ///< field index (FieldSlice only)
  int lo = 0;      ///< slice start within the field, or lookahead offset
  int len = 0;     ///< slice width in bits

  friend bool operator==(const KeyPart&, const KeyPart&) = default;
};

/// A prioritized ternary transition rule: matches when
/// (key ^ value) & mask == 0. A default (catch-all) rule has mask == 0.
struct Rule {
  std::uint64_t value = 0;
  std::uint64_t mask = 0;
  int next = kReject;

  bool matches(std::uint64_t key) const { return ((key ^ value) & mask) == 0; }
  bool is_default() const { return mask == 0; }

  friend auto operator<=>(const Rule&, const Rule&) = default;
};

/// One parser state.
struct State {
  std::string name;
  std::vector<ExtractOp> extracts;
  std::vector<KeyPart> key;  ///< empty key => only a default rule is meaningful
  std::vector<Rule> rules;   ///< checked in order; no match => reject

  /// Total key width in bits (sum of part widths).
  int key_width() const {
    int w = 0;
    for (const auto& p : key) w += p.len;
    return w;
  }
};

/// A full parser specification.
struct ParserSpec {
  std::string name;
  std::vector<Field> fields;
  std::vector<State> states;
  int start = 0;

  const State& state(int id) const { return states.at(static_cast<std::size_t>(id)); }
  State& state(int id) { return states.at(static_cast<std::size_t>(id)); }

  /// Index of the field with `name`, or -1.
  int field_index(const std::string& field_name) const;
  /// Index of the state with `name`, or -1.
  int state_index(const std::string& state_name) const;
};

/// Structural validation: indices in range, key widths <= 64, slice bounds
/// inside field widths, varbit length sources are fixed fields, rule masks/
/// values fit the key width, start state exists. Deeper semantic checks
/// (key fields extracted before use, reachability) live in src/analysis.
Result<bool> validate(const ParserSpec& spec);

/// Human-readable dump (round-trips through the .hawk front-end grammar).
std::string to_string(const ParserSpec& spec);

/// Name for a state id including sentinels ("accept"/"reject").
std::string state_name(const ParserSpec& spec, int id);

}  // namespace parserhawk
