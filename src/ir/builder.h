// SpecBuilder: fluent construction of ParserSpec programs.
//
// Benchmarks, tests and the rewrite engine build parse graphs
// programmatically; the builder resolves field/state names lazily so states
// can transition to states declared later (forward references), exactly as
// in P4 source order.
//
//   SpecBuilder b("parse_ethernet");
//   b.field("etherType", 16);
//   b.state("start")
//       .extract("etherType")
//       .select({field_slice(b, "etherType", 0, 16)})
//       .when(0x0800, 0xffff, "parse_ipv4")
//       .otherwise("accept");
//   ParserSpec spec = b.build().value();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/result.h"

namespace parserhawk {

class SpecBuilder;

/// Builder handle for one state; returned by SpecBuilder::state().
class StateBuilder {
 public:
  /// Append a fixed-size extract of `field_name`.
  StateBuilder& extract(const std::string& field_name);

  /// Append a varbit extract whose runtime bit length is
  /// `base + scale * value(len_field)`.
  StateBuilder& extract_var(const std::string& field_name, const std::string& len_field,
                            int scale, int base);

  /// Set the transition key (concatenation of parts, MSB-first).
  StateBuilder& select(std::vector<KeyPart> parts);

  /// Add a ternary rule: match when (key ^ value) & mask == 0.
  /// `next` is a state name, "accept" or "reject".
  StateBuilder& when(std::uint64_t value, std::uint64_t mask, const std::string& next);

  /// Add an exact-match rule (mask = all ones over the key width).
  StateBuilder& when_exact(std::uint64_t value, const std::string& next);

  /// Add the catch-all default rule (mask 0). Also used for keyless states.
  StateBuilder& otherwise(const std::string& next);

 private:
  friend class SpecBuilder;
  StateBuilder(SpecBuilder* owner, int index) : owner_(owner), index_(index) {}
  SpecBuilder* owner_;
  int index_;
};

class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name) { spec_.name = std::move(name); }

  /// Declare a fixed-width field.
  SpecBuilder& field(const std::string& name, int width);

  /// Declare a varbit field with the given maximum width.
  SpecBuilder& varbit_field(const std::string& name, int max_width);

  /// Declare (or get) the state `name`. The first declared state is the
  /// start state unless start() overrides it.
  StateBuilder state(const std::string& name);

  /// Override the start state.
  SpecBuilder& start(const std::string& name);

  /// Resolve all name references and validate. Returns the finished spec or
  /// a diagnostic (unknown names, structural violations).
  Result<ParserSpec> build() const;

  /// Key-part helpers (free-function style, bound to this builder's fields).
  KeyPart slice(const std::string& field_name, int lo, int len) const;
  KeyPart whole(const std::string& field_name) const;
  static KeyPart lookahead(int offset, int len) {
    return KeyPart{KeyPart::Kind::Lookahead, -1, offset, len};
  }

 private:
  friend class StateBuilder;

  struct PendingRule {
    std::uint64_t value;
    std::uint64_t mask;
    bool exact;  ///< mask recomputed to all-ones at build time
    std::string next;
  };
  struct PendingState {
    std::string name;
    std::vector<ExtractOp> extracts;
    std::vector<KeyPart> key;
    std::vector<PendingRule> rules;
  };

  int field_or_throw(const std::string& name) const;
  int ensure_state(const std::string& name);

  ParserSpec spec_;                    // fields filled eagerly, states at build()
  std::vector<PendingState> pending_;  // states with unresolved next-names
  std::string start_name_;
};

}  // namespace parserhawk
