// Post-synthesis optimization (§5.3).
//
// The synthesis phase deliberately works on a restricted implementation
// shape (one extraction bundle per row, flat single-table layout, fixed
// field widths). These passes lift the result onto real hardware:
//
//  * inline_terminal_extracts — the paper's "recursively merge parser
//    states that do field extraction and have only 1 default state
//    transition rule with their adjacent states". A state whose whole
//    behavior is one unconditional extract-and-go row is folded into every
//    row that targets it, deleting one TCAM entry per such state (and one
//    pipeline stage on pipelined devices).
//  * split_wide_extracts — a row that extracts more bits than the device's
//    extraction-length limit is split into a chain of extraction rows
//    ("divide a parser state that extracts a large-size packet field into
//    multiple ones").
//  * assign_stages — place states of a single-table program into pipeline
//    stages for pipelined devices: longest-path leveling, strictly-forward
//    transitions, per-stage entry capacity with row spilling (a state with
//    too many rows continues into the next stage through a fall-through
//    default row).
//  * restore_varbit_extracts / restore_field_widths — invert Opt6/Opt2.
#pragma once

#include "hw/profile.h"
#include "ir/ir.h"
#include "support/result.h"
#include "tcam/tcam.h"

namespace parserhawk {

/// Fold single-row unconditional extract states into their predecessors'
/// rows, respecting the device's extraction-length limit. Runs to a
/// fixpoint. The start state is never folded (it has no predecessor).
TcamProgram inline_terminal_extracts(const TcamProgram& prog, const HwProfile& profile);

/// Split rows whose extract set exceeds the extraction-length limit into a
/// chain of rows across fresh states (field-granular: fails if one field is
/// wider than the limit).
Result<TcamProgram> split_wide_extracts(const TcamProgram& prog, const HwProfile& profile);

/// Assign pipeline stages to a flat (all table-0) program for a pipelined
/// device: ASAP leveling + capacity legalization + row spilling. Fails on
/// cyclic programs ("parser-loop") and when more than profile.stage_limit
/// stages would be needed ("too-many-stages").
Result<TcamProgram> assign_stages(const TcamProgram& prog, const HwProfile& profile);

/// Opt6 inverse: re-attach runtime-length extraction for fields that are
/// varbit in `original`. Fails if a varbit field is extracted with two
/// different length formulas in the original spec.
Result<TcamProgram> restore_varbit_extracts(const TcamProgram& prog, const ParserSpec& original);

/// Opt2 inverse: restore original field widths (the synthesized rows only
/// ever matched on relevant bits, which are unaffected).
TcamProgram restore_field_widths(const TcamProgram& prog, const std::vector<Field>& original_fields);

}  // namespace parserhawk
