#include "postopt/postopt.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace parserhawk {

namespace {

int extract_bits(const TcamProgram& prog, const std::vector<ExtractOp>& extracts) {
  int bits = 0;
  for (const auto& ex : extracts) bits += prog.fields.at(static_cast<std::size_t>(ex.field)).width;
  return bits;
}

/// Renumber entry priorities within each (table, state) to 0..k-1
/// preserving order.
void compact_priorities(TcamProgram& prog) {
  std::map<std::pair<int, int>, int> counter;
  std::stable_sort(prog.entries.begin(), prog.entries.end(), [](const TcamEntry& a, const TcamEntry& b) {
    return std::tie(a.table, a.state, a.entry) < std::tie(b.table, b.state, b.entry);
  });
  for (auto& e : prog.entries) e.entry = counter[{e.table, e.state}]++;
}

}  // namespace

TcamProgram inline_terminal_extracts(const TcamProgram& prog, const HwProfile& profile) {
  TcamProgram cur = prog;
  for (bool changed = true; changed;) {
    changed = false;
    // Find a candidate: exactly one row, unconditional, extracting state.
    std::map<std::pair<int, int>, std::vector<std::size_t>> rows_by_state;
    for (std::size_t i = 0; i < cur.entries.size(); ++i)
      rows_by_state[{cur.entries[i].table, cur.entries[i].state}].push_back(i);

    for (const auto& [loc, rows] : rows_by_state) {
      if (rows.size() != 1) continue;
      const TcamEntry victim = cur.entries[rows[0]];
      if (victim.mask != 0) continue;
      if (victim.extracts.empty()) continue;  // nothing to inline; leave for dead-state cleanup
      if (loc == std::make_pair(cur.start_table, cur.start_state)) continue;
      if (victim.next_table == loc.first && victim.next_state == loc.second) continue;  // self loop

      // All predecessors must absorb the extracts within the device limit.
      std::vector<std::size_t> preds;
      bool ok = true;
      for (std::size_t i = 0; i < cur.entries.size(); ++i) {
        if (i == rows[0]) continue;
        const TcamEntry& e = cur.entries[i];
        if (e.next_table == loc.first && e.next_state == loc.second) {
          std::vector<ExtractOp> merged = e.extracts;
          merged.insert(merged.end(), victim.extracts.begin(), victim.extracts.end());
          if (extract_bits(cur, merged) > profile.extract_limit_bits) {
            ok = false;
            break;
          }
          preds.push_back(i);
        }
      }
      if (!ok) continue;

      for (std::size_t i : preds) {
        TcamEntry& e = cur.entries[i];
        e.extracts.insert(e.extracts.end(), victim.extracts.begin(), victim.extracts.end());
        e.next_table = victim.next_table;
        e.next_state = victim.next_state;
      }
      cur.entries.erase(cur.entries.begin() + static_cast<std::ptrdiff_t>(rows[0]));
      cur.layouts.erase(loc);
      changed = true;
      break;  // indices shifted; restart the scan
    }
  }
  compact_priorities(cur);
  return cur;
}

Result<TcamProgram> split_wide_extracts(const TcamProgram& prog, const HwProfile& profile) {
  TcamProgram cur = prog;
  // Fresh state ids start above everything in use.
  int next_state_id = 0;
  for (const auto& e : cur.entries) next_state_id = std::max({next_state_id, e.state + 1, e.next_state + 1});

  std::vector<TcamEntry> added;
  for (auto& e : cur.entries) {
    if (extract_bits(cur, e.extracts) <= profile.extract_limit_bits) continue;
    // Greedily take whole fields into per-row chunks.
    std::vector<std::vector<ExtractOp>> chunks(1);
    int used = 0;
    for (const auto& ex : e.extracts) {
      int w = cur.fields.at(static_cast<std::size_t>(ex.field)).width;
      if (w > profile.extract_limit_bits)
        return Result<TcamProgram>::err(
            "extract-too-wide", "field '" + cur.fields[static_cast<std::size_t>(ex.field)].name +
                                    "' is wider than the per-entry extraction limit");
      if (used + w > profile.extract_limit_bits) {
        chunks.emplace_back();
        used = 0;
      }
      chunks.back().push_back(ex);
      used += w;
    }
    // Row keeps the first chunk and continues into fresh pass-through
    // states for the rest; the chain is built back-to-front.
    int next_t = e.next_table;
    int next_s = e.next_state;
    for (std::size_t c = chunks.size() - 1; c >= 1; --c) {
      int sid = next_state_id++;
      TcamEntry cont;
      cont.table = e.table;  // flat program: stage assignment comes later
      cont.state = sid;
      cont.entry = 0;
      cont.mask = 0;
      cont.extracts = chunks[c];
      cont.next_table = next_t;
      cont.next_state = next_s;
      added.push_back(cont);
      next_t = cont.table;
      next_s = sid;
    }
    e.extracts = chunks[0];
    e.next_table = next_t;
    e.next_state = next_s;
  }
  cur.entries.insert(cur.entries.end(), added.begin(), added.end());
  compact_priorities(cur);
  return cur;
}

Result<TcamProgram> assign_stages(const TcamProgram& prog, const HwProfile& profile) {
  TcamProgram cur = prog;

  // Collect states and edges of the (flat) program.
  std::set<int> states;
  for (const auto& e : cur.entries) states.insert(e.state);
  states.insert(cur.start_state);

  // --- Row spilling: a state with more rows than a stage can hold
  // continues into the next state through a fall-through default row. ---
  int next_state_id = 0;
  for (const auto& e : cur.entries) next_state_id = std::max({next_state_id, e.state + 1, e.next_state + 1});
  for (bool changed = true; changed;) {
    changed = false;
    std::map<int, std::vector<std::size_t>> rows_of;
    for (std::size_t i = 0; i < cur.entries.size(); ++i) rows_of[cur.entries[i].state].push_back(i);
    for (auto& [state, rows] : rows_of) {
      if (static_cast<int>(rows.size()) <= profile.tcam_entry_limit) continue;
      std::sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
        return cur.entries[a].entry < cur.entries[b].entry;
      });
      int keep = profile.tcam_entry_limit - 1;  // one slot for the fall-through
      int cont_id = next_state_id++;
      for (std::size_t i = static_cast<std::size_t>(keep); i < rows.size(); ++i)
        cur.entries[rows[i]].state = cont_id;
      TcamEntry fall;
      fall.table = 0;
      fall.state = state;
      fall.entry = 1 << 20;  // lowest priority; compacted below
      fall.mask = 0;
      fall.next_table = 0;
      fall.next_state = cont_id;
      cur.entries.push_back(fall);
      // The continuation matches on the same key composition.
      if (auto it = cur.layouts.find({0, state}); it != cur.layouts.end())
        cur.layouts[{0, cont_id}] = it->second;
      compact_priorities(cur);
      changed = true;
      break;
    }
  }

  // --- Longest-path leveling (rejects cycles). ---
  states.clear();
  std::map<int, std::vector<int>> succ;
  for (const auto& e : cur.entries) {
    states.insert(e.state);
    if (is_real_state(e.next_state)) succ[e.state].push_back(e.next_state);
  }
  states.insert(cur.start_state);

  std::map<int, int> level;
  {
    std::map<int, int> mark;  // 0 white, 1 grey, 2 black
    bool cyclic = false;
    std::function<int(int)> depth = [&](int s) -> int {
      if (mark[s] == 1) {
        cyclic = true;
        return 0;
      }
      auto it = level.find(s);
      if (mark[s] == 2 && it != level.end()) return it->second;
      mark[s] = 1;
      int d = 0;
      for (int t : succ[s]) d = std::max(d, depth(t) + 1);
      mark[s] = 2;
      level[s] = d;
      return d;
    };
    for (int s : states) depth(s);
    if (cyclic)
      return Result<TcamProgram>::err("parser-loop",
                                      "program has a cycle; unroll loops before pipelining");
  }
  // Convert "height" to ASAP stage index.
  std::map<int, int> stage;
  {
    std::function<void(int, int)> place = [&](int s, int at) {
      auto it = stage.find(s);
      if (it != stage.end() && it->second >= at) return;
      stage[s] = at;
      for (int t : succ[s]) place(t, at + 1);
    };
    place(cur.start_state, 0);
    for (int s : states)
      if (!stage.count(s)) place(s, 0);  // unreachable leftovers
  }

  // --- Capacity legalization: per-stage entry budget. ---
  std::map<int, int> rows_per_state;
  for (const auto& e : cur.entries) ++rows_per_state[e.state];
  for (int round = 0; round < profile.stage_limit * static_cast<int>(states.size()) + 8; ++round) {
    std::map<int, int> load;
    for (int s : states) load[stage[s]] += rows_per_state[s];
    int bad_stage = -1;
    for (const auto& [st, n] : load)
      if (n > profile.tcam_entry_limit) {
        bad_stage = st;
        break;
      }
    if (bad_stage < 0) break;
    // Push the smallest non-start state of the stage one stage later.
    int victim = -1;
    for (int s : states)
      if (stage[s] == bad_stage && s != cur.start_state &&
          (victim < 0 || rows_per_state[s] < rows_per_state[victim]))
        victim = s;
    if (victim < 0)
      return Result<TcamProgram>::err("too-many-tcam", "a single stage cannot hold the start state's rows");
    std::function<void(int, int)> push = [&](int s, int at) {
      if (stage[s] >= at) return;
      stage[s] = at;
      for (int t : succ[s]) push(t, at + 1);
    };
    push(victim, bad_stage + 1);
  }

  int max_stage = 0;
  for (int s : states) max_stage = std::max(max_stage, stage[s]);
  if (max_stage >= profile.stage_limit)
    return Result<TcamProgram>::err("too-many-stages",
                                    "needs " + std::to_string(max_stage + 1) + " stages, device has " +
                                        std::to_string(profile.stage_limit));

  // --- Apply. ---
  std::map<std::pair<int, int>, StateLayout> new_layouts;
  for (const auto& [key, layout] : cur.layouts) new_layouts[{stage[key.second], key.second}] = layout;
  cur.layouts = std::move(new_layouts);
  for (auto& e : cur.entries) {
    e.table = stage[e.state];
    if (is_real_state(e.next_state)) e.next_table = stage[e.next_state];
  }
  cur.start_table = stage[cur.start_state];
  compact_priorities(cur);
  return cur;
}

Result<TcamProgram> restore_varbit_extracts(const TcamProgram& prog, const ParserSpec& original) {
  TcamProgram cur = prog;
  std::map<int, ExtractOp> varbit_ops;
  for (const auto& st : original.states)
    for (const auto& ex : st.extracts) {
      if (ex.len_field < 0) continue;
      auto it = varbit_ops.find(ex.field);
      if (it != varbit_ops.end() &&
          (it->second.len_field != ex.len_field || it->second.len_scale != ex.len_scale ||
           it->second.len_base != ex.len_base))
        return Result<TcamProgram>::err(
            "varbit-ambiguous", "field '" + original.fields[static_cast<std::size_t>(ex.field)].name +
                                    "' extracted with two different length formulas");
      varbit_ops[ex.field] = ex;
    }
  for (std::size_t f = 0; f < original.fields.size() && f < cur.fields.size(); ++f)
    cur.fields[f].varbit = original.fields[f].varbit;
  for (auto& e : cur.entries)
    for (auto& ex : e.extracts) {
      auto it = varbit_ops.find(ex.field);
      if (it != varbit_ops.end()) ex = it->second;
    }
  return cur;
}

TcamProgram restore_field_widths(const TcamProgram& prog, const std::vector<Field>& original_fields) {
  TcamProgram cur = prog;
  for (std::size_t f = 0; f < original_fields.size() && f < cur.fields.size(); ++f)
    cur.fields[f].width = original_fields[f].width;
  return cur;
}

}  // namespace parserhawk
