#include "cache/cache.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace parserhawk::cache {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

Fingerprint plan_fingerprint(const ChainProblem& problem, const std::vector<ChainShape>& shapes,
                             int budget_lb, int budget_cap, bool improvement_pass,
                             const HwProfile& hw) {
  Fingerprint fp;
  fp.add_int(kCacheEpoch);

  // Device limits (name excluded: profiles with equal limits are the same
  // search space).
  fp.add_int(static_cast<int>(hw.arch));
  fp.add_int(hw.key_limit_bits);
  fp.add_int(hw.tcam_entry_limit);
  fp.add_int(hw.lookahead_limit_bits);
  fp.add_int(hw.stage_limit);
  fp.add_int(hw.extract_limit_bits);
  fp.add_bool(hw.allows_loops);

  // The semantic problem. spec_state and key-bit provenance are excluded
  // on purpose: the solution is a pure function of the abstract key space.
  fp.add_int(problem.key_width);
  fp.add_u64(problem.semantics.size());
  for (const auto& r : problem.semantics) {
    fp.add_u64(r.value);
    fp.add_u64(r.mask);
    fp.add_int(r.next);
  }
  fp.add_u64(problem.exit_targets.size());
  for (int t : problem.exit_targets) fp.add_int(t);

  // The full Opt7 shape family in race order — the deterministic winner is
  // a function of this list, so any change to it is a different key.
  fp.add_u64(shapes.size());
  for (const auto& sh : shapes) {
    fp.add_u64(sh.alloc_masks.size());
    for (std::uint64_t m : sh.alloc_masks) fp.add_u64(m);
    fp.add_int(sh.layers);
    fp.add_u64(sh.aux_counts.size());
    for (int a : sh.aux_counts) fp.add_int(a);
    fp.add_u64(sh.value_candidates.size());
    for (std::uint64_t c : sh.value_candidates) fp.add_u64(c);
    fp.add_u64(sh.mask_candidates.size());
    for (std::uint64_t m : sh.mask_candidates) fp.add_u64(m);
    fp.add_int(sh.key_limit);
    fp.add_bool(sh.restrict_masks);
  }

  fp.add_int(budget_lb);
  fp.add_int(budget_cap);
  fp.add_bool(improvement_pass);
  return fp;
}

// ---------------------------------------------------------------------------
// Entry serialization
// ---------------------------------------------------------------------------

namespace {

/// Checksum lane over the payload text (everything before the "sum" line).
std::string payload_sum(const std::string& payload) {
  Fingerprint fp;
  fp.add_string(payload);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp.lo()));
  return buf;
}

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace

std::string encode_plan(const CachedPlan& plan) {
  std::ostringstream out;
  out << "phcache " << kCacheEpoch << "\n";
  out << "winner " << plan.winner_variant << " " << plan.winner_budget << " "
      << (plan.winner_restricted ? 1 : 0) << "\n";
  out << "layers " << plan.layers << "\n";
  out << "aux " << plan.aux_counts.size();
  for (int a : plan.aux_counts) out << " " << a;
  out << "\n";
  out << "space " << hex_double(plan.search_space_bits) << "\n";
  out << "alloc " << plan.solution.alloc_masks.size() << std::hex;
  for (std::uint64_t m : plan.solution.alloc_masks) out << " " << m;
  out << std::dec << "\n";
  out << "rows " << plan.solution.rows.size() << "\n";
  for (const auto& r : plan.solution.rows) {
    out << "r " << r.layer << " " << r.aux << " " << r.priority << " " << std::hex << r.value << " "
        << r.mask << std::dec << " " << (r.is_exit ? 1 : 0) << " " << r.exit_target << " "
        << r.next_aux << "\n";
  }
  std::string payload = out.str();
  return payload + "sum " + payload_sum(payload) + "\n";
}

std::optional<CachedPlan> decode_plan(const std::string& text) {
  // Split off and verify the checksum line first: any truncation or bit
  // flip anywhere in the payload fails here before parsing begins. The
  // trailer is matched exactly (trailing newline included), so every
  // strict prefix of a valid entry is rejected.
  auto sum_at = text.rfind("sum ");
  if (sum_at == std::string::npos || sum_at == 0 || text[sum_at - 1] != '\n') return std::nullopt;
  std::string payload = text.substr(0, sum_at);
  if (text.substr(sum_at) != "sum " + payload_sum(payload) + "\n") return std::nullopt;

  std::istringstream in(payload);
  std::string tag;
  CachedPlan plan;
  int epoch = -1;
  std::size_t n = 0;
  int restricted = 0, is_exit = 0;
  std::string space_text;
  if (!(in >> tag >> epoch) || tag != "phcache" || epoch != kCacheEpoch) return std::nullopt;
  if (!(in >> tag >> plan.winner_variant >> plan.winner_budget >> restricted) || tag != "winner")
    return std::nullopt;
  plan.winner_restricted = restricted != 0;
  if (!(in >> tag >> plan.layers) || tag != "layers" || plan.layers < 1 || plan.layers > 64)
    return std::nullopt;
  if (!(in >> tag >> n) || tag != "aux" || n > 64) return std::nullopt;
  plan.aux_counts.resize(n);
  for (auto& a : plan.aux_counts)
    if (!(in >> a) || a < 0 || a > 4096) return std::nullopt;
  if (!(in >> tag >> space_text) || tag != "space") return std::nullopt;
  plan.search_space_bits = std::strtod(space_text.c_str(), nullptr);
  if (!(in >> tag >> n) || tag != "alloc" || n > 64) return std::nullopt;
  plan.solution.alloc_masks.resize(n);
  in >> std::hex;
  for (auto& m : plan.solution.alloc_masks)
    if (!(in >> m)) return std::nullopt;
  in >> std::dec;
  if (!(in >> tag >> n) || tag != "rows" || n > 65536) return std::nullopt;
  plan.solution.rows.resize(n);
  for (auto& r : plan.solution.rows) {
    if (!(in >> tag >> r.layer >> r.aux >> r.priority) || tag != "r") return std::nullopt;
    in >> std::hex;
    if (!(in >> r.value >> r.mask)) return std::nullopt;
    in >> std::dec;
    if (!(in >> is_exit >> r.exit_target >> r.next_aux)) return std::nullopt;
    r.is_exit = is_exit != 0;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// SynthCache
// ---------------------------------------------------------------------------

SynthCache::SynthCache(CacheConfig config) : config_(std::move(config)) {
  if (config_.memory_entries == 0) config_.memory_entries = 1;
}

SynthCache& SynthCache::process() {
  static SynthCache* instance = new SynthCache();  // leaked, like the Tracer
  return *instance;
}

std::string SynthCache::entry_path(const std::string& key) const {
  // Sharded by the first key byte to keep directories small at scale.
  return config_.disk_dir + "/v" + std::to_string(kCacheEpoch) + "/" + key.substr(0, 2) + "/" +
         key + ".phc";
}

std::optional<CachedPlan> SynthCache::lookup(const std::string& key) {
  obs::Span span("cache_lookup");
  std::lock_guard<std::mutex> lk(mu_);

  if (auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.hits;
    obs::count("cache.hits");
    if (span.active()) {
      span.arg("result", "hit");
      span.arg("tier", "memory");
    }
    return it->second->plan;
  }

  if (!config_.disk_dir.empty()) {
    std::error_code ec;
    std::string path = entry_path(key);
    if (fs::exists(path, ec)) {
      std::ifstream f(path, std::ios::binary);
      std::ostringstream buf;
      buf << f.rdbuf();
      if (auto plan = f ? decode_plan(buf.str()) : std::nullopt) {
        // Promote into the memory tier.
        lru_.push_front(Slot{key, *plan});
        index_[key] = lru_.begin();
        while (lru_.size() > config_.memory_entries) {
          index_.erase(lru_.back().key);
          lru_.pop_back();
          ++counters_.evictions;
          obs::count("cache.evictions");
        }
        ++counters_.hits;
        obs::count("cache.hits");
        if (span.active()) {
          span.arg("result", "hit");
          span.arg("tier", "disk");
        }
        return plan;
      }
      // Truncated / bit-flipped / wrong-format entry: drop it and miss.
      ++counters_.corrupt;
      obs::count("cache.corrupt");
      fs::remove(path, ec);
    }
  }

  ++counters_.misses;
  obs::count("cache.misses");
  span.arg("result", "miss");
  return std::nullopt;
}

void SynthCache::store(const std::string& key, const CachedPlan& plan) {
  obs::Span span("cache_store");
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.stores;
  obs::count("cache.stores");

  if (auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->plan = plan;
  } else {
    lru_.push_front(Slot{key, plan});
    index_[key] = lru_.begin();
    while (lru_.size() > config_.memory_entries) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++counters_.evictions;
      obs::count("cache.evictions");
    }
  }

  if (!config_.disk_dir.empty()) {
    std::string text = encode_plan(plan);
    std::string path = entry_path(key);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    // Temp-file + rename so a concurrent reader (another compile against
    // the same PH_CACHE_DIR) never observes a half-written entry.
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    f << text;
    f.close();
    if (f.good()) {
      fs::rename(tmp, path, ec);
      if (!ec) {
        counters_.bytes += static_cast<std::int64_t>(text.size());
        obs::count("cache.bytes", static_cast<std::int64_t>(text.size()));
      }
    }
    if (!f.good() || ec) fs::remove(tmp, ec);
    span.arg("bytes", static_cast<std::int64_t>(text.size()));
  }
}

void SynthCache::clear_memory() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

void SynthCache::set_disk_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lk(mu_);
  config_.disk_dir = dir;
}

CacheCounters SynthCache::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

CacheConfig SynthCache::config() const {
  std::lock_guard<std::mutex> lk(mu_);
  return config_;
}

}  // namespace parserhawk::cache
