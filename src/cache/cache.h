// Content-addressed synthesis cache (DESIGN.md §8).
//
// ParserHawk's CEGIS loop re-solves every per-state chain problem from
// scratch on each invocation, but real workflows (bench suites, IPU/Tofino
// retargeting, spec edits) resubmit mostly-identical sub-problems: after
// canonicalization the ±R1..±R5 style variants of a program share one
// normal form, so their per-state problems are byte-identical. The cache
// keys each solved state by a 128-bit fingerprint of everything that
// determines the search outcome — the normalized chain problem, the full
// Opt7 shape family, the budget range, the device limits and a format
// epoch — and stores the winning rows plus the metadata needed to replay
// the deterministic winner selection (variant index, budget, mask pass).
//
// Two tiers:
//   * in-memory LRU (per process, thread-safe) — hot within a bench run;
//   * on-disk under <dir>/v<epoch>/ — survives processes; entries are
//     checksummed, written via rename, and any truncated/bit-flipped/
//     unparsable file is treated as a miss, never an error.
//
// Safety: a hit is only adopted after chain_synth's validate_solution
// cross-checks the cached rows against the problem semantics, so neither
// a fingerprint collision nor disk corruption can change compiled output;
// tests/test_cache.cpp additionally proves hit/cold equivalence
// row-for-row and bench_cache_warm measures the warm speedup.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/profile.h"
#include "support/fingerprint.h"
#include "synth/chain_synth.h"

namespace parserhawk::cache {

/// Bump on any change to the fingerprint recipe, the serialized entry
/// format, or the synthesis search order (anything that could make an old
/// entry replay a different program). The epoch is hashed into every key
/// and names the on-disk subdirectory, so stale trees are simply ignored.
inline constexpr int kCacheEpoch = 1;

/// The cached outcome of one per-state budget-minimizing search.
struct CachedPlan {
  ChainSolution solution;
  int layers = 1;
  std::vector<int> aux_counts;
  double search_space_bits = 0;
  /// Opt7 replay metadata: which shape variant won, at which row budget,
  /// and in which mask pass (restricted vs free/candidate).
  int winner_variant = 0;
  int winner_budget = 1;
  bool winner_restricted = true;
};

/// Fingerprint of one per-state sub-problem: chain problem semantics, the
/// complete Opt7 shape family in race order, budget bounds, improvement-
/// pass eligibility, the device limits, and kCacheEpoch. Everything
/// synthesize_chain's outcome depends on — and nothing it doesn't (state
/// names and key-bit provenance are excluded, so renamed or re-sliced
/// specs that normalize to the same problem share entries).
Fingerprint plan_fingerprint(const ChainProblem& problem, const std::vector<ChainShape>& shapes,
                             int budget_lb, int budget_cap, bool improvement_pass,
                             const HwProfile& hw);

/// Entry serialization (exposed for tests). `decode_plan` returns nullopt
/// on any truncation, checksum mismatch or parse error.
std::string encode_plan(const CachedPlan& plan);
std::optional<CachedPlan> decode_plan(const std::string& text);

struct CacheConfig {
  /// In-memory LRU capacity in entries.
  std::size_t memory_entries = 1024;
  /// On-disk tier root (entries live in <disk_dir>/v<epoch>/). Empty =
  /// memory-only.
  std::string disk_dir;
};

/// Monotonic counters, mirrored onto the obs metrics registry as
/// cache.{hits,misses,evictions,bytes,corrupt,stores} when metrics are on.
struct CacheCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;  ///< memory-tier LRU evictions
  std::int64_t bytes = 0;      ///< serialized bytes written to disk
  std::int64_t corrupt = 0;    ///< on-disk entries rejected by decode
  std::int64_t stores = 0;
};

class SynthCache {
 public:
  explicit SynthCache(CacheConfig config = {});

  /// Memory tier first, then disk; a disk hit is promoted into memory.
  /// Emits a `cache_lookup` span and hit/miss counters.
  std::optional<CachedPlan> lookup(const std::string& key);

  /// Insert into memory and (when configured) write the disk entry via a
  /// temp file + rename. Emits a `cache_store` span. Idempotent per key.
  void store(const std::string& key, const CachedPlan& plan);

  /// Drop the memory tier (the disk tier is untouched) — test helper and
  /// the bench's "fresh process" simulation.
  void clear_memory();

  /// Point the disk tier somewhere (empty disables it). Safe mid-life;
  /// used by compile() to honor SynthOptions::cache_dir on the process
  /// cache.
  void set_disk_dir(const std::string& dir);

  CacheCounters counters() const;
  CacheConfig config() const;

  /// Process-global cache (leaked, like the obs singletons): memory-only
  /// until some compile() configures a disk dir.
  static SynthCache& process();

 private:
  std::string entry_path(const std::string& key) const;

  mutable std::mutex mu_;
  CacheConfig config_;
  CacheCounters counters_;
  /// LRU: most-recent at front; map values point into the list.
  struct Slot {
    std::string key;
    CachedPlan plan;
  };
  std::list<Slot> lru_;
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
};

}  // namespace parserhawk::cache
