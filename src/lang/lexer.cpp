#include "lang/lexer.h"

#include <cctype>

namespace parserhawk::lang {

std::string to_string(TokKind kind) {
  switch (kind) {
    case TokKind::Identifier: return "identifier";
    case TokKind::Number: return "number";
    case TokKind::LBrace: return "'{'";
    case TokKind::RBrace: return "'}'";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::LBracket: return "'['";
    case TokKind::RBracket: return "']'";
    case TokKind::Less: return "'<'";
    case TokKind::Greater: return "'>'";
    case TokKind::Colon: return "':'";
    case TokKind::Semicolon: return "';'";
    case TokKind::Comma: return "','";
    case TokKind::Equals: return "'='";
    case TokKind::Star: return "'*'";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::MaskOp: return "'&&&'";
    case TokKind::End: return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> tokenize(const std::string& source) {
  std::vector<Token> out;
  int line = 1, column = 1;
  std::size_t i = 0;
  auto fail = [&](const std::string& what) {
    return Result<std::vector<Token>>::err(
        "lex-error", what + " at line " + std::to_string(line) + ", column " + std::to_string(column));
  };
  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance();
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      advance(2);
      bool closed = false;
      while (i + 1 < source.size()) {
        if (source[i] == '*' && source[i + 1] == '/') {
          advance(2);
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) return fail("unterminated block comment");
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = column;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_'))
        advance();
      tok.kind = TokKind::Identifier;
      tok.text = source.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < source.size() && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        base = 16;
        advance(2);
      } else if (c == '0' && i + 1 < source.size() && (source[i + 1] == 'b' || source[i + 1] == 'B')) {
        base = 2;
        advance(2);
      }
      std::uint64_t value = 0;
      bool any = false;
      while (i < source.size()) {
        char d = source[i];
        int digit;
        if (d == '_') {
          advance();
          continue;
        }
        if (d >= '0' && d <= '9') digit = d - '0';
        else if (base == 16 && d >= 'a' && d <= 'f') digit = d - 'a' + 10;
        else if (base == 16 && d >= 'A' && d <= 'F') digit = d - 'A' + 10;
        else break;
        if (digit >= base) return fail("digit out of range for base");
        value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
        any = true;
        advance();
      }
      if (base != 10 && !any) return fail("literal prefix with no digits");
      if (base == 10 && !any) {
        // plain "0"-style literal consumed above? '0' alone lands here
        value = 0;
        any = true;
      }
      tok.kind = TokKind::Number;
      tok.value = value;
      tok.text = source.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '&') {
      if (i + 2 < source.size() && source[i + 1] == '&' && source[i + 2] == '&') {
        advance(3);
        tok.kind = TokKind::MaskOp;
        out.push_back(std::move(tok));
        continue;
      }
      return fail("stray '&' (did you mean '&&&'?)");
    }

    TokKind kind;
    switch (c) {
      case '{': kind = TokKind::LBrace; break;
      case '}': kind = TokKind::RBrace; break;
      case '(': kind = TokKind::LParen; break;
      case ')': kind = TokKind::RParen; break;
      case '[': kind = TokKind::LBracket; break;
      case ']': kind = TokKind::RBracket; break;
      case '<': kind = TokKind::Less; break;
      case '>': kind = TokKind::Greater; break;
      case ':': kind = TokKind::Colon; break;
      case ';': kind = TokKind::Semicolon; break;
      case ',': kind = TokKind::Comma; break;
      case '=': kind = TokKind::Equals; break;
      case '*': kind = TokKind::Star; break;
      case '+': kind = TokKind::Plus; break;
      case '-': kind = TokKind::Minus; break;
      default: return fail(std::string("unexpected character '") + c + "'");
    }
    advance();
    tok.kind = kind;
    out.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokKind::End;
  end.line = line;
  end.column = column;
  out.push_back(std::move(end));
  return out;
}

}  // namespace parserhawk::lang
