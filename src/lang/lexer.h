// Lexer for the hawk parser-description language: identifiers, numeric
// literals (decimal / 0x / 0b), the punctuation the grammar uses, and the
// `&&&` ternary-mask operator. Tracks line/column for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace parserhawk::lang {

enum class TokKind {
  Identifier,
  Number,
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Less,
  Greater,
  Colon,
  Semicolon,
  Comma,
  Equals,
  Star,
  Plus,
  Minus,
  MaskOp,  ///< "&&&"
  End,
};

std::string to_string(TokKind kind);

struct Token {
  TokKind kind = TokKind::End;
  std::string text;          ///< identifier spelling / literal spelling
  std::uint64_t value = 0;   ///< numeric value (Number only)
  int line = 1;
  int column = 1;

  std::string location() const {
    return "line " + std::to_string(line) + ", column " + std::to_string(column);
  }
};

/// Tokenize; fails on unterminated comments, malformed literals or stray
/// characters.
Result<std::vector<Token>> tokenize(const std::string& source);

}  // namespace parserhawk::lang
