#include <optional>

#include "lang/lang.h"
#include "lang/lexer.h"
#include "ir/builder.h"

namespace parserhawk::lang {

namespace {

/// Recursive-descent parser over the token stream. All methods return
/// false after setting `error_`; the public entry point converts that into
/// a Result.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParserSpec> run() {
    if (!parse_parser()) return Result<ParserSpec>::err("parse-error", error_);
    auto spec = builder_->build();
    if (!spec) return Result<ParserSpec>::err(spec.error().code, spec.error().message);
    if (spec->state_index("start") >= 0) {
      SpecBuilder copy = *builder_;
      copy.start("start");
      return copy.build();
    }
    return spec;
  }

 private:
  const Token& peek(int ahead = 0) const {
    std::size_t at = std::min(pos_ + static_cast<std::size_t>(ahead), tokens_.size() - 1);
    return tokens_[at];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(TokKind kind) const { return peek().kind == kind; }
  bool match(TokKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  bool fail(const std::string& what) {
    if (error_.empty()) error_ = what + " (" + peek().location() + ", got " + describe(peek()) + ")";
    return false;
  }
  static std::string describe(const Token& tok) {
    if (tok.kind == TokKind::Identifier) return "'" + tok.text + "'";
    if (tok.kind == TokKind::Number) return "'" + tok.text + "'";
    return to_string(tok.kind);
  }
  bool expect(TokKind kind, const std::string& context) {
    if (match(kind)) return true;
    return fail("expected " + to_string(kind) + " " + context);
  }
  bool expect_keyword(const std::string& word) {
    if (check(TokKind::Identifier) && peek().text == word) {
      advance();
      return true;
    }
    return fail("expected '" + word + "'");
  }
  bool at_keyword(const std::string& word) const {
    return check(TokKind::Identifier) && peek().text == word;
  }

  bool parse_parser() {
    if (!expect_keyword("parser")) return false;
    if (!check(TokKind::Identifier)) return fail("expected parser name");
    builder_.emplace(advance().text);
    if (!expect(TokKind::LBrace, "after parser name")) return false;
    while (!check(TokKind::RBrace)) {
      if (at_keyword("field")) {
        if (!parse_field()) return false;
      } else if (at_keyword("state")) {
        if (!parse_state()) return false;
      } else {
        return fail("expected 'field' or 'state'");
      }
    }
    advance();  // '}'
    if (!check(TokKind::End)) return fail("trailing input after parser body");
    return true;
  }

  bool parse_field() {
    advance();  // 'field'
    if (!check(TokKind::Identifier)) return fail("expected field name");
    std::string name = advance().text;
    if (!expect(TokKind::Colon, "after field name")) return false;
    if (at_keyword("varbit")) {
      advance();
      if (!expect(TokKind::Less, "after 'varbit'")) return false;
      if (!check(TokKind::Number)) return fail("expected varbit max width");
      int width = static_cast<int>(advance().value);
      if (!expect(TokKind::Greater, "after varbit width")) return false;
      builder_->varbit_field(name, width);
    } else if (check(TokKind::Number)) {
      builder_->field(name, static_cast<int>(advance().value));
    } else {
      return fail("expected field width or 'varbit<..>'");
    }
    return expect(TokKind::Semicolon, "after field declaration");
  }

  bool parse_state() {
    advance();  // 'state'
    if (!check(TokKind::Identifier)) return fail("expected state name");
    std::string name = advance().text;
    if (name == "accept" || name == "reject")
      return fail("'" + name + "' is a reserved state name");
    StateBuilder state = builder_->state(name);
    if (!expect(TokKind::LBrace, "after state name")) return false;
    bool saw_transition = false;
    while (!check(TokKind::RBrace)) {
      if (at_keyword("extract")) {
        if (saw_transition) return fail("extract after transition");
        if (!parse_extract(state)) return false;
      } else if (at_keyword("transition")) {
        if (saw_transition) return fail("multiple transitions in one state");
        saw_transition = true;
        if (!parse_transition(state)) return false;
      } else {
        return fail("expected 'extract' or 'transition'");
      }
    }
    advance();  // '}'
    if (!saw_transition) state.otherwise("reject");
    return true;
  }

  bool parse_extract(StateBuilder& state) {
    advance();  // 'extract'
    if (!expect(TokKind::LParen, "after 'extract'")) return false;
    if (!check(TokKind::Identifier)) return fail("expected field name in extract");
    std::string field = advance().text;
    if (match(TokKind::Comma)) {
      // varbit length expression: len = [scale *] lenField [(+|-) base]
      if (!expect_keyword("len")) return false;
      if (!expect(TokKind::Equals, "after 'len'")) return false;
      int scale = 1, base = 0;
      if (check(TokKind::Number)) {
        scale = static_cast<int>(advance().value);
        if (!expect(TokKind::Star, "after length scale")) return false;
      }
      if (!check(TokKind::Identifier)) return fail("expected length field");
      std::string len_field = advance().text;
      if (match(TokKind::Plus)) {
        if (!check(TokKind::Number)) return fail("expected length offset");
        base = static_cast<int>(advance().value);
      } else if (match(TokKind::Minus)) {
        if (!check(TokKind::Number)) return fail("expected length offset");
        base = -static_cast<int>(advance().value);
      }
      try {
        state.extract_var(field, len_field, scale, base);
      } catch (const std::invalid_argument& e) {
        return fail(e.what());
      }
    } else {
      try {
        state.extract(field);
      } catch (const std::invalid_argument& e) {
        return fail(e.what());
      }
    }
    if (!expect(TokKind::RParen, "after extract arguments")) return false;
    return expect(TokKind::Semicolon, "after extract");
  }

  bool parse_transition(StateBuilder& state) {
    advance();  // 'transition'
    if (at_keyword("select")) {
      advance();
      if (!expect(TokKind::LParen, "after 'select'")) return false;
      std::vector<KeyPart> parts;
      do {
        auto part = parse_key_part();
        if (!part) return false;
        parts.push_back(*part);
      } while (match(TokKind::Comma));
      if (!expect(TokKind::RParen, "after select key")) return false;
      state.select(std::move(parts));
      if (!expect(TokKind::LBrace, "before select entries")) return false;
      while (!check(TokKind::RBrace)) {
        if (!parse_entry(state)) return false;
      }
      advance();  // '}'
      return true;
    }
    // Unconditional transition.
    if (!check(TokKind::Identifier)) return fail("expected transition target");
    std::string target = advance().text;
    state.otherwise(target);
    return expect(TokKind::Semicolon, "after transition target");
  }

  std::optional<KeyPart> parse_key_part() {
    if (at_keyword("lookahead")) {
      advance();
      if (!expect(TokKind::Less, "after 'lookahead'")) return std::nullopt;
      if (!check(TokKind::Number)) {
        fail("expected lookahead offset");
        return std::nullopt;
      }
      int off = static_cast<int>(advance().value);
      if (!expect(TokKind::Comma, "between lookahead offset and width")) return std::nullopt;
      if (!check(TokKind::Number)) {
        fail("expected lookahead width");
        return std::nullopt;
      }
      int len = static_cast<int>(advance().value);
      if (!expect(TokKind::Greater, "after lookahead")) return std::nullopt;
      return SpecBuilder::lookahead(off, len);
    }
    if (!check(TokKind::Identifier)) {
      fail("expected field or lookahead in select key");
      return std::nullopt;
    }
    std::string field = advance().text;
    try {
      if (match(TokKind::LBracket)) {
        if (!check(TokKind::Number)) {
          fail("expected slice start");
          return std::nullopt;
        }
        int lo = static_cast<int>(advance().value);
        if (!expect(TokKind::Colon, "inside slice")) return std::nullopt;
        if (!check(TokKind::Number)) {
          fail("expected slice end");
          return std::nullopt;
        }
        int hi = static_cast<int>(advance().value);
        if (!expect(TokKind::RBracket, "after slice")) return std::nullopt;
        if (hi <= lo) {
          fail("slice end must be greater than slice start");
          return std::nullopt;
        }
        return builder_->slice(field, lo, hi - lo);
      }
      return builder_->whole(field);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
      return std::nullopt;
    }
  }

  bool parse_entry(StateBuilder& state) {
    if (at_keyword("default")) {
      advance();
      if (!expect(TokKind::Colon, "after 'default'")) return false;
      if (!check(TokKind::Identifier)) return fail("expected entry target");
      state.otherwise(advance().text);
      return expect(TokKind::Semicolon, "after entry");
    }
    if (!check(TokKind::Number)) return fail("expected entry value or 'default'");
    std::uint64_t value = advance().value;
    std::optional<std::uint64_t> mask;
    if (match(TokKind::MaskOp)) {
      if (!check(TokKind::Number)) return fail("expected mask after '&&&'");
      mask = advance().value;
    }
    if (!expect(TokKind::Colon, "after entry condition")) return false;
    if (!check(TokKind::Identifier)) return fail("expected entry target");
    std::string target = advance().text;
    if (mask)
      state.when(value, *mask, target);
    else
      state.when_exact(value, target);
    return expect(TokKind::Semicolon, "after entry");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::optional<SpecBuilder> builder_;
  std::string error_;
};

}  // namespace

Result<ParserSpec> parse_source(const std::string& source) {
  auto tokens = tokenize(source);
  if (!tokens) return Result<ParserSpec>::err(tokens.error().code, tokens.error().message);
  Parser parser(std::move(*tokens));
  return parser.run();
}

std::string emit_source(const ParserSpec& spec) {
  std::string out = "parser " + spec.name + " {\n";
  for (const auto& f : spec.fields) {
    out += "  field " + f.name + " : ";
    out += f.varbit ? "varbit<" + std::to_string(f.width) + ">" : std::to_string(f.width);
    out += ";\n";
  }
  // Emit the start state first so the "first state is start" convention
  // round-trips specs whose start is not named "start".
  std::vector<int> order;
  order.push_back(spec.start);
  for (int s = 0; s < static_cast<int>(spec.states.size()); ++s)
    if (s != spec.start) order.push_back(s);

  for (int s : order) {
    const State& st = spec.states[static_cast<std::size_t>(s)];
    out += "  state " + st.name + " {\n";
    for (const auto& ex : st.extracts) {
      const Field& f = spec.fields[static_cast<std::size_t>(ex.field)];
      out += "    extract(" + f.name;
      if (ex.len_field >= 0) {
        out += ", len = " + std::to_string(ex.len_scale) + " * " +
               spec.fields[static_cast<std::size_t>(ex.len_field)].name;
        if (ex.len_base > 0) out += " + " + std::to_string(ex.len_base);
        if (ex.len_base < 0) out += " - " + std::to_string(-ex.len_base);
      }
      out += ");\n";
    }
    if (st.rules.size() == 1 && st.rules[0].is_default()) {
      out += "    transition " + state_name(spec, st.rules[0].next) + ";\n";
    } else if (!st.rules.empty()) {
      out += "    transition select(";
      for (std::size_t k = 0; k < st.key.size(); ++k) {
        const KeyPart& p = st.key[k];
        if (k) out += ", ";
        if (p.kind == KeyPart::Kind::Lookahead) {
          out += "lookahead<" + std::to_string(p.lo) + ", " + std::to_string(p.len) + ">";
        } else {
          const Field& f = spec.fields[static_cast<std::size_t>(p.field)];
          out += f.name;
          if (p.lo != 0 || p.len != f.width)
            out += "[" + std::to_string(p.lo) + ":" + std::to_string(p.lo + p.len) + "]";
        }
      }
      out += ") {\n";
      int kw = st.key_width();
      std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : kw == 0 ? 0 : ((std::uint64_t{1} << kw) - 1);
      for (const auto& r : st.rules) {
        out += "      ";
        if (r.is_default()) {
          out += "default";
        } else {
          out += std::to_string(r.value);
          if (r.mask != full) out += " &&& " + std::to_string(r.mask);
        }
        out += " : " + state_name(spec, r.next) + ";\n";
      }
      out += "    }\n";
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace parserhawk::lang
