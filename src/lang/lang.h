// Front-end for the "hawk" parser-description language — a P4-subset
// covering exactly the constructs the paper's specifications use: header
// field declarations (fixed and varbit), parser states with ordered
// extracts, `transition select` over field slices and lookahead windows,
// ternary entries written with P4's `&&&` mask operator, and the
// accept/reject sentinels.
//
//   parser ethernet {
//     field dst : 48;
//     field src : 48;
//     field etherType : 16;
//     field ipv4 : 32;
//     field options : varbit<320>;
//
//     state start {
//       extract(dst);
//       extract(src);
//       extract(etherType);
//       transition select(etherType) {
//         0x0800 : parse_ipv4;
//         0x8100 &&& 0xff00 : parse_vlan;   // ternary entry
//         default : accept;
//       }
//     }
//     state parse_ipv4 {
//       extract(ipv4);
//       extract(options, len = 32 * ihl - 160);   // varbit length expr
//       transition accept;
//     }
//     state parse_vlan { transition select(etherType[0:4], lookahead<0, 8>) {
//         default : reject;
//     } }
//   }
//
// The state named "start" is the start state (the first state otherwise).
// Slices are written field[lo:hi] with hi exclusive; lookahead<off, len>
// peeks len bits at off bits past the cursor. `//` and `/* */` comments.
#pragma once

#include <string>

#include "ir/ir.h"
#include "support/result.h"

namespace parserhawk::lang {

/// Parse hawk source text into the IR. Errors carry line/column context.
Result<ParserSpec> parse_source(const std::string& source);

/// Emit hawk source for a spec; parse_source(emit_source(s)) reproduces s
/// up to state/field ordering.
std::string emit_source(const ParserSpec& spec);

}  // namespace parserhawk::lang
