#include "sim/pcap.h"

#include <cstring>
#include <fstream>

namespace parserhawk::pcap {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;

constexpr std::size_t kGlobalHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 16;

std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0xff000000u) >> 24);
}

/// Host-endian u32 at `offset` (bounds already checked by the caller),
/// byte-swapped when the file's order differs from ours.
std::uint32_t read_u32(const std::vector<std::uint8_t>& bytes, std::size_t offset, bool swapped) {
  std::uint32_t v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return swapped ? bswap32(v) : v;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&v),
             reinterpret_cast<const std::uint8_t*>(&v) + sizeof v);
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&v),
             reinterpret_cast<const std::uint8_t*>(&v) + sizeof v);
}

}  // namespace

BitVec PacketView::to_bits() const { return BitVec::from_bytes(data, 0, bit_size()); }

std::vector<BitVec> PcapFile::to_bitvecs() const {
  std::vector<BitVec> out;
  out.reserve(packets.size());
  for (const PacketView& p : packets) out.push_back(p.to_bits());
  return out;
}

std::vector<PacketRef> PcapFile::to_refs() const {
  std::vector<PacketRef> out;
  out.reserve(packets.size());
  for (const PacketView& p : packets) out.push_back(p.ref());
  return out;
}

Result<PcapFile> parse(std::vector<std::uint8_t> bytes, const ParseOptions& options) {
  if (bytes.size() < kGlobalHeaderBytes)
    return Result<PcapFile>::err(
        "pcap-truncated-header",
        "file is " + std::to_string(bytes.size()) + " bytes; the global header needs 24");

  std::uint32_t magic = read_u32(bytes, 0, /*swapped=*/false);
  bool swapped = false;
  bool nanosecond = false;
  switch (magic) {
    case kMagicUsec:
      break;
    case kMagicUsecSwapped:
      swapped = true;
      break;
    case kMagicNsec:
      nanosecond = true;
      break;
    case kMagicNsecSwapped:
      swapped = true;
      nanosecond = true;
      break;
    default: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%08x", magic);
      return Result<PcapFile>::err("pcap-bad-magic", std::string("unknown magic ") + buf);
    }
  }

  PcapFile file;
  file.bytes = std::move(bytes);
  file.swapped = swapped;
  file.nanosecond = nanosecond;
  file.snaplen = read_u32(file.bytes, 16, swapped);
  file.link_type = read_u32(file.bytes, 20, swapped);

  std::size_t at = kGlobalHeaderBytes;
  const std::size_t total = file.bytes.size();
  while (at < total) {
    if (total - at < kRecordHeaderBytes) {
      if (options.strict)
        return Result<PcapFile>::err(
            "pcap-truncated-record",
            "record header truncated at byte " + std::to_string(at));
      file.truncated_tail = true;
      break;
    }
    std::uint32_t ts_sec = read_u32(file.bytes, at, swapped);
    std::uint32_t ts_frac = read_u32(file.bytes, at + 4, swapped);
    std::uint32_t caplen = read_u32(file.bytes, at + 8, swapped);
    std::uint32_t orig_len = read_u32(file.bytes, at + 12, swapped);
    if (caplen > file.snaplen)
      return Result<PcapFile>::err(
          "pcap-bad-record", "record at byte " + std::to_string(at) + " captured " +
                                 std::to_string(caplen) + " bytes, over the file snaplen " +
                                 std::to_string(file.snaplen));
    at += kRecordHeaderBytes;
    if (caplen > total - at) {
      if (options.strict)
        return Result<PcapFile>::err(
            "pcap-truncated-record",
            "record body truncated: needs " + std::to_string(caplen) + " bytes, " +
                std::to_string(total - at) + " remain");
      file.truncated_tail = true;
      break;
    }
    file.packets.push_back(
        PacketView{file.bytes.data() + at, caplen, orig_len, ts_sec, ts_frac});
    at += caplen;
  }
  return file;
}

Result<PcapFile> read_file(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Result<PcapFile>::err("pcap-io", "cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) return Result<PcapFile>::err("pcap-io", "read error on " + path);
  return parse(std::move(bytes), options);
}

std::vector<std::uint8_t> write(const std::vector<BitVec>& packets, std::uint32_t link_type) {
  std::vector<std::uint8_t> out;
  std::uint32_t snaplen = 65535;
  for (const BitVec& p : packets) {
    std::uint32_t bytes = static_cast<std::uint32_t>((p.size() + 7) / 8);
    if (bytes > snaplen) snaplen = bytes;
  }
  append_u32(out, kMagicUsec);
  append_u16(out, 2);  // version 2.4
  append_u16(out, 4);
  append_u32(out, 0);  // thiszone
  append_u32(out, 0);  // sigfigs
  append_u32(out, snaplen);
  append_u32(out, link_type);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const BitVec& p = packets[i];
    std::uint32_t bytes = static_cast<std::uint32_t>((p.size() + 7) / 8);
    append_u32(out, static_cast<std::uint32_t>(i / 1000000));  // synthetic seconds
    append_u32(out, static_cast<std::uint32_t>(i % 1000000));  // synthetic microseconds
    append_u32(out, bytes);                                    // caplen
    append_u32(out, bytes);                                    // orig_len
    for (std::uint32_t b = 0; b < bytes; ++b) {
      std::uint8_t byte = 0;
      for (int bit = 0; bit < 8; ++bit) {
        int pos = static_cast<int>(b) * 8 + bit;
        if (pos < p.size() && p.get(pos)) byte |= static_cast<std::uint8_t>(1u << (7 - bit));
      }
      out.push_back(byte);
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::vector<BitVec>& packets,
                std::uint32_t link_type) {
  std::vector<std::uint8_t> bytes = write(packets, link_type);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

}  // namespace parserhawk::pcap
