#include "sim/tracegen.h"

#include <algorithm>
#include <deque>
#include <map>

#include "sim/coverage.h"
#include "sim/interp.h"
#include "sim/testgen.h"
#include "support/rng.h"

namespace parserhawk {

namespace {

void grow_to(BitVec& bits, int n, Rng& rng) {
  while (bits.size() < n) bits.push_back(rng.chance(0.5));
}

/// BFS over transition edges: for every reachable state, the rule indices
/// of one shortest start->state path. Index `spec.start` maps to {}.
std::map<int, std::vector<int>> shortest_paths(const ParserSpec& spec) {
  std::map<int, std::vector<int>> paths;
  std::deque<int> frontier{spec.start};
  paths[spec.start] = {};
  while (!frontier.empty()) {
    int s = frontier.front();
    frontier.pop_front();
    const State& st = spec.state(s);
    for (std::size_t r = 0; r < st.rules.size(); ++r) {
      int next = st.rules[r].next;
      if (!is_real_state(next) || paths.count(next)) continue;
      paths[next] = paths[s];
      paths[next].push_back(static_cast<int>(r));
      frontier.push_back(next);
    }
  }
  return paths;
}

/// One walk from start. Step i takes rule_path[i] where available (random
/// afterwards): extracts are filled with random bits, then the chosen
/// rule's (value, mask)-constrained bits are back-patched. Ternary
/// overlap can still divert the walk — the caller replays the packet
/// through run_spec before admitting it.
BitVec directed_walk(const ParserSpec& spec, const std::vector<int>& rule_path, Rng& rng,
                     int max_iterations) {
  BitVec input;
  std::map<int, int> field_pos;  // field -> wire position where extracted
  std::map<int, int> field_len;  // runtime length actually extracted
  int cursor = 0;
  int state = spec.start;

  for (int iter = 0; iter < max_iterations && is_real_state(state); ++iter) {
    const State& st = spec.state(state);
    for (const auto& ex : st.extracts) {
      const Field& f = spec.fields[static_cast<std::size_t>(ex.field)];
      int width = f.width;
      if (f.varbit) {
        std::uint64_t lv = 0;
        if (field_pos.count(ex.len_field)) {
          int lp = field_pos[ex.len_field];
          int ll = field_len[ex.len_field];
          grow_to(input, lp + ll, rng);
          lv = input.slice(lp, ll).to_u64();
        }
        long long len =
            ex.len_base + static_cast<long long>(ex.len_scale) * static_cast<long long>(lv);
        width = static_cast<int>(std::clamp(len, 0LL, static_cast<long long>(f.width)));
      }
      grow_to(input, cursor + width, rng);
      field_pos[ex.field] = cursor;
      field_len[ex.field] = width;
      cursor += width;
    }

    if (st.rules.empty()) break;
    std::size_t choice = iter < static_cast<int>(rule_path.size())
                             ? static_cast<std::size_t>(rule_path[static_cast<std::size_t>(iter)])
                             : static_cast<std::size_t>(rng.below(st.rules.size()));
    if (choice >= st.rules.size()) choice = st.rules.size() - 1;
    const Rule& chosen = st.rules[choice];

    // Back-patch the bits the chosen rule constrains (key MSB first).
    int kw = st.key_width();
    int key_bit = 0;
    for (const auto& p : st.key) {
      for (int j = 0; j < p.len; ++j, ++key_bit) {
        int mask_shift = kw - 1 - key_bit;
        if (((chosen.mask >> mask_shift) & 1u) == 0) continue;
        bool bit = (chosen.value >> mask_shift) & 1u;
        int pos;
        if (p.kind == KeyPart::Kind::FieldSlice) {
          auto it = field_pos.find(p.field);
          if (it == field_pos.end()) continue;
          if (p.lo + j >= field_len[p.field]) continue;
          pos = it->second + p.lo + j;
        } else {
          pos = cursor + p.lo + j;
        }
        grow_to(input, pos + 1, rng);
        input.set(pos, bit);
      }
    }

    // Follow where the packet actually goes (priority semantics).
    std::uint64_t key = 0;
    bool key_ok = true;
    for (const auto& p : st.key) {
      std::uint64_t v = 0;
      if (p.kind == KeyPart::Kind::FieldSlice) {
        auto it = field_pos.find(p.field);
        if (it == field_pos.end() || p.lo + p.len > field_len[p.field]) {
          key_ok = false;
          break;
        }
        v = input.slice(it->second + p.lo, p.len).to_u64();
      } else {
        grow_to(input, cursor + p.lo + p.len, rng);
        v = input.slice(cursor + p.lo, p.len).to_u64();
      }
      key = (key << p.len) | v;
    }
    if (!key_ok) break;

    int next = kReject;
    for (const auto& r : st.rules)
      if (r.matches(key)) {
        next = r.next;
        break;
      }
    state = next;
  }
  return input;
}

void finish_packet(BitVec& packet, Rng& rng, const TraceGenOptions& options) {
  for (int i = 0; i < options.pad_bits; ++i) packet.push_back(rng.chance(0.5));
  if (options.byte_align)
    while (packet.size() % 8 != 0) packet.push_back(false);
}

}  // namespace

TraceGenReport generate_trace(const ParserSpec& spec, const TraceGenOptions& options) {
  TraceGenReport report;
  Rng rng(options.seed);
  auto paths = shortest_paths(spec);

  for (int s = 0; s < static_cast<int>(spec.states.size()); ++s) {
    const State& st = spec.state(s);
    auto path = paths.find(s);
    for (int r = 0; r < static_cast<int>(st.rules.size()); ++r) {
      if (path == paths.end()) {  // unreachable state: all its rules missed
        report.missed_rules.emplace_back(s, r);
        continue;
      }
      std::vector<int> rule_path = path->second;
      rule_path.push_back(r);
      int admitted = 0;
      for (int attempt = 0; attempt < options.retries_per_rule && admitted < options.packets_per_rule;
           ++attempt) {
        BitVec candidate = directed_walk(spec, rule_path, rng, options.max_iterations);
        finish_packet(candidate, rng, options);
        CoverageMap cov = CoverageMap::for_spec(spec);
        run_spec(spec, candidate, options.max_iterations, &cov);
        if (cov.rule_hits[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] > 0) {
          report.packets.push_back(std::move(candidate));
          ++admitted;
        }
      }
      if (admitted == 0) report.missed_rules.emplace_back(s, r);
    }
  }

  for (int i = 0; i < options.random_walks; ++i) {
    BitVec packet = generate_path_input(spec, rng, options.max_iterations, 0);
    finish_packet(packet, rng, options);
    report.packets.push_back(std::move(packet));
  }
  return report;
}

}  // namespace parserhawk
