#include "sim/interp.h"

#include <algorithm>
#include <sstream>

#include "sim/coverage.h"
#include "support/bitstream.h"
#include "tcam/matcher.h"

namespace parserhawk {

std::string to_string(ParseOutcome outcome) {
  switch (outcome) {
    case ParseOutcome::Accepted: return "accept";
    case ParseOutcome::Rejected: return "reject";
    case ParseOutcome::Exhausted: return "exhausted";
  }
  return "unknown";
}

namespace {

/// Runtime width of one extract op given already-parsed values.
/// Returns -1 when the varbit length source is unavailable.
int runtime_width(const std::vector<Field>& fields, const ExtractOp& ex, const OutputDict& dict) {
  const Field& f = fields.at(static_cast<std::size_t>(ex.field));
  if (!f.varbit) return f.width;
  auto it = dict.find(ex.len_field);
  if (it == dict.end()) return -1;
  long long len = ex.len_base + static_cast<long long>(ex.len_scale) * static_cast<long long>(it->second.to_u64());
  return static_cast<int>(std::clamp(len, 0LL, static_cast<long long>(f.width)));
}

/// Perform one extract; false => out of input (caller rejects).
bool do_extract(const std::vector<Field>& fields, const ExtractOp& ex, Bitstream& in, OutputDict& dict) {
  int width = runtime_width(fields, ex, dict);
  if (width < 0) return false;
  auto bits = in.read(width);
  if (!bits) return false;
  dict[ex.field] = std::move(*bits);
  return true;
}

/// Evaluate a transition key over parsed fields + lookahead.
///
/// `missing_is_zero` selects the hardware flavor: TCAM match registers read
/// as zero when never written (implementation side), whereas a P4
/// specification that selects on a never-extracted field rejects (spec
/// side). Lookahead past the end of the packet rejects on both sides.
std::optional<std::uint64_t> eval_key(const std::vector<Field>& fields, const std::vector<KeyPart>& parts,
                                      const Bitstream& in, const OutputDict& dict,
                                      bool missing_is_zero) {
  (void)fields;
  std::uint64_t key = 0;
  for (const auto& p : parts) {
    if (p.kind == KeyPart::Kind::FieldSlice) {
      auto it = dict.find(p.field);
      if (it == dict.end() || p.lo + p.len > it->second.size()) {
        if (!missing_is_zero) return std::nullopt;
        key = key << p.len;  // unwritten match register: zeros
        continue;
      }
      key = (key << p.len) | it->second.slice(p.lo, p.len).to_u64();
    } else {
      auto peeked = in.peek(p.lo, p.len);
      if (!peeked) return std::nullopt;
      key = (key << p.len) | peeked->to_u64();
    }
  }
  return key;
}

ParseResult finish(ParseOutcome outcome, OutputDict dict, const Bitstream& in, int iterations) {
  ParseResult r;
  r.outcome = outcome;
  r.dict = std::move(dict);
  r.bits_consumed = in.position();
  r.iterations = iterations;
  return r;
}

}  // namespace

ParseResult run_spec(const ParserSpec& spec, const PacketRef& input, int max_iterations,
                     CoverageMap* coverage) {
  Bitstream in = input.stream();
  OutputDict dict;
  int state = spec.start;

  for (int iter = 0; iter < max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    if (coverage) coverage->on_spec_state(state);
    const State& st = spec.state(state);
    for (const auto& ex : st.extracts)
      if (!do_extract(spec.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    if (st.rules.empty()) {
      state = kReject;
      continue;
    }
    std::uint64_t key = 0;
    if (!st.key.empty()) {
      auto k = eval_key(spec.fields, st.key, in, dict, /*missing_is_zero=*/false);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }
    int next = kReject;
    for (std::size_t r = 0; r < st.rules.size(); ++r)
      if (st.rules[r].matches(key)) {
        if (coverage) coverage->on_spec_rule(state, static_cast<int>(r));
        next = st.rules[r].next;
        break;
      }
    state = next;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->spec_exhausted;
  return finish(out, std::move(dict), in, max_iterations);
}

ParseResult run_impl(const TcamProgram& prog, const PacketRef& input,
                     CoverageMap* coverage) {
  Bitstream in = input.stream();
  OutputDict dict;
  int table = prog.start_table;
  int state = prog.start_state;

  for (int iter = 0; iter < prog.max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    const StateLayout* layout = prog.layout_of(table, state);
    std::uint64_t key = 0;
    if (layout && !layout->key.empty()) {
      auto k = eval_key(prog.fields, layout->key, in, dict, /*missing_is_zero=*/true);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }

    const TcamEntry* winner = nullptr;
    for (const TcamEntry* row : prog.rows_of(table, state))
      if (row->matches(key)) {
        winner = row;
        break;
      }
    if (winner == nullptr) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
    if (coverage) coverage->on_row(static_cast<int>(winner - prog.entries.data()));

    for (const auto& ex : winner->extracts)
      if (!do_extract(prog.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    table = winner->next_table;
    state = winner->next_state;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->impl_exhausted;
  return finish(out, std::move(dict), in, prog.max_iterations);
}

ParseResult run_impl(const CompiledMatcher& matcher, const PacketRef& input,
                     CoverageMap* coverage) {
  const TcamProgram& prog = matcher.program();
  Bitstream in = input.stream();
  OutputDict dict;
  int table = prog.start_table;
  int state = prog.start_state;

  for (int iter = 0; iter < prog.max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    const CompiledMatcher::Group* g = matcher.find(table, state);
    std::uint64_t key = 0;
    if (g != nullptr && g->layout != nullptr && !g->layout->key.empty()) {
      auto k = eval_key(prog.fields, g->layout->key, in, dict, /*missing_is_zero=*/true);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }

    const int win = g == nullptr ? -1 : CompiledMatcher::first_match(*g, key);
    if (win < 0) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
    const TcamEntry* winner = g->rows[static_cast<std::size_t>(win)];
    if (coverage) coverage->on_row(g->entry_index[static_cast<std::size_t>(win)]);

    for (const auto& ex : winner->extracts)
      if (!do_extract(prog.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    table = winner->next_table;
    state = winner->next_state;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->impl_exhausted;
  return finish(out, std::move(dict), in, prog.max_iterations);
}

void run_impl_batch(const CompiledMatcher& matcher, const PacketRef* packets, int n,
                    ParseResult* results, CoverageMap* coverage, SimdLevel level) {
  if (n <= 0) return;
  if (level == SimdLevel::Auto) level = dispatch_level();
  const TcamProgram& prog = matcher.program();

  // One lane per in-flight packet. The Bitstream/dict pair is exactly the
  // state the single-packet interpreter keeps on its stack.
  struct Lane {
    Bitstream in;
    OutputDict dict;
    int table;
    int state;
    Lane(Bitstream s, int t, int st) : in(s), table(t), state(st) {}
  };
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    lanes.emplace_back(packets[i].stream(), prog.start_table, prog.start_state);

  auto settle = [&](int i, ParseOutcome out, int iter) {
    Lane& ln = lanes[static_cast<std::size_t>(i)];
    ParseResult r;
    r.outcome = out;
    r.dict = std::move(ln.dict);
    r.bits_consumed = ln.in.position();
    r.iterations = iter;
    results[i] = std::move(r);
  };

  std::vector<int> active(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i;

  // Lockstep epochs: every iteration buckets the still-running packets by
  // (table, state) — every packet in a bucket shares one packed Group —
  // then resolves the whole bucket's lookups with a single wide
  // match_batch call. Key evaluation and extraction stay per-packet (they
  // are data-dependent), but the TCAM step goes N packets per key bit.
  std::map<std::pair<int, int>, std::vector<int>> buckets;
  std::vector<std::uint64_t> keys;
  std::vector<int> members;
  std::vector<int> wins;
  std::vector<int> survivors;

  int iter = 0;
  for (; iter < prog.max_iterations && !active.empty(); ++iter) {
    buckets.clear();
    survivors.clear();
    for (int i : active) {
      Lane& ln = lanes[static_cast<std::size_t>(i)];
      if (ln.state == kAccept) {
        settle(i, ParseOutcome::Accepted, iter);
      } else if (ln.state == kReject) {
        settle(i, ParseOutcome::Rejected, iter);
      } else {
        buckets[{ln.table, ln.state}].push_back(i);
      }
    }
    for (auto& [where, bucket] : buckets) {
      const CompiledMatcher::Group* g = matcher.find(where.first, where.second);
      const bool has_key = g != nullptr && g->layout != nullptr && !g->layout->key.empty();
      keys.clear();
      members.clear();
      for (int i : bucket) {
        Lane& ln = lanes[static_cast<std::size_t>(i)];
        std::uint64_t key = 0;
        if (has_key) {
          auto k = eval_key(prog.fields, g->layout->key, ln.in, ln.dict, /*missing_is_zero=*/true);
          if (!k) {
            settle(i, ParseOutcome::Rejected, iter);
            continue;
          }
          key = *k;
        }
        members.push_back(i);
        keys.push_back(key);
      }
      if (members.empty()) continue;
      wins.assign(members.size(), -1);
      if (g != nullptr)
        CompiledMatcher::match_batch(*g, keys.data(), static_cast<int>(members.size()),
                                     wins.data(), level);
      for (std::size_t j = 0; j < members.size(); ++j) {
        const int i = members[j];
        const int win = wins[j];
        if (win < 0) {
          settle(i, ParseOutcome::Rejected, iter);
          continue;
        }
        Lane& ln = lanes[static_cast<std::size_t>(i)];
        const TcamEntry* winner = g->rows[static_cast<std::size_t>(win)];
        if (coverage) coverage->on_row(g->entry_index[static_cast<std::size_t>(win)]);
        bool extracted = true;
        for (const auto& ex : winner->extracts)
          if (!do_extract(prog.fields, ex, ln.in, ln.dict)) {
            extracted = false;
            break;
          }
        if (!extracted) {
          settle(i, ParseOutcome::Rejected, iter);
          continue;
        }
        ln.table = winner->next_table;
        ln.state = winner->next_state;
        survivors.push_back(i);
      }
    }
    active.assign(survivors.begin(), survivors.end());
  }

  // Loop bound hit: the scalar interpreter falls out of its row loop and
  // maps the final state with iterations == K. Mirror it exactly.
  for (int i : active) {
    const int state = lanes[static_cast<std::size_t>(i)].state;
    ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                       : state == kReject ? ParseOutcome::Rejected
                                          : ParseOutcome::Exhausted;
    if (coverage && out == ParseOutcome::Exhausted) ++coverage->impl_exhausted;
    settle(i, out, prog.max_iterations);
  }
}

std::string to_string(const OutputDict& dict, const std::vector<Field>& fields) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [fid, value] : dict) {
    if (!first) os << ", ";
    first = false;
    os << fields.at(static_cast<std::size_t>(fid)).name << "=" << value.to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace parserhawk
