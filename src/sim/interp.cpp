#include "sim/interp.h"

#include <algorithm>
#include <sstream>

#include "sim/coverage.h"
#include "support/bitstream.h"
#include "tcam/matcher.h"

namespace parserhawk {

std::string to_string(ParseOutcome outcome) {
  switch (outcome) {
    case ParseOutcome::Accepted: return "accept";
    case ParseOutcome::Rejected: return "reject";
    case ParseOutcome::Exhausted: return "exhausted";
  }
  return "unknown";
}

namespace {

/// Runtime width of one extract op given already-parsed values.
/// Returns -1 when the varbit length source is unavailable.
int runtime_width(const std::vector<Field>& fields, const ExtractOp& ex, const OutputDict& dict) {
  const Field& f = fields.at(static_cast<std::size_t>(ex.field));
  if (!f.varbit) return f.width;
  auto it = dict.find(ex.len_field);
  if (it == dict.end()) return -1;
  long long len = ex.len_base + static_cast<long long>(ex.len_scale) * static_cast<long long>(it->second.to_u64());
  return static_cast<int>(std::clamp(len, 0LL, static_cast<long long>(f.width)));
}

/// Perform one extract; false => out of input (caller rejects).
bool do_extract(const std::vector<Field>& fields, const ExtractOp& ex, Bitstream& in, OutputDict& dict) {
  int width = runtime_width(fields, ex, dict);
  if (width < 0) return false;
  auto bits = in.read(width);
  if (!bits) return false;
  dict[ex.field] = std::move(*bits);
  return true;
}

/// Evaluate a transition key over parsed fields + lookahead.
///
/// `missing_is_zero` selects the hardware flavor: TCAM match registers read
/// as zero when never written (implementation side), whereas a P4
/// specification that selects on a never-extracted field rejects (spec
/// side). Lookahead past the end of the packet rejects on both sides.
std::optional<std::uint64_t> eval_key(const std::vector<Field>& fields, const std::vector<KeyPart>& parts,
                                      const Bitstream& in, const OutputDict& dict,
                                      bool missing_is_zero) {
  (void)fields;
  std::uint64_t key = 0;
  for (const auto& p : parts) {
    if (p.kind == KeyPart::Kind::FieldSlice) {
      auto it = dict.find(p.field);
      if (it == dict.end() || p.lo + p.len > it->second.size()) {
        if (!missing_is_zero) return std::nullopt;
        key = key << p.len;  // unwritten match register: zeros
        continue;
      }
      key = (key << p.len) | it->second.slice(p.lo, p.len).to_u64();
    } else {
      auto peeked = in.peek(p.lo, p.len);
      if (!peeked) return std::nullopt;
      key = (key << p.len) | peeked->to_u64();
    }
  }
  return key;
}

ParseResult finish(ParseOutcome outcome, OutputDict dict, const Bitstream& in, int iterations) {
  ParseResult r;
  r.outcome = outcome;
  r.dict = std::move(dict);
  r.bits_consumed = in.position();
  r.iterations = iterations;
  return r;
}

}  // namespace

ParseResult run_spec(const ParserSpec& spec, const BitVec& input, int max_iterations,
                     CoverageMap* coverage) {
  Bitstream in(input);
  OutputDict dict;
  int state = spec.start;

  for (int iter = 0; iter < max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    if (coverage) coverage->on_spec_state(state);
    const State& st = spec.state(state);
    for (const auto& ex : st.extracts)
      if (!do_extract(spec.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    if (st.rules.empty()) {
      state = kReject;
      continue;
    }
    std::uint64_t key = 0;
    if (!st.key.empty()) {
      auto k = eval_key(spec.fields, st.key, in, dict, /*missing_is_zero=*/false);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }
    int next = kReject;
    for (std::size_t r = 0; r < st.rules.size(); ++r)
      if (st.rules[r].matches(key)) {
        if (coverage) coverage->on_spec_rule(state, static_cast<int>(r));
        next = st.rules[r].next;
        break;
      }
    state = next;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->spec_exhausted;
  return finish(out, std::move(dict), in, max_iterations);
}

ParseResult run_impl(const TcamProgram& prog, const BitVec& input, CoverageMap* coverage) {
  Bitstream in(input);
  OutputDict dict;
  int table = prog.start_table;
  int state = prog.start_state;

  for (int iter = 0; iter < prog.max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    const StateLayout* layout = prog.layout_of(table, state);
    std::uint64_t key = 0;
    if (layout && !layout->key.empty()) {
      auto k = eval_key(prog.fields, layout->key, in, dict, /*missing_is_zero=*/true);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }

    const TcamEntry* winner = nullptr;
    for (const TcamEntry* row : prog.rows_of(table, state))
      if (row->matches(key)) {
        winner = row;
        break;
      }
    if (winner == nullptr) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
    if (coverage) coverage->on_row(static_cast<int>(winner - prog.entries.data()));

    for (const auto& ex : winner->extracts)
      if (!do_extract(prog.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    table = winner->next_table;
    state = winner->next_state;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->impl_exhausted;
  return finish(out, std::move(dict), in, prog.max_iterations);
}

ParseResult run_impl(const CompiledMatcher& matcher, const BitVec& input, CoverageMap* coverage) {
  const TcamProgram& prog = matcher.program();
  Bitstream in(input);
  OutputDict dict;
  int table = prog.start_table;
  int state = prog.start_state;

  for (int iter = 0; iter < prog.max_iterations; ++iter) {
    if (state == kAccept) return finish(ParseOutcome::Accepted, std::move(dict), in, iter);
    if (state == kReject) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    const CompiledMatcher::Group* g = matcher.find(table, state);
    std::uint64_t key = 0;
    if (g != nullptr && g->layout != nullptr && !g->layout->key.empty()) {
      auto k = eval_key(prog.fields, g->layout->key, in, dict, /*missing_is_zero=*/true);
      if (!k) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
      key = *k;
    }

    const int win = g == nullptr ? -1 : CompiledMatcher::first_match(*g, key);
    if (win < 0) return finish(ParseOutcome::Rejected, std::move(dict), in, iter);
    const TcamEntry* winner = g->rows[static_cast<std::size_t>(win)];
    if (coverage) coverage->on_row(g->entry_index[static_cast<std::size_t>(win)]);

    for (const auto& ex : winner->extracts)
      if (!do_extract(prog.fields, ex, in, dict))
        return finish(ParseOutcome::Rejected, std::move(dict), in, iter);

    table = winner->next_table;
    state = winner->next_state;
  }

  ParseOutcome out = state == kAccept   ? ParseOutcome::Accepted
                     : state == kReject ? ParseOutcome::Rejected
                                        : ParseOutcome::Exhausted;
  if (coverage && out == ParseOutcome::Exhausted) ++coverage->impl_exhausted;
  return finish(out, std::move(dict), in, prog.max_iterations);
}

std::string to_string(const OutputDict& dict, const std::vector<Field>& fields) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [fid, value] : dict) {
    if (!first) os << ", ";
    first = false;
    os << fields.at(static_cast<std::size_t>(fid)).name << "=" << value.to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace parserhawk
