// Deterministic synthetic trace generation (DESIGN.md §10).
//
// Where testgen.h samples the input space for *differential* testing,
// this generator manufactures structurally valid traffic for *coverage*:
// for every reachable transition rule of a specification it emits packets
// that provably fire that rule (each candidate is replayed through the
// spec interpreter before it is admitted), plus a band of random
// path-directed walks for variety. The result is a protocol-shaped corpus
// — VLAN stacks, tunnel chains, option blocks — without shipping large
// captures: runs are reproducible from (spec, seed) alone, and the
// packets are byte-aligned so they round-trip through sim/pcap.h.
#pragma once

#include <vector>

#include "ir/ir.h"
#include "support/bitvec.h"

namespace parserhawk {

struct TraceGenOptions {
  std::uint64_t seed = 0x7ace;
  /// Directed packets admitted per reachable (state, rule).
  int packets_per_rule = 3;
  /// Additional random path-directed walks appended after the directed set.
  int random_walks = 64;
  /// Walk / loop bound (states entered per packet).
  int max_iterations = 64;
  /// Candidate packets tried before giving up on one rule.
  int retries_per_rule = 24;
  /// Random payload bits appended after the walk (before byte alignment).
  int pad_bits = 32;
  /// Zero-pad every packet to a whole byte so it can live in a pcap.
  bool byte_align = true;
};

/// The rules a generated trace failed to exercise (empty = full rule
/// coverage is attainable and attained by generate_trace with the same
/// options). Unreachable rules land here too.
struct TraceGenReport {
  std::vector<BitVec> packets;
  /// (state, rule) pairs no admitted packet fired.
  std::vector<std::pair<int, int>> missed_rules;
};

/// Deterministic in (spec, options). Packets appear in (state, rule)
/// iteration order, then the random walks.
TraceGenReport generate_trace(const ParserSpec& spec, const TraceGenOptions& options = {});

}  // namespace parserhawk
