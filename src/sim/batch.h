// Batched differential simulation engine (DESIGN.md §9).
//
// Drives N packets through the spec interpreter and the bit-parallel
// compiled TCAM matcher, optionally across the work-stealing thread pool,
// and folds the per-packet verdicts into deterministic totals plus a
// CoverageMap. Used by the differential tester (src/sim/testgen.h), the
// CEGIS counterexample pre-check (src/synth) and bench_sim_throughput.
//
// Determinism contract:
//   * The reported mismatch is always the LOWEST-INDEX disagreeing input,
//     regardless of thread count or scheduling. Workers may skip packets
//     *beyond* the best mismatch found so far (cooperative cancellation),
//     but an index at or below the final first-mismatch is never skipped,
//     so the winner is exact.
//   * All counts and the coverage map are computed over the deterministic
//     prefix [0, first_mismatch] (the whole batch when every input
//     agrees), so they are a pure function of the input list — identical
//     at every thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/ir.h"
#include "sim/coverage.h"
#include "sim/interp.h"
#include "tcam/matcher.h"
#include "tcam/tcam.h"

namespace parserhawk {

class ThreadPool;

/// A spec/impl disagreement. Historically declared in testgen.h (which
/// includes this header and re-exports it); it lives here so the batch
/// engine sits below the differential tester in the include order.
struct DiffMismatch {
  BitVec input;
  ParseResult spec_result;
  ParseResult impl_result;
};

struct BatchOptions {
  /// Worker threads. <= 1 runs on the calling thread (no pool); the
  /// results are identical either way.
  int threads = 1;
  /// Packets per pool task — also the wide-kernel sub-batch width: each
  /// chunk's impl side runs through run_impl_batch in one lockstep pass.
  int chunk = 64;
  /// Wide-kernel lane level (see tcam/matcher.h). Auto = best this CPU
  /// supports, clamped by the PH_SIMD env var. Every level produces
  /// bit-identical verdicts, mismatch indices and coverage counts.
  SimdLevel simd = SimdLevel::Auto;
  /// Cancel outstanding work once a mismatch is found (the verdict stays
  /// deterministic; see the contract above).
  bool stop_on_mismatch = true;
  /// Spec-side K (impl uses prog.max_iterations).
  int max_iterations = 64;
  /// Collect per-rule / per-row coverage into BatchResult::coverage.
  bool collect_coverage = true;
  /// Run on this existing pool instead of spawning one (overrides
  /// `threads`; the pool's worker count is used for metrics).
  ThreadPool* pool = nullptr;
};

struct BatchResult {
  std::int64_t submitted = 0;  ///< inputs handed to run()
  std::int64_t evaluated = 0;  ///< deterministic prefix actually accounted
  std::int64_t skipped = 0;    ///< submitted - evaluated (cancellation)

  std::int64_t agree = 0;
  /// 0 or 1 when stop_on_mismatch (accounting stops at the first); the
  /// full disagreement count otherwise.
  std::int64_t mismatches = 0;
  /// Index of the first disagreeing input; -1 when all agree or when
  /// stop_on_mismatch is off (counts-only mode).
  std::int64_t first_mismatch = -1;
  std::optional<DiffMismatch> mismatch;

  /// Outcome tallies over the evaluated prefix, indexed by ParseOutcome
  /// (Accepted, Rejected, Exhausted). Each sums to `evaluated`.
  std::int64_t spec_outcomes[3] = {0, 0, 0};
  std::int64_t impl_outcomes[3] = {0, 0, 0};

  CoverageMap coverage;

  /// Publish sim.batch.* counters (runs/samples/skipped/agree/mismatch,
  /// per-side outcome tallies, threads high-water) and the coverage map's
  /// cov.* gauges into the global metrics registry.
  void publish_metrics(int threads_used) const;
};

/// Reusable batch engine for one (spec, prog) pair: packs the matcher
/// once, then run() any number of input lists. Spec and program must
/// outlive the runner.
class BatchRunner {
 public:
  BatchRunner(const ParserSpec& spec, const TcamProgram& prog, BatchOptions options = {});

  /// Zero-copy entry point: the refs' backing buffers (a PcapFile, a
  /// trace vector, ...) must outlive the call. Each chunk's impl side
  /// runs through the wide lockstep interpreter (run_impl_batch).
  BatchResult run(const std::vector<PacketRef>& inputs) const;

  /// Owned-packet convenience wrapper (views the vector in place).
  BatchResult run(const std::vector<BitVec>& inputs) const;

  const CompiledMatcher& matcher() const { return matcher_; }
  const BatchOptions& options() const { return options_; }

 private:
  const ParserSpec* spec_;
  const TcamProgram* prog_;
  BatchOptions options_;
  CompiledMatcher matcher_;
};

/// One-shot convenience wrappers around BatchRunner.
BatchResult run_batch(const ParserSpec& spec, const TcamProgram& prog,
                      const std::vector<BitVec>& inputs, const BatchOptions& options = {});
BatchResult run_batch(const ParserSpec& spec, const TcamProgram& prog,
                      const std::vector<PacketRef>& inputs, const BatchOptions& options = {});

}  // namespace parserhawk
