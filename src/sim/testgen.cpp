#include "sim/testgen.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace parserhawk {

namespace {

/// Append random bits until `bits` holds at least `n` bits.
void grow_to(BitVec& bits, int n, Rng& rng) {
  while (bits.size() < n) bits.push_back(rng.chance(0.5));
}

}  // namespace

BitVec generate_path_input(const ParserSpec& spec, Rng& rng, int max_iterations, int min_bits) {
  BitVec input;
  std::map<int, int> field_pos;  // field -> wire position where it was extracted
  std::map<int, int> field_len;  // runtime length actually extracted
  int cursor = 0;
  int state = spec.start;

  for (int iter = 0; iter < max_iterations && is_real_state(state); ++iter) {
    const State& st = spec.state(state);
    for (const auto& ex : st.extracts) {
      const Field& f = spec.fields[static_cast<std::size_t>(ex.field)];
      int width = f.width;
      if (f.varbit) {
        auto it = field_len.find(ex.len_field);
        std::uint64_t lv = 0;
        if (it != field_pos.end() && field_pos.count(ex.len_field)) {
          int lp = field_pos[ex.len_field];
          int ll = field_len[ex.len_field];
          grow_to(input, lp + ll, rng);
          lv = input.slice(lp, ll).to_u64();
        }
        long long len = ex.len_base + static_cast<long long>(ex.len_scale) * static_cast<long long>(lv);
        width = static_cast<int>(std::clamp(len, 0LL, static_cast<long long>(f.width)));
      }
      grow_to(input, cursor + width, rng);
      field_pos[ex.field] = cursor;
      field_len[ex.field] = width;
      cursor += width;
    }

    if (st.rules.empty()) break;
    const Rule& chosen = st.rules[static_cast<std::size_t>(rng.below(st.rules.size()))];

    // Back-patch the bits that the chosen rule's (value, mask) constrains.
    // Key parts are concatenated MSB-first, so walk from the key's MSB.
    int kw = st.key_width();
    int key_bit = 0;  // 0 = key MSB
    for (const auto& p : st.key) {
      for (int j = 0; j < p.len; ++j, ++key_bit) {
        int mask_shift = kw - 1 - key_bit;
        if (((chosen.mask >> mask_shift) & 1u) == 0) continue;
        bool bit = (chosen.value >> mask_shift) & 1u;
        int pos;
        if (p.kind == KeyPart::Kind::FieldSlice) {
          auto it = field_pos.find(p.field);
          if (it == field_pos.end()) continue;  // never extracted on this walk
          if (p.lo + j >= field_len[p.field]) continue;
          pos = it->second + p.lo + j;
        } else {
          pos = cursor + p.lo + j;
        }
        grow_to(input, pos + 1, rng);
        input.set(pos, bit);
      }
    }

    // Re-evaluate with priority semantics: an earlier rule may now match.
    std::uint64_t key = 0;
    bool key_ok = true;
    for (const auto& p : st.key) {
      std::uint64_t v = 0;
      if (p.kind == KeyPart::Kind::FieldSlice) {
        auto it = field_pos.find(p.field);
        if (it == field_pos.end() || p.lo + p.len > field_len[p.field]) {
          key_ok = false;
          break;
        }
        v = input.slice(it->second + p.lo, p.len).to_u64();
      } else {
        grow_to(input, cursor + p.lo + p.len, rng);
        v = input.slice(cursor + p.lo, p.len).to_u64();
      }
      key = (key << p.len) | v;
    }
    if (!key_ok) break;

    int next = kReject;
    for (const auto& r : st.rules)
      if (r.matches(key)) {
        next = r.next;
        break;
      }
    state = next;
  }

  grow_to(input, min_bits, rng);
  return input;
}

std::optional<DiffMismatch> differential_test(const ParserSpec& spec, const TcamProgram& prog,
                                              const DiffTestOptions& options) {
  obs::Span span("differential_test");
  if (span.active()) {
    span.arg("spec", spec.name);
    span.arg("samples", options.samples);
    span.arg("input_bits", options.input_bits);
  }
  obs::count("difftest.runs");
  obs::count("difftest.samples", options.samples);
  Rng rng(options.seed);

  auto check = [&](const BitVec& input) -> std::optional<DiffMismatch> {
    ParseResult s = run_spec(spec, input, options.max_iterations);
    ParseResult i = run_impl(prog, input);
    if (!equivalent(s, i)) return DiffMismatch{input, std::move(s), std::move(i)};
    return std::nullopt;
  };

  for (int n = 0; n < options.samples; ++n) {
    BitVec input;
    if (n % 2 == 0) {
      input = generate_path_input(spec, rng, options.max_iterations, options.input_bits);
    } else {
      int len = options.input_bits > 0 ? options.input_bits : rng.range(0, 256);
      input = BitVec::random(len, [&rng] { return rng(); });
    }
    if (auto mismatch = check(input)) return mismatch;

    if (options.include_truncated && input.size() > 0) {
      BitVec cut = input.slice(0, rng.range(0, input.size()));
      if (auto mismatch = check(cut)) return mismatch;
    }
  }
  return std::nullopt;
}

std::vector<BitVec> difftest_corpus(const ParserSpec& spec, const DiffTestOptions& options) {
  // Must consume the RNG in exactly the order differential_test() does, so
  // the corpus prefix — and therefore the lowest-index mismatch — matches
  // the scalar driver's check sequence for the same (seed, samples).
  Rng rng(options.seed);
  std::vector<BitVec> corpus;
  corpus.reserve(static_cast<std::size_t>(options.samples) * (options.include_truncated ? 2 : 1));
  for (int n = 0; n < options.samples; ++n) {
    BitVec input;
    if (n % 2 == 0) {
      input = generate_path_input(spec, rng, options.max_iterations, options.input_bits);
    } else {
      int len = options.input_bits > 0 ? options.input_bits : rng.range(0, 256);
      input = BitVec::random(len, [&rng] { return rng(); });
    }
    corpus.push_back(input);
    if (options.include_truncated && input.size() > 0)
      corpus.push_back(input.slice(0, rng.range(0, input.size())));
  }
  return corpus;
}

BatchResult differential_test_batch(const ParserSpec& spec, const TcamProgram& prog,
                                    const DiffTestOptions& options) {
  obs::Span span("differential_test_batch");
  if (span.active()) {
    span.arg("spec", spec.name);
    span.arg("samples", options.samples);
    span.arg("threads", options.pool != nullptr ? options.pool->worker_count() : options.threads);
  }
  obs::count("difftest.runs");
  obs::count("difftest.samples", options.samples);

  BatchOptions batch;
  batch.threads = options.threads;
  batch.chunk = options.chunk;
  batch.pool = options.pool;
  batch.max_iterations = options.max_iterations;
  batch.collect_coverage = options.collect_coverage;
  return run_batch(spec, prog, difftest_corpus(spec, options), batch);
}

}  // namespace parserhawk
