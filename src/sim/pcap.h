// Dependency-free classic-pcap ingestion (DESIGN.md §10).
//
// Parses tcpdump-style capture files — 24-byte global header followed by
// 16-byte-headed records — into zero-copy packet views over the file
// buffer, so a multi-gigabit trace costs one allocation, not one per
// packet. Both byte orders are handled (the magic number reveals whether
// the writer's endianness matches ours), as are the nanosecond-timestamp
// magic variants.
//
// Robustness contract (tests/test_pcap.cpp): any byte soup either parses
// into views that are fully inside the buffer or is rejected with an
// error code — never a crash or an over-read. A file that ends mid-record
// (a truncated capture, common in practice) keeps every complete packet
// and flags `truncated_tail` by default; `ParseOptions::strict` turns
// that into a rejection too. A record claiming more captured bytes than
// the file's own snaplen is always rejected — that is corruption, not
// truncation.
//
// The writer half emits the same format (microsecond, host-endian) so
// synthetic traces from sim/tracegen.h can be saved and replayed through
// `hawk_compile --replay`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/packet_ref.h"
#include "support/bitvec.h"
#include "support/result.h"

namespace parserhawk::pcap {

/// One captured packet: a borrowed window into PcapFile::bytes.
struct PacketView {
  const std::uint8_t* data = nullptr;
  std::uint32_t caplen = 0;    ///< bytes present in the capture (view size)
  std::uint32_t orig_len = 0;  ///< bytes on the wire per the record header
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_frac = 0;   ///< microseconds, or nanoseconds (see PcapFile)

  /// Captured size in wire bits.
  int bit_size() const { return static_cast<int>(caplen) * 8; }

  /// Zero-copy handle for the interpreters / BatchRunner: still aliases
  /// the capture buffer, so the PcapFile must outlive the ref too.
  PacketRef ref() const { return PacketRef::over(data, bit_size()); }

  /// The captured bytes as a wire-order BitVec (bit 0 = MSB of byte 0) —
  /// an owning copy; prefer ref() on hot paths.
  BitVec to_bits() const;
};

struct ParseOptions {
  /// Reject a file that ends mid-record instead of dropping the tail.
  bool strict = false;
};

/// A parsed capture. Owns the raw file bytes; `packets` are zero-copy
/// views into them, so the file must outlive any use of the views (moving
/// a PcapFile keeps the views valid — the heap buffer does not move).
struct PcapFile {
  std::vector<std::uint8_t> bytes;
  std::vector<PacketView> packets;
  std::uint32_t snaplen = 0;
  std::uint32_t link_type = 0;
  bool swapped = false;         ///< writer's byte order differed from ours
  bool nanosecond = false;      ///< ts_frac is nanoseconds
  bool truncated_tail = false;  ///< file ended mid-record; tail dropped

  /// Materialize every view as an owning BitVec.
  std::vector<BitVec> to_bitvecs() const;

  /// Zero-copy refs over every packet (the BatchRunner fast path). The
  /// refs alias `bytes`: keep this file alive and unmodified while they
  /// are in use.
  std::vector<PacketRef> to_refs() const;
};

/// Error codes: "pcap-truncated-header", "pcap-bad-magic",
/// "pcap-bad-record" (caplen exceeds snaplen), "pcap-truncated-record"
/// (strict mode only).
Result<PcapFile> parse(std::vector<std::uint8_t> bytes, const ParseOptions& options = {});

/// Read and parse a capture file ("pcap-io" on open/read failure).
Result<PcapFile> read_file(const std::string& path, const ParseOptions& options = {});

/// Serialize packets as a classic microsecond pcap (host endian,
/// link_type 1 = Ethernet by convention). Each BitVec is padded with zero
/// bits to a whole byte; timestamps are synthetic (index microseconds) so
/// output is deterministic.
std::vector<std::uint8_t> write(const std::vector<BitVec>& packets, std::uint32_t link_type = 1);

/// write() to a file; false on I/O failure.
bool write_file(const std::string& path, const std::vector<BitVec>& packets,
                std::uint32_t link_type = 1);

}  // namespace parserhawk::pcap
