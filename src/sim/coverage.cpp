#include "sim/coverage.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace parserhawk {

CoverageMap CoverageMap::for_spec(const ParserSpec& spec) {
  CoverageMap m;
  m.state_hits.assign(spec.states.size(), 0);
  m.rule_hits.resize(spec.states.size());
  for (std::size_t s = 0; s < spec.states.size(); ++s)
    m.rule_hits[s].assign(spec.states[s].rules.size(), 0);
  return m;
}

CoverageMap CoverageMap::for_pair(const ParserSpec& spec, const TcamProgram& prog) {
  CoverageMap m = for_spec(spec);
  m.row_hits.assign(prog.entries.size(), 0);
  return m;
}

void CoverageMap::on_spec_state(int state) {
  if (state < 0) return;
  if (static_cast<std::size_t>(state) >= state_hits.size()) state_hits.resize(static_cast<std::size_t>(state) + 1, 0);
  ++state_hits[static_cast<std::size_t>(state)];
}

void CoverageMap::on_spec_rule(int state, int rule) {
  if (state < 0 || rule < 0) return;
  if (static_cast<std::size_t>(state) >= rule_hits.size()) rule_hits.resize(static_cast<std::size_t>(state) + 1);
  auto& rules = rule_hits[static_cast<std::size_t>(state)];
  if (static_cast<std::size_t>(rule) >= rules.size()) rules.resize(static_cast<std::size_t>(rule) + 1, 0);
  ++rules[static_cast<std::size_t>(rule)];
}

void CoverageMap::on_row(int entry_index) {
  if (entry_index < 0) return;
  if (static_cast<std::size_t>(entry_index) >= row_hits.size())
    row_hits.resize(static_cast<std::size_t>(entry_index) + 1, 0);
  ++row_hits[static_cast<std::size_t>(entry_index)];
}

void CoverageMap::merge(const CoverageMap& other) {
  auto add_into = [](std::vector<std::int64_t>& dst, const std::vector<std::int64_t>& src) {
    if (dst.size() < src.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] += src[i];
  };
  add_into(state_hits, other.state_hits);
  if (rule_hits.size() < other.rule_hits.size()) rule_hits.resize(other.rule_hits.size());
  for (std::size_t s = 0; s < other.rule_hits.size(); ++s) add_into(rule_hits[s], other.rule_hits[s]);
  add_into(row_hits, other.row_hits);
  spec_exhausted += other.spec_exhausted;
  impl_exhausted += other.impl_exhausted;
}

int CoverageMap::states_hit() const {
  return static_cast<int>(std::count_if(state_hits.begin(), state_hits.end(),
                                        [](std::int64_t n) { return n > 0; }));
}

int CoverageMap::rules_total() const {
  int n = 0;
  for (const auto& rules : rule_hits) n += static_cast<int>(rules.size());
  return n;
}

int CoverageMap::rules_hit() const {
  int n = 0;
  for (const auto& rules : rule_hits)
    for (std::int64_t c : rules)
      if (c > 0) ++n;
  return n;
}

int CoverageMap::rows_hit() const {
  return static_cast<int>(std::count_if(row_hits.begin(), row_hits.end(),
                                        [](std::int64_t n) { return n > 0; }));
}

std::string CoverageMap::uncovered_rules(const ParserSpec& spec) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t s = 0; s < rule_hits.size(); ++s) {
    for (std::size_t r = 0; r < rule_hits[s].size(); ++r) {
      if (rule_hits[s][r] > 0) continue;
      if (!first) os << ", ";
      first = false;
      if (s < spec.states.size())
        os << "state '" << spec.states[s].name << "' rule " << r;
      else
        os << "state #" << s << " rule " << r;
    }
  }
  return os.str();
}

void CoverageMap::publish() const {
  if (!obs::metrics_on()) return;
  obs::maximize("cov.spec.states_hit", states_hit());
  obs::maximize("cov.spec.states_total", states_total());
  obs::maximize("cov.spec.rules_hit", rules_hit());
  obs::maximize("cov.spec.rules_total", rules_total());
  obs::maximize("cov.impl.rows_hit", rows_hit());
  obs::maximize("cov.impl.rows_total", rows_total());
  if (spec_exhausted > 0) obs::count("cov.spec.exhausted", spec_exhausted);
  if (impl_exhausted > 0) obs::count("cov.impl.exhausted", impl_exhausted);
}

}  // namespace parserhawk
