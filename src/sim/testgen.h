// Test input generation and the differential tester (§7.1, Figure 22).
//
// Uniformly random bitstreams almost never hit a 16-bit EtherType
// constant, so the generator also performs *path-directed* sampling: it
// walks the specification graph, picks a transition rule per state at
// random, and back-patches the input bits that the rule's (value, mask)
// condition constrains. This reaches deep states with high probability and
// is reused to seed the CEGIS test set (§5.2).
#pragma once

#include <optional>
#include <vector>

#include "ir/ir.h"
#include "sim/interp.h"
#include "support/rng.h"
#include "tcam/tcam.h"

namespace parserhawk {

/// Generate an input by a random walk over `spec`. The result is padded
/// with random bits to at least `min_bits` (0 = no padding).
BitVec generate_path_input(const ParserSpec& spec, Rng& rng, int max_iterations = 64,
                           int min_bits = 0);

/// A spec/impl disagreement found by the differential tester.
struct DiffMismatch {
  BitVec input;
  ParseResult spec_result;
  ParseResult impl_result;
};

struct DiffTestOptions {
  int samples = 256;              ///< total inputs tried
  std::uint64_t seed = 1;
  int input_bits = 0;             ///< fixed length for uniform samples (0 = path length)
  bool include_truncated = true;  ///< also replay truncated variants
  int max_iterations = 64;        ///< spec-side K (impl uses prog.max_iterations)
};

/// Figure 22: sample the input space, run both sides, compare dictionaries
/// and outcomes. Returns the first mismatch, or nullopt when all samples
/// agree. Mixes uniform random inputs with path-directed inputs.
std::optional<DiffMismatch> differential_test(const ParserSpec& spec, const TcamProgram& prog,
                                              const DiffTestOptions& options = {});

}  // namespace parserhawk
