// Test input generation and the differential tester (§7.1, Figure 22).
//
// Uniformly random bitstreams almost never hit a 16-bit EtherType
// constant, so the generator also performs *path-directed* sampling: it
// walks the specification graph, picks a transition rule per state at
// random, and back-patches the input bits that the rule's (value, mask)
// condition constrains. This reaches deep states with high probability and
// is reused to seed the CEGIS test set (§5.2).
//
// Two drivers share the same corpus: differential_test() checks inputs one
// by one on the calling thread, and differential_test_batch() hands the
// pre-generated corpus to the BatchRunner (sim/batch.h) for bit-parallel,
// optionally multi-threaded checking with coverage accounting. Both report
// the same first mismatch for the same (seed, samples).
#pragma once

#include <optional>
#include <vector>

#include "ir/ir.h"
#include "sim/batch.h"
#include "sim/interp.h"
#include "support/rng.h"
#include "tcam/tcam.h"

namespace parserhawk {

/// Generate an input by a random walk over `spec`. The result is padded
/// with random bits to at least `min_bits` (0 = no padding).
BitVec generate_path_input(const ParserSpec& spec, Rng& rng, int max_iterations = 64,
                           int min_bits = 0);

struct DiffTestOptions {
  int samples = 256;              ///< total inputs tried
  std::uint64_t seed = 1;
  int input_bits = 0;             ///< fixed length for uniform samples (0 = path length)
  bool include_truncated = true;  ///< also replay truncated variants
  int max_iterations = 64;        ///< spec-side K (impl uses prog.max_iterations)

  // Batch-driver knobs (differential_test_batch only).
  int threads = 1;                ///< worker threads; <=1 = calling thread
  int chunk = 64;                 ///< packets per pool task
  ThreadPool* pool = nullptr;     ///< run on an existing pool (overrides threads)
  bool collect_coverage = true;   ///< fill BatchResult::coverage
};

/// Figure 22: sample the input space, run both sides, compare dictionaries
/// and outcomes. Returns the first mismatch, or nullopt when all samples
/// agree. Mixes uniform random inputs with path-directed inputs.
std::optional<DiffMismatch> differential_test(const ParserSpec& spec, const TcamProgram& prog,
                                              const DiffTestOptions& options = {});

/// The exact input sequence differential_test() checks, in check order:
/// alternating path-directed and uniform samples, each optionally followed
/// by its truncated variant. Deterministic in (spec, options).
std::vector<BitVec> difftest_corpus(const ParserSpec& spec, const DiffTestOptions& options = {});

/// Batched differential test: generate difftest_corpus() and drive it
/// through the BatchRunner. For a fixed (spec, prog, options) the verdict —
/// including the reported mismatch — is identical to differential_test()
/// at every thread count; the batch result additionally carries outcome
/// tallies and the coverage map.
BatchResult differential_test_batch(const ParserSpec& spec, const TcamProgram& prog,
                                    const DiffTestOptions& options = {});

}  // namespace parserhawk
