// PacketRef: the batch engine's zero-copy packet currency (DESIGN.md §12).
//
// A PacketRef is a borrowed, read-only window onto one packet's wire-order
// bits, backed either by a BitVec (synthetic traces, difftest corpora,
// counterexamples) or by a raw byte window into a buffer someone else owns
// (a pcap::PacketView aliasing the capture file's bytes). BatchRunner and
// the interpreters consume refs, so replaying a multi-gigabit capture
// costs one allocation for the file — not one Bitstream copy per packet
// per side, which is what the pre-§12 engine paid.
//
// Lifetime contract: a ref never owns anything. The backing BitVec or
// byte buffer must outlive every use of the ref, and mutating the backing
// bytes changes what the ref reads (tests/test_pcap.cpp pins both
// properties). materialize() is the escape hatch for results that must
// outlive the backing, e.g. the recorded mismatch input.
#pragma once

#include <vector>

#include "support/bitstream.h"
#include "support/bitvec.h"

namespace parserhawk {

struct PacketRef {
  const BitVec* bits = nullptr;
  const std::uint8_t* bytes = nullptr;
  int nbits = 0;

  PacketRef() = default;
  /// Implicit so every interpreter entry point keeps accepting a BitVec.
  /// A ref built from a temporary is fine as a function argument (the
  /// temporary outlives the call) but must never be stored.
  /*implicit*/ PacketRef(const BitVec& v) : bits(&v), nbits(v.size()) {}

  /// View over `nbits` wire-order bits of a raw byte buffer.
  static PacketRef over(const std::uint8_t* data, int nbits) {
    PacketRef r;
    r.bytes = data;
    r.nbits = nbits;
    return r;
  }

  int size() const { return nbits; }

  /// A read cursor over the viewed bits (still zero-copy).
  Bitstream stream() const {
    return bits != nullptr ? Bitstream(*bits) : Bitstream(bytes, nbits);
  }

  /// Copy the viewed bits into an owning BitVec.
  BitVec materialize() const {
    return bits != nullptr ? *bits : BitVec::from_bytes(bytes, 0, nbits);
  }
};

/// View an owned packet list (the backing vector must outlive the refs —
/// including not reallocating, so treat it as frozen).
inline std::vector<PacketRef> as_refs(const std::vector<BitVec>& packets) {
  return {packets.begin(), packets.end()};
}

}  // namespace parserhawk
