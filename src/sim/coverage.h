// Coverage accounting for the simulation engine (DESIGN.md §9).
//
// A CoverageMap records what a set of simulated packets actually
// exercised: which spec states were entered, which transition rules
// fired, which TCAM rows won a lookup, and how often either side hit the
// loop bound K. The differential tester uses it two ways: as a fuzzing
// fitness signal (keep an input iff it raises a counter) and as a gate
// (every rule of every example spec must fire at least once — an
// uncovered rule means the test corpus proves nothing about it).
//
// Maps are plain count vectors: merging is addition, so per-thread maps
// from the batch runner fold into a deterministic total regardless of
// how packets were scheduled. Totals are published to the global
// ph_obs metrics registry under the `cov.*` namespace (hit/total pairs
// as high-water gauges, exhaustion events as counters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "tcam/tcam.h"

namespace parserhawk {

struct CoverageMap {
  /// Times each spec state was entered (indexed by state id).
  std::vector<std::int64_t> state_hits;
  /// Times each transition rule fired: rule_hits[state][rule].
  std::vector<std::vector<std::int64_t>> rule_hits;
  /// Spec-side parses that ended at the loop bound K.
  std::int64_t spec_exhausted = 0;

  /// Times each TCAM row won a lookup (indexed by position in
  /// TcamProgram::entries).
  std::vector<std::int64_t> row_hits;
  /// Impl-side parses that ended at the row bound K.
  std::int64_t impl_exhausted = 0;

  /// Map shaped to `spec` (states and rules), with zero counts.
  static CoverageMap for_spec(const ParserSpec& spec);
  /// Map shaped to `spec` and `prog` (adds the row dimension).
  static CoverageMap for_pair(const ParserSpec& spec, const TcamProgram& prog);

  // -- Recording (auto-grow, so a map is never out of bounds even when
  //    shared across differently-shaped programs). --
  void on_spec_state(int state);
  void on_spec_rule(int state, int rule);
  void on_row(int entry_index);

  /// Add every count of `other` into this map (vectors grow as needed).
  void merge(const CoverageMap& other);

  // -- Accounting. --
  int states_total() const { return static_cast<int>(state_hits.size()); }
  int states_hit() const;
  int rules_total() const;
  int rules_hit() const;
  int rows_total() const { return static_cast<int>(row_hits.size()); }
  int rows_hit() const;

  /// True when every rule of every state fired at least once.
  bool all_rules_covered() const { return rules_hit() == rules_total(); }

  /// "state 'foo' rule 2, state 'bar' rule 0" — the rules never fired
  /// (diagnostics for the coverage gate; `spec` supplies state names).
  std::string uncovered_rules(const ParserSpec& spec) const;

  /// Publish into the global metrics registry: cov.spec.states_hit/_total,
  /// cov.spec.rules_hit/_total, cov.impl.rows_hit/_total as high-water
  /// gauges, cov.spec.exhausted / cov.impl.exhausted as counters. No-op
  /// when metrics are disabled.
  void publish() const;
};

}  // namespace parserhawk
