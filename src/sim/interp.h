// Executable semantics: the reference interpreters for specifications and
// TCAM implementations, and the parse-result data model.
//
// Spec side (Figure 7): a state extracts its fields, then evaluates its
// transition key over the freshly-extracted values, then takes the first
// matching rule.
//
// Impl side (Figure 6): a TCAM row's condition is evaluated first — over
// previously extracted fields and/or lookahead bits — and only the winning
// row's ExtractSet runs, followed by its transition. This ordering
// difference is fundamental to the compilation problem: the implementation
// must re-stage the specification's extract-then-match behavior into
// match-then-extract rows.
//
// Correctness (§4): Impl is correct iff Impl(I) == Spec(I) — same output
// dictionary and same accept/reject outcome — for all inputs I.
#pragma once

#include <map>
#include <string>

#include "ir/ir.h"
#include "sim/packet_ref.h"
#include "support/bitvec.h"
#include "tcam/matcher.h"
#include "tcam/tcam.h"

namespace parserhawk {

struct CoverageMap;

/// The output dictionary OD: field index -> extracted value. Fields never
/// extracted on the taken path are absent.
using OutputDict = std::map<int, BitVec>;

enum class ParseOutcome {
  Accepted,
  Rejected,
  Exhausted,  ///< K iterations elapsed in a real state (loop bound hit)
};

std::string to_string(ParseOutcome outcome);

struct ParseResult {
  ParseOutcome outcome = ParseOutcome::Rejected;
  OutputDict dict;
  int bits_consumed = 0;
  int iterations = 0;

  friend bool operator==(const ParseResult& a, const ParseResult& b) {
    return a.outcome == b.outcome && a.dict == b.dict;
  }
};

/// Equivalence per §4: same outcome, and the same dictionary whenever the
/// packet is accepted. On rejected packets the dictionary is unobservable
/// (the device drops the packet), so match-then-extract implementations may
/// legitimately have extracted fewer fields than the specification when the
/// input runs out mid-state.
inline bool equivalent(const ParseResult& a, const ParseResult& b) {
  if (a.outcome != b.outcome) return false;
  return a.outcome != ParseOutcome::Accepted || a.dict == b.dict;
}

/// Run a specification on `input`, taking at most `max_iterations` state
/// transitions. Out-of-input extraction or lookahead rejects; a missing
/// matching rule rejects (P4 semantics). When `coverage` is given, state
/// entries, fired rules and loop-bound exhaustions are recorded into it.
/// `input` is a zero-copy view (a BitVec converts implicitly); the
/// backing buffer must outlive the call.
ParseResult run_spec(const ParserSpec& spec, const PacketRef& input, int max_iterations = 64,
                     CoverageMap* coverage = nullptr);

/// Run a compiled TCAM program on `input` (Figure 6 pseudo-code). The row
/// bound K comes from `prog.max_iterations`. `coverage` (optional)
/// records winning rows and exhaustions.
ParseResult run_impl(const TcamProgram& prog, const PacketRef& input,
                     CoverageMap* coverage = nullptr);

/// Same semantics as the TcamProgram overload — bit-identical results on
/// every input — but resolves each lookup through the pre-packed
/// bit-parallel matcher instead of re-scanning the row list (the batch
/// engine's hot path; see src/tcam/matcher.h).
ParseResult run_impl(const CompiledMatcher& matcher, const PacketRef& input,
                     CoverageMap* coverage = nullptr);

/// The traffic-scale impl interpreter (DESIGN.md §12): run `n` packets in
/// lockstep, bucketing the packets that sit in the same (table, state)
/// each iteration and resolving all their lookups with one wide
/// CompiledMatcher::match_batch call per bucket — N packets per key-bit
/// step instead of one. Results (and coverage counts, when `coverage` is
/// non-null) are bit-identical to calling the single-packet run_impl
/// overload per packet, at every SimdLevel.
void run_impl_batch(const CompiledMatcher& matcher, const PacketRef* packets, int n,
                    ParseResult* results, CoverageMap* coverage = nullptr,
                    SimdLevel level = SimdLevel::Auto);

/// Render an output dictionary using `fields` for names.
std::string to_string(const OutputDict& dict, const std::vector<Field>& fields);

}  // namespace parserhawk
