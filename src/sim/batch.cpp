#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace parserhawk {

namespace {

/// Per-packet record filled during the parallel phase, aggregated in
/// index order afterwards so every total is schedule-independent.
struct PacketVerdict {
  std::uint8_t spec_outcome = 0;
  std::uint8_t impl_outcome = 0;
  bool agree = false;
  bool evaluated = false;
};

}  // namespace

void BatchResult::publish_metrics(int threads_used) const {
  if (!obs::metrics_on()) return;
  obs::count("sim.batch.runs");
  obs::count("sim.batch.samples", evaluated);
  obs::count("sim.batch.skipped", skipped);
  obs::count("sim.batch.agree", agree);
  obs::count("sim.batch.mismatch", mismatches);
  static const char* kOutcomeNames[3] = {"accept", "reject", "exhausted"};
  for (int o = 0; o < 3; ++o) {
    obs::count(std::string("sim.batch.spec.") + kOutcomeNames[o], spec_outcomes[o]);
    obs::count(std::string("sim.batch.impl.") + kOutcomeNames[o], impl_outcomes[o]);
  }
  obs::maximize("sim.batch.threads", threads_used);
  coverage.publish();
}

BatchRunner::BatchRunner(const ParserSpec& spec, const TcamProgram& prog, BatchOptions options)
    : spec_(&spec), prog_(&prog), options_(std::move(options)), matcher_(prog) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.chunk < 1) options_.chunk = 1;
}

BatchResult BatchRunner::run(const std::vector<PacketRef>& inputs) const {
  obs::Span span("sim_batch");
  if (span.active()) {
    span.arg("spec", spec_->name);
    span.arg("inputs", static_cast<int>(inputs.size()));
  }

  const std::int64_t n = static_cast<std::int64_t>(inputs.size());
  const SimdLevel level = options_.simd == SimdLevel::Auto ? dispatch_level() : options_.simd;
  BatchResult result;
  result.submitted = n;
  if (options_.collect_coverage) result.coverage = CoverageMap::for_pair(*spec_, *prog_);

  std::vector<PacketVerdict> verdicts(inputs.size());
  // Best (lowest) mismatch index so far; ranges beyond it are skippable.
  std::atomic<std::int64_t> first_bad{n};

  // One contiguous range [lo, hi): spec side per packet, impl side in one
  // wide lockstep pass, then verdicts + cancellation. Coverage goes into
  // `cov` (per-chunk map, merged deterministically later) — never into
  // shared state from a worker.
  auto evaluate_range = [&](std::int64_t lo, std::int64_t hi, CoverageMap* cov) {
    const int m = static_cast<int>(hi - lo);
    std::vector<ParseResult> spec_r(static_cast<std::size_t>(m));
    std::vector<ParseResult> impl_r(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j)
      spec_r[static_cast<std::size_t>(j)] = run_spec(
          *spec_, inputs[static_cast<std::size_t>(lo + j)], options_.max_iterations, cov);
    run_impl_batch(matcher_, inputs.data() + lo, m, impl_r.data(), cov, level);
    for (int j = 0; j < m; ++j) {
      const std::int64_t i = lo + j;
      PacketVerdict& v = verdicts[static_cast<std::size_t>(i)];
      v.spec_outcome = static_cast<std::uint8_t>(spec_r[static_cast<std::size_t>(j)].outcome);
      v.impl_outcome = static_cast<std::uint8_t>(impl_r[static_cast<std::size_t>(j)].outcome);
      v.agree = equivalent(spec_r[static_cast<std::size_t>(j)], impl_r[static_cast<std::size_t>(j)]);
      v.evaluated = true;
      if (!v.agree && options_.stop_on_mismatch) {
        std::int64_t cur = first_bad.load(std::memory_order_relaxed);
        while (i < cur && !first_bad.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
        }
      }
    }
  };

  ThreadPool* pool = options_.pool;
  const int threads = pool != nullptr ? pool->worker_count() : options_.threads;
  const std::int64_t chunk = options_.chunk;
  const std::int64_t num_chunks = (n + chunk - 1) / chunk;

  if (pool == nullptr && options_.threads <= 1) {
    // Single-thread driver: same chunked evaluate/aggregate path, no pool.
    CoverageMap local;  // keep recording symmetric with workers
    CoverageMap* cov = options_.collect_coverage ? &local : nullptr;
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      const std::int64_t lo = c * chunk;
      // Cooperative cancellation at chunk granularity: a range is only
      // skipped when every index in it lies beyond the best-known
      // mismatch, so the final winner and its prefix are always evaluated.
      if (options_.stop_on_mismatch && lo > first_bad.load(std::memory_order_relaxed)) break;
      evaluate_range(lo, std::min(n, lo + chunk), cov);
    }
    if (options_.collect_coverage && first_bad.load(std::memory_order_relaxed) >= n)
      result.coverage.merge(local);
  } else {
    std::optional<ThreadPool> owned;
    if (pool == nullptr) {
      owned.emplace(options_.threads);
      pool = &*owned;
    }
    std::vector<CoverageMap> chunk_cov(static_cast<std::size_t>(num_chunks));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(num_chunks));
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      tasks.push_back([&, c] {
        const std::int64_t lo = c * chunk;
        if (options_.stop_on_mismatch && lo > first_bad.load(std::memory_order_relaxed)) return;
        CoverageMap* cov =
            options_.collect_coverage ? &chunk_cov[static_cast<std::size_t>(c)] : nullptr;
        evaluate_range(lo, std::min(n, lo + chunk), cov);
      });
    }
    pool->run_all(std::move(tasks));
    if (options_.collect_coverage && first_bad.load(std::memory_order_relaxed) >= n)
      for (const auto& cov : chunk_cov) result.coverage.merge(cov);
  }

  // ---- Deterministic aggregation over the prefix [0, first_mismatch]. ----
  const std::int64_t bad = first_bad.load(std::memory_order_relaxed);
  const std::int64_t last = bad < n ? bad : n - 1;
  for (std::int64_t i = 0; i <= last; ++i) {
    const PacketVerdict& v = verdicts[static_cast<std::size_t>(i)];
    ++result.evaluated;
    ++result.spec_outcomes[v.spec_outcome];
    ++result.impl_outcomes[v.impl_outcome];
    if (v.agree)
      ++result.agree;
    else
      ++result.mismatches;
  }
  result.skipped = n - result.evaluated;

  if (bad < n) {
    result.first_mismatch = bad;
    // Replay the winner for the full mismatch record, and recompute the
    // prefix coverage exactly: evaluated ranges may contain packets
    // beyond the prefix (chunk-granular cancellation), on any driver.
    if (options_.collect_coverage) {
      result.coverage = CoverageMap::for_pair(*spec_, *prog_);
      for (std::int64_t i = 0; i <= bad; ++i) {
        run_spec(*spec_, inputs[static_cast<std::size_t>(i)], options_.max_iterations,
                 &result.coverage);
        run_impl(matcher_, inputs[static_cast<std::size_t>(i)], &result.coverage);
      }
    }
    DiffMismatch mm;
    mm.input = inputs[static_cast<std::size_t>(bad)].materialize();
    mm.spec_result = run_spec(*spec_, mm.input, options_.max_iterations);
    mm.impl_result = run_impl(matcher_, mm.input);
    result.mismatch = std::move(mm);
  }

  if (span.active()) {
    span.arg("evaluated", static_cast<int>(result.evaluated));
    span.arg("mismatch", result.mismatch.has_value() ? 1 : 0);
  }
  result.publish_metrics(threads);
  return result;
}

BatchResult BatchRunner::run(const std::vector<BitVec>& inputs) const {
  return run(as_refs(inputs));
}

BatchResult run_batch(const ParserSpec& spec, const TcamProgram& prog,
                      const std::vector<BitVec>& inputs, const BatchOptions& options) {
  return BatchRunner(spec, prog, options).run(inputs);
}

BatchResult run_batch(const ParserSpec& spec, const TcamProgram& prog,
                      const std::vector<PacketRef>& inputs, const BatchOptions& options) {
  return BatchRunner(spec, prog, options).run(inputs);
}

}  // namespace parserhawk
