#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace parserhawk {

namespace {

/// Per-packet record filled during the parallel phase, aggregated in
/// index order afterwards so every total is schedule-independent.
struct PacketVerdict {
  std::uint8_t spec_outcome = 0;
  std::uint8_t impl_outcome = 0;
  bool agree = false;
  bool evaluated = false;
};

}  // namespace

void BatchResult::publish_metrics(int threads_used) const {
  if (!obs::metrics_on()) return;
  obs::count("sim.batch.runs");
  obs::count("sim.batch.samples", evaluated);
  obs::count("sim.batch.skipped", skipped);
  obs::count("sim.batch.agree", agree);
  obs::count("sim.batch.mismatch", mismatches);
  static const char* kOutcomeNames[3] = {"accept", "reject", "exhausted"};
  for (int o = 0; o < 3; ++o) {
    obs::count(std::string("sim.batch.spec.") + kOutcomeNames[o], spec_outcomes[o]);
    obs::count(std::string("sim.batch.impl.") + kOutcomeNames[o], impl_outcomes[o]);
  }
  obs::maximize("sim.batch.threads", threads_used);
  coverage.publish();
}

BatchRunner::BatchRunner(const ParserSpec& spec, const TcamProgram& prog, BatchOptions options)
    : spec_(&spec), prog_(&prog), options_(std::move(options)), matcher_(prog) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.chunk < 1) options_.chunk = 1;
}

BatchResult BatchRunner::run(const std::vector<BitVec>& inputs) const {
  obs::Span span("sim_batch");
  if (span.active()) {
    span.arg("spec", spec_->name);
    span.arg("inputs", static_cast<int>(inputs.size()));
  }

  const std::int64_t n = static_cast<std::int64_t>(inputs.size());
  BatchResult result;
  result.submitted = n;
  if (options_.collect_coverage) result.coverage = CoverageMap::for_pair(*spec_, *prog_);

  std::vector<PacketVerdict> verdicts(inputs.size());
  // Best (lowest) mismatch index so far; packets beyond it are skippable.
  std::atomic<std::int64_t> first_bad{n};

  // One packet: run both sides, record the verdict, advance cancellation.
  // Coverage goes into `cov` (per-chunk map, merged deterministically
  // later) — never into shared state from a worker.
  auto evaluate = [&](std::int64_t i, CoverageMap* cov) {
    ParseResult s = run_spec(*spec_, inputs[static_cast<std::size_t>(i)], options_.max_iterations,
                             cov);
    ParseResult m = run_impl(matcher_, inputs[static_cast<std::size_t>(i)], cov);
    PacketVerdict& v = verdicts[static_cast<std::size_t>(i)];
    v.spec_outcome = static_cast<std::uint8_t>(s.outcome);
    v.impl_outcome = static_cast<std::uint8_t>(m.outcome);
    v.agree = equivalent(s, m);
    v.evaluated = true;
    if (!v.agree && options_.stop_on_mismatch) {
      std::int64_t cur = first_bad.load(std::memory_order_relaxed);
      while (i < cur && !first_bad.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
      }
    }
  };

  ThreadPool* pool = options_.pool;
  const int threads = pool != nullptr ? pool->worker_count() : options_.threads;

  if (pool == nullptr && options_.threads <= 1) {
    // Scalar driver: same evaluate/aggregate path, no pool.
    CoverageMap* cov = options_.collect_coverage ? &result.coverage : nullptr;
    CoverageMap local;  // keep per-packet recording symmetric with workers
    for (std::int64_t i = 0; i < n; ++i) {
      if (options_.stop_on_mismatch && i > first_bad.load(std::memory_order_relaxed)) break;
      evaluate(i, cov ? &local : nullptr);
    }
    if (cov) result.coverage.merge(local);
  } else {
    std::optional<ThreadPool> owned;
    if (pool == nullptr) {
      owned.emplace(options_.threads);
      pool = &*owned;
    }
    const std::int64_t chunk = options_.chunk;
    const std::int64_t num_chunks = (n + chunk - 1) / chunk;
    std::vector<CoverageMap> chunk_cov(static_cast<std::size_t>(num_chunks));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<std::size_t>(num_chunks));
    for (std::int64_t c = 0; c < num_chunks; ++c) {
      tasks.push_back([&, c] {
        CoverageMap* cov = options_.collect_coverage ? &chunk_cov[static_cast<std::size_t>(c)] : nullptr;
        const std::int64_t lo = c * chunk;
        const std::int64_t hi = std::min(n, lo + chunk);
        for (std::int64_t i = lo; i < hi; ++i) {
          // Cooperative cancellation: only indices strictly beyond the
          // best-known mismatch may be skipped, so the final winner and
          // its prefix are always fully evaluated.
          if (options_.stop_on_mismatch && i > first_bad.load(std::memory_order_relaxed)) return;
          evaluate(i, cov);
        }
      });
    }
    pool->run_all(std::move(tasks));
    // chunk_cov is merged below only on the mismatch-free path; after a
    // mismatch the prefix coverage is recomputed exactly instead.
    if (options_.collect_coverage && first_bad.load(std::memory_order_relaxed) >= n)
      for (const auto& cov : chunk_cov) result.coverage.merge(cov);
  }

  // ---- Deterministic aggregation over the prefix [0, first_mismatch]. ----
  const std::int64_t bad = first_bad.load(std::memory_order_relaxed);
  const std::int64_t last = bad < n ? bad : n - 1;
  for (std::int64_t i = 0; i <= last; ++i) {
    const PacketVerdict& v = verdicts[static_cast<std::size_t>(i)];
    ++result.evaluated;
    ++result.spec_outcomes[v.spec_outcome];
    ++result.impl_outcomes[v.impl_outcome];
    if (v.agree)
      ++result.agree;
    else
      ++result.mismatches;
  }
  result.skipped = n - result.evaluated;

  if (bad < n) {
    result.first_mismatch = bad;
    // Replay the winner for the full mismatch record, and — when workers
    // ran — recompute the prefix coverage exactly (per-chunk maps may
    // contain packets beyond the prefix).
    if (options_.collect_coverage && (options_.pool != nullptr || options_.threads > 1)) {
      result.coverage = CoverageMap::for_pair(*spec_, *prog_);
      for (std::int64_t i = 0; i <= bad; ++i) {
        run_spec(*spec_, inputs[static_cast<std::size_t>(i)], options_.max_iterations,
                 &result.coverage);
        run_impl(matcher_, inputs[static_cast<std::size_t>(i)], &result.coverage);
      }
    }
    DiffMismatch mm;
    mm.input = inputs[static_cast<std::size_t>(bad)];
    mm.spec_result = run_spec(*spec_, mm.input, options_.max_iterations);
    mm.impl_result = run_impl(matcher_, mm.input);
    result.mismatch = std::move(mm);
  }

  if (span.active()) {
    span.arg("evaluated", static_cast<int>(result.evaluated));
    span.arg("mismatch", result.mismatch.has_value() ? 1 : 0);
  }
  result.publish_metrics(threads);
  return result;
}

BatchResult run_batch(const ParserSpec& spec, const TcamProgram& prog,
                      const std::vector<BitVec>& inputs, const BatchOptions& options) {
  return BatchRunner(spec, prog, options).run(inputs);
}

}  // namespace parserhawk
