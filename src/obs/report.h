// Per-compile attribution reports (DESIGN.md §11).
//
// Spans (trace.h) and metrics (metrics.h) record that time passed; a
// CompileReport records *where one compile's budget went*: per top-level
// phase (frontend, cache probe, solve, assemble, postopt, verify, difftest),
// per parse state, per Opt7 shape variant, per Z3 phase (synth / verify /
// equiv), plus CEGIS iteration counts, cache hit/miss attribution, winner
// provenance (which variant won at which budget, restricted or not) and
// deadline slack. Rendered as JSON (`to_json`) and as a human table
// (`explain`) by `hawk_compile --report-out/--explain`.
//
// Attribution model under parallelism: top-level phases are wall-clock
// intervals measured on the coordinating thread, so their sum tracks the
// total compile wall time regardless of thread count. Per-state seconds are
// children of the solve phase and may overlap each other when the pool runs
// states concurrently — they sum to the solve phase's wall time only at
// --threads 1. test_report.cpp asserts the >=95% attribution bound in the
// single-threaded configuration and structural invariance elsewhere.
//
// Plumbing: compile() installs its builder process-globally
// (install_report), and worker threads tag themselves with thread-local
// state/variant scopes (ReportStateScope / ReportVariantScope). Deep hooks —
// timed_check() in z3_obs.h, the CEGIS loop, the cache — then attribute into
// the right bucket via the free report_*() functions without any parameter
// plumbing, because each pool job runs one state's synthesis entirely on one
// thread. All hooks are no-ops (one relaxed atomic load) when no report is
// being built.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace parserhawk::obs {

/// Z3 accounting for one phase ("synth", "verify", "equiv") within one
/// state or variant.
struct ZPhaseReport {
  std::int64_t queries = 0;
  std::int64_t sat = 0;
  std::int64_t unsat = 0;
  std::int64_t unknown = 0;  ///< includes per-query timeouts
  double seconds = 0;
};

/// One Opt7 shape variant raced for a state.
struct VariantReport {
  int variant = -1;
  double seconds = 0;  ///< wall time this variant's attempt consumed
  std::int64_t cegis_rounds = 0;
  bool winner = false;
  std::map<std::string, ZPhaseReport> z3;
};

/// One parse state's attribution.
struct StateReport {
  std::string name;
  double seconds = 0;   ///< wall time spent producing this state's solution
  std::string source;   ///< "solver" | "cache" | "trivial"
  int winner_variant = -1;
  double winner_budget = 0;
  bool winner_restricted = false;
  std::int64_t budget_attempts = 0;  ///< budget-ascent attempts across variants
  std::int64_t cegis_rounds = 0;     ///< total CEGIS rounds across variants
  std::int64_t cache_lookups = 0;
  double cache_lookup_sec = 0;
  std::map<std::string, ZPhaseReport> z3;  ///< summed over variants
  std::map<int, VariantReport> variants;
};

/// One top-level compile phase (coordinating-thread wall interval).
struct PhaseReport {
  std::string name;
  double seconds = 0;
};

struct CompileReport {
  std::string spec;
  std::string hw;
  std::string status;  ///< CompileStatus name ("Ok", "Timeout", ...)
  std::string reason;  ///< failure detail, empty on success
  double total_sec = 0;
  double deadline_sec = 0;        ///< 0 = no deadline
  double deadline_slack_sec = 0;  ///< deadline remaining at finish (>=0)
  int threads = 1;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::vector<PhaseReport> phases;  ///< in execution order
  std::vector<StateReport> states;  ///< sorted by name (deterministic)

  /// Sum of top-level phase seconds — the portion of total_sec the report
  /// explains. The acceptance bound: attributed_sec() >= 0.95 * total_sec.
  double attributed_sec() const;
  /// Sum of per-state seconds (overlapping under parallelism).
  double state_sec() const;

  std::string to_json() const;
  bool write_json(const std::string& path) const;
  /// Human-readable attribution table (the --explain output).
  std::string explain() const;
};

/// Accumulates one compile's attribution. Thread-safe: hooks may fire from
/// any pool thread. Create on the stack in compile(), install globally,
/// uninstall before it dies.
class ReportBuilder {
 public:
  ReportBuilder();
  ~ReportBuilder();
  ReportBuilder(const ReportBuilder&) = delete;
  ReportBuilder& operator=(const ReportBuilder&) = delete;

  void set_context(const std::string& spec, const std::string& hw, int threads,
                   double deadline_sec);
  void set_outcome(const std::string& status, const std::string& reason,
                   double total_sec, double deadline_slack_sec);

  void phase_done(const std::string& name, double seconds);
  /// Final per-state outcome. `source` is "solver" | "cache" | "trivial".
  void state_result(const std::string& state, double seconds, const std::string& source,
                    int winner_variant, double winner_budget, bool winner_restricted,
                    std::int64_t budget_attempts);
  void cache_lookup(const std::string& state, bool hit, double seconds);
  /// One Z3 query attributed to (state, variant). variant < 0 = no variant
  /// context (e.g. equivalence check). outcome: "sat"|"unsat"|"unknown".
  void z3_query(const std::string& state, int variant, const std::string& phase,
                double seconds, const std::string& outcome);
  void cegis_rounds(const std::string& state, int variant, std::int64_t rounds);
  void variant_time(const std::string& state, int variant, double seconds);

  /// Snapshot the accumulated report (call after set_outcome).
  CompileReport report() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Install `b` as the process-global active builder (nullptr uninstalls).
/// One compile at a time owns the slot; a second concurrent compile simply
/// goes unreported (hooks check the pointer they loaded).
void install_report(ReportBuilder* b);
ReportBuilder* report_active();

/// True when some builder is installed — cheap gate for hook call sites.
bool report_on();

// ---------------------------------------------------------------------------
// Thread-local attribution context. A pool job solving state S under
// variant V wraps itself in these scopes; deep hooks read them.
// ---------------------------------------------------------------------------

class ReportStateScope {
 public:
  explicit ReportStateScope(const std::string& state);
  ~ReportStateScope();
  ReportStateScope(const ReportStateScope&) = delete;
  ReportStateScope& operator=(const ReportStateScope&) = delete;

 private:
  std::string prev_;
  bool had_prev_;
};

class ReportVariantScope {
 public:
  explicit ReportVariantScope(int variant);
  ~ReportVariantScope();
  ReportVariantScope(const ReportVariantScope&) = delete;
  ReportVariantScope& operator=(const ReportVariantScope&) = delete;

 private:
  int prev_;
};

/// Current thread's attribution context ("" / -1 when unset).
const std::string& report_current_state();
int report_current_variant();

// ---------------------------------------------------------------------------
// Deep hooks — no-ops when no builder is installed.
// ---------------------------------------------------------------------------

/// Attribute one Z3 query to the calling thread's (state, variant) context.
void report_z3(const std::string& phase, double seconds, const std::string& outcome);
/// Attribute a finished CEGIS loop's round count to the current context.
void report_cegis_rounds(std::int64_t rounds);
/// Attribute one cache probe for `state`.
void report_cache(const std::string& state, bool hit, double seconds);
/// Record a state's final outcome (see ReportBuilder::state_result).
void report_state_result(const std::string& state, double seconds, const std::string& source,
                         int winner_variant, double winner_budget, bool winner_restricted,
                         std::int64_t budget_attempts);
/// Record wall time one variant's attempt consumed for the current state.
void report_variant_time(const std::string& state, int variant, double seconds);

/// RAII top-level phase timer: records a PhaseReport on destruction when a
/// builder is active (coordinating thread only — phases are wall intervals).
class ReportPhase {
 public:
  explicit ReportPhase(const char* name);
  ~ReportPhase();
  ReportPhase(const ReportPhase&) = delete;
  ReportPhase& operator=(const ReportPhase&) = delete;

  /// Stop the timer and record now (dtor becomes a no-op).
  void end();

 private:
  const char* name_;
  std::int64_t start_ns_;
  bool done_;
};

}  // namespace parserhawk::obs
