// Span/event tracing for the synthesis pipeline (DESIGN.md §7).
//
// A process-global Tracer records timing spans (RAII `Span`), instant
// events, and counter samples into per-thread buffers that are merged only
// at flush, so concurrent Opt7 portfolio workers never contend on a shared
// log. Two exporters:
//
//   * Chrome `trace_event` JSON — loads in Perfetto / chrome://tracing;
//     each worker thread is its own track (named via set_thread_name), so
//     the per-state fan-out and per-budget shape races are visible as
//     overlapping spans.
//   * JSONL — one structured event per line, for grep/jq-style analysis.
//
// Disabled (the default) the hot path is a single relaxed atomic load per
// span site: no locks, no allocation, no clock reads. Tracing is opt-in via
// Tracer::enable() (hawk_compile --trace-out / PH_TRACE, bench PH_TRACE).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/flight.h"
#include "obs/json.h"

namespace parserhawk::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when the global tracer is recording. One relaxed load; call sites
/// use this to skip building dynamic span labels/args entirely.
inline bool tracing() { return detail::g_trace_enabled.load(std::memory_order_relaxed); }

/// One recorded event. `dur_ns < 0` marks an instant event.
struct TraceEvent {
  std::string name;
  std::string args_json;  ///< rendered JSON object, or empty
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = -1;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  /// The process-global tracer. Never destroyed (leaked on purpose) so
  /// thread-local buffer handles can outlive main's statics safely.
  static Tracer& get();

  /// Start recording; resets the time origin. Idempotent.
  void enable();
  /// Stop recording. Already-buffered events stay until reset().
  void disable();
  bool enabled() const { return detail::g_trace_enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since enable() on the monotonic clock.
  std::int64_t now_ns() const;

  /// Record a completed span / an instant event on the calling thread's
  /// buffer. No-ops when disabled.
  void record_span(std::string name, std::int64_t ts_ns, std::int64_t dur_ns,
                   std::string args_json = {});
  void record_instant(std::string name, std::string args_json = {});

  /// Name the calling thread's track in the Chrome trace ("worker 3").
  /// Cheap and safe to call whether or not tracing is enabled.
  void set_thread_name(std::string name);

  /// Merge all per-thread buffers (events sorted by timestamp).
  std::vector<TraceEvent> snapshot() const;
  /// Names assigned via set_thread_name, as (tid, name) pairs.
  std::vector<std::pair<std::uint32_t, std::string>> thread_names() const;

  /// Chrome trace_event exporter: {"traceEvents": [...]} with one "M"
  /// thread_name metadata record per named thread that logged events.
  std::string chrome_trace_json() const;
  /// JSONL exporter: one {"name":...,"ts_us":...,"dur_us":...,"tid":...}
  /// object per line; instant events carry "ph":"i".
  std::string jsonl() const;

  bool write_chrome_trace(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

  /// Drop all buffered events and thread names (tids are not reused).
  void reset();

 private:
  Tracer() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII span. Construction with a static name is one relaxed load (plus a
/// lock-free flight-ring write while the always-on flight recorder is
/// enabled); dynamic labels and args are added only behind active().
/// Every span also feeds the flight recorder: SpanBegin at construction
/// (static name) and SpanEnd at close (labeled name + duration), so a
/// post-mortem ring shows what was executing even with tracing off.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing()) begin(name);
    if (flight::enabled()) {
      cname_ = name;
      flight_start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
      flight::record(flight::EventKind::SpanBegin, name);
    }
  }
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Append ":<label>" to the span name (shows on the Perfetto track and
  /// in flight-recorder SpanEnd events).
  void label(const std::string& suffix) {
    if (active_) name_ += ":" + suffix;
    if (cname_ != nullptr) flight_label_ += ":" + suffix;
  }

  void arg(const char* key, const std::string& v) {
    if (active_) args_.str(key, v);
  }
  void arg(const char* key, const char* v) {  // keeps literals off the bool overload
    if (active_) args_.str(key, v);
  }
  void arg(const char* key, std::int64_t v) {
    if (active_) args_.num(key, v);
  }
  void arg(const char* key, int v) { arg(key, static_cast<std::int64_t>(v)); }
  void arg(const char* key, double v) {
    if (active_) args_.num(key, v);
  }
  void arg(const char* key, bool v) {
    if (active_) args_.boolean(key, v);
  }

  /// Close the span now (idempotent; the destructor is then a no-op).
  void end();

 private:
  void begin(const char* name);
  void flight_end();

  bool active_ = false;
  std::int64_t start_ns_ = 0;
  std::string name_;
  JsonObject args_;
  const char* cname_ = nullptr;  ///< non-null while a flight SpanEnd is owed
  std::string flight_label_;     ///< labels accumulated for the flight event
  std::int64_t flight_start_ns_ = 0;
};

/// Convenience wrappers over the global tracer.
inline void trace_instant(const char* name, std::string args_json = {}) {
  if (tracing()) Tracer::get().record_instant(name, std::move(args_json));
}
inline void set_thread_name(std::string name) { Tracer::get().set_thread_name(std::move(name)); }

}  // namespace parserhawk::obs
