// Named counter / histogram / high-water-gauge registry (DESIGN.md §7).
//
// Captures the solver-level telemetry the trace spans are too coarse for:
// Z3 query counts and outcomes (sat/unsat/unknown/timeout) with a per-query
// wall-time histogram per phase, CEGIS behavior (counterexamples per call,
// budget-ascent steps, Opt7 shape-variant winner index,
// cancellation-to-stop latency), and thread-pool health (tasks run, steals,
// queue-depth high-water). Dumped as one JSON object (`to_json`), written
// as a sidecar by hawk_compile --metrics-out / PH_METRICS and by every
// bench binary's BENCH_<name>.json.
//
// Disabled (the default) every record call is a single relaxed atomic
// load. Enabled, a record is one uncontended mutex acquisition plus a map
// lookup — noise next to the millisecond-scale Z3 queries it measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"

namespace parserhawk::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// True when the global registry is recording (one relaxed load).
inline bool metrics_on() { return detail::g_metrics_enabled.load(std::memory_order_relaxed); }

/// Log-scale histogram over seconds: bucket i counts observations in
/// [2^i * 1e-6, 2^(i+1) * 1e-6) seconds, i.e. 1 µs doubling up to ~67 s,
/// with under/overflow absorbed into the edge buckets.
///
/// Approximation error bound: because buckets double, any statistic
/// reconstructed from the bucket counts alone (quantile() below) knows a
/// sample only to within one power-of-two interval. quantile() answers the
/// bucket's geometric midpoint, so the multiplicative error versus the true
/// sample value is at most sqrt(2) ≈ 1.41x in either direction (exact
/// `count`/`sum`/`min`/`max` are tracked separately and are not
/// approximated). Edge buckets clamp to [min, max], which can only tighten
/// the bound.
struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;
  double sum = 0;    ///< exact sum of all observations (seconds)
  double min = 0;    ///< exact smallest observation
  double max = 0;    ///< exact largest observation
  std::vector<std::int64_t> buckets;  ///< kHistogramBuckets entries

  /// Mean of all observations (exact; 0 when empty).
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0; }

  /// Approximate q-quantile (q in [0,1]) reconstructed from the log2
  /// buckets: walks the cumulative counts to the target bucket and returns
  /// its geometric midpoint, clamped to [min, max]. Multiplicative error
  /// <= sqrt(2) (see struct doc). Returns 0 for an empty histogram.
  double quantile(double q) const;
};

inline constexpr int kHistogramBuckets = 27;

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

class Metrics {
 public:
  /// The process-global registry (leaked, like the Tracer).
  static Metrics& get();

  void enable() { detail::g_metrics_enabled.store(true, std::memory_order_relaxed); }
  void disable() { detail::g_metrics_enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return metrics_on(); }

  /// Add `delta` to counter `name` (created at 0 on first use).
  void add(const std::string& name, std::int64_t delta = 1);
  /// Record one observation into histogram `name` (value in seconds for
  /// time metrics, but any non-negative double works).
  void observe(const std::string& name, double value);
  /// Raise high-water gauge `name` to at least `value`.
  void maximize(const std::string& name, std::int64_t value);

  std::vector<CounterSnapshot> counters() const;
  /// High-water gauges as name/value pairs (same shape as counters()).
  std::vector<CounterSnapshot> gauges() const;
  std::vector<HistogramSnapshot> histograms() const;
  /// Value of one counter (0 when absent) — test/assertion helper.
  std::int64_t counter(const std::string& name) const;
  /// Value of one high-water gauge (0 when absent).
  std::int64_t gauge(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — see
  /// DESIGN.md §7 for the schema.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  void reset();

 private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience wrappers: no-ops (one relaxed load) when disabled. Each also
/// drops a breadcrumb into the flight recorder (flight.h) so a post-mortem
/// ring shows recent counter/histogram activity even when the full metrics
/// registry is off.
inline void count(const std::string& name, std::int64_t delta = 1) {
  if (metrics_on()) Metrics::get().add(name, delta);
  if (flight::enabled())
    flight::record(flight::EventKind::Count, name.c_str(), nullptr, delta);
}
inline void observe(const std::string& name, double value) {
  if (metrics_on()) Metrics::get().observe(name, value);
  if (flight::enabled())
    flight::record(flight::EventKind::Observe, name.c_str(), nullptr,
                   static_cast<std::int64_t>(value * 1e9));
}
inline void maximize(const std::string& name, std::int64_t value) {
  if (metrics_on()) Metrics::get().maximize(name, value);
}

}  // namespace parserhawk::obs
