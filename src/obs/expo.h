// Metrics exposition (DESIGN.md §11): immutable snapshots of the Metrics
// registry, snapshot deltas, and Prometheus text-format rendering — the
// pull surface the ROADMAP's synthesis-as-a-service daemon will serve from
// a /metrics endpoint.
//
// Name mapping: metric names in the registry use dots and dashes
// ("z3.synth.time_sec", "cegis.rounds_per_call"); Prometheus only allows
// [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid byte becomes '_' and the
// configurable prefix (default "ph_") is prepended:
//   z3.synth.queries -> ph_z3_synth_queries
//
// Histograms render in the standard cumulative form (`le` buckets with
// +Inf, `_sum`, `_count`) using the registry's log2 bucket bounds, plus
// convenience p50/p90/p99 gauges (`ph_<name>_p50` ...) computed via
// HistogramSnapshot::quantile — approximate within sqrt(2), see metrics.h.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace parserhawk::obs {

/// Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<CounterSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name (0 when absent).
  std::int64_t counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// Snapshot the global registry (works whether or not recording is enabled).
MetricsSnapshot take_snapshot();

/// `after - before`, element-wise: counters subtract, gauges keep `after`'s
/// high-water value, histograms subtract count/sum/buckets (min/max keep
/// `after`'s values — high-water marks don't difference). Entries absent
/// from `before` pass through unchanged; entries that did not change are
/// dropped. This is how a daemon scopes "what did this one request cost"
/// out of a long-lived registry.
MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Prometheus text exposition format, version 0.0.4. Deterministic output
/// (sorted by metric name). `prefix` is prepended to every family name.
std::string render_prometheus(const MetricsSnapshot& snap, const std::string& prefix = "ph_");

/// Sanitize one metric name for Prometheus ([a-zA-Z0-9_:], prefix applied).
std::string prometheus_name(const std::string& name, const std::string& prefix = "ph_");

/// render_prometheus(take_snapshot()) written to `path`.
bool write_prometheus(const std::string& path, const std::string& prefix = "ph_");

}  // namespace parserhawk::obs
