#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/json.h"

namespace parserhawk::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

struct Histogram {
  std::int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::int64_t buckets[kHistogramBuckets] = {};

  void observe(double v) {
    if (count == 0 || v < min) min = v;
    if (count == 0 || v > max) max = v;
    ++count;
    sum += v;
    int b = 0;
    if (v > 1e-6) {
      b = static_cast<int>(std::floor(std::log2(v / 1e-6))) + 1;
      b = std::clamp(b, 0, kHistogramBuckets - 1);
    }
    ++buckets[b];
  }
};

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk cumulative counts.
  std::int64_t rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  int b = static_cast<int>(buckets.size()) - 1;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      b = i;
      break;
    }
  }
  // Bucket 0 is [0, 1µs); bucket i >= 1 is [2^(i-1), 2^i) µs. Geometric
  // midpoint of the bucket, clamped to the exact observed range.
  double lo = b == 0 ? 1e-7 : 1e-6 * std::pow(2.0, b - 1);
  double hi = 1e-6 * std::pow(2.0, b == 0 ? 0 : b);
  double mid = std::sqrt(lo * hi);
  return std::clamp(mid, min, max);
}

struct Metrics::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;  // high-water marks
  std::map<std::string, Histogram> histograms;
};

Metrics& Metrics::get() {
  static Metrics* instance = new Metrics();  // leaked: see header
  return *instance;
}

Metrics::Impl& Metrics::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

void Metrics::add(const std::string& name, std::int64_t delta) {
  if (!enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.counters[name] += delta;
}

void Metrics::observe(const std::string& name, double value) {
  if (!enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.histograms[name].observe(value);
}

void Metrics::maximize(const std::string& name, std::int64_t value) {
  if (!enabled()) return;
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end())
    im.gauges[name] = value;
  else if (value > it->second)
    it->second = value;
}

std::vector<CounterSnapshot> Metrics::counters() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  std::vector<CounterSnapshot> out;
  for (const auto& [name, value] : im.counters) out.push_back(CounterSnapshot{name, value});
  return out;
}

std::vector<CounterSnapshot> Metrics::gauges() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  std::vector<CounterSnapshot> out;
  for (const auto& [name, value] : im.gauges) out.push_back(CounterSnapshot{name, value});
  return out;
}

std::vector<HistogramSnapshot> Metrics::histograms() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  std::vector<HistogramSnapshot> out;
  for (const auto& [name, h] : im.histograms) {
    HistogramSnapshot s;
    s.name = name;
    s.count = h.count;
    s.sum = h.sum;
    s.min = h.min;
    s.max = h.max;
    s.buckets.assign(h.buckets, h.buckets + kHistogramBuckets);
    out.push_back(std::move(s));
  }
  return out;
}

std::int64_t Metrics::counter(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.counters.find(name);
  return it == im.counters.end() ? 0 : it->second;
}

std::int64_t Metrics::gauge(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  auto it = im.gauges.find(name);
  return it == im.gauges.end() ? 0 : it->second;
}

std::string Metrics::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  JsonObject counters;
  for (const auto& [name, value] : im.counters) counters.num(name, value);
  JsonObject gauges;
  for (const auto& [name, value] : im.gauges) gauges.num(name, value);
  JsonObject histos;
  for (const auto& [name, h] : im.histograms) {
    JsonObject o;
    o.num("count", h.count).num("sum", h.sum).num("min", h.min).num("max", h.max);
    std::string buckets = "[";
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (i) buckets += ",";
      buckets += std::to_string(h.buckets[i]);
    }
    buckets += "]";
    o.field("bucket_counts", buckets);
    o.str("bucket_scheme", "le_seconds_pow2_from_1us");
    histos.field(name, o.render());
  }
  JsonObject root;
  root.field("counters", counters.render());
  root.field("gauges", gauges.render());
  root.field("histograms", histos.render());
  return root.render();
}

bool Metrics::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

void Metrics::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mutex);
  im.counters.clear();
  im.gauges.clear();
  im.histograms.clear();
}

}  // namespace parserhawk::obs
