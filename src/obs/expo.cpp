#include "obs/expo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace parserhawk::obs {

std::int64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

MetricsSnapshot take_snapshot() {
  MetricsSnapshot snap;
  Metrics& m = Metrics::get();
  snap.counters = m.counters();
  snap.gauges = m.gauges();
  snap.histograms = m.histograms();
  return snap;
}

MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out;
  std::map<std::string, std::int64_t> prev_counters;
  for (const auto& c : before.counters) prev_counters[c.name] = c.value;
  for (const auto& c : after.counters) {
    std::int64_t d = c.value - prev_counters[c.name];
    if (d != 0) out.counters.push_back(CounterSnapshot{c.name, d});
  }

  std::map<std::string, std::int64_t> prev_gauges;
  for (const auto& g : before.gauges) prev_gauges[g.name] = g.value;
  for (const auto& g : after.gauges) {
    auto it = prev_gauges.find(g.name);
    if (it == prev_gauges.end() || g.value != it->second)
      out.gauges.push_back(g);  // high-water marks don't subtract
  }

  std::map<std::string, const HistogramSnapshot*> prev_histos;
  for (const auto& h : before.histograms) prev_histos[h.name] = &h;
  for (const auto& h : after.histograms) {
    auto it = prev_histos.find(h.name);
    if (it == prev_histos.end()) {
      out.histograms.push_back(h);
      continue;
    }
    const HistogramSnapshot& p = *it->second;
    if (h.count == p.count) continue;  // no new observations
    HistogramSnapshot d = h;           // keep after's min/max (best effort)
    d.count = h.count - p.count;
    d.sum = h.sum - p.sum;
    for (std::size_t i = 0; i < d.buckets.size() && i < p.buckets.size(); ++i)
      d.buckets[i] -= p.buckets[i];
    out.histograms.push_back(std::move(d));
  }
  return out;
}

std::string prometheus_name(const std::string& name, const std::string& prefix) {
  std::string out = prefix;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

namespace {

std::string fmt_double(double v) {
  if (v != v || v > 1e300 || v < -1e300) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Upper bound (seconds) of log2 bucket `i`: bucket 0 is [0, 1µs), bucket i
/// in [1, kHistogramBuckets-2] has ub 2^i µs, the last bucket is +Inf.
std::string bucket_le(int i) {
  if (i >= kHistogramBuckets - 1) return "+Inf";
  return fmt_double(1e-6 * std::pow(2.0, i));
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snap, const std::string& prefix) {
  // Sort for deterministic output (registry snapshots are already sorted,
  // but delta() outputs preserve input order — normalize here).
  auto counters = snap.counters;
  auto gauges = snap.gauges;
  auto histograms = snap.histograms;
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);

  std::string out;
  for (const auto& c : counters) {
    std::string n = prometheus_name(c.name, prefix);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    std::string n = prometheus_name(g.name, prefix);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    std::string n = prometheus_name(h.name, prefix);
    out += "# TYPE " + n + " histogram\n";
    std::int64_t cumulative = 0;
    for (int i = 0; i < static_cast<int>(h.buckets.size()); ++i) {
      cumulative += h.buckets[i];
      out += n + "_bucket{le=\"" + bucket_le(i) + "\"} " + std::to_string(cumulative) + "\n";
    }
    // Guard against a short bucket vector: +Inf must always be present and
    // equal _count.
    if (h.buckets.size() < static_cast<std::size_t>(kHistogramBuckets))
      out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + fmt_double(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
    for (auto [q, tag] : {std::pair<double, const char*>{0.5, "_p50"},
                          {0.9, "_p90"},
                          {0.99, "_p99"}}) {
      out += "# TYPE " + n + tag + " gauge\n";
      out += n + tag + " " + fmt_double(h.quantile(q)) + "\n";
    }
  }
  return out;
}

bool write_prometheus(const std::string& path, const std::string& prefix) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << render_prometheus(take_snapshot(), prefix);
  return static_cast<bool>(out);
}

}  // namespace parserhawk::obs
