#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace parserhawk::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/// Events land in the owning thread's buffer; the tracer keeps a shared_ptr
/// to every buffer ever registered so events survive thread exit and are
/// merged at flush. The per-buffer mutex is only ever contended by a flush
/// racing the owner, which the synthesizer never does mid-run.
struct ThreadBuf {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::string name;
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex registry_mutex;
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
  std::uint32_t next_tid = 1;
  Clock::time_point origin = Clock::now();

  ThreadBuf& local_buf() {
    thread_local std::shared_ptr<ThreadBuf> buf;
    if (!buf) {
      buf = std::make_shared<ThreadBuf>();
      std::lock_guard<std::mutex> lk(registry_mutex);
      buf->tid = next_tid++;
      buffers.push_back(buf);
    }
    return *buf;
  }
};

Tracer& Tracer::get() {
  static Tracer* instance = new Tracer();  // leaked: see header
  return *instance;
}

Tracer::Impl& Tracer::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

void Tracer::enable() {
  Impl& im = impl();
  if (!enabled()) {
    std::lock_guard<std::mutex> lk(im.registry_mutex);
    im.origin = Clock::now();
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { detail::g_trace_enabled.store(false, std::memory_order_relaxed); }

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - impl().origin)
      .count();
}

void Tracer::record_span(std::string name, std::int64_t ts_ns, std::int64_t dur_ns,
                         std::string args_json) {
  // No enabled() gate here: a Span that went active while tracing was on
  // commits even if tracing was turned off mid-span — dropping it would
  // leave truncated parents in the trace.
  ThreadBuf& buf = impl().local_buf();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.events.push_back(
      TraceEvent{std::move(name), std::move(args_json), ts_ns, dur_ns < 0 ? 0 : dur_ns, buf.tid});
}

void Tracer::record_instant(std::string name, std::string args_json) {
  if (!enabled()) return;
  ThreadBuf& buf = impl().local_buf();
  std::int64_t ts = now_ns();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.events.push_back(TraceEvent{std::move(name), std::move(args_json), ts, -1, buf.tid});
}

void Tracer::set_thread_name(std::string name) {
  ThreadBuf& buf = impl().local_buf();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.name = std::move(name);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  Impl& im = impl();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(im.registry_mutex);
    bufs = im.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::vector<std::pair<std::uint32_t, std::string>> Tracer::thread_names() const {
  Impl& im = impl();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(im.registry_mutex);
    bufs = im.buffers;
  }
  std::vector<std::pair<std::uint32_t, std::string>> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->mutex);
    if (!b->name.empty()) out.emplace_back(b->tid, b->name);
  }
  return out;
}

namespace {

std::string us(std::int64_t ns) {
  // Chrome trace timestamps are microseconds; keep sub-us resolution.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out += ",\n";
    first = false;
    out += obj;
  };
  for (const auto& [tid, name] : thread_names()) {
    JsonObject o;
    o.str("name", "thread_name").str("ph", "M").num("pid", std::int64_t{1});
    o.num("tid", static_cast<std::int64_t>(tid));
    o.field("args", JsonObject().str("name", name).render());
    emit(o.render());
  }
  for (const auto& e : snapshot()) {
    JsonObject o;
    o.str("name", e.name).str("ph", e.dur_ns < 0 ? "i" : "X");
    o.num("pid", std::int64_t{1}).num("tid", static_cast<std::int64_t>(e.tid));
    o.field("ts", us(e.ts_ns));
    if (e.dur_ns >= 0) o.field("dur", us(e.dur_ns));
    if (e.dur_ns < 0) o.str("s", "t");  // instant scope: thread
    if (!e.args_json.empty()) o.field("args", e.args_json);
    emit(o.render());
  }
  out += "]}";
  return out;
}

std::string Tracer::jsonl() const {
  std::string out;
  for (const auto& e : snapshot()) {
    JsonObject o;
    o.str("name", e.name).str("ph", e.dur_ns < 0 ? "i" : "X");
    o.num("tid", static_cast<std::int64_t>(e.tid));
    o.field("ts_us", us(e.ts_ns));
    if (e.dur_ns >= 0) o.field("dur_us", us(e.dur_ns));
    if (!e.args_json.empty()) o.field("args", e.args_json);
    out += o.render();
    out += "\n";
  }
  return out;
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}
}  // namespace

bool Tracer::write_chrome_trace(const std::string& path) const {
  return write_file(path, chrome_trace_json());
}

bool Tracer::write_jsonl(const std::string& path) const { return write_file(path, jsonl()); }

void Tracer::reset() {
  Impl& im = impl();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lk(im.registry_mutex);
    bufs = im.buffers;
    im.origin = Clock::now();
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->mutex);
    b->events.clear();
    b->name.clear();
  }
}

void Span::begin(const char* name) {
  active_ = true;
  name_ = name;
  start_ns_ = Tracer::get().now_ns();
}

void Span::flight_end() {
  if (cname_ == nullptr) return;
  std::int64_t dur = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count() -
                     flight_start_ns_;
  // SpanEnd pairs with its SpanBegin by the name prefix before ':'; the
  // label rides in the detail field (slot capacity truncates, that's fine).
  flight::record(flight::EventKind::SpanEnd, cname_,
                 flight_label_.empty() ? nullptr : flight_label_.c_str() + 1,
                 dur < 0 ? 0 : dur);
  cname_ = nullptr;
}

void Span::end() {
  flight_end();
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::get();
  std::int64_t dur = tracer.now_ns() - start_ns_;
  tracer.record_span(std::move(name_), start_ns_, dur < 0 ? 0 : dur,
                     args_.empty() ? std::string() : args_.render());
}

}  // namespace parserhawk::obs
