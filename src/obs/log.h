// Tiny leveled stderr logger (DESIGN.md §7).
//
// All ad-hoc diagnostic prints route through here so verbosity is one knob
// (`hawk_compile --verbose/--quiet`, PH_LOG). Messages carry a consistent
// "[ph] <level>:" prefix and every write is flushed immediately, so the log
// is complete even when a run is killed mid-synthesis or dies on a crash /
// timeout path.
#pragma once

#include <cstdarg>

namespace parserhawk::obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
/// Initialize the level from the PH_LOG environment variable
/// (debug|info|warn|error|silent); leaves the default (Info) otherwise.
void log_level_from_env();

/// printf-style; dropped when `level` is below the current threshold.
void logf(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

#if defined(__GNUC__) || defined(__clang__)
#define PH_LOG_PRINTF __attribute__((format(printf, 1, 2)))
#else
#define PH_LOG_PRINTF
#endif
void log_debug(const char* fmt, ...) PH_LOG_PRINTF;
void log_info(const char* fmt, ...) PH_LOG_PRINTF;
void log_warn(const char* fmt, ...) PH_LOG_PRINTF;
void log_error(const char* fmt, ...) PH_LOG_PRINTF;
#undef PH_LOG_PRINTF

}  // namespace parserhawk::obs
