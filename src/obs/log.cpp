#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace parserhawk::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_write_mutex;  // keeps concurrent worker messages line-atomic

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[ph] debug: ";
    case LogLevel::Info: return "[ph] ";
    case LogLevel::Warn: return "[ph] warning: ";
    case LogLevel::Error: return "[ph] error: ";
    case LogLevel::Silent: return "[ph] ";
  }
  return "[ph] ";
}

void vlogf(LogLevel level, const char* fmt, va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(g_write_mutex);
  std::fputs(prefix(level), stderr);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  std::fflush(stderr);  // crash/timeout paths must not lose the tail
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_level_from_env() {
  const char* v = std::getenv("PH_LOG");
  if (v == nullptr) return;
  if (std::strcmp(v, "debug") == 0) set_log_level(LogLevel::Debug);
  else if (std::strcmp(v, "info") == 0) set_log_level(LogLevel::Info);
  else if (std::strcmp(v, "warn") == 0) set_log_level(LogLevel::Warn);
  else if (std::strcmp(v, "error") == 0) set_log_level(LogLevel::Error);
  else if (std::strcmp(v, "silent") == 0) set_log_level(LogLevel::Silent);
}

void logf(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

#define PH_DEFINE_LEVEL_FN(fn, level)     \
  void fn(const char* fmt, ...) {         \
    va_list args;                         \
    va_start(args, fmt);                  \
    vlogf(level, fmt, args);              \
    va_end(args);                         \
  }

PH_DEFINE_LEVEL_FN(log_debug, LogLevel::Debug)
PH_DEFINE_LEVEL_FN(log_info, LogLevel::Info)
PH_DEFINE_LEVEL_FN(log_warn, LogLevel::Warn)
PH_DEFINE_LEVEL_FN(log_error, LogLevel::Error)
#undef PH_DEFINE_LEVEL_FN

}  // namespace parserhawk::obs
