#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace parserhawk::obs::flight {

namespace detail {
std::atomic<bool> g_flight_enabled{true};
}  // namespace detail

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SpanBegin: return "span_begin";
    case EventKind::SpanEnd: return "span_end";
    case EventKind::Note: return "note";
    case EventKind::Count: return "count";
    case EventKind::Observe: return "observe";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point origin() {
  static const Clock::time_point o = Clock::now();
  return o;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - origin()).count();
}

/// One ring slot. Every field is an atomic so a dump racing the writer is
/// ordinary (if approximate) behavior, not a data race. `seq` is odd while
/// the writer is mid-update; a reader that sees an odd or changed sequence
/// discards the slot.
struct Slot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::int64_t> ts_ns{0};
  std::atomic<std::int64_t> value{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<char> name[kNameBytes];
  std::atomic<char> detail[kDetailBytes];
};

struct Ring {
  std::atomic<std::uint64_t> head{0};  ///< events ever recorded by this thread
  std::atomic<std::uint64_t> cleared{0};  ///< head value at the last reset()
  std::uint32_t tid = 0;
  Slot slots[kRingSlots];
  Ring* next_for_handler = nullptr;  ///< lock-free list the signal handler walks
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  ///< kept forever (threads may exit)
  std::uint32_t next_tid = 1;
  std::atomic<Ring*> handler_head{nullptr};
  std::mutex path_mutex;
  std::string auto_path;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked, like the Tracer singleton
  return *r;
}

Ring& local_ring() {
  thread_local std::shared_ptr<Ring> ring;
  if (!ring) {
    ring = std::make_shared<Ring>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    ring->tid = reg.next_tid++;
    reg.rings.push_back(ring);
    // Push onto the handler list (CAS loop; rings are never removed).
    Ring* head = reg.handler_head.load(std::memory_order_relaxed);
    do {
      ring->next_for_handler = head;
    } while (!reg.handler_head.compare_exchange_weak(head, ring.get(),
                                                     std::memory_order_release,
                                                     std::memory_order_relaxed));
  }
  return *ring;
}

void store_str(std::atomic<char>* dst, int cap, const char* src) {
  int i = 0;
  if (src != nullptr)
    for (; src[i] != '\0' && i < cap - 1; ++i) dst[i].store(src[i], std::memory_order_relaxed);
  dst[i].store('\0', std::memory_order_relaxed);
}

void load_str(const std::atomic<char>* src, int cap, char* dst) {
  int i = 0;
  for (; i < cap - 1; ++i) {
    dst[i] = src[i].load(std::memory_order_relaxed);
    if (dst[i] == '\0') return;
  }
  dst[i] = '\0';
}

/// Read one slot into `out`. Returns false when the slot was being (re)written
/// concurrently — the caller counts it as dropped.
bool read_slot(const Slot& s, Event& out) {
  std::uint32_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 & 1u) return false;
  char name[kNameBytes];
  char detail[kDetailBytes];
  out.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
  out.value = s.value.load(std::memory_order_relaxed);
  out.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
  load_str(s.name, kNameBytes, name);
  load_str(s.detail, kDetailBytes, detail);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  out.name = name;
  out.detail = detail;
  return true;
}

}  // namespace

void enable() { detail::g_flight_enabled.store(true, std::memory_order_relaxed); }
void disable() { detail::g_flight_enabled.store(false, std::memory_order_relaxed); }

void record(EventKind kind, const char* name, const char* detail, std::int64_t value) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& s = ring.slots[h % kRingSlots];
  std::uint32_t sq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(sq + 1, std::memory_order_relaxed);  // odd: under construction
  std::atomic_thread_fence(std::memory_order_release);
  s.ts_ns.store(now_ns(), std::memory_order_relaxed);
  s.value.store(value, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  store_str(s.name, kNameBytes, name);
  store_str(s.detail, kDetailBytes, detail);
  s.seq.store(sq + 2, std::memory_order_release);  // even: stable
  ring.head.store(h + 1, std::memory_order_release);
}

Snapshot snapshot() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    rings = reg.rings;
  }
  Snapshot out;
  for (const auto& r : rings) {
    std::uint64_t head = r->head.load(std::memory_order_acquire);
    std::uint64_t cleared = r->cleared.load(std::memory_order_acquire);
    std::uint64_t live = head - cleared;
    out.total_recorded += static_cast<std::int64_t>(live);
    std::uint64_t window = std::min<std::uint64_t>(live, kRingSlots);
    std::uint64_t first = head - window;
    for (std::uint64_t i = first; i < head; ++i) {
      Event e;
      if (!read_slot(r->slots[i % kRingSlots], e)) continue;
      e.tid = r->tid;
      out.events.push_back(std::move(e));
    }
    out.dropped += static_cast<std::int64_t>(live) -
                   static_cast<std::int64_t>(out.events.size());
  }
  // dropped above accumulated per-ring against a running events total; redo
  // it as the simple global identity instead.
  out.dropped = out.total_recorded - static_cast<std::int64_t>(out.events.size());
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

namespace {

/// Span name up to the first ':' — labels are appended after the colon, so
/// begin ("solve_state") and end ("solve_state:parse_tcp") pair by base.
std::string base_name(const std::string& name) {
  auto pos = name.find(':');
  return pos == std::string::npos ? name : name.substr(0, pos);
}

/// Spans that began inside the retained window but never ended: the work in
/// flight when the dump fired. Best-effort — a begin already overwritten by
/// wrap-around cannot be reported.
std::vector<std::string> open_spans(const std::vector<Event>& events) {
  struct OpenSpan {
    std::string base;
    std::string best;  ///< most descriptive name seen (labels included)
  };
  std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
  for (const Event& e : events) {
    auto& stack = stacks[e.tid];
    if (e.kind == EventKind::SpanBegin) {
      stack.push_back(OpenSpan{base_name(e.name), e.name});
    } else if (e.kind == EventKind::SpanEnd) {
      std::string base = base_name(e.name);
      for (auto it = stack.rbegin(); it != stack.rend(); ++it)
        if (it->base == base) {
          stack.erase(std::next(it).base());
          break;
        }
    } else if (e.kind == EventKind::Note && !stack.empty() && !e.detail.empty() &&
               stack.back().base == base_name(e.name)) {
      // A note named like the innermost open span refines it ("solve_state"
      // + detail "parse_tcp").
      stack.back().best = e.name + ":" + e.detail;
    }
  }
  std::vector<std::string> out;
  for (const auto& [tid, stack] : stacks)
    for (const auto& open : stack)
      out.push_back("tid " + std::to_string(tid) + ": " + open.best);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string dump_json(const std::string& reason) {
  Snapshot snap = snapshot();
  std::string out = "{\"flight_dump\":1,";
  out += "\"reason\":" + json_str(reason) + ",";
  out += "\"total_recorded\":" + std::to_string(snap.total_recorded) + ",";
  out += "\"dropped\":" + std::to_string(snap.dropped) + ",";
  out += "\"in_progress\":[";
  auto open = open_spans(snap.events);
  for (std::size_t i = 0; i < open.size(); ++i) {
    if (i) out += ",";
    out += json_str(open[i]);
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < snap.events.size(); ++i) {
    const Event& e = snap.events[i];
    if (i) out += ",\n";
    JsonObject o;
    o.num("tid", static_cast<std::int64_t>(e.tid));
    o.num("ts_ns", e.ts_ns);
    o.str("kind", to_string(e.kind));
    o.str("name", e.name);
    if (!e.detail.empty()) o.str("detail", e.detail);
    if (e.kind == EventKind::SpanEnd || e.kind == EventKind::Count ||
        e.kind == EventKind::Observe)
      o.num("value", e.value);
    out += o.render();
  }
  out += "]}";
  return out;
}

bool dump_to_file(const std::string& path, const std::string& reason) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string json = dump_json(reason) + "\n";
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void set_auto_dump_path(const std::string& path) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.path_mutex);
  reg.auto_path = path;
}

std::string auto_dump_path() {
  if (const char* env = std::getenv("PH_FLIGHT_DUMP"); env != nullptr && env[0] != '\0')
    return env;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.path_mutex);
  return reg.auto_path;
}

namespace {
std::atomic<bool> g_auto_dumped{false};
}  // namespace

bool auto_dump(const std::string& reason) {
  if (!enabled()) return false;
  std::string path = auto_dump_path();
  if (path.empty()) return false;
  // First fatal condition wins: the dump taken at the point of failure (with
  // its spans still open) must not be overwritten by a later post-mortem dump
  // taken after the stack has unwound. reset() re-arms.
  if (g_auto_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  return dump_to_file(path, reason);
}

// ---------------------------------------------------------------------------
// Fatal-signal path: no allocation, no locks. Reads the lock-free ring list
// with plain atomic loads, formats each event into a stack buffer, write()s
// JSONL, then re-raises the signal with default disposition.
// ---------------------------------------------------------------------------

namespace {

char g_crash_path[512] = {0};

void append_escaped(char* buf, int cap, int& n, const char* s) {
  for (int i = 0; s[i] != '\0' && n < cap - 8; ++i) {
    char c = s[i];
    if (c == '"' || c == '\\') {
      buf[n++] = '\\';
      buf[n++] = c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      buf[n++] = c;
    } else {
      buf[n++] = ' ';
    }
  }
}

void handler_dump(int fd, int sig) {
  char line[kNameBytes + kDetailBytes + 128];
  int n = std::snprintf(line, sizeof(line), "{\"flight_crash\":1,\"signal\":%d}\n", sig);
  if (n > 0) (void)!::write(fd, line, static_cast<std::size_t>(n));
  for (Ring* r = registry().handler_head.load(std::memory_order_acquire); r != nullptr;
       r = r->next_for_handler) {
    std::uint64_t head = r->head.load(std::memory_order_acquire);
    std::uint64_t cleared = r->cleared.load(std::memory_order_relaxed);
    std::uint64_t live = head - cleared;
    std::uint64_t window = live < kRingSlots ? live : kRingSlots;
    for (std::uint64_t i = head - window; i < head; ++i) {
      Event e;
      if (!read_slot(r->slots[i % kRingSlots], e)) continue;
      n = std::snprintf(line, sizeof(line),
                        "{\"tid\":%u,\"ts_ns\":%lld,\"kind\":\"%s\",\"name\":\"",
                        r->tid, static_cast<long long>(e.ts_ns), to_string(e.kind));
      if (n < 0) continue;
      append_escaped(line, sizeof(line), n, e.name.c_str());
      line[n++] = '"';
      if (!e.detail.empty()) {
        n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                           ",\"detail\":\"");
        append_escaped(line, sizeof(line), n, e.detail.c_str());
        line[n++] = '"';
      }
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         ",\"value\":%lld}\n", static_cast<long long>(e.value));
      (void)!::write(fd, line, static_cast<std::size_t>(n));
    }
  }
}

void fatal_handler(int sig) {
  if (g_crash_path[0] != '\0') {
    int fd = ::open(g_crash_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      handler_dump(fd, sig);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_fatal_signal_dump() {
  std::string path = auto_dump_path();
  if (path.empty()) path = "flight.crash.jsonl";
  else path += ".crash";
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) ::signal(sig, fatal_handler);
}

void reset() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    rings = reg.rings;
  }
  for (const auto& r : rings)
    r->cleared.store(r->head.load(std::memory_order_acquire), std::memory_order_release);
  g_auto_dumped.store(false, std::memory_order_release);
}

}  // namespace parserhawk::obs::flight
