#include "obs/report.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "obs/json.h"

namespace parserhawk::obs {

namespace {

std::atomic<ReportBuilder*> g_active_report{nullptr};

thread_local std::string tl_state;
thread_local int tl_variant = -1;

std::int64_t mono_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void accumulate_z3(ZPhaseReport& z, double seconds, const std::string& outcome) {
  ++z.queries;
  z.seconds += seconds;
  if (outcome == "sat")
    ++z.sat;
  else if (outcome == "unsat")
    ++z.unsat;
  else
    ++z.unknown;
}

std::string z3_json(const std::map<std::string, ZPhaseReport>& z3) {
  JsonObject o;
  for (const auto& [phase, z] : z3) {
    JsonObject p;
    p.num("queries", z.queries)
        .num("sat", z.sat)
        .num("unsat", z.unsat)
        .num("unknown", z.unknown)
        .num("seconds", z.seconds);
    o.field(phase, p.render());
  }
  return o.render();
}

}  // namespace

// ---------------------------------------------------------------------------
// CompileReport
// ---------------------------------------------------------------------------

double CompileReport::attributed_sec() const {
  double s = 0;
  for (const auto& p : phases) s += p.seconds;
  return s;
}

double CompileReport::state_sec() const {
  double s = 0;
  for (const auto& st : states) s += st.seconds;
  return s;
}

std::string CompileReport::to_json() const {
  JsonObject root;
  root.num("report_version", std::int64_t{1});
  root.str("spec", spec).str("hw", hw).str("status", status);
  if (!reason.empty()) root.str("reason", reason);
  root.num("total_sec", total_sec)
      .num("attributed_sec", attributed_sec())
      .num("deadline_sec", deadline_sec)
      .num("deadline_slack_sec", deadline_slack_sec)
      .num("threads", std::int64_t{threads})
      .num("cache_hits", cache_hits)
      .num("cache_misses", cache_misses);

  std::string phases_json = "[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i) phases_json += ",";
    JsonObject p;
    p.str("name", phases[i].name).num("seconds", phases[i].seconds);
    phases_json += p.render();
  }
  phases_json += "]";
  root.field("phases", phases_json);

  std::string states_json = "[";
  for (std::size_t i = 0; i < states.size(); ++i) {
    const StateReport& st = states[i];
    if (i) states_json += ",\n";
    JsonObject s;
    s.str("name", st.name).num("seconds", st.seconds).str("source", st.source);
    s.num("winner_variant", std::int64_t{st.winner_variant})
        .num("winner_budget", st.winner_budget)
        .boolean("winner_restricted", st.winner_restricted)
        .num("budget_attempts", st.budget_attempts)
        .num("cegis_rounds", st.cegis_rounds)
        .num("cache_lookups", st.cache_lookups)
        .num("cache_lookup_sec", st.cache_lookup_sec);
    s.field("z3", z3_json(st.z3));
    std::string variants_json = "[";
    bool first = true;
    for (const auto& [idx, v] : st.variants) {
      if (!first) variants_json += ",";
      first = false;
      JsonObject vo;
      vo.num("variant", std::int64_t{idx})
          .num("seconds", v.seconds)
          .num("cegis_rounds", v.cegis_rounds)
          .boolean("winner", v.winner);
      vo.field("z3", z3_json(v.z3));
      variants_json += vo.render();
    }
    variants_json += "]";
    s.field("variants", variants_json);
    states_json += s.render();
  }
  states_json += "]";
  root.field("states", states_json);
  return root.render();
}

bool CompileReport::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

namespace {

std::string fmt_sec(double s) {
  char buf[32];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  return buf;
}

std::string pad(const std::string& s, std::size_t w) {
  return s.size() >= w ? s : s + std::string(w - s.size(), ' ');
}

std::string rpad(const std::string& s, std::size_t w) {
  return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
}

}  // namespace

std::string CompileReport::explain() const {
  std::string out;
  out += "compile " + spec + " -> " + hw + "   status=" + status;
  if (!reason.empty()) out += " (" + reason + ")";
  out += "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "total %s   attributed %s (%.1f%%)   threads %d   cache %lld hit / %lld miss\n",
                fmt_sec(total_sec).c_str(), fmt_sec(attributed_sec()).c_str(),
                total_sec > 0 ? 100.0 * attributed_sec() / total_sec : 0.0, threads,
                static_cast<long long>(cache_hits), static_cast<long long>(cache_misses));
  out += line;
  if (deadline_sec > 0) {
    std::snprintf(line, sizeof(line), "deadline %s   slack at finish %s\n",
                  fmt_sec(deadline_sec).c_str(), fmt_sec(deadline_slack_sec).c_str());
    out += line;
  }

  out += "\nphases:\n";
  std::size_t name_w = 12;
  for (const auto& p : phases) name_w = std::max(name_w, p.name.size());
  for (const auto& p : phases) {
    std::snprintf(line, sizeof(line), "  %s %s %5.1f%%\n", pad(p.name, name_w + 2).c_str(),
                  rpad(fmt_sec(p.seconds), 9).c_str(),
                  total_sec > 0 ? 100.0 * p.seconds / total_sec : 0.0);
    out += line;
  }

  if (!states.empty()) {
    std::int64_t solver = 0, cached = 0;
    for (const auto& st : states) (st.source == "cache" ? cached : solver) += 1;
    std::snprintf(line, sizeof(line), "\nstates (%zu: %lld solved, %lld from cache):\n",
                  states.size(), static_cast<long long>(solver),
                  static_cast<long long>(cached));
    out += line;
    std::size_t st_w = 10;
    for (const auto& st : states) st_w = std::max(st_w, st.name.size());
    out += "  " + pad("state", st_w + 2) + rpad("time", 9) + "  " + pad("source", 8) +
           pad("winner", 16) + rpad("cegis", 5) + rpad("z3 q", 6) + rpad("z3 time", 9) + "\n";
    for (const auto& st : states) {
      std::string winner = "-";
      if (st.source == "solver" && st.winner_variant >= 0) {
        char wb[48];
        std::snprintf(wb, sizeof(wb), "v%d b=%.3g%s", st.winner_variant, st.winner_budget,
                      st.winner_restricted ? " (r)" : "");
        winner = wb;
      }
      std::int64_t zq = 0;
      double zs = 0;
      for (const auto& [phase, z] : st.z3) {
        zq += z.queries;
        zs += z.seconds;
      }
      out += "  " + pad(st.name, st_w + 2) + rpad(fmt_sec(st.seconds), 9) + "  " +
             pad(st.source, 8) + pad(winner, 16) + rpad(std::to_string(st.cegis_rounds), 5) +
             rpad(std::to_string(zq), 6) + rpad(fmt_sec(zs), 9) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// ReportBuilder
// ---------------------------------------------------------------------------

struct ReportBuilder::Impl {
  mutable std::mutex mutex;
  CompileReport report;
  std::map<std::string, StateReport> states;  // keyed by name until snapshot
};

ReportBuilder::ReportBuilder() : impl_(new Impl()) {}

ReportBuilder::~ReportBuilder() {
  // Defensive: never leave a dangling global pointer behind.
  ReportBuilder* self = this;
  g_active_report.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

void ReportBuilder::set_context(const std::string& spec, const std::string& hw, int threads,
                                double deadline_sec) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  impl_->report.spec = spec;
  impl_->report.hw = hw;
  impl_->report.threads = threads;
  impl_->report.deadline_sec = deadline_sec;
}

void ReportBuilder::set_outcome(const std::string& status, const std::string& reason,
                                double total_sec, double deadline_slack_sec) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  impl_->report.status = status;
  impl_->report.reason = reason;
  impl_->report.total_sec = total_sec;
  impl_->report.deadline_slack_sec = deadline_slack_sec < 0 ? 0 : deadline_slack_sec;
}

void ReportBuilder::phase_done(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  impl_->report.phases.push_back(PhaseReport{name, seconds});
}

void ReportBuilder::state_result(const std::string& state, double seconds,
                                 const std::string& source, int winner_variant,
                                 double winner_budget, bool winner_restricted,
                                 std::int64_t budget_attempts) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  StateReport& st = impl_->states[state];
  st.name = state;
  st.seconds = seconds;
  st.source = source;
  st.winner_variant = winner_variant;
  st.winner_budget = winner_budget;
  st.winner_restricted = winner_restricted;
  st.budget_attempts = budget_attempts;
  if (source == "cache")
    ++impl_->report.cache_hits;
  else if (source == "solver")
    ++impl_->report.cache_misses;
  if (winner_variant >= 0) {
    auto it = st.variants.find(winner_variant);
    if (it != st.variants.end()) it->second.winner = true;
  }
}

void ReportBuilder::cache_lookup(const std::string& state, bool hit, double seconds) {
  (void)hit;  // hit/miss totals come from state_result's source attribution
  std::lock_guard<std::mutex> lk(impl_->mutex);
  StateReport& st = impl_->states[state];
  st.name = state;
  ++st.cache_lookups;
  st.cache_lookup_sec += seconds;
}

void ReportBuilder::z3_query(const std::string& state, int variant, const std::string& phase,
                             double seconds, const std::string& outcome) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  StateReport& st = impl_->states[state];
  st.name = state;
  accumulate_z3(st.z3[phase], seconds, outcome);
  if (variant >= 0) {
    VariantReport& v = st.variants[variant];
    v.variant = variant;
    accumulate_z3(v.z3[phase], seconds, outcome);
  }
}

void ReportBuilder::cegis_rounds(const std::string& state, int variant, std::int64_t rounds) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  StateReport& st = impl_->states[state];
  st.name = state;
  st.cegis_rounds += rounds;
  if (variant >= 0) {
    VariantReport& v = st.variants[variant];
    v.variant = variant;
    v.cegis_rounds += rounds;
  }
}

void ReportBuilder::variant_time(const std::string& state, int variant, double seconds) {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  StateReport& st = impl_->states[state];
  st.name = state;
  if (variant >= 0) {
    VariantReport& v = st.variants[variant];
    v.variant = variant;
    v.seconds += seconds;
  }
}

CompileReport ReportBuilder::report() const {
  std::lock_guard<std::mutex> lk(impl_->mutex);
  CompileReport out = impl_->report;
  out.states.clear();
  // std::map iteration is name-sorted — deterministic state order by design.
  for (const auto& [name, st] : impl_->states) out.states.push_back(st);
  return out;
}

// ---------------------------------------------------------------------------
// Global slot + thread-local context + hooks
// ---------------------------------------------------------------------------

void install_report(ReportBuilder* b) { g_active_report.store(b, std::memory_order_release); }

ReportBuilder* report_active() { return g_active_report.load(std::memory_order_acquire); }

bool report_on() { return g_active_report.load(std::memory_order_relaxed) != nullptr; }

ReportStateScope::ReportStateScope(const std::string& state)
    : prev_(tl_state), had_prev_(!tl_state.empty()) {
  tl_state = state;
}

ReportStateScope::~ReportStateScope() { tl_state = had_prev_ ? prev_ : std::string(); }

ReportVariantScope::ReportVariantScope(int variant) : prev_(tl_variant) { tl_variant = variant; }

ReportVariantScope::~ReportVariantScope() { tl_variant = prev_; }

const std::string& report_current_state() { return tl_state; }

int report_current_variant() { return tl_variant; }

void report_z3(const std::string& phase, double seconds, const std::string& outcome) {
  ReportBuilder* b = report_active();
  if (b == nullptr || tl_state.empty()) return;
  b->z3_query(tl_state, tl_variant, phase, seconds, outcome);
}

void report_cegis_rounds(std::int64_t rounds) {
  ReportBuilder* b = report_active();
  if (b == nullptr || tl_state.empty()) return;
  b->cegis_rounds(tl_state, tl_variant, rounds);
}

void report_cache(const std::string& state, bool hit, double seconds) {
  ReportBuilder* b = report_active();
  if (b == nullptr) return;
  b->cache_lookup(state, hit, seconds);
}

void report_state_result(const std::string& state, double seconds, const std::string& source,
                         int winner_variant, double winner_budget, bool winner_restricted,
                         std::int64_t budget_attempts) {
  ReportBuilder* b = report_active();
  if (b == nullptr) return;
  b->state_result(state, seconds, source, winner_variant, winner_budget, winner_restricted,
                  budget_attempts);
}

void report_variant_time(const std::string& state, int variant, double seconds) {
  ReportBuilder* b = report_active();
  if (b == nullptr) return;
  b->variant_time(state, variant, seconds);
}

ReportPhase::ReportPhase(const char* name)
    : name_(name), start_ns_(mono_ns()), done_(!report_on()) {}

void ReportPhase::end() {
  if (done_) return;
  done_ = true;
  ReportBuilder* b = report_active();
  if (b == nullptr) return;
  b->phase_done(name_, static_cast<double>(mono_ns() - start_ns_) * 1e-9);
}

ReportPhase::~ReportPhase() { end(); }

}  // namespace parserhawk::obs
