// Flight recorder: an always-on, fixed-size, per-thread ring buffer of the
// most recent span/metric events (DESIGN.md §11).
//
// The tracer (trace.h) records everything but is opt-in because unbounded
// buffers cost memory over a long run. The flight recorder is the inverse
// trade: it is ON by default, bounded (kRingSlots events per thread, oldest
// overwritten), and exists solely so that when a compile blows its deadline,
// fails verification, or dies on a signal, the last few hundred events —
// which state was being solved, which Opt7 variant was racing, which Z3
// phase was in flight — can be dumped as JSON post-mortem. A timed-out
// Table 3/4 row stops being a mystery.
//
// Concurrency contract: recording is lock-free and wait-free — every slot
// field is a relaxed/release atomic, each ring has exactly one writer (its
// owning thread), and a dump may race writers freely. A per-slot sequence
// number (odd = being written) lets the reader discard slots that were
// overwritten mid-read, so a concurrent dump is approximate but never torn
// and never a data race (TSan-clean; exercised by test_flight.cpp).
//
// Counts are preserved across wrap-around: each ring tracks the total
// number of events ever recorded, so a snapshot reports exactly how many
// older events the ring dropped ("losslessly-by-design").
//
// Fatal-signal dumps go through a separate allocation-free path
// (handler_dump) that reads the rings with plain atomic loads, formats into
// stack buffers and write(2)s JSONL — best-effort but safe to run from a
// SIGSEGV handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace parserhawk::obs::flight {

inline constexpr int kRingSlots = 256;   ///< events retained per thread
inline constexpr int kNameBytes = 48;    ///< event name capacity (truncated)
inline constexpr int kDetailBytes = 48;  ///< event detail capacity (truncated)

enum class EventKind : std::uint8_t {
  SpanBegin = 0,  ///< a Span opened (static name; value unused)
  SpanEnd = 1,    ///< a Span closed (labeled name; value = duration ns)
  Note = 2,       ///< explicit breadcrumb (name + detail)
  Count = 3,      ///< a counter increment (value = delta)
  Observe = 4,    ///< a histogram observation (value = nanoseconds)
};

const char* to_string(EventKind kind);

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// True when the recorder is capturing (one relaxed load). Default: ON.
inline bool enabled() { return detail::g_flight_enabled.load(std::memory_order_relaxed); }

void enable();
void disable();

/// Record one event on the calling thread's ring. No-ops when disabled.
/// `name`/`detail` are truncated to the slot capacity; `detail` may be null.
void record(EventKind kind, const char* name, const char* detail = nullptr,
            std::int64_t value = 0);

/// Breadcrumb helper: `note("solve_state", "parse_tcp")`.
inline void note(const char* name, const char* detail = nullptr) {
  if (enabled()) record(EventKind::Note, name, detail);
}

/// One decoded ring event (snapshot form).
struct Event {
  std::uint32_t tid = 0;
  std::int64_t ts_ns = 0;  ///< since process flight-clock origin
  std::int64_t value = 0;
  EventKind kind = EventKind::Note;
  std::string name;
  std::string detail;
};

struct Snapshot {
  std::vector<Event> events;        ///< merged across threads, sorted by ts
  std::int64_t total_recorded = 0;  ///< events ever recorded (all threads)
  std::int64_t dropped = 0;         ///< total_recorded minus events retained
};

/// Merge every thread's ring. Safe to call while other threads record; slots
/// overwritten mid-read are skipped (they count as dropped).
Snapshot snapshot();

/// {"flight_dump":1,"reason":...,"total_recorded":...,"dropped":...,
///  "in_progress":[...],"events":[...]} — events oldest-first. "in_progress"
/// lists spans that began but (as far as the retained window shows) never
/// ended: the state/variant/Z3 phase the process was inside when the dump
/// fired.
std::string dump_json(const std::string& reason);

bool dump_to_file(const std::string& path, const std::string& reason);

/// Configure where auto_dump() writes. An empty path disables auto dumps
/// (the default for library users — tests and benches that time out on
/// purpose must not litter their working directory). hawk_compile sets a
/// per-spec default; the PH_FLIGHT_DUMP environment variable wins over
/// everything when set.
void set_auto_dump_path(const std::string& path);
std::string auto_dump_path();

/// Dump to the configured auto path (env PH_FLIGHT_DUMP, else
/// set_auto_dump_path). Called by the compiler on deadline exhaustion and
/// verification failure. Fires at most once per run — the dump taken at the
/// point of failure (spans still open) wins over later post-mortem dumps;
/// reset() re-arms. Returns false when disabled, unconfigured, already
/// fired, or the write failed.
bool auto_dump(const std::string& reason);

/// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that write an
/// allocation-free JSONL flight dump to the auto path (+ ".crash" suffix)
/// and re-raise. Idempotent; only hawk_compile opts in.
void install_fatal_signal_dump();

/// Drop every ring's retained events and zero the recorded/dropped totals
/// (rings themselves persist; tids are not reused). Test hygiene only.
void reset();

}  // namespace parserhawk::obs::flight
