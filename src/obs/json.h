// Minimal JSON rendering helpers shared by the trace/metrics exporters and
// the bench result sidecars. Rendering only — the repo never parses JSON at
// runtime (ci/check_trace.py and the tests do the validating).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace parserhawk::obs {

/// Escape `s` for inclusion inside a JSON string literal (quotes excluded).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_str(const std::string& s) { return "\"" + json_escape(s) + "\""; }

/// Render a double as a JSON number (JSON has no NaN/Inf; clamp to 0).
inline std::string json_num(double v) {
  if (v != v || v > 1e300 || v < -1e300) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string json_num(std::int64_t v) { return std::to_string(v); }

/// Incremental `{"k": v, ...}` builder over pre-rendered value strings.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& rendered_value) {
    entries_.emplace_back(key, rendered_value);
    return *this;
  }
  JsonObject& str(const std::string& key, const std::string& v) { return field(key, json_str(v)); }
  JsonObject& num(const std::string& key, double v) { return field(key, json_num(v)); }
  JsonObject& num(const std::string& key, std::int64_t v) { return field(key, json_num(v)); }
  JsonObject& boolean(const std::string& key, bool v) { return field(key, v ? "true" : "false"); }

  bool empty() const { return entries_.empty(); }

  std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) out += ",";
      out += json_str(entries_[i].first) + ":" + entries_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace parserhawk::obs
