#include "hw/profile.h"

namespace parserhawk {

std::string to_string(Arch arch) {
  switch (arch) {
    case Arch::SingleTable: return "single-table";
    case Arch::Pipelined: return "pipelined";
    case Arch::Interleaved: return "interleaved";
  }
  return "unknown";
}

HwProfile tofino() {
  HwProfile p;
  p.name = "tofino";
  p.arch = Arch::SingleTable;
  // Limits follow the public Tofino parser documentation scale: a 32-bit
  // match key, 256 TCAM entries, wide per-entry extraction, and a buffered
  // input window the parser can inspect ahead of the cursor (the shifted
  // packet bytes a state can source its match registers from).
  p.key_limit_bits = 32;
  p.tcam_entry_limit = 256;
  p.lookahead_limit_bits = 128;
  p.stage_limit = 1;
  p.extract_limit_bits = 256;  // chained multi-extractor budget per state
  p.allows_loops = true;
  return p;
}

HwProfile ipu() {
  HwProfile p;
  p.name = "ipu";
  p.arch = Arch::Pipelined;
  p.key_limit_bits = 32;
  p.tcam_entry_limit = 16;  // per stage
  p.lookahead_limit_bits = 128;
  p.stage_limit = 16;
  p.extract_limit_bits = 128;
  p.allows_loops = false;
  return p;
}

HwProfile trident() {
  HwProfile p;
  p.name = "trident";
  p.arch = Arch::Interleaved;
  p.key_limit_bits = 32;
  p.tcam_entry_limit = 32;  // per stage within a sub-parser
  p.lookahead_limit_bits = 32;
  p.stage_limit = 8;
  p.extract_limit_bits = 128;
  p.allows_loops = false;
  return p;
}

HwProfile parametrized(int key_limit_bits, int lookahead_limit_bits, int extract_limit_bits,
                       int tcam_entry_limit) {
  HwProfile p;
  p.name = "param(k=" + std::to_string(key_limit_bits) + ",la=" + std::to_string(lookahead_limit_bits) +
           ",ex=" + std::to_string(extract_limit_bits) + ")";
  p.arch = Arch::SingleTable;
  p.key_limit_bits = key_limit_bits;
  p.tcam_entry_limit = tcam_entry_limit;
  p.lookahead_limit_bits = lookahead_limit_bits;
  p.stage_limit = 1;
  p.extract_limit_bits = extract_limit_bits;
  p.allows_loops = true;
  return p;
}

Result<bool> validate(const HwProfile& profile) {
  auto err = [&](const std::string& what) {
    return Result<bool>::err("invalid-profile", profile.name + ": " + what);
  };
  if (profile.key_limit_bits <= 0 || profile.key_limit_bits > 64)
    return err("key limit must be in [1,64]");
  if (profile.tcam_entry_limit <= 0) return err("TCAM entry limit must be positive");
  if (profile.lookahead_limit_bits < 0) return err("negative lookahead limit");
  if (profile.extract_limit_bits <= 0) return err("extraction limit must be positive");
  if (profile.pipelined() && profile.stage_limit <= 0)
    return err("pipelined device needs a positive stage limit");
  if (profile.arch == Arch::SingleTable && !profile.allows_loops)
    return err("single-table device must allow revisits");
  if (profile.pipelined() && profile.allows_loops)
    return err("pipelined device cannot loop back");
  return true;
}

}  // namespace parserhawk
