// Hardware model: device profiles for line-rate programmable parsers (§3.1).
//
// ParserHawk is retargetable: the synthesizer's generic FSM encoding is
// shared, and everything device-specific is captured here as data —
// architecture kind plus numeric resource limits (§5.1.2). Adding a device
// means adding a profile, not touching the synthesis core.
#pragma once

#include <string>

#include "support/result.h"

namespace parserhawk {

/// The three parser organizations of Figure 2.
enum class Arch {
  SingleTable,  ///< one TCAM table, entries revisitable (Tofino)
  Pipelined,    ///< one TCAM table per stage, strictly forward (Intel IPU)
  Interleaved,  ///< pipelined sub-parsers interleaved with the MAU pipeline (Trident)
};

std::string to_string(Arch arch);

/// Resource limits of one target device (§5.1.2).
struct HwProfile {
  std::string name;
  Arch arch = Arch::SingleTable;

  /// Max state-transition key bits per TCAM entry (`keyLimit`).
  int key_limit_bits = 32;
  /// Max TCAM entries: total for SingleTable, per stage otherwise
  /// (`tcamLimit`).
  int tcam_entry_limit = 256;
  /// Max lookahead window in bits (`lookaheadLimit`).
  int lookahead_limit_bits = 32;
  /// Max parser stages (`stageLimit`); ignored for SingleTable.
  int stage_limit = 1;
  /// Max bits extracted by one entry (`extraction length limit`, §5.1.2).
  int extract_limit_bits = 128;
  /// Whether an entry may be visited more than once while parsing a packet
  /// (single-table loop-back, §3.1).
  bool allows_loops = true;

  bool pipelined() const { return arch != Arch::SingleTable; }
};

/// Barefoot Tofino: one big revisitable TCAM (Figure 2a).
HwProfile tofino();

/// Intel IPU: pipelined TCAM tables, no revisits (Figure 2b).
HwProfile ipu();

/// Broadcom Trident-style interleaved parser (Figure 2c); modeled for the
/// interpreter/tests, not evaluated by the paper.
HwProfile trident();

/// Parameterized single-table profile used by Table 4's hardware sweep.
HwProfile parametrized(int key_limit_bits, int lookahead_limit_bits, int extract_limit_bits,
                       int tcam_entry_limit = 1024);

/// Sanity-check a profile (positive limits, stage/arch consistency).
Result<bool> validate(const HwProfile& profile);

}  // namespace parserhawk
