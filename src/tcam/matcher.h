// Compiled TCAM matcher: the bit-parallel hot path of the simulation
// engine (DESIGN.md §9).
//
// The reference interpreter resolves one (table, state) lookup by walking
// that state's rows in priority order and testing `(key ^ value) & mask`
// per row — after re-collecting and re-sorting the rows from the flat
// entry list on every state transition. CompiledMatcher does the
// classical bitmap-intersection transform instead (the RFC / bit-vector
// packet-classification lineage): rows of each (table, state) are packed
// once, priority-sorted, into per-key-bit acceptance bitmaps over
// word-aligned uint64 lanes. A lookup starts from the all-rows-live word
// set and ANDs in one precomputed bitmap per *cared-about* key bit; the
// winning row is then the lowest set bit (std::countr_zero), which
// resolves first-match priority without a branch per row.
//
// The matcher is a pure view: it never mutates the program and must stay
// bit-identical to the scalar scan for every input, including degenerate
// programs (empty states, zero-width keys, masks wider than the declared
// key). That identity is what lets the batched differential tester
// (src/sim/batch.h) replace the scalar interpreter wholesale.
//
// match_batch() is the traffic-scale entry point (DESIGN.md §12): it
// resolves N keys against one group per call, walking the cared-about key
// bits once and intersecting every packet's live-row bitmap per bit —
// 4 packets per step under AVX2, 8 under AVX-512, or a branchless 4-wide
// SWAR unroll everywhere else. All levels produce bit-identical winners
// to first_match(); the level is picked at runtime (PH_SIMD env var +
// CPU capability probe), so one binary serves every microarchitecture.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "tcam/tcam.h"

namespace parserhawk {

/// Width of the wide match kernel's packet lanes.
///
/// Scalar runs one key at a time; Swar is a branchless 4-wide unroll over
/// plain uint64 ops; Avx2/Avx512 use 4-/8-lane vector registers. Auto
/// resolves to the best level this CPU supports (see dispatch_level).
/// Every level yields bit-identical match results — the choice is purely
/// a throughput knob.
enum class SimdLevel { Auto, Scalar, Swar, Avx2, Avx512 };

const char* to_string(SimdLevel level);

/// Highest level usable on this CPU (probed once; Swar on non-x86).
SimdLevel max_supported_level();

/// Resolve the runtime level: the PH_SIMD environment variable
/// ("off"/"scalar", "swar", "avx2", "avx512", "auto") clamped to
/// max_supported_level(). Unset or unrecognized means Auto. Re-read on
/// every call so tests can flip the env var; resolve once per batch in
/// hot paths.
SimdLevel dispatch_level();

class CompiledMatcher {
 public:
  /// Packs `prog`'s rows. The matcher keeps a pointer to `prog`; the
  /// program must outlive the matcher and stay unmodified.
  explicit CompiledMatcher(const TcamProgram& prog);

  /// Packed rows of one (table, state).
  struct Group {
    const StateLayout* layout = nullptr;  ///< key layout (nullptr = keyless)
    int key_width = 0;
    int row_count = 0;
    int words = 0;  ///< uint64 lanes per bitmap (ceil(row_count / 64))
    /// Rows in priority order (same order the scalar scan visits).
    std::vector<const TcamEntry*> rows;
    /// rows[i]'s index in TcamProgram::entries (coverage accounting).
    std::vector<int> entry_index;
    /// Rows live before any key bit is tested. Starts as "all rows" and
    /// drops rows whose condition constrains bits beyond the key width
    /// (those can never match: the key has no such bits to offer).
    std::vector<std::uint64_t> base_live;
    /// accept_one[b * words + w]: bit r set when row (w*64 + r) accepts
    /// key bit b (0 = key MSB) being 1; accept_zero likewise for 0.
    std::vector<std::uint64_t> accept_one;
    std::vector<std::uint64_t> accept_zero;
    /// Key bit positions some row actually cares about (mask bit set);
    /// the match loop only intersects these.
    std::vector<int> cared_bits;
  };

  /// Group of (table, state); nullptr when the program has neither rows
  /// nor a layout there.
  const Group* find(int table, int state) const;

  /// Priority index of the first row of `g` matching `key`, or -1. The
  /// winning entry is `g.rows[result]`.
  static int first_match(const Group& g, std::uint64_t key);

  /// Wide kernel: first_match for `n` keys in one pass, writing the
  /// priority index (or -1) of keys[i] into out[i]. Bit-identical to
  /// calling first_match per key at every level, any n (including tails
  /// shorter than the lane width) and any group shape; groups wider than
  /// 64 rows fall back to the per-key path. `level` Auto resolves via
  /// dispatch_level(); an unsupported explicit level is clamped down.
  static void match_batch(const Group& g, const std::uint64_t* keys, int n, int* out,
                          SimdLevel level = SimdLevel::Auto);

  const TcamProgram& program() const { return *prog_; }

  /// Total packed rows across all groups (== program().entries.size()).
  int total_rows() const { return total_rows_; }

 private:
  const TcamProgram* prog_;
  std::map<std::pair<int, int>, Group> groups_;
  int total_rows_ = 0;
};

}  // namespace parserhawk
