// Compiled TCAM matcher: the bit-parallel hot path of the simulation
// engine (DESIGN.md §9).
//
// The reference interpreter resolves one (table, state) lookup by walking
// that state's rows in priority order and testing `(key ^ value) & mask`
// per row — after re-collecting and re-sorting the rows from the flat
// entry list on every state transition. CompiledMatcher does the
// classical bitmap-intersection transform instead (the RFC / bit-vector
// packet-classification lineage): rows of each (table, state) are packed
// once, priority-sorted, into per-key-bit acceptance bitmaps over
// word-aligned uint64 lanes. A lookup starts from the all-rows-live word
// set and ANDs in one precomputed bitmap per *cared-about* key bit; the
// winning row is then the lowest set bit (std::countr_zero), which
// resolves first-match priority without a branch per row.
//
// The matcher is a pure view: it never mutates the program and must stay
// bit-identical to the scalar scan for every input, including degenerate
// programs (empty states, zero-width keys, masks wider than the declared
// key). That identity is what lets the batched differential tester
// (src/sim/batch.h) replace the scalar interpreter wholesale.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "tcam/tcam.h"

namespace parserhawk {

class CompiledMatcher {
 public:
  /// Packs `prog`'s rows. The matcher keeps a pointer to `prog`; the
  /// program must outlive the matcher and stay unmodified.
  explicit CompiledMatcher(const TcamProgram& prog);

  /// Packed rows of one (table, state).
  struct Group {
    const StateLayout* layout = nullptr;  ///< key layout (nullptr = keyless)
    int key_width = 0;
    int row_count = 0;
    int words = 0;  ///< uint64 lanes per bitmap (ceil(row_count / 64))
    /// Rows in priority order (same order the scalar scan visits).
    std::vector<const TcamEntry*> rows;
    /// rows[i]'s index in TcamProgram::entries (coverage accounting).
    std::vector<int> entry_index;
    /// Rows live before any key bit is tested. Starts as "all rows" and
    /// drops rows whose condition constrains bits beyond the key width
    /// (those can never match: the key has no such bits to offer).
    std::vector<std::uint64_t> base_live;
    /// accept_one[b * words + w]: bit r set when row (w*64 + r) accepts
    /// key bit b (0 = key MSB) being 1; accept_zero likewise for 0.
    std::vector<std::uint64_t> accept_one;
    std::vector<std::uint64_t> accept_zero;
    /// Key bit positions some row actually cares about (mask bit set);
    /// the match loop only intersects these.
    std::vector<int> cared_bits;
  };

  /// Group of (table, state); nullptr when the program has neither rows
  /// nor a layout there.
  const Group* find(int table, int state) const;

  /// Priority index of the first row of `g` matching `key`, or -1. The
  /// winning entry is `g.rows[result]`.
  static int first_match(const Group& g, std::uint64_t key);

  const TcamProgram& program() const { return *prog_; }

  /// Total packed rows across all groups (== program().entries.size()).
  int total_rows() const { return total_rows_; }

 private:
  const TcamProgram* prog_;
  std::map<std::pair<int, int>, Group> groups_;
  int total_rows_ = 0;
};

}  // namespace parserhawk
