#include "tcam/matcher.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <set>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PH_X86 1
#else
#define PH_X86 0
#endif

namespace parserhawk {

namespace {

constexpr int kWordBits = 64;

/// Low `n` bits set (n in [0, 64]).
std::uint64_t low_mask(int n) {
  return n >= kWordBits ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::Auto: return "auto";
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Swar: return "swar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx512: return "avx512";
  }
  return "unknown";
}

SimdLevel max_supported_level() {
#if PH_X86
  static const SimdLevel probed = [] {
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::Avx512;
    if (__builtin_cpu_supports("avx2")) return SimdLevel::Avx2;
    return SimdLevel::Swar;
  }();
  return probed;
#else
  return SimdLevel::Swar;
#endif
}

SimdLevel dispatch_level() {
  SimdLevel want = SimdLevel::Auto;
  if (const char* env = std::getenv("PH_SIMD"); env != nullptr && *env != '\0') {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)
      want = SimdLevel::Scalar;
    else if (std::strcmp(env, "swar") == 0)
      want = SimdLevel::Swar;
    else if (std::strcmp(env, "avx2") == 0)
      want = SimdLevel::Avx2;
    else if (std::strcmp(env, "avx512") == 0)
      want = SimdLevel::Avx512;
  }
  const SimdLevel cap = max_supported_level();
  if (want == SimdLevel::Auto) return cap;
  return static_cast<int>(want) <= static_cast<int>(cap) ? want : cap;
}

CompiledMatcher::CompiledMatcher(const TcamProgram& prog) : prog_(&prog) {
  // Every (table, state) with rows or a declared layout gets a group, so
  // lookups mirror the scalar interpreter's layout_of + rows_of pair.
  std::set<std::pair<int, int>> keys;
  for (const auto& e : prog.entries) keys.insert({e.table, e.state});
  for (const auto& [key, layout] : prog.layouts) keys.insert(key);

  for (const auto& key : keys) {
    Group g;
    g.layout = prog.layout_of(key.first, key.second);
    g.key_width = g.layout ? g.layout->key_width() : 0;
    for (const TcamEntry* row : prog.rows_of(key.first, key.second)) {
      g.rows.push_back(row);
      g.entry_index.push_back(static_cast<int>(row - prog.entries.data()));
    }
    g.row_count = static_cast<int>(g.rows.size());
    g.words = (g.row_count + kWordBits - 1) / kWordBits;
    total_rows_ += g.row_count;

    const int kw = g.key_width;
    g.base_live.assign(static_cast<std::size_t>(g.words), 0);
    g.accept_one.assign(static_cast<std::size_t>(kw) * static_cast<std::size_t>(g.words), 0);
    g.accept_zero.assign(static_cast<std::size_t>(kw) * static_cast<std::size_t>(g.words), 0);

    std::uint64_t any_care = 0;
    for (int r = 0; r < g.row_count; ++r) {
      const TcamEntry& e = *g.rows[static_cast<std::size_t>(r)];
      const int w = r / kWordBits;
      const std::uint64_t rbit = std::uint64_t{1} << (r % kWordBits);
      // A condition constraining bits the key does not have (mask/value
      // above kw) can never match a key of kw bits — the scalar compare
      // sees zeros there. Exclude the row up front.
      if ((e.value & e.mask & ~low_mask(kw)) != 0) continue;
      g.base_live[static_cast<std::size_t>(w)] |= rbit;
      for (int b = 0; b < kw; ++b) {
        const std::uint64_t cond_bit = std::uint64_t{1} << (kw - 1 - b);
        const bool cares = (e.mask & cond_bit) != 0;
        const bool want_one = (e.value & cond_bit) != 0;
        if (cares) any_care |= cond_bit;
        const std::size_t at = static_cast<std::size_t>(b) * static_cast<std::size_t>(g.words) +
                               static_cast<std::size_t>(w);
        if (!cares || want_one) g.accept_one[at] |= rbit;
        if (!cares || !want_one) g.accept_zero[at] |= rbit;
      }
    }
    for (int b = 0; b < kw; ++b)
      if (any_care & (std::uint64_t{1} << (kw - 1 - b))) g.cared_bits.push_back(b);

    groups_.emplace(key, std::move(g));
  }
}

const CompiledMatcher::Group* CompiledMatcher::find(int table, int state) const {
  auto it = groups_.find({table, state});
  return it == groups_.end() ? nullptr : &it->second;
}

int CompiledMatcher::first_match(const Group& g, std::uint64_t key) {
  if (g.row_count == 0) return -1;

  if (g.words == 1) {
    std::uint64_t live = g.base_live[0];
    for (int b : g.cared_bits) {
      if (!live) break;
      const bool bit = (key >> (g.key_width - 1 - b)) & 1u;
      live &= (bit ? g.accept_one : g.accept_zero)[static_cast<std::size_t>(b)];
    }
    return live ? std::countr_zero(live) : -1;
  }

  // Wide groups (> 64 rows): intersect lane by lane.
  std::uint64_t stack[8];
  std::vector<std::uint64_t> heap;
  std::uint64_t* live = stack;
  if (g.words > 8) {
    heap.resize(static_cast<std::size_t>(g.words));
    live = heap.data();
  }
  for (int w = 0; w < g.words; ++w) live[w] = g.base_live[static_cast<std::size_t>(w)];

  for (int b : g.cared_bits) {
    const bool bit = (key >> (g.key_width - 1 - b)) & 1u;
    const std::uint64_t* tab =
        (bit ? g.accept_one : g.accept_zero).data() +
        static_cast<std::size_t>(b) * static_cast<std::size_t>(g.words);
    std::uint64_t any = 0;
    for (int w = 0; w < g.words; ++w) any |= (live[w] &= tab[w]);
    if (!any) return -1;
  }
  for (int w = 0; w < g.words; ++w)
    if (live[w]) return w * kWordBits + std::countr_zero(live[w]);
  return -1;
}

namespace {

using Group = CompiledMatcher::Group;

inline int winner_of(std::uint64_t live) { return live ? std::countr_zero(live) : -1; }

/// Branchless single-key reduction for single-word groups — the same
/// select shape (`zero ^ ((zero ^ one) & broadcast(bit))`) every wide
/// lane uses, so scalar tails share the vector code path's structure.
inline std::uint64_t reduce_one(const Group& g, std::uint64_t key) {
  std::uint64_t live = g.base_live[0];
  const std::uint64_t* one = g.accept_one.data();
  const std::uint64_t* zero = g.accept_zero.data();
  for (int b : g.cared_bits) {
    const std::uint64_t sel = std::uint64_t{0} - ((key >> (g.key_width - 1 - b)) & 1u);
    live &= zero[b] ^ ((zero[b] ^ one[b]) & sel);
  }
  return live;
}

/// 4 packets per key-bit step with plain uint64 ops (the SWAR level, and
/// the tail handler for the vector levels).
void match_swar(const Group& g, const std::uint64_t* keys, int n, int* out) {
  const std::uint64_t base = g.base_live[0];
  const std::uint64_t* one = g.accept_one.data();
  const std::uint64_t* zero = g.accept_zero.data();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint64_t l0 = base, l1 = base, l2 = base, l3 = base;
    const std::uint64_t k0 = keys[i], k1 = keys[i + 1], k2 = keys[i + 2], k3 = keys[i + 3];
    for (int b : g.cared_bits) {
      const int shift = g.key_width - 1 - b;
      const std::uint64_t zb = zero[b];
      const std::uint64_t diff = zb ^ one[b];
      l0 &= zb ^ (diff & (std::uint64_t{0} - ((k0 >> shift) & 1u)));
      l1 &= zb ^ (diff & (std::uint64_t{0} - ((k1 >> shift) & 1u)));
      l2 &= zb ^ (diff & (std::uint64_t{0} - ((k2 >> shift) & 1u)));
      l3 &= zb ^ (diff & (std::uint64_t{0} - ((k3 >> shift) & 1u)));
      if (!(l0 | l1 | l2 | l3)) break;
    }
    out[i] = winner_of(l0);
    out[i + 1] = winner_of(l1);
    out[i + 2] = winner_of(l2);
    out[i + 3] = winner_of(l3);
  }
  for (; i < n; ++i) out[i] = winner_of(reduce_one(g, keys[i]));
}

#if PH_X86

/// 4 packets per key-bit step in one 4x64 AVX2 register. The per-bit
/// select mask is `0 - keybit` per lane (all-ones when the lane's key has
/// the bit), blended between the broadcast accept_zero/accept_one words.
__attribute__((target("avx2"))) void match_avx2(const Group& g, const std::uint64_t* keys, int n,
                                                int* out) {
  const std::uint64_t* one = g.accept_one.data();
  const std::uint64_t* zero = g.accept_zero.data();
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(g.base_live[0]));
  const __m256i ones = _mm256_set1_epi64x(1);
  const __m256i zero_v = _mm256_setzero_si256();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i kv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i live = base;
    for (int b : g.cared_bits) {
      const int shift = g.key_width - 1 - b;
      const __m256i bit =
          _mm256_and_si256(_mm256_srl_epi64(kv, _mm_cvtsi32_si128(shift)), ones);
      const __m256i sel = _mm256_sub_epi64(zero_v, bit);
      const __m256i zb = _mm256_set1_epi64x(static_cast<long long>(zero[b]));
      const __m256i ob = _mm256_set1_epi64x(static_cast<long long>(one[b]));
      const __m256i tab = _mm256_xor_si256(zb, _mm256_and_si256(_mm256_xor_si256(zb, ob), sel));
      live = _mm256_and_si256(live, tab);
      if (_mm256_testz_si256(live, live)) break;
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), live);
    for (int l = 0; l < 4; ++l) out[i + l] = winner_of(lanes[l]);
  }
  for (; i < n; ++i) out[i] = winner_of(reduce_one(g, keys[i]));
}

/// 8 packets per key-bit step in one 8x64 AVX-512 register; the key-bit
/// test goes straight to a k-mask (vptestmq) and the accept-word select is
/// a single masked blend per bit.
__attribute__((target("avx512f"))) void match_avx512(const Group& g, const std::uint64_t* keys,
                                                     int n, int* out) {
  const std::uint64_t* one = g.accept_one.data();
  const std::uint64_t* zero = g.accept_zero.data();
  const __m512i base = _mm512_set1_epi64(static_cast<long long>(g.base_live[0]));
  int i = 0;
  // 16 packets per key-bit step: two live vectors sharing each bit's
  // probe/zero/one broadcasts, so the per-bit fixed cost is amortized
  // twice as far as the single-vector loop below.
  for (; i + 16 <= n; i += 16) {
    __m512i kv0 = _mm512_loadu_si512(keys + i);
    __m512i kv1 = _mm512_loadu_si512(keys + i + 8);
    __m512i l0 = base, l1 = base;
    for (int b : g.cared_bits) {
      const std::uint64_t probe = std::uint64_t{1} << (g.key_width - 1 - b);
      const __m512i probe_v = _mm512_set1_epi64(static_cast<long long>(probe));
      const __m512i zb = _mm512_set1_epi64(static_cast<long long>(zero[b]));
      const __m512i ob = _mm512_set1_epi64(static_cast<long long>(one[b]));
      l0 = _mm512_and_epi64(l0, _mm512_mask_blend_epi64(_mm512_test_epi64_mask(kv0, probe_v), zb, ob));
      l1 = _mm512_and_epi64(l1, _mm512_mask_blend_epi64(_mm512_test_epi64_mask(kv1, probe_v), zb, ob));
      const __m512i any = _mm512_or_epi64(l0, l1);
      if (_mm512_test_epi64_mask(any, any) == 0) break;
    }
    alignas(64) std::uint64_t lanes[16];
    _mm512_store_si512(lanes, l0);
    _mm512_store_si512(lanes + 8, l1);
    for (int l = 0; l < 16; ++l) out[i + l] = winner_of(lanes[l]);
  }
  for (; i + 8 <= n; i += 8) {
    __m512i kv = _mm512_loadu_si512(keys + i);
    __m512i live = base;
    for (int b : g.cared_bits) {
      const std::uint64_t probe = std::uint64_t{1} << (g.key_width - 1 - b);
      const __mmask8 has_bit =
          _mm512_test_epi64_mask(kv, _mm512_set1_epi64(static_cast<long long>(probe)));
      const __m512i zb = _mm512_set1_epi64(static_cast<long long>(zero[b]));
      const __m512i ob = _mm512_set1_epi64(static_cast<long long>(one[b]));
      live = _mm512_and_epi64(live, _mm512_mask_blend_epi64(has_bit, zb, ob));
      if (_mm512_test_epi64_mask(live, live) == 0) break;
    }
    alignas(64) std::uint64_t lanes[8];
    _mm512_store_si512(lanes, live);
    for (int l = 0; l < 8; ++l) out[i + l] = winner_of(lanes[l]);
  }
  for (; i < n; ++i) out[i] = winner_of(reduce_one(g, keys[i]));
}

#endif  // PH_X86

}  // namespace

void CompiledMatcher::match_batch(const Group& g, const std::uint64_t* keys, int n, int* out,
                                  SimdLevel level) {
  if (n <= 0) return;
  if (level == SimdLevel::Auto)
    level = dispatch_level();
  else if (static_cast<int>(level) > static_cast<int>(max_supported_level()))
    level = max_supported_level();

  if (g.row_count == 0) {
    for (int i = 0; i < n; ++i) out[i] = -1;
    return;
  }
  // Multi-word groups (> 64 rows) and the forced-scalar level take the
  // per-key path; every level is bit-identical so this is only a speed
  // question, and wide groups are rare enough not to earn lanes.
  if (g.words != 1 || level == SimdLevel::Scalar) {
    for (int i = 0; i < n; ++i) out[i] = first_match(g, keys[i]);
    return;
  }
  switch (level) {
#if PH_X86
    case SimdLevel::Avx512: match_avx512(g, keys, n, out); return;
    case SimdLevel::Avx2: match_avx2(g, keys, n, out); return;
#endif
    default: match_swar(g, keys, n, out); return;
  }
}

}  // namespace parserhawk
