#include "tcam/matcher.h"

#include <bit>
#include <set>

namespace parserhawk {

namespace {

constexpr int kWordBits = 64;

/// Low `n` bits set (n in [0, 64]).
std::uint64_t low_mask(int n) {
  return n >= kWordBits ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

CompiledMatcher::CompiledMatcher(const TcamProgram& prog) : prog_(&prog) {
  // Every (table, state) with rows or a declared layout gets a group, so
  // lookups mirror the scalar interpreter's layout_of + rows_of pair.
  std::set<std::pair<int, int>> keys;
  for (const auto& e : prog.entries) keys.insert({e.table, e.state});
  for (const auto& [key, layout] : prog.layouts) keys.insert(key);

  for (const auto& key : keys) {
    Group g;
    g.layout = prog.layout_of(key.first, key.second);
    g.key_width = g.layout ? g.layout->key_width() : 0;
    for (const TcamEntry* row : prog.rows_of(key.first, key.second)) {
      g.rows.push_back(row);
      g.entry_index.push_back(static_cast<int>(row - prog.entries.data()));
    }
    g.row_count = static_cast<int>(g.rows.size());
    g.words = (g.row_count + kWordBits - 1) / kWordBits;
    total_rows_ += g.row_count;

    const int kw = g.key_width;
    g.base_live.assign(static_cast<std::size_t>(g.words), 0);
    g.accept_one.assign(static_cast<std::size_t>(kw) * static_cast<std::size_t>(g.words), 0);
    g.accept_zero.assign(static_cast<std::size_t>(kw) * static_cast<std::size_t>(g.words), 0);

    std::uint64_t any_care = 0;
    for (int r = 0; r < g.row_count; ++r) {
      const TcamEntry& e = *g.rows[static_cast<std::size_t>(r)];
      const int w = r / kWordBits;
      const std::uint64_t rbit = std::uint64_t{1} << (r % kWordBits);
      // A condition constraining bits the key does not have (mask/value
      // above kw) can never match a key of kw bits — the scalar compare
      // sees zeros there. Exclude the row up front.
      if ((e.value & e.mask & ~low_mask(kw)) != 0) continue;
      g.base_live[static_cast<std::size_t>(w)] |= rbit;
      for (int b = 0; b < kw; ++b) {
        const std::uint64_t cond_bit = std::uint64_t{1} << (kw - 1 - b);
        const bool cares = (e.mask & cond_bit) != 0;
        const bool want_one = (e.value & cond_bit) != 0;
        if (cares) any_care |= cond_bit;
        const std::size_t at = static_cast<std::size_t>(b) * static_cast<std::size_t>(g.words) +
                               static_cast<std::size_t>(w);
        if (!cares || want_one) g.accept_one[at] |= rbit;
        if (!cares || !want_one) g.accept_zero[at] |= rbit;
      }
    }
    for (int b = 0; b < kw; ++b)
      if (any_care & (std::uint64_t{1} << (kw - 1 - b))) g.cared_bits.push_back(b);

    groups_.emplace(key, std::move(g));
  }
}

const CompiledMatcher::Group* CompiledMatcher::find(int table, int state) const {
  auto it = groups_.find({table, state});
  return it == groups_.end() ? nullptr : &it->second;
}

int CompiledMatcher::first_match(const Group& g, std::uint64_t key) {
  if (g.row_count == 0) return -1;

  if (g.words == 1) {
    std::uint64_t live = g.base_live[0];
    for (int b : g.cared_bits) {
      if (!live) break;
      const bool bit = (key >> (g.key_width - 1 - b)) & 1u;
      live &= (bit ? g.accept_one : g.accept_zero)[static_cast<std::size_t>(b)];
    }
    return live ? std::countr_zero(live) : -1;
  }

  // Wide groups (> 64 rows): intersect lane by lane.
  std::uint64_t stack[8];
  std::vector<std::uint64_t> heap;
  std::uint64_t* live = stack;
  if (g.words > 8) {
    heap.resize(static_cast<std::size_t>(g.words));
    live = heap.data();
  }
  for (int w = 0; w < g.words; ++w) live[w] = g.base_live[static_cast<std::size_t>(w)];

  for (int b : g.cared_bits) {
    const bool bit = (key >> (g.key_width - 1 - b)) & 1u;
    const std::uint64_t* tab =
        (bit ? g.accept_one : g.accept_zero).data() +
        static_cast<std::size_t>(b) * static_cast<std::size_t>(g.words);
    std::uint64_t any = 0;
    for (int w = 0; w < g.words; ++w) any |= (live[w] &= tab[w]);
    if (!any) return -1;
  }
  for (int w = 0; w < g.words; ++w)
    if (live[w]) return w * kWordBits + std::countr_zero(live[w]);
  return -1;
}

}  // namespace parserhawk
