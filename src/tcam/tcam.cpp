#include "tcam/tcam.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace parserhawk {

std::vector<const TcamEntry*> TcamProgram::rows_of(int table, int state) const {
  std::vector<const TcamEntry*> out;
  for (const auto& e : entries)
    if (e.table == table && e.state == state) out.push_back(&e);
  // Stable: rows sharing an entry id keep storage order, so the scalar
  // scan and the CompiledMatcher packing agree on the winner even for
  // degenerate programs with duplicate priorities.
  std::stable_sort(out.begin(), out.end(),
                   [](const TcamEntry* a, const TcamEntry* b) { return a->entry < b->entry; });
  return out;
}

const StateLayout* TcamProgram::layout_of(int table, int state) const {
  auto it = layouts.find({table, state});
  return it == layouts.end() ? nullptr : &it->second;
}

ResourceUsage measure(const TcamProgram& prog) {
  ResourceUsage u;
  u.tcam_entries = static_cast<int>(prog.entries.size());
  std::set<int> tables;
  std::map<int, int> per_stage;
  for (const auto& e : prog.entries) {
    tables.insert(e.table);
    ++per_stage[e.table];
  }
  u.stages = static_cast<int>(tables.size());
  for (const auto& [t, n] : per_stage) u.max_entries_per_stage = std::max(u.max_entries_per_stage, n);
  for (const auto& [key, layout] : prog.layouts) u.max_key_bits = std::max(u.max_key_bits, layout.key_width());
  return u;
}

namespace {

int extract_bits(const TcamProgram& prog, const TcamEntry& e) {
  int bits = 0;
  for (const auto& ex : e.extracts) bits += prog.fields.at(static_cast<std::size_t>(ex.field)).width;
  return bits;
}

}  // namespace

Result<bool> validate(const TcamProgram& prog, const HwProfile& profile) {
  auto err = [&](const std::string& what) {
    return Result<bool>::err("invalid-impl", prog.name + " on " + profile.name + ": " + what);
  };

  for (const auto& [key, layout] : prog.layouts) {
    if (layout.key_width() > profile.key_limit_bits)
      return err("state (" + std::to_string(key.first) + "," + std::to_string(key.second) +
                 ") key is " + std::to_string(layout.key_width()) + " bits > keyLimit " +
                 std::to_string(profile.key_limit_bits));
    for (const auto& p : layout.key)
      if (p.kind == KeyPart::Kind::Lookahead && p.lo + p.len > profile.lookahead_limit_bits)
        return err("lookahead window exceeds " + std::to_string(profile.lookahead_limit_bits) + " bits");
  }

  std::map<int, int> per_stage;
  for (const auto& e : prog.entries) {
    ++per_stage[e.table];
    if (e.table < 0) return err("negative table id");
    if (profile.arch == Arch::SingleTable && e.table != 0)
      return err("single-table device uses only table 0");
    if (profile.pipelined() && e.table >= profile.stage_limit)
      return err("stage " + std::to_string(e.table) + " exceeds stageLimit " +
                 std::to_string(profile.stage_limit));
    if (profile.pipelined() && is_real_state(e.next_state) && e.next_table <= e.table)
      return err("pipelined transitions must move to a strictly later stage");
    if (extract_bits(prog, e) > profile.extract_limit_bits)
      return err("entry extracts more than " + std::to_string(profile.extract_limit_bits) + " bits");
    const StateLayout* layout = prog.layout_of(e.table, e.state);
    int kw = layout ? layout->key_width() : 0;
    std::uint64_t full = kw >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << kw) - 1);
    if ((e.mask & ~full) != 0 || (e.value & ~full) != 0)
      return err("entry condition wider than its state's key");
  }

  if (profile.arch == Arch::SingleTable) {
    if (static_cast<int>(prog.entries.size()) > profile.tcam_entry_limit)
      return err("uses " + std::to_string(prog.entries.size()) + " entries > tcamLimit " +
                 std::to_string(profile.tcam_entry_limit));
  } else {
    for (const auto& [stage, n] : per_stage)
      if (n > profile.tcam_entry_limit)
        return err("stage " + std::to_string(stage) + " uses " + std::to_string(n) +
                   " entries > per-stage tcamLimit " + std::to_string(profile.tcam_entry_limit));
  }
  return true;
}

std::string to_string(const TcamProgram& prog) {
  std::ostringstream os;
  os << "tcam_program " << prog.name << " start=(" << prog.start_table << "," << prog.start_state
     << ")\n";
  for (const auto& [key, layout] : prog.layouts) {
    os << "  layout (" << key.first << "," << key.second << "): ";
    for (const auto& p : layout.key) {
      if (p.kind == KeyPart::Kind::Lookahead)
        os << "la<" << p.lo << "," << p.len << "> ";
      else
        os << prog.fields.at(static_cast<std::size_t>(p.field)).name << "[" << p.lo << ":" << (p.lo + p.len)
           << "] ";
    }
    os << "(" << layout.key_width() << "b)\n";
  }
  for (const auto& e : prog.entries) {
    os << "  row (" << e.table << "," << e.state << "," << e.entry << ") match v=0x" << std::hex
       << e.value << " m=0x" << e.mask << std::dec << " extract{";
    for (std::size_t i = 0; i < e.extracts.size(); ++i) {
      if (i) os << ",";
      os << prog.fields.at(static_cast<std::size_t>(e.extracts[i].field)).name;
    }
    os << "} -> ";
    if (e.next_state == kAccept) os << "accept";
    else if (e.next_state == kReject) os << "reject";
    else os << "(" << e.next_table << "," << e.next_state << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace parserhawk
