// TCAM implementation model (§4, Figure 6).
//
// A compiled parser is a set of TCAM rows. Each row belongs to a
// (table, state) pair — `table` is the pipeline stage for pipelined
// devices and always 0 for single-table devices — and carries a ternary
// (value, mask) condition over that state's transition-key layout, the set
// of fields to extract when the row fires, and the (table, state) to
// transition to. This is exactly the paper's row format
// (TID, SID, EID, Condition, ExtractSet, Tran).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "hw/profile.h"
#include "ir/ir.h"
#include "support/result.h"

namespace parserhawk {

/// One TCAM row.
struct TcamEntry {
  int table = 0;  ///< TID: pipeline stage (0 on single-table devices)
  int state = 0;  ///< SID: parser state within the table
  int entry = 0;  ///< EID: priority within (table,state); lower fires first

  std::uint64_t value = 0;
  std::uint64_t mask = 0;  ///< condition: (key ^ value) & mask == 0

  std::vector<ExtractOp> extracts;  ///< ExtractSet, in extraction order

  int next_table = 0;
  int next_state = kReject;  ///< Tran: state id, kAccept or kReject

  bool matches(std::uint64_t key) const { return ((key ^ value) & mask) == 0; }
};

/// Transition-key composition for one (table, state).
struct StateLayout {
  std::vector<KeyPart> key;

  int key_width() const {
    int w = 0;
    for (const auto& p : key) w += p.len;
    return w;
  }
};

/// A complete compiled parser: rows + per-state key layouts + the field
/// table of the specification it implements.
struct TcamProgram {
  std::string name;
  std::vector<Field> fields;
  std::map<std::pair<int, int>, StateLayout> layouts;
  std::vector<TcamEntry> entries;
  int start_table = 0;
  int start_state = 0;
  /// K: max state transitions the interpreter simulates (Figure 6).
  int max_iterations = 64;

  /// Rows of (table, state), priority-sorted. Pointers remain valid while
  /// the program is unmodified.
  std::vector<const TcamEntry*> rows_of(int table, int state) const;

  /// Layout of (table, state); nullptr when none was declared.
  const StateLayout* layout_of(int table, int state) const;
};

/// Resource usage counters — the columns of Tables 3 and 4.
struct ResourceUsage {
  int tcam_entries = 0;       ///< total rows
  int stages = 0;             ///< distinct tables used (1 for single-table)
  int max_entries_per_stage = 0;
  int max_key_bits = 0;       ///< widest per-state key
};

ResourceUsage measure(const TcamProgram& prog);

/// Structural validation against a device profile: key widths within
/// keyLimit, lookahead within the window, per-entry extraction within the
/// extraction-length limit, entry counts within tcamLimit (total for
/// single-table, per stage for pipelined), stage ids within stageLimit,
/// and strictly-forward transitions on pipelined devices.
Result<bool> validate(const TcamProgram& prog, const HwProfile& profile);

/// Human-readable row dump (the back-end renders target formats on top).
std::string to_string(const TcamProgram& prog);

}  // namespace parserhawk
