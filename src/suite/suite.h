// Benchmark suite (§7 "Benchmarks").
//
// Programmatic builders for every program family in Table 3/4/5 plus the
// synthetic finance parser motivating §2.2. The paper's exact sources
// (switch.p4 / sai.p4 / dash.p4 subsets) are gated GitHub artifacts; these
// are reduced parse graphs from the same families — state counts, key
// widths and loopiness match the class of each row (see DESIGN.md §2 and
// EXPERIMENTS.md for the mapping).
//
// The ±R variants of Table 3 are produced by applying src/rewrite mutators
// to these bases inside the bench harnesses.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/rng.h"

namespace parserhawk::suite {

/// Ethernet dispatch: dst/src/type extraction, 3-way select on EtherType.
ParserSpec parse_ethernet();

/// Ethernet -> IPv4 -> {ICMP, TCP, default} (the paper's Parse icmp).
ParserSpec parse_icmp();

/// MPLS label stack: loops on the bottom-of-stack bit (single-TCAM targets
/// keep the loop; pipelined targets unroll).
ParserSpec parse_mpls();

/// parse_mpls hand-unrolled `depth` times with a looping tail — the
/// "+ unroll loop" variant.
ParserSpec parse_mpls_unrolled(int depth = 3);

/// A 48-bit transition key: wider than the commercial proxies' keyLimit, so
/// they reject with "wide-tran-key" while ParserHawk splits it.
ParserSpec large_tran_key();

/// Two states keying on different slices of the same packet field.
ParserSpec multi_key_same_field();

/// Chained dispatches keyed on different fields.
ParserSpec multi_keys_diff_fields();

/// Six extract-only states (the Pure Extraction states row): collapses to
/// one entry on Tofino; the extraction-length limit spreads it over
/// pipeline stages on the IPU.
ParserSpec pure_extraction_states();

/// Reduced SONiC SAI parser, small variant (~6 states).
ParserSpec sai_v1();

/// Reduced SONiC SAI parser, larger variant (~9 states, two dispatch
/// levels, VLAN + tunnel paths).
ParserSpec sai_v2();

/// Reduced DASH pipeline parser: a long chain of narrow dispatches.
ParserSpec dash_v2();

/// Synthetic financial-traffic parser (§2.2): classify packet origin
/// (exchange / internal / premium customer) before further parsing.
ParserSpec finance_origin();

/// IPv4 with options: the varbit benchmark exercising Opt6.
ParserSpec ipv4_options();

/// Motivating examples of Table 4. ME-1 rewards priority shadowing that
/// rule-merging algorithms cannot express; ME-2 needs key splitting; ME-3
/// is full of redundant entries.
ParserSpec me1_entry_merging();
ParserSpec me2_key_splitting();
ParserSpec me3_redundant_entries();

/// The Figure 3 program (used by the Figure 4 bench).
ParserSpec figure3_program();

struct Benchmark {
  std::string name;
  ParserSpec spec;
  bool loopy = false;
};

/// The base benchmark set (without ±R variants).
std::vector<Benchmark> base_suite();

}  // namespace parserhawk::suite

namespace parserhawk::suite::subsets {

/// A switch.p4-scale parse graph (~14 states: VLAN stacking, IPv4/IPv6,
/// tunnels, L4 fan-out) used as the population for random-subset
/// benchmarks, the paper's §7 methodology: "benchmarks are created by
/// randomly selecting a subset of 2-9 parser states from switch.p4".
ParserSpec switch_p4_style();

/// Extract a connected `k`-state subgraph rooted at a random state:
/// transitions leaving the subset are rewired to accept. The result is a
/// valid, self-contained parser of exactly min(k, reachable) states.
ParserSpec random_subset(const ParserSpec& population, Rng& rng, int k);

}  // namespace parserhawk::suite::subsets
