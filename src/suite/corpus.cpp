#include "suite/corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "hw/profile.h"
#include "lang/lang.h"
#include "obs/metrics.h"
#include "sim/testgen.h"
#include "support/rng.h"

#ifndef PH_SPECS_DIR
#define PH_SPECS_DIR "examples/specs"
#endif

namespace parserhawk::corpus {

namespace {

/// One coverage-top-up mutation (same move set as the difftest fuzzer).
BitVec mutate(const ParserSpec& spec, const BitVec& parent, Rng& rng) {
  switch (rng.below(4)) {
    case 0: {  // flip a few bits
      BitVec child = parent;
      if (child.size() == 0) return generate_path_input(spec, rng);
      for (int f = rng.range(1, 4); f > 0; --f) {
        int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(child.size())));
        child.set(i, !child.get(i));
      }
      return child;
    }
    case 1:  // truncate
      return parent.size() > 0 ? parent.slice(0, rng.range(0, parent.size())) : parent;
    case 2: {  // extend with random bits
      BitVec child = parent;
      for (int n = rng.range(1, 64); n > 0; --n) child.push_back(rng.chance(0.5));
      return child;
    }
    default:
      return generate_path_input(spec, rng);
  }
}

void publish_gauges(const std::string& name, const CoverageMap& cov) {
  if (!obs::metrics_on()) return;
  obs::Metrics& m = obs::Metrics::get();
  const std::string prefix = "cov.corpus." + name + ".";
  m.maximize(prefix + "states_hit", cov.states_hit());
  m.maximize(prefix + "states_total", cov.states_total());
  m.maximize(prefix + "rules_hit", cov.rules_hit());
  m.maximize(prefix + "rules_total", cov.rules_total());
}

/// When the compile's verify phase ran the bisimulation sweep, publish its
/// exact reachable-set report next to the sampled cov.corpus.* gauges so
/// coverage claims can cite exhaustive reachability, not just hits
/// (DESIGN.md §13).
void publish_reach_gauges(const std::string& name, const CompileResult& compiled) {
  if (!obs::metrics_on() || !compiled.reach_valid) return;
  obs::Metrics& m = obs::Metrics::get();
  const verify2::ReachSet& reach = compiled.reach;
  const std::string prefix = "verify.bisim." + name + ".";
  m.maximize(prefix + "states_reachable", reach.states_reachable());
  m.maximize(prefix + "states_total", reach.states_total());
  m.maximize(prefix + "rules_reachable", reach.rules_reachable());
  m.maximize(prefix + "rules_total", reach.rules_total());
  m.maximize(prefix + "rows_reachable", reach.rows_reachable());
  m.maximize(prefix + "rows_total", reach.rows_total());
}

}  // namespace

std::string specs_dir() {
  if (const char* env = std::getenv("PARSERHAWK_SPECS_DIR"); env && *env) return env;
  return PH_SPECS_DIR;
}

std::vector<std::string> list_specs() {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(specs_dir(), ec))
    if (entry.path().extension() == ".hawk") names.push_back(entry.path().stem().string());
  std::sort(names.begin(), names.end());
  return names;
}

Result<ParserSpec> load_spec(const std::string& name) {
  std::filesystem::path path = name;
  if (path.extension() != ".hawk")
    path = std::filesystem::path(specs_dir()) / (name + ".hawk");
  std::ifstream in(path);
  if (!in)
    return Result<ParserSpec>::err("corpus-io", "cannot open spec " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return lang::parse_source(buf.str());
}

ReplayReport replay_spec(const std::string& name, const ParserSpec& spec,
                         const ReplayOptions& options) {
  ReplayReport report;
  if (options.precompiled != nullptr)
    report.compiled = *options.precompiled;
  else
    report.compiled = compile(spec, tofino(), options.synth);
  if (!report.compiled.ok()) {
    report.detail = "compile failed: " + report.compiled.reason;
    return report;
  }
  const TcamProgram& prog = report.compiled.program;

  report.trace = generate_trace(spec, options.trace);
  // Zero-copy replay: the batch engine views the trace's and the caller's
  // packets in place (both vectors are stable for the duration).
  std::vector<PacketRef> refs;
  refs.reserve(report.trace.packets.size() + options.extra_packets.size());
  for (const BitVec& p : report.trace.packets) refs.push_back(p);
  for (const BitVec& p : options.extra_packets) refs.push_back(p);
  report.corpus_size = refs.size();

  BatchOptions bo = options.batch;
  bo.max_iterations = prog.max_iterations;
  BatchRunner runner(spec, prog, bo);
  report.batch = runner.run(refs);
  if (report.batch.mismatch.has_value()) {
    report.detail = "differential mismatch on input " +
                    report.batch.mismatch->input.to_string() + " (index " +
                    std::to_string(report.batch.first_mismatch) + ")";
    return report;
  }
  report.coverage = report.batch.coverage;

  // Coverage top-up: the structured trace covers everything coverable by
  // construction, but replayed captures or pathological specs can leave
  // rules dark — grow the corpus mutation-by-mutation, keeping a packet
  // iff it lights up a new rule.
  if (!report.coverage.all_rules_covered() && options.mutation_rounds > 0 && !refs.empty()) {
    Rng rng(options.trace.seed ^ 0xc092u);
    std::vector<BitVec> pool;
    pool.reserve(std::min<std::size_t>(refs.size(), 32));
    for (std::size_t i = 0; i < refs.size() && i < 32; ++i)
      pool.push_back(refs[i].materialize());
    for (int round = 0; round < options.mutation_rounds && !report.coverage.all_rules_covered();
         ++round) {
      BitVec child = mutate(spec, pool[rng.below(pool.size())], rng);
      CoverageMap cov = CoverageMap::for_pair(spec, prog);
      ParseResult s = run_spec(spec, child, prog.max_iterations, &cov);
      ParseResult m = run_impl(runner.matcher(), child, &cov);
      if (!equivalent(s, m)) {
        report.detail = "differential mismatch on mutated input " + child.to_string();
        return report;
      }
      int before = report.coverage.rules_hit();
      report.coverage.merge(cov);
      if (report.coverage.rules_hit() > before) {
        pool.push_back(child);
        ++report.corpus_size;
      }
    }
  }

  if (options.publish) {
    publish_gauges(name, report.coverage);
    publish_reach_gauges(name, report.compiled);
  }

  if (!report.coverage.all_rules_covered()) {
    report.detail = "uncovered rules: " + report.coverage.uncovered_rules(spec);
    return report;
  }
  report.ok = true;
  return report;
}

}  // namespace parserhawk::corpus
