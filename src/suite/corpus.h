// Protocol-zoo corpus harness (DESIGN.md §10).
//
// The spec registry locates the hawk-dialect example specs
// (examples/specs/*.hawk — VLAN stacking, MPLS, IPv6 extension chains,
// VXLAN/GENEVE/GTP tunnels, TCP options, ...) from any build or install
// layout, and replay_spec() is the one-call corpus gate built on top of
// it: synthesize the spec, manufacture a deterministic protocol-shaped
// trace (sim/tracegen.h), difftest spec vs implementation over that
// trace plus any replayed capture through the batched engine, and demand
// 100% spec rule coverage. Tests, benches and hawk_compile --replay all
// go through this so they agree on what "the corpus passes" means.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"
#include "sim/batch.h"
#include "sim/tracegen.h"
#include "support/result.h"
#include "synth/compiler.h"

namespace parserhawk::corpus {

/// Directory holding the protocol-zoo specs. The PARSERHAWK_SPECS_DIR
/// environment variable wins; otherwise the PH_SPECS_DIR compile
/// definition (the source tree's examples/specs, baked in by CMake);
/// otherwise the relative path "examples/specs".
std::string specs_dir();

/// Sorted spec names (basenames without ".hawk") found in specs_dir().
/// Empty when the directory is missing.
std::vector<std::string> list_specs();

/// Parse <specs_dir()>/<name>.hawk ("<name>" may also be a path to a
/// .hawk file). Errors carry the lang front-end's line/column context.
Result<ParserSpec> load_spec(const std::string& name);

struct ReplayOptions {
  SynthOptions synth;
  TraceGenOptions trace;
  /// Batch-engine knobs; `batch.simd` picks the wide-kernel lane level
  /// (verdicts and coverage are bit-identical at every level).
  BatchOptions batch;
  /// Reuse an already-compiled program for this spec instead of
  /// synthesizing again (e.g. one compile shared by a matrix of replay
  /// configurations). Must be a successful compile of the same spec.
  const CompileResult* precompiled = nullptr;
  /// Replayed after the generated trace (e.g. packets out of a pcap).
  std::vector<BitVec> extra_packets;
  /// Coverage-guided mutation rounds when the first replay leaves rules
  /// uncovered (0 disables the top-up).
  int mutation_rounds = 400;
  /// Publish cov.corpus.<name>.{states,rules}_{hit,total} gauges into the
  /// global metrics registry.
  bool publish = true;
};

struct ReplayReport {
  /// Compiled, zero differential mismatches, every spec rule fired.
  bool ok = false;
  /// Failure explanation: compile reason, mismatching input, or the
  /// uncovered-rule list. Empty when ok.
  std::string detail;
  CompileResult compiled;
  TraceGenReport trace;
  /// Difftest verdict over the generated trace + extra_packets.
  BatchResult batch;
  /// Total coverage including the mutation top-up.
  CoverageMap coverage;
  /// Packets replayed (trace + extra + kept mutants).
  std::size_t corpus_size = 0;
};

/// The corpus gate for one spec (see file header). `name` labels the
/// published gauges and diagnostics.
ReplayReport replay_spec(const std::string& name, const ParserSpec& spec,
                         const ReplayOptions& options = {});

}  // namespace parserhawk::corpus
